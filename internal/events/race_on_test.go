//go:build race

package events

// The race detector makes sync.Pool randomly drop Puts, so pool-backed
// allocation bounds cannot hold under -race.
const raceEnabled = true

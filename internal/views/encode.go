package views

import (
	"strconv"
	"time"
	"unicode/utf8"

	"seatwin/internal/events"
)

// The view documents mirror the legacy API's wire shapes exactly, so
// flipping a deployment onto views is invisible to clients. Encoding is
// hand-rolled appends: every document is built once on the write/refresh
// side and served as immutable bytes.

// appendJSONString appends a JSON string literal (with escaping; AIS
// names are 6-bit-charset clean, but the encoder must not trust that).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' {
			switch c {
			case '"':
				b = append(b, '\\', '"')
			case '\\':
				b = append(b, '\\', '\\')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0',
					"0123456789abcdef"[c>>4], "0123456789abcdef"[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

// appendVesselJSON renders one vessel state as the legacy vesselJSON
// document.
func appendVesselJSON(b []byte, s *VesselState) []byte {
	b = append(b, `{"mmsi":"`...)
	b = s.MMSI.Append(b)
	b = append(b, '"')
	if s.Name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, s.Name)
	}
	b = append(b, `,"lat":`...)
	b = strconv.AppendFloat(b, s.Lat, 'f', 5, 64)
	b = append(b, `,"lon":`...)
	b = strconv.AppendFloat(b, s.Lon, 'f', 5, 64)
	b = append(b, `,"sog":`...)
	b = strconv.AppendFloat(b, s.SOG, 'f', 1, 64)
	b = append(b, `,"cog":`...)
	b = strconv.AppendFloat(b, s.COG, 'f', 1, 64)
	b = append(b, `,"status":`...)
	b = appendJSONString(b, s.Status)
	b = append(b, `,"ts":"`...)
	b = s.TS.UTC().AppendFormat(b, time.RFC3339)
	b = append(b, '"')
	if len(s.Forecast) > 0 {
		b = append(b, `,"forecast":[`...)
		for i, p := range s.Forecast {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"lat":`...)
			b = strconv.AppendFloat(b, p.Pos.Lat, 'f', 5, 64)
			b = append(b, `,"lon":`...)
			b = strconv.AppendFloat(b, p.Pos.Lon, 'f', 5, 64)
			b = append(b, `,"t":`...)
			b = strconv.AppendInt(b, p.At.Unix(), 10)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendEventJSON renders one event as the legacy eventJSON document.
func appendEventJSON(b []byte, e events.Event) []byte {
	b = append(b, `{"kind":`...)
	b = appendJSONString(b, string(e.Kind))
	b = append(b, `,"a":"`...)
	b = e.A.Append(b)
	b = append(b, '"')
	if e.B != 0 {
		b = append(b, `,"b":"`...)
		b = e.B.Append(b)
		b = append(b, '"')
	}
	b = append(b, `,"at":"`...)
	b = e.At.UTC().AppendFormat(b, time.RFC3339)
	b = append(b, `","lat":`...)
	b = strconv.AppendFloat(b, e.Pos.Lat, 'f', 5, 64)
	b = append(b, `,"lon":`...)
	b = strconv.AppendFloat(b, e.Pos.Lon, 'f', 5, 64)
	if e.Meters != 0 {
		b = append(b, `,"meters":`...)
		b = strconv.AppendFloat(b, e.Meters, 'f', 1, 64)
	}
	return append(b, '}')
}

package pipeline

import (
	"testing"
	"time"

	"seatwin/internal/events"
)

// TestFigure6MiniRun streams a small global fleet through the full
// pipeline via the broker and checks the Figure 6 properties: the
// series covers a growing actor population, the steady-state moving
// average stays at a sane magnitude, and nothing is lost.
func TestFigure6MiniRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run, skipped in short mode")
	}
	p, err := New(DefaultConfig(events.NewKinematicForecaster()))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(5 * time.Second)

	cfg := ScalabilityConfig{
		Vessels:    2000,
		Messages:   60000,
		Seed:       7,
		Consumers:  4,
		Partitions: 8,
	}
	res, err := RunScalability(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != cfg.Messages {
		t.Fatalf("ingested %d of %d", res.Ingested, cfg.Messages)
	}
	if res.Stats.Messages != int64(cfg.Messages) {
		t.Fatalf("pipeline counted %d messages", res.Stats.Messages)
	}
	if len(res.Series) < 10 {
		t.Fatalf("series has %d samples", len(res.Series))
	}
	// Actor count grows as unseen vessels appear.
	first, last := res.Series[0], res.Series[len(res.Series)-1]
	if last.Actors <= first.Actors {
		t.Fatalf("actor count did not grow: %d -> %d", first.Actors, last.Actors)
	}
	if last.Actors < 1000 {
		t.Fatalf("too few live actors at the end: %d", last.Actors)
	}
	// Steady-state processing stays in the sub-millisecond regime for
	// the kinematic forecaster (the paper reports "less than a few
	// milliseconds" with the BiLSTM on its hardware).
	if last.AvgProcess > 20*time.Millisecond {
		t.Fatalf("steady-state processing %v", last.AvgProcess)
	}
	// All samples sane.
	for _, s := range res.Series {
		if s.AvgProcess < 0 || s.Actors <= 0 {
			t.Fatalf("bad sample %+v", s)
		}
	}
	if res.Stats.Forecasts == 0 {
		t.Fatal("no forecasts generated")
	}
}

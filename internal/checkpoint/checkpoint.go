// Package checkpoint persists the per-vessel actor state that matters
// across a process restart: the retained window of recent position
// reports each vessel actor feeds the S-VRF model. The broker already
// replays uncommitted records durably, but the in-memory history window
// behind every committed offset dies with the process — without it a
// restarted pipeline re-warms every vessel from MinLiveReports before
// the first forecast. A checkpoint closes that gap: vessel actors
// snapshot their window into the kvstore through the writer actors'
// batched HSetMulti path, and a respawning actor rehydrates from the
// store so its first post-restart report forecasts immediately.
//
// Replayed broker records are deduplicated against the checkpoint's
// last-seen timestamp: the vessel actor drops any report not strictly
// newer than the tail of its (restored) history, so at-least-once
// redelivery of already-checkpointed reports is a no-op.
//
// The encoding is a versioned field map (one kvstore hash per vessel):
// unknown versions are refused rather than misread, and timestamps are
// kept at nanosecond precision so the replay dedup comparison is exact.
package checkpoint

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/kvstore"
)

// Version is the current encoding version, stored in every checkpoint.
const Version = 1

// KeyPrefix namespaces checkpoint hashes in the store.
const KeyPrefix = "ckpt:"

// Key returns the store key of a vessel's checkpoint hash.
func Key(mmsi ais.MMSI) string { return KeyPrefix + mmsi.String() }

// AppendKey appends the store key of a vessel's checkpoint hash to b.
func AppendKey(b []byte, mmsi ais.MMSI) []byte {
	b = append(b, KeyPrefix...)
	return mmsi.Append(b)
}

// Store is the slice of the kvstore surface checkpoints need; both
// *kvstore.Store and the chaos fault-injection wrapper satisfy it.
type Store interface {
	HSetMulti(key string, fields map[string]string) (int, error)
	HGetAll(key string) (map[string]string, error)
	Del(keys ...string) int
}

// Snapshot is one vessel's checkpointed state: the retained report
// window, time-ordered, newest last.
type Snapshot struct {
	MMSI    ais.MMSI
	Reports []ais.PositionReport
}

// LastSeen returns the timestamp of the newest checkpointed report —
// the watermark broker replay is deduplicated against. Zero when the
// snapshot is empty.
func (s Snapshot) LastSeen() time.Time {
	if len(s.Reports) == 0 {
		return time.Time{}
	}
	return s.Reports[len(s.Reports)-1].Timestamp
}

// Encode renders the snapshot as a versioned field map for HSetMulti.
// Floats round-trip exactly ('g', -1) so a rehydrated window produces
// bit-identical model inputs, and timestamps carry nanoseconds so the
// replay dedup comparison in the vessel actor stays exact.
func Encode(s Snapshot) map[string]string {
	return map[string]string{
		"v":       strconv.Itoa(Version),
		"n":       strconv.Itoa(len(s.Reports)),
		"last_ts": strconv.FormatInt(s.LastSeen().UnixNano(), 10),
		"hist":    string(AppendHistory(make([]byte, 0, len(s.Reports)*64), s.Reports)),
	}
}

// AppendReport appends one report as comma-separated fields:
// unixnano,lat,lon,sog,cog,heading,status,class.
func AppendReport(b []byte, r ais.PositionReport) []byte {
	b = strconv.AppendInt(b, r.Timestamp.UnixNano(), 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.Lat, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.Lon, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.SOG, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.COG, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.Heading), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.Status), 10)
	b = append(b, ',')
	return strconv.AppendInt(b, int64(r.Class), 10)
}

// AppendHistory appends the ';'-joined encoded report window to b.
func AppendHistory(b []byte, reports []ais.PositionReport) []byte {
	for i, r := range reports {
		if i > 0 {
			b = append(b, ';')
		}
		b = AppendReport(b, r)
	}
	return b
}

// Encoder renders snapshots into reused buffers so a steady checkpoint
// cadence costs one string conversion per save instead of one string
// per report field. Not safe for concurrent use; each writer actor owns
// one.
type Encoder struct {
	buf    []byte
	fields []kvstore.Field
}

// Fields encodes s exactly like Encode but as a field slice for
// HSetFields, with all four values sharing one backing string. The
// returned slice and its values are valid until the next call.
func (e *Encoder) Fields(s Snapshot) []kvstore.Field {
	b := e.buf[:0]
	b = strconv.AppendInt(b, Version, 10)
	vEnd := len(b)
	b = strconv.AppendInt(b, int64(len(s.Reports)), 10)
	nEnd := len(b)
	b = strconv.AppendInt(b, s.LastSeen().UnixNano(), 10)
	tsEnd := len(b)
	b = AppendHistory(b, s.Reports)
	e.buf = b
	doc := string(b)
	e.fields = append(e.fields[:0],
		kvstore.Field{Name: "v", Value: doc[:vEnd]},
		kvstore.Field{Name: "n", Value: doc[vEnd:nEnd]},
		kvstore.Field{Name: "last_ts", Value: doc[nEnd:tsEnd]},
		kvstore.Field{Name: "hist", Value: doc[tsEnd:]},
	)
	return e.fields
}

// Decode parses a field map written by Encode back into a snapshot for
// the given vessel. It fails on unknown versions and on any field it
// cannot parse — a corrupt checkpoint must degrade to a cold start,
// never to a half-restored window.
func Decode(mmsi ais.MMSI, fields map[string]string) (Snapshot, error) {
	v, err := strconv.Atoi(fields["v"])
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: bad version %q", fields["v"])
	}
	if v != Version {
		return Snapshot{}, fmt.Errorf("checkpoint: unsupported version %d (have %d)", v, Version)
	}
	n, err := strconv.Atoi(fields["n"])
	if err != nil || n < 0 {
		return Snapshot{}, fmt.Errorf("checkpoint: bad report count %q", fields["n"])
	}
	s := Snapshot{MMSI: mmsi}
	if n == 0 {
		return s, nil
	}
	parts := strings.Split(fields["hist"], ";")
	if len(parts) != n {
		return Snapshot{}, fmt.Errorf("checkpoint: count %d but %d encoded reports", n, len(parts))
	}
	s.Reports = make([]ais.PositionReport, 0, n)
	var prev time.Time
	for _, part := range parts {
		r, err := decodeReport(mmsi, part)
		if err != nil {
			return Snapshot{}, err
		}
		if len(s.Reports) > 0 && !r.Timestamp.After(prev) {
			return Snapshot{}, fmt.Errorf("checkpoint: reports out of order at %v", r.Timestamp)
		}
		prev = r.Timestamp
		s.Reports = append(s.Reports, r)
	}
	return s, nil
}

func decodeReport(mmsi ais.MMSI, s string) (ais.PositionReport, error) {
	f := strings.Split(s, ",")
	if len(f) != 8 {
		return ais.PositionReport{}, fmt.Errorf("checkpoint: report needs 8 fields, got %d", len(f))
	}
	ns, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return ais.PositionReport{}, fmt.Errorf("checkpoint: bad timestamp %q", f[0])
	}
	var fl [4]float64
	for i := 0; i < 4; i++ {
		if fl[i], err = strconv.ParseFloat(f[1+i], 64); err != nil {
			return ais.PositionReport{}, fmt.Errorf("checkpoint: bad float %q", f[1+i])
		}
	}
	heading, err := strconv.Atoi(f[5])
	if err != nil {
		return ais.PositionReport{}, fmt.Errorf("checkpoint: bad heading %q", f[5])
	}
	status, err := strconv.Atoi(f[6])
	if err != nil {
		return ais.PositionReport{}, fmt.Errorf("checkpoint: bad status %q", f[6])
	}
	class, err := strconv.Atoi(f[7])
	if err != nil {
		return ais.PositionReport{}, fmt.Errorf("checkpoint: bad class %q", f[7])
	}
	return ais.PositionReport{
		MMSI:      mmsi,
		Class:     ais.Class(class),
		Status:    ais.NavStatus(status),
		Lat:       fl[0],
		Lon:       fl[1],
		SOG:       fl[2],
		COG:       fl[3],
		Heading:   heading,
		Timestamp: time.Unix(0, ns).UTC(),
	}, nil
}

// Save writes the snapshot into the store as one batched hash write.
func Save(st Store, s Snapshot) error {
	_, err := st.HSetMulti(Key(s.MMSI), Encode(s))
	return err
}

// Load reads a vessel's checkpoint. ok is false when none exists; a
// present-but-undecodable checkpoint returns an error so callers can
// fall back to a cold start (and count the loss).
func Load(st Store, mmsi ais.MMSI) (Snapshot, bool, error) {
	fields, err := st.HGetAll(Key(mmsi))
	if err != nil {
		return Snapshot{}, false, err
	}
	if len(fields) == 0 {
		return Snapshot{}, false, nil
	}
	s, err := Decode(mmsi, fields)
	if err != nil {
		return Snapshot{}, false, err
	}
	return s, true, nil
}

// Delete removes a vessel's checkpoint.
func Delete(st Store, mmsi ais.MMSI) { st.Del(Key(mmsi)) }

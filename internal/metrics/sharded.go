package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the striped (sharded) observability primitives of the
// hot message path. The single-mutex LatencyRecorder and Counter above
// serialise every observation system-wide; at the paper's Figure 6
// scale (170K+ live vessel actors reporting concurrently) that lock is
// a global contention point. The sharded variants spread observations
// over padded per-shard slots — callers pass a cheap routing hint (the
// MMSI, a hash, any stable integer) — and merge only when a snapshot is
// taken.

// mix64 is the SplitMix64 finalizer: it spreads low-entropy hints
// (sequential MMSIs, small worker ids) over the full word so the shard
// mask sees uniform bits.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// nextPow2 rounds n up to a power of two, minimum 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// defaultShards is sized past current core counts; each shard costs one
// cache line.
const defaultShards = 16

// counterShard is one padded counter slot; the pad keeps neighbouring
// shards off the same cache line so increments don't false-share.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a striped counter: increments land on the hinted
// shard's padded slot, Value merges all shards. It trades a slightly
// more expensive read (N loads) for contention-free writes.
type ShardedCounter struct {
	shards []counterShard
	mask   uint64
}

// NewShardedCounter creates a counter striped over the given number of
// shards (rounded up to a power of two; <=0 selects the default).
func NewShardedCounter(shards int) *ShardedCounter {
	if shards <= 0 {
		shards = defaultShards
	}
	n := nextPow2(shards)
	return &ShardedCounter{shards: make([]counterShard, n), mask: uint64(n - 1)}
}

// Inc adds n on the shard selected by hint.
func (c *ShardedCounter) Inc(hint uint64, n int64) {
	c.shards[mix64(hint)&c.mask].v.Add(n)
}

// Value returns the merged count.
func (c *ShardedCounter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// accumShard is one padded (count, sum) pair.
type accumShard struct {
	count atomic.Int64
	sum   atomic.Int64
	_     [48]byte
}

// ShardedAccumulator accumulates integer observations on padded
// per-shard (count, sum) slots and surrenders them wholesale on Drain.
// It decouples high-frequency recording (one padded atomic add per
// observation) from aggregation (a sampler draining at its own pace) —
// the structure behind the Figure 6 moving-average series.
type ShardedAccumulator struct {
	shards []accumShard
	mask   uint64
}

// NewShardedAccumulator creates an accumulator striped over the given
// number of shards (rounded up to a power of two; <=0 selects the
// default).
func NewShardedAccumulator(shards int) *ShardedAccumulator {
	if shards <= 0 {
		shards = defaultShards
	}
	n := nextPow2(shards)
	return &ShardedAccumulator{shards: make([]accumShard, n), mask: uint64(n - 1)}
}

// Add records one observation on the shard selected by hint.
func (a *ShardedAccumulator) Add(hint uint64, v int64) {
	sh := &a.shards[mix64(hint)&a.mask]
	sh.count.Add(1)
	sh.sum.Add(v)
}

// Drain atomically takes and zeroes every shard, returning the merged
// (count, sum) since the previous drain. An Add racing the two swaps of
// its shard can land its count in one drain and its sum in the next;
// the skew is one observation per shard and washes out of any windowed
// mean, which is the intended consumer.
func (a *ShardedAccumulator) Drain() (count, sum int64) {
	for i := range a.shards {
		count += a.shards[i].count.Swap(0)
		sum += a.shards[i].sum.Swap(0)
	}
	return count, sum
}

// latencyShard is one stripe of a ShardedLatencyRecorder: its own
// mutex, ring of exact samples and running aggregates.
type latencyShard struct {
	mu      sync.Mutex
	samples []time.Duration
	cap     int
	count   int64
	sum     time.Duration
	max     time.Duration
	_       [32]byte
}

func (sh *latencyShard) observe(d time.Duration) {
	sh.mu.Lock()
	sh.count++
	sh.sum += d
	if d > sh.max {
		sh.max = d
	}
	if len(sh.samples) < sh.cap {
		sh.samples = append(sh.samples, d)
	} else {
		sh.samples[int(sh.count)%sh.cap] = d
	}
	sh.mu.Unlock()
}

// ShardedLatencyRecorder is the striped counterpart of LatencyRecorder:
// observations take only their shard's mutex, and Snapshot merges the
// shards (concatenating the sample rings before computing quantiles).
type ShardedLatencyRecorder struct {
	shards []latencyShard
	mask   uint64
}

// NewShardedLatencyRecorder stripes up to capacity exact samples over
// the given number of shards (both rounded up / defaulted as in the
// unsharded recorder).
func NewShardedLatencyRecorder(shards, capacity int) *ShardedLatencyRecorder {
	if shards <= 0 {
		shards = defaultShards
	}
	if capacity <= 0 {
		capacity = 1 << 16
	}
	n := nextPow2(shards)
	perShard := capacity / n
	if perShard < 1 {
		perShard = 1
	}
	l := &ShardedLatencyRecorder{shards: make([]latencyShard, n), mask: uint64(n - 1)}
	for i := range l.shards {
		l.shards[i].cap = perShard
	}
	return l
}

// Observe records one duration on the shard selected by hint.
func (l *ShardedLatencyRecorder) Observe(hint uint64, d time.Duration) {
	l.shards[mix64(hint)&l.mask].observe(d)
}

// Snapshot merges every shard into one summary.
func (l *ShardedLatencyRecorder) Snapshot() Snapshot {
	var (
		s      Snapshot
		sum    time.Duration
		merged []time.Duration
	)
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		s.Count += sh.count
		sum += sh.sum
		if sh.max > s.Max {
			s.Max = sh.max
		}
		merged = append(merged, sh.samples...)
		sh.mu.Unlock()
	}
	if s.Count > 0 {
		s.Mean = time.Duration(int64(sum) / s.Count)
	}
	if len(merged) == 0 {
		return s
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	q := func(f float64) time.Duration {
		idx := int(math.Ceil(f*float64(len(merged)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(merged) {
			idx = len(merged) - 1
		}
		return merged[idx]
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// Operations: the extensions of the paper's future-work section (§7)
// working together on one scenario — a forecast collision triggers an
// automated rerouting suggestion, port congestion is monitored and
// predicted from the same route forecasts, and the weather layer
// annotates every decision point.
package main

import (
	"fmt"
	"log"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/avoid"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/pipeline"
	"seatwin/internal/weather"
)

func main() {
	start := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	piraeus := congestion.Port{
		Name: "Piraeus", Pos: geo.Point{Lat: 37.925, Lon: 23.600},
		Radius: 6000, Capacity: 3,
	}

	cfg := pipeline.DefaultConfig(events.NewKinematicForecaster())
	cfg.Ports = []congestion.Port{piraeus}
	p, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	// Two vessels on a head-on collision course south of the port, plus
	// a stream of arrivals into Piraeus.
	meet := geo.Point{Lat: 37.70, Lon: 23.55}
	own := struct {
		mmsi ais.MMSI
		pos  geo.Point
		cog  float64
	}{237000100, geo.DeadReckon(meet, 12, 270, 900), 90}
	other := geo.DeadReckon(meet, 12, 90, 900)
	feed := func(mmsi ais.MMSI, from geo.Point, cog, sog float64) {
		for i := 0; i < 4; i++ {
			at := start.Add(time.Duration(i) * 30 * time.Second)
			pos := geo.DeadReckon(from, sog, cog, at.Sub(start).Seconds())
			p.Ingest(ais.PositionReport{
				MMSI: mmsi, Lat: pos.Lat, Lon: pos.Lon, SOG: sog, COG: cog,
				Status: ais.StatusUnderWayEngine, Timestamp: at,
			}, at)
		}
	}
	feed(own.mmsi, own.pos, own.cog, 12)
	feed(237000200, other, 270, 12)
	// Inbound traffic for the congestion monitor.
	for i := 0; i < 5; i++ {
		bearing := 120.0 + float64(i)*25
		d := 12*geo.KnotsToMetersPerSecond*float64(8+4*i)*60 + piraeus.Radius
		from := geo.Destination(piraeus.Pos, bearing, d)
		feed(ais.MMSI(237000300+i), from, geo.InitialBearing(from, piraeus.Pos), 12)
	}
	p.Drain(5 * time.Second)

	// 1. The event list surfaces the forecast collision.
	collisions := p.EventLog().ByKind(events.KindCollisionForecast)
	if len(collisions) == 0 {
		log.Fatal("no collision forecast — scenario broken")
	}
	e := collisions[0]
	fmt.Printf("forecast collision: %s x %s at %s (separation %.0f m)\n",
		e.A, e.B, e.At.Format("15:04:05"), e.Meters)

	// 2. Automated rerouting: rebuild both forecasts and ask for the
	// minimal clearing manoeuvre for own ship.
	kin := events.NewKinematicForecaster()
	last := start.Add(90 * time.Second)
	ownPos := geo.DeadReckon(own.pos, 12, own.cog, last.Sub(start).Seconds())
	otherFc, _ := kin.ForecastTrack([]ais.PositionReport{{
		MMSI: 237000200, Lat: geo.DeadReckon(other, 12, 270, 90).Lat,
		Lon: geo.DeadReckon(other, 12, 270, 90).Lon,
		SOG: 12, COG: 270, Timestamp: last,
	}})
	m, needed, found := avoid.Suggest(avoid.OwnShip{
		MMSI: own.mmsi, Pos: ownPos, SOG: 12, COG: own.cog, At: last,
	}, []events.Forecast{otherFc}, avoid.DefaultConfig())
	switch {
	case !needed:
		fmt.Println("rerouting: current course already safe")
	case found:
		fmt.Printf("rerouting: alter course %+.0f° to %03.0f° (predicted CPA %.0f m)\n",
			m.AlterationDeg, m.NewCOG, m.PredictedCPAMeters)
	default:
		fmt.Println("rerouting: no course-only solution; reduce speed")
	}

	// 3. Port congestion from the same forecasts.
	for _, st := range p.Congestion().Snapshot(time.Time{}) {
		flag := ""
		if st.Congested() {
			flag = "  ** CONGESTED **"
		}
		fmt.Printf("port %s: %d berthed/anchored, %d arriving within 30 min (capacity %d)%s\n",
			st.Port.Name, st.Present, st.Arriving, st.Port.Capacity, flag)
	}

	// 4. Weather at the decision points.
	field := weather.NewField(2026)
	for _, spot := range []struct {
		name string
		pos  geo.Point
	}{{"collision point", e.Pos}, {"Piraeus approach", piraeus.Pos}} {
		c := field.At(spot.pos, last)
		severity := "workable"
		if c.Severe() {
			severity = "SEVERE"
		}
		fmt.Printf("weather at %s: wind %.0f kn from %03.0f°, waves %.1f m (%s, speed factor %.2f)\n",
			spot.name, c.WindKnots, c.WindDirDeg, c.WaveHeightM, severity,
			weather.SpeedFactor(c, own.cog))
	}
}

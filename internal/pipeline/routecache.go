package pipeline

import (
	"strconv"
	"strings"
	"sync"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/hexgrid"
)

// routeCache maps an integer entity key (MMSI or hexgrid cell) straight
// to its actor PID, so the per-report hot path skips both the
// "v-"+strconv name building and the registry's string hashing. It is
// sharded like the registry so parallel ingestion workers only contend
// when their keys land on the same stripe.
//
// Correctness model: the cache is a hint, never an authority. A hit is
// only used after a PID liveness check, and a miss (or a dead hit)
// falls back to the registry's GetOrSpawn, which re-populates the
// cache. Entries are invalidated through the actor system's unregister
// hook (death, passivation, eager dead-entry cleanup), with
// compare-and-delete semantics so an invalidation can never remove a
// newer PID cached under the same key. A stale dead PID can therefore
// survive in the cache only transiently and is screened out on every
// read — a passivated actor is never resurrected through the cache.
type routeCache struct {
	shards [routeShardCount]routeShard
}

// routeShardCount stripes the cache (power of two). 64 matches the
// registry's stripe count.
const routeShardCount = 64

type routeShard struct {
	mu sync.RWMutex
	m  map[uint64]*actor.PID
	_  [40]byte // keep neighbouring shards off one cache line
}

func newRouteCache() *routeCache {
	c := &routeCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*actor.PID)
	}
	return c
}

// mix64 is the splitmix64 finaliser: route keys are dense (sequential
// MMSI blocks, neighbouring cells), so the raw low bits would pile onto
// a few shards.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (c *routeCache) shardOf(key uint64) *routeShard {
	return &c.shards[mix64(key)&(routeShardCount-1)]
}

// get returns the cached PID for key if it is still alive. Dead hits
// return nil so the caller takes the slow path; the stale entry is left
// for the unregister hook (or the next put) to clear.
func (c *routeCache) get(key uint64) *actor.PID {
	sh := c.shardOf(key)
	sh.mu.RLock()
	pid := sh.m[key]
	sh.mu.RUnlock()
	if pid.Alive() {
		return pid
	}
	return nil
}

// put caches pid under key. If the actor died before the entry landed
// (its unregister hook may already have run and found nothing to
// delete), the entry is removed again so a dead PID is never left
// looking authoritative.
func (c *routeCache) put(key uint64, pid *actor.PID) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	sh.m[key] = pid
	sh.mu.Unlock()
	if !pid.Alive() {
		c.invalidate(key, pid)
	}
}

// invalidate removes the entry for key iff it still holds pid
// (compare-and-delete): an unregister racing a respawn must not evict
// the successor's fresh entry.
func (c *routeCache) invalidate(key uint64, pid *actor.PID) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if sh.m[key] == pid {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// forEach calls fn for every cached route. Entries are snapshotted per
// shard first so fn runs without any cache lock held (fn may trigger
// actor stops whose unregister hooks re-enter the cache).
func (c *routeCache) forEach(fn func(key uint64, pid *actor.PID)) {
	type entry struct {
		key uint64
		pid *actor.PID
	}
	var buf []entry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		buf = buf[:0]
		for k, pid := range sh.m {
			buf = append(buf, entry{k, pid})
		}
		sh.mu.RUnlock()
		for _, e := range buf {
			fn(e.key, e.pid)
		}
	}
}

// size returns the number of cached routes (tests and introspection).
func (c *routeCache) size() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// Actor-name prefixes of the routed actor families. The unregister hook
// parses keys back out of registry names: cold path, runs once per
// actor death.
const (
	vesselNamePrefix    = "v-"
	proximityNamePrefix = "px-"
	collisionNamePrefix = "cx-"
)

// vesselActorName renders the registry name of a vessel actor.
func vesselActorName(mmsi ais.MMSI) string {
	return vesselNamePrefix + strconv.FormatUint(uint64(mmsi), 10)
}

// proximityActorName renders the registry name of a proximity cell actor.
func proximityActorName(cell hexgrid.Cell) string {
	return proximityNamePrefix + strconv.FormatUint(uint64(cell), 16)
}

// collisionActorName renders the registry name of a collision cell actor.
func collisionActorName(cell hexgrid.Cell) string {
	return collisionNamePrefix + strconv.FormatUint(uint64(cell), 16)
}

// onActorUnregistered is installed as the actor system's unregister
// hook: every PID leaving the named registry — stop, passivation,
// supervision escalation or eager dead-entry cleanup — drops its route
// cache entry, keyed back out of the registry name.
func (p *Pipeline) onActorUnregistered(pid *actor.PID) {
	name := pid.Name()
	switch {
	case strings.HasPrefix(name, vesselNamePrefix):
		if mmsi, err := strconv.ParseUint(name[len(vesselNamePrefix):], 10, 64); err == nil {
			p.vesselRoutes.invalidate(mmsi, pid)
		}
	case strings.HasPrefix(name, proximityNamePrefix):
		if cell, err := strconv.ParseUint(name[len(proximityNamePrefix):], 16, 64); err == nil {
			p.proximityRoutes.invalidate(cell, pid)
		}
	case strings.HasPrefix(name, collisionNamePrefix):
		if cell, err := strconv.ParseUint(name[len(collisionNamePrefix):], 16, 64); err == nil {
			p.collisionRoutes.invalidate(cell, pid)
		}
	}
}

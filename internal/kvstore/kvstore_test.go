package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSetGetDel(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("k", "v")
	v, ok, err := s.Get("k")
	if err != nil || !ok || v != "v" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if n := s.Del("k", "missing"); n != 1 {
		t.Fatalf("del = %d", n)
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("key survived delete")
	}
}

func TestSetOverwritesKindAndTTL(t *testing.T) {
	s := New()
	defer s.Close()
	s.HSet("k", "f", "v")
	s.Set("k", "plain") // overwrite hash with string
	v, ok, err := s.Get("k")
	if err != nil || !ok || v != "plain" {
		t.Fatalf("get after overwrite: %q %v %v", v, ok, err)
	}
	s.SetEx("e", "v", time.Minute)
	s.Set("e", "v2") // plain SET clears the TTL
	if ttl, ok := s.TTL("e"); !ok || ttl >= 0 {
		t.Fatalf("ttl after plain set = %v %v, want -1 (no expiry)", ttl, ok)
	}
}

func TestExpiry(t *testing.T) {
	s := New()
	defer s.Close()
	s.SetEx("k", "v", 30*time.Millisecond)
	if !s.Exists("k") {
		t.Fatal("key must exist before expiry")
	}
	time.Sleep(60 * time.Millisecond)
	if s.Exists("k") {
		t.Fatal("key must be gone after expiry")
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("expired key readable")
	}
}

func TestExpireAndTTL(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("k", "v")
	if ttl, ok := s.TTL("k"); !ok || ttl >= 0 {
		t.Fatalf("no-expiry TTL = %v %v", ttl, ok)
	}
	if !s.Expire("k", time.Hour) {
		t.Fatal("expire on existing key must succeed")
	}
	ttl, ok := s.TTL("k")
	if !ok || ttl <= 59*time.Minute || ttl > time.Hour {
		t.Fatalf("ttl = %v %v", ttl, ok)
	}
	if s.Expire("missing", time.Hour) {
		t.Fatal("expire on missing key must fail")
	}
	if _, ok := s.TTL("missing"); ok {
		t.Fatal("TTL on missing key must report absent")
	}
}

func TestWrongTypeErrors(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("str", "v")
	if _, err := s.HGetAll("str"); err != ErrWrongType {
		t.Fatalf("HGetAll on string: %v", err)
	}
	if _, err := s.ZAdd("str", 1, "m"); err != ErrWrongType {
		t.Fatalf("ZAdd on string: %v", err)
	}
	s.HSet("h", "f", "v")
	if _, _, err := s.Get("h"); err != ErrWrongType {
		t.Fatalf("Get on hash: %v", err)
	}
}

func TestHashOps(t *testing.T) {
	s := New()
	defer s.Close()
	isNew, err := s.HSet("vessel:123", "lat", "37.9")
	if err != nil || !isNew {
		t.Fatalf("hset: %v %v", isNew, err)
	}
	isNew, _ = s.HSet("vessel:123", "lat", "38.0")
	if isNew {
		t.Fatal("overwriting field must not report new")
	}
	s.HSet("vessel:123", "lon", "23.6")
	m, err := s.HGetAll("vessel:123")
	if err != nil || len(m) != 2 || m["lat"] != "38.0" {
		t.Fatalf("hgetall: %v %v", m, err)
	}
	if n, _ := s.HLen("vessel:123"); n != 2 {
		t.Fatalf("hlen = %d", n)
	}
	if n, _ := s.HDel("vessel:123", "lat", "missing"); n != 1 {
		t.Fatalf("hdel = %d", n)
	}
	if _, ok, _ := s.HGet("vessel:123", "lat"); ok {
		t.Fatal("deleted field readable")
	}
	// Deleting the last field removes the key entirely.
	s.HDel("vessel:123", "lon")
	if s.Exists("vessel:123") {
		t.Fatal("empty hash must vanish")
	}
}

func TestHSetFields(t *testing.T) {
	s := New()
	defer s.Close()
	added, err := s.HSetFields("vessel:124", []Field{
		{Name: "lat", Value: "37.9"},
		{Name: "lon", Value: "23.6"},
		{Name: "lat", Value: "38.0"}, // later duplicate wins, not re-counted
	})
	if err != nil || added != 2 {
		t.Fatalf("hsetfields: added=%d err=%v", added, err)
	}
	m, err := s.HGetAll("vessel:124")
	if err != nil || len(m) != 2 || m["lat"] != "38.0" || m["lon"] != "23.6" {
		t.Fatalf("hgetall: %v %v", m, err)
	}
	// Rewriting the same document reports zero new fields, like HSetMulti.
	added, err = s.HSetFields("vessel:124", []Field{
		{Name: "lat", Value: "38.1"}, {Name: "lon", Value: "23.7"},
	})
	if err != nil || added != 0 {
		t.Fatalf("rewrite: added=%d err=%v", added, err)
	}
	if v, ok, _ := s.HGet("vessel:124", "lat"); !ok || v != "38.1" {
		t.Fatalf("lat = %q %v", v, ok)
	}
}

func TestZSetBasics(t *testing.T) {
	s := New()
	defer s.Close()
	s.ZAdd("events", 100, "e1")
	s.ZAdd("events", 50, "e2")
	s.ZAdd("events", 75, "e3")
	members, err := s.ZRangeByScore("events", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 || members[0].Member != "e2" || members[2].Member != "e1" {
		t.Fatalf("range = %v", members)
	}
	if n, _ := s.ZCard("events"); n != 3 {
		t.Fatalf("zcard = %d", n)
	}
	if sc, ok, _ := s.ZScore("events", "e3"); !ok || sc != 75 {
		t.Fatalf("zscore = %v %v", sc, ok)
	}
	// Update score re-sorts.
	s.ZAdd("events", 10, "e1")
	members, _ = s.ZRangeByScore("events", 0, 1000)
	if members[0].Member != "e1" {
		t.Fatalf("after update: %v", members)
	}
	if n, _ := s.ZRem("events", "e1", "missing"); n != 1 {
		t.Fatalf("zrem = %d", n)
	}
}

func TestZRangeByScoreBounds(t *testing.T) {
	s := New()
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.ZAdd("z", float64(i), fmt.Sprintf("m%d", i))
	}
	got, _ := s.ZRangeByScore("z", 3, 6)
	if len(got) != 4 {
		t.Fatalf("inclusive range returned %d members", len(got))
	}
	if got[0].Score != 3 || got[3].Score != 6 {
		t.Fatalf("range = %v", got)
	}
	if empty, _ := s.ZRangeByScore("z", 100, 200); empty != nil {
		t.Fatalf("out-of-range must be empty, got %v", empty)
	}
}

func TestZRevRangeByScoreLimit(t *testing.T) {
	s := New()
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.ZAdd("z", float64(i), fmt.Sprintf("m%d", i))
	}
	got, err := s.ZRevRangeByScore("z", 0, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Member != "m9" || got[1].Member != "m8" || got[2].Member != "m7" {
		t.Fatalf("rev limit 3 = %v", got)
	}
	// limit <= 0 returns the whole matching range, descending.
	all, _ := s.ZRevRangeByScore("z", 0, 1000, 0)
	if len(all) != 10 || all[0].Member != "m9" || all[9].Member != "m0" {
		t.Fatalf("rev unbounded = %v", all)
	}
	// Score bounds stay inclusive on both ends.
	mid, _ := s.ZRevRangeByScore("z", 3, 6, 0)
	if len(mid) != 4 || mid[0].Score != 6 || mid[3].Score != 3 {
		t.Fatalf("rev bounded = %v", mid)
	}
	if empty, _ := s.ZRevRangeByScore("z", 100, 200, 5); empty != nil {
		t.Fatalf("out-of-range must be empty, got %v", empty)
	}
	if missing, _ := s.ZRevRangeByScore("nope", 0, 1, 5); missing != nil {
		t.Fatalf("missing key must be empty, got %v", missing)
	}
	s.Set("str", "x")
	if _, err := s.ZRevRangeByScore("str", 0, 1, 5); err != ErrWrongType {
		t.Fatalf("wrong type error = %v", err)
	}
}

func TestZSetOrderingPropertyBased(t *testing.T) {
	f := func(scores []float64) bool {
		z := newZSet()
		for i, sc := range scores {
			z.add(sc, fmt.Sprintf("m%d", i))
		}
		all := z.rangeByScore(negInf, posInf)
		if len(all) != len(z.scores) {
			return false
		}
		return sort.SliceIsSorted(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score < all[j].Score
			}
			return all[i].Member < all[j].Member
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZSetAddRemoveInvariant(t *testing.T) {
	z := newZSet()
	rng := rand.New(rand.NewSource(5))
	live := map[string]float64{}
	for i := 0; i < 2000; i++ {
		member := fmt.Sprintf("m%d", rng.Intn(100))
		if rng.Float64() < 0.6 {
			score := float64(rng.Intn(50))
			z.add(score, member)
			live[member] = score
		} else {
			z.remove(member)
			delete(live, member)
		}
		if z.len() != len(live) {
			t.Fatalf("iteration %d: len %d want %d", i, z.len(), len(live))
		}
	}
	for m, sc := range live {
		if got, ok := z.score(m); !ok || got != sc {
			t.Fatalf("member %s: score %v %v want %v", m, got, ok, sc)
		}
	}
}

func TestPubSub(t *testing.T) {
	s := New()
	defer s.Close()
	ch, cancel := s.Subscribe("events", 8)
	defer cancel()
	if n := s.Publish("events", "hello"); n != 1 {
		t.Fatalf("publish reached %d subscribers", n)
	}
	select {
	case m := <-ch:
		if m.Payload != "hello" || m.Channel != "events" {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message never delivered")
	}
	cancel()
	if n := s.Publish("events", "after"); n != 0 {
		t.Fatalf("publish after cancel reached %d", n)
	}
	// Channel must be closed after cancel.
	if _, open := <-ch; open {
		t.Fatal("subscription channel must close on cancel")
	}
}

func TestPubSubSlowSubscriberDoesNotBlock(t *testing.T) {
	s := New()
	defer s.Close()
	_, cancel := s.Subscribe("busy", 1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			s.Publish("busy", "m")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("s1", "v1")
	s.SetEx("s2", "v2", time.Hour)
	s.HSet("h1", "f1", "a")
	s.HSet("h1", "f2", "b")
	s.ZAdd("z1", 3, "m3")
	s.ZAdd("z1", 1, "m1")

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	defer s2.Close()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s2.Get("s1"); !ok || v != "v1" {
		t.Fatalf("s1 = %q %v", v, ok)
	}
	if ttl, ok := s2.TTL("s2"); !ok || ttl <= 0 {
		t.Fatalf("s2 ttl = %v %v", ttl, ok)
	}
	m, _ := s2.HGetAll("h1")
	if len(m) != 2 || m["f1"] != "a" {
		t.Fatalf("h1 = %v", m)
	}
	members, _ := s2.ZRangeByScore("z1", negInf, posInf)
	if len(members) != 2 || members[0].Member != "m1" {
		t.Fatalf("z1 = %v", members)
	}
}

func TestSnapshotFile(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("k", "v")
	path := t.TempDir() + "/snap.rdb"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	defer s2.Close()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s2.Get("k"); !ok || v != "v" {
		t.Fatalf("loaded %q %v", v, ok)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	s := New()
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%37)
				switch i % 4 {
				case 0:
					s.Set(key, "v")
				case 1:
					s.Get(key)
				case 2:
					s.HSet("h"+key, "f", "v")
				case 3:
					s.ZAdd("z-shared", float64(i), fmt.Sprintf("m%d-%d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()
	if n, err := s.ZCard("z-shared"); err != nil || n != 8*125 {
		t.Fatalf("zcard = %d %v", n, err)
	}
}

func BenchmarkSet(b *testing.B) {
	s := New()
	defer s.Close()
	for i := 0; i < b.N; i++ {
		s.Set("key", "value")
	}
}

func BenchmarkHSet(b *testing.B) {
	s := New()
	defer s.Close()
	for i := 0; i < b.N; i++ {
		s.HSet("vessel:123", "state", "payload")
	}
}

// BenchmarkWriteStateFields compares the writer actor's two shapes of
// a vessel-state update: eight individual HSet calls (eight store-lock
// round-trips) against one batched HSetMulti.
func BenchmarkWriteStateFields(b *testing.B) {
	fields := map[string]string{
		"lat": "37.96600", "lon": "23.71400", "sog": "12.5", "cog": "118.0",
		"status": "UnderWayUsingEngine", "ts": "2026-07-05T09:00:00Z",
		"name": "MV BENCH", "type": "70",
	}
	b.Run("hset-per-field", func(b *testing.B) {
		s := New()
		defer s.Close()
		for i := 0; i < b.N; i++ {
			for f, v := range fields {
				s.HSet("vessel:123", f, v)
			}
		}
	})
	b.Run("hsetmulti", func(b *testing.B) {
		s := New()
		defer s.Close()
		for i := 0; i < b.N; i++ {
			s.HSetMulti("vessel:123", fields)
		}
	})
}

func BenchmarkZAdd(b *testing.B) {
	s := New()
	defer s.Close()
	for i := 0; i < b.N; i++ {
		s.ZAdd("z", float64(i%1000), fmt.Sprintf("m%d", i%1000))
	}
}

func TestKeysWithPrefix(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("ckpt:100000001", "a")
	s.Set("ckpt:100000002", "b")
	s.Set("ckpt:1", "overlap") // shares the "ckpt:1" prefix with the first two
	s.Set("vessel:100000001", "c")
	s.Set("ck", "not-a-checkpoint")

	want := func(prefix string, keys ...string) {
		t.Helper()
		got := s.KeysWithPrefix(prefix)
		sort.Strings(got)
		sort.Strings(keys)
		if len(got) != len(keys) {
			t.Fatalf("KeysWithPrefix(%q) = %v, want %v", prefix, got, keys)
		}
		for i := range got {
			if got[i] != keys[i] {
				t.Fatalf("KeysWithPrefix(%q) = %v, want %v", prefix, got, keys)
			}
		}
	}

	// Empty prefix returns every live key.
	want("", "ckpt:100000001", "ckpt:100000002", "ckpt:1", "vessel:100000001", "ck")
	// A namespace prefix.
	want("ckpt:", "ckpt:100000001", "ckpt:100000002", "ckpt:1")
	// Overlapping prefixes: "ckpt:1" is both a full key and a prefix of
	// two longer ones — all three must match.
	want("ckpt:1", "ckpt:100000001", "ckpt:100000002", "ckpt:1")
	want("ckpt:100000001", "ckpt:100000001")
	// No matches.
	want("zzz:")
	// A prefix longer than any key.
	want("vessel:100000001-and-more")
}

func TestKeysWithPrefixSkipsExpired(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("p:alive", "v")
	s.SetEx("p:dead", "v", time.Nanosecond)
	time.Sleep(2 * time.Millisecond)
	got := s.KeysWithPrefix("p:")
	if len(got) != 1 || got[0] != "p:alive" {
		t.Fatalf("KeysWithPrefix over expired keys = %v, want [p:alive]", got)
	}
}

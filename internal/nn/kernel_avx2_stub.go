//go:build !amd64

package nn

// Non-amd64 builds never select the vector kernel; the portable scalar
// loop in compiled.go is the only GEMV path.
const hasAVX2FMA = false

func gemvHiddenAVX2(w, h, z *float64, hidden, width, in int) {
	panic("nn: vector kernel called on a platform without it")
}

func dotRows4AVX2(w, x, y *float64, groups, cols, stride int) {
	panic("nn: vector kernel called on a platform without it")
}

func deferredRank1AVX2(gw, x, a *float64, rows, cols, steps, gwStride, xStride, aStride int) {
	panic("nn: vector kernel called on a platform without it")
}

package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// This file holds the training-side observability counters. Training
// runs out-of-band from the message hot path (seatwin-train, the
// experiments harness, or an operator-triggered retrain inside a
// serving process), but it shares the process with the pipeline often
// enough that the serving endpoints should see it: a retrain that
// stalls or a loss that diverges is an operational event. The batch
// hook fires once per optimisation step from potentially many training
// goroutines, so the counters reuse the sharded primitives above.

// TrainStats is a merged snapshot of the training counters.
type TrainStats struct {
	// Runs counts completed Train calls (S-VRF fits).
	Runs int64
	// Epochs, Batches and Samples count optimisation progress across
	// all runs: epochs finished, optimiser steps taken, and training
	// samples consumed (samples counts each visit, so one window seen
	// in five epochs contributes five).
	Epochs  int64
	Batches int64
	Samples int64
	// ClipEvents counts batches whose gradient hit the clip bound — a
	// rising rate flags exploding gradients long before the loss does.
	ClipEvents int64
	// Lanes counts L-VRF lane graphs built across all route trainings.
	Lanes int64
	// TrainSeconds is the accumulated wall time spent inside epochs.
	TrainSeconds float64
	// LastLoss is the most recent per-epoch mean training loss.
	LastLoss float64
	// SamplesPerSec is the lifetime mean training throughput
	// (Samples / TrainSeconds), zero before the first epoch completes.
	SamplesPerSec float64
}

// TrainRecorder accumulates training observations on sharded counters.
// The zero value is not usable; call NewTrainRecorder.
type TrainRecorder struct {
	runs    *ShardedCounter
	epochs  *ShardedCounter
	batches *ShardedCounter
	samples *ShardedCounter
	clips   *ShardedCounter
	lanes   *ShardedCounter
	nanos   *ShardedCounter
	// lastLoss holds math.Float64bits of the latest epoch loss; a plain
	// atomic word because "latest wins" is the semantics we want.
	lastLoss atomic.Uint64
}

// NewTrainRecorder creates an empty recorder.
func NewTrainRecorder() *TrainRecorder {
	return &TrainRecorder{
		runs:    NewShardedCounter(0),
		epochs:  NewShardedCounter(0),
		batches: NewShardedCounter(0),
		samples: NewShardedCounter(0),
		clips:   NewShardedCounter(0),
		lanes:   NewShardedCounter(0),
		nanos:   NewShardedCounter(0),
	}
}

// Batch records one optimisation step: the number of samples in the
// batch and whether the gradient hit the clip bound. hint routes the
// increment to a shard (a running batch index works well).
func (t *TrainRecorder) Batch(hint uint64, samples int, clipped bool) {
	t.batches.Inc(hint, 1)
	t.samples.Inc(hint, int64(samples))
	if clipped {
		t.clips.Inc(hint, 1)
	}
}

// Epoch records one finished epoch: its mean training loss and wall
// duration.
func (t *TrainRecorder) Epoch(loss float64, d time.Duration) {
	t.epochs.Inc(0, 1)
	t.nanos.Inc(0, int64(d))
	t.lastLoss.Store(math.Float64bits(loss))
}

// Run records one completed training run.
func (t *TrainRecorder) Run() { t.runs.Inc(0, 1) }

// Lane records one L-VRF lane graph built; hint routes the increment
// (the lane's merge index works well).
func (t *TrainRecorder) Lane(hint uint64) { t.lanes.Inc(hint, 1) }

// Snapshot merges every counter into one TrainStats.
func (t *TrainRecorder) Snapshot() TrainStats {
	s := TrainStats{
		Runs:         t.runs.Value(),
		Epochs:       t.epochs.Value(),
		Batches:      t.batches.Value(),
		Samples:      t.samples.Value(),
		ClipEvents:   t.clips.Value(),
		Lanes:        t.lanes.Value(),
		TrainSeconds: time.Duration(t.nanos.Value()).Seconds(),
		LastLoss:     math.Float64frombits(t.lastLoss.Load()),
	}
	if s.TrainSeconds > 0 {
		s.SamplesPerSec = float64(s.Samples) / s.TrainSeconds
	}
	return s
}

// Training is the process-wide recorder: svrf.Train and lvrf.Train
// record into it, and the pipeline's /metrics and /api/stats endpoints
// snapshot it. A process that never trains reports zeros.
var Training = NewTrainRecorder()

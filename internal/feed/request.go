package feed

import (
	"fmt"
	"strconv"
	"strings"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// Request is the transport-independent subscribe request both the SSE
// endpoint and the TCP protocol resolve into hub topics.
type Request struct {
	// Vessels are MMSIs (any numeric form; normalised to the 9-digit
	// topic key).
	Vessels []string `json:"vessel,omitempty"`
	// Regions are hexgrid cell tokens ("hex:<res>:<q>:<r>") or
	// "lat,lon" pairs resolved to the hub's region resolution.
	Regions []string `json:"region,omitempty"`
	// Events are event classes ("proximity", "collision", "gap") or
	// "all".
	Events []string `json:"events,omitempty"`
	// Policy is the overflow policy name ("drop", "conflate",
	// "disconnect"; empty = drop).
	Policy string `json:"policy,omitempty"`
	// Buffer is the ring capacity (0 = hub default).
	Buffer int `json:"buffer,omitempty"`
}

// eventClasses are the valid events/* subscription classes.
var eventClasses = map[string]string{
	"proximity": TopicProximity,
	"collision": TopicCollision,
	"gap":       TopicGap,
}

// Resolve validates the request against the hub's configuration and
// returns the topic list plus subscription options. Errors describe the
// offending field (transports surface them as 4xx / error frames).
func (h *Hub) Resolve(req Request) ([]string, SubOptions, error) {
	var topics []string
	for _, v := range splitAll(req.Vessels) {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil || !ais.MMSI(n).Valid() {
			return nil, SubOptions{}, fmt.Errorf("feed: invalid vessel MMSI %q", v)
		}
		topics = append(topics, TopicVesselPrefix+ais.MMSI(n).String())
	}
	// Regions split on ';' (a "lat,lon" pair owns its comma); repeat the
	// query parameter or separate with ';' for several regions.
	for _, r := range splitOn(req.Regions, ";") {
		cell, err := h.resolveRegion(r)
		if err != nil {
			return nil, SubOptions{}, err
		}
		topics = append(topics, TopicRegionPrefix+cell.String())
	}
	for _, e := range splitAll(req.Events) {
		if e == "all" || e == "*" {
			topics = append(topics, TopicProximity, TopicCollision, TopicGap)
			continue
		}
		t, ok := eventClasses[e]
		if !ok {
			return nil, SubOptions{}, fmt.Errorf("feed: unknown event class %q (want proximity|collision|gap|all)", e)
		}
		topics = append(topics, t)
	}
	if len(topics) == 0 {
		return nil, SubOptions{}, ErrNoTopics
	}
	policy, ok := ParsePolicy(req.Policy)
	if !ok {
		return nil, SubOptions{}, fmt.Errorf("feed: unknown policy %q (want drop|conflate|disconnect)", req.Policy)
	}
	if req.Buffer < 0 || req.Buffer > 1<<20 {
		return nil, SubOptions{}, fmt.Errorf("feed: buffer %d out of range", req.Buffer)
	}
	return dedupTopics(topics), SubOptions{Buffer: req.Buffer, Policy: policy}, nil
}

// SubscribeRequest resolves and subscribes in one step.
func (h *Hub) SubscribeRequest(req Request) (*Subscription, error) {
	topics, opt, err := h.Resolve(req)
	if err != nil {
		return nil, err
	}
	return h.Subscribe(topics, opt)
}

// resolveRegion turns a region token (cell string or "lat,lon") into a
// cell at the hub's resolution.
func (h *Hub) resolveRegion(s string) (hexgrid.Cell, error) {
	if strings.HasPrefix(s, "hex:") {
		cell, err := hexgrid.ParseCell(s)
		if err != nil {
			return hexgrid.InvalidCell, err
		}
		if cell.Resolution() != h.regionRes {
			// Re-key the request onto the hub's grid via the centroid.
			cell = hexgrid.LatLonToCell(cell.Center(), h.regionRes)
		}
		return cell, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) == 2 {
		lat, errLat := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		lon, errLon := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if errLat == nil && errLon == nil {
			cell := hexgrid.LatLonToCell(geo.Point{Lat: lat, Lon: lon}, h.regionRes)
			if !cell.Valid() {
				return hexgrid.InvalidCell, fmt.Errorf("feed: position %q outside the grid domain", s)
			}
			return cell, nil
		}
	}
	return hexgrid.InvalidCell, fmt.Errorf("feed: region %q is neither a cell token nor lat,lon", s)
}

// splitAll expands comma-separated entries ("a,b" in one query value)
// and drops empties.
func splitAll(in []string) []string { return splitOn(in, ",") }

// splitOn expands entries on the given separator and drops empties.
func splitOn(in []string, sep string) []string {
	var out []string
	for _, v := range in {
		for _, part := range strings.Split(v, sep) {
			part = strings.TrimSpace(part)
			if part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

func dedupTopics(in []string) []string {
	seen := make(map[string]struct{}, len(in))
	out := in[:0]
	for _, t := range in {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

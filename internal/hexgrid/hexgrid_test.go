package hexgrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"seatwin/internal/geo"
)

func randomSeaPoint(rng *rand.Rand) geo.Point {
	return geo.Point{
		Lat: rng.Float64()*160 - 80,
		Lon: rng.Float64()*360 - 180,
	}
}

func TestLatLonToCellRoundTrip(t *testing.T) {
	// A point's cell center must be within one sheared circumradius of
	// the point. The sinusoidal projection's shear grows with
	// |lon*sin(lat)|; the bound below follows the package's documented
	// distortion model (see DiskCovering).
	rng := rand.New(rand.NewSource(7))
	for res := 0; res <= MaxResolution; res += 3 {
		for i := 0; i < 200; i++ {
			p := randomSeaPoint(rng)
			c := LatLonToCell(p, res)
			if !c.Valid() {
				t.Fatalf("res %d: invalid cell for %v", res, p)
			}
			if c.Resolution() != res {
				t.Fatalf("res mismatch: got %d want %d", c.Resolution(), res)
			}
			if math.Abs(p.Lat) > 75 {
				continue // polar unprojection stretch, documented
			}
			shear := math.Abs(geo.NormalizeLon(p.Lon)*math.Sin(p.Lat*math.Pi/180)) * math.Pi / 180
			maxErr := Radius(res) * 111320 * (1 + shear) * 1.05
			d := geo.Haversine(p, c.Center())
			if d > maxErr {
				t.Errorf("res %d: point %v center %v dist %.0f m > %.0f m",
					res, p, c.Center(), d, maxErr)
			}
		}
	}
}

func TestCellStability(t *testing.T) {
	// The same point must always map to the same cell, and the cell's
	// center must map back to the same cell. Cells straddling the
	// antimeridian seam are excluded (documented limitation).
	f := func(lat, lon float64) bool {
		p := geo.Point{Lat: math.Mod(math.Abs(lat), 75), Lon: geo.NormalizeLon(lon)}
		if math.Abs(p.Lon) > 170 {
			return true
		}
		c := LatLonToCell(p, 9)
		return c == LatLonToCell(p, 9) && LatLonToCell(c.Center(), 9) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNeighborsCount(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 37.9, Lon: 23.6}, 8)
	n := c.Neighbors()
	if len(n) != 6 {
		t.Fatalf("expected 6 neighbors, got %d", len(n))
	}
	seen := map[Cell]bool{c: true}
	for _, nb := range n {
		if seen[nb] {
			t.Errorf("duplicate or self neighbor %v", nb)
		}
		seen[nb] = true
		if GridDistance(c, nb) != 1 {
			t.Errorf("neighbor %v at grid distance %d", nb, GridDistance(c, nb))
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		c := LatLonToCell(randomSeaPoint(rng), 7)
		for _, nb := range c.Neighbors() {
			found := false
			for _, back := range nb.Neighbors() {
				if back == c {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %v <-> %v", c, nb)
			}
		}
	}
}

func TestGridDiskSize(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 52, Lon: 4}, 9)
	for k := 0; k <= 5; k++ {
		want := 1 + 3*k*(k+1)
		got := len(c.GridDisk(k))
		if got != want {
			t.Errorf("k=%d: disk size %d, want %d", k, got, want)
		}
	}
}

func TestGridDiskContainsCenterAndNeighbors(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 36, Lon: 25}, 10)
	disk := c.GridDisk(1)
	members := make(map[Cell]bool, len(disk))
	for _, d := range disk {
		members[d] = true
	}
	if !members[c] {
		t.Error("disk must contain the center cell")
	}
	for _, nb := range c.Neighbors() {
		if !members[nb] {
			t.Errorf("disk k=1 missing neighbor %v", nb)
		}
	}
}

func TestGridRing(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 45, Lon: -30}, 8)
	for k := 1; k <= 4; k++ {
		ring := c.GridRing(k)
		if len(ring) != 6*k {
			t.Errorf("k=%d: ring size %d, want %d", k, len(ring), 6*k)
		}
		for _, cell := range ring {
			if d := GridDistance(c, cell); d != k {
				t.Errorf("k=%d: ring member at distance %d", k, d)
			}
		}
	}
	if r0 := c.GridRing(0); len(r0) != 1 || r0[0] != c {
		t.Error("ring 0 must be the cell itself")
	}
}

func TestGridDiskEqualsUnionOfRings(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 10, Lon: 10}, 6)
	disk := make(map[Cell]bool)
	for _, d := range c.GridDisk(3) {
		disk[d] = true
	}
	count := 0
	for k := 0; k <= 3; k++ {
		for _, cell := range c.GridRing(k) {
			if !disk[cell] {
				t.Fatalf("ring %d member %v not in disk", k, cell)
			}
			count++
		}
	}
	if count != len(disk) {
		t.Errorf("rings produced %d cells, disk has %d", count, len(disk))
	}
}

func TestGridDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := geo.BBox{MinLat: 30, MinLon: 0, MaxLat: 45, MaxLon: 20}
	for i := 0; i < 200; i++ {
		a := LatLonToCell(box.Sample(rng.Float64(), rng.Float64()), 7)
		b := LatLonToCell(box.Sample(rng.Float64(), rng.Float64()), 7)
		c := LatLonToCell(box.Sample(rng.Float64(), rng.Float64()), 7)
		if GridDistance(a, c) > GridDistance(a, b)+GridDistance(b, c) {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestParentChildHierarchy(t *testing.T) {
	p := geo.Point{Lat: 37.5, Lon: 24.0}
	c := LatLonToCell(p, 10)
	parent := c.Parent()
	if parent.Resolution() != 9 {
		t.Fatalf("parent resolution %d", parent.Resolution())
	}
	// The parent's center must be near the child's center (within the
	// parent circumradius).
	d := geo.Haversine(c.Center(), parent.Center())
	if d > Radius(9)*111320*1.05 {
		t.Errorf("parent center too far: %.0f m", d)
	}
	// Children of the parent must include cells whose Parent is parent.
	kids := parent.Children()
	if len(kids) == 0 {
		t.Fatal("no children")
	}
	for _, kid := range kids {
		if kid.Parent() != parent {
			t.Errorf("child %v does not point back to parent", kid)
		}
		if kid.Resolution() != 10 {
			t.Errorf("child resolution %d", kid.Resolution())
		}
	}
}

func TestParentAt(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 51.9, Lon: 4.4}, 12)
	anc := c.ParentAt(5)
	if anc.Resolution() != 5 {
		t.Fatalf("ancestor resolution %d", anc.Resolution())
	}
	if d := geo.Haversine(c.Center(), anc.Center()); d > Radius(5)*111320*1.1 {
		t.Errorf("ancestor too far from descendant: %.0f m", d)
	}
	if got := c.ParentAt(13); got != InvalidCell {
		t.Error("ParentAt finer than cell must be invalid")
	}
}

func TestBoundaryGeometry(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 37, Lon: 25}, 8)
	b := c.Boundary()
	if len(b) != 6 {
		t.Fatalf("expected 6 corners, got %d", len(b))
	}
	center := c.Center()
	want := Radius(8) * 111320.0
	for _, corner := range b {
		d := geo.Haversine(center, corner)
		// 40% slack: geographic corner distances are distorted by the
		// projection's shear at this cell's longitude.
		if math.Abs(d-want)/want > 0.4 {
			t.Errorf("corner at %.0f m from center, want ~%.0f m", d, want)
		}
	}
}

func TestBoundaryNearCentralMeridianIsRegular(t *testing.T) {
	// On the central meridian the projection has no shear, so corners
	// must sit at the circumradius within a tight tolerance.
	c := LatLonToCell(geo.Point{Lat: 20, Lon: 0.01}, 8)
	center := c.Center()
	want := Radius(8) * 111320.0
	for _, corner := range c.Boundary() {
		d := geo.Haversine(center, corner)
		if math.Abs(d-want)/want > 0.02 {
			t.Errorf("corner at %.0f m from center, want ~%.0f m", d, want)
		}
	}
}

func TestDiskCoveringContainsAllNearbyPoints(t *testing.T) {
	// Every point within the requested radius must land in a cell
	// belonging to the covering disk — this is the guarantee the
	// proximity and collision actors rely on.
	rng := rand.New(rand.NewSource(99))
	res := 9
	radius := EdgeLengthMeters(res) * 1.5
	for i := 0; i < 200; i++ {
		p := geo.Point{Lat: rng.Float64()*150 - 75, Lon: rng.Float64()*340 - 170}
		disk := DiskCovering(p, res, radius)
		members := make(map[Cell]bool, len(disk))
		for _, c := range disk {
			members[c] = true
		}
		for j := 0; j < 20; j++ {
			q := geo.Destination(p, rng.Float64()*360, rng.Float64()*radius)
			if math.Abs(q.Lon-p.Lon) > 170 {
				continue // crossed the antimeridian seam
			}
			if !members[LatLonToCell(q, res)] {
				t.Errorf("point %v at %.0f m from %v not covered (disk size %d)",
					q, geo.Haversine(p, q), p, len(disk))
			}
		}
	}
}

func TestResolutionForEdge(t *testing.T) {
	res := ResolutionForEdge(2000)
	if EdgeLengthMeters(res) > 2000 {
		t.Errorf("res %d edge %.0f m exceeds request", res, EdgeLengthMeters(res))
	}
	if res > 0 && EdgeLengthMeters(res-1) <= 2000 {
		t.Errorf("res %d is not the coarsest valid resolution", res)
	}
	if got := ResolutionForEdge(0.0001); got != MaxResolution {
		t.Errorf("tiny edge must clamp to MaxResolution, got %d", got)
	}
}

func TestEdgeLengthMonotone(t *testing.T) {
	for res := 1; res <= MaxResolution; res++ {
		if EdgeLengthMeters(res) >= EdgeLengthMeters(res-1) {
			t.Errorf("edge length must shrink with resolution: res %d", res)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	if c := LatLonToCell(geo.Point{Lat: 91, Lon: 0}, 5); c != InvalidCell {
		t.Error("out-of-range latitude must yield InvalidCell")
	}
	if c := LatLonToCell(geo.Point{Lat: 0, Lon: 0}, -1); c != InvalidCell {
		t.Error("negative resolution must yield InvalidCell")
	}
	if c := LatLonToCell(geo.Point{Lat: 0, Lon: 0}, MaxResolution+1); c != InvalidCell {
		t.Error("excess resolution must yield InvalidCell")
	}
	if InvalidCell.Valid() {
		t.Error("InvalidCell must not be valid")
	}
	if InvalidCell.Neighbors() != nil {
		t.Error("invalid cell has no neighbors")
	}
	if GridDistance(InvalidCell, InvalidCell) != -1 {
		t.Error("grid distance of invalid cells must be -1")
	}
}

func TestDifferentResolutionsIncomparable(t *testing.T) {
	p := geo.Point{Lat: 40, Lon: 20}
	a := LatLonToCell(p, 5)
	b := LatLonToCell(p, 6)
	if GridDistance(a, b) != -1 {
		t.Error("cells of different resolution must be incomparable")
	}
}

func TestCover(t *testing.T) {
	box := geo.BBox{MinLat: 36, MinLon: 24, MaxLat: 38, MaxLon: 26}
	cells := Cover(box, 6)
	if len(cells) == 0 {
		t.Fatal("cover returned no cells")
	}
	seen := make(map[Cell]bool)
	for _, c := range cells {
		if seen[c] {
			t.Errorf("duplicate cell %v in cover", c)
		}
		seen[c] = true
		if !box.Contains(c.Center()) {
			t.Errorf("cell center %v outside box", c.Center())
		}
	}
}

func TestNearbyPointsShareDiskMembership(t *testing.T) {
	// Two points within one cell edge of each other must be within grid
	// distance 2 at that resolution — the property the collision actors
	// rely on when they assign forecasts to a cell and its neighbors.
	rng := rand.New(rand.NewSource(21))
	res := 9
	edge := EdgeLengthMeters(res)
	for i := 0; i < 300; i++ {
		p := geo.Point{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*360 - 180}
		bearing := rng.Float64() * 360
		q := geo.Destination(p, bearing, edge*0.9)
		cp := LatLonToCell(p, res)
		cq := LatLonToCell(q, res)
		if d := GridDistance(cp, cq); d > 2 {
			t.Errorf("points %.0f m apart in cells %d steps apart (%v, %v)",
				geo.Haversine(p, q), d, p, q)
		}
	}
}

func TestCellStringFormat(t *testing.T) {
	c := LatLonToCell(geo.Point{Lat: 37.9, Lon: 23.6}, 8)
	s := c.String()
	if len(s) < 6 || s[:4] != "hex:" {
		t.Errorf("unexpected string form %q", s)
	}
	if InvalidCell.String() != "hex:invalid" {
		t.Errorf("invalid cell string %q", InvalidCell.String())
	}
}

func BenchmarkLatLonToCell(b *testing.B) {
	p := geo.Point{Lat: 37.9, Lon: 23.6}
	for i := 0; i < b.N; i++ {
		LatLonToCell(p, 9)
	}
}

func BenchmarkGridDisk(b *testing.B) {
	c := LatLonToCell(geo.Point{Lat: 37.9, Lon: 23.6}, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.GridDisk(1)
	}
}

func TestParseCellRoundTrip(t *testing.T) {
	for _, res := range []int{0, 4, 7, 9, 15} {
		c := LatLonToCell(geo.Point{Lat: 37.9, Lon: 23.6}, res)
		parsed, err := ParseCell(c.String())
		if err != nil {
			t.Fatalf("res %d: %v", res, err)
		}
		if parsed != c {
			t.Fatalf("res %d: round trip %v != %v", res, parsed, c)
		}
	}
	// Negative axial coordinates round-trip too.
	c := LatLonToCell(geo.Point{Lat: -35.2, Lon: -71.6}, 7)
	if parsed, err := ParseCell(c.String()); err != nil || parsed != c {
		t.Fatalf("negative coords: %v %v", parsed, err)
	}
}

func TestParseCellRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"", "hex:invalid", "hex:7:1", "hex:7:1:2:3", "h3:7:1:2",
		"hex:16:0:0", "hex:-1:0:0", "hex:7:x:2", "hex:7:1:2 ",
		"hex:7:999999999999:0",
	} {
		if _, err := ParseCell(s); err == nil {
			t.Errorf("ParseCell(%q) accepted", s)
		}
	}
}

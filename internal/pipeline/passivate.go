package pipeline

import (
	"time"

	"seatwin/internal/actor"
)

// passivateCheck is the self-message cell and collision actors use to
// test for idleness.
type passivateCheck struct{}

// passivator stops spatial actors whose cell has gone quiet, bounding
// the live actor population to the active sea areas. A global fleet
// touches millions of hexgrid cells over time; without passivation the
// collision-actor population grows without bound (Akka deployments use
// entity passivation for exactly this).
type passivator struct {
	timeout    time.Duration
	lastActive time.Time
	scheduled  bool
}

func newPassivator(timeout time.Duration) *passivator {
	return &passivator{timeout: timeout}
}

// touch records activity and arms the idle check; it returns true when
// the message was a passivateCheck that decided to stop the actor (the
// caller must then not process further).
func (pv *passivator) touch(c *actor.Context) (stopped bool) {
	if pv.timeout <= 0 {
		return false
	}
	now := time.Now()
	if _, ok := c.Message().(passivateCheck); ok {
		if now.Sub(pv.lastActive) >= pv.timeout {
			c.Stop()
			return true
		}
		// Still active: re-arm for the remaining window.
		c.SendAfter(pv.timeout-now.Sub(pv.lastActive), c.Self(), passivateCheck{})
		return false
	}
	pv.lastActive = now
	if !pv.scheduled {
		pv.scheduled = true
		c.SendAfter(pv.timeout, c.Self(), passivateCheck{})
	}
	return false
}

package views

import (
	"io"
	"time"
)

// EventSnapshot is one immutable recent-events window, oldest first
// (matching the legacy /api/events ordering).
type EventSnapshot struct {
	Epoch   uint64
	BuiltAt time.Time
	// Items are the encoded event documents, oldest first.
	Items [][]byte
	body  []byte // pre-concatenated full window
	bytes int64
}

func emptyEventSnapshot() *EventSnapshot {
	return &EventSnapshot{body: []byte("[]\n")}
}

// WriteJSON streams the newest `limit` events (oldest of those first)
// as one JSON array; limit <= 0 or >= the window writes the pre-built
// full body in one Write. It returns the number of events written.
func (s *EventSnapshot) WriteJSON(w io.Writer, limit int) (int, error) {
	if limit <= 0 || limit >= len(s.Items) {
		_, err := w.Write(s.body)
		return len(s.Items), err
	}
	if _, err := w.Write(jsonOpen); err != nil {
		return 0, err
	}
	items := s.Items[len(s.Items)-limit:]
	for i, enc := range items {
		if i > 0 {
			if _, err := w.Write(jsonComma); err != nil {
				return i, err
			}
		}
		if _, err := w.Write(enc); err != nil {
			return i, err
		}
	}
	_, err := w.Write(jsonClose)
	return len(items), err
}

// buildEventSnapshot copies the staged ring into a fresh window. The
// encoded documents themselves are shared (immutable facts).
func (v *Views) buildEventSnapshot(epoch uint64, builtAt time.Time) *EventSnapshot {
	v.evMu.Lock()
	items := make([][]byte, v.evCount)
	for i := 0; i < v.evCount; i++ {
		items[i] = v.evRing[(v.evStart+i)%len(v.evRing)]
	}
	v.evMu.Unlock()
	snap := &EventSnapshot{Epoch: epoch, BuiltAt: builtAt, Items: items}
	for _, enc := range items {
		snap.bytes += int64(len(enc))
	}
	body := make([]byte, 0, snap.bytes+int64(len(items))+3)
	body = append(body, '[')
	for i, enc := range items {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, enc...)
	}
	body = append(body, ']', '\n')
	snap.body = body
	return snap
}

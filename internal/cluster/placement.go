package cluster

import (
	"sort"
	"sync/atomic"
)

// Assignment is one epoch of the partition→worker table. Epochs are
// strictly monotone: every membership change (join, leave, death)
// produces a new epoch, and consumers of the table only ever move
// forward, so a delayed older assignment can never roll ownership back
// (epoch fencing).
type Assignment struct {
	Epoch uint64
	// Workers maps each partition to the ID of the worker owning it.
	// Partitions without a live owner are absent (no workers at all).
	Workers map[PartitionID]string
}

// Clone deep-copies the assignment so snapshots can cross goroutines.
func (a Assignment) Clone() Assignment {
	out := Assignment{Epoch: a.Epoch, Workers: make(map[PartitionID]string, len(a.Workers))}
	for p, w := range a.Workers {
		out.Workers[p] = w
	}
	return out
}

// Owned returns the sorted partitions assigned to worker.
func (a Assignment) Owned(worker string) []PartitionID {
	var out []PartitionID
	for p, w := range a.Workers {
		if w == worker {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Placement answers the one question every routing layer asks on the
// hot path: which partition owns this key, and is that partition mine?
type Placement interface {
	// OwnerOf returns the partition owning key (static per ring).
	OwnerOf(key uint64) PartitionID
	// WorkerOf returns the worker currently assigned the partition
	// ("" when unassigned).
	WorkerOf(part PartitionID) string
	// Epoch returns the epoch of the assignment in effect.
	Epoch() uint64
}

// Table is the worker-local view of the placement: the immutable ring
// plus an atomically swapped assignment snapshot. Reads are lock-free
// (one atomic pointer load), so ownership checks can sit on the
// per-message path.
type Table struct {
	ring *Ring
	cur  atomic.Pointer[tableSnapshot]
}

// tableSnapshot is the dense, read-optimised form of an assignment.
type tableSnapshot struct {
	epoch  uint64
	owners []string // indexed by partition; "" = unassigned
}

// NewTable builds an empty table (epoch 0, nothing assigned) over ring.
func NewTable(ring *Ring) *Table {
	t := &Table{ring: ring}
	t.cur.Store(&tableSnapshot{owners: make([]string, ring.Partitions())})
	return t
}

// Ring exposes the underlying ring.
func (t *Table) Ring() *Ring { return t.ring }

// Update installs a newer assignment. Older or same-epoch assignments
// are ignored (epoch fencing), and ok reports whether the table moved.
func (t *Table) Update(a Assignment) bool {
	for {
		old := t.cur.Load()
		if a.Epoch <= old.epoch {
			return false
		}
		snap := &tableSnapshot{epoch: a.Epoch, owners: make([]string, t.ring.Partitions())}
		for p, w := range a.Workers {
			if int(p) >= 0 && int(p) < len(snap.owners) {
				snap.owners[p] = w
			}
		}
		if t.cur.CompareAndSwap(old, snap) {
			return true
		}
	}
}

// OwnerOf implements Placement.
func (t *Table) OwnerOf(key uint64) PartitionID { return t.ring.Owner(key) }

// WorkerOf implements Placement.
func (t *Table) WorkerOf(part PartitionID) string {
	snap := t.cur.Load()
	if int(part) < 0 || int(part) >= len(snap.owners) {
		return ""
	}
	return snap.owners[part]
}

// Epoch implements Placement.
func (t *Table) Epoch() uint64 { return t.cur.Load().epoch }

// Assignment returns a copy of the installed assignment.
func (t *Table) Assignment() Assignment {
	snap := t.cur.Load()
	a := Assignment{Epoch: snap.epoch, Workers: make(map[PartitionID]string)}
	for p, w := range snap.owners {
		if w != "" {
			a.Workers[PartitionID(p)] = w
		}
	}
	return a
}

// SingleNode returns a table in which one worker owns every partition
// at epoch 1 — the in-memory placement of a single-process deployment.
func SingleNode(worker string, partitions int) (*Table, error) {
	ring, err := NewRing(partitions, 0)
	if err != nil {
		return nil, err
	}
	t := NewTable(ring)
	a := Assignment{Epoch: 1, Workers: make(map[PartitionID]string, partitions)}
	for p := 0; p < partitions; p++ {
		a.Workers[PartitionID(p)] = worker
	}
	t.Update(a)
	return t, nil
}

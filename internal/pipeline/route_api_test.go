package pipeline

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/lvrf"
)

// routeTestModel trains a tiny L-VRF model on synthetic lane trips.
func routeTestModel(t *testing.T) *lvrf.Model {
	t.Helper()
	ports := map[string]geo.Point{
		"Piraeus":   {Lat: 37.925, Lon: 23.600},
		"Heraklion": {Lat: 35.355, Lon: 25.145},
	}
	rng := rand.New(rand.NewSource(1))
	var trips []lvrf.Trip
	for i := 0; i < 10; i++ {
		trip := lvrf.Trip{
			MMSI:     uint32(100 + i),
			Features: lvrf.Features{ShipType: 70, Length: 190, Draught: 10},
			Origin:   "Piraeus", Dest: "Heraklion",
		}
		const steps = 25
		for s := 0; s <= steps; s++ {
			f := float64(s) / steps
			p := geo.Interpolate(ports["Piraeus"], ports["Heraklion"], f)
			p = geo.Destination(p, 90, rng.NormFloat64()*800)
			trip.Points = append(trip.Points, p)
			trip.Times = append(trip.Times, t0.Add(time.Duration(f*14*3600)*time.Second))
		}
		trips = append(trips, trip)
	}
	return lvrf.Train(trips, ports, lvrf.DefaultConfig())
}

func TestRouteAPI(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.RouteModel = routeTestModel(t)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)
	api := NewAPI(p)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/api/route?from=Piraeus&to=Heraklion&type=70&length=190&draught=10.5")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	route, ok := doc["route"].([]any)
	if !ok || len(route) < 10 {
		t.Fatalf("route: %v", doc["route"])
	}
	pol, ok := doc["patterns_of_life"].(map[string]any)
	if !ok || pol["trips"].(float64) != 10 {
		t.Fatalf("patterns_of_life: %v", doc["patterns_of_life"])
	}

	if rec := get("/api/route?from=Piraeus"); rec.Code != 400 {
		t.Fatalf("missing 'to' must 400, got %d", rec.Code)
	}
	if rec := get("/api/route?from=Narnia&to=Atlantis"); rec.Code != 404 {
		t.Fatalf("unknown pair must 404, got %d", rec.Code)
	}
}

func TestRouteAPIWithoutModel(t *testing.T) {
	p := newTestPipeline(t)
	api := NewAPI(p)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/route?from=A&to=B", nil))
	if rec.Code != 404 {
		t.Fatalf("unconfigured model must 404, got %d", rec.Code)
	}
}

package nn

// AVX2/FMA fast path for the fused hidden-state GEMV — the one loop
// nest that dominates compiled inference (4 gate rows x Hidden columns
// per unit per step). The scalar kernel is load-bound at one weight
// per cycle; the vector kernel streams four weights per load and four
// multiply-accumulates per FMA, which roughly halves the GEMV on the
// machines this repo targets. Everything else (input columns, biases,
// activations) stays in Go: the input dim is 3 in the S-VRF shape, so
// vectorising it would buy nothing and cost a tail path.
//
// The kernel is only selected when the CPU and OS support AVX2+FMA
// (checked once via CPUID/XGETBV below) and Hidden is a multiple of
// the vector width; every other configuration uses the portable
// scalar loop. Vector lane reduction reorders the additions relative
// to the reference accumulation, which the 1e-12 parity contract
// absorbs (observed drift ~1e-15 on unit-scale dot products).

// cpuidx executes CPUID with the given leaf/subleaf.
func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0; only valid when CPUID reports OSXSAVE.
func xgetbv0() (low, high uint32)

// gemvHiddenAVX2 adds the hidden-state contribution to the
// pre-activation buffer: for every unit u and gate g,
// z[4u+g] += dot(w[(4u+g)*width+in : (4u+g+1)*width], h[:hidden]).
// z must already hold bias + input contributions. hidden must be a
// positive multiple of 4; h must have exactly hidden elements.
//
//go:noescape
func gemvHiddenAVX2(w, h, z *float64, hidden, width, in int)

// hasAVX2FMA reports whether the vector kernel may run: AVX2 and FMA
// in hardware, and YMM state enabled by the OS.
var hasAVX2FMA = func() bool {
	maxLeaf, _, _, _ := cpuidx(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidx(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 { // XMM and YMM state saved
		return false
	}
	_, b7, _, _ := cpuidx(7, 0)
	return b7&(1<<5) != 0 // AVX2
}()

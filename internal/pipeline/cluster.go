package pipeline

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/chaos"
	"seatwin/internal/checkpoint"
	"seatwin/internal/cluster"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
	"seatwin/internal/metrics"
)

// The cluster layer partitions the pipeline's keyspace — MMSIs and
// hexgrid cells — across worker pipelines through internal/cluster's
// consistent-hash ring. Every routing decision the actors make goes
// through one ownership check: a locally-owned key takes exactly the
// single-process path (the check is one atomic pointer load and a
// binary search; with clustering off it is a nil comparison), and a
// foreign key is forwarded as an encoded record onto the owning
// partition's broker topic, consumed by whichever worker currently
// holds that partition.
//
// Key→partition is static (the ring never changes), so a partition's
// topic is a stable address: a rebalance only moves which worker
// consumes a topic, never where records are produced. Handoff rides
// the existing checkpoint layer — a worker losing a partition poisons
// its vessel actors (their Stopping handler snapshots to "ckpt:<mmsi>")
// and the gaining worker rehydrates from those keys. Consumer-group
// committed offsets make topic handoff at-least-once, and the vessel
// actors' nanosecond-exact out-of-order guard deduplicates any replay.
//
// Epoch fencing: assignments only ever move forward (cluster.Table
// refuses older epochs), and a consumer re-checks ownership around
// every poll — a worker that lost a partition mid-batch abandons the
// batch without committing, so the new owner replays it.

// ClusterConfig attaches a pipeline to a cluster as one worker.
type ClusterConfig struct {
	// WorkerID names this worker in the assignment table.
	WorkerID string
	// Membership is the control plane: the in-process Coordinator or a
	// RemoteCoordinator pointed at one.
	Membership cluster.Membership
	// Partitions is the cluster's fixed partition count; it must match
	// the coordinator's.
	Partitions int
	// Broker carries the per-partition forward topics
	// ("part/<id>/ingest"). Workers of one cluster must share it (the
	// same embedded instance in-process, or the same durable dir).
	Broker *broker.Broker
	// TopicPrefix overrides the forward-topic prefix ("part/").
	TopicPrefix string
	// Group is the consumer group owners consume forward topics under
	// ("workers"). Committed offsets are what makes partition handoff
	// at-least-once.
	Group string
	// HeartbeatInterval is how often the worker heartbeats the
	// coordinator and refreshes its assignment (0 = 1s).
	HeartbeatInterval time.Duration
	// ForwardBuffer bounds the queue between the actors and the
	// forwarding producer (0 = 4096). A full queue applies backpressure
	// to ingestion rather than dropping.
	ForwardBuffer int
	// Replicas is the ring's virtual-node count per partition (0 =
	// cluster.DefaultReplicas). All workers must agree.
	Replicas int
}

// Forwarded record types: the wire form of cross-partition traffic.
// Each carries the sender's epoch for observability; addressing never
// depends on it because key→partition is static.
type (
	// ForwardedPosition is a position report owned by another partition.
	ForwardedPosition struct {
		Epoch      uint64
		Report     ais.PositionReport
		ReceivedAt time.Time
	}
	// ForwardedStatic is a static voyage document for a foreign vessel.
	ForwardedStatic struct {
		Epoch  uint64
		Static ais.StaticVoyage
	}
	// ForwardedCellPos is a proximity-cell position share whose cell
	// lives on another partition.
	ForwardedCellPos struct {
		Epoch    uint64
		Cell     hexgrid.Cell
		MMSI     ais.MMSI
		Lat, Lon float64
		At       time.Time
	}
	// ForwardedForecast is a collision-cell forecast share whose cell
	// lives on another partition.
	ForwardedForecast struct {
		Epoch    uint64
		Cell     hexgrid.Cell
		Forecast events.Forecast
		At       time.Time
	}
	// ForwardedEvent is a cell/collision actor's state-communication
	// back to a vessel actor owned by another partition.
	ForwardedEvent struct {
		Epoch uint64
		MMSI  ais.MMSI
		Event events.Event
	}
)

// RegisterClusterTypes registers the forwarded record types with the
// broker's gob codec so forward topics survive a durable broker
// (broker.OpenDir) round-trip. Call once before producing.
func RegisterClusterTypes() {
	broker.RegisterType(ForwardedPosition{})
	broker.RegisterType(ForwardedStatic{})
	broker.RegisterType(ForwardedCellPos{})
	broker.RegisterType(ForwardedForecast{})
	broker.RegisterType(ForwardedEvent{})
}

// forwardItem is one queued cross-partition record.
type forwardItem struct {
	topic string
	key   uint64
	value any
}

// clusterProducer is the produce surface the forwarder writes through;
// *broker.Broker and the chaos wrapper both satisfy it.
type clusterProducer interface {
	Produce(topic, key string, value any) (int, int64, error)
}

// partConsumer is one owned partition's consumer loop handle.
type partConsumer struct {
	part     cluster.PartitionID
	cons     *broker.Consumer
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

func (pc *partConsumer) close() {
	pc.stopOnce.Do(func() {
		close(pc.stop)
		pc.cons.Close() // unblocks a blocked Poll
	})
	<-pc.done
}

// clusterState is the per-worker runtime of the cluster layer.
type clusterState struct {
	p      *Pipeline
	cfg    ClusterConfig
	table  *cluster.Table
	me     string
	group  string
	topics []string // partition -> forward topic name

	produce clusterProducer

	forwardCh chan forwardItem
	pending   int64 // atomic: forwards queued or in flight
	stop      chan struct{}
	stopOnce  sync.Once
	fwdDone   chan struct{}
	hbDone    chan struct{}

	mu           sync.Mutex
	consumers    map[cluster.PartitionID]*partConsumer
	appliedEpoch uint64
	failed       int32 // atomic: FailWorker simulated a crash

	forwards     *metrics.ShardedCounter // records sent to foreign partitions
	forwardDrops *metrics.ShardedCounter // forwards lost after retry exhaustion
	received     *metrics.ShardedCounter // records consumed from owned topics
	fenced       *metrics.ShardedCounter // records abandoned on ownership loss
	rebalances   int64                   // atomic: assignments applied
}

// newClusterState validates the config and wires the worker into the
// cluster: topics are declared for every partition, the worker joins
// through Membership, and the forwarder and heartbeat loops start.
func newClusterState(p *Pipeline, cfg ClusterConfig) (*clusterState, error) {
	if cfg.WorkerID == "" {
		return nil, fmt.Errorf("pipeline: cluster config needs a worker id")
	}
	if cfg.Membership == nil {
		return nil, fmt.Errorf("pipeline: cluster config needs a membership (coordinator)")
	}
	if cfg.Broker == nil {
		return nil, fmt.Errorf("pipeline: cluster config needs a broker for forward topics")
	}
	if cfg.Partitions <= 0 {
		return nil, fmt.Errorf("pipeline: cluster config needs a partition count")
	}
	if cfg.TopicPrefix == "" {
		cfg.TopicPrefix = "part/"
	}
	if cfg.Group == "" {
		cfg.Group = "workers"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.ForwardBuffer <= 0 {
		cfg.ForwardBuffer = 4096
	}
	ring, err := cluster.NewRing(cfg.Partitions, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	cl := &clusterState{
		p:            p,
		cfg:          cfg,
		table:        cluster.NewTable(ring),
		me:           cfg.WorkerID,
		group:        cfg.Group,
		topics:       make([]string, cfg.Partitions),
		forwardCh:    make(chan forwardItem, cfg.ForwardBuffer),
		stop:         make(chan struct{}),
		fwdDone:      make(chan struct{}),
		hbDone:       make(chan struct{}),
		consumers:    make(map[cluster.PartitionID]*partConsumer),
		forwards:     metrics.NewShardedCounter(0),
		forwardDrops: metrics.NewShardedCounter(0),
		received:     metrics.NewShardedCounter(0),
		fenced:       metrics.NewShardedCounter(0),
	}
	for i := 0; i < cfg.Partitions; i++ {
		cl.topics[i] = cfg.TopicPrefix + strconv.Itoa(i) + "/ingest"
		if err := cfg.Broker.CreateTopic(cl.topics[i], 1); err != nil {
			return nil, err
		}
	}
	cl.produce = cfg.Broker
	if p.cfg.Chaos != nil {
		cl.produce = chaos.WrapProducer(cfg.Broker, p.cfg.Chaos)
	}
	return cl, nil
}

// start joins the cluster and launches the background loops. Split
// from newClusterState so the Pipeline is fully constructed (actors
// spawnable) before the first assignment is applied.
func (cl *clusterState) start() error {
	a, err := cl.cfg.Membership.Join(cl.me)
	if err != nil {
		return fmt.Errorf("pipeline: cluster join: %w", err)
	}
	cl.applyAssignment(a)
	go cl.forwarder()
	go cl.heartbeats()
	return nil
}

// owns reports whether this worker currently owns key's partition. One
// atomic snapshot load, a binary search on the immutable ring and a
// string compare — cheap enough for the per-message path.
func (cl *clusterState) owns(key uint64) bool {
	return cl.table.WorkerOf(cl.table.OwnerOf(key)) == cl.me
}

// topicOf returns the forward topic of the partition owning key.
func (cl *clusterState) topicOf(key uint64) string {
	return cl.topics[cl.table.OwnerOf(key)]
}

// forward enqueues one record for the owning partition's topic. The
// queue is bounded: when the forwarding producer falls behind, ingest
// blocks (backpressure) instead of dropping. Returns false only when
// the worker is stopping.
func (cl *clusterState) forward(key uint64, value any) bool {
	atomic.AddInt64(&cl.pending, 1)
	select {
	case cl.forwardCh <- forwardItem{topic: cl.topicOf(key), key: key, value: value}:
		return true
	case <-cl.stop:
		atomic.AddInt64(&cl.pending, -1)
		return false
	}
}

// Typed forward helpers, one per record kind. Each stamps the sender's
// current epoch.

func (cl *clusterState) forwardPosition(r ais.PositionReport, receivedAt time.Time) {
	cl.forward(uint64(r.MMSI), ForwardedPosition{Epoch: cl.table.Epoch(), Report: r, ReceivedAt: receivedAt})
}

func (cl *clusterState) forwardStatic(m ais.StaticVoyage) {
	cl.forward(uint64(m.MMSI), ForwardedStatic{Epoch: cl.table.Epoch(), Static: m})
}

func (cl *clusterState) forwardCellPos(cell hexgrid.Cell, m cellPosMsg) {
	cl.forward(uint64(cell), ForwardedCellPos{
		Epoch: cl.table.Epoch(), Cell: cell, MMSI: m.mmsi,
		Lat: m.pos.Lat, Lon: m.pos.Lon, At: m.at,
	})
}

func (cl *clusterState) forwardForecast(cell hexgrid.Cell, f events.Forecast, at time.Time) {
	cl.forward(uint64(cell), ForwardedForecast{Epoch: cl.table.Epoch(), Cell: cell, Forecast: f, At: at})
}

func (cl *clusterState) forwardEvent(mmsi ais.MMSI, e events.Event) {
	cl.forward(uint64(mmsi), ForwardedEvent{Epoch: cl.table.Epoch(), MMSI: mmsi, Event: e})
}

// notifyVessel routes a cell/collision actor's state communication back
// to the vessel actor, forwarding when the vessel is foreign. em is the
// pre-boxed eventMsg shared across local sends.
func (p *Pipeline) notifyVessel(c *actor.Context, mmsi ais.MMSI, em any, e events.Event) {
	if cl := p.cl; cl != nil && !cl.owns(uint64(mmsi)) {
		cl.forwardEvent(mmsi, e)
		return
	}
	c.Send(p.vesselActor(mmsi), em)
}

// forwarder is the single producer goroutine draining the forward
// queue onto the broker. On stop it flushes what was already queued so
// a graceful shutdown loses nothing.
func (cl *clusterState) forwarder() {
	defer close(cl.fwdDone)
	for {
		select {
		case it := <-cl.forwardCh:
			cl.produceItem(it)
		case <-cl.stop:
			for {
				select {
				case it := <-cl.forwardCh:
					cl.produceItem(it)
				default:
					return
				}
			}
		}
	}
}

// produceItem writes one forwarded record with the pipeline's retry
// policy; an exhausted produce is a dropped forward (counted — the
// source feed's at-least-once redelivery is the recovery path).
func (cl *clusterState) produceItem(it forwardItem) {
	defer atomic.AddInt64(&cl.pending, -1)
	key := strconv.FormatUint(it.key, 10)
	if cl.p.retryDo(it.key, func() error {
		_, _, err := cl.produce.Produce(it.topic, key, it.value)
		return err
	}) {
		cl.forwards.Inc(it.key, 1)
	} else {
		cl.forwardDrops.Inc(it.key, 1)
	}
}

// heartbeats renews the worker's lease and applies piggybacked
// assignment changes until shutdown.
func (cl *clusterState) heartbeats() {
	defer close(cl.hbDone)
	ticker := time.NewTicker(cl.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-cl.stop:
			return
		case <-ticker.C:
			a, err := cl.cfg.Membership.Heartbeat(cl.me)
			if err != nil {
				continue // transient control-plane outage; lease covers gaps
			}
			cl.applyAssignment(a)
		}
	}
}

// applyAssignment installs a (strictly newer — the table fences stale
// epochs) assignment and reconciles this worker's consumers, vessel
// actors and checkpoints with it.
func (cl *clusterState) applyAssignment(a cluster.Assignment) {
	if !cl.table.Update(a) {
		return
	}
	cl.apply()
}

// apply reconciles the running worker with the installed table: start
// consumers for gained partitions, stop consumers for lost ones, then
// passivate foreign vessel actors (their Stopping handler checkpoints)
// and proactively rehydrate checkpointed vessels of gained partitions.
func (cl *clusterState) apply() {
	cl.mu.Lock()
	if atomic.LoadInt32(&cl.failed) == 1 {
		cl.mu.Unlock()
		return
	}
	epoch := cl.table.Epoch()
	if epoch == cl.appliedEpoch {
		cl.mu.Unlock()
		return
	}
	cl.appliedEpoch = epoch
	var (
		gained []cluster.PartitionID
		lost   []*partConsumer
	)
	for i := 0; i < cl.cfg.Partitions; i++ {
		part := cluster.PartitionID(i)
		mine := cl.table.WorkerOf(part) == cl.me
		pc, have := cl.consumers[part]
		switch {
		case mine && !have:
			cons, err := cl.cfg.Broker.Subscribe(cl.topics[i], cl.group)
			if err != nil {
				continue // topic was created in newClusterState; can't happen
			}
			npc := &partConsumer{
				part: part,
				cons: cons,
				stop: make(chan struct{}),
				done: make(chan struct{}),
			}
			cl.consumers[part] = npc
			go cl.consumeLoop(npc)
			gained = append(gained, part)
		case !mine && have:
			delete(cl.consumers, part)
			lost = append(lost, pc)
		}
	}
	atomic.AddInt64(&cl.rebalances, 1)
	cl.mu.Unlock()

	for _, pc := range lost {
		pc.close()
	}
	if len(lost) > 0 {
		cl.passivateForeign()
	}
	if len(gained) > 0 {
		cl.rehydrate(gained)
	}
}

// passivateForeign poisons every cached vessel actor whose MMSI this
// worker no longer owns. Poison is graceful: queued messages are
// processed first, then the Stopping handler snapshots any dirty
// window to the shared store for the new owner to rehydrate. The route
// cache covers the live vessel population (every spawn passes through
// it); an entry lost to an invalidation race at worst leaves an inert
// actor behind, never a wrong route — ownership checks, not actor
// existence, decide where reports go.
func (cl *clusterState) passivateForeign() {
	cl.p.vesselRoutes.forEach(func(key uint64, pid *actor.PID) {
		if !cl.owns(key) {
			cl.p.system.Poison(pid)
		}
	})
}

// rehydrate pre-spawns vessel actors for every checkpointed vessel of
// the gained partitions, so the moved twins resume forecasting from
// their persisted windows before their next report arrives (the actor's
// Started handler loads the checkpoint).
func (cl *clusterState) rehydrate(gained []cluster.PartitionID) {
	if cl.p.ckptInterval() <= 0 {
		return
	}
	set := make(map[cluster.PartitionID]bool, len(gained))
	for _, part := range gained {
		set[part] = true
	}
	for _, k := range cl.p.store.KeysWithPrefix(checkpoint.KeyPrefix) {
		n, err := strconv.ParseUint(k[len(checkpoint.KeyPrefix):], 10, 32)
		if err != nil {
			continue
		}
		if set[cl.table.OwnerOf(n)] {
			cl.p.vesselActor(ais.MMSI(n))
		}
	}
}

// consumeLoop drains one owned partition's forward topic. Ownership is
// re-checked around every batch: a batch polled after the partition
// moved away is abandoned uncommitted (the new owner replays it from
// the group's committed offset), and the loop exits so the broker-level
// consumer group frees the topic for the new owner's consumer.
func (cl *clusterState) consumeLoop(pc *partConsumer) {
	defer close(pc.done)
	defer pc.cons.Close()
	for {
		select {
		case <-pc.stop:
			return
		default:
		}
		recs := pc.cons.Poll(256, 200*time.Millisecond)
		if recs == nil {
			// Timed out or closed; re-check stop and ownership.
			if cl.table.WorkerOf(pc.part) != cl.me {
				return
			}
			continue
		}
		if cl.table.WorkerOf(pc.part) != cl.me {
			cl.fenced.Inc(uint64(pc.part), int64(len(recs)))
			return
		}
		for i := range recs {
			cl.deliver(recs[i])
		}
		pc.cons.Commit()
	}
}

// deliver applies one forwarded record locally, exactly as the
// single-process path would have.
func (cl *clusterState) deliver(r broker.Record) {
	p := cl.p
	switch v := r.Value.(type) {
	case ForwardedPosition:
		cl.received.Inc(uint64(v.Report.MMSI), 1)
		p.messages.Inc(uint64(v.Report.MMSI), 1)
		atomic.AddInt64(&p.ingested, 1)
		p.system.Send(p.vesselActor(v.Report.MMSI), posMsg{report: v.Report, receivedAt: v.ReceivedAt})
	case ForwardedStatic:
		cl.received.Inc(uint64(v.Static.MMSI), 1)
		m := v.Static
		if prev, ok := p.statics.Load(m.MMSI); ok {
			m = mergeStatic(prev.(ais.StaticVoyage), m)
		}
		p.statics.Store(m.MMSI, m)
		atomic.AddInt64(&p.ingested, 1)
		p.system.Send(p.vesselActor(m.MMSI), m)
	case ForwardedCellPos:
		cl.received.Inc(uint64(v.Cell), 1)
		p.system.Send(p.proximityActor(v.Cell), cellPosMsg{
			mmsi: v.MMSI, pos: geo.Point{Lat: v.Lat, Lon: v.Lon}, at: v.At,
		})
	case ForwardedForecast:
		cl.received.Inc(uint64(v.Cell), 1)
		p.system.Send(p.collisionActor(v.Cell), forecastMsg{forecast: v.Forecast, at: v.At})
	case ForwardedEvent:
		cl.received.Inc(uint64(v.MMSI), 1)
		p.system.Send(p.vesselActor(v.MMSI), eventMsg{event: v.Event})
	}
}

// closeConsumers stops every partition consumer (idempotent).
func (cl *clusterState) closeConsumers() {
	cl.mu.Lock()
	cs := make([]*partConsumer, 0, len(cl.consumers))
	for part, pc := range cl.consumers {
		cs = append(cs, pc)
		delete(cl.consumers, part)
	}
	cl.mu.Unlock()
	for _, pc := range cs {
		pc.close()
	}
}

// shutdown flushes and leaves gracefully: heartbeats stop, queued
// forwards drain onto the broker, consumers close, and the worker
// leaves the cluster so the coordinator reassigns immediately instead
// of waiting out the lease.
func (cl *clusterState) shutdown() {
	cl.stopOnce.Do(func() { close(cl.stop) })
	<-cl.hbDone
	<-cl.fwdDone
	cl.closeConsumers()
	if atomic.LoadInt32(&cl.failed) == 0 {
		cl.cfg.Membership.Leave(cl.me)
	}
}

// FailWorker simulates this worker's process dying, for fault-drill
// and test use: heartbeats and forwarding stop, consumers close, but
// the worker neither leaves the cluster nor passivates its vessel
// actors — exactly what a crash leaves behind. The coordinator's lease
// expiry reassigns its partitions and the new owners rehydrate from
// the shared checkpoints. No-op without cluster config.
func (p *Pipeline) FailWorker() {
	cl := p.cl
	if cl == nil {
		return
	}
	atomic.StoreInt32(&cl.failed, 1)
	cl.stopOnce.Do(func() { close(cl.stop) })
	<-cl.hbDone
	<-cl.fwdDone
	cl.closeConsumers()
}

// OwnsKey reports whether this pipeline currently owns key (an MMSI or
// hexgrid cell). Without cluster config every key is local.
func (p *Pipeline) OwnsKey(key uint64) bool {
	if p.cl == nil {
		return true
	}
	return p.cl.owns(key)
}

// pendingForwards returns how many cross-partition forwards are queued
// or in flight (0 without cluster config) — part of Drain's quiescence
// test.
func (p *Pipeline) pendingForwards() int64 {
	if p.cl == nil {
		return 0
	}
	return atomic.LoadInt64(&p.cl.pending)
}

// ClusterStats snapshots the worker's shard-local cluster counters.
type ClusterStats struct {
	WorkerID        string
	Epoch           uint64
	Partitions      int
	OwnedPartitions int
	Forwards        int64
	ForwardDrops    int64
	Received        int64
	Fenced          int64
	Rebalances      int64
	PendingForwards int64
}

// clusterStats builds the Stats sub-document (nil without cluster
// config).
func (p *Pipeline) clusterStats() *ClusterStats {
	cl := p.cl
	if cl == nil {
		return nil
	}
	owned := 0
	for i := 0; i < cl.cfg.Partitions; i++ {
		if cl.table.WorkerOf(cluster.PartitionID(i)) == cl.me {
			owned++
		}
	}
	return &ClusterStats{
		WorkerID:        cl.me,
		Epoch:           cl.table.Epoch(),
		Partitions:      cl.cfg.Partitions,
		OwnedPartitions: owned,
		Forwards:        cl.forwards.Value(),
		ForwardDrops:    cl.forwardDrops.Value(),
		Received:        cl.received.Value(),
		Fenced:          cl.fenced.Value(),
		Rebalances:      atomic.LoadInt64(&cl.rebalances),
		PendingForwards: atomic.LoadInt64(&cl.pending),
	}
}

package nn

import "math"

// Fast transcendentals for the compiled inference path.
//
// The serving-shape forward pass (BiLSTM, H=32, T=20) evaluates 3840
// sigmoids and 2560 tanhs per call. math.Exp costs ~8ns here and
// math.Tanh falls back to Exp for |x| >= 0.625 — which trained gate
// pre-activations routinely exceed — so the stdlib activations account
// for more than half of the compiled forward pass. expFast below is a
// classic table-driven exponential (64-entry table, degree-5 polynomial
// on a +-ln2/128 residual) measured at ~2 ulp over the gate range,
// roughly half the cost of math.Exp. The reference path (lstm.go)
// keeps the stdlib functions: it is the parity oracle, and the 1e-12
// contract in TestCompiledParity is what bounds the drift introduced
// here (observed worst case is ~1e-14 at the model outputs).

// expTab[j] holds exp(j/64 * ln2); scaling by 2^k is an exponent-bit
// add, so expFast never multiplies by a separately computed power.
var expTab [64]float64

func init() {
	for j := range expTab {
		expTab[j] = math.Exp(float64(j) / 64 * math.Ln2)
	}
}

const (
	invLn2x64 = 64 / math.Ln2
	// 1.5 * 2^52: adding it pins the exponent so the low mantissa bits
	// hold round-to-nearest(z) in two's complement for |z| < 2^51.
	shifter = 3 << 51
	// ln2/64 split so that kf*ln2hi64 is exact for |kf| < 2^20
	// (fdlibm's ln2 split divided by 64; the division is exact).
	ln2hi64 = 0.01083042469326756
	ln2lo64 = 2.9815858269852933e-12
)

// expFast computes e^x to ~2 ulp for |x| <= 700. Callers are expected
// to range-check; outside that band the exponent-bit scaling wraps.
func expFast(x float64) float64 {
	z := x * invLn2x64
	kf := z + shifter
	ki := int64(math.Float64bits(kf)<<12) >> 12
	kf -= shifter
	r := x - kf*ln2hi64 - kf*ln2lo64
	tb := math.Float64bits(expTab[ki&63]) + uint64(ki>>6)<<52
	return math.Float64frombits(tb) * expPoly(r)
}

// sigmoidFast is 1/(1+e^-x) via expFast's table scheme, folded in so
// the whole evaluation is one call deep on the kernel's hot loop.
// Beyond +-700 the true sigmoid is 0 or 1 to hundreds of digits, so
// the clamp is exact in double precision; the clamp branches are
// never taken on sane inputs, so they predict perfectly. (math.Min/
// math.Max read nicer but are not intrinsified on amd64 — they cost
// two calls per clamp here, measured ~17µs per forward pass.) NaN
// propagates as the reference path would.
func sigmoidFast(x float64) float64 {
	if x != x {
		return x
	}
	y := -x
	if y > 700 {
		y = 700
	} else if y < -700 {
		y = -700
	}
	z := y * invLn2x64
	kf := z + shifter
	ki := int64(math.Float64bits(kf)<<12) >> 12
	kf -= shifter
	r := y - kf*ln2hi64 - kf*ln2lo64
	p := expPoly(r)
	tb := math.Float64bits(expTab[ki&63]) + uint64(ki>>6)<<52
	return 1 / (1 + math.Float64frombits(tb)*p)
}

// tanhFast mirrors math.Tanh's saturation behaviour (|x| > ~19.06
// rounds to +-1 in double; at the clamp the e^-2x identity evaluates
// to exactly +-1, so clamping is exact) and otherwise uses the e^-2x
// identity with expFast's table scheme folded in. Near zero the
// identity is still accurate: the numerator's cancellation keeps the
// absolute error at ~1 ulp of 1, which tanh's unit bound makes
// harmless downstream.
func tanhFast(x float64) float64 {
	if x != x {
		return x
	}
	y := -2 * x
	if y > 38.14 {
		y = 38.14
	} else if y < -38.14 {
		y = -38.14
	}
	z := y * invLn2x64
	kf := z + shifter
	ki := int64(math.Float64bits(kf)<<12) >> 12
	kf -= shifter
	r := y - kf*ln2hi64 - kf*ln2lo64
	p := expPoly(r)
	e := math.Float64frombits(math.Float64bits(expTab[ki&63])+uint64(ki>>6)<<52) * p
	return (1 - e) / (1 + e)
}

// act4 evaluates the four gate activations of one LSTM unit — three
// sigmoids and a tanh — in a single call. Hand-merged so the four
// independent exponential chains sit in one instruction window for the
// out-of-order core to overlap, and so the kernel pays one call per
// unit instead of four. Any non-finite pre-activation falls back to
// the scalar helpers (the sum test is NaN for NaN and +-Inf inputs;
// Inf-Inf cancellation also lands here, which is the slow path doing
// the right thing).
func act4(zi, zf, zg, zo float64) (ig, fg, gg, og float64) {
	if s := zi + zf + zg + zo; s != s {
		return sigmoidFast(zi), sigmoidFast(zf), tanhFast(zg), sigmoidFast(zo)
	}
	yi, yf, yg, yo := -zi, -zf, -2*zg, -zo
	if yi > 700 {
		yi = 700
	} else if yi < -700 {
		yi = -700
	}
	if yf > 700 {
		yf = 700
	} else if yf < -700 {
		yf = -700
	}
	if yg > 38.14 {
		yg = 38.14
	} else if yg < -38.14 {
		yg = -38.14
	}
	if yo > 700 {
		yo = 700
	} else if yo < -700 {
		yo = -700
	}

	ci := yi*invLn2x64 + shifter
	cf := yf*invLn2x64 + shifter
	cg := yg*invLn2x64 + shifter
	co := yo*invLn2x64 + shifter
	ii := int64(math.Float64bits(ci)<<12) >> 12
	jf := int64(math.Float64bits(cf)<<12) >> 12
	jg := int64(math.Float64bits(cg)<<12) >> 12
	jo := int64(math.Float64bits(co)<<12) >> 12
	ri := yi - (ci-shifter)*ln2hi64 - (ci-shifter)*ln2lo64
	rf := yf - (cf-shifter)*ln2hi64 - (cf-shifter)*ln2lo64
	rg := yg - (cg-shifter)*ln2hi64 - (cg-shifter)*ln2lo64
	ro := yo - (co-shifter)*ln2hi64 - (co-shifter)*ln2lo64

	pi := expPoly(ri)
	pf := expPoly(rf)
	pg := expPoly(rg)
	po := expPoly(ro)
	ei := math.Float64frombits(math.Float64bits(expTab[ii&63])+uint64(ii>>6)<<52) * pi
	ef := math.Float64frombits(math.Float64bits(expTab[jf&63])+uint64(jf>>6)<<52) * pf
	eg := math.Float64frombits(math.Float64bits(expTab[jg&63])+uint64(jg>>6)<<52) * pg
	eo := math.Float64frombits(math.Float64bits(expTab[jo&63])+uint64(jo>>6)<<52) * po
	return 1 / (1 + ei), 1 / (1 + ef), (1 - eg) / (1 + eg), 1 / (1 + eo)
}

// expPoly is the shared degree-5 Taylor core of expFast on the reduced
// residual r in [-ln2/128, ln2/128]; small enough to inline.
func expPoly(r float64) float64 {
	r2 := r * r
	return 1 + r + r2*(0.5+r*(1.0/6)+r2*((1.0/24)+r*(1.0/120)))
}

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// randSamples builds a small random training set for a config, used to
// move every parity model off its initialisation before compiling.
func randSamples(cfg Config, n int, rng *rand.Rand) []Sample {
	out := make([]Sample, n)
	for i := range out {
		seq := make([][]float64, 4+rng.Intn(8))
		for t := range seq {
			row := make([]float64, cfg.InputDim)
			for k := range row {
				row[k] = rng.NormFloat64()
			}
			seq[t] = row
		}
		tgt := make([]float64, cfg.OutputDim)
		for k := range tgt {
			tgt[k] = rng.NormFloat64()
		}
		out[i] = Sample{Seq: seq, Target: tgt}
	}
	return out
}

// TestCompiledParity is the oracle check the fast path lives under: for
// randomized trained models — both LSTM and BiLSTM — PredictInto must
// match the reference Predict within 1e-12 on every output. The fused
// path accumulates in the reference order; the only drift comes from
// the ~2 ulp fast activations (and FMA rounding on v3/arm64 builds),
// which lands around 1e-14 worst case — two orders inside the
// contract. Every eighth model uses the full S-VRF serving shape so
// the tolerance is exercised at production width, not just toy dims.
func TestCompiledParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const models = 120
	for i := 0; i < models; i++ {
		cfg := Config{
			InputDim:      1 + rng.Intn(4),
			Hidden:        1 + rng.Intn(12),
			OutputDim:     1 + rng.Intn(8),
			Bidirectional: i%2 == 0,
			Seed:          int64(i + 1),
		}
		if i%8 == 0 {
			cfg = Config{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: i%16 == 0, Seed: int64(i + 1)}
		}
		m, err := NewSeqRegressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two optimisation steps push the weights off their seeded
		// initialisation so the parity claim covers trained models.
		data := randSamples(cfg, 8, rng)
		m.clipNorm = 0
		m.TrainBatch(data, 1e-2, 1)
		m.TrainBatch(data, 1e-2, 1)

		c := m.Compile()
		s := c.GetScratch()
		dst := make([]float64, cfg.OutputDim)
		for trial := 0; trial < 4; trial++ {
			seq := randSamples(cfg, 1, rng)[0].Seq
			if trial == 3 {
				seq = nil // the empty-history edge must agree too
			}
			want := m.Predict(seq)
			got := c.PredictInto(dst, seq, s)
			for o := range want {
				if diff := math.Abs(got[o] - want[o]); diff > 1e-12 || math.IsNaN(got[o]) {
					t.Fatalf("model %d (bidir=%v) trial %d output %d: compiled %v reference %v (diff %g)",
						i, cfg.Bidirectional, trial, o, got[o], want[o], diff)
				}
			}
		}
		c.PutScratch(s)
	}
}

// TestCompiledVariants covers the scratch/dst permutations PredictInto
// accepts: nil scratch, nil dst, both nil, and the pooled Predict. All
// variants must agree bit-for-bit with each other (they run the same
// kernel), and the whole family must sit within the 1e-12 contract of
// the reference output.
func TestCompiledVariants(t *testing.T) {
	cfg := Config{InputDim: 3, Hidden: 8, OutputDim: 6, Bidirectional: true, Seed: 3}
	m, err := NewSeqRegressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	seq := randSamples(cfg, 1, rng)[0].Seq
	ref := m.Predict(seq)
	c := m.Compile()
	want := c.Predict(seq)
	for o := range want {
		if diff := math.Abs(want[o] - ref[o]); diff > 1e-12 {
			t.Fatalf("output %d: compiled %v vs reference %v (diff %g)", o, want[o], ref[o], diff)
		}
	}

	check := func(name string, got []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d outputs, want %d", name, len(got), len(want))
		}
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("%s: output %d = %v, want %v", name, o, got[o], want[o])
			}
		}
	}
	check("nil-scratch", c.PredictInto(make([]float64, cfg.OutputDim), seq, nil))
	check("nil-both", c.PredictInto(nil, seq, nil))
	s := c.GetScratch()
	check("nil-dst", c.PredictInto(nil, seq, s))
	if got := c.PredictInto(nil, seq, s); &got[0] != &s.Out()[0] {
		t.Fatal("nil dst with scratch should fill the scratch's own buffer")
	}
	c.PutScratch(s)
}

// TestCompiledImmutable verifies the snapshot semantics: training the
// source model after Compile must not change the compiled outputs.
func TestCompiledImmutable(t *testing.T) {
	cfg := Config{InputDim: 2, Hidden: 6, OutputDim: 4, Bidirectional: true, Seed: 5}
	m, _ := NewSeqRegressor(cfg)
	rng := rand.New(rand.NewSource(11))
	seq := randSamples(cfg, 1, rng)[0].Seq
	c := m.Compile()
	before := append([]float64(nil), c.Predict(seq)...)
	m.TrainBatch(randSamples(cfg, 8, rng), 1e-2, 1)
	after := c.Predict(seq)
	for o := range before {
		if before[o] != after[o] {
			t.Fatalf("compiled output changed after source training: %v -> %v", before[o], after[o])
		}
	}
	// And a fresh compile picks the new weights up.
	if c2 := m.Compile(); c2.Predict(seq)[0] == before[0] {
		t.Fatal("recompile did not pick up trained weights")
	}
}

// TestPredictBatchMatches checks the batch path against per-sequence
// compiled prediction (bit-exact: same kernel) for every worker
// setting, including dst reuse.
func TestPredictBatchMatches(t *testing.T) {
	cfg := Config{InputDim: 3, Hidden: 8, OutputDim: 6, Bidirectional: true, Seed: 13}
	m, _ := NewSeqRegressor(cfg)
	c := m.Compile()
	rng := rand.New(rand.NewSource(17))
	seqs := make([][][]float64, 37)
	want := make([][]float64, len(seqs))
	for i := range seqs {
		seqs[i] = randSamples(cfg, 1, rng)[0].Seq
		want[i] = c.Predict(seqs[i])
	}
	var dst [][]float64
	for _, workers := range []int{0, 1, 3, 16} {
		dst = c.PredictBatch(dst, seqs, workers)
		if len(dst) != len(seqs) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(dst), len(seqs))
		}
		for i := range want {
			for o := range want[i] {
				if dst[i][o] != want[i][o] {
					t.Fatalf("workers=%d seq %d output %d: %v != %v", workers, i, o, dst[i][o], want[i][o])
				}
			}
		}
	}
}

// TestPredictIntoZeroAlloc is the allocation-regression gate of the
// tentpole: the steady-state fast path must not allocate at all.
func TestPredictIntoZeroAlloc(t *testing.T) {
	cfg := Config{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: true, Seed: 1}
	m, _ := NewSeqRegressor(cfg)
	c := m.Compile()
	rng := rand.New(rand.NewSource(19))
	seq := make([][]float64, 20)
	for t := range seq {
		seq[t] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.Float64()}
	}
	s := c.GetScratch()
	defer c.PutScratch(s)
	dst := make([]float64, cfg.OutputDim)
	if avg := testing.AllocsPerRun(200, func() {
		c.PredictInto(dst, seq, s)
	}); avg != 0 {
		t.Fatalf("PredictInto allocates %v per run, want 0", avg)
	}
}

package ais

import (
	"testing"
	"time"
)

// FuzzParseSentence hardens the NMEA parser against arbitrary receiver
// garbage: it must never panic, and accepted sentences must re-parse
// consistently.
func FuzzParseSentence(f *testing.F) {
	lines, _ := Marshal(samplePosition(), "A", 0)
	f.Add(lines[0])
	static, _ := Marshal(sampleStatic(), "B", 3)
	for _, l := range static {
		f.Add(l)
	}
	f.Add("!AIVDM,1,1,,A,,0*26")
	f.Add("!AIVDM,2,1,3,B,55P5TL01VIaAL@7WKO@mBplU@<PDhh000000001S;AJ::4A80?4i@E53,0*3E")
	f.Add("$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47")
	f.Add("")
	f.Add("!AIVDM,1,1,,A")
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseSentence(line)
		if err != nil {
			return
		}
		// Accepted sentences have sane fragment fields.
		if s.FragCount < 1 || s.FragNum < 1 || s.FragNum > s.FragCount {
			t.Fatalf("accepted inconsistent fragments: %+v", s)
		}
		if s.FillBits < 0 || s.FillBits > 5 {
			t.Fatalf("accepted bad fill bits: %+v", s)
		}
	})
}

// FuzzAssembler feeds arbitrary (possibly valid) sentences through the
// multi-fragment assembler and decoder: no panics, no unbounded state.
func FuzzAssembler(f *testing.F) {
	pos, _ := Marshal(samplePosition(), "A", 0)
	static, _ := Marshal(sampleStatic(), "A", 1)
	f.Add(pos[0], static[0], static[1])
	f.Add(static[1], static[0], pos[0])
	f.Add("junk", "!AIVDM,1,1,,A,x,0*29", "")
	f.Fuzz(func(t *testing.T, l1, l2, l3 string) {
		asm := NewAssembler()
		now := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
		for _, line := range []string{l1, l2, l3} {
			s, err := ParseSentence(line)
			if err != nil {
				continue
			}
			msg, err := asm.Push(s, now)
			if err != nil || msg == nil {
				continue
			}
			if !msg.Source().Valid() && msg.Source() != 0 {
				// Source may be zero for garbage payloads but must not
				// exceed 30 bits (the decoder masks it).
				t.Fatalf("decoded out-of-range MMSI %d", msg.Source())
			}
		}
		if asm.Pending() > 3 {
			t.Fatalf("assembler leaked %d partials from 3 lines", asm.Pending())
		}
	})
}

// FuzzArmorDecode hardens the 6-bit payload decoder.
func FuzzArmorDecode(f *testing.F) {
	f.Add("177KQJ5000G?tO`K>RA1wUbN0TKH", 0)
	f.Add("", 0)
	f.Add("w", 5)
	f.Fuzz(func(t *testing.T, payload string, fill int) {
		buf, nbit, err := armorDecode(payload, fill)
		if err != nil {
			return
		}
		if nbit < 0 || nbit > len(buf)*8 {
			t.Fatalf("bit count %d out of range for %d bytes", nbit, len(buf))
		}
	})
}

package experiments

import (
	"fmt"
	"math"

	"seatwin/internal/svrf"
	"seatwin/internal/traj"
)

// This file is the promotion gate of the model lifecycle (ROADMAP #5):
// the background trainer shadow-evaluates a freshly trained candidate
// against the live model on held-out recent windows and asks this gate
// whether the candidate may ship. The gate is deliberately conservative
// — when the holdout is too small to mean anything, or the candidate's
// error is non-finite (a diverged fit), the verdict is always "keep
// the live model".

// PromotionConfig tunes the gate.
type PromotionConfig struct {
	// MaxADERatio is the worst candidate/live mean-ADE ratio that still
	// promotes. 1.0 (the default) requires the candidate to be at least
	// as good as the live model; values slightly above 1 tolerate eval
	// noise, values below 1 demand a strict improvement.
	MaxADERatio float64
	// MinHoldout is the fewest held-out windows that make the shadow
	// eval meaningful; with fewer the gate rejects without evaluating.
	MinHoldout int
}

// DefaultPromotionConfig returns the conservative defaults.
func DefaultPromotionConfig() PromotionConfig {
	return PromotionConfig{MaxADERatio: 1.0, MinHoldout: 32}
}

// PromotionResult is the gate's verdict plus the evidence behind it.
type PromotionResult struct {
	// Promote is the verdict: true means the candidate may replace the
	// live model.
	Promote bool
	// Reason explains the verdict in operator-readable form.
	Reason string
	// Holdout is the number of held-out windows evaluated.
	Holdout int
	// LiveADE and CandidateADE are mean displacement errors in meters
	// over the holdout (zero when the eval never ran).
	LiveADE      float64
	CandidateADE float64
	// LiveByHorizon and CandidateByHorizon break the ADE out per
	// forecast horizon (the Table 1 shape).
	LiveByHorizon      []float64
	CandidateByHorizon []float64
}

// RunPromotion shadow-evaluates candidate against live on the held-out
// windows and returns the gate's verdict. Neither model is mutated; the
// caller performs the hot-swap on a positive verdict.
func RunPromotion(live, candidate svrf.Predictor, holdout []traj.Window, cfg PromotionConfig) PromotionResult {
	if cfg.MaxADERatio <= 0 {
		cfg.MaxADERatio = 1.0
	}
	res := PromotionResult{Holdout: len(holdout)}
	if len(holdout) < cfg.MinHoldout {
		res.Reason = fmt.Sprintf("insufficient holdout: %d windows < %d required", len(holdout), cfg.MinHoldout)
		return res
	}
	liveDE := svrf.EvaluateADE(live, holdout)
	candDE := svrf.EvaluateADE(candidate, holdout)
	res.LiveADE = liveDE.MeanADE()
	res.CandidateADE = candDE.MeanADE()
	for h := 0; h < liveDE.Horizons(); h++ {
		res.LiveByHorizon = append(res.LiveByHorizon, liveDE.ADE(h))
	}
	for h := 0; h < candDE.Horizons(); h++ {
		res.CandidateByHorizon = append(res.CandidateByHorizon, candDE.ADE(h))
	}
	switch {
	case math.IsNaN(res.CandidateADE) || math.IsInf(res.CandidateADE, 0):
		// A diverged candidate must never win a NaN comparison.
		res.Reason = fmt.Sprintf("candidate ADE is non-finite (%v): diverged fit", res.CandidateADE)
	case math.IsNaN(res.LiveADE) || math.IsInf(res.LiveADE, 0):
		res.Promote = true
		res.Reason = fmt.Sprintf("live ADE is non-finite (%v), candidate %.1f m is finite", res.LiveADE, res.CandidateADE)
	case res.CandidateADE > res.LiveADE*cfg.MaxADERatio:
		res.Reason = fmt.Sprintf("candidate ADE %.1f m exceeds live %.1f m × %.2f on %d held-out windows",
			res.CandidateADE, res.LiveADE, cfg.MaxADERatio, len(holdout))
	default:
		res.Promote = true
		res.Reason = fmt.Sprintf("candidate ADE %.1f m beats live %.1f m × %.2f on %d held-out windows",
			res.CandidateADE, res.LiveADE, cfg.MaxADERatio, len(holdout))
	}
	return res
}

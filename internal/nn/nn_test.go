package nn

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func smallConfig(bidir bool) Config {
	return Config{InputDim: 2, Hidden: 5, OutputDim: 3, Bidirectional: bidir, Seed: 42}
}

func randomSample(rng *rand.Rand, steps, in, out int) Sample {
	seq := make([][]float64, steps)
	for t := range seq {
		seq[t] = make([]float64, in)
		for k := range seq[t] {
			seq[t][k] = rng.NormFloat64()
		}
	}
	target := make([]float64, out)
	for o := range target {
		target[o] = rng.NormFloat64()
	}
	return Sample{Seq: seq, Target: target}
}

// sampleLoss computes the MSE loss of one sample without touching
// gradients.
func sampleLoss(m *SeqRegressor, s Sample) float64 {
	y := m.Predict(s.Seq)
	loss := 0.0
	for o := range y {
		d := y[o] - s.Target[o]
		loss += d * d
	}
	return loss / float64(len(y))
}

// TestGradientCheck verifies the analytic BPTT gradients against
// central finite differences for every parameter block. This is the
// load-bearing test of the whole package: if it passes, training works.
func TestGradientCheck(t *testing.T) {
	for _, bidir := range []bool{false, true} {
		m, err := NewSeqRegressor(smallConfig(bidir))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		s := randomSample(rng, 6, 2, 3)

		m.zeroGrad()
		m.gradSample(s)

		const eps = 1e-6
		for bi, mat := range m.matrices() {
			// Check a spread of indices in each block.
			for _, idx := range []int{0, len(mat.W) / 2, len(mat.W) - 1} {
				orig := mat.W[idx]
				mat.W[idx] = orig + eps
				lp := sampleLoss(m, s)
				mat.W[idx] = orig - eps
				lm := sampleLoss(m, s)
				mat.W[idx] = orig
				numeric := (lp - lm) / (2 * eps)
				analytic := mat.g[idx]
				diff := math.Abs(numeric - analytic)
				scale := math.Max(1e-4, math.Abs(numeric)+math.Abs(analytic))
				if diff/scale > 1e-4 {
					t.Errorf("bidir=%v block %d idx %d: analytic %.8f numeric %.8f",
						bidir, bi, idx, analytic, numeric)
				}
			}
		}
	}
}

func TestLearnsLinearMap(t *testing.T) {
	// Target: sum of the sequence's first feature, a task both LSTM and
	// BiLSTM must learn to near-zero loss.
	m, _ := NewSeqRegressor(Config{InputDim: 2, Hidden: 8, OutputDim: 1, Bidirectional: true, Seed: 7})
	rng := rand.New(rand.NewSource(2))
	data := make([]Sample, 256)
	for i := range data {
		s := randomSample(rng, 5, 2, 1)
		sum := 0.0
		for _, x := range s.Seq {
			sum += x[0]
		}
		s.Target[0] = sum / 5
		data[i] = s
	}
	before := m.MSE(data)
	m.Fit(data, FitOptions{Epochs: 60, BatchSize: 32, LR: 0.01, Workers: 1, Seed: 3})
	after := m.MSE(data)
	if after > before*0.1 {
		t.Fatalf("did not learn: before %.5f after %.5f", before, after)
	}
}

func TestBiLSTMUsesFutureContext(t *testing.T) {
	// Target depends only on the FIRST element of the sequence. The
	// forward LSTM must carry it across all steps; the backward LSTM
	// sees it last. BiLSTM should fit this strictly better than a
	// forward-only LSTM of the same budget within few epochs.
	rng := rand.New(rand.NewSource(4))
	data := make([]Sample, 200)
	for i := range data {
		s := randomSample(rng, 12, 2, 1)
		s.Target[0] = s.Seq[0][0]
		data[i] = s
	}
	uni, _ := NewSeqRegressor(Config{InputDim: 2, Hidden: 6, OutputDim: 1, Seed: 9})
	bi, _ := NewSeqRegressor(Config{InputDim: 2, Hidden: 6, OutputDim: 1, Bidirectional: true, Seed: 9})
	opt := FitOptions{Epochs: 15, BatchSize: 32, LR: 0.02, Workers: 1, Seed: 5}
	uni.Fit(data, opt)
	bi.Fit(data, opt)
	mu, mb := uni.MSE(data), bi.MSE(data)
	if mb >= mu {
		t.Fatalf("BiLSTM (%.5f) not better than LSTM (%.5f) on future-context task", mb, mu)
	}
}

func TestL1RegularisationShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]Sample, 64)
	for i := range data {
		data[i] = randomSample(rng, 5, 2, 3)
	}
	plain, _ := NewSeqRegressor(smallConfig(true))
	reg, _ := NewSeqRegressor(Config{InputDim: 2, Hidden: 5, OutputDim: 3, Bidirectional: true, L1: 0.01, Seed: 42})
	opt := FitOptions{Epochs: 20, BatchSize: 16, LR: 0.01, Workers: 1, Seed: 8}
	plain.Fit(data, opt)
	reg.Fit(data, opt)
	if reg.L1Norm() >= plain.L1Norm() {
		t.Fatalf("L1 norm with reg %.3f >= without %.3f", reg.L1Norm(), plain.L1Norm())
	}
}

func TestDeterministicInitialisation(t *testing.T) {
	a, _ := NewSeqRegressor(smallConfig(true))
	b, _ := NewSeqRegressor(smallConfig(true))
	rng := rand.New(rand.NewSource(3))
	s := randomSample(rng, 4, 2, 3)
	ya, yb := a.Predict(s.Seq), b.Predict(s.Seq)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("same seed diverged: %v vs %v", ya, yb)
		}
	}
	c, _ := NewSeqRegressor(Config{InputDim: 2, Hidden: 5, OutputDim: 3, Bidirectional: true, Seed: 43})
	yc := c.Predict(s.Seq)
	same := true
	for i := range ya {
		if ya[i] != yc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestTrainingDeterministicSingleWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]Sample, 64)
	for i := range data {
		data[i] = randomSample(rng, 4, 2, 3)
	}
	opt := FitOptions{Epochs: 3, BatchSize: 16, LR: 0.01, Workers: 1, Seed: 17}
	a, _ := NewSeqRegressor(smallConfig(true))
	b, _ := NewSeqRegressor(smallConfig(true))
	la := a.Fit(data, opt)
	lb := b.Fit(data, opt)
	if la != lb {
		t.Fatalf("losses diverged: %v vs %v", la, lb)
	}
	s := data[0]
	ya, yb := a.Predict(s.Seq), b.Predict(s.Seq)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("weights diverged under identical deterministic training")
		}
	}
}

func TestParallelWorkersLearnToo(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := make([]Sample, 128)
	for i := range data {
		s := randomSample(rng, 5, 2, 1)
		s.Target[0] = (s.Seq[2][0] + s.Seq[2][1]) / 2
		data[i] = s
	}
	m, _ := NewSeqRegressor(Config{InputDim: 2, Hidden: 8, OutputDim: 1, Bidirectional: true, Seed: 21})
	before := m.MSE(data)
	m.Fit(data, FitOptions{Epochs: 30, BatchSize: 32, LR: 0.01, Workers: 4, Seed: 13})
	after := m.MSE(data)
	if after > before*0.3 {
		t.Fatalf("parallel training did not learn: before %.5f after %.5f", before, after)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, _ := NewSeqRegressor(smallConfig(true))
	rng := rand.New(rand.NewSource(14))
	data := make([]Sample, 32)
	for i := range data {
		data[i] = randomSample(rng, 4, 2, 3)
	}
	m.Fit(data, FitOptions{Epochs: 2, BatchSize: 8, LR: 0.01, Workers: 1, Seed: 1})

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := data[0]
	y1, y2 := m.Predict(s.Seq), loaded.Predict(s.Seq)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded model differs: %v vs %v", y1, y2)
		}
	}
	if loaded.Config() != m.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Config(), m.Config())
	}
}

func TestSaveLoadFile(t *testing.T) {
	m, _ := NewSeqRegressor(smallConfig(false))
	path := t.TempDir() + "/model.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	s := randomSample(rng, 4, 2, 3)
	y1, y2 := m.Predict(s.Seq), loaded.Predict(s.Seq)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("file round-trip changed the model")
		}
	}
}

func TestConcurrentPredict(t *testing.T) {
	// The paper mounts one S-VRF instance shared by all vessel actors;
	// concurrent Predict must be safe (run with -race).
	m, _ := NewSeqRegressor(smallConfig(true))
	rng := rand.New(rand.NewSource(16))
	samples := make([]Sample, 16)
	for i := range samples {
		samples[i] = randomSample(rng, 6, 2, 3)
	}
	want := make([][]float64, len(samples))
	for i, s := range samples {
		want[i] = m.Predict(s.Seq)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, s := range samples {
				got := m.Predict(s.Seq)
				for k := range got {
					if got[k] != want[i][k] {
						panic("concurrent predict diverged")
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestVariableSequenceLengths(t *testing.T) {
	m, _ := NewSeqRegressor(smallConfig(true))
	rng := rand.New(rand.NewSource(17))
	for _, steps := range []int{1, 3, 20, 50} {
		s := randomSample(rng, steps, 2, 3)
		y := m.Predict(s.Seq)
		if len(y) != 3 {
			t.Fatalf("steps=%d: output dim %d", steps, len(y))
		}
		for _, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("steps=%d: non-finite output %v", steps, y)
			}
		}
	}
	if y := m.Predict(nil); len(y) != 3 {
		t.Fatalf("empty sequence output dim %d", len(y))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{InputDim: 0, Hidden: 4, OutputDim: 1},
		{InputDim: 2, Hidden: 0, OutputDim: 1},
		{InputDim: 2, Hidden: 4, OutputDim: 0},
	}
	for _, cfg := range bad {
		if _, err := NewSeqRegressor(cfg); err == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
}

func TestProgressCallbackEarlyStop(t *testing.T) {
	m, _ := NewSeqRegressor(smallConfig(false))
	rng := rand.New(rand.NewSource(18))
	data := make([]Sample, 32)
	for i := range data {
		data[i] = randomSample(rng, 4, 2, 3)
	}
	calls := 0
	m.Fit(data, FitOptions{Epochs: 50, BatchSize: 8, LR: 0.01, Workers: 1,
		Progress: func(epoch int, loss float64) bool {
			calls++
			return epoch < 2 // stop after the third epoch
		}})
	if calls != 3 {
		t.Fatalf("progress called %d times, want 3", calls)
	}
}

func BenchmarkPredict20Steps(b *testing.B) {
	m, _ := NewSeqRegressor(Config{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: true, Seed: 1})
	rng := rand.New(rand.NewSource(19))
	s := randomSample(rng, 20, 3, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(s.Seq)
	}
}

func BenchmarkTrainBatch(b *testing.B) {
	m, _ := NewSeqRegressor(Config{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: true, Seed: 1})
	rng := rand.New(rand.NewSource(20))
	batch := make([]Sample, 32)
	for i := range batch {
		batch[i] = randomSample(rng, 20, 3, 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainBatch(batch, 1e-3, 1)
	}
}

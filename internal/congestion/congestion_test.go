package congestion

import (
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

var (
	t0      = time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	piraeus = Port{Name: "Piraeus", Pos: geo.Point{Lat: 37.925, Lon: 23.600}, Radius: 5000, Capacity: 3}
	syros   = Port{Name: "Syros", Pos: geo.Point{Lat: 37.430, Lon: 24.930}, Radius: 4000, Capacity: 2}
)

func approaching(mmsi ais.MMSI, port Port, minutesOut float64, sog float64) events.Forecast {
	// Build a forecast heading straight for the port, entering the
	// radius after ~minutesOut.
	dist := sog*geo.KnotsToMetersPerSecond*minutesOut*60 + port.Radius
	bearingIn := 135.0
	start := geo.Destination(port.Pos, bearingIn+180, dist)
	f := events.Forecast{MMSI: mmsi}
	for h := 0; h <= 6; h++ {
		dt := time.Duration(h) * 5 * time.Minute
		f.Points = append(f.Points, events.ForecastPoint{
			Pos: geo.DeadReckon(start, sog, bearingIn, dt.Seconds()),
			At:  t0.Add(dt),
		})
	}
	return f
}

func TestPresentOccupancy(t *testing.T) {
	m := NewMonitor([]Port{piraeus, syros}, 0)
	m.ObservePosition(1, geo.Destination(piraeus.Pos, 90, 1000), t0)
	m.ObservePosition(2, geo.Destination(piraeus.Pos, 180, 3000), t0)
	m.ObservePosition(3, geo.Destination(syros.Pos, 0, 2000), t0)
	m.ObservePosition(4, geo.Destination(piraeus.Pos, 90, 50000), t0) // far away

	snap := m.Snapshot(t0)
	byName := map[string]Status{}
	for _, s := range snap {
		byName[s.Port.Name] = s
	}
	if byName["Piraeus"].Present != 2 {
		t.Fatalf("piraeus present %d", byName["Piraeus"].Present)
	}
	if byName["Syros"].Present != 1 {
		t.Fatalf("syros present %d", byName["Syros"].Present)
	}
}

func TestDepartureClearsOccupancy(t *testing.T) {
	m := NewMonitor([]Port{piraeus}, 0)
	m.ObservePosition(1, geo.Destination(piraeus.Pos, 90, 1000), t0)
	if m.Snapshot(t0)[0].Present != 1 {
		t.Fatal("not present after entering")
	}
	m.ObservePosition(1, geo.Destination(piraeus.Pos, 90, 20000), t0.Add(10*time.Minute))
	if m.Snapshot(t0.Add(10 * time.Minute))[0].Present != 0 {
		t.Fatal("still present after leaving")
	}
}

func TestStaleOccupancyExpires(t *testing.T) {
	m := NewMonitor([]Port{piraeus}, 10*time.Minute)
	m.ObservePosition(1, geo.Destination(piraeus.Pos, 90, 1000), t0)
	if m.Snapshot(t0.Add(5 * time.Minute))[0].Present != 1 {
		t.Fatal("expired too early")
	}
	if m.Snapshot(t0.Add(20 * time.Minute))[0].Present != 0 {
		t.Fatal("silent vessel never expired")
	}
}

func TestPredictedArrivals(t *testing.T) {
	m := NewMonitor([]Port{piraeus}, 0)
	m.ObserveForecast(approaching(10, piraeus, 12, 14))
	m.ObserveForecast(approaching(11, piraeus, 20, 12))
	// A vessel heading elsewhere.
	away := approaching(12, syros, 10, 12)
	m.ObserveForecast(away)

	st := m.Snapshot(t0)[0]
	if st.Arriving != 2 {
		t.Fatalf("arriving %d, want 2", st.Arriving)
	}
	if st.PeakPredicted != 2 {
		t.Fatalf("peak %d", st.PeakPredicted)
	}
}

func TestPresentVesselNotDoubleCounted(t *testing.T) {
	m := NewMonitor([]Port{piraeus}, 0)
	inPort := geo.Destination(piraeus.Pos, 90, 1000)
	m.ObservePosition(5, inPort, t0)
	// Its own forecast stays in the radius.
	f := events.Forecast{MMSI: 5}
	for h := 0; h <= 6; h++ {
		f.Points = append(f.Points, events.ForecastPoint{
			Pos: inPort, At: t0.Add(time.Duration(h) * 5 * time.Minute),
		})
	}
	m.ObserveForecast(f)
	st := m.Snapshot(t0)[0]
	if st.Present != 1 || st.Arriving != 0 || st.PeakPredicted != 1 {
		t.Fatalf("double counted: %+v", st)
	}
}

func TestCongestionFlag(t *testing.T) {
	m := NewMonitor([]Port{syros}, 0) // capacity 2
	m.ObservePosition(1, geo.Destination(syros.Pos, 10, 500), t0)
	m.ObservePosition(2, geo.Destination(syros.Pos, 80, 900), t0)
	if got := m.Congested(t0); len(got) != 0 {
		t.Fatalf("at capacity is not congested: %v", got)
	}
	m.ObserveForecast(approaching(3, syros, 15, 10))
	got := m.Congested(t0)
	if len(got) != 1 || got[0].Port.Name != "Syros" {
		t.Fatalf("congestion not flagged: %v", got)
	}
	if got[0].PeakPredicted != 3 {
		t.Fatalf("peak %d", got[0].PeakPredicted)
	}
}

func TestSnapshotSortedByPressure(t *testing.T) {
	m := NewMonitor([]Port{piraeus, syros}, 0)
	m.ObservePosition(1, geo.Destination(syros.Pos, 10, 500), t0)
	m.ObservePosition(2, geo.Destination(syros.Pos, 80, 900), t0)
	m.ObservePosition(3, geo.Destination(piraeus.Pos, 80, 900), t0)
	snap := m.Snapshot(t0)
	if snap[0].Port.Name != "Syros" {
		t.Fatalf("snapshot not sorted by pressure: %v", snap)
	}
}

func BenchmarkObservePosition(b *testing.B) {
	ports := []Port{piraeus, syros}
	m := NewMonitor(ports, 0)
	pos := geo.Destination(piraeus.Pos, 90, 1000)
	for i := 0; i < b.N; i++ {
		m.ObservePosition(ais.MMSI(i%1000+1), pos, t0)
	}
}

package actor

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGetOrSpawnConcurrentSpawnPassivate hammers GetOrSpawn from 32
// goroutines over a small name pool while actors are concurrently
// stopped (the cell-passivation pattern), asserting exactly-one-spawn
// semantics — at no point do two live actors share a name — and that
// no message is lost: everything sent is either processed or
// dead-lettered, never dropped silently. Run it under -race.
func TestGetOrSpawnConcurrentSpawnPassivate(t *testing.T) {
	sys := NewSystem("race")
	defer sys.Shutdown(2 * time.Second)

	const (
		workers = 32
		names   = 64
		iters   = 300
	)
	var (
		sent     atomic.Int64
		received atomic.Int64
		live     [names]atomic.Int32
	)
	propsFor := func(idx int) *Props {
		return PropsOf(func(c *Context) {
			switch c.Message().(type) {
			case Started:
				// Stopped(old) happens-before Started(new) for a reused
				// name, so a gauge above 1 means two live actors shared it.
				if g := live[idx].Add(1); g > 1 {
					t.Errorf("name %d: %d concurrent live actors", idx, g)
				}
			case Stopped:
				live[idx].Add(-1)
			case int:
				received.Add(1)
			}
		})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < iters; i++ {
				idx := rng.Intn(names)
				pid, _ := sys.GetOrSpawn("cell-"+strconv.Itoa(idx), propsFor(idx))
				sent.Add(1)
				sys.Send(pid, i)
				if rng.Intn(8) == 0 {
					sys.Stop(pid) // concurrent passivation
				}
			}
		}(w)
	}
	wg.Wait()

	// Every sent message must be accounted for: processed by a live
	// actor or dead-lettered during a stop — never lost.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		got := received.Load() + int64(sys.StatsSnapshot().DeadLetters)
		if got == sent.Load() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := received.Load() + int64(sys.StatsSnapshot().DeadLetters); got != sent.Load() {
		t.Fatalf("messages lost: sent %d, accounted %d", sent.Load(), got)
	}

	// Registry bookkeeping stays exact through the churn.
	var liveNames int64
	for i := 0; i < names; i++ {
		if sys.Lookup("cell-"+strconv.Itoa(i)) != nil {
			liveNames++
		}
	}
	if size := sys.RegistrySize(); size != liveNames {
		t.Fatalf("RegistrySize = %d, live names = %d", size, liveNames)
	}
	var shardSum int64
	for _, n := range sys.RegistryShardSizes() {
		if n < 0 {
			t.Fatalf("negative shard size %d", n)
		}
		shardSum += n
	}
	if shardSum != sys.RegistrySize() {
		t.Fatalf("shard sizes sum %d != RegistrySize %d", shardSum, sys.RegistrySize())
	}
}

// TestSingleShardSystemBehaves checks the shards=1 baseline (the
// pre-sharding global lock) still provides the same semantics.
func TestSingleShardSystemBehaves(t *testing.T) {
	sys := NewSystemSharded("one", 1)
	defer sys.Shutdown(time.Second)
	props := PropsOf(func(c *Context) {})
	a, spawnedA := sys.GetOrSpawn("x", props)
	b, spawnedB := sys.GetOrSpawn("x", props)
	if !spawnedA || spawnedB || a != b {
		t.Fatalf("GetOrSpawn semantics broken: %v %v %v %v", a, spawnedA, b, spawnedB)
	}
	if sys.RegistrySize() != 1 || len(sys.RegistryShardSizes()) != 1 {
		t.Fatalf("size bookkeeping: %d shards=%v", sys.RegistrySize(), sys.RegistryShardSizes())
	}
}

// TestLookupRemovesDeadEntry verifies the stale-registry fix: a
// registry entry whose actor has died is deleted eagerly by Lookup
// instead of lingering until the process unregisters.
func TestLookupRemovesDeadEntry(t *testing.T) {
	sys := NewSystem("t")
	pid, err := sys.SpawnNamed(PropsOf(func(c *Context) {}), "zombie")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StopWait(pid, time.Second); err != nil {
		t.Fatal(err)
	}
	// Simulate the tombstone window: re-insert the dead pid as a stale
	// entry, as if the unregister had not run yet.
	sh := sys.shardOf("zombie")
	sh.m.Store("zombie", pid)
	sh.size.Add(1)
	if sys.Lookup("zombie") != nil {
		t.Fatal("dead entry returned from Lookup")
	}
	if _, ok := sh.m.Load("zombie"); ok {
		t.Fatal("dead entry not eagerly deleted")
	}
	if size := sys.RegistrySize(); size != 0 {
		t.Fatalf("RegistrySize = %d after tombstone removal", size)
	}
}

// TestQueuedMessagesCountsBacklog verifies System.QueuedMessages sees a
// backlog held in a slow actor's mailbox — the signal Pipeline.Drain
// uses to not declare quiescence early.
func TestQueuedMessagesCountsBacklog(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	release := make(chan struct{})
	pid, err := sys.SpawnNamed(PropsOf(func(c *Context) {
		if _, ok := c.Message().(int); ok {
			<-release
		}
	}), "slow")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sys.Send(pid, i)
	}
	// The first message blocks inside Receive; at least the other nine
	// must be visible as queued backlog.
	deadline := time.Now().Add(2 * time.Second)
	for sys.QueuedMessages() < 9 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := sys.QueuedMessages(); q < 9 {
		t.Fatalf("QueuedMessages = %d, want >= 9", q)
	}
	close(release)
	deadline = time.Now().Add(2 * time.Second)
	for sys.QueuedMessages() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if q := sys.QueuedMessages(); q != 0 {
		t.Fatalf("QueuedMessages = %d after drain, want 0", q)
	}
}

// TestAskTargetStopsWithoutReply verifies the future-actor leak fix:
// when the target dies mid-Ask the call returns promptly with
// ErrDeadLetter and the internal future actor is stopped rather than
// leaked until an external timeout.
func TestAskTargetStopsWithoutReply(t *testing.T) {
	sys := NewSystem("t")
	pid := sys.Spawn(PropsOf(func(c *Context) {})) // never replies
	go func() {
		time.Sleep(20 * time.Millisecond)
		sys.Stop(pid)
	}()
	start := time.Now()
	_, err := sys.Ask(pid, "x", 5*time.Second)
	if err != ErrDeadLetter {
		t.Fatalf("err = %v, want ErrDeadLetter", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("Ask took %v; should return promptly on target death", since)
	}
	// Both the target and the future must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for sys.LiveActors() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := sys.LiveActors(); n != 0 {
		t.Fatalf("%d actors leaked after Ask", n)
	}
}

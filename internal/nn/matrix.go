// Package nn is a small, dependency-free neural-network library built
// for the S-VRF model of the paper (Figure 3): one bidirectional LSTM
// layer followed by a fully connected layer, trained with Adam on mean
// squared error with L1 in-layer regularisation.
//
// The package favours clarity and determinism over raw speed: weights
// are float64, initialisation is seeded, and batch gradients can be
// computed on several goroutines and summed, which keeps training on a
// simulated dataset to tens of seconds while remaining exactly
// reproducible for a fixed seed and worker count.
//
// Inference through a trained model is safe for concurrent use: Predict
// allocates all per-call state, so a single model instance can be
// "mounted once in memory" and shared by every vessel actor, exactly as
// the paper describes.
package nn

import (
	"math"
	"math/rand"
)

// matrix is one trainable parameter block with its gradient and Adam
// moment estimates, stored row-major.
type matrix struct {
	Rows, Cols int
	W          []float64 // weights
	g          []float64 // gradient accumulator
	m, v       []float64 // Adam first/second moments
}

func newMatrix(rows, cols int, scale float64, rng *rand.Rand) *matrix {
	m := &matrix{
		Rows: rows, Cols: cols,
		W: make([]float64, rows*cols),
		g: make([]float64, rows*cols),
		m: make([]float64, rows*cols),
		v: make([]float64, rows*cols),
	}
	for i := range m.W {
		m.W[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

func (m *matrix) at(r, c int) float64         { return m.W[r*m.Cols+c] }
func (m *matrix) addGrad(r, c int, v float64) { m.g[r*m.Cols+c] += v }

func (m *matrix) zeroGrad() {
	for i := range m.g {
		m.g[i] = 0
	}
}

// addGradFrom accumulates another matrix's gradient (worker merge).
func (m *matrix) addGradFrom(o *matrix) {
	for i, gv := range o.g {
		m.g[i] += gv
	}
}

// adamStep applies one Adam update with optional L1 regularisation,
// scaling the accumulated gradient by invBatch.
func (m *matrix) adamStep(lr, beta1, beta2, eps, l1, invBatch float64, t int) {
	bc1 := 1 - math.Pow(beta1, float64(t))
	bc2 := 1 - math.Pow(beta2, float64(t))
	for i := range m.W {
		g := m.g[i] * invBatch
		if l1 > 0 {
			g += l1 * sign(m.W[i])
		}
		m.m[i] = beta1*m.m[i] + (1-beta1)*g
		m.v[i] = beta2*m.v[i] + (1-beta2)*g*g
		mh := m.m[i] / bc1
		vh := m.v[i] / bc2
		m.W[i] -= lr * mh / (math.Sqrt(vh) + eps)
	}
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// clone returns a matrix sharing no storage with the receiver, used to
// give each training worker a private gradient buffer. Weights are
// copied by reference semantics at call time (values copied).
func (m *matrix) clone() *matrix {
	c := &matrix{Rows: m.Rows, Cols: m.Cols,
		W: append([]float64(nil), m.W...),
		g: make([]float64, len(m.g)),
		m: make([]float64, len(m.m)),
		v: make([]float64, len(m.v)),
	}
	return c
}

// syncWeightsFrom copies weights (not grads/moments) from src.
func (m *matrix) syncWeightsFrom(src *matrix) {
	copy(m.W, src.W)
}

// l1Norm returns the sum of absolute weights (for regularisation
// reporting and tests).
func (m *matrix) l1Norm() float64 {
	s := 0.0
	for _, w := range m.W {
		s += math.Abs(w)
	}
	return s
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

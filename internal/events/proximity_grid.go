package events

import (
	"math"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// GridProximityDetector is the fast-path replacement for
// ProximityDetector (which it keeps as its parity oracle — see the
// parity tests). Semantics are identical; the cost model is not:
//
//   - Tracked vessels live in a flat slot arena bucketed into a spatial
//     micro-grid of ThresholdMeters-sized sub-bins, so an update probes
//     the handful of neighbor bins that can possibly hold a partner
//     instead of scanning every vessel in the cell.
//   - The pair cooldown uses a packed uint64 key (no fmt.Sprintf) and a
//     time-bucketed expiry ring, fixing the oracle's unbounded cooldown
//     map.
//   - Staleness eviction runs off a time-ordered ring, so updates never
//     iterate dead vessels; the oracle's opportunistic >2×TimeWindow
//     delete is still applied inline to probed entries, which is what
//     keeps the two detectors' emitted events identical (eviction
//     timing affects memory only, never events, because the TimeWindow
//     gate already excludes anything the ring might still hold).
//
// Steady-state Update performs zero heap allocations (see the alloc
// gate in grid_alloc_test.go). The detector is not safe for concurrent
// use; each cell actor owns one.
type GridProximityDetector struct {
	cfg ProximityConfig

	// Local equirectangular bin projection, fixed at the first update
	// so bin coordinates stay stable for the detector's lifetime.
	originSet  bool
	refLat     float64
	refLon     float64
	latStepDeg float64
	invLatStep float64
	invLonStep float64

	slots []proxSlot
	free  []int32
	index map[ais.MMSI]int32
	bins  map[binKey][]int32

	ring evictRing

	// cooldown maps packed pair keys to suppression deadlines. cdRing
	// buckets the deadlines into cdWidthNs-wide windows so expiry pops
	// whole buckets instead of scanning the map; refreshed pairs are
	// simply recorded again in a later bucket, and the deadline
	// double-check on expiry keeps refreshed entries alive.
	cooldown  map[uint64]time.Time
	cdRing    bucketRing
	cdWidthNs int64

	// Reused hot-path scratch.
	out   []Event
	stale []int32

	stats DetectorStats
}

// proxSlot is one tracked vessel in the arena.
type proxSlot struct {
	pos geo.Point
	at  time.Time
	// atNs mirrors at for branch-free staleness arithmetic.
	atNs int64
	// ringNs is the stamp of the slot's outstanding eviction-ring
	// record; every live slot has exactly one.
	ringNs int64
	mmsi   ais.MMSI
	gen    uint32
	bin    binKey
	binIdx int32
	live   bool
}

// NewGridProximityDetector creates an empty grid detector.
func NewGridProximityDetector(cfg ProximityConfig) *GridProximityDetector {
	if cfg.ThresholdMeters <= 0 {
		cfg = DefaultProximityConfig()
	}
	w := int64(cfg.Cooldown) / 4
	if w < int64(time.Second) {
		w = int64(time.Second)
	}
	return &GridProximityDetector{
		cfg:       cfg,
		index:     make(map[ais.MMSI]int32),
		bins:      make(map[binKey][]int32),
		cooldown:  make(map[uint64]time.Time),
		cdWidthNs: w,
	}
}

func (g *GridProximityDetector) setOrigin(pos geo.Point) {
	g.originSet = true
	g.refLat, g.refLon = pos.Lat, pos.Lon
	g.latStepDeg = g.cfg.ThresholdMeters / perLatMeters
	g.invLatStep = 1 / g.latStepDeg
	lonStepDeg := g.cfg.ThresholdMeters / (perLatMeters * cosClamped(math.Abs(g.refLat)+latSlackDeg))
	g.invLonStep = 1 / lonStepDeg
}

func (g *GridProximityDetector) binOf(pos geo.Point) (bx, by int32) {
	bx = int32(math.Floor((pos.Lon - g.refLon) * g.invLonStep))
	by = int32(math.Floor((pos.Lat - g.refLat) * g.invLatStep))
	return bx, by
}

// lonReachBins returns how many longitude bins to probe on each side of
// the update's own bin. Bin height is exactly ThresholdMeters of
// latitude, so ±1 latitude bin always suffices; bin width was fixed
// from the origin latitude, so the longitude reach is recomputed from
// the update's own latitude: a partner within ThresholdMeters at
// latitude L (hence within one lat bin, i.e. |mean latitude| below
// |L|+latStepDeg) spans at most threshold/(perLat·cos(|L|+latStepDeg))
// degrees of longitude. For any position inside the origin's slack band
// this is 1; positions far outside the band widen the probe instead of
// missing pairs.
func (g *GridProximityDetector) lonReachBins(lat float64) int32 {
	spanDeg := g.cfg.ThresholdMeters / (perLatMeters * cosClamped(math.Abs(lat)+g.latStepDeg))
	r := int32(math.Ceil(spanDeg * g.invLonStep))
	if r < 1 {
		r = 1
	}
	if r > 1024 {
		r = 1024
	}
	return r
}

// Update feeds one position report and returns any proximity events it
// completes. The returned slice is reused by the next Update call.
func (g *GridProximityDetector) Update(mmsi ais.MMSI, pos geo.Point, at time.Time) []Event {
	g.out = g.out[:0]
	if !g.originSet {
		g.setOrigin(pos)
	}
	atNs := at.UnixNano()
	g.expireCooldowns(at, atNs)
	g.evictStale(atNs)

	bx, by := g.binOf(pos)
	dxr := g.lonReachBins(pos.Lat)
	g.stale = g.stale[:0]
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := -dxr; dx <= dxr; dx++ {
			for _, si := range g.bins[makeBinKey(bx+dx, by+dy)] {
				s := &g.slots[si]
				if s.mmsi == mmsi {
					continue
				}
				g.stats.Candidates++
				dt := at.Sub(s.at)
				if dt < 0 {
					dt = -dt
				}
				if dt > g.cfg.TimeWindow {
					// Same opportunistic drop as the oracle; deferred so
					// the bin slice stays stable while iterated.
					if at.Sub(s.at) > 2*g.cfg.TimeWindow {
						g.stale = append(g.stale, si)
					}
					continue
				}
				g.stats.Checked++
				d := geo.FastDistance(pos, s.pos)
				if d > g.cfg.ThresholdMeters {
					continue
				}
				key := packPair(mmsi, s.mmsi)
				if until, ok := g.cooldown[key]; ok && at.Before(until) {
					continue
				}
				until := at.Add(g.cfg.Cooldown)
				g.cooldown[key] = until
				g.armCooldownExpiry(key, until.UnixNano())
				g.stats.Emitted++
				g.out = append(g.out, Event{
					Kind:       KindProximity,
					A:          mmsi,
					B:          s.mmsi,
					At:         at,
					DetectedAt: at,
					Pos:        geo.Midpoint(pos, s.pos),
					Meters:     d,
				})
			}
		}
	}
	for _, si := range g.stale {
		g.freeSlot(si)
		g.stats.Evicted++
	}

	// Refresh (or insert) the reporting vessel's own slot.
	g.Seed(mmsi, pos, at)
	return g.out
}

// Seed inserts or refreshes a vessel without running detection — the
// bulk-preload path benchmarks and state handoff use. Update calls it
// for its own-slot refresh, so Seed and Update insert identically.
func (g *GridProximityDetector) Seed(mmsi ais.MMSI, pos geo.Point, at time.Time) {
	if !g.originSet {
		g.setOrigin(pos)
	}
	atNs := at.UnixNano()
	bx, by := g.binOf(pos)
	nk := makeBinKey(bx, by)
	if si, ok := g.index[mmsi]; ok {
		s := &g.slots[si]
		if s.bin != nk {
			g.removeFromBin(si)
			g.addToBin(si, nk)
		}
		s.pos, s.at, s.atNs = pos, at, atNs
		// Push a fresh ring record; the previous one is superseded (its
		// ringNs no longer matches) and will be skipped when popped.
		// One push per refresh keeps the ring in strict time order, so
		// eviction fires on exactly the first update after the slot
		// turns stale — the same instant the oracle's full scan would
		// have dropped the entry.
		s.ringNs = atNs
		g.ring.push(evictRec{slot: si, gen: s.gen, atNs: atNs})
		return
	}
	si := g.allocSlot()
	s := &g.slots[si]
	s.mmsi, s.pos, s.at, s.atNs, s.live = mmsi, pos, at, atNs, true
	s.ringNs = atNs
	g.index[mmsi] = si
	g.addToBin(si, nk)
	g.ring.push(evictRec{slot: si, gen: s.gen, atNs: atNs})
}

// evictStale pops expired ring records. Every insert and refresh pushes
// a record stamped with the update time, so under a monotone report
// clock the ring is in strict time order and a slot's latest record
// expires exactly when the slot turns stale; earlier records of a
// refreshed slot are recognised by their outdated ringNs and skipped.
// Ring memory is bounded by the updates inside one staleness horizon.
func (g *GridProximityDetector) evictStale(atNs int64) {
	horizon := 2 * int64(g.cfg.TimeWindow)
	for g.ring.n > 0 {
		rec := g.ring.peek()
		if atNs-rec.atNs <= horizon {
			break
		}
		g.ring.pop()
		s := &g.slots[rec.slot]
		if !s.live || s.gen != rec.gen || s.ringNs != rec.atNs {
			continue // superseded record
		}
		g.freeSlot(rec.slot)
		g.stats.Evicted++
	}
}

// armCooldownExpiry records the pair key in the bucket covering its
// deadline. Deadlines arrive in near-monotone order (constant Cooldown
// added to the report clock); a regressing clock lands keys in the
// newest bucket, which expires them late, never early — and the
// deadline double-check in expireCooldowns keeps suppression exact
// either way.
func (g *GridProximityDetector) armCooldownExpiry(key uint64, untilNs int64) {
	start := floorDiv(untilNs, g.cdWidthNs) * g.cdWidthNs
	b := g.cdRing.tail()
	if b == nil || b.startNs < start {
		b = g.cdRing.push(start)
	}
	b.keys = append(b.keys, key)
}

// expireCooldowns drops cooldown entries whose bucket lies wholly in
// the past. Every deadline in a popped bucket is below startNs+width ≤
// now, so the per-key check only protects entries refreshed into a
// later bucket.
func (g *GridProximityDetector) expireCooldowns(at time.Time, atNs int64) {
	for g.cdRing.n > 0 {
		b := g.cdRing.peek()
		if b.startNs+g.cdWidthNs > atNs {
			break
		}
		for _, key := range b.keys {
			if until, ok := g.cooldown[key]; ok && !at.Before(until) {
				delete(g.cooldown, key)
			}
		}
		g.cdRing.pop()
	}
}

func (g *GridProximityDetector) allocSlot() int32 {
	if n := len(g.free); n > 0 {
		si := g.free[n-1]
		g.free = g.free[:n-1]
		return si
	}
	g.slots = append(g.slots, proxSlot{})
	return int32(len(g.slots) - 1)
}

func (g *GridProximityDetector) freeSlot(si int32) {
	s := &g.slots[si]
	g.removeFromBin(si)
	delete(g.index, s.mmsi)
	s.live = false
	s.gen++
	g.free = append(g.free, si)
}

func (g *GridProximityDetector) addToBin(si int32, k binKey) {
	ids := g.bins[k]
	g.slots[si].bin = k
	g.slots[si].binIdx = int32(len(ids))
	g.bins[k] = append(ids, si)
}

// removeFromBin swap-removes the slot from its bin's member slice.
func (g *GridProximityDetector) removeFromBin(si int32) {
	s := &g.slots[si]
	ids := g.bins[s.bin]
	last := len(ids) - 1
	moved := ids[last]
	ids[s.binIdx] = moved
	g.slots[moved].binIdx = s.binIdx
	ids = ids[:last]
	if len(ids) == 0 {
		delete(g.bins, s.bin)
	} else {
		g.bins[s.bin] = ids
	}
}

// Size returns the number of vessels tracked.
func (g *GridProximityDetector) Size() int { return len(g.index) }

// CooldownSize returns the number of live cooldown entries (bounded by
// the time-bucketed expiry; the regression test for the oracle's leak
// asserts on this).
func (g *GridProximityDetector) CooldownSize() int { return len(g.cooldown) }

// Stats returns the cumulative hot-path counters.
func (g *GridProximityDetector) Stats() DetectorStats { return g.stats }

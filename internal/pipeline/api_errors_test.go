package pipeline

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestBadQueryParamsRejected: malformed query parameters are a client
// error (400), not a silent fallback to defaults.
func TestBadQueryParamsRejected(t *testing.T) {
	p := newTestPipeline(t)
	api := NewAPI(p)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/api/vessels?limit=abc", http.StatusBadRequest},
		{"/api/vessels?limit=-5", http.StatusBadRequest},
		{"/api/vessels?limit=0", http.StatusBadRequest},
		{"/api/events?limit=nope", http.StatusBadRequest},
		{"/api/route?from=Piraeus&to=Heraklion&length=tall", http.StatusBadRequest},
		{"/api/route?from=Piraeus&to=Heraklion&draught=deep", http.StatusBadRequest},
		{"/api/route?from=Piraeus&to=Heraklion&type=big", http.StatusBadRequest},
		{"/api/route?to=Heraklion", http.StatusBadRequest}, // missing from
		// Well-formed parameters still work.
		{"/api/vessels?limit=5", http.StatusOK},
		{"/api/events?limit=5", http.StatusOK},
	} {
		rec := httptest.NewRecorder()
		api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.path, rec.Code, tc.want)
		}
	}
}

package pipeline

import (
	"strconv"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/checkpoint"
	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
	"seatwin/internal/views"
)

// Messages exchanged between the pipeline's actors.
type (
	// posMsg carries one position report to a vessel actor.
	posMsg struct {
		report     ais.PositionReport
		receivedAt time.Time
	}
	// cellPosMsg shares a vessel position with a proximity cell actor.
	cellPosMsg struct {
		mmsi ais.MMSI
		pos  geo.Point
		at   time.Time
	}
	// forecastMsg shares a vessel's forecast with a collision actor.
	forecastMsg struct {
		forecast events.Forecast
		at       time.Time
	}
	// eventMsg notifies writers (and affected vessel actors) of a
	// detected or forecast event.
	eventMsg struct {
		event events.Event
	}
	// stateMsg carries a vessel's current state to a writer actor.
	stateMsg struct {
		report   ais.PositionReport
		forecast []events.ForecastPoint
	}
	// ckptMsg carries a copy of a vessel's history window to its writer
	// actor for checkpointing (the same batched-write path as states).
	ckptMsg struct {
		mmsi    ais.MMSI
		reports []ais.PositionReport
	}
)

// vesselActor is the per-MMSI digital twin: it keeps the vessel's
// recent history, runs the shared forecasting model and fans results
// out to the spatial actors and the writer.
type vesselActor struct {
	p       *Pipeline
	mmsi    ais.MMSI
	history []ais.PositionReport
	soff    *events.SwitchOffDetector
	static  ais.StaticVoyage
	// lastEvent mirrors the state the cell actors communicate back.
	lastEvent events.Event
	// sinceCkpt counts accepted reports since the last checkpoint was
	// scheduled; dirty marks history not yet covered by one (so the
	// Stopping snapshot is skipped when nothing changed).
	sinceCkpt int
	dirty     bool

	// Fan-out scratch, reused across reports (the actor is
	// single-threaded): cell lists from the hexgrid Append* helpers and
	// the per-report dedup set of forecast cells.
	cellScratch []hexgrid.Cell
	diskScratch []hexgrid.Cell
	seenCells   map[hexgrid.Cell]struct{}
}

func newVesselActor(p *Pipeline, mmsi ais.MMSI) *vesselActor {
	return &vesselActor{
		p:    p,
		mmsi: mmsi,
		soff: events.NewSwitchOffDetector(p.cfg.SwitchOff),
	}
}

// Receive implements actor.Actor.
func (v *vesselActor) Receive(c *actor.Context) {
	switch m := c.Message().(type) {
	case actor.Started:
		// Started precedes every user message, both on first spawn and
		// after a supervision restart, so rehydration runs before any
		// report is processed: a restarted pipeline (or a crashed-and-
		// restarted actor) resumes forecasting from its checkpointed
		// window instead of re-warming from MinLiveReports. Replayed
		// broker records are then deduplicated by the out-of-order guard
		// in onPosition against the restored (nanosecond-exact) tail.
		if v.p.ckptInterval() > 0 {
			if reports, ok := v.p.loadCheckpoint(v.mmsi); ok {
				v.history = reports
			}
		}
	case actor.Stopping:
		// Passivation and shutdown snapshot the final window directly
		// (the writer actors may already be stopping), so a clean stop
		// never loses more than nothing.
		if v.dirty && v.p.ckptInterval() > 0 && len(v.history) > 0 {
			v.p.saveCheckpoint(v.mmsi, v.history)
			v.dirty = false
		}
	case posMsg:
		start := time.Now()
		v.onPosition(c, m)
		v.p.observeProcessing(uint64(v.mmsi), time.Since(start))
	case ais.StaticVoyage:
		v.static = m
	case eventMsg:
		// State communicated back from a cell or collision actor (§3).
		v.lastEvent = m.event
	}
}

func (v *vesselActor) onPosition(c *actor.Context, m posMsg) {
	r := m.report
	// Out-of-order reports are dropped: per-key broker ordering makes
	// them rare, but satellite feeds can replay.
	if n := len(v.history); n > 0 && !r.Timestamp.After(v.history[n-1].Timestamp) {
		return
	}
	// Switch-off detection precedes the history append.
	if e, fired := v.soff.Update(r.MMSI, geo.Point{Lat: r.Lat, Lon: r.Lon}, r.Timestamp); fired {
		v.emitEvent(c, e, nil)
	}
	v.history = append(v.history, r)
	if len(v.history) > v.p.cfg.HistoryLimit {
		// Trim in place: nothing downstream retains a view of history
		// (the forecasters read it synchronously and build fresh points;
		// checkpoints copy explicitly), so sliding the window within the
		// same buffer avoids reallocating it on every report.
		drop := len(v.history) - v.p.cfg.HistoryLimit
		n := copy(v.history, v.history[drop:])
		v.history = v.history[:n]
	}
	// Periodic checkpoint: every ckptInterval accepted reports a copy of
	// the window rides the writer path (one batched HSetMulti), so a
	// crash at any point loses at most an interval's worth of warmup.
	if interval := v.p.ckptInterval(); interval > 0 {
		v.dirty = true
		v.sinceCkpt++
		if v.sinceCkpt >= interval {
			v.sinceCkpt = 0
			v.dirty = false
			c.Send(v.p.writerFor(v.mmsi),
				ckptMsg{mmsi: v.mmsi, reports: append([]ais.PositionReport(nil), v.history...)})
		}
	}

	// Forecast with the shared model. The call is timed separately from
	// the whole message so operators can see how much of the processing
	// budget is model inference (seatwin_svrf_infer_seconds).
	var forecast events.Forecast
	haveForecast := false
	inferStart := time.Now()
	if f, ok := v.p.cfg.Forecaster.ForecastTrack(v.history); ok {
		forecast = f
		haveForecast = true
		v.p.forecasts.Inc(uint64(v.mmsi), 1)
		v.p.inferLat.Observe(uint64(v.mmsi), time.Since(inferStart))
	}

	if mon := v.p.congestion; mon != nil {
		mon.ObservePosition(r.MMSI, geo.Point{Lat: r.Lat, Lon: r.Lon}, r.Timestamp)
		if haveForecast {
			mon.ObserveForecast(forecast)
		}
	}

	if !v.p.cfg.DisableEventFanout {
		// Positions go to the proximity cell actor of the report's cell
		// and near neighbours, so borders cannot hide a close pair. The
		// cell list is built into the actor's reused scratch slice.
		pos := geo.Point{Lat: r.Lat, Lon: r.Lon}
		v.cellScratch = hexgrid.AppendDiskCovering(v.cellScratch[:0], pos, v.p.cfg.ProximityResolution, v.p.cfg.Proximity.ThresholdMeters)
		// Box the (immutable) message once and share it across every
		// destination cell instead of re-boxing per Send.
		m := cellPosMsg{mmsi: r.MMSI, pos: pos, at: r.Timestamp}
		var cpm any = m
		for _, cell := range v.cellScratch {
			// Cells are placed on the ring like vessels: a cell owned by
			// another partition gets the share over its forward topic.
			if cl := v.p.cl; cl != nil && !cl.owns(uint64(cell)) {
				cl.forwardCellPos(cell, m)
				continue
			}
			c.Send(v.p.proximityActor(cell), cpm)
		}
		// Forecasts go to the collision actors of every cell the
		// predicted track crosses plus each nearest neighbour (§5.2:
		// "the respective cell n and each n+1 nearest cell"). Tracing
		// the segments between forecast points keeps fast vessels from
		// skipping cells that lie between two 5-minute positions.
		if haveForecast {
			if v.seenCells == nil {
				v.seenCells = make(map[hexgrid.Cell]struct{}, 32)
			}
			seen := v.seenCells
			clear(seen)
			for i := 1; i < len(forecast.Points); i++ {
				v.cellScratch = hexgrid.AppendTraceLine(v.cellScratch[:0],
					forecast.Points[i-1].Pos, forecast.Points[i].Pos,
					v.p.cfg.CollisionResolution)
				for _, cell := range v.cellScratch {
					if _, dup := seen[cell]; dup {
						continue
					}
					seen[cell] = struct{}{}
					v.diskScratch = cell.AppendGridDisk(v.diskScratch[:0], 1)
					for _, n := range v.diskScratch {
						if _, dup := seen[n]; !dup {
							seen[n] = struct{}{}
						}
					}
				}
			}
			var fm any = forecastMsg{forecast: forecast, at: r.Timestamp}
			for cell := range seen {
				if cl := v.p.cl; cl != nil && !cl.owns(uint64(cell)) {
					cl.forwardForecast(cell, forecast, r.Timestamp)
					continue
				}
				c.Send(v.p.collisionActor(cell), fm)
			}
		}
	}

	// Persist state through the writer actor.
	msg := stateMsg{report: r}
	if haveForecast {
		msg.forecast = forecast.Points
	}
	c.Send(v.p.writerFor(r.MMSI), msg)
}

// emitEvent logs the event, persists it and notifies the involved
// vessel actors.
func (v *vesselActor) emitEvent(c *actor.Context, e events.Event, _ any) {
	v.p.log.Append(e)
	c.Send(v.p.writerFor(e.A), eventMsg{event: e})
}

// proximityDetector is the surface a cell actor drives: both the
// map-scan oracle and the micro-grid fast path satisfy it, selected by
// Config.UseScanDetectors (the grid is the default).
type proximityDetector interface {
	Update(mmsi ais.MMSI, pos geo.Point, at time.Time) []events.Event
	Size() int
}

// collisionDetector is the same for the collision actors.
type collisionDetector interface {
	Update(f events.Forecast, now time.Time) []events.Event
	Size() int
}

// cellActor detects live close proximity among the vessels reporting
// inside its hexgrid cell neighbourhood.
type cellActor struct {
	p          *Pipeline
	detector   proximityDetector
	grid       *events.GridProximityDetector // non-nil on the fast path
	passivator *passivator

	// Metric bookkeeping: the detector's stats are cumulative and its
	// occupancy a level, so the actor pushes deltas into the pipeline's
	// sharded aggregates. hint is the last MMSI seen — it keeps the
	// passivation decrement on the shard this cell was writing to.
	tracked   int64
	lastStats events.DetectorStats
	hint      uint64
}

// Receive implements actor.Actor.
func (a *cellActor) Receive(c *actor.Context) {
	if _, stopping := c.Message().(actor.Stopping); stopping {
		// The occupancy gauge drops this cell's tracked entries when it
		// passivates — handled before touch so the stop is not mistaken
		// for activity (touch would re-arm the idle timer).
		a.p.proxDet.tracked.Inc(a.hint, -a.tracked)
		a.tracked = 0
		return
	}
	if a.passivator.touch(c) {
		return
	}
	m, ok := c.Message().(cellPosMsg)
	if !ok {
		return
	}
	a.hint = uint64(m.mmsi)
	start := time.Now()
	evs := a.detector.Update(m.mmsi, m.pos, m.at)
	a.p.proxDet.updateLat.Observe(a.hint, time.Since(start))
	a.pushDetectorStats()
	for _, e := range evs {
		a.p.log.Append(e)
		var em any = eventMsg{event: e}
		c.Send(a.p.writerFor(e.A), em)
		// Communicate the state back to the affected vessel actors
		// (forwarded when a vessel lives on another partition).
		a.p.notifyVessel(c, e.A, em, e)
		a.p.notifyVessel(c, e.B, em, e)
	}
}

// pushDetectorStats folds the update's effect into the pipeline-wide
// aggregates: the occupancy delta always, the candidate funnel only on
// the grid path (the scan oracle does not track it).
func (a *cellActor) pushDetectorStats() {
	size := int64(a.detector.Size())
	a.p.proxDet.tracked.Inc(a.hint, size-a.tracked)
	a.tracked = size
	if a.grid == nil {
		return
	}
	st := a.grid.Stats()
	a.p.proxDet.candidates.Inc(a.hint, st.Candidates-a.lastStats.Candidates)
	a.p.proxDet.checked.Inc(a.hint, st.Checked-a.lastStats.Checked)
	a.p.proxDet.evictions.Inc(a.hint, st.Evicted-a.lastStats.Evicted)
	a.lastStats = st
}

// collisionActor forecasts collisions among the predicted trajectories
// crossing its cell.
type collisionActor struct {
	p          *Pipeline
	detector   collisionDetector
	grid       *events.GridDetector // non-nil on the fast path
	passivator *passivator

	tracked   int64
	lastStats events.DetectorStats
	hint      uint64
}

// Receive implements actor.Actor.
func (a *collisionActor) Receive(c *actor.Context) {
	if _, stopping := c.Message().(actor.Stopping); stopping {
		a.p.collDet.tracked.Inc(a.hint, -a.tracked)
		a.tracked = 0
		return
	}
	if a.passivator.touch(c) {
		return
	}
	m, ok := c.Message().(forecastMsg)
	if !ok {
		return
	}
	a.hint = uint64(m.forecast.MMSI)
	start := time.Now()
	evs := a.detector.Update(m.forecast, m.at)
	a.p.collDet.updateLat.Observe(a.hint, time.Since(start))
	a.pushDetectorStats()
	for _, e := range evs {
		// Several collision actors can see the same pair (the forecast
		// is shared with every touched cell and its neighbours); the
		// pipeline deduplicates system-wide.
		if !a.p.shouldEmitPair("cx/"+e.PairKey(), m.at, 5*time.Minute) {
			continue
		}
		a.p.log.Append(e)
		var em any = eventMsg{event: e}
		c.Send(a.p.writerFor(e.A), em)
		a.p.notifyVessel(c, e.A, em, e)
		a.p.notifyVessel(c, e.B, em, e)
	}
}

// pushDetectorStats mirrors cellActor.pushDetectorStats for the
// collision family.
func (a *collisionActor) pushDetectorStats() {
	size := int64(a.detector.Size())
	a.p.collDet.tracked.Inc(a.hint, size-a.tracked)
	a.tracked = size
	if a.grid == nil {
		return
	}
	st := a.grid.Stats()
	a.p.collDet.candidates.Inc(a.hint, st.Candidates-a.lastStats.Candidates)
	a.p.collDet.checked.Inc(a.hint, st.Checked-a.lastStats.Checked)
	a.p.collDet.evictions.Inc(a.hint, st.Evicted-a.lastStats.Evicted)
	a.lastStats = st
}

// writerActor persists actor outputs into the kvstore middleware: the
// vessel state hash, the event sorted set and a pub/sub notification —
// the read side the HTTP API serves.
//
// The actor is single-threaded, so its encoding scratch (field encoder,
// event-member buffer, per-vessel key cache) is reused across messages
// without locks — the write path allocates almost nothing per state.
type writerActor struct {
	p       *Pipeline
	enc     fieldEncoder
	ckptEnc checkpoint.Encoder
	evBuf   []byte
	// keys caches the rendered store key and 9-digit member string per
	// vessel routed to this writer (bounded by the fleet slice this
	// writer owns; entries are tiny).
	keys map[ais.MMSI]writerKeys
}

// writerKeys are the per-vessel strings a state write needs.
type writerKeys struct {
	stateKey string // "vessel:" + 9-digit MMSI
	ckptKey  string // "ckpt:" + 9-digit MMSI
	mmsi     string // 9-digit MMSI (the active-set member)
}

// keysFor returns (building on first sight) the cached key strings of
// a vessel.
func (w *writerActor) keysFor(m ais.MMSI) writerKeys {
	if k, ok := w.keys[m]; ok {
		return k
	}
	if w.keys == nil {
		w.keys = make(map[ais.MMSI]writerKeys, 256)
	}
	b := m.Append(make([]byte, 0, 16+9))
	k := writerKeys{
		stateKey: "vessel:" + string(b),
		ckptKey:  checkpoint.KeyPrefix + string(b),
		mmsi:     string(b),
	}
	w.keys[m] = k
	return k
}

// Receive implements actor.Actor.
func (w *writerActor) Receive(c *actor.Context) {
	switch m := c.Message().(type) {
	case stateMsg:
		w.writeState(m)
	case eventMsg:
		w.writeEvent(m.event)
	case ckptMsg:
		ks := w.keysFor(m.mmsi)
		w.p.saveCheckpointFields(ks.ckptKey, m.mmsi, m.reports, &w.ckptEnc)
	}
}

// StateOutput is the document produced onto the states output topic.
type StateOutput struct {
	Report   ais.PositionReport
	Forecast []events.ForecastPoint
}

func (w *writerActor) writeState(m stateMsg) {
	ks := w.keysFor(m.report.MMSI)
	if ob := w.p.cfg.OutputBroker; ob != nil {
		ob.Produce(w.p.cfg.OutputStatesTopic, ks.mmsi,
			StateOutput{Report: m.report, Forecast: m.forecast})
	}
	st := w.p.kv
	static, haveStatic := w.p.Static(m.report.MMSI)
	if w.p.cfg.Feed != nil {
		// Push transports: the frame rides the actor EventStream the
		// feed hub is attached to. The hub's bounded per-subscriber
		// rings guarantee this publish never blocks the writer.
		w.p.system.Events().Publish(feed.State{
			MMSI: m.report.MMSI, Name: static.Name,
			Lat: m.report.Lat, Lon: m.report.Lon,
			SOG: m.report.SOG, COG: m.report.COG,
			Status:   m.report.Status.String(),
			TS:       m.report.Timestamp,
			Forecast: m.forecast,
		})
	}
	if v := w.p.cfg.Views; v != nil {
		// The read-side views stage the state in a sharded buffer; the
		// snapshot rebuild happens on the views' own refresh cadence, so
		// this is a few field copies plus one stripe lock — never a
		// snapshot encode on the writer's hot path.
		v.ApplyState(views.VesselState{
			MMSI: m.report.MMSI, Name: static.Name,
			Lat: m.report.Lat, Lon: m.report.Lon,
			SOG: m.report.SOG, COG: m.report.COG,
			Status:   m.report.Status.String(),
			TS:       m.report.Timestamp,
			Forecast: m.forecast,
		})
	}
	// One batched write per state update — a single lock acquisition on
	// the store — with the whole document encoded into the writer's
	// reused field encoder: every value is appended into one shared
	// buffer and materialised by a single string conversion (status and
	// name are constant strings and aren't even copied).
	e := &w.enc
	e.reset()
	e.buf = strconv.AppendFloat(e.buf, m.report.Lat, 'f', 5, 64)
	e.commit("lat")
	e.buf = strconv.AppendFloat(e.buf, m.report.Lon, 'f', 5, 64)
	e.commit("lon")
	e.buf = strconv.AppendFloat(e.buf, m.report.SOG, 'f', 1, 64)
	e.commit("sog")
	e.buf = strconv.AppendFloat(e.buf, m.report.COG, 'f', 1, 64)
	e.commit("cog")
	e.direct("status", m.report.Status.String())
	e.buf = m.report.Timestamp.UTC().AppendFormat(e.buf, time.RFC3339)
	e.commit("ts")
	if len(m.forecast) > 0 {
		e.buf = appendForecast(e.buf, m.forecast)
		e.commit("forecast")
	}
	if haveStatic {
		e.direct("name", static.Name)
		e.buf = strconv.AppendInt(e.buf, int64(static.ShipType), 10)
		e.commit("type")
	}
	fields := e.finish()
	// Writes go through the retry policy; an exhausted write is dropped
	// (degraded mode, counted in seatwin_retry_exhausted_total) — the
	// next report for this vessel rewrites the full document anyway.
	hint := uint64(m.report.MMSI)
	w.p.retryDo(hint, func() error {
		_, err := st.HSetFields(ks.stateKey, fields)
		return err
	})
	// The active-vessel index, scored by last report time.
	w.p.retryDo(hint, func() error {
		_, err := st.ZAdd("vessels:active", float64(m.report.Timestamp.Unix()), ks.mmsi)
		return err
	})
}

func (w *writerActor) writeEvent(e events.Event) {
	if ob := w.p.cfg.OutputBroker; ob != nil {
		ob.Produce(w.p.cfg.OutputEventsTopic, e.PairKey(), e)
	}
	if w.p.cfg.Feed != nil {
		w.p.system.Events().Publish(e)
	}
	if v := w.p.cfg.Views; v != nil {
		v.ApplyEvent(e)
	}
	// The member is byte-appended into the writer's reused buffer —
	// the format matches the fmt.Sprintf("%s|%s|%s|%.0fm|%s") it
	// replaces, including the MMSIs' 9-digit padding.
	b := w.evBuf[:0]
	b = append(b, string(e.Kind)...)
	b = append(b, '|')
	b = e.A.Append(b)
	b = append(b, '|')
	b = e.B.Append(b)
	b = append(b, '|')
	b = strconv.AppendFloat(b, e.Meters, 'f', 0, 64)
	b = append(b, 'm', '|')
	b = e.At.UTC().AppendFormat(b, time.RFC3339)
	w.evBuf = b
	member := string(b)
	w.p.retryDo(uint64(e.A), func() error {
		_, err := w.p.kv.ZAdd("events:"+string(e.Kind), float64(e.At.Unix()), member)
		return err
	})
	w.p.kv.Publish("events", member)
}

// appendForecast renders forecast points compactly for the store:
// "lat,lon,unix;..." — small enough for a hash field and trivially
// parseable by the API layer.
func appendForecast(buf []byte, pts []events.ForecastPoint) []byte {
	for i, p := range pts {
		if i > 0 {
			buf = append(buf, ';')
		}
		buf = strconv.AppendFloat(buf, p.Pos.Lat, 'f', 5, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, p.Pos.Lon, 'f', 5, 64)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, p.At.Unix(), 10)
	}
	return buf
}

package events

import (
	"math"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// collBinMeters sizes the collision micro-grid bins. Forecast bounding
// circles span a few kilometers (30 minutes of vessel motion), so
// 15 km bins keep each slot registered in a handful of bins while still
// splitting a res-7 collision cell's neighbourhood into enough bins to
// prune far-apart traffic.
const collBinMeters = 15000.0

// GridDetector is the fast-path replacement for the map-scan collision
// Detector (which it keeps as its parity oracle). Semantics are
// identical; the cost model is not:
//
//   - Each forecast is interpolated ONCE at insert onto the
//     epoch-aligned checkStep tick grid (see collision.go) into a
//     pooled contiguous sample arena, with per-segment great-circle
//     setup (Haversine + InitialBearing) hoisted out of the per-tick
//     loop. Pair checks then never call interpAt: they are straight
//     sweeps over two precomputed arrays using the batch distance
//     kernel geo.FastDistancesInto.
//   - Each slot carries a bounding circle (centroid + radius over the
//     raw forecast points); Update probes a micro-grid of those
//     circles and prunes candidates by circle overlap before the exact
//     (oracle-identical) raw-point prefilter and tick sweep run.
//   - Staleness expiry runs off a time-ordered ring instead of the
//     oracle's full-map scan on every insert; the oracle's eviction
//     cutoff is still applied inline to probed candidates, which keeps
//     emitted events identical regardless of when the ring physically
//     frees a slot.
//
// The tick-sweep fast path requires TemporalThreshold to be a whole
// number of checkSteps (the default 2 minutes is); otherwise pair
// checks fall back to CheckPair after the circle prune. The detector is
// not safe for concurrent use; each collision actor owns one.
type GridDetector struct {
	cfg      CollisionConfig
	expireNs int64

	// fastPath: the ±TemporalThreshold slide lands exactly on tick
	// boundaries, so precomputed samples serve every pair check.
	fastPath   bool
	slideTicks int64
	// pruneMargin is the circle-overlap slack: the oracle's prefilter
	// accepts a pair only if some raw-point distance is at most
	// threshold+prefilterMargin, which bounds the centroid distance by
	// radiusA+radiusB+threshold+prefilterMargin up to FastDistance's
	// non-metricity — absorbed by the generous 25%+1km slack, so the
	// prune never rejects a pair the oracle would accept.
	pruneMargin float64

	originSet  bool
	refLat     float64
	refLon     float64
	invLatStep float64
	invLonStep float64

	slots []collSlot
	free  []int32
	index map[ais.MMSI]int32
	bins  map[binKey][]int32

	ring     evictRing
	probeSeq uint64

	// Reused hot-path scratch.
	out         []Event
	distScratch []float64

	stats DetectorStats
}

// collSlot is one live forecast: its raw points, bounding circle,
// precomputed tick samples and micro-grid registration rectangle.
type collSlot struct {
	mmsi    ais.MMSI
	gen     uint32
	live    bool
	stampNs int64

	raw      []ForecastPoint
	centroid geo.Point
	radius   float64

	firstTick int64
	lastTick  int64
	samples   []geo.Point

	// Registration rectangle (inclusive bin ranges; bx0 > bx1 when the
	// slot is not registered) and the slot's index inside each bin's
	// member slice, in (by outer, bx inner) order, for O(1) removal.
	bx0, bx1, by0, by1 int32
	binPos             []int32

	probeSeq uint64
}

// NewGridDetector creates a grid detector whose forecasts expire after
// the given duration (0 means 10 minutes), matching NewDetector.
func NewGridDetector(cfg CollisionConfig, expire time.Duration) *GridDetector {
	if expire <= 0 {
		expire = 10 * time.Minute
	}
	d := &GridDetector{
		cfg:      cfg,
		expireNs: int64(expire),
		index:    make(map[ais.MMSI]int32),
		bins:     make(map[binKey][]int32),
	}
	d.fastPath = cfg.TemporalThreshold >= 0 && cfg.TemporalThreshold%checkStep == 0
	d.slideTicks = int64(cfg.TemporalThreshold / checkStep)
	d.pruneMargin = (cfg.SpatialThresholdMeters+prefilterMarginMeters)*1.25 + 1000
	return d
}

func (d *GridDetector) setOrigin(pos geo.Point) {
	d.originSet = true
	d.refLat, d.refLon = pos.Lat, pos.Lon
	d.invLatStep = perLatMeters / collBinMeters
	lonStepDeg := collBinMeters / (perLatMeters * cosClamped(math.Abs(pos.Lat)+latSlackDeg))
	d.invLonStep = 1 / lonStepDeg
}

func (d *GridDetector) binX(lon float64) int32 {
	return int32(math.Floor((lon - d.refLon) * d.invLonStep))
}

func (d *GridDetector) binY(lat float64) int32 {
	return int32(math.Floor((lat - d.refLat) * d.invLatStep))
}

// binRect returns the inclusive bin rectangle covering the circle
// (center, radiusMeters). The meter→degree conversions use the largest
// |latitude| the circle touches, so the rectangle always covers the
// circle; spans are capped at maxSpan bins per axis around the center —
// the cap only binds for physically impossible tracks (hundreds of km
// in a 30-minute forecast).
func (d *GridDetector) binRect(center geo.Point, radiusMeters float64, maxSpan int32) (bx0, bx1, by0, by1 int32) {
	latRDeg := radiusMeters / perLatMeters
	lonRDeg := radiusMeters / (perLatMeters * cosClamped(math.Abs(center.Lat)+latRDeg+0.1))
	bx0, bx1 = d.binX(center.Lon-lonRDeg), d.binX(center.Lon+lonRDeg)
	by0, by1 = d.binY(center.Lat-latRDeg), d.binY(center.Lat+latRDeg)
	cx, cy := d.binX(center.Lon), d.binY(center.Lat)
	if bx1-bx0 >= maxSpan {
		bx0, bx1 = maxInt32(bx0, cx-maxSpan/2), minInt32(bx1, cx+maxSpan/2)
	}
	if by1-by0 >= maxSpan {
		by0, by1 = maxInt32(by0, cy-maxSpan/2), minInt32(by1, cy+maxSpan/2)
	}
	return bx0, bx1, by0, by1
}

func maxInt32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func minInt32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Update inserts or refreshes a vessel's forecast and returns the
// collision events it triggers against the other live forecasts. The
// returned slice is reused by the next Update call.
func (d *GridDetector) Update(f Forecast, now time.Time) []Event {
	d.out = d.out[:0]
	nowNs := now.UnixNano()
	d.evictStale(nowNs)

	si := d.insertSlot(f, nowNs)
	if len(f.Points) > 0 {
		d.probePairs(si, f, now, nowNs)
	}
	d.commitSlot(si, f.MMSI, nowNs)
	return d.out
}

// Seed inserts or refreshes a forecast without running detection — the
// bulk-preload path benchmarks and state handoff use.
func (d *GridDetector) Seed(f Forecast, now time.Time) {
	nowNs := now.UnixNano()
	si := d.insertSlot(f, nowNs)
	d.commitSlot(si, f.MMSI, nowNs)
}

// insertSlot drops the vessel's previous forecast (the oracle never
// compares a vessel against itself) and fills a fresh slot, not yet
// registered in the micro-grid.
func (d *GridDetector) insertSlot(f Forecast, nowNs int64) int32 {
	if si, ok := d.index[f.MMSI]; ok {
		d.freeSlot(si)
	}
	si := d.allocSlot()
	d.fillSlot(si, f, nowNs)
	return si
}

// commitSlot makes the filled slot visible: index entry, micro-grid
// registration and eviction-ring arming.
func (d *GridDetector) commitSlot(si int32, mmsi ais.MMSI, nowNs int64) {
	d.index[mmsi] = si
	d.registerSlot(si)
	d.ring.push(evictRec{slot: si, gen: d.slots[si].gen, atNs: nowNs})
}

// fillSlot copies the forecast into the slot's recycled arenas:
// raw points, bounding circle, registration rectangle and — on the
// fast path — the precomputed tick samples.
func (d *GridDetector) fillSlot(si int32, f Forecast, nowNs int64) {
	s := &d.slots[si]
	s.mmsi = f.MMSI
	s.stampNs = nowNs
	s.live = true
	s.raw = s.raw[:0]
	s.samples = s.samples[:0]
	s.binPos = s.binPos[:0]
	s.firstTick, s.lastTick = 0, -1
	s.bx0, s.bx1, s.by0, s.by1 = 0, -1, 0, -1
	if len(f.Points) == 0 {
		// Empty forecasts are registered nowhere and can never pair
		// (the oracle's CheckPair bails on them too).
		return
	}
	if !d.originSet {
		d.setOrigin(f.Points[0].Pos)
	}

	var sumLat, sumLon float64
	for _, p := range f.Points {
		s.raw = append(s.raw, p)
		sumLat += p.Pos.Lat
		sumLon += p.Pos.Lon
	}
	n := float64(len(f.Points))
	s.centroid = geo.Point{Lat: sumLat / n, Lon: sumLon / n}
	r := 0.0
	for _, p := range s.raw {
		if dd := geo.FastDistance(s.centroid, p.Pos); dd > r {
			r = dd
		}
	}
	s.radius = r
	s.bx0, s.bx1, s.by0, s.by1 = d.binRect(s.centroid, r, 64)

	if d.fastPath {
		first, last := tickRange(f)
		s.firstTick, s.lastTick = first, last
		if last >= first {
			s.samples = appendTrackSamples(s.samples, f, first, last)
		}
	}
}

// appendTrackSamples interpolates the forecast at every tick in
// [first, last]. It replicates interpAt exactly — same segment choice,
// same degenerate-span and zero-distance branches, same
// fraction-of-span arithmetic — but hoists the per-segment great-circle
// setup (Haversine distance and initial bearing) out of the tick loop,
// so each tick costs one geo.Destination instead of three great-circle
// evaluations. The parity tests compare the results against interpAt
// for bitwise equality.
func appendTrackSamples(dst []geo.Point, f Forecast, first, last int64) []geo.Point {
	pts := f.Points
	i := 1
	segSet := false
	var dSeg, brSeg, span float64
	for k := first; k <= last; k++ {
		t := tickTime(k)
		for i < len(pts) && t.After(pts[i].At) {
			i++
			segSet = false
		}
		if i >= len(pts) {
			// Unreachable while last ≤ the forecast's end tick; kept as
			// a safe clamp.
			dst = append(dst, pts[len(pts)-1].Pos)
			continue
		}
		if !segSet {
			segSet = true
			span = pts[i].At.Sub(pts[i-1].At).Seconds()
			if span > 0 {
				dSeg = geo.Haversine(pts[i-1].Pos, pts[i].Pos)
				brSeg = geo.InitialBearing(pts[i-1].Pos, pts[i].Pos)
			}
		}
		if span <= 0 {
			dst = append(dst, pts[i].Pos)
			continue
		}
		if dSeg == 0 {
			// geo.Interpolate's zero-distance branch.
			dst = append(dst, pts[i-1].Pos)
			continue
		}
		fr := t.Sub(pts[i-1].At).Seconds() / span
		dst = append(dst, geo.Destination(pts[i-1].Pos, brSeg, dSeg*fr))
	}
	return dst
}

// probePairs runs the incoming forecast against every candidate slot in
// the bins its expanded bounding circle touches, emitting events into
// d.out.
func (d *GridDetector) probePairs(si int32, f Forecast, now time.Time, nowNs int64) {
	a := &d.slots[si]
	d.probeSeq++
	seq := d.probeSeq

	bx0, bx1, by0, by1 := d.binRect(a.centroid, a.radius+d.pruneMargin, 128)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			for _, ci := range d.bins[makeBinKey(bx, by)] {
				c := &d.slots[ci]
				if c.probeSeq == seq || c.mmsi == a.mmsi {
					continue
				}
				c.probeSeq = seq
				// The oracle evicts anything past expire before
				// comparing; skip those inline (the ring frees them
				// shortly) so eviction timing never changes events.
				if nowNs-c.stampNs > d.expireNs {
					continue
				}
				d.stats.Candidates++
				if geo.FastDistance(a.centroid, c.centroid) > a.radius+c.radius+d.pruneMargin {
					continue
				}
				if d.fastPath {
					// Exact oracle prefilter: minimum raw-point
					// distance, same iteration order, same cutoff.
					minRaw := 1e18
					for _, pa := range f.Points {
						for _, pb := range c.raw {
							if dd := geo.FastDistance(pa.Pos, pb.Pos); dd < minRaw {
								minRaw = dd
							}
						}
					}
					if minRaw > d.cfg.SpatialThresholdMeters+prefilterMarginMeters {
						continue
					}
					d.stats.Checked++
					if e, ok := d.sweepPair(a, c); ok {
						e.DetectedAt = now
						d.stats.Emitted++
						d.out = append(d.out, e)
					}
				} else {
					// Compatibility path for non-tick-aligned temporal
					// thresholds: CheckPair runs its own prefilter.
					d.stats.Checked++
					if e, ok := CheckPair(f, Forecast{MMSI: c.mmsi, Points: c.raw}, d.cfg); ok {
						e.DetectedAt = now
						d.stats.Emitted++
						d.out = append(d.out, e)
					}
				}
			}
		}
	}
}

// sweepPair is the precomputed-track pair check: for each of A's ticks
// it measures the distance to B's samples inside the ±TemporalThreshold
// window with the batch kernel and keeps the closest approach. It
// reproduces CheckPair's tick/slide iteration order and strict-less
// best update exactly, so the winning (distance, time, position) are
// bitwise those of the oracle.
func (d *GridDetector) sweepPair(a, b *collSlot) (Event, bool) {
	best := Event{Kind: KindCollisionForecast, A: a.mmsi, B: b.mmsi, Meters: d.cfg.SpatialThresholdMeters}
	found := false
	if a.lastTick < a.firstTick || b.lastTick < b.firstTick {
		return Event{}, false
	}
	m := d.slideTicks
	for k := a.firstTick; k <= a.lastTick; k++ {
		pa := a.samples[k-a.firstTick]
		lo, hi := k-m, k+m
		if lo < b.firstTick {
			lo = b.firstTick
		}
		if hi > b.lastTick {
			hi = b.lastTick
		}
		if lo > hi {
			continue
		}
		window := b.samples[lo-b.firstTick : hi-b.firstTick+1]
		if cap(d.distScratch) < len(window) {
			d.distScratch = make([]float64, len(window))
		}
		scratch := d.distScratch[:len(window)]
		geo.FastDistancesInto(scratch, pa, window)
		for j, dist := range scratch {
			if dist >= best.Meters {
				continue
			}
			dtTicks := lo + int64(j) - k
			best.Meters = dist
			best.Pos = geo.Midpoint(pa, window[j])
			best.At = tickTime(k).Add(time.Duration(dtTicks*checkStepNanos) / 2)
			found = true
		}
	}
	if !found {
		return Event{}, false
	}
	return best, true
}

// evictStale pops expired ring records. Refreshing a forecast frees the
// old slot and allocates a fresh one (bumping the generation), so stale
// records are simply skipped — no re-arming needed.
func (d *GridDetector) evictStale(nowNs int64) {
	for d.ring.n > 0 {
		rec := d.ring.peek()
		if nowNs-rec.atNs <= d.expireNs {
			break
		}
		d.ring.pop()
		s := &d.slots[rec.slot]
		if !s.live || s.gen != rec.gen || s.stampNs != rec.atNs {
			continue
		}
		d.freeSlot(rec.slot)
		d.stats.Evicted++
	}
}

func (d *GridDetector) allocSlot() int32 {
	if n := len(d.free); n > 0 {
		si := d.free[n-1]
		d.free = d.free[:n-1]
		return si
	}
	d.slots = append(d.slots, collSlot{})
	return int32(len(d.slots) - 1)
}

// freeSlot unregisters the slot and recycles it, keeping its slice
// arenas' capacity for the next occupant.
func (d *GridDetector) freeSlot(si int32) {
	s := &d.slots[si]
	d.unregisterSlot(si)
	delete(d.index, s.mmsi)
	s.live = false
	s.gen++
	d.free = append(d.free, si)
}

// registerSlot adds the slot to every bin its registration rectangle
// covers, recording its index within each bin for O(1) removal.
func (d *GridDetector) registerSlot(si int32) {
	s := &d.slots[si]
	for by := s.by0; by <= s.by1; by++ {
		for bx := s.bx0; bx <= s.bx1; bx++ {
			k := makeBinKey(bx, by)
			ids := d.bins[k]
			s.binPos = append(s.binPos, int32(len(ids)))
			d.bins[k] = append(ids, si)
		}
	}
}

// unregisterSlot swap-removes the slot from each of its bins, fixing up
// the moved slot's recorded index via its rectangle arithmetic.
func (d *GridDetector) unregisterSlot(si int32) {
	s := &d.slots[si]
	if s.bx0 > s.bx1 {
		return
	}
	pos := 0
	for by := s.by0; by <= s.by1; by++ {
		for bx := s.bx0; bx <= s.bx1; bx++ {
			k := makeBinKey(bx, by)
			ids := d.bins[k]
			i := s.binPos[pos]
			last := len(ids) - 1
			moved := ids[last]
			ids[i] = moved
			if moved != si {
				m := &d.slots[moved]
				w := m.bx1 - m.bx0 + 1
				m.binPos[(by-m.by0)*w+(bx-m.bx0)] = i
			}
			ids = ids[:last]
			if len(ids) == 0 {
				delete(d.bins, k)
			} else {
				d.bins[k] = ids
			}
			pos++
		}
	}
	s.bx0, s.bx1, s.by0, s.by1 = 0, -1, 0, -1
	s.binPos = s.binPos[:0]
}

// Size returns the number of live forecasts held.
func (d *GridDetector) Size() int { return len(d.index) }

// Stats returns the cumulative hot-path counters.
func (d *GridDetector) Stats() DetectorStats { return d.stats }

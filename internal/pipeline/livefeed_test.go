package pipeline

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/geo"
)

// newFeedPipeline builds a pipeline with a live-feed hub attached.
func newFeedPipeline(t *testing.T) (*Pipeline, *feed.Hub) {
	t.Helper()
	hub := feed.NewHub(feed.Options{RegionResolution: 7})
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.Feed = hub
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Shutdown(2 * time.Second)
		hub.Close()
	})
	return p, hub
}

// feedCollisionPair drives the head-on scenario that yields both state
// frames and a collision-forecast event (same shape as
// TestCollisionForecastDetected).
func feedCollisionPair(p *Pipeline) {
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	aStart := geo.DeadReckon(meet, 12, 270, 900)
	bStart := geo.DeadReckon(meet, 12, 90, 900)
	feedTrack(p, 333000001, aStart, 90, 12, 3, 30*time.Second, t0)
	feedTrack(p, 333000002, bStart, 270, 12, 3, 30*time.Second, t0.Add(2*time.Second))
}

// feedFrame is the subset of the wire document the e2e assertions need.
type feedFrame struct {
	Type  string `json:"type"`
	MMSI  string `json:"mmsi"`
	Class string `json:"class"`
	A     string `json:"a"`
	B     string `json:"b"`
	Lat   float64 `json:"lat"`
}

// awaitFrames pulls decoded frames off ch until both a state frame for
// the watched vessel and a collision event arrive.
func awaitFrames(t *testing.T, ch <-chan feedFrame, watched string) {
	t.Helper()
	var gotState, gotCollision bool
	deadline := time.After(10 * time.Second)
	for !gotState || !gotCollision {
		select {
		case f, ok := <-ch:
			if !ok {
				t.Fatalf("stream ended early (state=%v collision=%v)", gotState, gotCollision)
			}
			switch f.Type {
			case "state":
				if f.MMSI == watched {
					if f.Lat == 0 {
						t.Fatalf("state frame without position: %+v", f)
					}
					gotState = true
				}
			case "event":
				if f.Class == "collision" {
					if f.A != "333000001" && f.B != "333000001" &&
						f.A != "333000002" && f.B != "333000002" {
						t.Fatalf("collision event for wrong pair: %+v", f)
					}
					gotCollision = true
				}
			}
		case <-deadline:
			t.Fatalf("frames missing after 10s (state=%v collision=%v)", gotState, gotCollision)
		}
	}
}

// TestLiveFeedOverSSE is the end-to-end acceptance path for the SSE
// transport: subscribe, receive a live position frame and a collision
// event, then disconnect cleanly.
func TestLiveFeedOverSSE(t *testing.T) {
	p, hub := newFeedPipeline(t)
	api := NewAPI(p)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/stream?vessel=333000001&events=collision,proximity")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	frames := make(chan feedFrame, 64)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f feedFrame
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f) == nil {
				frames <- f
			}
		}
	}()

	// The hello frame proves the subscription is registered before any
	// traffic flows (its data line has no "type", decoding to zero).
	select {
	case <-frames:
	case <-time.After(5 * time.Second):
		t.Fatal("no hello frame")
	}
	if hub.Snapshot().Subscribers != 1 {
		t.Fatalf("subscribers %d", hub.Snapshot().Subscribers)
	}

	feedCollisionPair(p)
	p.Drain(5 * time.Second)
	awaitFrames(t, frames, "333000001")

	// Disconnect: closing the response body cancels the request
	// context, which must release the hub-side subscription.
	resp.Body.Close()
	waitSubscribers(t, hub, 0)
}

// TestLiveFeedOverTCP is the end-to-end acceptance path for the
// length-prefixed JSON transport.
func TestLiveFeedOverTCP(t *testing.T) {
	p, hub := newFeedPipeline(t)
	srv := feed.NewServer(hub)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe("127.0.0.1:0") }()
	defer srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		select {
		case err := <-errCh:
			t.Fatalf("serve: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("listener never bound")
		}
		time.Sleep(5 * time.Millisecond)
	}

	client, err := feed.Dial(srv.Addr().String(), feed.Request{
		Vessels: []string{"333000001"},
		Events:  []string{"all"},
		Policy:  "drop",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(client.Topics) != 4 {
		t.Fatalf("resolved topics %v", client.Topics)
	}

	frames := make(chan feedFrame, 64)
	go func() {
		defer close(frames)
		for {
			raw, err := client.Next()
			if err != nil {
				return
			}
			var f feedFrame
			if json.Unmarshal(raw, &f) == nil {
				frames <- f
			}
		}
	}()

	feedCollisionPair(p)
	p.Drain(5 * time.Second)
	awaitFrames(t, frames, "333000001")

	// Disconnect cleanly: the server-side reader notices the close and
	// releases the subscription.
	client.Close()
	waitSubscribers(t, hub, 0)

	// A malformed subscribe request is answered with an error frame.
	if _, err := feed.Dial(srv.Addr().String(), feed.Request{Events: []string{"tsunami"}}); err == nil {
		t.Fatal("bad subscribe accepted")
	}
}

// waitSubscribers polls the hub until the subscriber gauge reaches n.
func waitSubscribers(t *testing.T, hub *feed.Hub, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Snapshot().Subscribers != n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers stuck at %d, want %d", hub.Snapshot().Subscribers, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamEndpointWithoutFeed keeps the pull-only deployment honest:
// /api/stream 404s when no hub is configured.
func TestStreamEndpointWithoutFeed(t *testing.T) {
	p := newTestPipeline(t)
	api := NewAPI(p)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/stream?events=all", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
}

// TestStreamBadRequest: malformed subscription parameters are rejected
// with 400 before the stream opens.
func TestStreamBadRequest(t *testing.T) {
	p, _ := newFeedPipeline(t)
	api := NewAPI(p)
	for _, q := range []string{
		"",                      // no topics
		"vessel=abc",            // bad MMSI
		"region=nowhere",        // bad region
		"events=volcano",        // bad class
		"events=gap&policy=zzz", // bad policy
		"events=gap&buffer=x",   // bad buffer
	} {
		rec := httptest.NewRecorder()
		api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/stream?"+q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, rec.Code)
		}
	}
}

package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Membership is the worker-side control-plane surface: join the
// cluster, prove liveness, and learn the current assignment. Both the
// in-process Coordinator and the HTTP RemoteCoordinator implement it,
// so a pipeline is wired identically for single-binary and
// multi-process topologies.
type Membership interface {
	// Join registers the worker and returns the resulting assignment.
	Join(workerID string) (Assignment, error)
	// Heartbeat renews the worker's lease and returns the current
	// assignment (piggybacked so polling workers track epoch changes
	// without a second round-trip). A worker the coordinator had
	// expired is re-admitted: its next assignment tells it what it
	// owns now, which is how a paused-then-resumed worker learns it
	// lost everything it had.
	Heartbeat(workerID string) (Assignment, error)
	// Leave deregisters the worker, handing its partitions to the
	// survivors (graceful shutdown).
	Leave(workerID string) error
}

// CoordinatorOptions shape the coordinator's liveness protocol.
type CoordinatorOptions struct {
	// Partitions is the fixed partition count of the cluster.
	Partitions int
	// HeartbeatTimeout expires a worker that has not heartbeat for
	// this long (0 = 5s).
	HeartbeatTimeout time.Duration
	// SweepInterval is how often expiry is checked (0 = timeout/4).
	SweepInterval time.Duration
}

// Coordinator owns the partition→worker assignment: workers join and
// heartbeat, the coordinator spreads partitions evenly with sticky
// reassignment (a rebalance moves as few partitions as possible), and
// a background sweeper expires workers whose heartbeats stop, handing
// their partitions to the survivors under a new epoch.
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	workers map[string]time.Time // workerID -> last heartbeat
	cur     Assignment
	watches []func(Assignment)

	rebalances int64 // atomic
	stop       chan struct{}
	done       chan struct{}
	closeOnce  sync.Once
}

// NewCoordinator starts a coordinator (and its expiry sweeper) over
// the given partition count.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Partitions <= 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one partition, got %d", opts.Partitions)
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = opts.HeartbeatTimeout / 4
	}
	c := &Coordinator{
		opts:    opts,
		workers: make(map[string]time.Time),
		cur:     Assignment{Workers: make(map[PartitionID]string)},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.sweeper()
	return c, nil
}

// Close stops the expiry sweeper. Assignments freeze at their last
// epoch.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Partitions returns the cluster's fixed partition count.
func (c *Coordinator) Partitions() int { return c.opts.Partitions }

// Rebalances returns how many epoch bumps membership changes caused.
func (c *Coordinator) Rebalances() int64 { return atomic.LoadInt64(&c.rebalances) }

// Workers returns the sorted IDs of the live workers.
func (c *Coordinator) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workers))
	for w := range c.workers {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Assignment returns a copy of the current assignment.
func (c *Coordinator) Assignment() Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Clone()
}

// Watch registers fn to run (on the coordinator's goroutine) after
// every assignment change, with a copy of the new table. In-process
// workers use it for prompt rebalance; remote workers rely on the
// heartbeat piggyback instead.
func (c *Coordinator) Watch(fn func(Assignment)) {
	c.mu.Lock()
	c.watches = append(c.watches, fn)
	c.mu.Unlock()
}

// Join implements Membership.
func (c *Coordinator) Join(workerID string) (Assignment, error) {
	if workerID == "" {
		return Assignment{}, fmt.Errorf("cluster: join needs a worker id")
	}
	c.mu.Lock()
	c.workers[workerID] = time.Now()
	a, changed := c.rebalanceLocked()
	watches := c.watchesLocked(changed)
	c.mu.Unlock()
	notify(watches, a)
	return a, nil
}

// Heartbeat implements Membership. An unknown (expired) worker is
// re-admitted as a fresh join.
func (c *Coordinator) Heartbeat(workerID string) (Assignment, error) {
	if workerID == "" {
		return Assignment{}, fmt.Errorf("cluster: heartbeat needs a worker id")
	}
	c.mu.Lock()
	_, known := c.workers[workerID]
	c.workers[workerID] = time.Now()
	var (
		a       Assignment
		changed bool
	)
	if known {
		a = c.cur.Clone()
	} else {
		a, changed = c.rebalanceLocked()
	}
	watches := c.watchesLocked(changed)
	c.mu.Unlock()
	notify(watches, a)
	return a, nil
}

// Leave implements Membership.
func (c *Coordinator) Leave(workerID string) error {
	c.mu.Lock()
	if _, ok := c.workers[workerID]; !ok {
		c.mu.Unlock()
		return nil
	}
	delete(c.workers, workerID)
	a, changed := c.rebalanceLocked()
	watches := c.watchesLocked(changed)
	c.mu.Unlock()
	notify(watches, a)
	return nil
}

// watchesLocked returns the callbacks to notify (nil when nothing
// changed). Callers hold c.mu.
func (c *Coordinator) watchesLocked(changed bool) []func(Assignment) {
	if !changed {
		return nil
	}
	out := make([]func(Assignment), len(c.watches))
	copy(out, c.watches)
	return out
}

func notify(watches []func(Assignment), a Assignment) {
	for _, fn := range watches {
		fn(a.Clone())
	}
}

// sweeper expires workers whose heartbeats stopped.
func (c *Coordinator) sweeper() {
	defer close(c.done)
	ticker := time.NewTicker(c.opts.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-ticker.C:
			c.expire(now)
		}
	}
}

func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	expired := false
	for w, last := range c.workers {
		if now.Sub(last) > c.opts.HeartbeatTimeout {
			delete(c.workers, w)
			expired = true
		}
	}
	var (
		a       Assignment
		changed bool
	)
	if expired {
		a, changed = c.rebalanceLocked()
	}
	watches := c.watchesLocked(changed)
	c.mu.Unlock()
	notify(watches, a)
}

// rebalanceLocked recomputes the assignment with sticky semantics:
// partitions keep their owner while it lives, orphaned partitions go
// to the least-loaded survivors, and overloaded workers shed their
// excess when new workers join — so a membership change moves the
// minimum number of partitions. Callers hold c.mu; the returned
// snapshot is a clone and changed reports whether the epoch advanced.
func (c *Coordinator) rebalanceLocked() (Assignment, bool) {
	live := make([]string, 0, len(c.workers))
	for w := range c.workers {
		live = append(live, w)
	}
	sort.Strings(live)

	next := make(map[PartitionID]string, c.opts.Partitions)
	if len(live) > 0 {
		owned := make(map[string][]PartitionID, len(live))
		var pool []PartitionID
		for p := 0; p < c.opts.Partitions; p++ {
			pid := PartitionID(p)
			w := c.cur.Workers[pid]
			if _, alive := c.workers[w]; alive {
				owned[w] = append(owned[w], pid)
			} else {
				pool = append(pool, pid)
			}
		}
		// Shed excess above the ceiling into the pool (join case).
		ceil := (c.opts.Partitions + len(live) - 1) / len(live)
		for _, w := range live {
			for len(owned[w]) > ceil {
				last := owned[w][len(owned[w])-1]
				owned[w] = owned[w][:len(owned[w])-1]
				pool = append(pool, last)
			}
		}
		sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
		// Hand the pool to the least-loaded workers (ties by ID).
		for _, pid := range pool {
			min := live[0]
			for _, w := range live[1:] {
				if len(owned[w]) < len(owned[min]) {
					min = w
				}
			}
			owned[min] = append(owned[min], pid)
		}
		for w, parts := range owned {
			for _, pid := range parts {
				next[pid] = w
			}
		}
	}

	if assignmentsEqual(c.cur.Workers, next) {
		return c.cur.Clone(), false
	}
	c.cur = Assignment{Epoch: c.cur.Epoch + 1, Workers: next}
	atomic.AddInt64(&c.rebalances, 1)
	return c.cur.Clone(), true
}

func assignmentsEqual(a, b map[PartitionID]string) bool {
	if len(a) != len(b) {
		return false
	}
	for p, w := range a {
		if b[p] != w {
			return false
		}
	}
	return true
}

package events

import (
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// ProximityConfig parameterises live close-proximity detection (§5,
// Figure 4e): two vessels reporting within ThresholdMeters of each
// other within TimeWindow of one another.
type ProximityConfig struct {
	ThresholdMeters float64
	TimeWindow      time.Duration
	// Cooldown suppresses duplicate events for the same pair.
	Cooldown time.Duration
}

// DefaultProximityConfig uses a 500 m radius and 1-minute coincidence
// window.
func DefaultProximityConfig() ProximityConfig {
	return ProximityConfig{
		ThresholdMeters: 500,
		TimeWindow:      time.Minute,
		Cooldown:        5 * time.Minute,
	}
}

// ProximityDetector is the per-cell state of the cell actors: last
// positions of the vessels currently reporting in the cell's
// neighbourhood.
type ProximityDetector struct {
	cfg      ProximityConfig
	last     map[ais.MMSI]ForecastPoint
	cooldown map[string]time.Time // pair key -> last emission
}

// NewProximityDetector creates an empty detector.
func NewProximityDetector(cfg ProximityConfig) *ProximityDetector {
	if cfg.ThresholdMeters <= 0 {
		cfg = DefaultProximityConfig()
	}
	return &ProximityDetector{
		cfg:      cfg,
		last:     make(map[ais.MMSI]ForecastPoint),
		cooldown: make(map[string]time.Time),
	}
}

// Update feeds one position report and returns any proximity events it
// completes.
func (p *ProximityDetector) Update(mmsi ais.MMSI, pos geo.Point, at time.Time) []Event {
	var out []Event
	for id, fp := range p.last {
		if id == mmsi {
			continue
		}
		dt := at.Sub(fp.At)
		if dt < 0 {
			dt = -dt
		}
		if dt > p.cfg.TimeWindow {
			// Stale entry: drop it opportunistically when far in the past.
			if at.Sub(fp.At) > 2*p.cfg.TimeWindow {
				delete(p.last, id)
			}
			continue
		}
		d := geo.FastDistance(pos, fp.Pos)
		if d > p.cfg.ThresholdMeters {
			continue
		}
		e := Event{
			Kind:       KindProximity,
			A:          mmsi,
			B:          id,
			At:         at,
			DetectedAt: at,
			Pos:        geo.Midpoint(pos, fp.Pos),
			Meters:     d,
		}
		if until, ok := p.cooldown[e.PairKey()]; ok && at.Before(until) {
			continue
		}
		p.cooldown[e.PairKey()] = at.Add(p.cfg.Cooldown)
		out = append(out, e)
	}
	p.last[mmsi] = ForecastPoint{Pos: pos, At: at}
	return out
}

// Seed inserts or refreshes a vessel without running detection — the
// bulk-preload path benchmarks use.
func (p *ProximityDetector) Seed(mmsi ais.MMSI, pos geo.Point, at time.Time) {
	p.last[mmsi] = ForecastPoint{Pos: pos, At: at}
}

// Size returns the number of vessels tracked in this detector.
func (p *ProximityDetector) Size() int { return len(p.last) }

// SwitchOffConfig parameterises AIS switch-off detection [9]: a silence
// far exceeding the expected reporting cadence while the vessel was
// under way is flagged as an intentional (or faulty) transponder
// switch-off.
type SwitchOffConfig struct {
	// MinSilence is the absolute minimum gap before flagging.
	MinSilence time.Duration
	// CadenceFactor flags when the gap exceeds the expected interval by
	// this factor.
	CadenceFactor float64
}

// DefaultSwitchOffConfig flags silences over 30 minutes that are at
// least 20x the vessel's recent reporting cadence.
func DefaultSwitchOffConfig() SwitchOffConfig {
	return SwitchOffConfig{MinSilence: 30 * time.Minute, CadenceFactor: 20}
}

// SwitchOffDetector tracks one vessel's reporting cadence. The vessel
// actor owns one instance.
type SwitchOffDetector struct {
	cfg      SwitchOffConfig
	lastSeen time.Time
	lastPos  geo.Point
	// ewma of the inter-report interval, seconds.
	cadence float64
	reports int
	flagged bool
}

// NewSwitchOffDetector creates a detector for one vessel.
func NewSwitchOffDetector(cfg SwitchOffConfig) *SwitchOffDetector {
	if cfg.MinSilence <= 0 {
		cfg = DefaultSwitchOffConfig()
	}
	return &SwitchOffDetector{cfg: cfg}
}

// Update feeds a report. If the preceding silence qualifies as a
// switch-off, the returned event describes it (stamped at the start of
// the silence).
func (s *SwitchOffDetector) Update(mmsi ais.MMSI, pos geo.Point, at time.Time) (Event, bool) {
	defer func() {
		s.lastSeen = at
		s.lastPos = pos
		s.flagged = false
	}()
	if s.reports == 0 {
		s.reports++
		return Event{}, false
	}
	gap := at.Sub(s.lastSeen).Seconds()
	if gap <= 0 {
		return Event{}, false
	}
	var fired Event
	ok := false
	if s.reports >= 3 && !s.flagged {
		expected := s.cadence * s.cfg.CadenceFactor
		if gap > s.cfg.MinSilence.Seconds() && gap > expected {
			fired = Event{
				Kind:       KindSwitchOff,
				A:          mmsi,
				At:         s.lastSeen,
				DetectedAt: at,
				Pos:        s.lastPos,
			}
			ok = true
		}
	}
	// Update cadence, but do not let the anomaly gap poison the
	// baseline estimate.
	if !ok {
		if s.cadence == 0 {
			s.cadence = gap
		} else {
			s.cadence = 0.85*s.cadence + 0.15*gap
		}
	}
	s.reports++
	return fired, ok
}

// Silent reports whether the vessel has been quiet long enough to flag
// right now (for polling-style checks without a new report).
func (s *SwitchOffDetector) Silent(now time.Time) bool {
	if s.reports < 3 || s.cadence == 0 {
		return false
	}
	gap := now.Sub(s.lastSeen).Seconds()
	return gap > s.cfg.MinSilence.Seconds() && gap > s.cadence*s.cfg.CadenceFactor
}

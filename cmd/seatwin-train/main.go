// Command seatwin-train trains the S-VRF model (§4.2, Figure 3) on a
// simulated regional AIS dataset built with the paper's preprocessing
// (30 s downsampling, 20-step windows, six 5-minute targets), prints
// the Table 1 comparison against the linear kinematic baseline and
// saves the trained weights.
//
// With -bench it instead runs the training-throughput benchmark
// (reference interpreted trainer vs the compiled fused-gate BPTT path)
// and writes the JSON artifact.
//
// Usage:
//
//	seatwin-train [-scale small|full] [-seed 42] [-out s-vrf.gob]
//	seatwin-train -bench [-bench-out BENCH_PR8.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"seatwin/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleFlag = flag.String("scale", "small", "small (fast) | full (EXPERIMENTS.md scale)")
		seed      = flag.Int64("seed", 42, "dataset seed")
		out       = flag.String("out", "s-vrf.gob", "output model file")
		bench     = flag.Bool("bench", false, "run the training-throughput benchmark instead of training")
		benchOut  = flag.String("bench-out", "BENCH_PR8.json", "benchmark JSON output file (-bench only)")
		benchNote = flag.String("bench-note", "", "free-form note recorded in the benchmark artifact (-bench only)")
	)
	flag.Parse()

	// Reject invalid flag combinations up front instead of silently
	// ignoring (or defaulting) them: a typo'd -scale or a -bench-out
	// without -bench would otherwise run the wrong job and still exit 0.
	var explicit = map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !*bench {
		for _, name := range []string{"bench-out", "bench-note"} {
			if explicit[name] {
				return fmt.Errorf("-%s requires -bench", name)
			}
		}
	} else {
		for _, name := range []string{"scale", "seed", "out"} {
			if explicit[name] {
				return fmt.Errorf("-%s does not apply to -bench", name)
			}
		}
	}

	if *bench {
		r := experiments.RunTrainBench(experiments.DefaultTrainBenchConfig())
		r.Note = *benchNote
		fmt.Print(r.Format())
		if err := r.WriteFile(*benchOut); err != nil {
			return fmt.Errorf("write benchmark: %w", err)
		}
		log.Printf("benchmark written to %s", *benchOut)
		return nil
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown -scale %q (want small or full)", *scaleFlag)
	}

	start := time.Now()
	log.Printf("recording dataset and training (scale=%s)...", *scaleFlag)
	tm := experiments.TrainSVRF(scale, *seed)
	log.Printf("trained on %d windows from %d vessels (%d messages) in %v",
		tm.TrainWindows, tm.Vessels, tm.Messages, time.Since(start).Round(time.Second))

	fmt.Println()
	fmt.Print(experiments.RunDatasetStats(tm).Format())
	fmt.Println()
	fmt.Print(experiments.RunTable1(tm).Format())

	if err := tm.Model.SaveFile(*out); err != nil {
		return fmt.Errorf("save: %w", err)
	}
	log.Printf("model saved to %s", *out)
	return nil
}

//go:build !arm64

package nn

// madd is the compiled kernel's multiply-accumulate. On amd64,
// math.FMA compiles to a per-call-site feature-check branch under the
// default GOAMD64=v1 and measured slightly slower even as branchless
// VFMADD under v3 (the GEMV is load-bound, and the plain form's
// MULSD-from-memory micro-fuses), so everything except arm64 uses the
// plain two-op form.
func madd(a, b, acc float64) float64 { return acc + a*b }

package ais

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var refTime = time.Date(2021, 11, 2, 10, 30, 42, 0, time.UTC)

func samplePosition() PositionReport {
	return PositionReport{
		MMSI:      239923000,
		Class:     ClassA,
		Status:    StatusUnderWayEngine,
		Lat:       37.94201,
		Lon:       23.64599,
		SOG:       12.3,
		COG:       137.5,
		Heading:   138,
		ROT:       2.5,
		Timestamp: refTime,
	}
}

func sampleStatic() StaticVoyage {
	return StaticVoyage{
		MMSI:        239923000,
		IMO:         9319466,
		Callsign:    "SVBP7",
		Name:        "BLUE STAR DELOS",
		ShipType:    TypePassenger,
		DimBow:      120,
		DimStern:    25,
		DimPort:     10,
		DimStarb:    8,
		Draught:     6.7,
		Destination: "PIRAEUS",
	}
}

func TestPositionRoundTripClassA(t *testing.T) {
	want := samplePosition()
	lines, err := Marshal(want, "A", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("class A position must fit one sentence, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "!AIVDM,1,1,,A,") {
		t.Fatalf("sentence = %q", lines[0])
	}
	msgs, err := DecodeSentences(lines, refTime)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msgs[0].(PositionReport)
	if !ok {
		t.Fatalf("decoded %T", msgs[0])
	}
	if got.MMSI != want.MMSI || got.Status != want.Status || got.Class != ClassA {
		t.Fatalf("identity fields: %+v", got)
	}
	if math.Abs(got.Lat-want.Lat) > 1e-5 || math.Abs(got.Lon-want.Lon) > 1e-5 {
		t.Fatalf("position: got (%f,%f) want (%f,%f)", got.Lat, got.Lon, want.Lat, want.Lon)
	}
	if math.Abs(got.SOG-want.SOG) > 0.05 {
		t.Fatalf("sog: got %f want %f", got.SOG, want.SOG)
	}
	if math.Abs(got.COG-want.COG) > 0.05 {
		t.Fatalf("cog: got %f want %f", got.COG, want.COG)
	}
	if got.Heading != want.Heading {
		t.Fatalf("heading: got %d want %d", got.Heading, want.Heading)
	}
	if got.Timestamp.Second() != want.Timestamp.Second() {
		t.Fatalf("second: got %d want %d", got.Timestamp.Second(), want.Timestamp.Second())
	}
	// ROT goes through the square-root transfer curve; tolerance is wide.
	if math.Abs(got.ROT-want.ROT) > 0.5 {
		t.Fatalf("rot: got %f want %f", got.ROT, want.ROT)
	}
}

func TestPositionRoundTripClassB(t *testing.T) {
	want := samplePosition()
	want.Class = ClassB
	lines, err := Marshal(want, "B", 0)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := DecodeSentences(lines, refTime)
	if err != nil {
		t.Fatal(err)
	}
	got := msgs[0].(PositionReport)
	if got.Class != ClassB {
		t.Fatalf("class = %v", got.Class)
	}
	if got.Status != StatusNotDefined {
		t.Fatalf("class B has no nav status, got %v", got.Status)
	}
	if math.Abs(got.Lat-want.Lat) > 1e-5 || math.Abs(got.Lon-want.Lon) > 1e-5 {
		t.Fatalf("position: (%f,%f)", got.Lat, got.Lon)
	}
}

func TestStaticRoundTripMultiFragment(t *testing.T) {
	want := sampleStatic()
	lines, err := Marshal(want, "A", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("type 5 must need 2+ fragments, got %d", len(lines))
	}
	for _, l := range lines {
		if len(l) > 82 {
			t.Errorf("sentence exceeds NMEA 82-char limit (%d): %q", len(l), l)
		}
	}
	msgs, err := DecodeSentences(lines, refTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("decoded %d messages", len(msgs))
	}
	got := msgs[0].(StaticVoyage)
	if got.MMSI != want.MMSI || got.IMO != want.IMO {
		t.Fatalf("ids: %+v", got)
	}
	if got.Name != want.Name {
		t.Fatalf("name: %q want %q", got.Name, want.Name)
	}
	if got.Callsign != want.Callsign {
		t.Fatalf("callsign: %q want %q", got.Callsign, want.Callsign)
	}
	if got.Destination != want.Destination {
		t.Fatalf("destination: %q want %q", got.Destination, want.Destination)
	}
	if got.ShipType != want.ShipType {
		t.Fatalf("type: %v want %v", got.ShipType, want.ShipType)
	}
	if got.DimBow != want.DimBow || got.DimStern != want.DimStern {
		t.Fatalf("dims: %+v", got)
	}
	if math.Abs(got.Draught-want.Draught) > 0.05 {
		t.Fatalf("draught: %f want %f", got.Draught, want.Draught)
	}
	if got.Length() != 145 || got.Beam() != 18 {
		t.Fatalf("derived dims: %d %d", got.Length(), got.Beam())
	}
}

func TestFragmentsOutOfOrder(t *testing.T) {
	lines, err := Marshal(sampleStatic(), "A", 7)
	if err != nil {
		t.Fatal(err)
	}
	asm := NewAssembler()
	// Push the last fragment first.
	for i := len(lines) - 1; i >= 0; i-- {
		s, err := ParseSentence(lines[i])
		if err != nil {
			t.Fatal(err)
		}
		m, err := asm.Push(s, refTime)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if m == nil {
				t.Fatal("message not completed by final fragment")
			}
		} else if m != nil {
			t.Fatal("message completed early")
		}
	}
	if asm.Pending() != 0 {
		t.Fatalf("pending = %d", asm.Pending())
	}
}

func TestAssemblerEvictsStalePartials(t *testing.T) {
	lines, _ := Marshal(sampleStatic(), "A", 1)
	asm := NewAssembler()
	s, _ := ParseSentence(lines[0])
	if _, err := asm.Push(s, refTime); err != nil {
		t.Fatal(err)
	}
	if asm.Pending() != 1 {
		t.Fatalf("pending = %d", asm.Pending())
	}
	// A later first fragment of a *different* message (distinct msgID)
	// creates a fresh partial and evicts the stale one.
	lines2, _ := Marshal(sampleStatic(), "A", 2)
	s2, _ := ParseSentence(lines2[0])
	if _, err := asm.Push(s2, refTime.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if asm.Pending() != 1 {
		t.Fatalf("stale partial not evicted: pending = %d", asm.Pending())
	}
}

func TestChecksumRejection(t *testing.T) {
	lines, _ := Marshal(samplePosition(), "A", 0)
	corrupted := lines[0][:20] + "x" + lines[0][21:]
	if _, err := ParseSentence(corrupted); err == nil {
		t.Fatal("corrupted sentence must fail checksum")
	}
}

func TestParseSentenceRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"$GPGGA,foo*00",
		"!AIVDM,1,1,,A,payload",  // no checksum
		"!AIVDM,1,1,,A*7F",       // too few fields
		"!AIVDM,0,1,,A,x,0*2A",   // zero fragments
		"!AIVDM,1,2,,A,x,0*29",   // fragNum > fragCount
		"!AIVDM,one,1,,A,x,0*55", // non-numeric
	}
	for _, line := range bad {
		if _, err := ParseSentence(line); err == nil {
			t.Errorf("accepted malformed %q", line)
		}
	}
}

func TestUnavailableFieldSentinels(t *testing.T) {
	p := samplePosition()
	p.SOG = -1
	p.COG = -1
	p.Heading = -1
	p.ROT = math.NaN()
	lines, err := Marshal(p, "A", 0)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := DecodeSentences(lines, refTime)
	if err != nil {
		t.Fatal(err)
	}
	got := msgs[0].(PositionReport)
	if got.SOG >= 0 {
		t.Fatalf("sog sentinel lost: %f", got.SOG)
	}
	if got.COG >= 0 {
		t.Fatalf("cog sentinel lost: %f", got.COG)
	}
	if got.Heading >= 0 {
		t.Fatalf("heading sentinel lost: %d", got.Heading)
	}
	if !math.IsNaN(got.ROT) {
		t.Fatalf("rot sentinel lost: %f", got.ROT)
	}
}

func TestNegativeCoordinates(t *testing.T) {
	p := samplePosition()
	p.Lat = -33.85915
	p.Lon = -70.12345
	lines, _ := Marshal(p, "A", 0)
	msgs, err := DecodeSentences(lines, refTime)
	if err != nil {
		t.Fatal(err)
	}
	got := msgs[0].(PositionReport)
	if math.Abs(got.Lat-p.Lat) > 1e-5 || math.Abs(got.Lon-p.Lon) > 1e-5 {
		t.Fatalf("got (%f,%f) want (%f,%f)", got.Lat, got.Lon, p.Lat, p.Lon)
	}
}

func TestPositionPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		want := PositionReport{
			MMSI:      MMSI(rng.Intn(999999999) + 1),
			Class:     Class(rng.Intn(2)),
			Status:    NavStatus(rng.Intn(9)),
			Lat:       rng.Float64()*180 - 90,
			Lon:       rng.Float64()*360 - 180,
			SOG:       float64(rng.Intn(1020)) / 10,
			COG:       float64(rng.Intn(3599)) / 10,
			Heading:   rng.Intn(360),
			ROT:       0,
			Timestamp: refTime.Add(time.Duration(rng.Intn(3600)) * time.Second),
		}
		lines, err := Marshal(want, "A", 0)
		if err != nil {
			t.Fatal(err)
		}
		msgs, err := DecodeSentences(lines, want.Timestamp)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		got := msgs[0].(PositionReport)
		if got.MMSI != want.MMSI {
			t.Fatalf("mmsi %d -> %d", want.MMSI, got.MMSI)
		}
		if math.Abs(got.Lat-want.Lat) > 2e-6 || math.Abs(got.Lon-want.Lon) > 2e-6 {
			t.Fatalf("pos (%.7f,%.7f) -> (%.7f,%.7f)", want.Lat, want.Lon, got.Lat, got.Lon)
		}
		if math.Abs(got.SOG-want.SOG) > 0.051 {
			t.Fatalf("sog %f -> %f", want.SOG, got.SOG)
		}
		if math.Abs(got.COG-want.COG) > 0.051 {
			t.Fatalf("cog %f -> %f", want.COG, got.COG)
		}
	}
}

func TestSixBitCharsetRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		// Restrict to the representable charset: uppercase + digits +
		// common punctuation.
		var sb strings.Builder
		for _, r := range strings.ToUpper(raw) {
			if (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == ' ' || r == '-' || r == '.' {
				sb.WriteRune(r)
			}
		}
		s := sb.String()
		if len(s) > 20 {
			s = s[:20]
		}
		s = strings.TrimRight(s, " ")
		sv := sampleStatic()
		sv.Name = s
		lines, err := Marshal(sv, "A", 0)
		if err != nil {
			return false
		}
		msgs, err := DecodeSentences(lines, refTime)
		if err != nil {
			return false
		}
		return msgs[0].(StaticVoyage).Name == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArmorRoundTripProperty(t *testing.T) {
	f := func(data []byte, nbitSeed uint8) bool {
		if len(data) == 0 {
			return true
		}
		nbit := len(data)*8 - int(nbitSeed%8)
		payload, fill := armorEncode(data, nbit)
		buf, gotBits, err := armorDecode(payload, fill)
		if err != nil || gotBits != nbit {
			return false
		}
		// Compare the meaningful bits.
		for i := 0; i < nbit; i++ {
			b1 := data[i/8] & (1 << uint(7-i%8))
			b2 := buf[i/8] & (1 << uint(7-i%8))
			if (b1 == 0) != (b2 == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMMSIValidity(t *testing.T) {
	if MMSI(0).Valid() {
		t.Error("zero MMSI must be invalid")
	}
	if !MMSI(239923000).Valid() {
		t.Error("normal MMSI must be valid")
	}
	if MMSI(1 << 30).Valid() {
		t.Error("MMSI over 30 bits must be invalid")
	}
	if MMSI(239923000).String() != "239923000" {
		t.Errorf("string form %q", MMSI(239923000).String())
	}
	if MMSI(1234).String() != "000001234" {
		t.Errorf("zero padding %q", MMSI(1234).String())
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	p := samplePosition()
	p.MMSI = 0
	if _, _, err := EncodePosition(p); err == nil {
		t.Error("invalid MMSI must fail")
	}
	p = samplePosition()
	p.Lat = 95
	if _, _, err := EncodePosition(p); err == nil {
		t.Error("out-of-range latitude must fail")
	}
	s := sampleStatic()
	s.MMSI = 0
	if _, _, err := EncodeStatic(s); err == nil {
		t.Error("invalid static MMSI must fail")
	}
}

func TestDecodeUnsupportedType(t *testing.T) {
	w := &bitWriter{}
	w.writeUint(9, 6) // SAR aircraft report, unsupported
	w.writeUint(0, 162)
	if _, err := Decode(w.buf, w.bits(), refTime); err == nil {
		t.Error("unsupported type must error")
	}
}

func TestStampSecondMinuteBoundary(t *testing.T) {
	// Received at 10:31:01, transmitted at second 58 => 10:30:58.
	rx := time.Date(2021, 11, 2, 10, 31, 1, 0, time.UTC)
	got := stampSecond(rx, 58)
	want := time.Date(2021, 11, 2, 10, 30, 58, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Same minute case.
	got = stampSecond(rx, 1)
	want = time.Date(2021, 11, 2, 10, 31, 1, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Sentinel 60+ keeps the receive time.
	if got := stampSecond(rx, 60); !got.Equal(rx) {
		t.Fatalf("sentinel second: got %v", got)
	}
}

func TestNavStatusStrings(t *testing.T) {
	if StatusMoored.String() != "moored" {
		t.Errorf("moored = %q", StatusMoored.String())
	}
	if s := NavStatus(12).String(); s != "status(12)" {
		t.Errorf("unknown = %q", s)
	}
}

func BenchmarkMarshalPosition(b *testing.B) {
	p := samplePosition()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(p, "A", 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePosition(b *testing.B) {
	lines, _ := Marshal(samplePosition(), "A", 0)
	s, _ := ParseSentence(lines[0])
	asm := NewAssembler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Push(s, refTime); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSentence(b *testing.B) {
	lines, _ := Marshal(samplePosition(), "A", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSentence(lines[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeAntimeridianLongitude: the AIS wire format legally encodes
// the antimeridian as +180 degrees, but geo.Point's longitude domain is
// half-open [-180, 180). Decoding must wrap the +180 encoding to -180
// while leaving near-boundary values and the 181 "not available"
// sentinel untouched.
func TestDecodeAntimeridianLongitude(t *testing.T) {
	cases := []struct {
		name    string
		in      float64
		wantLon float64
	}{
		{"wire +180 wraps to -180", 180, -180},
		{"-180 passes through", -180, -180},
		{"just east of the line stays positive", 179.9999, 179.9999},
		{"just west of the line stays negative", -179.9999, -179.9999},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := samplePosition()
			p.Lon = tc.in
			buf, nbit, err := EncodePosition(p)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Decode(buf, nbit, refTime)
			if err != nil {
				t.Fatal(err)
			}
			got := m.(PositionReport).Lon
			if diff := got - tc.wantLon; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("decoded lon = %v, want %v", got, tc.wantLon)
			}
			if got >= 180 || got < -180 {
				t.Fatalf("decoded lon %v outside [-180, 180)", got)
			}
		})
	}
	// The unavailable sentinel (181 degrees) must not be wrapped into
	// the valid domain.
	if got := decodeLon(lonUnavailable); got != 181 {
		t.Fatalf("sentinel decoded as %v, want 181", got)
	}
}

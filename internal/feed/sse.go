package feed

import (
	"fmt"
	"net/http"
)

// SSEHandler serves the hub over Server-Sent Events:
//
//	GET /api/stream?vessel=<mmsi,...>&region=<cell|lat,lon[;...]>&events=<class,...|all>
//	               [&policy=drop|conflate|disconnect][&buffer=N]
//
// The response opens with an "event: hello" frame listing the resolved
// topics, then streams "event: state" / "event: event" frames whose
// data lines carry the same self-describing JSON documents as the TCP
// feed. Malformed parameters fail with 400 before any stream bytes are
// written; a slow client under the disconnect policy is terminated by
// closing the response.
func (h *Hub) SSEHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		req := Request{
			Vessels: q["vessel"],
			Regions: q["region"],
			Events:  q["events"],
			Policy:  q.Get("policy"),
		}
		if s := q.Get("buffer"); s != "" {
			if _, err := fmt.Sscanf(s, "%d", &req.Buffer); err != nil {
				http.Error(w, "feed: buffer must be an integer", http.StatusBadRequest)
				return
			}
		}
		sub, err := h.SubscribeRequest(req)
		if err != nil {
			status := http.StatusBadRequest
			if err == ErrHubClosed {
				status = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), status)
			return
		}
		defer sub.Close()

		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "feed: streaming unsupported by this connection", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "event: hello\ndata: {\"topics\":%s}\n\n", topicsJSON(sub.Topics()))
		flusher.Flush()

		// Recv blocks on the ring's condition variable; a goroutine
		// watching the request context unblocks it when the client goes
		// away so the handler (and its ring) are released promptly.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-r.Context().Done():
				sub.Close()
			case <-done:
			}
		}()

		for {
			d, ok := sub.Recv()
			if !ok {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", d.Type, d.Data); err != nil {
				return
			}
			flusher.Flush()
		}
	})
}

// topicsJSON renders a topic list as a JSON string array (topics are
// generated tokens, never containing characters that need escaping).
func topicsJSON(topics []string) string {
	out := make([]byte, 0, 64)
	out = append(out, '[')
	for i, t := range topics {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, '"')
		out = append(out, t...)
		out = append(out, '"')
	}
	return string(append(out, ']'))
}

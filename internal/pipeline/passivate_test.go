package pipeline

import (
	"testing"
	"time"

	"seatwin/internal/events"
	"seatwin/internal/geo"
)

func TestSpatialActorsPassivateWhenIdle(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.CellIdleTimeout = 150 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	feedTrack(p, 920000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 5, 30*time.Second, t0)
	p.Drain(5 * time.Second)

	peak := p.System().LiveActors()
	if peak < 10 {
		t.Fatalf("expected cell/collision actors to spawn, live=%d", peak)
	}
	// After the idle window the spatial actors stop; the vessel actor
	// and writer remain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := p.System().LiveActors()
		if live <= 3 { // vessel + writer (+ slack for a late future actor)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("actors did not passivate: %d live (peak %d)", live, peak)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Fresh traffic resurrects the cells and detection still works.
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	later := t0.Add(time.Hour)
	feedTrack(p, 920000002, base, 0, 8, 2, 30*time.Second, later)
	feedTrack(p, 920000003, geo.Destination(base, 90, 200), 0, 8, 2, 30*time.Second, later.Add(3*time.Second))
	p.Drain(5 * time.Second)
	if len(p.EventLog().ByKind(events.KindProximity)) == 0 {
		t.Fatal("proximity detection broken after passivation cycle")
	}
}

func TestPassivationDisabled(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.CellIdleTimeout = -1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)
	feedTrack(p, 921000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 3, 30*time.Second, t0)
	p.Drain(5 * time.Second)
	live := p.System().LiveActors()
	time.Sleep(300 * time.Millisecond)
	if got := p.System().LiveActors(); got < live {
		t.Fatalf("actors passivated despite CellIdleTimeout<0: %d -> %d", live, got)
	}
}

package actor

import (
	"sync"
	"testing"
	"time"
)

// TestSendBatchDeliversInOrder checks that a batch arrives complete and
// in order, interleaved safely with concurrent single sends.
func TestSendBatchDeliversInOrder(t *testing.T) {
	sys := NewSystem("test")
	defer sys.Shutdown(time.Second)

	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	const n = 500
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if v, ok := c.Message().(int); ok {
			mu.Lock()
			got = append(got, v)
			if len(got) == n {
				close(done)
			}
			mu.Unlock()
		}
	}))

	msgs := make([]any, n)
	for i := range msgs {
		msgs[i] = i
	}
	sys.SendBatch(pid, msgs)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("batch not fully delivered: got %d/%d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order delivery at %d: got %d", i, v)
		}
	}
}

// TestSendBatchDeadTarget checks that a batch to a stopped actor routes
// every message to dead letters instead of vanishing.
func TestSendBatchDeadTarget(t *testing.T) {
	sys := NewSystem("test")
	defer sys.Shutdown(time.Second)

	pid := sys.Spawn(PropsOf(func(c *Context) {}))
	if err := sys.StopWait(pid, time.Second); err != nil {
		t.Fatal(err)
	}
	before := sys.StatsSnapshot().DeadLetters
	sys.SendBatch(pid, []any{1, 2, 3})
	if got := sys.StatsSnapshot().DeadLetters - before; got != 3 {
		t.Fatalf("dead letters = %d, want 3", got)
	}
}

// TestMailboxShrinkAfterBurst asserts the satellite fix: after a burst
// grows the mailbox buffers, a return to trickle traffic releases the
// retained capacity instead of pinning the burst's high-water mark
// forever on every one of ~170K vessel actors.
func TestMailboxShrinkAfterBurst(t *testing.T) {
	m := newMailbox()
	const burst = 1 << 14

	// Burst fill and drain: both buffers end up with burst-sized capacity.
	for i := 0; i < burst; i++ {
		m.pushUser(envelope{message: i})
	}
	for {
		if _, ok := m.popUser(); !ok {
			break
		}
	}
	if cap(m.userR) < burst && cap(m.userW) < burst {
		t.Fatalf("test setup: burst did not grow buffers (caps %d/%d)", cap(m.userR), cap(m.userW))
	}

	// Trickle traffic: small batches, fully drained each time. The
	// decaying peak should trigger release of the oversized buffers.
	for round := 0; round < 50; round++ {
		for i := 0; i < 4; i++ {
			m.pushUser(envelope{message: i})
		}
		n := 0
		for {
			e, ok := m.popUser()
			if !ok {
				break
			}
			if e.message == nil {
				t.Fatal("lost message payload")
			}
			n++
		}
		if n != 4 {
			t.Fatalf("round %d: drained %d messages, want 4", round, n)
		}
	}

	if cap(m.userR) > shrinkMinCap || cap(m.userW) > shrinkMinCap {
		t.Fatalf("burst capacity retained after trickle: caps userR=%d userW=%d, want <= %d",
			cap(m.userR), cap(m.userW), shrinkMinCap)
	}
	if m.Len() != 0 {
		t.Fatalf("length accounting drifted: %d", m.Len())
	}
}

// TestMailboxShrinkKeepsSteadyBurst checks the other side: an actor
// that keeps receiving large batches must NOT thrash between release
// and regrow.
func TestMailboxShrinkKeepsSteadyBurst(t *testing.T) {
	m := newMailbox()
	const batch = 4096
	for round := 0; round < 10; round++ {
		for i := 0; i < batch; i++ {
			m.pushUser(envelope{message: i})
		}
		for {
			if _, ok := m.popUser(); !ok {
				break
			}
		}
	}
	// After repeated same-sized bursts the buffers should retain about a
	// burst of capacity (swap reuses them), not have been released.
	if cap(m.userR) < batch && cap(m.userW) < batch {
		t.Fatalf("steady burst buffers were released: caps userR=%d userW=%d", cap(m.userR), cap(m.userW))
	}
}

// TestOnUnregisterHook checks the hook fires exactly once per registry
// removal, for both the explicit-stop and eager-lookup removal paths.
func TestOnUnregisterHook(t *testing.T) {
	sys := NewSystem("test")
	defer sys.Shutdown(time.Second)

	var mu sync.Mutex
	removed := map[string]int{}
	sys.OnUnregister(func(pid *PID) {
		mu.Lock()
		removed[pid.Name()]++
		mu.Unlock()
	})

	props := PropsOf(func(c *Context) {})
	pid, err := sys.SpawnNamed(props, "hooked")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StopWait(pid, time.Second); err != nil {
		t.Fatal(err)
	}
	// Lookup after death must not re-fire the hook (unregister won).
	if got := sys.Lookup("hooked"); got != nil {
		t.Fatalf("dead actor still registered: %v", got)
	}
	mu.Lock()
	n := removed["hooked"]
	mu.Unlock()
	if n != 1 {
		t.Fatalf("unregister hook fired %d times, want 1", n)
	}
}

package fleetsim

import "seatwin/internal/geo"

// Port is a named harbour location vessels sail between. Coordinates
// are placed slightly offshore of the real harbour so simulated tracks
// start and end in navigable water.
type Port struct {
	Name    string
	Country string
	Pos     geo.Point
}

// Ports is the world port catalog the simulator routes between. The
// catalog concentrates on the paper's evaluation regions (Europe, the
// Aegean, the North Atlantic, the Red Sea and the Persian Gulf) with
// enough worldwide entries to exercise a global fleet.
var Ports = []Port{
	// Aegean and Eastern Mediterranean (collision-forecasting region).
	{"Piraeus", "GR", geo.Point{Lat: 37.925, Lon: 23.600}},
	{"Thessaloniki", "GR", geo.Point{Lat: 40.600, Lon: 22.920}},
	{"Heraklion", "GR", geo.Point{Lat: 35.355, Lon: 25.145}},
	{"Syros", "GR", geo.Point{Lat: 37.430, Lon: 24.930}},
	{"Rhodes", "GR", geo.Point{Lat: 36.455, Lon: 28.220}},
	{"Mytilene", "GR", geo.Point{Lat: 39.095, Lon: 26.560}},
	{"Chios", "GR", geo.Point{Lat: 38.375, Lon: 26.145}},
	{"Kavala", "GR", geo.Point{Lat: 40.920, Lon: 24.415}},
	{"Izmir", "TR", geo.Point{Lat: 38.440, Lon: 26.750}},
	{"Istanbul", "TR", geo.Point{Lat: 40.980, Lon: 28.920}},
	{"Limassol", "CY", geo.Point{Lat: 34.650, Lon: 33.020}},
	{"Alexandria", "EG", geo.Point{Lat: 31.240, Lon: 29.840}},
	{"Port Said", "EG", geo.Point{Lat: 31.290, Lon: 32.330}},
	// Western Mediterranean.
	{"Valletta", "MT", geo.Point{Lat: 35.890, Lon: 14.530}},
	{"Genoa", "IT", geo.Point{Lat: 44.390, Lon: 8.920}},
	{"Naples", "IT", geo.Point{Lat: 40.825, Lon: 14.240}},
	{"Gioia Tauro", "IT", geo.Point{Lat: 38.445, Lon: 15.895}},
	{"Marseille", "FR", geo.Point{Lat: 43.280, Lon: 5.330}},
	{"Barcelona", "ES", geo.Point{Lat: 41.330, Lon: 2.170}},
	{"Valencia", "ES", geo.Point{Lat: 39.430, Lon: -0.300}},
	{"Algeciras", "ES", geo.Point{Lat: 36.110, Lon: -5.430}},
	{"Tangier", "MA", geo.Point{Lat: 35.870, Lon: -5.540}},
	// Atlantic Europe.
	{"Lisbon", "PT", geo.Point{Lat: 38.670, Lon: -9.230}},
	{"Leixoes", "PT", geo.Point{Lat: 41.185, Lon: -8.710}},
	{"Bilbao", "ES", geo.Point{Lat: 43.360, Lon: -3.050}},
	{"Le Havre", "FR", geo.Point{Lat: 49.480, Lon: 0.100}},
	{"Brest", "FR", geo.Point{Lat: 48.360, Lon: -4.510}},
	{"Southampton", "GB", geo.Point{Lat: 50.870, Lon: -1.390}},
	{"London Gateway", "GB", geo.Point{Lat: 51.500, Lon: 0.470}},
	{"Liverpool", "GB", geo.Point{Lat: 53.430, Lon: -3.060}},
	{"Dublin", "IE", geo.Point{Lat: 53.340, Lon: -6.180}},
	// North Sea and Baltic.
	{"Rotterdam", "NL", geo.Point{Lat: 51.960, Lon: 4.050}},
	{"Antwerp", "BE", geo.Point{Lat: 51.330, Lon: 3.800}},
	{"Hamburg", "DE", geo.Point{Lat: 53.880, Lon: 8.700}},
	{"Bremerhaven", "DE", geo.Point{Lat: 53.590, Lon: 8.530}},
	{"Gothenburg", "SE", geo.Point{Lat: 57.680, Lon: 11.800}},
	{"Oslo", "NO", geo.Point{Lat: 59.700, Lon: 10.570}},
	{"Copenhagen", "DK", geo.Point{Lat: 55.700, Lon: 12.640}},
	{"Gdansk", "PL", geo.Point{Lat: 54.420, Lon: 18.700}},
	{"Klaipeda", "LT", geo.Point{Lat: 55.720, Lon: 21.080}},
	{"Riga", "LV", geo.Point{Lat: 57.060, Lon: 24.020}},
	{"Tallinn", "EE", geo.Point{Lat: 59.510, Lon: 24.750}},
	{"Helsinki", "FI", geo.Point{Lat: 60.120, Lon: 24.920}},
	{"St Petersburg", "RU", geo.Point{Lat: 59.870, Lon: 29.700}},
	// Norwegian and Barents seas.
	{"Bergen", "NO", geo.Point{Lat: 60.390, Lon: 5.250}},
	{"Trondheim", "NO", geo.Point{Lat: 63.440, Lon: 10.350}},
	{"Tromso", "NO", geo.Point{Lat: 69.680, Lon: 18.990}},
	{"Murmansk", "RU", geo.Point{Lat: 69.060, Lon: 33.420}},
	// Black Sea.
	{"Constanta", "RO", geo.Point{Lat: 44.150, Lon: 28.730}},
	{"Odesa", "UA", geo.Point{Lat: 46.480, Lon: 30.800}},
	{"Novorossiysk", "RU", geo.Point{Lat: 44.680, Lon: 37.830}},
	// Red Sea and Persian Gulf (paper coverage).
	{"Jeddah", "SA", geo.Point{Lat: 21.480, Lon: 39.130}},
	{"Suez", "EG", geo.Point{Lat: 29.930, Lon: 32.570}},
	{"Aqaba", "JO", geo.Point{Lat: 29.500, Lon: 34.990}},
	{"Djibouti", "DJ", geo.Point{Lat: 11.620, Lon: 43.130}},
	{"Jebel Ali", "AE", geo.Point{Lat: 24.980, Lon: 55.030}},
	{"Dammam", "SA", geo.Point{Lat: 26.500, Lon: 50.210}},
	{"Kuwait", "KW", geo.Point{Lat: 29.380, Lon: 47.930}},
	{"Bandar Abbas", "IR", geo.Point{Lat: 27.140, Lon: 56.210}},
	// Caspian.
	{"Baku", "AZ", geo.Point{Lat: 40.350, Lon: 49.880}},
	{"Aktau", "KZ", geo.Point{Lat: 43.610, Lon: 51.220}},
	// North Atlantic and Americas.
	{"New York", "US", geo.Point{Lat: 40.500, Lon: -73.900}},
	{"Norfolk", "US", geo.Point{Lat: 36.930, Lon: -76.090}},
	{"Savannah", "US", geo.Point{Lat: 31.990, Lon: -80.780}},
	{"Houston", "US", geo.Point{Lat: 29.340, Lon: -94.720}},
	{"Halifax", "CA", geo.Point{Lat: 44.600, Lon: -63.500}},
	{"Santos", "BR", geo.Point{Lat: -24.030, Lon: -46.290}},
	{"Buenos Aires", "AR", geo.Point{Lat: -34.560, Lon: -58.320}},
	{"Colon", "PA", geo.Point{Lat: 9.390, Lon: -79.880}},
	// Africa.
	{"Casablanca", "MA", geo.Point{Lat: 33.630, Lon: -7.650}},
	{"Dakar", "SN", geo.Point{Lat: 14.690, Lon: -17.480}},
	{"Lagos", "NG", geo.Point{Lat: 6.380, Lon: 3.380}},
	{"Cape Town", "ZA", geo.Point{Lat: -33.880, Lon: 18.400}},
	{"Durban", "ZA", geo.Point{Lat: -29.900, Lon: 31.090}},
	{"Mombasa", "KE", geo.Point{Lat: -4.080, Lon: 39.700}},
	// Asia and Oceania.
	{"Mumbai", "IN", geo.Point{Lat: 18.900, Lon: 72.750}},
	{"Colombo", "LK", geo.Point{Lat: 6.940, Lon: 79.810}},
	{"Singapore", "SG", geo.Point{Lat: 1.230, Lon: 103.800}},
	{"Port Klang", "MY", geo.Point{Lat: 2.980, Lon: 101.300}},
	{"Hong Kong", "HK", geo.Point{Lat: 22.280, Lon: 114.130}},
	{"Shanghai", "CN", geo.Point{Lat: 31.000, Lon: 122.100}},
	{"Busan", "KR", geo.Point{Lat: 35.050, Lon: 129.080}},
	{"Tokyo", "JP", geo.Point{Lat: 35.550, Lon: 139.900}},
	{"Sydney", "AU", geo.Point{Lat: -33.970, Lon: 151.230}},
	{"Auckland", "NZ", geo.Point{Lat: -36.830, Lon: 174.800}},
}

// PortsWithin returns the ports located inside the bounding box.
func PortsWithin(b geo.BBox) []Port {
	var out []Port
	for _, p := range Ports {
		if b.Contains(p.Pos) {
			out = append(out, p)
		}
	}
	return out
}

// FindPort returns the catalog entry with the given name.
func FindPort(name string) (Port, bool) {
	for _, p := range Ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

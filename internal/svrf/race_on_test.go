//go:build race

package svrf

// The race detector makes sync.Pool randomly drop Puts, so pool-backed
// zero-allocation guarantees cannot hold under -race.
const raceEnabled = true

package traj

import (
	"testing"
	"time"

	"seatwin/internal/geo"
)

func TestPredictedPositionsIntoMatchesAndReuses(t *testing.T) {
	anchor := geo.Point{Lat: 37, Lon: 24}
	output := []float64{0.5, 0.25, -0.3, 0.1, 0.2, -0.4, 0, 0, 0.05, 0.05, -0.1, 0.2}
	want := PredictedPositions(anchor, output)

	dst := make([]geo.Point, 0, len(output)/2)
	got := PredictedPositionsInto(dst, anchor, output)
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], want[i])
		}
	}
	if &got[0] != &dst[:1][0] {
		t.Fatal("Into variant must reuse the caller's backing array")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		got = PredictedPositionsInto(got, anchor, output)
	}); allocs != 0 {
		t.Fatalf("PredictedPositionsInto allocates %v/op, want 0", allocs)
	}
}

func TestInputBufferMatchesAllocatingPath(t *testing.T) {
	buf := GetInputBuffer()
	defer PutInputBuffer(buf)
	for _, total := range []time.Duration{4 * time.Minute, 15 * time.Minute, time.Hour} {
		track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, total)
		wantIn, wantAnchor, wantOK := InputFromReports(track, 20, 30*time.Second)
		gotIn, gotAnchor, gotOK := buf.InputFromReports(track, 20, 30*time.Second)
		if gotOK != wantOK {
			t.Fatalf("total %v: ok=%v want %v", total, gotOK, wantOK)
		}
		if !wantOK {
			continue
		}
		if gotAnchor != wantAnchor {
			t.Fatalf("total %v: anchor mismatch", total)
		}
		if len(gotIn) != len(wantIn) {
			t.Fatalf("total %v: %d rows, want %d", total, len(gotIn), len(wantIn))
		}
		for i := range wantIn {
			for k := range wantIn[i] {
				if gotIn[i][k] != wantIn[i][k] {
					t.Fatalf("total %v row %d[%d]: %v != %v", total, i, k, gotIn[i][k], wantIn[i][k])
				}
			}
		}
	}
}

func TestInputBufferZeroAllocSteadyState(t *testing.T) {
	track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, time.Hour)
	buf := GetInputBuffer()
	defer PutInputBuffer(buf)
	if _, _, ok := buf.InputFromReports(track, 20, 30*time.Second); !ok {
		t.Fatal("warm-up call failed")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := buf.InputFromReports(track, 20, 30*time.Second); !ok {
			t.Fatal("steady-state call failed")
		}
	}); allocs != 0 {
		t.Fatalf("warm InputBuffer allocates %v/op, want 0", allocs)
	}
}

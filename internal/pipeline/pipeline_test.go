package pipeline

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

var t0 = time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)

func newTestPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(DefaultConfig(events.NewKinematicForecaster()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Shutdown(2 * time.Second) })
	return p
}

// feedTrack ingests a straight track of n reports, spaced gap apart.
func feedTrack(p *Pipeline, mmsi ais.MMSI, start geo.Point, cog, sog float64, n int, gap time.Duration, from time.Time) {
	for i := 0; i < n; i++ {
		at := from.Add(time.Duration(i) * gap)
		pos := geo.DeadReckon(start, sog, cog, at.Sub(from).Seconds())
		p.Ingest(ais.PositionReport{
			MMSI: mmsi, Lat: pos.Lat, Lon: pos.Lon, SOG: sog, COG: cog,
			Status: ais.StatusUnderWayEngine, Timestamp: at,
		}, at)
	}
}

func TestVesselStateReachesStore(t *testing.T) {
	p := newTestPipeline(t)
	feedTrack(p, 239000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 5, 30*time.Second, t0)
	p.Drain(5 * time.Second)

	h, err := p.Store().HGetAll("vessel:239000001")
	if err != nil || len(h) == 0 {
		t.Fatalf("state not persisted: %v %v", h, err)
	}
	if h["lat"] == "" || h["lon"] == "" || h["sog"] == "" {
		t.Fatalf("incomplete state: %v", h)
	}
	if h["status"] != ais.StatusUnderWayEngine.String() {
		t.Fatalf("status %q", h["status"])
	}
	// One report -> kinematic forecast exists immediately.
	if h["forecast"] == "" {
		t.Fatal("forecast missing from state")
	}
	if !strings.Contains(h["forecast"], ";") {
		t.Fatalf("forecast not multi-point: %q", h["forecast"])
	}
	// The active index knows the vessel.
	members, _ := p.Store().ZRangeByScore("vessels:active", 0, 1e18)
	found := false
	for _, m := range members {
		if m.Member == "239000001" {
			found = true
		}
	}
	if !found {
		t.Fatal("vessel missing from active index")
	}
}

func TestStaticInfoCachedAndJoined(t *testing.T) {
	p := newTestPipeline(t)
	p.Ingest(ais.StaticVoyage{
		MMSI: 239000002, Name: "BLUE TEST", ShipType: ais.TypeCargo,
	}, t0)
	feedTrack(p, 239000002, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 2, 30*time.Second, t0)
	p.Drain(5 * time.Second)

	if sv, ok := p.Static(239000002); !ok || sv.Name != "BLUE TEST" {
		t.Fatalf("static cache: %v %v", sv, ok)
	}
	h, _ := p.Store().HGetAll("vessel:239000002")
	if h["name"] != "BLUE TEST" {
		t.Fatalf("static data not joined into state: %v", h)
	}
}

func TestProximityEventDetected(t *testing.T) {
	p := newTestPipeline(t)
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	// Two vessels 200 m apart reporting within seconds of each other.
	feedTrack(p, 111000001, base, 0, 8, 3, 30*time.Second, t0)
	feedTrack(p, 111000002, geo.Destination(base, 90, 200), 0, 8, 3, 30*time.Second, t0.Add(5*time.Second))
	p.Drain(5 * time.Second)

	prox := p.EventLog().ByKind(events.KindProximity)
	if len(prox) == 0 {
		t.Fatal("no proximity event detected")
	}
	e := prox[0]
	if e.Meters > p.cfg.Proximity.ThresholdMeters {
		t.Fatalf("event separation %.0f m", e.Meters)
	}
	pair := map[ais.MMSI]bool{e.A: true, e.B: true}
	if !pair[111000001] || !pair[111000002] {
		t.Fatalf("wrong pair: %v/%v", e.A, e.B)
	}
	// The event reached the store's sorted set too.
	members, _ := p.Store().ZRangeByScore("events:proximity", 0, 1e18)
	if len(members) == 0 {
		t.Fatal("proximity event not persisted")
	}
}

func TestProximityAcrossCellBorder(t *testing.T) {
	// Two vessels straddling a hexgrid cell border must still be
	// paired (the DiskCovering fanout guarantee).
	p := newTestPipeline(t)
	// Walk east until two adjacent positions 400 m apart land in
	// different res-9 cells.
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	var a, b geo.Point
	found := false
	for step := 0; step < 2000; step++ {
		a = geo.Destination(base, 90, float64(step)*50)
		b = geo.Destination(a, 90, 400)
		ca := cellOf(a, p.cfg.ProximityResolution)
		cb := cellOf(b, p.cfg.ProximityResolution)
		if ca != cb {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("could not find a cell border")
	}
	feedTrack(p, 222000001, a, 0, 8, 2, 30*time.Second, t0)
	feedTrack(p, 222000002, b, 0, 8, 2, 30*time.Second, t0.Add(3*time.Second))
	p.Drain(5 * time.Second)
	if len(p.EventLog().ByKind(events.KindProximity)) == 0 {
		t.Fatal("proximity across cell border missed")
	}
}

func TestCollisionForecastDetected(t *testing.T) {
	p := newTestPipeline(t)
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	// Head-on pair meeting in ~15 minutes.
	aStart := geo.DeadReckon(meet, 12, 270, 900)
	bStart := geo.DeadReckon(meet, 12, 90, 900)
	feedTrack(p, 333000001, aStart, 90, 12, 3, 30*time.Second, t0)
	feedTrack(p, 333000002, bStart, 270, 12, 3, 30*time.Second, t0.Add(2*time.Second))
	p.Drain(5 * time.Second)

	col := p.EventLog().ByKind(events.KindCollisionForecast)
	if len(col) == 0 {
		t.Fatal("no collision forecast")
	}
	e := col[0]
	if e.At.Before(t0) || e.At.After(t0.Add(40*time.Minute)) {
		t.Fatalf("estimated collision time %v", e.At)
	}
	// Duplicate suppression: even with fanout to many cells, the pair
	// is reported once per window.
	if len(col) > 2 {
		t.Fatalf("pair reported %d times", len(col))
	}
	members, _ := p.Store().ZRangeByScore("events:collision-forecast", 0, 1e18)
	if len(members) == 0 {
		t.Fatal("collision forecast not persisted")
	}
}

func TestSwitchOffDetected(t *testing.T) {
	p := newTestPipeline(t)
	start := geo.Point{Lat: 40.0, Lon: 5.0}
	feedTrack(p, 444000001, start, 90, 10, 10, time.Minute, t0)
	// 2-hour silence, then one more report.
	late := t0.Add(10*time.Minute + 2*time.Hour)
	pos := geo.DeadReckon(start, 10, 90, late.Sub(t0).Seconds())
	p.Ingest(ais.PositionReport{
		MMSI: 444000001, Lat: pos.Lat, Lon: pos.Lon, SOG: 10, COG: 90,
		Status: ais.StatusUnderWayEngine, Timestamp: late,
	}, late)
	p.Drain(5 * time.Second)

	off := p.EventLog().ByKind(events.KindSwitchOff)
	if len(off) != 1 {
		t.Fatalf("switch-off events: %d", len(off))
	}
	if off[0].A != 444000001 {
		t.Fatalf("wrong vessel %v", off[0].A)
	}
}

func TestOutOfOrderReportsDropped(t *testing.T) {
	p := newTestPipeline(t)
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	feedTrack(p, 555000001, base, 90, 12, 3, 30*time.Second, t0)
	// Replay an old report from far away: it must not clobber state.
	p.Ingest(ais.PositionReport{
		MMSI: 555000001, Lat: 10, Lon: 10, SOG: 5, COG: 0,
		Timestamp: t0.Add(-time.Hour),
	}, t0.Add(-time.Hour))
	p.Drain(5 * time.Second)
	h, _ := p.Store().HGetAll("vessel:555000001")
	if strings.HasPrefix(h["lat"], "10.") {
		t.Fatal("stale replay overwrote the state")
	}
}

func TestAPIEndpoints(t *testing.T) {
	p := newTestPipeline(t)
	p.Ingest(ais.StaticVoyage{MMSI: 666000001, Name: "API TEST"}, t0)
	feedTrack(p, 666000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 3, 30*time.Second, t0)
	base := geo.Point{Lat: 38.0, Lon: 24.0}
	feedTrack(p, 666000002, base, 0, 8, 2, 30*time.Second, t0)
	feedTrack(p, 666000003, geo.Destination(base, 90, 150), 0, 8, 2, 30*time.Second, t0.Add(2*time.Second))
	p.Drain(5 * time.Second)

	api := NewAPI(p)
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/api/health"); rec.Code != 200 {
		t.Fatalf("health %d", rec.Code)
	}
	rec := get("/api/vessels/666000001")
	if rec.Code != 200 {
		t.Fatalf("vessel %d: %s", rec.Code, rec.Body)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["name"] != "API TEST" {
		t.Fatalf("doc = %v", doc)
	}
	if doc["forecast"] == nil {
		t.Fatal("forecast missing from API doc")
	}
	if rec := get("/api/vessels/000000000"); rec.Code != 404 {
		t.Fatalf("unknown vessel -> %d", rec.Code)
	}
	rec = get("/api/vessels?limit=10")
	var list []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) < 3 {
		t.Fatalf("vessel list has %d entries", len(list))
	}
	rec = get("/api/events")
	var evs []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events served")
	}
	rec = get("/api/stats")
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["messages"].(float64) < 7 {
		t.Fatalf("stats = %v", stats)
	}
}

func cellOf(p geo.Point, res int) hexgrid.Cell {
	return hexgrid.LatLonToCell(p, res)
}

package cluster

import (
	"testing"
	"time"
)

func TestRingStableAndCovering(t *testing.T) {
	r, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[PartitionID]int)
	for k := uint64(0); k < 100000; k++ {
		p := r.Owner(k)
		if p < 0 || int(p) >= 8 {
			t.Fatalf("key %d mapped to out-of-range partition %d", k, p)
		}
		if r.Owner(k) != p {
			t.Fatalf("key %d owner not stable", k)
		}
		seen[p]++
	}
	// Dense sequential keys must spread over every partition, roughly
	// evenly (within 3x of the mean — consistent hashing is not
	// perfectly uniform but must not starve a partition).
	mean := 100000 / 8
	for p := 0; p < 8; p++ {
		n := seen[PartitionID(p)]
		if n == 0 {
			t.Fatalf("partition %d owns no keys", p)
		}
		if n > 3*mean || n < mean/3 {
			t.Fatalf("partition %d owns %d of 100000 keys (mean %d): too skewed", p, n, mean)
		}
	}
}

func TestRingRejectsZeroPartitions(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("NewRing(0) should fail")
	}
}

func TestTableEpochFencing(t *testing.T) {
	ring, _ := NewRing(4, 0)
	tab := NewTable(ring)
	if tab.Epoch() != 0 {
		t.Fatalf("fresh table epoch = %d, want 0", tab.Epoch())
	}
	a2 := Assignment{Epoch: 2, Workers: map[PartitionID]string{0: "a", 1: "a", 2: "b", 3: "b"}}
	if !tab.Update(a2) {
		t.Fatal("newer assignment refused")
	}
	if got := tab.WorkerOf(2); got != "b" {
		t.Fatalf("WorkerOf(2) = %q, want b", got)
	}
	// A delayed older assignment must not roll the table back.
	a1 := Assignment{Epoch: 1, Workers: map[PartitionID]string{0: "z", 1: "z", 2: "z", 3: "z"}}
	if tab.Update(a1) {
		t.Fatal("stale assignment accepted")
	}
	if got := tab.WorkerOf(0); got != "a" {
		t.Fatalf("stale update mutated table: WorkerOf(0) = %q", got)
	}
	if tab.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", tab.Epoch())
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	tab, err := SingleNode("me", 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k < 1000; k++ {
		if tab.WorkerOf(tab.OwnerOf(k)) != "me" {
			t.Fatalf("key %d not owned by the single node", k)
		}
	}
}

func TestCoordinatorStickyRebalance(t *testing.T) {
	c, err := NewCoordinator(CoordinatorOptions{Partitions: 8, HeartbeatTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a1, err := c.Join("a")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a1.Owned("a")); got != 8 {
		t.Fatalf("solo worker owns %d of 8 partitions", got)
	}

	a2, err := c.Join("b")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Epoch <= a1.Epoch {
		t.Fatalf("join did not advance the epoch: %d -> %d", a1.Epoch, a2.Epoch)
	}
	na, nb := len(a2.Owned("a")), len(a2.Owned("b"))
	if na != 4 || nb != 4 {
		t.Fatalf("after join: a owns %d, b owns %d, want 4/4", na, nb)
	}
	// Sticky: the partitions "a" kept must be ones it already had.
	before := make(map[PartitionID]bool)
	for _, p := range a1.Owned("a") {
		before[p] = true
	}
	for _, p := range a2.Owned("a") {
		if !before[p] {
			t.Fatalf("rebalance moved partition %d onto its existing owner", p)
		}
	}

	// Leave hands b's partitions back without disturbing a's.
	if err := c.Leave("b"); err != nil {
		t.Fatal(err)
	}
	a3 := c.Assignment()
	if got := len(a3.Owned("a")); got != 8 {
		t.Fatalf("after leave: a owns %d of 8", got)
	}
	keptA := make(map[PartitionID]bool)
	for _, p := range a2.Owned("a") {
		keptA[p] = true
	}
	for _, p := range a2.Owned("a") {
		if a3.Workers[p] != "a" {
			t.Fatalf("leave reassigned partition %d away from surviving owner", p)
		}
	}
	_ = keptA
}

func TestCoordinatorExpiresDeadWorkers(t *testing.T) {
	c, err := NewCoordinator(CoordinatorOptions{
		Partitions:       4,
		HeartbeatTimeout: 80 * time.Millisecond,
		SweepInterval:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	changes := make(chan Assignment, 16)
	c.Watch(func(a Assignment) { changes <- a })

	if _, err := c.Join("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join("b"); err != nil {
		t.Fatal(err)
	}

	// Keep a alive; let b die.
	stop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				c.Heartbeat("a")
			}
		}
	}()
	defer close(stop)

	deadline := time.After(2 * time.Second)
	for {
		select {
		case a := <-changes:
			ws := c.Workers()
			if len(a.Owned("a")) == 4 && len(a.Owned("b")) == 0 &&
				len(ws) == 1 && ws[0] == "a" {
				return
			}
		case <-deadline:
			t.Fatal("dead worker's partitions were never reassigned")
		}
	}
}

func TestHeartbeatReadmitsExpiredWorker(t *testing.T) {
	c, err := NewCoordinator(CoordinatorOptions{Partitions: 4, HeartbeatTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A heartbeat from a worker the coordinator never saw is a join.
	a, err := c.Heartbeat("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.Owned("x")); got != 4 {
		t.Fatalf("re-admitted worker owns %d of 4", got)
	}
}

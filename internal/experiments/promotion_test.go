package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/svrf"
	"seatwin/internal/traj"
)

// promotionWindows builds a deterministic multi-vessel window set.
func promotionWindows(t testing.TB) []traj.Window {
	t.Helper()
	var ws []traj.Window
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for v := 0; v < 8; v++ {
		start := geo.Point{Lat: 36.5 + 0.2*float64(v), Lon: 23.5 + 0.25*float64(v)}
		cog := float64((v * 49) % 360)
		sog := 9.0 + float64(v%7)
		var reports []ais.PositionReport
		for ts := time.Duration(0); ts <= 3*time.Hour; ts += 30 * time.Second {
			pos := geo.DeadReckon(start, sog, cog, ts.Seconds())
			reports = append(reports, ais.PositionReport{
				MMSI: ais.MMSI(200000000 + v), Lat: pos.Lat, Lon: pos.Lon,
				SOG: sog, COG: cog, Timestamp: base.Add(ts),
			})
		}
		ws = append(ws, traj.BuildWindows(reports, traj.DefaultConfig())...)
	}
	if len(ws) < 200 {
		t.Fatalf("only %d windows", len(ws))
	}
	return ws
}

// The gate's core promise: a deliberately worse candidate (untrained
// weights against a trained live model) is rejected, and promoting is
// reserved for candidates that win on the holdout.
func TestPromotionGateRejectsWorseCandidate(t *testing.T) {
	ws := promotionWindows(t)
	train, holdout := ws[:len(ws)-64], ws[len(ws)-64:]

	live, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	live.Train(train, svrf.TrainOptions{Epochs: 3, BatchSize: 64, LR: 2e-3, Seed: 1})

	cfg := svrf.DefaultConfig()
	cfg.Seed = 77
	worse, err := svrf.New(cfg) // untrained: far higher held-out error
	if err != nil {
		t.Fatal(err)
	}

	res := RunPromotion(live, worse, holdout, DefaultPromotionConfig())
	if res.Promote {
		t.Fatalf("worse candidate promoted: %+v", res)
	}
	if res.CandidateADE <= res.LiveADE {
		t.Fatalf("test premise broken: candidate ADE %.1f not worse than live %.1f",
			res.CandidateADE, res.LiveADE)
	}

	// The reverse direction must promote: the trained model evaluated as
	// candidate against the untrained one as live.
	res = RunPromotion(worse, live, holdout, DefaultPromotionConfig())
	if !res.Promote {
		t.Fatalf("better candidate rejected: %+v", res)
	}
	if len(res.CandidateByHorizon) != len(holdout[0].Truth) {
		t.Fatalf("per-horizon breakdown has %d entries, want %d",
			len(res.CandidateByHorizon), len(holdout[0].Truth))
	}
}

func TestPromotionGateRequiresHoldout(t *testing.T) {
	ws := promotionWindows(t)
	live, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cand, err := live.Clone()
	if err != nil {
		t.Fatal(err)
	}
	res := RunPromotion(live, cand, ws[:8], DefaultPromotionConfig())
	if res.Promote {
		t.Fatal("gate promoted on an insufficient holdout")
	}
	if !strings.Contains(res.Reason, "insufficient holdout") {
		t.Fatalf("unexpected reason %q", res.Reason)
	}
}

// nanPredictor simulates a diverged fit: every forecast is NaN.
type nanPredictor struct{}

func (nanPredictor) Name() string { return "nan" }
func (nanPredictor) Forecast(w traj.Window) []geo.Point {
	out := make([]geo.Point, len(w.Truth))
	for i := range out {
		out[i] = geo.Point{Lat: math.NaN(), Lon: math.NaN()}
	}
	return out
}

// A diverged candidate must never ship on the strength of a NaN
// comparison (NaN > x is false), and a diverged live model must not
// block a finite candidate.
func TestPromotionGateRejectsNonFiniteCandidate(t *testing.T) {
	ws := promotionWindows(t)
	holdout := ws[:64]
	live, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := RunPromotion(live, nanPredictor{}, holdout, DefaultPromotionConfig())
	if res.Promote {
		t.Fatal("non-finite candidate promoted")
	}
	if !strings.Contains(res.Reason, "non-finite") {
		t.Fatalf("unexpected reason %q", res.Reason)
	}
	res = RunPromotion(nanPredictor{}, live, holdout, DefaultPromotionConfig())
	if !res.Promote {
		t.Fatalf("finite candidate rejected against diverged live model: %+v", res)
	}
}

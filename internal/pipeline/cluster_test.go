package pipeline

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/chaos"
	"seatwin/internal/checkpoint"
	"seatwin/internal/cluster"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/kvstore"
)

// newClusterWorker builds one pipeline joined to coord over the shared
// store and broker. CheckpointInterval is 1 so every accepted report
// persists a window — partition handoff must never depend on lucky
// checkpoint timing.
func newClusterWorker(t *testing.T, store *kvstore.Store, br *broker.Broker, coord *cluster.Coordinator, id string, f events.TrackForecaster, in *chaos.Injector, mods ...func(*Config)) *Pipeline {
	t.Helper()
	cfg := DefaultConfig(f)
	cfg.Store = store
	cfg.CheckpointInterval = 1
	cfg.Chaos = in
	for _, mod := range mods {
		mod(&cfg)
	}
	cfg.Cluster = &ClusterConfig{
		WorkerID:          id,
		Membership:        coord,
		Partitions:        8,
		Broker:            br,
		HeartbeatInterval: 100 * time.Millisecond,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// clusterReport renders report i of a vessel's straight 12 kn track,
// 30 s apart so every report survives the S-VRF downsampler.
func clusterReport(mmsi ais.MMSI, start geo.Point, i int) (ais.PositionReport, time.Time) {
	at := t0.Add(time.Duration(i) * 30 * time.Second)
	pos := geo.DeadReckon(start, 12, 90, at.Sub(t0).Seconds())
	return ais.PositionReport{
		MMSI: mmsi, Lat: pos.Lat, Lon: pos.Lon, SOG: 12, COG: 90,
		Status: ais.StatusUnderWayEngine, Timestamp: at,
	}, at
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// partLagsZero reports whether every forward-topic consumer group has
// consumed and committed everything produced so far.
func partLagsZero(br *broker.Broker) bool {
	for _, gl := range br.GroupLags() {
		if strings.HasPrefix(gl.Topic, "part/") && gl.Lag > 0 {
			return false
		}
	}
	return true
}

// drainCluster quiesces a set of workers sharing br: each worker's own
// Drain covers its actors and outbound forward queue, but a flushed
// forward only creates work on the receiving worker, so the cluster is
// only quiet when a full round of drains leaves every forward topic
// fully consumed and no new forwards pending. Two consecutive quiet
// rounds guard against a cascade caught mid-hop.
func drainCluster(t *testing.T, br *broker.Broker, workers ...*Pipeline) {
	t.Helper()
	quiet := func() bool {
		for _, p := range workers {
			p.Drain(10 * time.Second)
		}
		if !partLagsZero(br) {
			return false
		}
		for _, p := range workers {
			if cs := p.Stats().Cluster; cs != nil && cs.PendingForwards != 0 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if quiet() && quiet() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("cluster never quiesced")
}

// TestClusterTwoWorkerFailover is the headline cluster scenario: a
// fleet warmed up on one worker is split when a second joins (moved
// vessels rehydrate from shared checkpoints), forwarding routes every
// report to its owner regardless of which worker ingested it, and a
// worker crash reassigns its partitions with zero lost reports and no
// double-forecast. Forecast counts are exact: with an S-VRF forecaster
// every report past warmup yields exactly one forecast, so lost or
// duplicated deliveries shift the total.
func TestClusterTwoWorkerFailover(t *testing.T) {
	store := kvstore.New()
	defer store.Close()
	br := broker.New()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Partitions: 8,
		// Generous lease: the race detector plus a single shared
		// scheduler can starve heartbeats for a while; only the
		// explicit FailWorker below may expire.
		HeartbeatTimeout: 5 * time.Second,
		SweepInterval:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	const fleet = 24
	mmsis := make([]ais.MMSI, fleet)
	starts := make([]geo.Point, fleet)
	for i := range mmsis {
		mmsis[i] = ais.MMSI(700000001 + i)
		starts[i] = geo.Point{Lat: 34 + float64(i%6)*0.8, Lon: 20 + float64(i/6)*0.8}
	}

	// Phase 1: worker A alone owns everything; warm the whole fleet
	// past the S-VRF threshold.
	a := newClusterWorker(t, store, br, coord, "a", svrfConfig(t, store).Forecaster, nil)
	defer a.Shutdown(5 * time.Second)
	for i, m := range mmsis {
		for rep := 0; rep < 8; rep++ {
			r, at := clusterReport(m, starts[i], rep)
			a.Ingest(r, at)
		}
	}
	drainCluster(t, br, a)
	s1 := a.Stats().Forecasts
	if s1 == 0 {
		t.Fatal("warmup produced no forecasts — the fleet never crossed MinLiveReports")
	}
	if got := a.Stats().Cluster.OwnedPartitions; got != 8 {
		t.Fatalf("lone worker owns %d/8 partitions", got)
	}

	// Phase 2: a second worker joins; the sticky rebalance splits the
	// ring 4/4 and B rehydrates the moved vessels from checkpoints.
	b := newClusterWorker(t, store, br, coord, "b", svrfConfig(t, store).Forecaster, nil)
	defer b.Shutdown(5 * time.Second)
	waitFor(t, 15*time.Second, "4/4 partition split", func() bool {
		ca, cb := a.Stats().Cluster, b.Stats().Cluster
		return ca.OwnedPartitions == 4 && cb.OwnedPartitions == 4
	})
	var movedToB int
	for _, m := range mmsis {
		if b.OwnsKey(uint64(m)) {
			movedToB++
		}
	}
	if movedToB == 0 || movedToB == fleet {
		t.Fatalf("degenerate split: %d/%d vessels moved to b", movedToB, fleet)
	}
	waitFor(t, 15*time.Second, "moved vessels to rehydrate on b", func() bool {
		return b.Stats().CheckpointRestores >= int64(movedToB)
	})

	// Feed one report per vessel through the worker that does NOT own
	// it: every single report must cross the forward path and still
	// reach its owner exactly once.
	for i, m := range mmsis {
		r, at := clusterReport(m, starts[i], 8)
		if a.OwnsKey(uint64(m)) {
			b.Ingest(r, at)
		} else {
			a.Ingest(r, at)
		}
	}
	drainCluster(t, br, a, b)
	if ca, cb := a.Stats().Cluster, b.Stats().Cluster; ca.Forwards == 0 || cb.Forwards == 0 {
		t.Fatalf("both workers must forward foreign ingest: a=%d b=%d", ca.Forwards, cb.Forwards)
	}
	s2 := a.Stats().Forecasts + b.Stats().Forecasts
	if want := s1 + fleet; s2 != want {
		t.Fatalf("after split: forecasts %d, want exactly %d (lost or duplicated reports)", s2, want)
	}

	// Phase 3: worker A crashes (no leave, no passivation). The lease
	// expires, B gains A's partitions and rehydrates A's vessels; a
	// final round of reports through B forecasts once more per vessel.
	a.FailWorker()
	waitFor(t, 30*time.Second, "b to own all partitions after a's crash", func() bool {
		return b.Stats().Cluster.OwnedPartitions == 8
	})
	waitFor(t, 15*time.Second, "the whole fleet to rehydrate on b", func() bool {
		return b.Stats().CheckpointRestores >= int64(fleet)
	})
	for i, m := range mmsis {
		r, at := clusterReport(m, starts[i], 9)
		b.Ingest(r, at)
	}
	drainCluster(t, br, b)
	s3 := a.Stats().Forecasts + b.Stats().Forecasts
	if want := s2 + fleet; s3 != want {
		t.Fatalf("after failover: forecasts %d, want exactly %d (lost or duplicated reports)", s3, want)
	}

	// The shared checkpoints carry every vessel's final report: a late
	// stale write (A's leftover actors) must never regress them.
	wantTS := strconv.FormatInt(t0.Add(9*30*time.Second).UnixNano(), 10)
	for _, m := range mmsis {
		v, ok, err := store.HGet(checkpoint.Key(m), "last_ts")
		if err != nil || !ok {
			t.Fatalf("vessel %v: no checkpoint after failover (err=%v)", m, err)
		}
		if v != wantTS {
			t.Fatalf("vessel %v: checkpoint last_ts=%s, want %s", m, v, wantTS)
		}
	}
}

// TestDrainWaitsForForwardFlush pins the Drain contract in cluster
// mode: a report accepted for a foreign partition is still in flight
// while it sits in the forward queue, even though no local mailbox
// holds it. A latency-injecting producer keeps the queue occupied long
// after the local actors go idle; Drain must not return until the
// flush finishes.
func TestDrainWaitsForForwardFlush(t *testing.T) {
	store := kvstore.New()
	defer store.Close()
	br := broker.New()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Partitions:       8,
		HeartbeatTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Event fan-out off: this test pins the Drain/forward contract, and
	// colocated vessels would otherwise cascade pair events back and
	// forth through the deliberately slow producer forever.
	noFanout := func(c *Config) { c.DisableEventFanout = true }
	in := chaos.New(chaos.Policy{Latency: 30 * time.Millisecond, Seed: 7})
	a := newClusterWorker(t, store, br, coord, "a", events.NewKinematicForecaster(), in, noFanout)
	defer a.Shutdown(5 * time.Second)
	b := newClusterWorker(t, store, br, coord, "b", events.NewKinematicForecaster(), nil, noFanout)
	defer b.Shutdown(5 * time.Second)
	waitFor(t, 15*time.Second, "4/4 partition split", func() bool {
		return a.Stats().Cluster.OwnedPartitions == 4 && b.Stats().Cluster.OwnedPartitions == 4
	})

	// Reports for vessels A does not own: each one enters A's forward
	// queue and leaves it only through the slow producer.
	foreign := 0
	for m := ais.MMSI(820000001); foreign < 40; m++ {
		if a.OwnsKey(uint64(m)) {
			continue
		}
		r, at := clusterReport(m, geo.Point{Lat: 35, Lon: 21}, 0)
		a.Ingest(r, at)
		foreign++
	}

	a.Drain(60 * time.Second)
	cs := a.Stats().Cluster
	if cs.PendingForwards != 0 {
		t.Fatalf("Drain returned with %d forwards still pending", cs.PendingForwards)
	}
	if cs.Forwards != int64(foreign) {
		t.Fatalf("Drain returned before the flush: %d/%d forwards produced", cs.Forwards, foreign)
	}
}

package events

import (
	"math"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// Shared primitives of the spatial-grid detector fast paths
// (proximity_grid.go, collision_grid.go): packed pair keys, micro-grid
// bin keys, the local equirectangular projection helpers and the
// staleness eviction ring. See DESIGN.md §16.

// perLatMeters is the length of one degree of latitude — the scale that
// converts the detectors' meter thresholds into degree-sized bins.
const perLatMeters = geo.EarthRadiusMeters * math.Pi / 180

// latSlackDeg widens the latitude band the longitude bin width is
// conservative over. A detector serves one hexgrid cell plus its
// fan-in margin — well under a degree of latitude — so sizing the bins
// for cos(|origin|+1°) keeps the ±1-bin probe sufficient for every
// position a cell can realistically see, and the per-update reach
// computation (which is what correctness rests on) widens the probe
// for anything outside that band.
const latSlackDeg = 1.0

// packPair returns an order-independent packed key for a vessel pair.
// MMSIs are at most 9 decimal digits (< 2^30), so two fit one uint64 —
// the allocation-free replacement for Event.PairKey's fmt.Sprintf on
// the detectors' hot paths.
func packPair(a, b ais.MMSI) uint64 {
	x, y := uint64(uint32(a)), uint64(uint32(b))
	if x > y {
		x, y = y, x
	}
	return x<<32 | y
}

// binKey packs signed 32-bit micro-grid bin coordinates into one map
// key.
type binKey uint64

func makeBinKey(bx, by int32) binKey {
	return binKey(uint64(uint32(bx))<<32 | uint64(uint32(by)))
}

// cosClamped returns cos(latDeg°) clamped away from zero so bin widths
// and probe spans stay finite near the poles (where the equirectangular
// FastDistance underlying all of this is meaningless anyway).
func cosClamped(latDeg float64) float64 {
	if latDeg > 89.9 {
		latDeg = 89.9
	}
	return math.Cos(latDeg * math.Pi / 180)
}

// DetectorStats are cumulative hot-path counters of a grid detector.
// The owner (a single-threaded cell actor) reads them after each Update
// and pushes the deltas into the pipeline's sharded metrics; the
// detectors themselves stay lock-free.
type DetectorStats struct {
	// Candidates counts entries that survived the spatial prune and
	// were inspected pairwise.
	Candidates int64
	// Checked counts exact pairwise checks run (distance checks for
	// proximity, track sweeps for collision).
	Checked int64
	// Emitted counts events returned.
	Emitted int64
	// Evicted counts entries removed by staleness expiry.
	Evicted int64
}

// evictRec is one entry of a detector's staleness ring, recorded when a
// slot was armed: the slot index, the slot generation at arming (slot
// indices are recycled; a generation mismatch marks the record dead)
// and the stamp the expiry countdown runs from.
type evictRec struct {
	atNs int64
	slot int32
	gen  uint32
}

// evictRing is a growable FIFO of evictRecs — the time-ordered eviction
// queue that replaces full-map staleness scans. Capacity is always a
// power of two.
type evictRing struct {
	buf  []evictRec
	head int
	n    int
}

func (r *evictRing) push(rec evictRec) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = rec
	r.n++
}

func (r *evictRing) peek() evictRec { return r.buf[r.head] }

func (r *evictRing) pop() evictRec {
	rec := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return rec
}

func (r *evictRing) grow() {
	nc := len(r.buf) * 2
	if nc == 0 {
		nc = 16
	}
	nb := make([]evictRec, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// cdBucket is one coarse time bucket of cooldown-expiry candidates.
type cdBucket struct {
	startNs int64
	keys    []uint64
}

// bucketRing is a growable FIFO of cdBuckets whose key slices are
// recycled through a spare list — the time-bucketed expiry index that
// keeps the cooldown map bounded without per-entry timers. Capacity is
// always a power of two.
type bucketRing struct {
	buf   []cdBucket
	head  int
	n     int
	spare [][]uint64
}

func (r *bucketRing) peek() *cdBucket { return &r.buf[r.head] }

func (r *bucketRing) tail() *cdBucket {
	if r.n == 0 {
		return nil
	}
	return &r.buf[(r.head+r.n-1)&(len(r.buf)-1)]
}

// push appends a new bucket with the given start, reusing a spare key
// slice when one is available.
func (r *bucketRing) push(startNs int64) *cdBucket {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := (r.head + r.n) & (len(r.buf) - 1)
	r.n++
	b := &r.buf[i]
	b.startNs = startNs
	if b.keys == nil {
		if n := len(r.spare); n > 0 {
			b.keys = r.spare[n-1][:0]
			r.spare = r.spare[:n-1]
		}
	}
	b.keys = b.keys[:0]
	return b
}

// pop drops the oldest bucket, recycling its key slice.
func (r *bucketRing) pop() {
	b := &r.buf[r.head]
	if cap(b.keys) > 0 {
		r.spare = append(r.spare, b.keys[:0])
	}
	b.keys = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *bucketRing) grow() {
	nc := len(r.buf) * 2
	if nc == 0 {
		nc = 8
	}
	nb := make([]cdBucket, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// Command seatwin-eval regenerates the paper's evaluation section: the
// Table 1 route-forecasting comparison, the Table 2 collision
// forecasting grid, the Figure 6 scalability series, the §6.1 dataset
// statistics and the §5.1 indirect-vs-direct VTFF comparison.
//
// Usage:
//
//	seatwin-eval -exp all|table1|table2|figure6|dataset|vtff|eventbench
//	             [-scale small|full] [-seed 42]
//	             [-vessels 20000] [-messages 400000]   (figure6)
//	             [-eventbench-out BENCH_PR10.json]     (eventbench)
//
// eventbench is not part of "all": it compares the event-detection
// fast paths against the map-scan oracles (see DESIGN.md §16) and is
// run explicitly to regenerate BENCH_PR10.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"seatwin/internal/events"
	"seatwin/internal/experiments"
	"seatwin/internal/svrf"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "all | table1 | table2 | figure6 | dataset | vtff | eventbench")
		ebOut     = flag.String("eventbench-out", "", "eventbench: also write the JSON artifact here")
		rate      = flag.Float64("rate", 3000, "figure6: ingest pacing, messages/second (0 = max speed)")
		scaleFlag = flag.String("scale", "small", "small (fast) | full (EXPERIMENTS.md scale)")
		seed      = flag.Int64("seed", 42, "experiment seed")
		vessels   = flag.Int("vessels", 20000, "figure6: fleet size")
		messages  = flag.Int("messages", 400000, "figure6: message volume")
	)
	flag.Parse()

	scale := experiments.Small
	if *scaleFlag == "full" {
		scale = experiments.Full
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }

	if *exp == "eventbench" {
		cfg := experiments.DefaultEventBenchConfig()
		cfg.Seed = *seed
		log.Printf("running event-detection benchmark (occupancies %v)...", cfg.Occupancies)
		res := experiments.RunEventBench(cfg)
		fmt.Println(res.Format())
		if *ebOut != "" {
			if err := res.WriteFile(*ebOut); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *ebOut)
		}
		return
	}

	needModel := want("table1") || want("table2") || want("dataset") || want("vtff")
	var tm experiments.TrainedModel
	if needModel {
		start := time.Now()
		log.Printf("training S-VRF (scale=%s)...", *scaleFlag)
		tm = experiments.TrainSVRF(scale, *seed)
		log.Printf("trained in %v", time.Since(start).Round(time.Second))
	}

	var sections []string
	if want("dataset") {
		sections = append(sections, experiments.RunDatasetStats(tm).Format())
	}
	if want("table1") {
		sections = append(sections, experiments.RunTable1(tm).Format())
	}
	if want("table2") {
		sections = append(sections, experiments.RunTable2(tm, *seed).Format())
	}
	if want("vtff") {
		sections = append(sections, experiments.RunVTFF(tm, *seed).Format())
	}
	if want("figure6") {
		log.Printf("running figure 6 with %d vessels / %d messages...", *vessels, *messages)
		// An untrained model has the same per-inference cost as a
		// trained one; Figure 6 measures latency, not accuracy.
		var fc events.TrackForecaster
		if needModel {
			fc = events.SVRFForecaster{Model: tm.Model}
		} else {
			m, err := svrf.New(svrf.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			fc = events.SVRFForecaster{Model: m}
		}
		res, err := experiments.RunFigure6(fc, *vessels, *messages, *rate, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sections = append(sections, res.Format())
	}
	fmt.Println(strings.Join(sections, "\n"))
}

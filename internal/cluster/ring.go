// Package cluster is the placement layer that turns the single-process
// pipeline into a horizontally partitioned one: a consistent-hash ring
// maps entity keys (MMSIs, hexgrid cells) onto a fixed set of
// partitions, a coordinator assigns partitions to workers with
// heartbeat-based liveness and reassignment on worker death, and an
// epoch-versioned placement table tells every layer of the pipeline
// whether a key is locally owned or must be forwarded to its owner's
// per-partition broker topic.
//
// The key→partition mapping is static for a given ring (keys never move
// between partitions); only the partition→worker assignment changes, so
// a partition's broker topic is a stable address for its keys across
// any number of rebalances.
package cluster

import (
	"fmt"
	"sort"
)

// PartitionID identifies one partition of the key space.
type PartitionID int

// Ring is a consistent-hash ring over a fixed partition count: each
// partition contributes several virtual points, and a key is owned by
// the partition of the first point at or after the key's hash. The
// ring is immutable after construction and safe for concurrent use.
type Ring struct {
	partitions int
	points     []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	part PartitionID
}

// DefaultReplicas is the virtual-point count per partition: enough to
// spread dense key blocks (sequential MMSIs, neighbouring cells) evenly
// while keeping the lookup's binary search short.
const DefaultReplicas = 64

// NewRing builds a ring over the given partition count. replicas <= 0
// takes DefaultReplicas.
func NewRing(partitions, replicas int) (*Ring, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one partition, got %d", partitions)
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		partitions: partitions,
		points:     make([]ringPoint, 0, partitions*replicas),
	}
	for p := 0; p < partitions; p++ {
		for v := 0; v < replicas; v++ {
			h := mix64(uint64(p)<<32 | uint64(v)<<1 | 1)
			r.points = append(r.points, ringPoint{hash: h, part: PartitionID(p)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Partitions returns the partition count.
func (r *Ring) Partitions() int { return r.partitions }

// Owner returns the partition owning key. Keys are finalised through
// splitmix64 first, so dense key blocks spread over the whole ring.
func (r *Ring) Owner(key uint64) PartitionID {
	h := mix64(key)
	// First point with hash >= h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].part
}

// mix64 is the splitmix64 finaliser used throughout the repo for
// spreading dense integer keys.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

package ais

import (
	"strings"
	"testing"
)

func TestClassBStaticRoundTrip(t *testing.T) {
	want := StaticVoyage{
		MMSI:     239555000,
		Name:     "BLUE PLEASURE 9",
		Callsign: "SVQQ1",
		ShipType: TypePleasure,
		DimBow:   9,
		DimStern: 5,
		DimPort:  2,
		DimStarb: 2,
	}
	lines, err := MarshalClassBStatic(want, "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("class B static must be two sentences, got %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "!AIVDM,1,1,") {
			t.Fatalf("part not single-fragment: %q", l)
		}
		if len(l) > 82 {
			t.Fatalf("sentence too long: %d", len(l))
		}
	}
	msgs, err := DecodeSentences(lines, refTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("decoded %d messages", len(msgs))
	}
	partA := msgs[0].(StaticVoyage)
	partB := msgs[1].(StaticVoyage)
	if partA.MMSI != want.MMSI || partB.MMSI != want.MMSI {
		t.Fatalf("MMSI mismatch: %v / %v", partA.MMSI, partB.MMSI)
	}
	if partA.Name != want.Name {
		t.Fatalf("part A name %q", partA.Name)
	}
	if partA.ShipType != 0 || partA.Callsign != "" {
		t.Fatalf("part A must not carry part B fields: %+v", partA)
	}
	if partB.ShipType != want.ShipType || partB.Callsign != want.Callsign {
		t.Fatalf("part B fields: %+v", partB)
	}
	if partB.DimBow != want.DimBow || partB.DimStern != want.DimStern ||
		partB.DimPort != want.DimPort || partB.DimStarb != want.DimStarb {
		t.Fatalf("part B dimensions: %+v", partB)
	}
	if partB.Name != "" {
		t.Fatalf("part B must not carry the name: %q", partB.Name)
	}
}

func TestType24RejectsInvalid(t *testing.T) {
	if _, _, err := EncodeStatic24A(StaticVoyage{MMSI: 0}); err == nil {
		t.Error("part A with invalid MMSI must fail")
	}
	if _, _, err := EncodeStatic24B(StaticVoyage{MMSI: 0}); err == nil {
		t.Error("part B with invalid MMSI must fail")
	}
	// Truncated part B.
	w := &bitWriter{}
	w.writeUint(24, 6)
	w.writeUint(0, 2)
	w.writeUint(239555000, 30)
	w.writeUint(1, 2) // part B flag, but no body
	w.writeUint(0, 120)
	if _, err := Decode(w.buf, w.bits(), refTime); err == nil {
		t.Error("truncated part B must fail")
	}
}

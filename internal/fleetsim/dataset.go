package fleetsim

import (
	"math"
	"sort"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// VesselTrack is one vessel's received AIS reports in time order.
type VesselTrack struct {
	Vessel  Vessel
	Reports []ais.PositionReport
}

// RecordedDataset is a region-scoped AIS capture, the stand-in for the
// archived 24-hour MarineTraffic stream the paper trains S-VRF on
// (§6.1).
type RecordedDataset struct {
	Region   geo.BBox
	Start    time.Time
	Duration time.Duration
	Tracks   []VesselTrack
}

// Record runs a regional world for the given duration and collects the
// received reports per vessel.
func Record(region geo.BBox, vessels int, duration time.Duration, seed int64) *RecordedDataset {
	w := NewWorld(Config{
		Vessels:     vessels,
		Seed:        seed,
		Region:      region,
		KeepSailing: true,
	})
	start := w.clock
	byMMSI := make(map[ais.MMSI]*VesselTrack)
	w.Run(duration, func(r Report) {
		t, ok := byMMSI[r.Pos.MMSI]
		if !ok {
			t = &VesselTrack{Vessel: *r.Vessel}
			byMMSI[r.Pos.MMSI] = t
		}
		t.Reports = append(t.Reports, r.Pos)
	})
	ds := &RecordedDataset{Region: region, Start: start, Duration: duration}
	for _, t := range byMMSI {
		if len(t.Reports) >= 2 {
			ds.Tracks = append(ds.Tracks, *t)
		}
	}
	// Deterministic track order: map iteration order must not leak into
	// dataset splits (experiments claim bit-for-bit reproducibility).
	sort.Slice(ds.Tracks, func(i, j int) bool {
		return ds.Tracks[i].Vessel.MMSI < ds.Tracks[j].Vessel.MMSI
	})
	return ds
}

// Messages returns the total number of recorded reports.
func (d *RecordedDataset) Messages() int {
	n := 0
	for _, t := range d.Tracks {
		n += len(t.Reports)
	}
	return n
}

// IntervalStats returns the mean and standard deviation (seconds) of
// the inter-report intervals across all tracks — the statistic §6.1
// reports (78.6 s +- 418.3 s after 30 s downsampling).
func (d *RecordedDataset) IntervalStats() (mean, std float64) {
	var sum, sumSq float64
	n := 0
	for _, t := range d.Tracks {
		for i := 1; i < len(t.Reports); i++ {
			dt := t.Reports[i].Timestamp.Sub(t.Reports[i-1].Timestamp).Seconds()
			sum += dt
			sumSq += dt * dt
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// Package actor implements the actor-model runtime the maritime
// forecasting pipeline is built on, playing the role Akka plays in the
// paper: lightweight isolated actors, asynchronous message passing,
// supervision with restarts, dead letters, an event stream and
// request/response futures.
//
// The runtime uses dispatcher-style scheduling rather than one parked
// goroutine per actor: each actor owns a multi-producer mailbox and an
// atomic run state, and a goroutine is only active while the mailbox is
// non-empty. That keeps hundreds of thousands of mostly-idle vessel
// actors cheap — the property the paper's scalability evaluation
// (Figure 6, 170K live actors) depends on.
//
// Typical use:
//
//	sys := actor.NewSystem("seatwin")
//	pid := sys.Spawn(actor.PropsOf(func(c *actor.Context) {
//	        switch msg := c.Message().(type) {
//	        case string:
//	                c.Respond("got " + msg)
//	        }
//	}))
//	reply, err := sys.Ask(pid, "hello", time.Second)
package actor

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Actor is the behaviour of an actor: it is invoked once per message
// with a Context carrying the message, the sender and the runtime.
// Receive is never invoked concurrently for the same actor instance.
type Actor interface {
	Receive(c *Context)
}

// ReceiveFunc adapts a plain function to the Actor interface.
type ReceiveFunc func(c *Context)

// Receive implements Actor.
func (f ReceiveFunc) Receive(c *Context) { f(c) }

// Lifecycle messages delivered to actors by the runtime.
type (
	// Started is the first message an actor receives, before any user
	// message, and again after each restart.
	Started struct{}
	// Stopping is delivered when a stop has been requested, before the
	// children are stopped.
	Stopping struct{}
	// Stopped is the last message an actor receives.
	Stopped struct{}
	// Restarting is delivered before the actor instance is replaced
	// after a panic.
	Restarting struct{ Reason any }
)

// PID identifies a running actor. PIDs are cheap to copy and safe to
// share across goroutines; sending to a stopped actor's PID routes the
// message to dead letters.
type PID struct {
	id      uint64
	name    string
	process *process
}

// Name returns the actor's registered name (possibly auto-generated).
func (p *PID) Name() string {
	if p == nil {
		return "<nil>"
	}
	return p.name
}

// String implements fmt.Stringer.
func (p *PID) String() string {
	if p == nil {
		return "pid://<nil>"
	}
	return fmt.Sprintf("pid://%s/%d", p.name, p.id)
}

// Alive reports whether the actor behind the PID is still running.
func (p *PID) Alive() bool {
	return p != nil && p.process != nil && atomic.LoadInt32(&p.process.dead) == 0
}

// envelope carries one message and its sender through a mailbox.
type envelope struct {
	message any
	sender  *PID
}

// system-internal control messages (processed ahead of user messages).
type (
	sysStarted struct{}
	sysStop    struct{}
	sysResumed struct{}
)

// poisonPill travels the user lane so every message enqueued before it
// is processed first; receiving it stops the actor (System.Poison).
type poisonPill struct{}

// Deadline errors for Ask.
var (
	// ErrTimeout is returned by Ask when no reply arrives in time.
	ErrTimeout = fmt.Errorf("actor: ask timed out")
	// ErrDeadLetter is returned by Ask when the target is not alive.
	ErrDeadLetter = fmt.Errorf("actor: target is stopped")
)

// DeadLetter is published on the system event stream whenever a message
// cannot be delivered.
type DeadLetter struct {
	Target  *PID
	Message any
	Sender  *PID
	At      time.Time
}

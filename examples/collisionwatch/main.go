// Collisionwatch: the Figure 4e/4f scenario — stream the synthetic
// Aegean proximity dataset through the pipeline and watch the event
// list fill with live proximity detections and forecast collisions,
// delivered both through the in-memory event log and the store's
// pub/sub channel (the path a UI would subscribe to).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/fleetsim"
	"seatwin/internal/pipeline"
)

func main() {
	p, err := pipeline.New(pipeline.DefaultConfig(events.NewKinematicForecaster()))
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	// A UI would SUBSCRIBE to this channel over the RESP socket; here
	// we subscribe in-process.
	notifications, cancel := p.Store().Subscribe("events", 1024)
	defer cancel()
	go func() {
		for m := range notifications {
			fmt.Printf("  [pubsub] %s\n", m.Payload)
		}
	}()

	// Generate the §6.2-style scenario: groups of vessels converging on
	// meeting points within the next half hour.
	cfg := fleetsim.DefaultProximityConfig()
	cfg.Groups4, cfg.Groups3, cfg.CrossingPairs = 3, 4, 2
	ds := fleetsim.GenerateProximity(cfg)
	fmt.Printf("scenario: %d vessels, %d ground-truth encounters ahead\n\n",
		len(ds.Vessels), len(ds.Truth))

	// Replay every vessel's AIS history in global time order, then ten
	// more minutes of ground-truth motion so live encounters actually
	// happen (the histories end at the evaluation time, before the
	// staged meetings).
	var all []ais.PositionReport
	for _, h := range ds.History {
		all = append(all, h...)
	}
	for mmsi, track := range ds.FullTracks {
		for i, tp := range track {
			if tp.At.Before(ds.EvalTime) || tp.At.After(ds.EvalTime.Add(10*time.Minute)) || i%6 != 0 {
				continue // post-eval motion, one report per ~30 s
			}
			all = append(all, ais.PositionReport{
				MMSI: mmsi, Lat: tp.Pos.Lat, Lon: tp.Pos.Lon,
				SOG: tp.SOG, COG: tp.COG, Status: ais.StatusUnderWayEngine,
				Timestamp: tp.At,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Timestamp.Before(all[j].Timestamp) })
	for _, r := range all {
		p.Ingest(r, r.Timestamp)
	}
	p.Drain(10 * time.Second)

	// The event list (Figure 4f): forecast collisions with estimated
	// time, location and the MMSIs involved.
	fmt.Println("\nforecast collisions:")
	for _, e := range p.EventLog().ByKind(events.KindCollisionForecast) {
		fmt.Printf("  %s  %s x %s  est. %s  sep %.0f m  at %s\n",
			e.Kind, e.A, e.B, e.At.Format("15:04:05"), e.Meters, e.Pos)
	}
	fmt.Println("\nlive proximity events:")
	for _, e := range p.EventLog().ByKind(events.KindProximity) {
		fmt.Printf("  %s  %s x %s  %.0f m  at %s\n",
			e.Kind, e.A, e.B, e.Meters, e.Pos)
	}

	s := p.Stats()
	fmt.Printf("\n%d messages -> %d forecasts -> %d events\n",
		s.Messages, s.Forecasts, s.Events)
}

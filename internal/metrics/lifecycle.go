package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// This file holds the model-lifecycle observability counters: the
// background trainer actor (internal/trainer) records one observation
// per retrain cycle — replayed history, candidate training, shadow
// eval, and whether the hot-swap shipped — and the serving endpoints
// expose them as the seatwin_lifecycle_* family. The replay hook fires
// per poll batch from the trainer goroutine, so the counters reuse the
// sharded primitives.

// LifecycleStats is a merged snapshot of the lifecycle counters.
type LifecycleStats struct {
	// Cycles counts completed retrain cycles (including skipped ones).
	Cycles int64
	// Promotions counts cycles whose candidate won the shadow eval and
	// was hot-swapped into the live model.
	Promotions int64
	// Rejections counts cycles whose candidate lost the shadow eval —
	// the gate doing its job.
	Rejections int64
	// Skips counts cycles abandoned before training (not enough
	// replayed history for a train set or a meaningful holdout).
	Skips int64
	// ReplayRecords counts records replayed from the broker's retained
	// history across all cycles.
	ReplayRecords int64
	// LaneRebuilds counts L-VRF lane-graph rebuilds published.
	LaneRebuilds int64
	// RetrainSeconds and EvalSeconds accumulate wall time spent
	// training candidates and shadow-evaluating them.
	RetrainSeconds float64
	EvalSeconds    float64
	// Generation is the live model's current weight generation.
	Generation int64
	// LastLiveADE and LastCandidateADE are the most recent shadow-eval
	// mean displacement errors in meters (zero before the first eval).
	LastLiveADE      float64
	LastCandidateADE float64
	// LastTrainWindows and LastHoldout size the most recent cycle's
	// train and held-out sets.
	LastTrainWindows int64
	LastHoldout      int64
}

// CycleObservation is one retrain cycle's outcome, recorded by
// LifecycleRecorder.Cycle.
type CycleObservation struct {
	Promoted     bool
	Skipped      bool
	LiveADE      float64
	CandidateADE float64
	TrainWindows int
	Holdout      int
	Retrain      time.Duration
	Eval         time.Duration
	Generation   uint64
}

// LifecycleRecorder accumulates lifecycle observations. The zero value
// is not usable; call NewLifecycleRecorder.
type LifecycleRecorder struct {
	cycles     *ShardedCounter
	promotions *ShardedCounter
	rejections *ShardedCounter
	skips      *ShardedCounter
	replayed   *ShardedCounter
	lanes      *ShardedCounter
	trainNanos *ShardedCounter
	evalNanos  *ShardedCounter
	// Latest-wins gauges, stored as atomic words (Float64bits for the
	// ADE pair, same idiom as TrainRecorder.lastLoss).
	generation   atomic.Uint64
	liveADE      atomic.Uint64
	candidateADE atomic.Uint64
	trainWindows atomic.Int64
	holdout      atomic.Int64
}

// NewLifecycleRecorder creates an empty recorder.
func NewLifecycleRecorder() *LifecycleRecorder {
	return &LifecycleRecorder{
		cycles:     NewShardedCounter(0),
		promotions: NewShardedCounter(0),
		rejections: NewShardedCounter(0),
		skips:      NewShardedCounter(0),
		replayed:   NewShardedCounter(0),
		lanes:      NewShardedCounter(0),
		trainNanos: NewShardedCounter(0),
		evalNanos:  NewShardedCounter(0),
	}
}

// Replay records n records replayed from retained history; hint routes
// the increment to a shard (a running poll-batch index works well).
func (l *LifecycleRecorder) Replay(hint uint64, n int) {
	l.replayed.Inc(hint, int64(n))
}

// LaneRebuild records one published L-VRF lane-graph rebuild.
func (l *LifecycleRecorder) LaneRebuild() { l.lanes.Inc(0, 1) }

// Cycle records one completed retrain cycle.
func (l *LifecycleRecorder) Cycle(o CycleObservation) {
	l.cycles.Inc(0, 1)
	l.generation.Store(o.Generation)
	if o.Skipped {
		l.skips.Inc(0, 1)
		return
	}
	if o.Promoted {
		l.promotions.Inc(0, 1)
	} else {
		l.rejections.Inc(0, 1)
	}
	l.trainNanos.Inc(0, int64(o.Retrain))
	l.evalNanos.Inc(0, int64(o.Eval))
	l.liveADE.Store(math.Float64bits(o.LiveADE))
	l.candidateADE.Store(math.Float64bits(o.CandidateADE))
	l.trainWindows.Store(int64(o.TrainWindows))
	l.holdout.Store(int64(o.Holdout))
}

// Snapshot merges every counter into one LifecycleStats.
func (l *LifecycleRecorder) Snapshot() LifecycleStats {
	return LifecycleStats{
		Cycles:           l.cycles.Value(),
		Promotions:       l.promotions.Value(),
		Rejections:       l.rejections.Value(),
		Skips:            l.skips.Value(),
		ReplayRecords:    l.replayed.Value(),
		LaneRebuilds:     l.lanes.Value(),
		RetrainSeconds:   time.Duration(l.trainNanos.Value()).Seconds(),
		EvalSeconds:      time.Duration(l.evalNanos.Value()).Seconds(),
		Generation:       int64(l.generation.Load()),
		LastLiveADE:      math.Float64frombits(l.liveADE.Load()),
		LastCandidateADE: math.Float64frombits(l.candidateADE.Load()),
		LastTrainWindows: l.trainWindows.Load(),
		LastHoldout:      l.holdout.Load(),
	}
}

// Lifecycle is the process-wide recorder: the background trainer
// records into it, and the pipeline's /metrics and /api/stats endpoints
// snapshot it. A process without a trainer reports zeros.
var Lifecycle = NewLifecycleRecorder()

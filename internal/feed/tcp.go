package feed

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The TCP feed protocol is length-prefixed JSON, the binary sibling of
// the SSE endpoint for headless consumers sitting next to the RESP
// socket: every message on the wire is a 4-byte big-endian length
// followed by that many bytes of JSON. The client speaks first with one
// Request document; the server answers with {"type":"hello",...} (or
// {"type":"error",...} and a close) and then streams the same state /
// event documents the SSE transport carries.

// maxFrameBytes bounds a single wire frame (oversized lengths indicate
// a protocol mismatch, e.g. an HTTP client on the feed port).
const maxFrameBytes = 1 << 22

// writeFrame writes one length-prefixed JSON payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed JSON payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return nil, fmt.Errorf("feed: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Server exposes a Hub over the TCP feed protocol.
type Server struct {
	hub *Hub

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a hub; call Serve or ListenAndServe to start.
func NewServer(hub *Hub) *Server {
	return &Server{hub: hub, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:9230") and serves
// until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("feed: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops the listener and terminates every live connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) drop(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle serves one subscriber connection: read the subscribe request,
// ack, then pump the ring until either side goes away.
func (s *Server) handle(conn net.Conn) {
	defer s.drop(conn)
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	raw, err := readFrame(conn)
	if err != nil {
		return
	}
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		writeFrame(conn, errorDoc("malformed subscribe request: "+err.Error()))
		return
	}
	sub, err := s.hub.SubscribeRequest(req)
	if err != nil {
		writeFrame(conn, errorDoc(err.Error()))
		return
	}
	defer sub.Close()

	hello, _ := json.Marshal(map[string]any{"type": "hello", "topics": sub.Topics()})
	bw := bufio.NewWriter(conn)
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := writeFrame(bw, hello); err != nil || bw.Flush() != nil {
		return
	}

	// A reader goroutine watches for client-side close (feed clients
	// send nothing after subscribing, so any read completion means the
	// peer hung up) and unblocks Recv.
	go func() {
		conn.SetReadDeadline(time.Time{})
		io.Copy(io.Discard, conn)
		sub.Close()
	}()

	for {
		d, ok := sub.Recv()
		if !ok {
			// Tell a disconnect-policy victim why before hanging up.
			if sub.Err() == ErrSlowConsumer {
				conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				if writeFrame(bw, errorDoc(ErrSlowConsumer.Error())) == nil {
					bw.Flush()
				}
			}
			return
		}
		// The per-write deadline bounds how long a wedged peer can pin
		// this goroutine; while it is blocked the ring keeps absorbing
		// frames under the subscription's overflow policy.
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := writeFrame(bw, d.Data); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func errorDoc(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"type": "error", "error": msg})
	return b
}

// Client is a minimal consumer of the TCP feed protocol (examples and
// tests; production consumers can reimplement the trivial framing in
// any language).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	// Topics are the server-resolved topics from the hello frame.
	Topics []string
}

// Dial connects, sends the subscribe request and consumes the hello.
func Dial(addr string, req Request) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(req)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeFrame(conn, payload); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn)}
	hello, err := c.next()
	if err != nil {
		conn.Close()
		return nil, err
	}
	var doc struct {
		Type   string   `json:"type"`
		Error  string   `json:"error"`
		Topics []string `json:"topics"`
	}
	if err := json.Unmarshal(hello, &doc); err != nil {
		conn.Close()
		return nil, err
	}
	if doc.Type != "hello" {
		conn.Close()
		return nil, fmt.Errorf("feed: subscribe rejected: %s", doc.Error)
	}
	c.Topics = doc.Topics
	return c, nil
}

func (c *Client) next() ([]byte, error) {
	return readFrame(c.r)
}

// Next returns the next frame's raw JSON document.
func (c *Client) Next() ([]byte, error) { return c.next() }

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

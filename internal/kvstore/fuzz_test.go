package kvstore

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadCommand hardens the RESP command parser against arbitrary
// network bytes: it must never panic and never allocate absurdly from a
// tiny input (a malicious length header must not reserve gigabytes).
func FuzzReadCommand(f *testing.F) {
	f.Add("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
	f.Add("PING\r\n")
	f.Add("*1\r\n$4\r\nPING\r\n")
	f.Add("*-1\r\n")
	f.Add("*2\r\n$999999999\r\nx\r\n")
	f.Add("$5\r\nhello\r\n")
	f.Add("\r\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := bufio.NewReader(strings.NewReader(input))
		for i := 0; i < 4; i++ { // a few commands per connection
			args, err := readCommand(r)
			if err != nil {
				return
			}
			for _, a := range args {
				// Parsed args cannot exceed the input length.
				if len(a) > len(input) {
					t.Fatalf("arg longer than input: %d > %d", len(a), len(input))
				}
			}
		}
	})
}

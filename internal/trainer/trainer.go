// Package trainer closes the model-lifecycle loop (ROADMAP #5): a
// background actor that keeps the serving models fresh against drifting
// traffic without ever taking them offline.
//
// Each retrain cycle:
//
//  1. replays retained track history from the broker — the trainer is
//     an ordinary consumer group on the AIS topic, so committed offsets
//     make restarts resume where the last process left off, and broker
//     retention (Truncate) bounds how far back a cold start reads;
//  2. retrains a candidate S-VRF, warm-started from a clone of the
//     live weights, through the compiled fused-gate path (PR 8), and
//     optionally rebuilds the L-VRF lane graphs from the same history;
//  3. shadow-evaluates the candidate against the live model on the
//     newest windows, which are held out of training, through the
//     promotion gate in internal/experiments;
//  4. on a win, atomically hot-swaps the candidate's weights into the
//     live model via svrf's generation-counted compiled-snapshot
//     publish. Forecasts in flight never block or drop: they keep the
//     previous snapshot until the swap lands. A worse model never
//     ships — the gate rejects it and the live weights stay untouched.
package trainer

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/experiments"
	"seatwin/internal/geo"
	"seatwin/internal/lvrf"
	"seatwin/internal/metrics"
	"seatwin/internal/svrf"
	"seatwin/internal/traj"
)

// Config wires a Trainer. Broker, Topic and Live are required.
type Config struct {
	// Broker and Topic locate the retained AIS history; Group names the
	// trainer's consumer group (default "trainer"). Using a dedicated
	// group keeps the trainer's replay cursor independent of the
	// pipeline's ingest cursor.
	Broker *broker.Broker
	Topic  string
	Group  string

	// Live is the serving S-VRF model the trainer retrains and swaps.
	Live *svrf.Model

	// Interval paces the background loop (default 10 minutes).
	Interval time.Duration

	// HoldoutFrac is the fraction of windows — the newest, by anchor
	// time — held out of training for the shadow eval (default 0.25).
	// Evaluating on the most recent traffic is the point: the candidate
	// must win on where the patterns of life are now, not where they
	// were.
	HoldoutFrac float64

	// MinTrainWindows skips a cycle with fewer training windows than
	// this (default 64); MaxTrainWindows caps the training set, keeping
	// the newest (default 20000).
	MinTrainWindows int
	MaxTrainWindows int

	// MaxReportsPerVessel bounds the per-vessel retained history, in
	// downsampled reports (default 512 ≈ 4¼ hours at the 30 s rate).
	MaxReportsPerVessel int

	// MaxPollsPerCycle bounds one cycle's replay so a producer that
	// outruns the trainer cannot wedge the loop (default 4096 polls of
	// up to 1024 records each).
	MaxPollsPerCycle int

	// TrainOptions tunes the candidate fit. The zero value selects
	// DefaultCycleTrainOptions — fewer epochs than an offline fit, since
	// the candidate warm-starts from the live weights.
	TrainOptions svrf.TrainOptions

	// Promotion tunes the gate; zero fields get the conservative
	// defaults from experiments.DefaultPromotionConfig.
	Promotion experiments.PromotionConfig

	// Traj shapes windowing; the zero value selects traj.DefaultConfig.
	Traj traj.Config

	// Ports and PublishRoute, both set, enable the L-VRF rebuild: each
	// cycle extracts complete port-to-port trips from the retained
	// history, rebuilds the lane graphs and hands the model to
	// PublishRoute (typically pipeline.SetRouteModel — an atomic
	// pointer swap on the serving side).
	Ports        map[string]geo.Point
	PublishRoute func(*lvrf.Model)
	// RouteConfig tunes the lane build; the zero value selects
	// lvrf.DefaultConfig.
	RouteConfig lvrf.Config

	// OnCycle, when non-nil, receives every cycle's outcome — the
	// observability and test hook.
	OnCycle func(CycleResult)

	// Logf replaces the standard logger (nil = log.Printf).
	Logf func(format string, args ...any)
}

// CycleResult is one retrain cycle's outcome.
type CycleResult struct {
	// Replayed counts records consumed from the broker this cycle.
	Replayed int
	// Vessels and Windows size the retained history after the replay.
	Vessels int
	Windows int
	// TrainWindows and Holdout size the split actually used.
	TrainWindows int
	Holdout      int
	// Skipped is true when the cycle ended before training (not enough
	// history); SkipReason says why.
	Skipped    bool
	SkipReason string
	// Loss is the candidate's final training loss.
	Loss float64
	// Promotion is the gate's verdict and evidence.
	Promotion experiments.PromotionResult
	// Promoted reports whether the hot-swap landed; Generation is the
	// live model's weight generation after the cycle.
	Promoted   bool
	Generation uint64
	// Lanes counts L-VRF lanes published this cycle (0 = no rebuild).
	Lanes int
	// RetrainTime and EvalTime are the cycle's wall-time costs.
	RetrainTime time.Duration
	EvalTime    time.Duration
}

// DefaultCycleTrainOptions returns the per-cycle fit options: a short
// warm-started fit through the compiled path.
func DefaultCycleTrainOptions() svrf.TrainOptions {
	return svrf.TrainOptions{Epochs: 4, BatchSize: 64, LR: 1e-3, Workers: 0, Seed: 1}
}

// track is one vessel's retained, downsampled, time-ordered history.
type track struct {
	reports []ais.PositionReport
}

// Trainer is the background lifecycle actor. Create with New, drive
// either with Start/Stop (the background loop) or RunCycle (one
// synchronous cycle — tests and smoke runs).
type Trainer struct {
	cfg      Config
	consumer *broker.Consumer

	// mu guards tracks: RunCycle may be called directly while the
	// background loop owns the usual cadence.
	mu     sync.Mutex
	tracks map[ais.MMSI]*track

	pollHint uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New validates the config, applies defaults and subscribes the
// trainer's consumer group. The returned Trainer is idle until Start
// or RunCycle.
func New(cfg Config) (*Trainer, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("trainer: Config.Broker is required")
	}
	if cfg.Topic == "" {
		return nil, fmt.Errorf("trainer: Config.Topic is required")
	}
	if cfg.Live == nil {
		return nil, fmt.Errorf("trainer: Config.Live is required")
	}
	if cfg.HoldoutFrac < 0 || cfg.HoldoutFrac >= 1 {
		return nil, fmt.Errorf("trainer: HoldoutFrac %v outside [0,1)", cfg.HoldoutFrac)
	}
	if cfg.Group == "" {
		cfg.Group = "trainer"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	if cfg.HoldoutFrac == 0 {
		cfg.HoldoutFrac = 0.25
	}
	if cfg.MinTrainWindows <= 0 {
		cfg.MinTrainWindows = 64
	}
	if cfg.MaxTrainWindows <= 0 {
		cfg.MaxTrainWindows = 20000
	}
	if cfg.MaxReportsPerVessel <= 0 {
		cfg.MaxReportsPerVessel = 512
	}
	if cfg.MaxPollsPerCycle <= 0 {
		cfg.MaxPollsPerCycle = 4096
	}
	if cfg.TrainOptions.Epochs == 0 {
		cfg.TrainOptions = DefaultCycleTrainOptions()
	}
	if cfg.Promotion.MaxADERatio == 0 {
		cfg.Promotion.MaxADERatio = experiments.DefaultPromotionConfig().MaxADERatio
	}
	if cfg.Promotion.MinHoldout == 0 {
		cfg.Promotion.MinHoldout = experiments.DefaultPromotionConfig().MinHoldout
	}
	if cfg.Traj.InputSteps == 0 {
		cfg.Traj = traj.DefaultConfig()
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	c, err := cfg.Broker.Subscribe(cfg.Topic, cfg.Group)
	if err != nil {
		return nil, err
	}
	return &Trainer{
		cfg:      cfg,
		consumer: c,
		tracks:   make(map[ais.MMSI]*track),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Start launches the background loop: one RunCycle per Interval until
// Stop. Start is idempotent.
func (t *Trainer) Start() {
	t.startOnce.Do(func() {
		go t.loop()
	})
}

// Stop halts the background loop (waiting for an in-flight cycle to
// finish) and closes the trainer's consumer. Safe to call even when
// Start never ran.
func (t *Trainer) Stop() {
	t.stopOnce.Do(func() {
		close(t.stop)
	})
	t.startOnce.Do(func() {
		// Start never ran; there is no loop to wait for.
		close(t.done)
	})
	<-t.done
	t.consumer.Close()
}

func (t *Trainer) loop() {
	defer close(t.done)
	ticker := time.NewTicker(t.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			res := t.RunCycle()
			t.logCycle(res)
		}
	}
}

func (t *Trainer) logCycle(res CycleResult) {
	switch {
	case res.Skipped:
		t.cfg.Logf("trainer: cycle skipped (%s): replayed=%d vessels=%d windows=%d",
			res.SkipReason, res.Replayed, res.Vessels, res.Windows)
	case res.Promoted:
		t.cfg.Logf("trainer: PROMOTED gen=%d: %s (train=%d loss=%.4f retrain=%v eval=%v lanes=%d)",
			res.Generation, res.Promotion.Reason, res.TrainWindows, res.Loss,
			res.RetrainTime.Round(time.Millisecond), res.EvalTime.Round(time.Millisecond), res.Lanes)
	default:
		t.cfg.Logf("trainer: rejected candidate: %s (train=%d loss=%.4f gen=%d)",
			res.Promotion.Reason, res.TrainWindows, res.Loss, res.Generation)
	}
}

// RunCycle executes one full retrain cycle synchronously and returns
// its outcome. Safe to call concurrently with the background loop and
// with forecasts on the live model.
func (t *Trainer) RunCycle() CycleResult {
	t.mu.Lock()
	defer t.mu.Unlock()

	res := CycleResult{}
	res.Replayed = t.replayLocked()
	res.Vessels = len(t.tracks)

	windows := t.buildWindowsLocked()
	res.Windows = len(windows)
	train, holdout := t.split(windows)
	res.TrainWindows, res.Holdout = len(train), len(holdout)

	finish := func() CycleResult {
		res.Generation = t.cfg.Live.Generation()
		metrics.Lifecycle.Cycle(metrics.CycleObservation{
			Promoted:     res.Promoted,
			Skipped:      res.Skipped,
			LiveADE:      res.Promotion.LiveADE,
			CandidateADE: res.Promotion.CandidateADE,
			TrainWindows: res.TrainWindows,
			Holdout:      res.Holdout,
			Retrain:      res.RetrainTime,
			Eval:         res.EvalTime,
			Generation:   res.Generation,
		})
		if t.cfg.OnCycle != nil {
			t.cfg.OnCycle(res)
		}
		return res
	}

	if len(train) < t.cfg.MinTrainWindows {
		res.Skipped = true
		res.SkipReason = fmt.Sprintf("%d train windows < %d required", len(train), t.cfg.MinTrainWindows)
		return finish()
	}
	if len(holdout) < t.cfg.Promotion.MinHoldout {
		res.Skipped = true
		res.SkipReason = fmt.Sprintf("%d holdout windows < %d required", len(holdout), t.cfg.Promotion.MinHoldout)
		return finish()
	}

	candidate, err := t.cfg.Live.Clone()
	if err != nil {
		res.Skipped = true
		res.SkipReason = fmt.Sprintf("clone live model: %v", err)
		return finish()
	}
	start := time.Now()
	res.Loss = candidate.Train(train, t.cfg.TrainOptions)
	res.RetrainTime = time.Since(start)

	start = time.Now()
	res.Promotion = experiments.RunPromotion(t.cfg.Live, candidate, holdout, t.cfg.Promotion)
	res.EvalTime = time.Since(start)

	if res.Promotion.Promote {
		if err := t.cfg.Live.SwapWeightsFrom(candidate); err != nil {
			// A geometry mismatch here means a config bug, not a lifecycle
			// condition; surface it as a rejection with the error recorded.
			res.Promotion.Promote = false
			res.Promotion.Reason = fmt.Sprintf("swap failed: %v", err)
		} else {
			res.Promoted = true
		}
	}

	res.Lanes = t.rebuildRouteLocked()
	return finish()
}

// replayLocked drains the broker's retained history into the per-vessel
// tracks, committing offsets per batch (at-least-once; redelivered
// records are shed by the per-vessel timestamp guard).
func (t *Trainer) replayLocked() int {
	replayed := 0
	for i := 0; i < t.cfg.MaxPollsPerCycle; i++ {
		recs := t.consumer.Poll(1024, 10*time.Millisecond)
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			r, ok := rec.Value.(ais.PositionReport)
			if !ok {
				continue
			}
			t.fold(r)
		}
		replayed += len(recs)
		t.pollHint++
		metrics.Lifecycle.Replay(t.pollHint, len(recs))
		t.consumer.Commit()
	}
	return replayed
}

// fold appends one report to its vessel's retained history, applying
// the downsample gap at ingest (so retention buys the longest usable
// history per byte) and the per-vessel cap.
func (t *Trainer) fold(r ais.PositionReport) {
	tr := t.tracks[r.MMSI]
	if tr == nil {
		tr = &track{}
		t.tracks[r.MMSI] = tr
	}
	if n := len(tr.reports); n > 0 {
		// Drop out-of-order and redelivered reports, and apply the
		// downsample gap incrementally — re-downsampling the retained
		// stream is then a no-op, so windowing sees the same series a
		// batch pass over the raw history would.
		if r.Timestamp.Sub(tr.reports[n-1].Timestamp) < t.cfg.Traj.Downsample {
			return
		}
	}
	tr.reports = append(tr.reports, r)
	if excess := len(tr.reports) - t.cfg.MaxReportsPerVessel; excess > 0 {
		tr.reports = append(tr.reports[:0], tr.reports[excess:]...)
	}
}

// buildWindowsLocked cuts training/eval windows from every retained
// track, in deterministic vessel order.
func (t *Trainer) buildWindowsLocked() []traj.Window {
	mmsis := make([]ais.MMSI, 0, len(t.tracks))
	for m := range t.tracks {
		mmsis = append(mmsis, m)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })
	var windows []traj.Window
	for _, m := range mmsis {
		windows = append(windows, traj.BuildWindows(t.tracks[m].reports, t.cfg.Traj)...)
	}
	return windows
}

// split orders windows by anchor time and holds out the newest
// HoldoutFrac for the shadow eval; the rest (newest-first, capped at
// MaxTrainWindows) trains the candidate. The split is temporal, not
// random: the gate must measure the candidate on traffic the training
// never saw AND that is most recent — the drift the lifecycle exists
// to catch.
func (t *Trainer) split(windows []traj.Window) (train, holdout []traj.Window) {
	if len(windows) == 0 {
		return nil, nil
	}
	sorted := make([]traj.Window, len(windows))
	copy(sorted, windows)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].LastTime.Before(sorted[j].LastTime) })
	h := int(float64(len(sorted)) * t.cfg.HoldoutFrac)
	if h > len(sorted) {
		h = len(sorted)
	}
	cut := len(sorted) - h
	train, holdout = sorted[:cut], sorted[cut:]
	if len(train) > t.cfg.MaxTrainWindows {
		train = train[len(train)-t.cfg.MaxTrainWindows:]
	}
	return train, holdout
}

// rebuildRouteLocked rebuilds the L-VRF lane graphs from the retained
// history and publishes the new model. Returns the lane count (0 when
// the rebuild is disabled or produced no lanes worth publishing).
func (t *Trainer) rebuildRouteLocked() int {
	if len(t.cfg.Ports) == 0 || t.cfg.PublishRoute == nil {
		return 0
	}
	var trips []lvrf.Trip
	for m, tr := range t.tracks {
		in := lvrf.TrackInput{
			MMSI:      uint32(m),
			Positions: make([]geo.Point, len(tr.reports)),
			Times:     make([]time.Time, len(tr.reports)),
		}
		for i, r := range tr.reports {
			in.Positions[i] = geo.Point{Lat: r.Lat, Lon: r.Lon}
			in.Times[i] = r.Timestamp
		}
		trips = append(trips, lvrf.ExtractTrips(in, t.cfg.Ports, 0)...)
	}
	if len(trips) == 0 {
		return 0
	}
	model := lvrf.Train(trips, t.cfg.Ports, t.cfg.RouteConfig)
	if model.Lanes() == 0 {
		return 0
	}
	t.cfg.PublishRoute(model)
	metrics.Lifecycle.LaneRebuild()
	return model.Lanes()
}

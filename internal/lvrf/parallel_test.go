package lvrf

import (
	"math/rand"
	"reflect"
	"testing"
)

// parallelTrips builds a fleet with several distinct OD pairs so the
// worker pool actually has concurrent lanes in flight.
func parallelTrips() []Trip {
	rng := rand.New(rand.NewSource(9))
	var trips []Trip
	for i := 0; i < 16; i++ {
		trips = append(trips, laneTrip(uint32(100+i), cargoF(), "A", "B", 12000, rng))
		trips = append(trips, laneTrip(uint32(200+i), ferryF(), "A", "B", -12000, rng))
		trips = append(trips, laneTrip(uint32(300+i), cargoF(), "A", "C", 5000, rng))
		trips = append(trips, laneTrip(uint32(400+i), ferryF(), "B", "C", -4000, rng))
		trips = append(trips, laneTrip(uint32(500+i), cargoF(), "C", "A", 7000, rng))
	}
	return trips
}

// TestTrainParallelMatchesSequential: training with a worker pool must
// produce a model identical to sequential training — same lanes, same
// graphs, same Patterns of Life — for every worker count. Run with
// -race in CI to catch sharing between concurrent lane builds.
func TestTrainParallelMatchesSequential(t *testing.T) {
	trips := parallelTrips()
	want := Train(trips, ports, DefaultConfig())
	for _, workers := range []int{2, 4, 16} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		got := Train(trips, ports, cfg)
		if !reflect.DeepEqual(want.Pairs(), got.Pairs()) {
			t.Fatalf("workers=%d: pairs %v != %v", workers, got.Pairs(), want.Pairs())
		}
		for _, pair := range want.Pairs() {
			wp, err1 := want.PatternsOfLife(pair[0], pair[1])
			gp, err2 := got.PatternsOfLife(pair[0], pair[1])
			if err1 != nil || err2 != nil {
				t.Fatalf("workers=%d pair %v: %v / %v", workers, pair, err1, err2)
			}
			if !reflect.DeepEqual(wp, gp) {
				t.Fatalf("workers=%d pair %v: POL diverged\nseq: %+v\npar: %+v", workers, pair, wp, gp)
			}
			wl := want.lanes[odKey{pair[0], pair[1]}]
			gl := got.lanes[odKey{pair[0], pair[1]}]
			if !reflect.DeepEqual(wl.levels, gl.levels) || !reflect.DeepEqual(wl.edges, gl.edges) {
				t.Fatalf("workers=%d pair %v: lane graph diverged", workers, pair)
			}
			wr, _ := want.ForecastRoute(pair[0], pair[1], cargoF())
			gr, _ := got.ForecastRoute(pair[0], pair[1], cargoF())
			if !reflect.DeepEqual(wr, gr) {
				t.Fatalf("workers=%d pair %v: forecast diverged", workers, pair)
			}
		}
	}
}

// TestTrainOnLaneDeterministicOrder: the observability callback fires
// once per lane, in sorted pair order, regardless of worker count.
func TestTrainOnLaneDeterministicOrder(t *testing.T) {
	trips := parallelTrips()
	order := func(workers int) [][2]string {
		var got [][2]string
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.OnLane = func(origin, dest string, trips int) {
			if trips <= 0 {
				t.Fatalf("OnLane(%s,%s) reported %d trips", origin, dest, trips)
			}
			got = append(got, [2]string{origin, dest})
		}
		Train(trips, ports, cfg)
		return got
	}
	seq := order(1)
	if len(seq) != 4 {
		t.Fatalf("expected 4 lanes, OnLane saw %v", seq)
	}
	for _, workers := range []int{3, 8} {
		if par := order(workers); !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: OnLane order %v != %v", workers, par, seq)
		}
	}
}

package vtff

import (
	"seatwin/internal/hexgrid"
)

// DirectAR extends the direct strategy with a proper per-cell
// autoregressive sequence model, the closest stdlib-only stand-in for
// the learned sequence models the [17] comparison evaluates: for each
// cell, an AR(p) model is fit by least squares over the cell's recent
// window series and iterated forward per horizon. Cells with too little
// history fall back to their mean.
const arOrder = 3

// fitAR solves the least-squares AR(p) coefficients for one series
// (oldest first) via the normal equations; ok is false when the system
// is singular or the series too short.
func fitAR(series []float64, p int) (coef []float64, intercept float64, ok bool) {
	n := len(series) - p
	if n < p+2 {
		return nil, 0, false
	}
	// Design matrix columns: lag 1..p plus intercept.
	dim := p + 1
	ata := make([]float64, dim*dim)
	atb := make([]float64, dim)
	for row := 0; row < n; row++ {
		x := make([]float64, dim)
		for lag := 1; lag <= p; lag++ {
			x[lag-1] = series[p+row-lag]
		}
		x[p] = 1 // intercept
		y := series[p+row]
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				ata[i*dim+j] += x[i] * x[j]
			}
			atb[i] += x[i] * y
		}
	}
	// Ridge damping keeps near-singular systems solvable and shrinks
	// coefficients toward persistence.
	for i := 0; i < dim; i++ {
		ata[i*dim+i] += 1e-6
	}
	sol, solved := solveLinear(ata, atb, dim)
	if !solved {
		return nil, 0, false
	}
	return sol[:p], sol[p], true
}

// solveLinear performs Gaussian elimination with partial pivoting.
func solveLinear(a []float64, b []float64, n int) ([]float64, bool) {
	m := make([]float64, len(a))
	copy(m, a)
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(m[r*n+col]) > abs(m[pivot*n+col]) {
				pivot = r
			}
		}
		if abs(m[pivot*n+col]) < 1e-12 {
			return nil, false
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				m[pivot*n+c], m[col*n+c] = m[col*n+c], m[pivot*n+c]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r*n+c] -= f * m[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := x[r]
		for c := r + 1; c < n; c++ {
			sum -= m[r*n+c] * x[c]
		}
		x[r] = sum / m[r*n+r]
	}
	return x, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// DirectARForecast forecasts future windows per cell with AR(3) models
// fit on each cell's recent history. history maps window index ->
// observed flow; series are assembled over [last-depth+1, last].
func DirectARForecast(history map[int64]Flow, last int64, horizons, depth int) map[int64]Flow {
	if depth < arOrder+3 {
		depth = 12
	}
	// Union of cells active anywhere in the depth window.
	cells := map[hexgrid.Cell]struct{}{}
	for w := last - int64(depth) + 1; w <= last; w++ {
		for c := range history[w] {
			cells[c] = struct{}{}
		}
	}
	// Per-cell series and forecast.
	out := make(map[int64]Flow, horizons)
	for h := 1; h <= horizons; h++ {
		out[last+int64(h)] = make(Flow)
	}
	for c := range cells {
		series := make([]float64, depth)
		sum := 0.0
		for i := 0; i < depth; i++ {
			v := float64(history[last-int64(depth)+1+int64(i)][c])
			series[i] = v
			sum += v
		}
		coef, intercept, ok := fitAR(series, arOrder)
		for h := 1; h <= horizons; h++ {
			var pred float64
			if ok {
				pred = intercept
				for lag := 1; lag <= arOrder; lag++ {
					pred += coef[lag-1] * series[len(series)-lag]
				}
			} else {
				pred = sum / float64(depth) // mean fallback
			}
			if pred < 0 {
				pred = 0
			}
			series = append(series, pred)
			if v := int(pred + 0.5); v > 0 {
				out[last+int64(h)][c] = v
			}
		}
	}
	return out
}

package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
)

// Config describes a SeqRegressor: a recurrent encoder (LSTM or BiLSTM)
// over an input sequence followed by one fully connected linear layer
// producing a fixed-size regression output — the Figure 3 architecture.
type Config struct {
	InputDim      int     // features per timestep (3 for S-VRF: dlat, dlon, dt)
	Hidden        int     // LSTM units per direction
	OutputDim     int     // regression outputs (12 for S-VRF: 6 x (dlat, dlon))
	Bidirectional bool    // true: BiLSTM with concatenated final states
	L1            float64 // in-layer L1 regularisation strength
	Seed          int64   // weight initialisation seed
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.InputDim <= 0 || c.Hidden <= 0 || c.OutputDim <= 0 {
		return fmt.Errorf("nn: dimensions must be positive: %+v", c)
	}
	return nil
}

// trainScratch holds the model-level reusable training buffers of the
// reference path: the per-direction cell arenas plus the head's
// output/gradient vectors. One scratch serves one goroutine — the
// model's own gradSample calls, or one worker replica's.
type trainScratch struct {
	fw, bw cellScratch
	enc    []float64
	dEnc   []float64
	y      []float64
	dy     []float64
}

// SeqRegressor maps a variable-length sequence of feature vectors to a
// fixed-size output vector.
type SeqRegressor struct {
	cfg Config
	fw  *lstmCell
	bw  *lstmCell // nil when unidirectional
	out *matrix   // OutputDim x encDim
	ob  *matrix   // OutputDim x 1
	t   int       // Adam timestep
	// clipNorm is set per Fit call from FitOptions.ClipNorm.
	clipNorm float64
	// lastClipped records whether the most recent optimisation step hit
	// the clip bound (training observability).
	lastClipped bool
	// mats caches the matrices() list: the parameter set is fixed at
	// construction, and the hot training loop walks it several times per
	// batch.
	mats []*matrix
	// ts is the model's own training scratch (single-worker gradSample).
	ts trainScratch
	// replicas are the persistent training workers: cloned once, then
	// re-synced (weights copied, gradients zeroed) at each batch instead
	// of re-cloned, so steady-state TrainBatch does not allocate.
	replicas   []*SeqRegressor
	workerLoss []float64
}

// NewSeqRegressor builds a model with seeded random initialisation.
func NewSeqRegressor(cfg Config) (*SeqRegressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &SeqRegressor{cfg: cfg}
	m.fw = newLSTMCell(cfg.InputDim, cfg.Hidden, rng)
	encDim := cfg.Hidden
	if cfg.Bidirectional {
		m.bw = newLSTMCell(cfg.InputDim, cfg.Hidden, rng)
		encDim = 2 * cfg.Hidden
	}
	scale := 1.0 / float64(encDim)
	m.out = newMatrix(cfg.OutputDim, encDim, scale, rng)
	m.ob = newMatrix(cfg.OutputDim, 1, 0, rng)
	m.mats = m.buildMatrices()
	return m, nil
}

// Config returns the model configuration.
func (m *SeqRegressor) Config() Config { return m.cfg }

// encDim returns the encoder output width.
func (m *SeqRegressor) encDim() int {
	if m.bw != nil {
		return 2 * m.cfg.Hidden
	}
	return m.cfg.Hidden
}

func (m *SeqRegressor) buildMatrices() []*matrix {
	ms := append(m.fw.matrices(), m.out, m.ob)
	if m.bw != nil {
		ms = append(ms, m.bw.matrices()...)
	}
	return ms
}

func (m *SeqRegressor) matrices() []*matrix { return m.mats }

// encode runs the recurrent encoder in the given scratch and returns
// the caches plus the concatenated final hidden state (a slice of
// ts.enc, valid until the scratch is reused).
func (m *SeqRegressor) encode(seq [][]float64, ts *trainScratch) (fwSteps, bwSteps []lstmStep, enc []float64) {
	if ts.enc == nil {
		ts.enc = make([]float64, m.encDim())
	}
	fwSteps = m.fw.forward(seq, false, &ts.fw)
	enc = ts.enc[:m.encDim()]
	copy(enc[:m.cfg.Hidden], fwSteps[len(fwSteps)-1].h)
	if m.bw != nil {
		bwSteps = m.bw.forward(seq, true, &ts.bw)
		copy(enc[m.cfg.Hidden:], bwSteps[len(bwSteps)-1].h)
	}
	return fwSteps, bwSteps, enc
}

// Predict runs a forward pass. It allocates all intermediate state, so
// a single model may serve many goroutines concurrently as long as no
// training step runs at the same time. (Serving goes through the
// Compiled fast path; this is the reference oracle.)
func (m *SeqRegressor) Predict(seq [][]float64) []float64 {
	y := make([]float64, m.cfg.OutputDim)
	if len(seq) == 0 {
		return y
	}
	var ts trainScratch
	_, _, enc := m.encode(seq, &ts)
	for o := 0; o < m.cfg.OutputDim; o++ {
		z := m.ob.W[o]
		row := o * len(enc)
		for k, e := range enc {
			z += m.out.W[row+k] * e
		}
		y[o] = z
	}
	return y
}

// Sample is one training example.
type Sample struct {
	Seq    [][]float64
	Target []float64
}

// gradSample computes the loss for one sample and accumulates
// gradients. All intermediate state lives in the model's training
// scratch, so steady-state calls do not allocate.
func (m *SeqRegressor) gradSample(s Sample) float64 {
	ts := &m.ts
	if ts.y == nil {
		ts.y = make([]float64, m.cfg.OutputDim)
		ts.dy = make([]float64, m.cfg.OutputDim)
		ts.dEnc = make([]float64, m.encDim())
	}
	fwSteps, bwSteps, enc := m.encode(s.Seq, ts)
	y := ts.y
	for o := 0; o < m.cfg.OutputDim; o++ {
		z := m.ob.W[o]
		row := o * len(enc)
		for k, e := range enc {
			z += m.out.W[row+k] * e
		}
		y[o] = z
	}
	loss := 0.0
	dy := ts.dy
	for o := range y {
		diff := y[o] - s.Target[o]
		loss += diff * diff
		dy[o] = 2 * diff / float64(m.cfg.OutputDim)
	}
	loss /= float64(m.cfg.OutputDim)

	dEnc := ts.dEnc[:len(enc)]
	for i := range dEnc {
		dEnc[i] = 0
	}
	for o := 0; o < m.cfg.OutputDim; o++ {
		m.ob.g[o] += dy[o]
		row := o * len(enc)
		for k, e := range enc {
			m.out.g[row+k] += dy[o] * e
			dEnc[k] += dy[o] * m.out.W[row+k]
		}
	}
	m.fw.backward(fwSteps, dEnc[:m.cfg.Hidden], &ts.fw)
	if m.bw != nil {
		m.bw.backward(bwSteps, dEnc[m.cfg.Hidden:], &ts.bw)
	}
	return loss
}

func (m *SeqRegressor) zeroGrad() {
	for _, mat := range m.matrices() {
		mat.zeroGrad()
	}
}

// Adam hyperparameters; fixed to the usual defaults.
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// applyStep runs the shared tail of one optimisation step: global-norm
// clipping over the averaged gradient, then the Adam update. Both the
// reference TrainBatch and the compiled plan end their batches here, so
// the optimiser semantics (and the clip observability) are one code
// path. Reports whether the clip bound.
func (m *SeqRegressor) applyStep(lr float64, batchSize int) bool {
	m.t++
	clipped := false
	invBatch := 1.0 / float64(batchSize)
	if m.clipNorm > 0 {
		// Global-norm clipping over the averaged gradient.
		sumSq := 0.0
		for _, mat := range m.matrices() {
			for _, g := range mat.g {
				v := g * invBatch
				sumSq += v * v
			}
		}
		if norm := math.Sqrt(sumSq); norm > m.clipNorm {
			clipped = true
			scale := m.clipNorm / norm
			for _, mat := range m.matrices() {
				for i := range mat.g {
					mat.g[i] *= scale
				}
			}
		}
	}
	for _, mat := range m.matrices() {
		l1 := 0.0
		if mat != m.ob { // no regularisation on biases' counterpart head bias
			l1 = m.cfg.L1
		}
		mat.adamStep(lr, adamBeta1, adamBeta2, adamEps, l1, invBatch, m.t)
	}
	m.lastClipped = clipped
	return clipped
}

// ensureReplicas builds or extends the persistent worker replica set
// and syncs each replica's weights to the master, zeroing its gradient
// buffers — the per-batch cost that replaced the per-batch clone.
func (m *SeqRegressor) ensureReplicas(workers int) {
	for len(m.replicas) < workers {
		m.replicas = append(m.replicas, m.cloneForWorker())
	}
	for len(m.workerLoss) < workers {
		m.workerLoss = append(m.workerLoss, 0)
	}
	for w := 0; w < workers; w++ {
		r := m.replicas[w]
		for i, mat := range r.matrices() {
			mat.syncWeightsFrom(m.mats[i])
			mat.zeroGrad()
		}
		m.workerLoss[w] = 0
	}
}

// TrainBatch runs one optimisation step on a batch, spreading gradient
// computation across workers, and returns the mean sample loss.
func (m *SeqRegressor) TrainBatch(batch []Sample, lr float64, workers int) float64 {
	if len(batch) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	m.zeroGrad()

	var totalLoss float64
	if workers == 1 {
		for _, s := range batch {
			totalLoss += m.gradSample(s)
		}
	} else {
		m.ensureReplicas(workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(batch); i += workers {
					m.workerLoss[w] += m.replicas[w].gradSample(batch[i])
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			totalLoss += m.workerLoss[w]
			for i, mat := range m.replicas[w].matrices() {
				m.mats[i].addGradFrom(mat)
			}
		}
	}

	m.applyStep(lr, len(batch))
	return totalLoss / float64(len(batch))
}

// cloneForWorker copies weights into a replica with private gradient
// buffers.
func (m *SeqRegressor) cloneForWorker() *SeqRegressor {
	r := &SeqRegressor{cfg: m.cfg}
	r.fw = &lstmCell{In: m.fw.In, Hidden: m.fw.Hidden,
		Wi: m.fw.Wi.clone(), Wf: m.fw.Wf.clone(), Wg: m.fw.Wg.clone(), Wo: m.fw.Wo.clone(),
		Bi: m.fw.Bi.clone(), Bf: m.fw.Bf.clone(), Bg: m.fw.Bg.clone(), Bo: m.fw.Bo.clone()}
	if m.bw != nil {
		r.bw = &lstmCell{In: m.bw.In, Hidden: m.bw.Hidden,
			Wi: m.bw.Wi.clone(), Wf: m.bw.Wf.clone(), Wg: m.bw.Wg.clone(), Wo: m.bw.Wo.clone(),
			Bi: m.bw.Bi.clone(), Bf: m.bw.Bf.clone(), Bg: m.bw.Bg.clone(), Bo: m.bw.Bo.clone()}
	}
	r.out = m.out.clone()
	r.ob = m.ob.clone()
	r.mats = r.buildMatrices()
	return r
}

// CopyWeightsFrom copies src's weights into m. The two models must
// share the same geometry (input, hidden, output width and
// directionality); regularisation strength and seed may differ.
// Optimiser state (Adam moments, timestep) is deliberately not copied:
// the receiver keeps its own training history, so a warm-started
// retrain behaves like a fresh run from the copied weights.
func (m *SeqRegressor) CopyWeightsFrom(src *SeqRegressor) error {
	if m.cfg.InputDim != src.cfg.InputDim || m.cfg.Hidden != src.cfg.Hidden ||
		m.cfg.OutputDim != src.cfg.OutputDim || m.cfg.Bidirectional != src.cfg.Bidirectional {
		return fmt.Errorf("nn: cannot copy weights from shape %+v into %+v", src.cfg, m.cfg)
	}
	srcMats := src.matrices()
	for i, mat := range m.matrices() {
		copy(mat.W, srcMats[i].W)
	}
	return nil
}

// FitOptions controls Fit.
type FitOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Workers   int
	Seed      int64 // shuffling seed
	// ClipNorm, when positive, rescales the batch gradient so its
	// global L2 norm does not exceed this value — the standard guard
	// against exploding LSTM gradients. Zero disables clipping.
	ClipNorm float64
	// Progress, when non-nil, is invoked after each epoch with the mean
	// training loss; returning false stops training early.
	Progress func(epoch int, loss float64) bool
	// OnBatch, when non-nil, is invoked after each optimisation step
	// with the number of samples in the batch and whether the clip
	// bound — the training-observability hook.
	OnBatch func(samples int, clipped bool)
}

// Fit trains on the dataset with shuffled mini-batches.
func (m *SeqRegressor) Fit(data []Sample, opt FitOptions) float64 {
	return m.fit(data, opt, nil)
}

// fit is the shared epoch/shuffle/batch loop behind the reference Fit
// and TrainCompiled.Fit: the two paths differ only in the batch-step
// function, so shuffling, batching, progress and observability hooks
// behave identically (and a fixed seed yields the same batch order).
func (m *SeqRegressor) fit(data []Sample, opt FitOptions, tc *TrainCompiled) float64 {
	if opt.Epochs <= 0 {
		opt.Epochs = 1
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 32
	}
	if opt.LR <= 0 {
		opt.LR = 1e-3
	}
	m.clipNorm = opt.ClipNorm
	rng := rand.New(rand.NewSource(opt.Seed))
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	batch := make([]Sample, 0, opt.BatchSize)
	lastLoss := 0.0
	for e := 0; e < opt.Epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		sum := 0.0
		batches := 0
		for start := 0; start < len(idx); start += opt.BatchSize {
			end := start + opt.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch = batch[:0]
			for _, i := range idx[start:end] {
				batch = append(batch, data[i])
			}
			if tc != nil {
				sum += tc.TrainBatch(batch, opt.LR, opt.Workers)
			} else {
				sum += m.TrainBatch(batch, opt.LR, opt.Workers)
			}
			batches++
			if opt.OnBatch != nil {
				opt.OnBatch(len(batch), m.lastClipped)
			}
		}
		if batches > 0 {
			lastLoss = sum / float64(batches)
		}
		if opt.Progress != nil && !opt.Progress(e, lastLoss) {
			break
		}
	}
	return lastLoss
}

// MSE returns the mean squared error over a dataset without training.
func (m *SeqRegressor) MSE(data []Sample) float64 {
	if len(data) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range data {
		y := m.Predict(s.Seq)
		for o := range y {
			d := y[o] - s.Target[o]
			sum += d * d
		}
	}
	return sum / float64(len(data)*m.cfg.OutputDim)
}

// L1Norm returns the total absolute weight mass, used by tests to
// verify the regulariser bites.
func (m *SeqRegressor) L1Norm() float64 {
	s := 0.0
	for _, mat := range m.matrices() {
		s += mat.l1Norm()
	}
	return s
}

// snapshot is the gob-serialisable model state.
type snapshot struct {
	Cfg     Config
	Weights [][]float64
}

// Save writes the model (configuration and weights) to w.
func (m *SeqRegressor) Save(w io.Writer) error {
	snap := snapshot{Cfg: m.cfg}
	for _, mat := range m.matrices() {
		snap.Weights = append(snap.Weights, append([]float64(nil), mat.W...))
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*SeqRegressor, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, err
	}
	m, err := NewSeqRegressor(snap.Cfg)
	if err != nil {
		return nil, err
	}
	mats := m.matrices()
	if len(mats) != len(snap.Weights) {
		return nil, fmt.Errorf("nn: snapshot has %d blocks, model wants %d", len(snap.Weights), len(mats))
	}
	for i, w := range snap.Weights {
		if len(w) != len(mats[i].W) {
			return nil, fmt.Errorf("nn: block %d has %d weights, want %d", i, len(w), len(mats[i].W))
		}
		copy(mats[i].W, w)
	}
	return m, nil
}

// SaveFile saves to a file path atomically.
func (m *SeqRegressor) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads a model written by SaveFile.
func LoadFile(path string) (*SeqRegressor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

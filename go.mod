module seatwin

go 1.22

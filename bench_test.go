// Package seatwin_bench is the repository's top-level benchmark
// harness: one benchmark per table and figure of the paper's evaluation
// section (run them with `go test -bench=. -benchmem .`), plus the
// ablation benchmarks DESIGN.md calls out. Each experiment benchmark
// prints the corresponding table through the shared
// internal/experiments code and reports its headline numbers as
// benchmark metrics.
package seatwin_bench

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/experiments"
	"seatwin/internal/feed"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
	"seatwin/internal/pipeline"
	"seatwin/internal/svrf"
	"seatwin/internal/traj"
	"seatwin/internal/vtff"
)

// The trained model is shared across experiment benchmarks; training it
// is itself part of BenchmarkTable1.
var (
	trainOnce sync.Once
	trained   experiments.TrainedModel
)

func trainedModel() experiments.TrainedModel {
	trainOnce.Do(func() {
		trained = experiments.TrainSVRF(experiments.Small, 42)
	})
	return trained
}

// BenchmarkTable1_SVRF_ADE regenerates Table 1: ADE per horizon for the
// linear kinematic baseline and the S-VRF model on held-out windows.
func BenchmarkTable1_SVRF_ADE(b *testing.B) {
	tm := trainedModel()
	var res experiments.Table1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable1(tm)
	}
	b.StopTimer()
	fmt.Println()
	fmt.Print(res.Format())
	b.ReportMetric(res.MeanKin, "kinematic-ADE-m")
	b.ReportMetric(res.MeanSVRF, "svrf-ADE-m")
	b.ReportMetric(res.MeanDiff, "diff-%")
}

// BenchmarkTable2_Collision regenerates Table 2: the collision
// forecasting grid over the synthetic proximity dataset.
func BenchmarkTable2_Collision(b *testing.B) {
	tm := trainedModel()
	var res experiments.Table2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable2(tm, 42)
	}
	b.StopTimer()
	fmt.Println()
	fmt.Print(res.Format())
	// Headline: All Events @ 2 min rows (kinematic first, S-VRF second).
	if len(res.Rows) >= 2 {
		b.ReportMetric(res.Rows[0].Recall, "kinematic-recall")
		b.ReportMetric(res.Rows[1].Recall, "svrf-recall")
	}
}

// BenchmarkFigure6_Scalability regenerates Figure 6: processing time
// against a growing actor population on the full pipeline, with the
// S-VRF architecture doing the forecasting (untrained weights have the
// same inference cost).
func BenchmarkFigure6_Scalability(b *testing.B) {
	m, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	fc := events.SVRFForecaster{Model: m}
	var res experiments.Figure6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure6(fc, 20000, 300000, 3000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.StopTimer()
	fmt.Println()
	fmt.Print(res.Format())
	if n := len(res.Series); n > 0 {
		b.ReportMetric(float64(res.Series[n-1].Vessels), "final-vessels")
		b.ReportMetric(float64(res.Series[n-1].Actors), "final-actors")
		b.ReportMetric(float64(res.Series[n-1].AvgProcess.Microseconds()), "steady-avg-us")
		peak := time.Duration(0)
		for _, s := range res.Series {
			if s.Actors <= 5000 && s.AvgProcess > peak {
				peak = s.AvgProcess
			}
		}
		b.ReportMetric(float64(peak.Microseconds()), "init-peak-us")
	}
	b.ReportMetric(float64(res.Stats.DeadLetter), "dead-letters")
}

// BenchmarkDatasetStats regenerates the §6.1 sampling statistics of the
// simulated stream after 30-second downsampling.
func BenchmarkDatasetStats(b *testing.B) {
	tm := trainedModel()
	var res experiments.DatasetResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunDatasetStats(tm)
	}
	b.StopTimer()
	fmt.Println()
	fmt.Print(res.Format())
	b.ReportMetric(res.IntervalMean, "mean-interval-s")
	b.ReportMetric(res.IntervalStd, "std-interval-s")
}

// BenchmarkVTFF_IndirectVsDirect regenerates the §5.1 strategy
// comparison the paper adopts from [17].
func BenchmarkVTFF_IndirectVsDirect(b *testing.B) {
	tm := trainedModel()
	var res experiments.VTFFResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.RunVTFF(tm, 42)
	}
	b.StopTimer()
	fmt.Println()
	fmt.Print(res.Format())
	b.ReportMetric(res.Comparison.AdvantageFactor(), "indirect-advantage-x")
}

// --- Sharded runtime (DESIGN.md "Sharded runtime") ----------------

// BenchmarkGetOrSpawnParallel measures a registry spawn storm: every
// iteration materialises a new named actor — mimicking first contact of
// new MMSIs and hexgrid cells — interleaved with re-lookups of already
// registered hot names (the steady-state case). The shards-1 variant
// reproduces the pre-sharding global registry lock as the baseline.
func BenchmarkGetOrSpawnParallel(b *testing.B) {
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			sys := actor.NewSystemSharded("bench", shards)
			defer sys.Shutdown(time.Second)
			props := actor.PropsOf(func(c *actor.Context) {})
			var next int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := atomic.AddInt64(&next, 1)
					sys.GetOrSpawn("v-"+strconv.FormatInt(n, 10), props)
					sys.GetOrSpawn("v-"+strconv.FormatInt(n>>4, 10), props)
				}
			})
		})
	}
}

// BenchmarkIngestParallel pushes position reports through the full
// pipeline from parallel producers — the Figure 6 message path end to
// end: registry lookup, vessel actor, forecast fan-out, metrics
// recording and writer persistence. The timed region covers enqueue AND
// processing to quiescence, so ns/op is the whole-pipeline per-message
// cost rather than the enqueue rate alone.
func BenchmarkIngestParallel(b *testing.B) {
	cfg := pipeline.DefaultConfig(events.NewKinematicForecaster())
	cfg.Writers = 4
	p, err := pipeline.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Shutdown(5 * time.Second)
	base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	var workerID int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each producer owns a disjoint MMSI range so per-vessel
		// timestamps stay monotonic (the broker's per-key ordering).
		w := atomic.AddInt64(&workerID, 1)
		const fleet = 1024
		var i int64
		for pb.Next() {
			i++
			// The fleet sits on a wide grid (~20 km spacing) so cells hold
			// ~1 vessel each: per-message work stays constant instead of
			// exploding into O(n^2) pairwise detection, which would swamp
			// the path under test with scheduling-sensitive churn.
			v := (w-1)*fleet + i%fleet
			ts := base.Add(time.Duration(i/fleet) * 30 * time.Second)
			p.Ingest(ais.PositionReport{
				MMSI: ais.MMSI(200000000 + v),
				Lat:  30 + float64(v%64)*0.2,
				Lon:  20 + float64(v/64)*0.2 + float64(i/fleet)*0.001,
				SOG:  12, COG: 90,
				Timestamp: ts,
			}, ts)
		}
	})
	p.Drain(60 * time.Second)
	b.StopTimer()
}

// BenchmarkIngestNMEA measures the raw-receiver ingest path: NMEA
// AIVDM lines parsed, de-armored, decoded and pushed through the full
// pipeline — ParseSentence's in-place field split and the pooled
// de-armoring buffers ahead of the same actor path BenchmarkIngestParallel
// times. Sentences are pre-marshalled so the timed region is decode +
// ingest only.
func BenchmarkIngestNMEA(b *testing.B) {
	cfg := pipeline.DefaultConfig(events.NewKinematicForecaster())
	cfg.Writers = 4
	p, err := pipeline.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Shutdown(5 * time.Second)
	base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	const fleet = 1024
	lines := make([]string, 0, fleet)
	for v := 0; v < fleet; v++ {
		ls, err := ais.Marshal(ais.PositionReport{
			MMSI: ais.MMSI(210000000 + v),
			Lat:  30 + float64(v%64)*0.2,
			Lon:  20 + float64(v/64)*0.2,
			SOG:  12, COG: 90,
			Timestamp: base,
		}, "A", 0)
		if err != nil || len(ls) != 1 {
			b.Fatalf("marshal: %v (%d lines)", err, len(ls))
		}
		lines = append(lines, ls[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// receivedAt advances one 30 s reporting round per fleet sweep so
		// per-vessel timestamps stay monotonic for the dedup guard.
		at := base.Add(time.Duration(i/fleet) * 30 * time.Second)
		if err := p.IngestNMEA(lines[i%fleet], at); err != nil {
			b.Fatal(err)
		}
	}
	p.Drain(60 * time.Second)
	b.StopTimer()
}

// BenchmarkLiveFeedEndToEnd measures the full push path: AIS reports
// ingested into the pipeline, processed by vessel actors, persisted by
// writer actors, and fanned out by the live-feed hub to thousands of
// concurrently-consuming subscribers — the Figure 2 middleware serving
// push instead of poll. Compare ns/op against BenchmarkIngestParallel
// to read the marginal cost of the feed layer.
func BenchmarkLiveFeedEndToEnd(b *testing.B) {
	hub := feed.NewHub(feed.Options{RegionResolution: 7})
	defer hub.Close()
	cfg := pipeline.DefaultConfig(events.NewKinematicForecaster())
	cfg.Writers = 4
	cfg.Feed = hub
	p, err := pipeline.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Shutdown(5 * time.Second)

	// 2,000 subscribers over the fleet's vessel and region topics plus
	// the event classes, all draining concurrently.
	const fleet, nSubs = 1024, 2000
	var wg sync.WaitGroup
	for i := 0; i < nSubs; i++ {
		var topics []string
		switch i % 3 {
		case 0:
			topics = []string{feed.TopicVesselPrefix + ais.MMSI(200000001+i%fleet).String()}
		case 1:
			topics = []string{hub.RegionTopic(geo.Point{
				Lat: 30 + float64(i%64)*0.2, Lon: 20 + float64(i/64%16)*0.2,
			})}
		default:
			topics = []string{feed.TopicProximity, feed.TopicCollision, feed.TopicGap}
		}
		sub, err := hub.Subscribe(topics, feed.SubOptions{Buffer: 64, Policy: feed.PolicyConflate})
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := sub.Recv(); !ok {
					return
				}
			}
		}()
	}

	base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	var workerID int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := atomic.AddInt64(&workerID, 1)
		var i int64
		for pb.Next() {
			i++
			v := (w-1)*fleet + i%fleet
			ts := base.Add(time.Duration(i/fleet) * 30 * time.Second)
			p.Ingest(ais.PositionReport{
				MMSI: ais.MMSI(200000000 + v),
				Lat:  30 + float64(v%64)*0.2,
				Lon:  20 + float64(v/64)*0.2 + float64(i/fleet)*0.001,
				SOG:  12, COG: 90,
				Timestamp: ts,
			}, ts)
		}
	})
	p.Drain(60 * time.Second)
	b.StopTimer()
	s := hub.Snapshot()
	if s.Published > 0 {
		b.ReportMetric(float64(s.Fanned+s.Conflated)/float64(s.Published), "deliveries/frame")
	}
	b.ReportMetric(s.FanoutP99.Seconds()*1e6, "fanout-p99-µs")
	hub.Close()
	wg.Wait()
}

// --- Ablations (DESIGN.md §5) -------------------------------------

// BenchmarkAblation_Mailbox compares the actor runtime's chunked-swap
// mailbox against a plain buffered channel for the bursty fan-in shape
// of AIS ingestion.
func BenchmarkAblation_Mailbox(b *testing.B) {
	b.Run("actor-mailbox", func(b *testing.B) {
		sys := actor.NewSystem("bench")
		defer sys.Shutdown(time.Second)
		done := make(chan struct{})
		target := b.N
		count := 0
		pid := sys.Spawn(actor.PropsOf(func(c *actor.Context) {
			if _, ok := c.Message().(int); ok {
				count++
				if count == target {
					close(done)
				}
			}
		}))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Send(pid, i)
		}
		<-done
	})
	b.Run("buffered-channel", func(b *testing.B) {
		ch := make(chan int, 1024)
		done := make(chan struct{})
		go func() {
			for range ch {
			}
			close(done)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch <- i
		}
		close(ch)
		<-done
	})
}

// BenchmarkAblation_SharedModel contrasts the paper's design — one
// S-VRF instance mounted once and shared by every vessel actor —
// against per-actor model copies, measuring the memory cost of the
// alternative.
func BenchmarkAblation_SharedModel(b *testing.B) {
	w := benchWindow(b)
	b.Run("shared-instance", func(b *testing.B) {
		m, _ := svrf.New(svrf.DefaultConfig())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Forecast(w) // one instance, reused by every "actor"
		}
	})
	b.Run("per-actor-copies", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, _ := svrf.New(svrf.DefaultConfig()) // fresh weights per "actor"
			m.Forecast(w)
		}
	})
}

// BenchmarkForecastTrack measures the vessel-actor hot path: one
// ForecastTrack call over a HistoryLimit-deep live history, which is
// what every position report costs once a vessel is warmed up. The
// S-VRF variant runs the compiled fused-gate network in pooled
// scratch; ForecastInto shows the same model without the Forecast
// envelope the actor fan-out requires.
func BenchmarkForecastTrack(b *testing.B) {
	start := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	origin := geo.Point{Lat: 37.5, Lon: 24.5}
	history := make([]ais.PositionReport, 0, 48)
	for i := 0; i < 48; i++ {
		at := start.Add(time.Duration(i) * 30 * time.Second)
		p := geo.DeadReckon(origin, 13, 120, at.Sub(start).Seconds())
		history = append(history, ais.PositionReport{
			MMSI: 237000001, Lat: p.Lat, Lon: p.Lon, SOG: 13, COG: 120, Timestamp: at,
		})
	}
	m, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("svrf", func(b *testing.B) {
		fc := events.SVRFForecaster{Model: m}
		if _, ok := fc.ForecastTrack(history); !ok {
			b.Fatal("forecast failed")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fc.ForecastTrack(history)
		}
	})
	b.Run("svrf-forecast-into", func(b *testing.B) {
		w := benchWindow(b)
		dst := m.ForecastInto(nil, w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = m.ForecastInto(dst, w)
		}
	})
	b.Run("kinematic", func(b *testing.B) {
		fc := events.NewKinematicForecaster()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fc.ForecastTrack(history)
		}
	})
}

// benchWindow builds one representative preprocessed window.
func benchWindow(b *testing.B) traj.Window {
	b.Helper()
	start := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	origin := geo.Point{Lat: 37.5, Lon: 24.5}
	var reports []ais.PositionReport
	for i := 0; i < 240; i++ {
		at := start.Add(time.Duration(i) * 30 * time.Second)
		p := geo.DeadReckon(origin, 13, 120, at.Sub(start).Seconds())
		reports = append(reports, ais.PositionReport{
			MMSI: 237000001, Lat: p.Lat, Lon: p.Lon, SOG: 13, COG: 120, Timestamp: at,
		})
	}
	ws := traj.BuildWindows(reports, traj.DefaultConfig())
	if len(ws) == 0 {
		b.Fatal("no bench window")
	}
	return ws[0]
}

// BenchmarkAblation_HexResolution sweeps the collision-cell resolution:
// finer cells mean more actors and more forecast fan-out, coarser cells
// mean bigger pairwise detector state.
func BenchmarkAblation_HexResolution(b *testing.B) {
	for _, res := range []int{5, 6, 7, 8, 9} {
		b.Run(fmt.Sprintf("res-%d", res), func(b *testing.B) {
			edge := hexgrid.EdgeLengthMeters(res)
			p := geo.Point{Lat: 37.5, Lon: 24.5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cell := hexgrid.LatLonToCell(p, res)
				cell.GridDisk(1)
			}
			b.ReportMetric(edge, "edge-m")
		})
	}
}

// BenchmarkAblation_BiLSTMvsLSTM reproduces the §4.2 architecture
// decision: identical training on both variants, compared by held-out
// ADE.
func BenchmarkAblation_BiLSTMvsLSTM(b *testing.B) {
	ds := fleetsim.Record(geo.AegeanSea, 60, 4*time.Hour, 21)
	var windows []traj.Window
	for _, tr := range ds.Tracks {
		windows = append(windows, traj.BuildWindows(tr.Reports, traj.DefaultConfig())...)
	}
	train, _, test := traj.Split(windows, 0.6, 0.0, 3)
	opt := svrf.DefaultTrainOptions()
	opt.Epochs = 8
	for _, bidir := range []bool{true, false} {
		name := "lstm"
		if bidir {
			name = "bilstm"
		}
		b.Run(name, func(b *testing.B) {
			var ade float64
			for i := 0; i < b.N; i++ {
				cfg := svrf.DefaultConfig()
				cfg.Bidirectional = bidir
				m, err := svrf.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				m.Train(train, opt)
				ade = svrf.EvaluateADE(m, test).MeanADE()
			}
			b.ReportMetric(ade, "mean-ADE-m")
		})
	}
}

// BenchmarkAblation_EventFanout measures what the proximity/collision
// fan-out costs the vessel actors: the full pipeline against one with
// the event sharing disabled.
func BenchmarkAblation_EventFanout(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		cfg := pipeline.DefaultConfig(events.NewKinematicForecaster())
		cfg.DisableEventFanout = disable
		p, err := pipeline.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer p.Shutdown(5 * time.Second)
		res, err := pipeline.RunScalability(p, pipeline.ScalabilityConfig{
			Vessels:    2000,
			Messages:   b.N,
			Seed:       3,
			Consumers:  4,
			Partitions: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Latency.Mean.Microseconds()), "proc-mean-us")
	}
	b.Run("full-fanout", func(b *testing.B) { run(b, false) })
	b.Run("no-fanout", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_VTFFDirectModels scores the direct strategy's
// sequence models (persistence, moving average, AR(3)) and the
// indirect strategy on the same regional traffic, reporting each MAE.
func BenchmarkAblation_VTFFDirectModels(b *testing.B) {
	cfg := vtff.DefaultConfig()
	ds := fleetsim.Record(geo.AegeanSea, 120, 3*time.Hour, 31)
	cut := ds.Start.Add(ds.Duration - 35*time.Minute)
	lastWindow := cfg.WindowIndex(cut)

	histAcc := vtff.NewAccumulator(cfg)
	actAcc := vtff.NewAccumulator(cfg)
	kin := events.NewKinematicForecaster()
	var forecasts []events.Forecast
	for _, tr := range ds.Tracks {
		var hist []ais.PositionReport
		for _, r := range tr.Reports {
			p := geo.Point{Lat: r.Lat, Lon: r.Lon}
			if r.Timestamp.Before(cut) {
				histAcc.Add(r.MMSI, p, r.Timestamp)
				hist = append(hist, r)
			} else {
				actAcc.Add(r.MMSI, p, r.Timestamp)
			}
		}
		if f, ok := kin.ForecastTrack(hist); ok {
			forecasts = append(forecasts, f)
		}
	}
	history := make(map[int64]vtff.Flow)
	for _, w := range histAcc.Windows() {
		history[w] = histAcc.Window(w)
	}
	actual := make(map[int64]vtff.Flow)
	for _, w := range actAcc.Windows() {
		actual[w] = actAcc.Window(w)
	}

	score := func(pred map[int64]vtff.Flow) float64 {
		sum, n := 0.0, 0
		for h := 1; h <= 6; h++ {
			w := lastWindow + int64(h)
			if act, ok := actual[w]; ok {
				sum += vtff.MAE(pred[w], act)
				n++
			}
		}
		return sum / float64(n)
	}

	var indirect, persist, ma, ar float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		indirect = score(vtff.Indirect(forecasts, cfg))
		persist = score(vtff.Direct(history, lastWindow, 6, vtff.DirectPersistence))
		ma = score(vtff.Direct(history, lastWindow, 6, vtff.DirectMovingAverage))
		ar = score(vtff.DirectARForecast(history, lastWindow, 6, 12))
	}
	b.StopTimer()
	b.ReportMetric(indirect, "indirect-MAE")
	b.ReportMetric(persist, "persistence-MAE")
	b.ReportMetric(ma, "moving-avg-MAE")
	b.ReportMetric(ar, "ar3-MAE")
}

package pipeline

import (
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
)

func TestIngestNMEAWirePath(t *testing.T) {
	p := newTestPipeline(t)
	world := fleetsim.NewWorld(fleetsim.Config{
		Vessels: 20, Seed: 9, Region: geo.AegeanSea, KeepSailing: true,
	})
	feed := fleetsim.NewWireFeed(world)
	lines := 0
	for lines < 2000 {
		wl, ok := feed.Next()
		if !ok {
			t.Fatal("feed dried up")
		}
		if err := p.IngestNMEA(wl.Line, wl.At); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	p.Drain(10 * time.Second)

	s := p.Stats()
	if s.Messages == 0 {
		t.Fatal("no position reports ingested from the wire")
	}
	if s.Forecasts == 0 {
		t.Fatal("no forecasts from wire-fed reports")
	}
	if p.BadSentences() != 0 {
		t.Fatalf("%d valid sentences were rejected", p.BadSentences())
	}
	// Static data flowed through too: some vessel state must carry a
	// name joined from the type 5 cache.
	named := 0
	members, _ := p.Store().ZRangeByScore("vessels:active", 0, 1e18)
	for _, m := range members {
		h, _ := p.Store().HGetAll("vessel:" + m.Member)
		if h["name"] != "" {
			named++
		}
	}
	if named == 0 {
		t.Fatal("no vessel state joined with static info from the wire")
	}
}

func TestIngestNMEARejectsGarbage(t *testing.T) {
	p := newTestPipeline(t)
	bad := []string{
		"",
		"hello world",
		"!AIVDM,1,1,,A,corrupted,0*00",
		"$GPGGA,123519,4807.038,N*47",
	}
	for _, line := range bad {
		if err := p.IngestNMEA(line, time.Now()); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	if p.BadSentences() != int64(len(bad)) {
		t.Fatalf("bad counter %d, want %d", p.BadSentences(), len(bad))
	}
	if s := p.Stats(); s.Messages != 0 {
		t.Fatal("garbage produced messages")
	}
}

func TestIngestNMEAMultiFragmentStatic(t *testing.T) {
	p := newTestPipeline(t)
	sv := ais.StaticVoyage{
		MMSI: 239777000, Name: "WIRE FRAGMENT TEST", ShipType: ais.TypeTanker,
		DimBow: 100, DimStern: 50, DimPort: 15, DimStarb: 15, Draught: 12.1,
	}
	lines, err := ais.Marshal(sv, "A", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatal("type 5 should fragment")
	}
	now := time.Now()
	for _, l := range lines {
		if err := p.IngestNMEA(l, now); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain(2 * time.Second)
	got, ok := p.Static(239777000)
	if !ok || got.Name != "WIRE FRAGMENT TEST" {
		t.Fatalf("static cache after fragments: %+v ok=%v", got, ok)
	}
}

// Command seatwin-train trains the S-VRF model (§4.2, Figure 3) on a
// simulated regional AIS dataset built with the paper's preprocessing
// (30 s downsampling, 20-step windows, six 5-minute targets), prints
// the Table 1 comparison against the linear kinematic baseline and
// saves the trained weights.
//
// Usage:
//
//	seatwin-train [-scale small|full] [-seed 42] [-out s-vrf.gob]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"seatwin/internal/experiments"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", "small (fast) | full (EXPERIMENTS.md scale)")
		seed      = flag.Int64("seed", 42, "dataset seed")
		out       = flag.String("out", "s-vrf.gob", "output model file")
	)
	flag.Parse()

	scale := experiments.Small
	if *scaleFlag == "full" {
		scale = experiments.Full
	}

	start := time.Now()
	log.Printf("recording dataset and training (scale=%s)...", *scaleFlag)
	tm := experiments.TrainSVRF(scale, *seed)
	log.Printf("trained on %d windows from %d vessels (%d messages) in %v",
		tm.TrainWindows, tm.Vessels, tm.Messages, time.Since(start).Round(time.Second))

	fmt.Println()
	fmt.Print(experiments.RunDatasetStats(tm).Format())
	fmt.Println()
	fmt.Print(experiments.RunTable1(tm).Format())

	if err := tm.Model.SaveFile(*out); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("model saved to %s", *out)
}

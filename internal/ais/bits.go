package ais

import "fmt"

// bitWriter packs big-endian bit fields into a byte-aligned buffer, the
// layout ITU-R M.1371 message bodies use.
type bitWriter struct {
	buf  []byte
	nbit int
}

// writeUint appends the low `width` bits of v, most significant first.
func (w *bitWriter) writeUint(v uint64, width int) {
	for i := width - 1; i >= 0; i-- {
		byteIdx := w.nbit / 8
		if byteIdx >= len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// writeInt appends a two's-complement signed field.
func (w *bitWriter) writeInt(v int64, width int) {
	w.writeUint(uint64(v)&((1<<uint(width))-1), width)
}

// writeString appends text in the AIS 6-bit character set, padded with
// '@' (value 0) to exactly chars characters.
func (w *bitWriter) writeString(s string, chars int) {
	for i := 0; i < chars; i++ {
		var c byte
		if i < len(s) {
			c = sixBitFromASCII(s[i])
		}
		w.writeUint(uint64(c), 6)
	}
}

func (w *bitWriter) bits() int { return w.nbit }

// bitReader reads big-endian bit fields.
type bitReader struct {
	buf  []byte
	pos  int
	fail bool
}

func (r *bitReader) readUint(width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		byteIdx := r.pos / 8
		if byteIdx >= len(r.buf) {
			r.fail = true
			return 0
		}
		v <<= 1
		if r.buf[byteIdx]&(1<<uint(7-r.pos%8)) != 0 {
			v |= 1
		}
		r.pos++
	}
	return v
}

func (r *bitReader) readInt(width int) int64 {
	v := r.readUint(width)
	if v&(1<<uint(width-1)) != 0 { // sign extend
		v |= ^uint64(0) << uint(width)
	}
	return int64(v)
}

func (r *bitReader) readString(chars int) string {
	out := make([]byte, 0, chars)
	for i := 0; i < chars; i++ {
		c := asciiFromSixBit(byte(r.readUint(6)))
		out = append(out, c)
	}
	// Trim trailing padding and spaces.
	end := len(out)
	for end > 0 && (out[end-1] == '@' || out[end-1] == ' ') {
		end--
	}
	return string(out[:end])
}

// sixBitFromASCII maps ASCII to the AIS 6-bit character set: '@'..'_'
// map to 0..31 and ' '..'?' map to 32..63. Unrepresentable characters
// become '@' (0). Lowercase letters are folded to uppercase.
func sixBitFromASCII(c byte) byte {
	if c >= 'a' && c <= 'z' {
		c -= 32
	}
	switch {
	case c >= 64 && c < 96:
		return c - 64
	case c >= 32 && c < 64:
		return c
	default:
		return 0
	}
}

// asciiFromSixBit is the inverse of sixBitFromASCII.
func asciiFromSixBit(v byte) byte {
	v &= 0x3f
	if v < 32 {
		return v + 64
	}
	return v
}

// armorEncode converts the packed bits into the NMEA payload alphabet
// (each character carries 6 bits), returning the payload and the count
// of fill bits appended to complete the last character.
func armorEncode(buf []byte, nbit int) (payload string, fillBits int) {
	chars := (nbit + 5) / 6
	fillBits = chars*6 - nbit
	out := make([]byte, chars)
	r := bitReader{buf: buf}
	for i := 0; i < chars; i++ {
		var v byte
		if remaining := nbit - i*6; remaining >= 6 {
			v = byte(r.readUint(6))
		} else {
			v = byte(r.readUint(remaining)) << uint(6-remaining)
			r.pos = nbit
		}
		if v < 40 {
			out[i] = v + 48
		} else {
			out[i] = v + 56
		}
	}
	return string(out), fillBits
}

// armorDecode converts an NMEA payload back into packed bits. fillBits
// must be the sentence's fill field (0..5); it is validated here too so
// the decoder is safe on inputs that bypassed sentence parsing.
func armorDecode(payload string, fillBits int) ([]byte, int, error) {
	return armorDecodeInto(nil, payload, fillBits)
}

// armorDecodeInto is armorDecode writing into dst (grown as needed and
// returned), so decode paths can reuse a pooled buffer instead of
// growing a fresh one per sentence.
func armorDecodeInto(dst []byte, payload string, fillBits int) ([]byte, int, error) {
	if fillBits < 0 || fillBits > 5 {
		return dst, 0, errBadFillBits(fillBits)
	}
	w := bitWriter{buf: dst[:0]}
	for i := 0; i < len(payload); i++ {
		c := payload[i]
		var v byte
		switch {
		case c >= 48 && c < 88:
			v = c - 48
		case c >= 96 && c < 120:
			v = c - 56
		default:
			return w.buf, 0, errBadPayloadChar(c)
		}
		w.writeUint(uint64(v), 6)
	}
	nbit := w.bits() - fillBits
	if nbit < 0 {
		nbit = 0
	}
	return w.buf, nbit, nil
}

type errBadPayloadChar byte

func (e errBadPayloadChar) Error() string {
	return "ais: invalid payload character " + string(rune(e))
}

type errBadFillBits int

func (e errBadFillBits) Error() string {
	return fmt.Sprintf("ais: fill bits %d out of range", int(e))
}

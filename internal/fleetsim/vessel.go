package fleetsim

import (
	"fmt"
	"math/rand"

	"seatwin/internal/ais"
)

// Profile bundles the physical and behavioural parameters of a ship
// type used by the fleet builder.
type Profile struct {
	Type        ais.ShipType
	Class       ais.Class
	CruiseKn    float64 // typical service speed, knots
	SpeedSpread float64 // +- uniform spread on the service speed
	Length      int     // meters
	Beam        int
	Draught     float64
	// MaxTurnRate is the sustained turn rate in degrees per minute; it
	// bounds how quickly the simulated ship can change course, which is
	// what makes dead reckoning fail on manoeuvres.
	MaxTurnRate float64
	// LaneJitterMeters is the lateral spread of individual vessels
	// around their route's lane centerline.
	LaneJitterMeters float64
}

// profiles roughly follow the world-fleet mix that AIS sees.
var profiles = []struct {
	p      Profile
	weight float64
}{
	{Profile{Type: ais.TypeCargo, Class: ais.ClassA, CruiseKn: 13, SpeedSpread: 3, Length: 190, Beam: 28, Draught: 10.5, MaxTurnRate: 18, LaneJitterMeters: 1200}, 0.35},
	{Profile{Type: ais.TypeTanker, Class: ais.ClassA, CruiseKn: 12, SpeedSpread: 2.5, Length: 240, Beam: 40, Draught: 13.5, MaxTurnRate: 12, LaneJitterMeters: 1500}, 0.20},
	{Profile{Type: ais.TypePassenger, Class: ais.ClassA, CruiseKn: 19, SpeedSpread: 4, Length: 150, Beam: 24, Draught: 6.2, MaxTurnRate: 36, LaneJitterMeters: 700}, 0.12},
	{Profile{Type: ais.TypeFishing, Class: ais.ClassA, CruiseKn: 8, SpeedSpread: 3, Length: 28, Beam: 8, Draught: 3.8, MaxTurnRate: 90, LaneJitterMeters: 3500}, 0.15},
	{Profile{Type: ais.TypeTug, Class: ais.ClassA, CruiseKn: 9, SpeedSpread: 2, Length: 32, Beam: 10, Draught: 4.6, MaxTurnRate: 60, LaneJitterMeters: 900}, 0.05},
	{Profile{Type: ais.TypePleasure, Class: ais.ClassB, CruiseKn: 7, SpeedSpread: 4, Length: 14, Beam: 4, Draught: 1.8, MaxTurnRate: 120, LaneJitterMeters: 2500}, 0.13},
}

// Vessel is one simulated ship: identity, static particulars and its
// behavioural profile.
type Vessel struct {
	MMSI     ais.MMSI
	Name     string
	Callsign string
	IMO      uint32
	Profile  Profile
}

// Static renders the vessel's AIS type 5 static-and-voyage message.
func (v Vessel) Static(destination string) ais.StaticVoyage {
	bow := v.Profile.Length * 2 / 3
	port := v.Profile.Beam / 2
	return ais.StaticVoyage{
		MMSI:        v.MMSI,
		IMO:         v.IMO,
		Callsign:    v.Callsign,
		Name:        v.Name,
		ShipType:    v.Profile.Type,
		DimBow:      bow,
		DimStern:    v.Profile.Length - bow,
		DimPort:     port,
		DimStarb:    v.Profile.Beam - port,
		Draught:     v.Profile.Draught,
		Destination: destination,
	}
}

// nameParts builds plausible vessel names deterministically.
var namePrefixes = []string{
	"BLUE", "AEGEAN", "NORDIC", "ATLANTIC", "PACIFIC", "GOLDEN", "SILVER",
	"OCEAN", "STAR", "SEA", "MEDITERRANEAN", "BALTIC", "IONIAN", "ARCTIC",
}
var nameSuffixes = []string{
	"TRADER", "PIONEER", "EXPRESS", "SPIRIT", "HORIZON", "VOYAGER",
	"CARRIER", "GLORY", "FORTUNE", "WAVE", "DAWN", "QUEEN", "LEADER",
}

// pickProfile samples a profile according to the fleet-mix weights.
func pickProfile(rng *rand.Rand) Profile {
	r := rng.Float64()
	acc := 0.0
	for _, e := range profiles {
		acc += e.weight
		if r <= acc {
			return jitterProfile(e.p, rng)
		}
	}
	return jitterProfile(profiles[0].p, rng)
}

func jitterProfile(p Profile, rng *rand.Rand) Profile {
	p.CruiseKn += (rng.Float64()*2 - 1) * p.SpeedSpread
	if p.CruiseKn < 3 {
		p.CruiseKn = 3
	}
	return p
}

// NewVessel builds a deterministic vessel from an index and RNG.
func NewVessel(idx int, rng *rand.Rand) Vessel {
	// MID 237 is Greece; spread the rest over a few realistic MIDs.
	mids := []uint32{237, 229, 241, 248, 255, 271, 311, 355, 477, 538}
	mid := mids[rng.Intn(len(mids))]
	return Vessel{
		MMSI:     ais.MMSI(mid*1000000 + uint32(100000+idx)),
		Name:     fmt.Sprintf("%s %s %d", namePrefixes[rng.Intn(len(namePrefixes))], nameSuffixes[rng.Intn(len(nameSuffixes))], idx%100),
		Callsign: fmt.Sprintf("SV%c%c%d", 'A'+rng.Intn(26), 'A'+rng.Intn(26), idx%10),
		IMO:      uint32(9000000 + idx),
		Profile:  pickProfile(rng),
	}
}

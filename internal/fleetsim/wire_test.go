package fleetsim

import (
	"strings"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

func TestWireFeedProducesValidSentences(t *testing.T) {
	w := NewWorld(Config{Vessels: 30, Seed: 17, Region: geo.AegeanSea, KeepSailing: true})
	feed := NewWireFeed(w)
	asm := ais.NewAssembler()

	positions, statics := 0, 0
	var prev time.Time
	for i := 0; i < 3000; i++ {
		line, ok := feed.Next()
		if !ok {
			t.Fatal("feed dried up")
		}
		if !strings.HasPrefix(line.Line, "!AIVDM,") {
			t.Fatalf("bad sentence %q", line.Line)
		}
		if len(line.Line) > 82 {
			t.Fatalf("sentence exceeds NMEA length: %d", len(line.Line))
		}
		if line.At.Before(prev) {
			t.Fatalf("wire feed out of order: %v < %v", line.At, prev)
		}
		prev = line.At
		s, err := ais.ParseSentence(line.Line)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		msg, err := asm.Push(s, line.At)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		switch m := msg.(type) {
		case ais.PositionReport:
			positions++
			if !m.MMSI.Valid() {
				t.Fatalf("invalid MMSI in %+v", m)
			}
		case ais.StaticVoyage:
			statics++
			// Type 5 and type 24 part A carry the name; part B carries
			// the callsign and dimensions instead.
			if m.Name == "" && m.Callsign == "" && m.Length() == 0 {
				t.Fatalf("static message carries nothing: %+v", m)
			}
		}
	}
	if positions == 0 {
		t.Fatal("no position reports decoded")
	}
	if statics == 0 {
		t.Fatal("no static messages decoded (class A must transmit type 5)")
	}
	// Static cadence: far fewer statics than positions.
	if statics*3 > positions {
		t.Fatalf("static messages too frequent: %d vs %d positions", statics, positions)
	}
}

func TestWireFeedStaticCadence(t *testing.T) {
	w := NewWorld(Config{Vessels: 5, Seed: 3, Region: geo.AegeanSea, KeepSailing: true})
	feed := NewWireFeed(w)
	asm := ais.NewAssembler()
	lastStatic := map[ais.MMSI]time.Time{}
	for i := 0; i < 5000; i++ {
		line, ok := feed.Next()
		if !ok {
			break
		}
		s, err := ais.ParseSentence(line.Line)
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := asm.Push(s, line.At)
		if sv, ok := msg.(ais.StaticVoyage); ok {
			if prev, seen := lastStatic[sv.MMSI]; seen {
				if gap := line.At.Sub(prev); gap < staticInterval-time.Second {
					t.Fatalf("static retransmitted after %v (< %v)", gap, staticInterval)
				}
			}
			lastStatic[sv.MMSI] = line.At
		}
	}
	if len(lastStatic) == 0 {
		t.Fatal("no statics observed")
	}
}

package feed

import (
	"errors"
	"sync/atomic"
)

// Subscription errors.
var (
	// ErrSlowConsumer closes a PolicyDisconnect subscription whose ring
	// overflowed: the consumer could not keep up with the feed.
	ErrSlowConsumer = errors.New("feed: slow consumer disconnected")
	// ErrHubClosed reports a shut-down hub.
	ErrHubClosed = errors.New("feed: hub closed")
	// ErrNoTopics rejects a subscription with an empty topic list.
	ErrNoTopics = errors.New("feed: at least one topic is required")
)

// SubOptions configure one subscription.
type SubOptions struct {
	// Buffer is the ring capacity in frames (<=0 selects the hub
	// default).
	Buffer int
	// Policy selects the overflow behaviour.
	Policy Policy
}

// Delivery is one frame handed to a subscriber: the encoded JSON
// payload plus its type tag ("state" or "event", also present inside
// the payload).
type Delivery struct {
	Type string
	Data []byte
}

// Subscription is one consumer's attachment to the hub. Recv is meant
// for a single consuming goroutine; Close may be called from anywhere.
type Subscription struct {
	hub    *Hub
	id     uint64
	topics []string
	ring   *ring

	// lastSeq dedups a frame matching several of this subscriber's
	// topics within one publish (written under the hub's read lock;
	// sequence numbers are globally unique so concurrent publishes
	// cannot collide).
	lastSeq atomic.Uint64
}

// Topics returns the topics the subscription is attached to.
func (s *Subscription) Topics() []string {
	return append([]string(nil), s.topics...)
}

// Recv blocks until the next frame is available, returning ok=false
// once the subscription is closed (by Close, hub shutdown or the
// disconnect overflow policy — see Err for the reason).
func (s *Subscription) Recv() (Delivery, bool) {
	f, ok := s.ring.pop()
	if !ok {
		return Delivery{}, false
	}
	return Delivery{Type: f.typ, Data: f.data}, true
}

// Err returns why the subscription closed (nil while it is open or
// after a plain consumer-side Close).
func (s *Subscription) Err() error {
	err := s.ring.closeErr()
	if err == errConsumerClosed {
		return nil
	}
	return err
}

// errConsumerClosed marks a deliberate consumer-side Close.
var errConsumerClosed = errors.New("feed: subscription closed")

// Close detaches the subscription from the hub and wakes any blocked
// Recv. It is idempotent.
func (s *Subscription) Close() {
	s.closeWith(errConsumerClosed)
	s.hub.remove(s)
}

// closeWith closes the ring with a reason without touching the hub
// maps (the hub paths remove the subscription themselves).
func (s *Subscription) closeWith(err error) {
	s.ring.closeNow(err)
}

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainConfigs is the shape sweep the compiled-training contracts run
// over: both directions, scalar-fallback hidden sizes (not a multiple
// of 4) and vector-path sizes, including the production S-VRF shape.
func trainConfigs() []Config {
	return []Config{
		{InputDim: 2, Hidden: 5, OutputDim: 3, Seed: 42},                       // scalar path
		{InputDim: 2, Hidden: 5, OutputDim: 3, Bidirectional: true, Seed: 42},  // scalar path
		{InputDim: 3, Hidden: 8, OutputDim: 6, Bidirectional: true, Seed: 7},   // vector path
		{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: true, Seed: 1}, // S-VRF serving shape
	}
}

// refGrads runs the reference gradSample over the samples and returns a
// copy of every parameter block's accumulated gradient.
func refGrads(m *SeqRegressor, samples []Sample) ([][]float64, float64) {
	m.zeroGrad()
	loss := 0.0
	for _, s := range samples {
		loss += m.gradSample(s)
	}
	out := make([][]float64, len(m.matrices()))
	for i, mat := range m.matrices() {
		out[i] = append([]float64(nil), mat.g...)
	}
	return out, loss
}

// TestTrainCompiledGradientParity is the core contract of the compiled
// trainer: for every parameter block, the fused BPTT gradient must
// match the reference BPTT gradient to 1e-8 per element. The only
// difference between the paths is the ~2 ulp fast activations in the
// compiled forward (and FMA/lane-reduction rounding in the kernels),
// which lands many orders of magnitude inside the bound.
func TestTrainCompiledGradientParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for ci, cfg := range trainConfigs() {
		m, err := NewSeqRegressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two reference steps move the weights off initialisation so the
		// contract covers trained-scale parameters.
		warm := randSamples(cfg, 8, rng)
		m.clipNorm = 0
		m.TrainBatch(warm, 1e-2, 1)
		m.TrainBatch(warm, 1e-2, 1)

		samples := randSamples(cfg, 6, rng)
		want, refLoss := refGrads(m, samples)

		tc := m.CompileTrain()
		tc.fw.pack()
		if tc.bw != nil {
			tc.bw.pack()
		}
		tc.ensureWorkers(1)
		w := tc.workers[0]
		gotLoss := 0.0
		for _, s := range samples {
			gotLoss += tc.gradSample(w, s)
		}
		m.zeroGrad()
		tc.scatter(w)

		if diff := math.Abs(gotLoss - refLoss); diff > 1e-8*(1+math.Abs(refLoss)) {
			t.Errorf("config %d: loss %v (compiled) vs %v (reference)", ci, gotLoss, refLoss)
		}
		for bi, mat := range m.matrices() {
			for idx := range mat.g {
				a, b := mat.g[idx], want[bi][idx]
				scale := math.Max(1, math.Abs(a)+math.Abs(b))
				if diff := math.Abs(a - b); diff/scale > 1e-8 || math.IsNaN(a) {
					t.Fatalf("config %d block %d idx %d: compiled grad %v, reference %v (diff %g)",
						ci, bi, idx, a, b, diff)
				}
			}
		}
	}
}

// TestTrainCompiledNumericGradient checks the fused analytic gradients
// against central finite differences of the compiled forward loss — the
// same self-consistency check TestGradientCheck runs on the reference
// path, so the compiled trainer is verified in its own right, not just
// relative to the oracle.
func TestTrainCompiledNumericGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, bidir := range []bool{false, true} {
		cfg := Config{InputDim: 2, Hidden: 8, OutputDim: 3, Bidirectional: bidir, Seed: 23}
		m, err := NewSeqRegressor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := randomSample(rng, 6, cfg.InputDim, cfg.OutputDim)
		tc := m.CompileTrain()
		tc.ensureWorkers(1)
		w := tc.workers[0]

		// compiledLoss re-packs so weight perturbations are visible to
		// the fused blocks.
		compiledLoss := func() float64 {
			tc.fw.pack()
			if tc.bw != nil {
				tc.bw.pack()
			}
			w.zero()
			return tc.gradSample(w, s)
		}

		compiledLoss() // analytic gradients at the base point
		m.zeroGrad()
		tc.scatter(w)

		const eps = 1e-6
		for bi, mat := range m.matrices() {
			for _, idx := range []int{0, len(mat.W) / 2, len(mat.W) - 1} {
				analytic := mat.g[idx]
				orig := mat.W[idx]
				mat.W[idx] = orig + eps
				lp := compiledLoss()
				mat.W[idx] = orig - eps
				lm := compiledLoss()
				mat.W[idx] = orig
				numeric := (lp - lm) / (2 * eps)
				diff := math.Abs(numeric - analytic)
				scale := math.Max(1e-4, math.Abs(numeric)+math.Abs(analytic))
				if diff/scale > 1e-4 {
					t.Errorf("bidir=%v block %d idx %d: analytic %.8f numeric %.8f",
						bidir, bi, idx, analytic, numeric)
				}
			}
		}
		// Restore the fused blocks to the unperturbed weights for any
		// later use of tc in this process.
		tc.fw.pack()
		if tc.bw != nil {
			tc.bw.pack()
		}
	}
}

// TestTrainCompiledLossCurve trains two identically seeded models — one
// through the reference path, one through the compiled path — and
// requires the per-epoch loss curves to agree within a tight relative
// tolerance. The curves cannot be bit-identical (the compiled forward
// uses the fast activations), but the drift stays far below anything
// that changes training behaviour. Clipping is enabled so the clip
// branch of applyStep is exercised identically on both paths.
func TestTrainCompiledLossCurve(t *testing.T) {
	for _, cfg := range trainConfigs() {
		rng := rand.New(rand.NewSource(37))
		data := make([]Sample, 48)
		for i := range data {
			data[i] = randomSample(rng, 6, cfg.InputDim, cfg.OutputDim)
		}
		var refCurve, fastCurve []float64
		opt := FitOptions{Epochs: 5, BatchSize: 16, LR: 0.01, Workers: 1, Seed: 19, ClipNorm: 1.0}

		ref, _ := NewSeqRegressor(cfg)
		opt.Progress = func(_ int, loss float64) bool {
			refCurve = append(refCurve, loss)
			return true
		}
		ref.Fit(data, opt)

		fast, _ := NewSeqRegressor(cfg)
		opt.Progress = func(_ int, loss float64) bool {
			fastCurve = append(fastCurve, loss)
			return true
		}
		fast.CompileTrain().Fit(data, opt)

		if len(refCurve) != len(fastCurve) {
			t.Fatalf("curve lengths differ: %d vs %d", len(refCurve), len(fastCurve))
		}
		for e := range refCurve {
			rel := math.Abs(refCurve[e]-fastCurve[e]) / math.Max(1e-12, math.Abs(refCurve[e]))
			if rel > 1e-4 || math.IsNaN(fastCurve[e]) {
				t.Fatalf("hidden=%d bidir=%v epoch %d: reference loss %v, compiled %v (rel %g)",
					cfg.Hidden, cfg.Bidirectional, e, refCurve[e], fastCurve[e], rel)
			}
		}
		// The trained models must agree on predictions to the same order.
		probe := randomSample(rng, 8, cfg.InputDim, cfg.OutputDim)
		yr, yf := ref.Predict(probe.Seq), fast.Predict(probe.Seq)
		for o := range yr {
			if diff := math.Abs(yr[o] - yf[o]); diff > 1e-4*(1+math.Abs(yr[o])) {
				t.Fatalf("trained prediction diverged at output %d: %v vs %v", o, yr[o], yf[o])
			}
		}
	}
}

// TestTrainCompiledMultiWorkerDeterminism: for a fixed worker count,
// compiled training is exactly reproducible — strided sample
// assignment plus worker-ordered merge leaves no scheduling
// nondeterminism in the result. Run with -race in CI.
func TestTrainCompiledMultiWorkerDeterminism(t *testing.T) {
	cfg := Config{InputDim: 3, Hidden: 8, OutputDim: 4, Bidirectional: true, Seed: 29}
	rng := rand.New(rand.NewSource(41))
	data := make([]Sample, 64)
	for i := range data {
		data[i] = randomSample(rng, 5, cfg.InputDim, cfg.OutputDim)
	}
	opt := FitOptions{Epochs: 3, BatchSize: 16, LR: 0.01, Workers: 3, Seed: 43, ClipNorm: 1.0}
	run := func() (*SeqRegressor, float64) {
		m, _ := NewSeqRegressor(cfg)
		loss := m.CompileTrain().Fit(data, opt)
		return m, loss
	}
	a, la := run()
	b, lb := run()
	if la != lb {
		t.Fatalf("multi-worker losses diverged: %v vs %v", la, lb)
	}
	probe := data[0]
	ya, yb := a.Predict(probe.Seq), b.Predict(probe.Seq)
	for o := range ya {
		if ya[o] != yb[o] {
			t.Fatalf("multi-worker weights diverged at output %d: %v vs %v", o, ya[o], yb[o])
		}
	}
}

// TestTrainBatchReferencePersistentReplicas: the reference multi-worker
// path must also be reproducible with the persistent replicas (clone
// once, sync per batch), and must keep learning.
func TestTrainBatchReferencePersistentReplicas(t *testing.T) {
	cfg := Config{InputDim: 2, Hidden: 6, OutputDim: 3, Bidirectional: true, Seed: 47}
	rng := rand.New(rand.NewSource(53))
	data := make([]Sample, 48)
	for i := range data {
		data[i] = randomSample(rng, 5, cfg.InputDim, cfg.OutputDim)
	}
	opt := FitOptions{Epochs: 3, BatchSize: 16, LR: 0.01, Workers: 3, Seed: 59}
	run := func() (*SeqRegressor, float64) {
		m, _ := NewSeqRegressor(cfg)
		loss := m.Fit(data, opt)
		return m, loss
	}
	a, la := run()
	b, lb := run()
	if la != lb {
		t.Fatalf("reference multi-worker losses diverged: %v vs %v", la, lb)
	}
	ya, yb := a.Predict(data[0].Seq), b.Predict(data[0].Seq)
	for o := range ya {
		if ya[o] != yb[o] {
			t.Fatal("reference multi-worker weights diverged across runs")
		}
	}
	// The same replica set must survive a second Fit on the same model
	// (replicas re-sync, not re-clone) and still track the master.
	if len(a.replicas) != 3 {
		t.Fatalf("expected 3 persistent replicas, have %d", len(a.replicas))
	}
	before := a.replicas[0]
	a.Fit(data, opt)
	if a.replicas[0] != before {
		t.Fatal("replicas were re-allocated across Fit calls")
	}
}

// TestTrainBatchAllocsBounded is the satellite alloc gate: once warmed
// up, the reference TrainBatch must run within a small constant number
// of allocations per step — no per-sample scratch, no per-batch replica
// cloning.
func TestTrainBatchAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	cfg := Config{InputDim: 3, Hidden: 16, OutputDim: 6, Bidirectional: true, Seed: 61}
	rng := rand.New(rand.NewSource(67))
	batch := make([]Sample, 16)
	for i := range batch {
		batch[i] = randomSample(rng, 12, cfg.InputDim, cfg.OutputDim)
	}

	m, _ := NewSeqRegressor(cfg)
	m.TrainBatch(batch, 1e-3, 1) // warm the scratch arenas
	if avg := testing.AllocsPerRun(20, func() {
		m.TrainBatch(batch, 1e-3, 1)
	}); avg > 2 {
		t.Fatalf("single-worker TrainBatch allocates %v per step, want <= 2", avg)
	}

	m2, _ := NewSeqRegressor(cfg)
	m2.TrainBatch(batch, 1e-3, 2) // warm replicas
	// The multi-worker path pays per-goroutine spawn costs but must not
	// re-clone replicas or re-allocate worker scratch.
	if avg := testing.AllocsPerRun(20, func() {
		m2.TrainBatch(batch, 1e-3, 2)
	}); avg > 16 {
		t.Fatalf("two-worker TrainBatch allocates %v per step, want <= 16", avg)
	}
}

// TestTrainCompiledAllocsBounded: the compiled TrainBatch has the same
// steady-state bound.
func TestTrainCompiledAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	cfg := Config{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: true, Seed: 71}
	rng := rand.New(rand.NewSource(73))
	batch := make([]Sample, 16)
	for i := range batch {
		batch[i] = randomSample(rng, 12, cfg.InputDim, cfg.OutputDim)
	}
	m, _ := NewSeqRegressor(cfg)
	tc := m.CompileTrain()
	tc.TrainBatch(batch, 1e-3, 1)
	if avg := testing.AllocsPerRun(20, func() {
		tc.TrainBatch(batch, 1e-3, 1)
	}); avg > 2 {
		t.Fatalf("compiled TrainBatch allocates %v per step, want <= 2", avg)
	}
}

// TestTrainCompiledEdgeShapes exercises the shapes that take the scalar
// fallback or trivial sequences: hidden not a multiple of 4, length-1
// sequences, empty batches, and an empty sequence inside a batch.
func TestTrainCompiledEdgeShapes(t *testing.T) {
	cfg := Config{InputDim: 2, Hidden: 3, OutputDim: 2, Bidirectional: true, Seed: 79}
	m, _ := NewSeqRegressor(cfg)
	tc := m.CompileTrain()
	if got := tc.TrainBatch(nil, 1e-3, 2); got != 0 {
		t.Fatalf("empty batch loss = %v, want 0", got)
	}
	rng := rand.New(rand.NewSource(83))
	batch := []Sample{
		randomSample(rng, 1, 2, 2),
		{Seq: nil, Target: []float64{0, 0}},
		randomSample(rng, 7, 2, 2),
	}
	loss := tc.TrainBatch(batch, 1e-3, 2)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("edge-shape batch produced non-finite loss %v", loss)
	}
	// And training still learns through the compiled path on the scalar
	// fallback shape.
	data := make([]Sample, 64)
	for i := range data {
		s := randomSample(rng, 5, 2, 2)
		s.Target[0] = s.Seq[0][0]
		s.Target[1] = s.Seq[len(s.Seq)-1][1]
		data[i] = s
	}
	before := m.MSE(data)
	tc.Fit(data, FitOptions{Epochs: 40, BatchSize: 16, LR: 0.02, Workers: 1, Seed: 89})
	if after := m.MSE(data); after > before*0.3 {
		t.Fatalf("compiled training on scalar path did not learn: %v -> %v", before, after)
	}
}

// BenchmarkTrainBatchPaths compares one optimisation step on the
// serving-shape model across the four path/worker combinations the
// BENCH_PR8 harness records.
func BenchmarkTrainBatchPaths(b *testing.B) {
	cfg := Config{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: true, Seed: 1}
	rng := rand.New(rand.NewSource(20))
	batch := make([]Sample, 32)
	for i := range batch {
		batch[i] = randomSample(rng, 20, 3, 12)
	}
	for _, bc := range []struct {
		name     string
		compiled bool
		workers  int
	}{
		{"Reference/workers=1", false, 1},
		{"Reference/workers=2", false, 2},
		{"Compiled/workers=1", true, 1},
		{"Compiled/workers=2", true, 2},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m, _ := NewSeqRegressor(cfg)
			var tc *TrainCompiled
			if bc.compiled {
				tc = m.CompileTrain()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tc != nil {
					tc.TrainBatch(batch, 1e-3, bc.workers)
				} else {
					m.TrainBatch(batch, 1e-3, bc.workers)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(batch)), "ns/sample")
		})
	}
}

// Package experiments implements the paper's evaluation section (§6)
// end to end: every table and figure has a Run function returning a
// structured result plus a formatter that prints the same rows the
// paper reports. The eval CLI and the repository's benchmark harness
// share this code, so numbers printed by either come from the same
// path.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"seatwin/internal/events"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/svrf"
	"seatwin/internal/traj"
)

// Scale selects the experiment size: Small keeps CI fast, Full matches
// the defaults the EXPERIMENTS.md numbers were produced with.
type Scale int

// Scales.
const (
	Small Scale = iota
	Full
)

// TrainedModel holds a model and the held-out windows it was not
// trained on, for reuse across experiments.
type TrainedModel struct {
	Model *svrf.Model
	Test  []traj.Window
	// TrainWindows and Messages describe the dataset (§6.1 reporting).
	TrainWindows int
	Messages     int
	Vessels      int
	// IntervalMean and IntervalStd are the post-downsampling sampling
	// statistics of the training stream.
	IntervalMean float64
	IntervalStd  float64
}

// TrainSVRF records a regional dataset, preprocesses it with the
// paper's tensor geometry and trains the S-VRF model.
func TrainSVRF(scale Scale, seed int64) TrainedModel {
	vessels, hours, epochs := 120, 8*time.Hour, 14
	if scale == Full {
		vessels, hours, epochs = 250, 10*time.Hour, 20
	}
	ds := fleetsim.Record(geo.AegeanSea, vessels, hours, seed)
	cfg := traj.DefaultConfig()
	var windows []traj.Window
	for _, tr := range ds.Tracks {
		windows = append(windows, traj.BuildWindows(tr.Reports, cfg)...)
	}
	train, _, test := traj.Split(windows, 0.5, 0.25, 7)

	m, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		panic(err) // static config, cannot fail
	}
	opt := svrf.DefaultTrainOptions()
	opt.Epochs = epochs
	m.Train(train, opt)
	if scale == Full {
		opt.Epochs = 10
		opt.LR = 4e-4
		m.Train(train, opt)
	}

	// Interval statistics after the 30-second downsampling (§6.1).
	var sum, sumSq float64
	n := 0
	for _, tr := range ds.Tracks {
		d := traj.Downsample(tr.Reports, cfg.Downsample)
		for i := 1; i < len(d); i++ {
			dt := d[i].Timestamp.Sub(d[i-1].Timestamp).Seconds()
			sum += dt
			sumSq += dt * dt
			n++
		}
	}
	mean, std := 0.0, 0.0
	if n > 0 {
		mean = sum / float64(n)
		if v := sumSq/float64(n) - mean*mean; v > 0 {
			std = math.Sqrt(v)
		}
	}
	return TrainedModel{
		Model:        m,
		Test:         test,
		TrainWindows: len(train),
		Messages:     ds.Messages(),
		Vessels:      len(ds.Tracks),
		IntervalMean: mean,
		IntervalStd:  std,
	}
}

// Table1Row is one horizon of Table 1.
type Table1Row struct {
	Horizon   time.Duration
	Kinematic float64 // ADE meters
	SVRF      float64
	DiffPct   float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows     []Table1Row
	MeanKin  float64
	MeanSVRF float64
	MeanDiff float64
	TestSize int
}

// RunTable1 evaluates both predictors on the held-out windows.
func RunTable1(tm TrainedModel) Table1Result {
	kin := svrf.NewKinematic()
	deK := svrf.EvaluateADE(kin, tm.Test)
	deM := svrf.EvaluateADE(tm.Model, tm.Test)
	res := Table1Result{TestSize: len(tm.Test)}
	for h := 0; h < deK.Horizons(); h++ {
		k, s := deK.ADE(h), deM.ADE(h)
		diff := 0.0
		if k > 0 {
			diff = (s - k) / k * 100
		}
		res.Rows = append(res.Rows, Table1Row{
			Horizon:   time.Duration(h+1) * 5 * time.Minute,
			Kinematic: k,
			SVRF:      s,
			DiffPct:   diff,
		})
	}
	res.MeanKin = deK.MeanADE()
	res.MeanSVRF = deM.MeanADE()
	if res.MeanKin > 0 {
		res.MeanDiff = (res.MeanSVRF - res.MeanKin) / res.MeanKin * 100
	}
	return res
}

// Format renders the Table 1 layout.
func (r Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: S-VRF vs Linear Kinematic, ADE (m) over %d test windows\n", r.TestSize)
	fmt.Fprintf(&b, "%-12s %12s %10s %12s\n", "horizon", "Kinematic", "S-VRF", "Difference")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "t = %-8s %12.1f %10.1f %+11.1f%%\n",
			row.Horizon, row.Kinematic, row.SVRF, row.DiffPct)
	}
	fmt.Fprintf(&b, "%-12s %12.1f %10.1f %+11.1f%%\n", "Mean ADE", r.MeanKin, r.MeanSVRF, r.MeanDiff)
	return b.String()
}

// Table2Row is one experiment of Table 2.
type Table2Row struct {
	Dataset    string
	Model      string
	Threshold  time.Duration
	Truth      int
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
	Accuracy   float64
}

// Table2Result reproduces Table 2 (eight rows).
type Table2Result struct {
	Rows     []Table2Row
	Vessels  int
	Events   int
	Messages int
	SubA     int
	SubB     int
}

// RunTable2 generates the proximity scenario and evaluates the
// collision forecaster with both prediction models across the paper's
// grid of datasets and temporal thresholds.
func RunTable2(tm TrainedModel, seed int64) Table2Result {
	cfg := fleetsim.DefaultProximityConfig()
	cfg.Seed = seed
	prox := fleetsim.GenerateProximity(cfg)

	kin := events.NewKinematicForecaster()
	mfc := events.SVRFForecaster{Model: tm.Model}
	subA := prox.EventsWithin(2 * time.Minute)
	subB := prox.EventsWithin(5 * time.Minute)

	grid := []struct {
		name     string
		truth    []fleetsim.ProximityEvent
		restrict bool
		thr      time.Duration
	}{
		{"All Events", prox.Truth, false, 2 * time.Minute},
		{"All Events", prox.Truth, false, 5 * time.Minute},
		{"Sub dataset A", subA, true, 2 * time.Minute},
		{"Sub dataset B", subB, true, 5 * time.Minute},
	}
	res := Table2Result{
		Vessels:  len(prox.Vessels),
		Events:   len(prox.Truth),
		Messages: prox.Messages(),
		SubA:     len(subA),
		SubB:     len(subB),
	}
	for _, g := range grid {
		for _, fc := range []events.TrackForecaster{kin, mfc} {
			ev := events.EvaluateCollision(prox, fc, g.truth, g.restrict, g.thr, g.name)
			res.Rows = append(res.Rows, Table2Row{
				Dataset:   g.name,
				Model:     fc.Name(),
				Threshold: g.thr,
				Truth:     ev.TruthEvents,
				TP:        ev.TP, FP: ev.FP, FN: ev.FN,
				Precision: ev.Precision(),
				Recall:    ev.Recall(),
				F1:        ev.F1(),
				Accuracy:  ev.Accuracy(),
			})
		}
	}
	return res
}

// Format renders the Table 2 layout.
func (r Table2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: collision forecasting on the synthetic proximity dataset\n")
	fmt.Fprintf(&b, "(%d vessels, %d ground-truth events, %d AIS messages; sub A: %d, sub B: %d)\n",
		r.Vessels, r.Events, r.Messages, r.SubA, r.SubB)
	fmt.Fprintf(&b, "%-14s %-18s %5s %6s %4s %4s %4s %10s %7s %9s %9s\n",
		"Dataset", "Model", "Thr", "Events", "TP", "FP", "FN", "Precision", "Recall", "F1-Score", "Accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-18s %5s %6d %4d %4d %4d %10.2f %7.2f %9.2f %9.2f\n",
			row.Dataset, row.Model, row.Threshold, row.Truth,
			row.TP, row.FP, row.FN, row.Precision, row.Recall, row.F1, row.Accuracy)
	}
	return b.String()
}

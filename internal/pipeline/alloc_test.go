package pipeline

import (
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/kvstore"
)

// noForecast is the ablation forecaster of the steady-state alloc gate:
// it refuses every forecast so the measurement isolates the ingest and
// state-write path from model output size.
type noForecast struct{}

func (noForecast) Name() string { return "none" }
func (noForecast) ForecastTrack([]ais.PositionReport) (events.Forecast, bool) {
	return events.Forecast{}, false
}

// TestIngestSteadyStateAllocs gates the tentpole: a steady-state ingest
// (warm actor, full history window, no forecast, no fan-out) must stay
// within the PR's alloc budget per report, end to end through the
// writer's store write. The budget is deliberately above the measured
// value (~5/op) but far below the ~140/op the unbatched map-encoding
// path cost — a regression that reintroduces per-report key building,
// map documents or RFC3339 Format calls trips it immediately.
func TestIngestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs quiesced runs")
	}
	cfg := DefaultConfig(noForecast{})
	cfg.DisableEventFanout = true
	cfg.CheckpointInterval = -1
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	const mmsi ais.MMSI = 239000555
	// Warm up past the history limit so the window slides in place.
	feedTrack(p, mmsi, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, cfg.HistoryLimit+8, time.Second, t0)
	p.Drain(5 * time.Second)

	const batch = 100
	tick := 0
	base := t0.Add(24 * time.Hour)
	avg := testing.AllocsPerRun(20, func() {
		for j := 0; j < batch; j++ {
			tick++
			at := base.Add(time.Duration(tick) * time.Second)
			p.Ingest(ais.PositionReport{
				MMSI: mmsi, Lat: 37.5, Lon: 24.5, SOG: 12, COG: 90,
				Status: ais.StatusUnderWayEngine, Timestamp: at,
			}, at)
		}
		p.Drain(5 * time.Second)
	})
	perReport := avg / batch
	t.Logf("steady-state ingest: %.2f allocs/report", perReport)
	if perReport > 16 {
		t.Errorf("steady-state ingest allocates %.2f/report, budget 16", perReport)
	}
}

// TestFieldEncoderAllocs gates the writer's state encoding: a full
// vessel document (position, status, timestamp, forecast, static info)
// must cost exactly one allocation — the single buffer-to-string
// conversion in finish.
func TestFieldEncoderAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs uninstrumented runs")
	}
	report := ais.PositionReport{
		MMSI: 239000556, Lat: 37.51234, Lon: 24.54321, SOG: 12.3, COG: 89.9,
		Status: ais.StatusUnderWayEngine, Timestamp: t0,
	}
	forecast := []events.ForecastPoint{
		{Pos: geo.Point{Lat: 37.52, Lon: 24.56}, At: t0.Add(5 * time.Minute)},
		{Pos: geo.Point{Lat: 37.53, Lon: 24.58}, At: t0.Add(10 * time.Minute)},
	}
	var enc fieldEncoder
	var fields []kvstore.Field
	avg := testing.AllocsPerRun(100, func() {
		enc.reset()
		enc.buf = append(enc.buf, '1') // non-trivial starting point
		enc.commit("pad")
		enc.buf = appendForecast(enc.buf, forecast)
		enc.commit("forecast")
		enc.direct("status", report.Status.String())
		enc.buf = report.Timestamp.UTC().AppendFormat(enc.buf, time.RFC3339)
		enc.commit("ts")
		fields = enc.finish()
	})
	t.Logf("field encoding: %.2f allocs/document", avg)
	if avg > 1 {
		t.Errorf("field encoding allocates %.2f/document, want <= 1", avg)
	}
	if len(fields) != 4 || fields[1].Name != "forecast" || fields[2].Value != report.Status.String() {
		t.Fatalf("unexpected document: %+v", fields)
	}
}

// TestWriteStateAllocs bounds the whole writeState call (encoding plus
// the two retried store writes) on a warm writer with cached keys.
func TestWriteStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs uninstrumented runs")
	}
	cfg := DefaultConfig(noForecast{})
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	w := &writerActor{p: p}
	msg := stateMsg{
		report: ais.PositionReport{
			MMSI: 239000557, Lat: 37.5, Lon: 24.5, SOG: 12, COG: 90,
			Status: ais.StatusUnderWayEngine, Timestamp: t0,
		},
		forecast: []events.ForecastPoint{
			{Pos: geo.Point{Lat: 37.52, Lon: 24.56}, At: t0.Add(5 * time.Minute)},
		},
	}
	w.writeState(msg) // warm the key cache and store entries
	avg := testing.AllocsPerRun(100, func() {
		w.writeState(msg)
	})
	t.Logf("writeState: %.2f allocs/state", avg)
	if avg > 8 {
		t.Errorf("writeState allocates %.2f/state, budget 8", avg)
	}
}

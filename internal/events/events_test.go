package events

import (
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

var t0 = time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)

// lineForecast builds a straight forecast: 7 points from start along
// bearing at the given speed, 5 minutes apart.
func lineForecast(mmsi ais.MMSI, start geo.Point, bearing, sog float64, startAt time.Time) Forecast {
	f := Forecast{MMSI: mmsi}
	for h := 0; h <= 6; h++ {
		dt := time.Duration(h) * 5 * time.Minute
		f.Points = append(f.Points, ForecastPoint{
			Pos: geo.DeadReckon(start, sog, bearing, dt.Seconds()),
			At:  startAt.Add(dt),
		})
	}
	return f
}

func TestCheckPairHeadOnCollision(t *testing.T) {
	// Two vessels 6 NM apart closing head-on at 12 kn each: they meet
	// after 15 minutes.
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	a := lineForecast(1, geo.DeadReckon(meet, 12, 270, 900), 90, 12, t0)
	b := lineForecast(2, geo.DeadReckon(meet, 12, 90, 900), 270, 12, t0)
	cfg := DefaultCollisionConfig()
	e, ok := CheckPair(a, b, cfg)
	if !ok {
		t.Fatal("head-on collision not detected")
	}
	if e.Meters > 300 {
		t.Fatalf("predicted separation %.0f m", e.Meters)
	}
	wantAt := t0.Add(15 * time.Minute)
	if d := e.At.Sub(wantAt); d < -time.Minute || d > time.Minute {
		t.Fatalf("estimated time %v, want ~%v", e.At, wantAt)
	}
	if d := geo.Haversine(e.Pos, meet); d > 1000 {
		t.Fatalf("estimated position %.0f m from meeting point", d)
	}
}

func TestCheckPairCrossingWithinThreshold(t *testing.T) {
	// Crossing tracks; vessel B reaches the crossing 90 s after A —
	// inside a 2-minute temporal threshold.
	cross := geo.Point{Lat: 37.0, Lon: 25.0}
	a := lineForecast(1, geo.DeadReckon(cross, 10, 180, 600), 0, 10, t0)
	bStart := geo.DeadReckon(cross, 10, 270, 600+90)
	b := lineForecast(2, bStart, 90, 10, t0)
	e, ok := CheckPair(a, b, DefaultCollisionConfig())
	if !ok {
		t.Fatalf("crossing within temporal threshold not detected")
	}
	if e.Meters > 800 {
		t.Fatalf("separation %.0f m", e.Meters)
	}
}

func TestCheckPairCrossingOutsideThresholdRejected(t *testing.T) {
	// Same crossing geometry but B trails A by 20 minutes: even with the
	// +-2 minute clock slide the vessels are never within 1 NM of each
	// other at temporally-compatible instants, so this must NOT fire.
	cross := geo.Point{Lat: 37.0, Lon: 25.0}
	a := lineForecast(1, geo.DeadReckon(cross, 10, 180, 600), 0, 10, t0)
	bStart := geo.DeadReckon(cross, 10, 270, 600+1200)
	b := lineForecast(2, bStart, 90, 10, t0)
	if e, ok := CheckPair(a, b, DefaultCollisionConfig()); ok {
		t.Fatalf("crossing 20 minutes apart must not be a collision (sep %.0f m)", e.Meters)
	}
}

func TestCheckPairParallelFarApart(t *testing.T) {
	a := lineForecast(1, geo.Point{Lat: 37.0, Lon: 24.0}, 0, 12, t0)
	b := lineForecast(2, geo.Point{Lat: 37.0, Lon: 24.5}, 0, 12, t0) // ~44 km east
	if _, ok := CheckPair(a, b, DefaultCollisionConfig()); ok {
		t.Fatal("parallel distant tracks must not collide")
	}
}

func TestCheckPairEmptyForecast(t *testing.T) {
	a := lineForecast(1, geo.Point{Lat: 37, Lon: 24}, 0, 12, t0)
	if _, ok := CheckPair(a, Forecast{MMSI: 2}, DefaultCollisionConfig()); ok {
		t.Fatal("empty forecast must not collide")
	}
}

func TestDetectorPairwiseAndExpiry(t *testing.T) {
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	d := NewDetector(DefaultCollisionConfig(), 10*time.Minute)
	a := lineForecast(1, geo.DeadReckon(meet, 12, 270, 900), 90, 12, t0)
	b := lineForecast(2, geo.DeadReckon(meet, 12, 90, 900), 270, 12, t0)

	if evs := d.Update(a, t0); len(evs) != 0 {
		t.Fatal("first forecast has no peers")
	}
	evs := d.Update(b, t0.Add(time.Second))
	if len(evs) != 1 {
		t.Fatalf("expected one collision, got %d", len(evs))
	}
	if evs[0].PairKey() != (Event{A: 1, B: 2}).PairKey() {
		t.Fatalf("wrong pair %s", evs[0].PairKey())
	}
	if d.Size() != 2 {
		t.Fatalf("detector holds %d forecasts", d.Size())
	}
	// Past the expiry horizon both old forecasts are evicted; only the
	// fresh vessel remains.
	late := t0.Add(30 * time.Minute)
	c := lineForecast(3, geo.Point{Lat: 39, Lon: 23}, 0, 10, late)
	d.Update(c, late)
	if d.Size() != 1 {
		t.Fatalf("stale forecasts not evicted: size %d", d.Size())
	}
}

func TestProximityDetector(t *testing.T) {
	p := NewProximityDetector(DefaultProximityConfig())
	base := geo.Point{Lat: 37.5, Lon: 24.5}

	if evs := p.Update(1, base, t0); len(evs) != 0 {
		t.Fatal("single vessel cannot be in proximity")
	}
	// Vessel 2 reports 300 m away, 20 s later: proximity.
	evs := p.Update(2, geo.Destination(base, 90, 300), t0.Add(20*time.Second))
	if len(evs) != 1 {
		t.Fatalf("expected proximity event, got %d", len(evs))
	}
	if evs[0].Meters > 500 || evs[0].Kind != KindProximity {
		t.Fatalf("event = %+v", evs[0])
	}
	// Immediate repeat is suppressed by the cooldown.
	if evs := p.Update(1, base, t0.Add(30*time.Second)); len(evs) != 0 {
		t.Fatalf("cooldown violated: %d events", len(evs))
	}
	// A distant vessel triggers nothing.
	if evs := p.Update(3, geo.Destination(base, 0, 5000), t0.Add(40*time.Second)); len(evs) != 0 {
		t.Fatal("distant vessel must not trigger proximity")
	}
}

func TestProximityTimeWindow(t *testing.T) {
	p := NewProximityDetector(ProximityConfig{
		ThresholdMeters: 500, TimeWindow: time.Minute, Cooldown: time.Hour,
	})
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	p.Update(1, base, t0)
	// Same spot but 5 minutes later: stale, not a proximity event.
	if evs := p.Update(2, base, t0.Add(5*time.Minute)); len(evs) != 0 {
		t.Fatal("reports 5 minutes apart must not pair within a 1-minute window")
	}
}

func TestSwitchOffDetector(t *testing.T) {
	s := NewSwitchOffDetector(DefaultSwitchOffConfig())
	pos := geo.Point{Lat: 37.5, Lon: 24.5}
	// Establish a 60 s cadence.
	at := t0
	for i := 0; i < 10; i++ {
		if _, fired := s.Update(9, pos, at); fired {
			t.Fatal("regular cadence must not fire")
		}
		at = at.Add(time.Minute)
	}
	// 2-hour silence: switch-off.
	at = at.Add(2 * time.Hour)
	e, fired := s.Update(9, pos, at)
	if !fired {
		t.Fatal("2-hour silence after 60 s cadence must fire")
	}
	if e.Kind != KindSwitchOff || e.A != 9 {
		t.Fatalf("event = %+v", e)
	}
	// The event is stamped at the silence start.
	if e.At.After(e.DetectedAt) || at.Sub(e.At) < 2*time.Hour {
		t.Fatalf("event timing: at=%v detected=%v", e.At, e.DetectedAt)
	}
	// Cadence survives the anomaly: another regular gap does not fire.
	if _, fired := s.Update(9, pos, at.Add(time.Minute)); fired {
		t.Fatal("regular report after anomaly must not fire")
	}
}

func TestSwitchOffNotFiredForSlowCadence(t *testing.T) {
	// A class B vessel reporting every 6 minutes must tolerate a
	// 30-minute gap (only 5x its cadence).
	s := NewSwitchOffDetector(DefaultSwitchOffConfig())
	pos := geo.Point{Lat: 37.5, Lon: 24.5}
	at := t0
	for i := 0; i < 6; i++ {
		s.Update(9, pos, at)
		at = at.Add(6 * time.Minute)
	}
	at = at.Add(31 * time.Minute)
	if _, fired := s.Update(9, pos, at); fired {
		t.Fatal("31-minute gap at 6-minute cadence must not fire (factor 20)")
	}
}

func TestSwitchOffSilentPolling(t *testing.T) {
	s := NewSwitchOffDetector(DefaultSwitchOffConfig())
	pos := geo.Point{Lat: 37.5, Lon: 24.5}
	at := t0
	for i := 0; i < 5; i++ {
		s.Update(9, pos, at)
		at = at.Add(30 * time.Second)
	}
	if s.Silent(at.Add(5 * time.Minute)) {
		t.Fatal("5-minute silence below MinSilence must not flag")
	}
	if !s.Silent(at.Add(2 * time.Hour)) {
		t.Fatal("2-hour silence must flag on polling")
	}
}

func TestEventLog(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Kind: KindProximity, A: ais.MMSI(i + 1), At: t0.Add(time.Duration(i) * time.Minute)})
	}
	if l.Total() != 10 {
		t.Fatalf("total %d", l.Total())
	}
	recent := l.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("retained %d", len(recent))
	}
	if recent[3].A != 10 || recent[0].A != 7 {
		t.Fatalf("wrong retention window: %v..%v", recent[0].A, recent[3].A)
	}
	l.Append(Event{Kind: KindSwitchOff, A: 99})
	if got := l.ByKind(KindSwitchOff); len(got) != 1 || got[0].A != 99 {
		t.Fatalf("by kind: %v", got)
	}
}

func TestPairKeyOrderIndependent(t *testing.T) {
	a := Event{A: 5, B: 9}
	b := Event{A: 9, B: 5}
	if a.PairKey() != b.PairKey() {
		t.Fatal("pair key must be order independent")
	}
}

func TestKinematicForecasterGeometry(t *testing.T) {
	fc := NewKinematicForecaster()
	if fc.Name() == "" {
		t.Fatal("forecaster must have a name")
	}
	history := []ais.PositionReport{{
		MMSI: 7, Lat: 37.5, Lon: 24.5, SOG: 12, COG: 90, Timestamp: t0,
	}}
	f, ok := fc.ForecastTrack(history)
	if !ok || len(f.Points) != 7 {
		t.Fatalf("forecast: ok=%v points=%d", ok, len(f.Points))
	}
	if f.Points[0].At != t0 {
		t.Fatal("first point must be the present position")
	}
	// 12 kn for 30 min = 6 NM east.
	want := geo.DeadReckon(geo.Point{Lat: 37.5, Lon: 24.5}, 12, 90, 1800)
	if d := geo.Haversine(f.Points[6].Pos, want); d > 1 {
		t.Fatalf("final point off by %.1f m", d)
	}
	if _, ok := fc.ForecastTrack(nil); ok {
		t.Fatal("empty history must fail")
	}
}

func BenchmarkCheckPair(b *testing.B) {
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	a := lineForecast(1, geo.DeadReckon(meet, 12, 270, 900), 90, 12, t0)
	bb := lineForecast(2, geo.DeadReckon(meet, 12, 90, 900), 270, 12, t0)
	cfg := DefaultCollisionConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CheckPair(a, bb, cfg)
	}
}

func BenchmarkCheckPairFarApart(b *testing.B) {
	a := lineForecast(1, geo.Point{Lat: 37, Lon: 24}, 0, 12, t0)
	bb := lineForecast(2, geo.Point{Lat: 40, Lon: 28}, 0, 12, t0)
	cfg := DefaultCollisionConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CheckPair(a, bb, cfg)
	}
}

func BenchmarkProximityUpdate(b *testing.B) {
	p := NewProximityDetector(DefaultProximityConfig())
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	for i := 0; i < 50; i++ {
		p.Update(ais.MMSI(i+1), geo.Destination(base, float64(i*7), float64(i)*200), t0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Update(999, base, t0.Add(time.Duration(i)*time.Millisecond))
	}
}

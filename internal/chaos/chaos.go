// Package chaos injects configurable faults into the seams the
// pipeline depends on — the kvstore the writer actors persist into,
// the broker produce/consume path, and the forecaster interface — so
// the durability layer (checkpoints, retry/backoff, degraded modes)
// can be exercised deliberately instead of waiting for production to
// do it. The wrappers are plain decorators over the real
// implementations: a fault is an injected error, an injected latency,
// a panic, or a broker retention truncation, each fired with a
// configured probability from a seeded source so chaos runs are
// reproducible.
//
// Faults are injected only at points where the real system could fail
// the same way, and never where they would silently lose committed
// state: a consumer fault stalls the poll (transient broker outage)
// rather than discarding fetched-but-uncommitted records, so
// at-least-once delivery holds even under chaos.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/events"
	"seatwin/internal/kvstore"
)

// ErrInjected is the error every injected fault returns; callers can
// distinguish chaos from real middleware failures in logs and tests.
var ErrInjected = errors.New("chaos: injected fault")

// Policy configures the fault mix. The zero value injects nothing.
type Policy struct {
	// ErrorRate is the probability ([0,1]) that an operation returns
	// ErrInjected (or, for error-free signatures, degrades: an empty
	// poll batch, a skipped publish, a refused forecast).
	ErrorRate float64
	// PanicRate is the probability that an operation panics — the
	// crash-shaped fault actor supervision and the consume loop's
	// recovery path must absorb.
	PanicRate float64
	// Latency is the maximum injected delay per operation, drawn
	// uniformly from [0, Latency]. Zero injects no delay.
	Latency time.Duration
	// TruncateRate is the probability that a produce additionally
	// triggers a retention truncation of the topic (the broker keeps
	// TruncateKeep records per partition), exercising the consumers'
	// offset-snap-forward path.
	TruncateRate float64
	// TruncateKeep is the per-partition retention applied when a
	// truncation fires (<=0 selects 1024).
	TruncateKeep int
	// Seed makes the fault sequence reproducible (0 selects 1).
	Seed int64
}

// Enabled reports whether the policy injects any fault at all.
func (p Policy) Enabled() bool {
	return p.ErrorRate > 0 || p.PanicRate > 0 || p.Latency > 0 || p.TruncateRate > 0
}

// ParseSpec parses the -chaos flag format: a comma-separated list of
// key=value pairs, e.g. "error=0.1,latency=5ms,panic=0.001,
// truncate=0.01,keep=2048,seed=7". Unknown keys are an error; an empty
// spec or "off" is the zero policy.
func ParseSpec(spec string) (Policy, error) {
	var p Policy
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Policy{}, fmt.Errorf("chaos: spec entry %q is not key=value", kv)
		}
		var err error
		switch k {
		case "error":
			p.ErrorRate, err = parseRate(v)
		case "panic":
			p.PanicRate, err = parseRate(v)
		case "truncate":
			p.TruncateRate, err = parseRate(v)
		case "latency":
			p.Latency, err = time.ParseDuration(v)
			if err == nil && p.Latency < 0 {
				err = fmt.Errorf("negative latency")
			}
		case "keep":
			p.TruncateKeep, err = strconv.Atoi(v)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return Policy{}, fmt.Errorf("chaos: unknown spec key %q", k)
		}
		if err != nil {
			return Policy{}, fmt.Errorf("chaos: spec %s=%q: %v", k, v, err)
		}
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", v)
	}
	return v, nil
}

// Stats counts the faults an injector has fired.
type Stats struct {
	Errors      int64
	Panics      int64
	Delays      int64
	Truncations int64
}

// Injector rolls the dice for every wrapped operation. All methods are
// safe for concurrent use, and all are no-ops on a nil receiver so
// call sites don't need to special-case "chaos off".
type Injector struct {
	policy Policy

	mu  sync.Mutex
	rnd *rand.Rand

	errors      atomic.Int64
	panics      atomic.Int64
	delays      atomic.Int64
	truncations atomic.Int64
}

// New builds an injector from the policy.
func New(p Policy) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	if p.TruncateKeep <= 0 {
		p.TruncateKeep = 1024
	}
	return &Injector{policy: p, rnd: rand.New(rand.NewSource(seed))}
}

// Policy returns the configured fault mix (zero for nil).
func (in *Injector) Policy() Policy {
	if in == nil {
		return Policy{}
	}
	return in.policy
}

// Stats snapshots the fault counters (zero for nil).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Errors:      in.errors.Load(),
		Panics:      in.panics.Load(),
		Delays:      in.delays.Load(),
		Truncations: in.truncations.Load(),
	}
}

// roll draws a uniform float under the injector's lock.
func (in *Injector) roll() float64 {
	in.mu.Lock()
	v := in.rnd.Float64()
	in.mu.Unlock()
	return v
}

// delay sleeps the injected latency, if any.
func (in *Injector) delay() {
	if in == nil || in.policy.Latency <= 0 {
		return
	}
	in.delays.Add(1)
	d := time.Duration(in.roll() * float64(in.policy.Latency))
	time.Sleep(d)
}

// fault applies latency, then possibly panics, then possibly returns
// ErrInjected — the standard prelude of every wrapped operation. op
// names the operation in the panic message.
func (in *Injector) fault(op string) error {
	if in == nil || !in.policy.Enabled() {
		return nil
	}
	in.delay()
	if in.policy.PanicRate > 0 && in.roll() < in.policy.PanicRate {
		in.panics.Add(1)
		panic("chaos: injected panic in " + op)
	}
	if in.policy.ErrorRate > 0 && in.roll() < in.policy.ErrorRate {
		in.errors.Add(1)
		return fmt.Errorf("%w (%s)", ErrInjected, op)
	}
	return nil
}

// KV wraps the state store with fault injection on the operations the
// pipeline's writer and checkpoint paths use. Reads and writes both
// fault — rehydration must survive a failing load as gracefully as a
// writer survives a failing write.
type KV struct {
	inner *kvstore.Store
	in    *Injector
}

// WrapKV decorates a store.
func WrapKV(s *kvstore.Store, in *Injector) *KV { return &KV{inner: s, in: in} }

// Inner returns the wrapped store (the API's fault-free read side).
func (k *KV) Inner() *kvstore.Store { return k.inner }

// HSetMulti implements the batched hash write with faults.
func (k *KV) HSetMulti(key string, fields map[string]string) (int, error) {
	if err := k.in.fault("kv.HSetMulti"); err != nil {
		return 0, err
	}
	return k.inner.HSetMulti(key, fields)
}

// HSetFields implements the slice-based batched hash write with faults.
func (k *KV) HSetFields(key string, fields []kvstore.Field) (int, error) {
	if err := k.in.fault("kv.HSetFields"); err != nil {
		return 0, err
	}
	return k.inner.HSetFields(key, fields)
}

// HGetAll implements the hash read with faults.
func (k *KV) HGetAll(key string) (map[string]string, error) {
	if err := k.in.fault("kv.HGetAll"); err != nil {
		return nil, err
	}
	return k.inner.HGetAll(key)
}

// ZAdd implements the sorted-set insert with faults.
func (k *KV) ZAdd(key string, score float64, member string) (bool, error) {
	if err := k.in.fault("kv.ZAdd"); err != nil {
		return false, err
	}
	return k.inner.ZAdd(key, score, member)
}

// Publish implements the pub/sub publish; an injected fault drops the
// delivery (pub/sub is lossy by contract, so this degrades rather
// than errors).
func (k *KV) Publish(channel, payload string) int {
	if err := k.in.fault("kv.Publish"); err != nil {
		return 0
	}
	return k.inner.Publish(channel, payload)
}

// Del implements key deletion; an injected fault deletes nothing.
func (k *KV) Del(keys ...string) int {
	if err := k.in.fault("kv.Del"); err != nil {
		return 0
	}
	return k.inner.Del(keys...)
}

// Producer wraps broker produce with fault injection plus the
// partition-truncation fault (retention kicking in under a slow
// consumer — the offset-snap-forward path of §at-least-once).
type Producer struct {
	inner *broker.Broker
	in    *Injector
}

// WrapProducer decorates a broker's produce side.
func WrapProducer(b *broker.Broker, in *Injector) *Producer {
	return &Producer{inner: b, in: in}
}

// Produce appends a record, possibly faulting first and possibly
// truncating the topic's retention window afterwards.
func (p *Producer) Produce(topic, key string, value any) (int, int64, error) {
	if err := p.in.fault("broker.Produce"); err != nil {
		return 0, 0, err
	}
	part, off, err := p.inner.Produce(topic, key, value)
	if err == nil && p.in != nil && p.in.policy.TruncateRate > 0 &&
		p.in.roll() < p.in.policy.TruncateRate {
		p.in.truncations.Add(1)
		// The produce itself succeeded; a failed truncation is just a
		// chaos fault that didn't land.
		_ = p.inner.Truncate(topic, p.in.policy.TruncateKeep)
	}
	return part, off, err
}

// Consumer wraps a broker consumer. An injected error stalls the poll
// (an empty batch, as a broker outage would) instead of discarding
// fetched records — dropping a batch the inner consumer has already
// advanced past would turn at-least-once into at-most-once. Commit
// faults skip the commit, which only widens redelivery.
type Consumer struct {
	inner *broker.Consumer
	in    *Injector
}

// WrapConsumer decorates a consumer.
func WrapConsumer(c *broker.Consumer, in *Injector) *Consumer {
	return &Consumer{inner: c, in: in}
}

// Poll fetches records with faults injected before the real fetch.
// The empty (non-nil) batch on an injected error distinguishes "fault,
// retry later" from the inner consumer's nil "closed or timed out".
func (c *Consumer) Poll(max int, wait time.Duration) []broker.Record {
	if err := c.in.fault("broker.Poll"); err != nil {
		return []broker.Record{}
	}
	return c.inner.Poll(max, wait)
}

// Commit advances the group offsets unless a fault skips it.
func (c *Consumer) Commit() {
	if err := c.in.fault("broker.Commit"); err != nil {
		return
	}
	c.inner.Commit()
}

// Close closes the inner consumer (never faulted: tests and shutdown
// paths must always be able to leave the group).
func (c *Consumer) Close() { c.inner.Close() }

// Forecaster wraps a track forecaster: injected errors refuse the
// forecast (ok=false, the degraded mode the vessel actor already
// tolerates for short histories) and injected panics exercise actor
// supervision.
type Forecaster struct {
	Inner events.TrackForecaster
	in    *Injector
}

// WrapForecaster decorates a forecaster.
func WrapForecaster(fc events.TrackForecaster, in *Injector) Forecaster {
	return Forecaster{Inner: fc, in: in}
}

// Name implements events.TrackForecaster.
func (f Forecaster) Name() string { return f.Inner.Name() + " (chaos)" }

// ForecastTrack implements events.TrackForecaster.
func (f Forecaster) ForecastTrack(history []ais.PositionReport) (events.Forecast, bool) {
	if err := f.in.fault("forecaster.ForecastTrack"); err != nil {
		return events.Forecast{}, false
	}
	return f.Inner.ForecastTrack(history)
}

package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestGradientClippingBoundsUpdates(t *testing.T) {
	// Build a dataset with a pathological outlier target: unclipped
	// training takes a huge first step, clipped training stays tame.
	rng := rand.New(rand.NewSource(1))
	data := make([]Sample, 16)
	for i := range data {
		data[i] = randomSample(rng, 5, 2, 1)
		data[i].Target[0] = 1e6 // absurd target => exploding gradient
	}

	weightDelta := func(clip float64) float64 {
		m, _ := NewSeqRegressor(Config{InputDim: 2, Hidden: 4, OutputDim: 1, Seed: 3})
		before := m.L1Norm()
		m.Fit(data, FitOptions{Epochs: 1, BatchSize: 16, LR: 0.1, Workers: 1, ClipNorm: clip})
		return math.Abs(m.L1Norm() - before)
	}

	unclipped := weightDelta(0)
	clipped := weightDelta(0.5)
	if clipped >= unclipped {
		t.Fatalf("clipping did not reduce the update: clipped %.3f vs unclipped %.3f",
			clipped, unclipped)
	}
	// Adam bounds per-parameter steps to ~lr regardless of magnitude,
	// so also verify the clipped gradient direction stayed finite.
	if math.IsNaN(clipped) || math.IsInf(clipped, 0) {
		t.Fatal("clipped update not finite")
	}
}

func TestClippingOffByDefaultIsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]Sample, 32)
	for i := range data {
		data[i] = randomSample(rng, 5, 2, 3)
	}
	opt := FitOptions{Epochs: 2, BatchSize: 8, LR: 0.01, Workers: 1, Seed: 9}
	a, _ := NewSeqRegressor(smallConfig(true))
	b, _ := NewSeqRegressor(smallConfig(true))
	la := a.Fit(data, opt)
	optHighClip := opt
	optHighClip.ClipNorm = 1e12 // never binds
	lb := b.Fit(data, optHighClip)
	if la != lb {
		t.Fatalf("non-binding clip changed training: %v vs %v", la, lb)
	}
}

package pipeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seatwin/internal/geo"
)

// TestAPIOverTCP exercises the real listener path (ListenAndServe /
// Addr / Close) rather than httptest.
func TestAPIOverTCP(t *testing.T) {
	p := newTestPipeline(t)
	feedTrack(p, 940000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 3, 30*time.Second, t0)
	p.Drain(5 * time.Second)

	api := NewAPI(p)
	errCh := make(chan error, 1)
	go func() { errCh <- api.ListenAndServe("127.0.0.1:0") }()
	defer api.Close()

	// Wait for the listener to bind.
	deadline := time.Now().Add(5 * time.Second)
	for api.Addr() == nil {
		select {
		case err := <-errCh:
			t.Fatalf("serve failed: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("listener never bound")
		}
		time.Sleep(5 * time.Millisecond)
	}

	base := fmt.Sprintf("http://%s", api.Addr())
	resp, err := http.Get(base + "/api/vessels/940000001")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["mmsi"] != "940000001" {
		t.Fatalf("doc: %v", doc)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}

	// Close stops the server; ListenAndServe returns.
	api.Close()
	select {
	case <-errCh:
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after Close")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	p := newTestPipeline(t)
	feedTrack(p, 941000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 3, 30*time.Second, t0)
	p.Drain(5 * time.Second)
	api := NewAPI(p)
	rec := newMetricsRecorder(api)
	body := rec.Body.String()
	for _, want := range []string{
		"seatwin_messages_total 3",
		"seatwin_forecasts_total",
		"seatwin_live_actors",
		`seatwin_processing_seconds{quantile="0.99"}`,
		"seatwin_processing_seconds_count 3",
		"# TYPE seatwin_messages_total counter",
		// Training counters export unconditionally (zero when the
		// process never trained).
		"# TYPE seatwin_train_runs_total counter",
		"seatwin_train_batches_total",
		"seatwin_train_clip_events_total",
		"seatwin_train_samples_per_second",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
}

func newMetricsRecorder(api *API) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec
}

package pipeline

import (
	"fmt"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// TestMultipleWriters exercises the §3 variant the paper mentions:
// several writer actors, each owning a subset of the outputs, all
// persisting into the same store.
func TestMultipleWriters(t *testing.T) {
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.Writers = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	const vessels = 40
	for i := 0; i < vessels; i++ {
		mmsi := ais.MMSI(930000001 + i)
		start := geo.Destination(geo.Point{Lat: 37.5, Lon: 24.5}, float64(i*9), float64(i)*3000)
		feedTrack(p, mmsi, start, float64(i*7%360), 10, 3, 30*time.Second, t0)
	}
	p.Drain(5 * time.Second)

	// Every vessel's state must land in the store regardless of which
	// writer owned it.
	for i := 0; i < vessels; i++ {
		key := fmt.Sprintf("vessel:%09d", 930000001+i)
		h, err := p.Store().HGetAll(key)
		if err != nil || h["lat"] == "" {
			t.Fatalf("vessel %d state missing (%v)", 930000001+i, err)
		}
	}
	// All four writer actors exist by name.
	for w := 0; w < 4; w++ {
		if p.System().Lookup(fmt.Sprintf("writer-%d", w)) == nil {
			t.Fatalf("writer-%d not registered", w)
		}
	}
}

package hexgrid

import (
	"math/rand"
	"testing"

	"seatwin/internal/geo"
)

func TestTraceLineSameCell(t *testing.T) {
	a := geo.Point{Lat: 37.5, Lon: 24.5}
	b := geo.Destination(a, 45, 50) // 50 m: same res-7 cell
	cells := TraceLine(a, b, 7)
	if len(cells) != 1 {
		t.Fatalf("tiny segment visits %d cells", len(cells))
	}
	if cells[0] != LatLonToCell(a, 7) {
		t.Fatal("wrong cell")
	}
}

func TestTraceLineEndpointsIncluded(t *testing.T) {
	a := geo.Point{Lat: 37.5, Lon: 24.5}
	b := geo.Destination(a, 90, 30000) // ~7 cells at res 7
	cells := TraceLine(a, b, 7)
	if cells[0] != LatLonToCell(a, 7) {
		t.Fatal("start cell missing")
	}
	if cells[len(cells)-1] != LatLonToCell(b, 7) {
		t.Fatal("end cell missing")
	}
	if len(cells) < 3 {
		t.Fatalf("30 km crosses only %d cells", len(cells))
	}
}

func TestTraceLineContiguous(t *testing.T) {
	// Consecutive traced cells must be neighbours (no gaps): the
	// guarantee the collision fan-out relies on.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a := geo.Point{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*300 - 150}
		b := geo.Destination(a, rng.Float64()*360, 1000+rng.Float64()*40000)
		cells := TraceLine(a, b, 7)
		seen := map[Cell]bool{}
		for j, c := range cells {
			if seen[c] {
				t.Fatalf("cell repeated at %d", j)
			}
			seen[c] = true
			if j == 0 {
				continue
			}
			if d := GridDistance(cells[j-1], c); d != 1 {
				t.Fatalf("trace gap: consecutive cells at distance %d (seg %v -> %v)", d, a, b)
			}
		}
	}
}

func TestTraceLineCoversIntermediatePoints(t *testing.T) {
	// Every point of the segment lies in a traced cell or in a cell
	// adjacent to one (corner clips shorter than the sampling step may
	// be represented by their neighbour): with the pipeline's
	// GridDisk(1) expansion this is full coverage.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a := geo.Point{Lat: rng.Float64()*100 - 50, Lon: rng.Float64()*300 - 150}
		b := geo.Destination(a, rng.Float64()*360, 20000)
		cells := TraceLine(a, b, 8)
		member := map[Cell]bool{}
		for _, c := range cells {
			member[c] = true
		}
		for f := 0.0; f <= 1.0; f += 0.05 {
			p := geo.Interpolate(a, b, f)
			pc := LatLonToCell(p, 8)
			if member[pc] {
				continue
			}
			adjacent := false
			for _, n := range pc.Neighbors() {
				if member[n] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("point at f=%.2f neither traced nor adjacent", f)
			}
		}
	}
}

func TestTraceLineInvalidInputs(t *testing.T) {
	a := geo.Point{Lat: 37.5, Lon: 24.5}
	if cells := TraceLine(a, geo.Point{Lat: 95, Lon: 0}, 7); cells != nil {
		t.Fatal("invalid endpoint must yield nil")
	}
	if cells := TraceLine(a, a, -1); cells != nil {
		t.Fatal("invalid resolution must yield nil")
	}
}

func BenchmarkTraceLine(b *testing.B) {
	a := geo.Point{Lat: 37.5, Lon: 24.5}
	p := geo.Destination(a, 120, 12000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TraceLine(a, p, 7)
	}
}

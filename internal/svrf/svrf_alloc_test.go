package svrf

import (
	"math"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/traj"
)

// forecastWindow builds one serving-shape window for the alloc and
// parity tests.
func forecastWindow(t testing.TB) traj.Window {
	t.Helper()
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, 2*time.Hour)
	ws := traj.BuildWindows(track, traj.DefaultConfig())
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	return ws[0]
}

// The vessel-actor hot path must not allocate once its buffers are
// warm: the compiled network runs in pooled scratch and the positions
// land in the caller's buffer.
func TestForecastIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; the zero-alloc contract holds only in normal builds")
	}
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := forecastWindow(t)
	dst := make([]geo.Point, 0, m.cfg.Horizons)
	dst = m.ForecastInto(dst, w) // compile + warm the pools
	if allocs := testing.AllocsPerRun(100, func() {
		dst = m.ForecastInto(dst, w)
	}); allocs != 0 {
		t.Fatalf("ForecastInto allocates %v/op, want 0", allocs)
	}
}

func TestKinematicForecastIntoZeroAlloc(t *testing.T) {
	k := NewKinematic()
	w := forecastWindow(t)
	dst := k.ForecastInto(nil, w)
	want := k.Forecast(w)
	for h := range want {
		if dst[h] != want[h] {
			t.Fatalf("horizon %d: Into %v != Forecast %v", h, dst[h], want[h])
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		dst = k.ForecastInto(dst, w)
	}); allocs != 0 {
		t.Fatalf("Kinematic.ForecastInto allocates %v/op, want 0", allocs)
	}
}

// Forecast goes through the compiled network; the training-path
// Predict stays behind as the parity oracle. The 1e-12 contract is the
// same one nn.TestCompiledParity enforces, re-checked here at the
// model-output level (degrees).
func TestForecastMatchesReferencePredict(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := forecastWindow(t)
	got := m.Forecast(w)
	want := traj.PredictedPositions(w.LastPos, m.net.Predict(w.Input))
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for h := range want {
		if math.Abs(got[h].Lat-want[h].Lat) > 1e-12 || math.Abs(got[h].Lon-want[h].Lon) > 1e-12 {
			t.Fatalf("horizon %d: compiled %v vs reference %v", h, got[h], want[h])
		}
	}
}

// ForecastReportsBatch must agree exactly with per-history calls: both
// run the same compiled network.
func TestForecastReportsBatchMatchesSingle(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	histories := [][]ais.PositionReport{
		straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, time.Hour),
		straightTrack(geo.Point{Lat: 38, Lon: 23}, 120, 9, 45*time.Second, 2*time.Hour),
		straightTrack(geo.Point{Lat: 36, Lon: 25}, 300, 18, 30*time.Second, time.Hour)[:3], // too short
		straightTrack(geo.Point{Lat: 35, Lon: 26}, 10, 6, 60*time.Second, 90*time.Minute),
	}
	pts, anchors, ok := m.ForecastReportsBatch(histories, 4)
	for i, h := range histories {
		wantPts, wantAnchor, wantOK := m.ForecastReports(h)
		if ok[i] != wantOK {
			t.Fatalf("history %d: ok=%v want %v", i, ok[i], wantOK)
		}
		if !wantOK {
			if pts[i] != nil {
				t.Fatalf("history %d: unusable history must have nil points", i)
			}
			continue
		}
		if anchors[i] != wantAnchor {
			t.Fatalf("history %d: anchor mismatch", i)
		}
		if len(pts[i]) != len(wantPts) {
			t.Fatalf("history %d: %d points, want %d", i, len(pts[i]), len(wantPts))
		}
		for j := range wantPts {
			if pts[i][j] != wantPts[j] {
				t.Fatalf("history %d point %d: %v != %v", i, j, pts[i][j], wantPts[j])
			}
		}
	}
}

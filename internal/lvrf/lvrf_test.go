package lvrf

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"seatwin/internal/geo"
)

var (
	portA = geo.Point{Lat: 37.925, Lon: 23.600} // Piraeus-like
	portB = geo.Point{Lat: 35.355, Lon: 25.145} // Heraklion-like
	portC = geo.Point{Lat: 40.600, Lon: 22.920} // Thessaloniki-like
	ports = map[string]geo.Point{"A": portA, "B": portB, "C": portC}
	base  = time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
)

// laneTrip builds a synthetic trip from origin to dest bending through
// a lateral offset at the midpoint (positive = starboard of the direct
// course), with small per-trip noise.
func laneTrip(mmsi uint32, f Features, origin, dest string, offsetMeters float64, rng *rand.Rand) Trip {
	po, pd := ports[origin], ports[dest]
	bearing := geo.InitialBearing(po, pd)
	const steps = 30
	trip := Trip{MMSI: mmsi, Features: f, Origin: origin, Dest: dest}
	speed := 12.0 * geo.KnotsToMetersPerSecond
	dist := geo.Haversine(po, pd)
	for i := 0; i <= steps; i++ {
		fr := float64(i) / steps
		p := geo.Interpolate(po, pd, fr)
		lateral := offsetMeters * math.Sin(math.Pi*fr)
		if rng != nil {
			lateral += rng.NormFloat64() * 500
		}
		p = geo.Destination(p, bearing+90, lateral)
		trip.Points = append(trip.Points, p)
		trip.Times = append(trip.Times, base.Add(time.Duration(fr*dist/speed)*time.Second))
	}
	return trip
}

func cargoF() Features { return Features{ShipType: 70, Length: 190, Draught: 10.5} }
func ferryF() Features { return Features{ShipType: 60, Length: 150, Draught: 6.2} }

func trainedModel(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var trips []Trip
	// Two distinct lanes A->B: cargo ships keep east (+12 km), ferries
	// keep west (-12 km).
	for i := 0; i < 20; i++ {
		trips = append(trips, laneTrip(uint32(100+i), cargoF(), "A", "B", 12000, rng))
		trips = append(trips, laneTrip(uint32(200+i), ferryF(), "A", "B", -12000, rng))
	}
	// One lane A->C.
	for i := 0; i < 10; i++ {
		trips = append(trips, laneTrip(uint32(300+i), cargoF(), "A", "C", 5000, rng))
	}
	return Train(trips, ports, DefaultConfig())
}

func TestTrainBuildsLanes(t *testing.T) {
	m := trainedModel(t)
	pairs := m.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0] != [2]string{"A", "B"} || pairs[1] != [2]string{"A", "C"} {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestForecastFollowsLane(t *testing.T) {
	m := trainedModel(t)
	path, err := m.ForecastRoute("A", "B", cargoF())
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 10 {
		t.Fatalf("path has %d points", len(path))
	}
	// Endpoints near the ports.
	if d := geo.Haversine(path[0], portA); d > 8000 {
		t.Fatalf("path starts %.0f m from origin", d)
	}
	if d := geo.Haversine(path[len(path)-1], portB); d > 8000 {
		t.Fatalf("path ends %.0f m from destination", d)
	}
	// The forecast must track the cargo lane closely.
	truth := laneTrip(1, cargoF(), "A", "B", 12000, nil)
	if ct := MeanCrossTrack(path, truth.Points); ct > 6000 {
		t.Fatalf("cargo forecast %.0f m from cargo lane", ct)
	}
}

func TestJunctionClassifierSeparatesTypes(t *testing.T) {
	// Cargo and ferry lanes diverge by 24 km at the midpoint; the
	// junction classifier must route each vessel type onto its lane.
	m := trainedModel(t)
	cargoPath, err := m.ForecastRoute("A", "B", cargoF())
	if err != nil {
		t.Fatal(err)
	}
	ferryPath, err := m.ForecastRoute("A", "B", ferryF())
	if err != nil {
		t.Fatal(err)
	}
	cargoTruth := laneTrip(1, cargoF(), "A", "B", 12000, nil)
	ferryTruth := laneTrip(2, ferryF(), "A", "B", -12000, nil)

	if own := MeanCrossTrack(cargoPath, cargoTruth.Points); own > 6000 {
		t.Fatalf("cargo forecast misses cargo lane by %.0f m", own)
	}
	if own := MeanCrossTrack(ferryPath, ferryTruth.Points); own > 6000 {
		t.Fatalf("ferry forecast misses ferry lane by %.0f m", own)
	}
	// Cross-assignments must be clearly worse.
	if cross := MeanCrossTrack(cargoPath, ferryTruth.Points); cross < 8000 {
		t.Fatalf("cargo forecast too close to ferry lane: %.0f m", cross)
	}
}

func TestLaneHasJunction(t *testing.T) {
	m := trainedModel(t)
	branches, err := m.Junctions("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	maxB := 0
	for _, b := range branches {
		if b > maxB {
			maxB = b
		}
	}
	if maxB < 2 {
		t.Fatalf("two divergent lanes must create a junction, max branches %d", maxB)
	}
}

func TestPatternsOfLife(t *testing.T) {
	m := trainedModel(t)
	pol, err := m.PatternsOfLife("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if pol.Trips != 40 {
		t.Fatalf("trips = %d", pol.Trips)
	}
	if pol.DistinctMMSIs != 40 {
		t.Fatalf("distinct MMSIs = %d", pol.DistinctMMSIs)
	}
	if pol.MeanSpeedKn < 8 || pol.MeanSpeedKn > 16 {
		t.Fatalf("mean speed %.1f kn", pol.MeanSpeedKn)
	}
	gc := geo.Haversine(portA, portB)
	if pol.MeanLengthM < gc || pol.MeanLengthM > gc*1.2 {
		t.Fatalf("mean length %.0f m vs great circle %.0f m", pol.MeanLengthM, gc)
	}
	if pol.TypeHistogram[70] != 20 || pol.TypeHistogram[60] != 20 {
		t.Fatalf("type histogram %v", pol.TypeHistogram)
	}
	if pol.MeanDuration <= 0 {
		t.Fatal("mean duration missing")
	}
	if _, err := m.PatternsOfLife("B", "A"); err == nil {
		t.Fatal("untrained pair must error")
	}
}

func TestUnseenPairFallsBackToGreatCircle(t *testing.T) {
	m := trainedModel(t)
	path, err := m.ForecastRoute("B", "C", cargoF())
	if err != nil {
		t.Fatal(err)
	}
	// Fallback is the great circle: every point within a small
	// cross-track of the direct course.
	for _, p := range path {
		if xt := math.Abs(geo.CrossTrack(p, portB, portC)); xt > 1000 {
			t.Fatalf("fallback deviates %.0f m from great circle", xt)
		}
	}
	if _, err := m.ForecastRoute("A", "Nowhere", cargoF()); err == nil {
		t.Fatal("unknown port must error")
	}
}

func TestMinTripsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trips := []Trip{
		laneTrip(1, cargoF(), "A", "B", 0, rng),
		laneTrip(2, cargoF(), "A", "B", 0, rng),
	}
	m := Train(trips, ports, DefaultConfig()) // MinTrips = 3
	if len(m.Pairs()) != 0 {
		t.Fatal("two trips must not build a lane with MinTrips=3")
	}
}

func TestDegenerateTripsIgnored(t *testing.T) {
	trips := []Trip{
		{MMSI: 1, Origin: "A", Dest: "A", Points: []geo.Point{portA, portA}},
		{MMSI: 2, Origin: "A", Dest: "B", Points: []geo.Point{portA}},
	}
	m := Train(trips, ports, DefaultConfig())
	if len(m.Pairs()) != 0 {
		t.Fatal("degenerate trips must be ignored")
	}
}

func TestExtractTrips(t *testing.T) {
	// Build a track: moored at A, sail to B, moor, sail to C.
	var positions []geo.Point
	var times []time.Time
	add := func(pts []geo.Point, start time.Time, step time.Duration) time.Time {
		for i, p := range pts {
			positions = append(positions, p)
			times = append(times, start.Add(time.Duration(i)*step))
		}
		return times[len(times)-1].Add(step)
	}
	next := add([]geo.Point{portA, portA}, base, time.Minute)
	legAB := laneTrip(9, cargoF(), "A", "B", 3000, nil)
	next = add(legAB.Points, next, 20*time.Minute)
	next = add([]geo.Point{portB, portB}, next, time.Minute)
	legBC := laneTrip(9, cargoF(), "B", "C", -2000, nil)
	next = add(legBC.Points, next, 20*time.Minute)
	add([]geo.Point{portC}, next, time.Minute)

	trips := ExtractTrips(TrackInput{
		MMSI: 9, Features: cargoF(), Positions: positions, Times: times,
	}, ports, 5000)
	if len(trips) != 2 {
		t.Fatalf("extracted %d trips, want 2", len(trips))
	}
	if trips[0].Origin != "A" || trips[0].Dest != "B" {
		t.Fatalf("trip 0: %s -> %s", trips[0].Origin, trips[0].Dest)
	}
	if trips[1].Origin != "B" || trips[1].Dest != "C" {
		t.Fatalf("trip 1: %s -> %s", trips[1].Origin, trips[1].Dest)
	}
	if trips[0].Duration() <= 0 || trips[0].Length() <= 0 {
		t.Fatal("trip metrics must be positive")
	}
}

func TestExtractTripsPartialVoyagesDropped(t *testing.T) {
	// A track that starts mid-sea and ends mid-sea yields no trips.
	legAB := laneTrip(9, cargoF(), "A", "B", 0, nil)
	mid := legAB.Points[5:25]
	var times []time.Time
	for i := range mid {
		times = append(times, base.Add(time.Duration(i)*10*time.Minute))
	}
	trips := ExtractTrips(TrackInput{MMSI: 9, Positions: mid, Times: times}, ports, 5000)
	if len(trips) != 0 {
		t.Fatalf("partial voyage produced %d trips", len(trips))
	}
}

func TestResampleEquidistant(t *testing.T) {
	trip := laneTrip(1, cargoF(), "A", "B", 10000, nil)
	rs := resample(trip.Points, 20)
	if len(rs) != 20 {
		t.Fatalf("resampled to %d points", len(rs))
	}
	if geo.Haversine(rs[0], trip.Points[0]) > 1 {
		t.Fatal("first point must be preserved")
	}
	if geo.Haversine(rs[19], trip.Points[len(trip.Points)-1]) > 1 {
		t.Fatal("last point must be preserved")
	}
	// Consecutive gaps roughly equal.
	d0 := geo.Haversine(rs[0], rs[1])
	for i := 2; i < 20; i++ {
		d := geo.Haversine(rs[i-1], rs[i])
		if math.Abs(d-d0)/d0 > 0.25 {
			t.Fatalf("gap %d deviates: %.0f vs %.0f", i, d, d0)
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var trips []Trip
	for i := 0; i < 50; i++ {
		trips = append(trips, laneTrip(uint32(i), cargoF(), "A", "B", 10000, rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(trips, ports, DefaultConfig())
	}
}

func BenchmarkForecastRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var trips []Trip
	for i := 0; i < 50; i++ {
		trips = append(trips, laneTrip(uint32(i), cargoF(), "A", "B", 10000, rng))
	}
	m := Train(trips, ports, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ForecastRoute("A", "B", cargoF()); err != nil {
			b.Fatal(err)
		}
	}
}

// AVX2/FMA hidden-state GEMV for the compiled inference path.
// See kernel_avx2_amd64.go for the contract.

#include "textflag.h"

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (low, high uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, low+0(FP)
	MOVL DX, high+4(FP)
	RET

// func gemvHiddenAVX2(w, h, z *float64, hidden, width, in int)
//
// Register plan:
//   DI  row base of the current unit's gate-i row, offset to column in
//   SI  h base
//   R8  z cursor
//   R9  units remaining
//   R12 row stride in bytes (width*8)
//   R13 hidden (k-loop trip count, in elements)
//   AX/BX/CX/DX  the four gate-row cursors inside the k loop
//   R14 h cursor, R15 k counter
//   Y0..Y3 gate accumulators, Y4 h vector
TEXT ·gemvHiddenAVX2(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), DI
	MOVQ h+8(FP), SI
	MOVQ z+16(FP), R8
	MOVQ hidden+24(FP), R13
	MOVQ width+32(FP), R12
	MOVQ in+40(FP), R11
	SHLQ $3, R12              // stride = width*8 bytes
	LEAQ (DI)(R11*8), DI      // skip the input columns: start at column in
	MOVQ R13, R9              // units = hidden

unit_loop:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	MOVQ DI, AX               // gate i row
	LEAQ (DI)(R12*1), BX      // gate f row
	LEAQ (DI)(R12*2), CX      // gate g row
	LEAQ (BX)(R12*2), DX      // gate o row
	MOVQ SI, R14
	MOVQ R13, R15
	CMPQ R15, $8
	JLT  tail4

	// Two chunks per iteration with a second accumulator bank
	// (Y5..Y8): a single bank leaves each FMA chain waiting out its
	// own latency — two banks double the dependency distance and let
	// the FMA ports saturate.
k_loop8:
	VMOVUPD (R14), Y4
	VMOVUPD 32(R14), Y9
	VFMADD231PD (AX), Y4, Y0
	VFMADD231PD 32(AX), Y9, Y5
	VFMADD231PD (BX), Y4, Y1
	VFMADD231PD 32(BX), Y9, Y6
	VFMADD231PD (CX), Y4, Y2
	VFMADD231PD 32(CX), Y9, Y7
	VFMADD231PD (DX), Y4, Y3
	VFMADD231PD 32(DX), Y9, Y8
	ADDQ $64, R14
	ADDQ $64, AX
	ADDQ $64, BX
	ADDQ $64, CX
	ADDQ $64, DX
	SUBQ $8, R15
	CMPQ R15, $8
	JGE  k_loop8

	TESTQ R15, R15
	JZ   combine

	// hidden is a multiple of 4, so at most one 4-wide chunk remains.
tail4:
	VMOVUPD (R14), Y4
	VFMADD231PD (AX), Y4, Y0
	VFMADD231PD (BX), Y4, Y1
	VFMADD231PD (CX), Y4, Y2
	VFMADD231PD (DX), Y4, Y3

combine:
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3

	// Reduce each YMM accumulator to a scalar and add into z.
	VEXTRACTF128 $1, Y0, X4
	VADDPD X4, X0, X0
	VHADDPD X0, X0, X0
	VADDSD (R8), X0, X0
	VMOVSD X0, (R8)
	VEXTRACTF128 $1, Y1, X4
	VADDPD X4, X1, X1
	VHADDPD X1, X1, X1
	VADDSD 8(R8), X1, X1
	VMOVSD X1, 8(R8)
	VEXTRACTF128 $1, Y2, X4
	VADDPD X4, X2, X2
	VHADDPD X2, X2, X2
	VADDSD 16(R8), X2, X2
	VMOVSD X2, 16(R8)
	VEXTRACTF128 $1, Y3, X4
	VADDPD X4, X3, X3
	VHADDPD X3, X3, X3
	VADDSD 24(R8), X3, X3
	VMOVSD X3, 24(R8)

	ADDQ $32, R8              // z advances four gates per unit
	LEAQ (DI)(R12*4), DI      // next unit's gate-i row
	DECQ R9
	JNZ  unit_loop

	VZEROUPPER
	RET

package ais

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxPayloadChars keeps sentences within the NMEA 0183 82-character
// line limit; longer messages (type 5) are split into fragments.
const maxPayloadChars = 56

// Sentence is one parsed AIVDM/AIVDO sentence.
type Sentence struct {
	Talker    string // "AIVDM" or "AIVDO"
	FragCount int
	FragNum   int
	MsgID     string // sequential message id linking fragments ("" for single)
	Channel   string // radio channel, "A" or "B"
	Payload   string
	FillBits  int
}

// checksum computes the NMEA XOR checksum over the body (between '!'
// and '*').
func checksum(body string) byte {
	var c byte
	for i := 0; i < len(body); i++ {
		c ^= body[i]
	}
	return c
}

// formatSentence renders a Sentence in NMEA wire form.
func formatSentence(s Sentence) string {
	body := fmt.Sprintf("%s,%d,%d,%s,%s,%s,%d",
		s.Talker, s.FragCount, s.FragNum, s.MsgID, s.Channel, s.Payload, s.FillBits)
	return fmt.Sprintf("!%s*%02X", body, checksum(body))
}

// ParseSentence parses and checksum-validates one NMEA line. The happy
// path is allocation-free: every Sentence field is a substring of the
// input line and the comma split indexes in place instead of building a
// field slice — a live receiver feed parses millions of lines, so the
// parse cost is pure CPU with no garbage.
func ParseSentence(line string) (Sentence, error) {
	line = strings.TrimSpace(line)
	if len(line) < 10 || line[0] != '!' {
		return Sentence{}, fmt.Errorf("ais: not an encapsulated sentence: %q", line)
	}
	star := strings.LastIndexByte(line, '*')
	if star < 0 || star+3 > len(line) {
		return Sentence{}, fmt.Errorf("ais: missing checksum: %q", line)
	}
	body := line[1:star]
	wantSum, err := strconv.ParseUint(line[star+1:star+3], 16, 8)
	if err != nil {
		return Sentence{}, fmt.Errorf("ais: bad checksum field: %q", line)
	}
	if got := checksum(body); got != byte(wantSum) {
		return Sentence{}, fmt.Errorf("ais: checksum mismatch: got %02X want %02X", got, wantSum)
	}
	var fields [7]string
	n := 0
	rest := body
	for n < 6 {
		comma := strings.IndexByte(rest, ',')
		if comma < 0 {
			break
		}
		fields[n] = rest[:comma]
		rest = rest[comma+1:]
		n++
	}
	if n < 6 || strings.IndexByte(rest, ',') >= 0 {
		return Sentence{}, fmt.Errorf("ais: expected 7 fields: %q", line)
	}
	fields[6] = rest
	if fields[0] != "AIVDM" && fields[0] != "AIVDO" {
		return Sentence{}, fmt.Errorf("ais: unsupported talker %q", fields[0])
	}
	fragCount, err1 := strconv.Atoi(fields[1])
	fragNum, err2 := strconv.Atoi(fields[2])
	fill, err3 := strconv.Atoi(fields[6])
	if err1 != nil || err2 != nil || err3 != nil {
		return Sentence{}, fmt.Errorf("ais: malformed numeric fields: %q", line)
	}
	if fragCount < 1 || fragNum < 1 || fragNum > fragCount || fill < 0 || fill > 5 {
		return Sentence{}, fmt.Errorf("ais: inconsistent fragment fields: %q", line)
	}
	return Sentence{
		Talker:    fields[0],
		FragCount: fragCount,
		FragNum:   fragNum,
		MsgID:     fields[3],
		Channel:   fields[4],
		Payload:   fields[5],
		FillBits:  fill,
	}, nil
}

// Marshal encodes an AIS message into one or more AIVDM sentences.
// msgID links the fragments of multi-sentence messages (callers supply
// a small rolling counter, as AIS transponders do).
func Marshal(m Message, channel string, msgID int) ([]string, error) {
	var (
		buf  []byte
		nbit int
		err  error
	)
	switch v := m.(type) {
	case PositionReport:
		buf, nbit, err = EncodePosition(v)
	case StaticVoyage:
		buf, nbit, err = EncodeStatic(v)
	default:
		return nil, fmt.Errorf("ais: cannot marshal %T", m)
	}
	if err != nil {
		return nil, err
	}
	payload, fill := armorEncode(buf, nbit)
	if len(payload) <= maxPayloadChars {
		return []string{formatSentence(Sentence{
			Talker: "AIVDM", FragCount: 1, FragNum: 1,
			Channel: channel, Payload: payload, FillBits: fill,
		})}, nil
	}
	// Fragments: every sentence but the last carries 0 fill bits because
	// fragments split on 6-bit character boundaries.
	id := strconv.Itoa(msgID % 10)
	var out []string
	total := (len(payload) + maxPayloadChars - 1) / maxPayloadChars
	for i := 0; i < total; i++ {
		lo := i * maxPayloadChars
		hi := lo + maxPayloadChars
		if hi > len(payload) {
			hi = len(payload)
		}
		f := 0
		if i == total-1 {
			f = fill
		}
		out = append(out, formatSentence(Sentence{
			Talker: "AIVDM", FragCount: total, FragNum: i + 1, MsgID: id,
			Channel: channel, Payload: payload[lo:hi], FillBits: f,
		}))
	}
	return out, nil
}

// Assembler reassembles multi-fragment AIVDM messages. It is safe for
// concurrent use and evicts stale partial messages after a timeout.
type Assembler struct {
	mu      sync.Mutex
	pending map[string]*partial
	maxAge  time.Duration
}

type partial struct {
	fragments []string
	fills     []int
	got       int
	createdAt time.Time
}

// NewAssembler creates an assembler that drops incomplete messages
// older than 30 seconds.
func NewAssembler() *Assembler {
	return &Assembler{pending: make(map[string]*partial), maxAge: 30 * time.Second}
}

// Push feeds one parsed sentence. When the sentence completes a
// message, the decoded Message is returned; otherwise Message is nil.
func (a *Assembler) Push(s Sentence, receivedAt time.Time) (Message, error) {
	if s.FragCount == 1 {
		return decodePayload(s.Payload, s.FillBits, receivedAt)
	}
	key := s.Channel + "/" + s.MsgID + "/" + strconv.Itoa(s.FragCount)
	a.mu.Lock()
	p, ok := a.pending[key]
	if !ok {
		p = &partial{
			fragments: make([]string, s.FragCount),
			fills:     make([]int, s.FragCount),
			createdAt: receivedAt,
		}
		a.pending[key] = p
	}
	if p.fragments[s.FragNum-1] == "" {
		p.got++
	}
	p.fragments[s.FragNum-1] = s.Payload
	p.fills[s.FragNum-1] = s.FillBits
	complete := p.got == s.FragCount
	if complete {
		delete(a.pending, key)
	}
	a.evictStaleLocked(receivedAt)
	a.mu.Unlock()
	if !complete {
		return nil, nil
	}
	return decodePayload(strings.Join(p.fragments, ""), p.fills[s.FragCount-1], receivedAt)
}

func (a *Assembler) evictStaleLocked(now time.Time) {
	for k, p := range a.pending {
		if now.Sub(p.createdAt) > a.maxAge {
			delete(a.pending, k)
		}
	}
}

// Pending returns the number of incomplete multi-fragment messages.
func (a *Assembler) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// payloadBufPool recycles the de-armored bit buffers of decodePayload:
// the decoder copies everything it keeps (strings are materialised,
// numeric fields are values), so the buffer can be returned to the pool
// as soon as Decode finishes — one sentence, zero buffer garbage.
var payloadBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64) // type 5 payloads need ~53 bytes
		return &b
	},
}

func decodePayload(payload string, fillBits int, receivedAt time.Time) (Message, error) {
	bp := payloadBufPool.Get().(*[]byte)
	buf, nbit, err := armorDecodeInto(*bp, payload, fillBits)
	*bp = buf
	if err != nil {
		payloadBufPool.Put(bp)
		return nil, err
	}
	m, err := Decode(buf, nbit, receivedAt)
	payloadBufPool.Put(bp)
	return m, err
}

// MarshalClassBStatic encodes the static data of a class B vessel as
// its two type 24 sentences (part A: name; part B: type, callsign,
// dimensions). Each part fits a single sentence.
func MarshalClassBStatic(s StaticVoyage, channel string) ([]string, error) {
	bufA, nbitA, err := EncodeStatic24A(s)
	if err != nil {
		return nil, err
	}
	bufB, nbitB, err := EncodeStatic24B(s)
	if err != nil {
		return nil, err
	}
	payloadA, fillA := armorEncode(bufA, nbitA)
	payloadB, fillB := armorEncode(bufB, nbitB)
	return []string{
		formatSentence(Sentence{Talker: "AIVDM", FragCount: 1, FragNum: 1,
			Channel: channel, Payload: payloadA, FillBits: fillA}),
		formatSentence(Sentence{Talker: "AIVDM", FragCount: 1, FragNum: 1,
			Channel: channel, Payload: payloadB, FillBits: fillB}),
	}, nil
}

// DecodeSentences is a convenience for the common single-source case:
// it parses each line in order through a private assembler and returns
// every completed message.
func DecodeSentences(lines []string, receivedAt time.Time) ([]Message, error) {
	asm := NewAssembler()
	var out []Message
	for _, line := range lines {
		s, err := ParseSentence(line)
		if err != nil {
			return out, err
		}
		m, err := asm.Push(s, receivedAt)
		if err != nil {
			return out, err
		}
		if m != nil {
			out = append(out, m)
		}
	}
	return out, nil
}

// Package svrf implements the paper's Short-term Vessel Route
// Forecasting model (§4.2, Figure 3): a BiLSTM over the last 20
// spatiotemporal displacements of a vessel followed by a fully
// connected layer emitting six (Δlat, Δlon) transitions at 5-minute
// intervals up to a 30-minute horizon, with L1 in-layer regularisation —
// plus the linear kinematic baseline the evaluation compares against
// (Table 1).
//
// A single trained Model is safe for concurrent forecasting and is
// intended to be mounted once per process and shared by every vessel
// actor, as the paper's integration does.
package svrf

import (
	"io"
	"sync/atomic"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/metrics"
	"seatwin/internal/nn"
	"seatwin/internal/traj"
)

// Predictor forecasts a vessel's future positions from a preprocessed
// trajectory window.
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Forecast returns one position per horizon (6 positions spanning
	// 5..30 minutes for the default configuration).
	Forecast(w traj.Window) []geo.Point
}

// Kinematic is the linear baseline of §6.1: dead reckoning from the
// last reported position, speed over ground and course over ground.
type Kinematic struct {
	Horizons    int
	HorizonStep time.Duration
}

// NewKinematic returns the baseline with the paper's geometry.
func NewKinematic() Kinematic {
	return Kinematic{Horizons: 6, HorizonStep: 5 * time.Minute}
}

// Name implements Predictor.
func (k Kinematic) Name() string { return "Linear Kinematic Model" }

// Forecast implements Predictor.
func (k Kinematic) Forecast(w traj.Window) []geo.Point {
	return k.ForecastInto(nil, w)
}

// ForecastInto is Forecast into a caller-provided buffer, reused when
// it has the capacity for Horizons positions.
func (k Kinematic) ForecastInto(dst []geo.Point, w traj.Window) []geo.Point {
	if cap(dst) >= k.Horizons {
		dst = dst[:k.Horizons]
	} else {
		dst = make([]geo.Point, k.Horizons)
	}
	sog, cog := w.LastSOG, w.LastCOG
	if sog < 0 {
		sog = 0
	}
	for h := 1; h <= k.Horizons; h++ {
		dt := time.Duration(h) * k.HorizonStep
		dst[h-1] = geo.DeadReckon(w.LastPos, sog, cog, dt.Seconds())
	}
	return dst
}

// Config shapes the S-VRF network. Defaults follow the paper's reduced
// architecture: fixed 20-step input, BiLSTM, 6-transition output.
type Config struct {
	InputSteps  int
	Hidden      int
	Horizons    int
	HorizonStep time.Duration
	Downsample  time.Duration
	// Bidirectional selects BiLSTM (the paper's final architecture)
	// versus plain LSTM (its earlier iteration, kept for the ablation).
	Bidirectional bool
	L1            float64
	Seed          int64
}

// DefaultConfig returns the Figure 3 architecture.
func DefaultConfig() Config {
	return Config{
		InputSteps:    20,
		Hidden:        32,
		Horizons:      6,
		HorizonStep:   5 * time.Minute,
		Downsample:    30 * time.Second,
		Bidirectional: true,
		L1:            1e-5,
		Seed:          1,
	}
}

// Model is the trained S-VRF network.
type Model struct {
	cfg Config
	net *nn.SeqRegressor
	// compiled caches the fused inference snapshot of the current
	// weights (built lazily on first forecast, invalidated by Train).
	// Forecasting goes through it instead of the reference Predict, so
	// the vessel-actor hot path runs the zero-allocation kernel.
	compiled atomic.Pointer[nn.Compiled]
}

// compiledNet returns the inference snapshot, compiling on first use.
// Concurrent first calls may compile twice; one snapshot wins the CAS
// and the loser is dropped, which is cheaper than a mutex on the path
// every forecast takes.
func (m *Model) compiledNet() *nn.Compiled {
	if c := m.compiled.Load(); c != nil {
		return c
	}
	c := m.net.Compile()
	if m.compiled.CompareAndSwap(nil, c) {
		return c
	}
	return m.compiled.Load()
}

// New builds an untrained model.
func New(cfg Config) (*Model, error) {
	net, err := nn.NewSeqRegressor(nn.Config{
		InputDim:      3,
		Hidden:        cfg.Hidden,
		OutputDim:     2 * cfg.Horizons,
		Bidirectional: cfg.Bidirectional,
		L1:            cfg.L1,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// Name implements Predictor.
func (m *Model) Name() string {
	if m.cfg.Bidirectional {
		return "S-VRF"
	}
	return "S-VRF (LSTM)"
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Forecast implements Predictor.
func (m *Model) Forecast(w traj.Window) []geo.Point {
	return m.ForecastInto(nil, w)
}

// ForecastInto is Forecast into a caller-provided buffer: the compiled
// network runs in pooled scratch and the positions are written into
// dst (reused when it has capacity for Horizons points). Steady-state
// calls with a warm dst do not allocate.
func (m *Model) ForecastInto(dst []geo.Point, w traj.Window) []geo.Point {
	c := m.compiledNet()
	s := c.GetScratch()
	out := c.PredictInto(nil, w.Input, s)
	dst = traj.PredictedPositionsInto(dst, w.LastPos, out)
	c.PutScratch(s)
	return dst
}

// ForecastReports runs the live on-stream path: it converts the most
// recent reports into the model input and forecasts from the anchor
// (the last report that entered the input). It also returns the
// anchor so callers can timestamp the forecast points correctly. ok is
// false when the history is too short.
func (m *Model) ForecastReports(reports []ais.PositionReport) (pts []geo.Point, anchor ais.PositionReport, ok bool) {
	return m.ForecastReportsInto(nil, reports)
}

// ForecastReportsInto is ForecastReports into a caller-provided
// position buffer. The model input is assembled in a pooled
// traj.InputBuffer and inference runs in pooled scratch, so with a
// warm dst the per-report cost of the vessel-actor hot path is
// allocation-free.
func (m *Model) ForecastReportsInto(dst []geo.Point, reports []ais.PositionReport) (pts []geo.Point, anchor ais.PositionReport, ok bool) {
	b := traj.GetInputBuffer()
	input, anchor, ok := b.InputFromReports(reports, m.cfg.InputSteps, m.cfg.Downsample)
	if !ok {
		traj.PutInputBuffer(b)
		return nil, ais.PositionReport{}, false
	}
	c := m.compiledNet()
	s := c.GetScratch()
	out := c.PredictInto(nil, input, s)
	pts = traj.PredictedPositionsInto(dst, geo.Point{Lat: anchor.Lat, Lon: anchor.Lon}, out)
	c.PutScratch(s)
	traj.PutInputBuffer(b)
	return pts, anchor, true
}

// ForecastReportsBatch runs ForecastReports over many vessels' report
// histories at once, pushing every usable input through the compiled
// network's batch path (the bulk shape of the Figure 6 replay and the
// VTFF rasterisation). workers follows nn.(*Compiled).PredictBatch
// semantics: <= 0 picks a sensible worker count, 1 stays sequential.
// The returned slices are indexed like histories; ok[i] is false when
// history i was too short to forecast, in which case pts[i] is nil.
func (m *Model) ForecastReportsBatch(histories [][]ais.PositionReport, workers int) (pts [][]geo.Point, anchors []ais.PositionReport, ok []bool) {
	pts = make([][]geo.Point, len(histories))
	anchors = make([]ais.PositionReport, len(histories))
	ok = make([]bool, len(histories))
	seqs := make([][][]float64, 0, len(histories))
	idx := make([]int, 0, len(histories))
	for i, h := range histories {
		// Inputs must all be alive for the batch call, so they are built
		// with the allocating path rather than a shared pooled buffer.
		input, anchor, good := traj.InputFromReports(h, m.cfg.InputSteps, m.cfg.Downsample)
		if !good {
			continue
		}
		anchors[i] = anchor
		ok[i] = true
		seqs = append(seqs, input)
		idx = append(idx, i)
	}
	if len(seqs) == 0 {
		return pts, anchors, ok
	}
	outs := m.compiledNet().PredictBatch(nil, seqs, workers)
	for j, i := range idx {
		pts[i] = traj.PredictedPositionsInto(nil, geo.Point{Lat: anchors[i].Lat, Lon: anchors[i].Lon}, outs[j])
	}
	return pts, anchors, ok
}

// TrainOptions controls Train.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Workers   int
	Seed      int64
	// Reference forces the interpreted reference trainer instead of the
	// compiled fused-gate BPTT path. The two agree to 1e-8 per gradient
	// element (see internal/nn's parity tests); the switch exists for
	// A/B benchmarks and as an escape hatch, not because the outputs
	// differ meaningfully.
	Reference bool
	// Progress receives per-epoch training loss; return false to stop.
	Progress func(epoch int, loss float64) bool
}

// DefaultTrainOptions trains quickly at simulation scale.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 12, BatchSize: 64, LR: 2e-3, Workers: 0, Seed: 1}
}

// Train fits the network on preprocessed windows and returns the final
// mean training loss. Training runs through the compiled fast path by
// default (see TrainOptions.Reference) and records throughput, clip
// events and per-epoch loss into the process-wide metrics.Training
// recorder, so a serving process that retrains exposes the run on its
// /metrics endpoint.
func (m *Model) Train(windows []traj.Window, opt TrainOptions) float64 {
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Seq: w.Input, Target: w.Target}
	}
	var batchHint uint64
	epochStart := time.Now()
	fitOpt := nn.FitOptions{
		Epochs:    opt.Epochs,
		BatchSize: opt.BatchSize,
		LR:        opt.LR,
		Workers:   opt.Workers,
		Seed:      opt.Seed,
		OnBatch: func(n int, clipped bool) {
			batchHint++
			metrics.Training.Batch(batchHint, n, clipped)
		},
		Progress: func(epoch int, loss float64) bool {
			metrics.Training.Epoch(loss, time.Since(epochStart))
			epochStart = time.Now()
			if opt.Progress != nil {
				return opt.Progress(epoch, loss)
			}
			return true
		},
	}
	var loss float64
	if opt.Reference {
		loss = m.net.Fit(samples, fitOpt)
	} else {
		loss = m.net.CompileTrain().Fit(samples, fitOpt)
	}
	metrics.Training.Run()
	// The weights moved; drop the stale inference snapshot. The next
	// forecast recompiles from the new weights. Forecasts already in
	// flight keep using the old snapshot safely — it shares no storage
	// with the live network.
	m.compiled.Store(nil)
	return loss
}

// ValidationMSE returns the network loss on held-out windows.
func (m *Model) ValidationMSE(windows []traj.Window) float64 {
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Seq: w.Input, Target: w.Target}
	}
	return m.net.MSE(samples)
}

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error { return m.net.Save(w) }

// SaveFile writes the model to a file atomically.
func (m *Model) SaveFile(path string) error { return m.net.SaveFile(path) }

// Load reads a model saved by Save. The svrf Config geometry is
// recovered from the embedded network configuration.
func Load(r io.Reader, cfg Config) (*Model, error) {
	net, err := nn.Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// LoadFile reads a model saved by SaveFile.
func LoadFile(path string, cfg Config) (*Model, error) {
	net, err := nn.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// EvaluateADE scores a predictor on test windows, returning per-horizon
// average displacement error in meters — the Table 1 metric.
func EvaluateADE(p Predictor, windows []traj.Window) *metrics.DisplacementError {
	if len(windows) == 0 {
		return metrics.NewDisplacementError(0)
	}
	horizons := len(windows[0].Truth)
	de := metrics.NewDisplacementError(horizons)
	// Predictors with a buffer-reusing variant (the S-VRF model and the
	// kinematic baseline both have one) are scored through it, so bulk
	// evaluation over tens of thousands of windows reuses one position
	// buffer instead of allocating per window.
	type intoForecaster interface {
		ForecastInto(dst []geo.Point, w traj.Window) []geo.Point
	}
	var (
		buf  []geo.Point
		into intoForecaster
	)
	if f, ok := p.(intoForecaster); ok {
		into = f
	}
	for _, w := range windows {
		var pred []geo.Point
		if into != nil {
			buf = into.ForecastInto(buf, w)
			pred = buf
		} else {
			pred = p.Forecast(w)
		}
		for h := 0; h < horizons && h < len(pred); h++ {
			de.Add(h, geo.Haversine(pred[h], w.Truth[h]))
		}
	}
	return de
}

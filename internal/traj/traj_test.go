package traj

import (
	"math"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
)

var t0 = time.Date(2021, 11, 2, 8, 0, 0, 0, time.UTC)

// straightTrack builds a constant-velocity track reporting every
// `every` for `total`.
func straightTrack(mmsi ais.MMSI, start geo.Point, cog, sog float64, every, total time.Duration) []ais.PositionReport {
	var out []ais.PositionReport
	for dt := time.Duration(0); dt <= total; dt += every {
		p := geo.DeadReckon(start, sog, cog, dt.Seconds())
		out = append(out, ais.PositionReport{
			MMSI: mmsi, Lat: p.Lat, Lon: p.Lon, SOG: sog, COG: cog,
			Timestamp: t0.Add(dt),
		})
	}
	return out
}

func TestDownsampleEnforcesMinimumGap(t *testing.T) {
	track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 90, 12, 10*time.Second, time.Hour)
	ds := Downsample(track, 30*time.Second)
	if len(ds) >= len(track) {
		t.Fatalf("downsampling did not reduce: %d -> %d", len(track), len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if gap := ds[i].Timestamp.Sub(ds[i-1].Timestamp); gap < 30*time.Second {
			t.Fatalf("gap %v below 30 s", gap)
		}
	}
	if !ds[0].Timestamp.Equal(track[0].Timestamp) {
		t.Fatal("first report must be kept")
	}
}

func TestDownsampleKeepsSparse(t *testing.T) {
	track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 90, 12, 2*time.Minute, time.Hour)
	ds := Downsample(track, 30*time.Second)
	if len(ds) != len(track) {
		t.Fatalf("sparse track must be untouched: %d -> %d", len(track), len(ds))
	}
	if Downsample(nil, 30*time.Second) != nil {
		t.Fatal("empty input must stay empty")
	}
}

func TestBuildWindowsGeometry(t *testing.T) {
	cfg := DefaultConfig()
	track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, 3*time.Hour)
	windows := BuildWindows(track, cfg)
	if len(windows) == 0 {
		t.Fatal("no windows from a 3-hour track")
	}
	for _, w := range windows {
		if len(w.Input) != cfg.InputSteps {
			t.Fatalf("input steps %d", len(w.Input))
		}
		for _, row := range w.Input {
			if len(row) != 3 {
				t.Fatalf("feature dim %d", len(row))
			}
		}
		if len(w.Target) != 2*cfg.Horizons {
			t.Fatalf("target dim %d", len(w.Target))
		}
		if len(w.Truth) != cfg.Horizons {
			t.Fatalf("truth points %d", len(w.Truth))
		}
	}
}

func TestWindowTargetsMatchTruth(t *testing.T) {
	// Reconstructing positions from the scaled transitions must land on
	// the interpolated truth.
	cfg := DefaultConfig()
	track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 80, 12, 30*time.Second, 2*time.Hour)
	windows := BuildWindows(track, cfg)
	if len(windows) == 0 {
		t.Fatal("no windows")
	}
	for _, w := range windows[:3] {
		pts := PredictedPositions(w.LastPos, w.Target)
		for h, p := range pts {
			if d := geo.Haversine(p, w.Truth[h]); d > 5 {
				t.Fatalf("horizon %d: reconstructed %.1f m from truth", h, d)
			}
		}
	}
}

func TestWindowTruthOnStraightLine(t *testing.T) {
	// For constant-velocity motion, truth at horizon h must be SOG * t
	// from the anchor.
	cfg := DefaultConfig()
	sog := 10.0
	track := straightTrack(1001, geo.Point{Lat: 40, Lon: -20}, 0, sog, 30*time.Second, 2*time.Hour)
	w := BuildWindows(track, cfg)[0]
	for h, p := range w.Truth {
		wantDist := sog * geo.KnotsToMetersPerSecond * float64(h+1) * 300
		got := geo.Haversine(w.LastPos, p)
		if math.Abs(got-wantDist) > 20 {
			t.Fatalf("horizon %d: truth at %.0f m, want %.0f m", h, got, wantDist)
		}
	}
}

func TestWindowsRejectLongGaps(t *testing.T) {
	cfg := DefaultConfig()
	// Track with a 30-minute hole in the middle.
	a := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 90, 12, 30*time.Second, 20*time.Minute)
	hole := t0.Add(50 * time.Minute)
	b := straightTrack(1001, geo.Point{Lat: 37.2, Lon: 24.2}, 90, 12, 30*time.Second, 20*time.Minute)
	for i := range b {
		b[i].Timestamp = hole.Add(b[i].Timestamp.Sub(t0))
	}
	track := append(a, b...)
	for _, w := range BuildWindows(track, cfg) {
		for _, row := range w.Input {
			if row[2]*DtScale > cfg.MaxInputGap.Seconds() {
				t.Fatalf("window contains a %v gap", time.Duration(row[2]*DtScale)*time.Second)
			}
		}
	}
}

func TestWindowsInsufficientData(t *testing.T) {
	cfg := DefaultConfig()
	short := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 90, 12, 30*time.Second, 5*time.Minute)
	if w := BuildWindows(short, cfg); w != nil {
		t.Fatalf("short track produced %d windows", len(w))
	}
	// A track long enough for input but with no 30-minute future must
	// yield nothing either.
	borderline := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 90, 12, 30*time.Second, 12*time.Minute)
	if w := BuildWindows(borderline, cfg); w != nil {
		t.Fatalf("track without future produced %d windows", len(w))
	}
}

func TestInputFromReports(t *testing.T) {
	// Due north along a meridian: displacement rows are exactly constant
	// (an eastward "straight" course is a great circle that curves in
	// lat/lon space, so this is the only truly constant direction).
	track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 0, 12, 30*time.Second, time.Hour)
	in, anchor, ok := InputFromReports(track, 20, 30*time.Second)
	if !ok || len(in) != 20 {
		t.Fatalf("input length %d ok=%v", len(in), ok)
	}
	for i := 1; i < len(in); i++ {
		if math.Abs(in[i][0]-in[0][0]) > 1e-6 || math.Abs(in[i][1]-in[0][1]) > 1e-6 {
			t.Fatalf("row %d differs on a straight track", i)
		}
	}
	if anchor.Timestamp.After(track[len(track)-1].Timestamp) {
		t.Fatal("anchor postdates newest report")
	}
	if _, _, ok := InputFromReports(track[:5], 20, 30*time.Second); ok {
		t.Fatal("insufficient history must not build input")
	}
}

func TestSplitFractions(t *testing.T) {
	track := straightTrack(1001, geo.Point{Lat: 37, Lon: 24}, 90, 12, 30*time.Second, 6*time.Hour)
	cfg := DefaultConfig()
	cfg.Stride = 1
	windows := BuildWindows(track, cfg)
	if len(windows) < 100 {
		t.Fatalf("only %d windows", len(windows))
	}
	train, val, test := Split(windows, 0.5, 0.25, 7)
	if len(train)+len(val)+len(test) != len(windows) {
		t.Fatal("split lost windows")
	}
	if math.Abs(float64(len(train))/float64(len(windows))-0.5) > 0.02 {
		t.Fatalf("train fraction %f", float64(len(train))/float64(len(windows)))
	}
	// Deterministic for a fixed seed.
	train2, _, _ := Split(windows, 0.5, 0.25, 7)
	for i := range train {
		if train[i].LastTime != train2[i].LastTime {
			t.Fatal("split not deterministic")
		}
	}
}

func TestWindowsFromSimulatedFleet(t *testing.T) {
	// End-to-end: recorded simulator tracks must yield valid windows
	// with irregular dt features.
	ds := fleetsim.Record(geo.AegeanSea, 30, 3*time.Hour, 11)
	cfg := DefaultConfig()
	total := 0
	irregular := false
	for _, tr := range ds.Tracks {
		ws := BuildWindows(tr.Reports, cfg)
		total += len(ws)
		for _, w := range ws {
			dt0 := w.Input[0][2]
			for _, row := range w.Input {
				if row[2] <= 0 {
					t.Fatal("non-positive dt feature")
				}
				if math.Abs(row[2]-dt0) > 1e-9 {
					irregular = true
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no windows from simulated fleet")
	}
	if !irregular {
		t.Fatal("simulated AIS produced perfectly regular sampling")
	}
}

func TestDownsampledIntervalStatsNearPaper(t *testing.T) {
	// §6.1: after 30 s downsampling the stream averages 78.6 s with a
	// large standard deviation. The simulator should land in the same
	// regime: mean well above 30 s, std comparable to or above the mean.
	if testing.Short() {
		t.Skip("short mode")
	}
	ds := fleetsim.Record(geo.EuropeanCoverage, 150, 4*time.Hour, 13)
	var sum, sumSq float64
	n := 0
	for _, tr := range ds.Tracks {
		d := Downsample(tr.Reports, 30*time.Second)
		for i := 1; i < len(d); i++ {
			dt := d[i].Timestamp.Sub(d[i-1].Timestamp).Seconds()
			sum += dt
			sumSq += dt * dt
			n++
		}
	}
	if n == 0 {
		t.Fatal("no intervals")
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if mean < 40 || mean > 200 {
		t.Fatalf("downsampled mean interval %.1f s, want O(80 s)", mean)
	}
	if std < mean*0.8 {
		t.Fatalf("std %.1f s vs mean %.1f s: tail too light", std, mean)
	}
}

// TestPredictedPositionsAntimeridian walks predicted tracks across the
// ±180 boundary and asserts every produced position stays inside
// geo.Point's half-open longitude domain [-180, 180). The table covers
// eastward and westward crossings, a step landing exactly on the
// antimeridian (must come out as -180, never +180), and a multi-step
// track that crosses and comes back.
func TestPredictedPositionsAntimeridian(t *testing.T) {
	// One output pair is (dLat*DegScale, dLon*DegScale).
	step := func(dLat, dLon float64) []float64 {
		return []float64{dLat * DegScale, dLon * DegScale}
	}
	cat := func(steps ...[]float64) []float64 {
		var out []float64
		for _, s := range steps {
			out = append(out, s...)
		}
		return out
	}
	cases := []struct {
		name    string
		anchor  geo.Point
		output  []float64
		wantLon []float64
	}{
		{
			name:    "eastward crossing wraps negative",
			anchor:  geo.Point{Lat: 52, Lon: 179.95},
			output:  cat(step(0, 0.1), step(0, 0.1)),
			wantLon: []float64{-179.95, -179.85},
		},
		{
			name:    "westward crossing wraps positive",
			anchor:  geo.Point{Lat: -10, Lon: -179.9},
			output:  cat(step(0, -0.2), step(0, -0.2)),
			wantLon: []float64{179.9, 179.7},
		},
		{
			name:    "landing exactly on the antimeridian is -180",
			anchor:  geo.Point{Lat: 0, Lon: 179.5},
			output:  cat(step(0, 0.5)),
			wantLon: []float64{-180},
		},
		{
			name:    "from the -180 edge and back across",
			anchor:  geo.Point{Lat: 60, Lon: -180},
			output:  cat(step(0, -0.25), step(0, 0.5)),
			wantLon: []float64{179.75, -179.75},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := PredictedPositionsInto(nil, tc.anchor, tc.output)
			if len(pts) != len(tc.wantLon) {
				t.Fatalf("got %d points, want %d", len(pts), len(tc.wantLon))
			}
			for i, p := range pts {
				if !p.Valid() {
					t.Errorf("point %d = %v is outside the coordinate domain", i, p)
				}
				if diff := p.Lon - tc.wantLon[i]; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("point %d lon = %v, want %v", i, p.Lon, tc.wantLon[i])
				}
			}
		})
	}
}

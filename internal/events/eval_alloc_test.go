package events

import (
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/svrf"
)

// The vessel-actor hot path calls ForecastTrack on every position
// report. The forecast itself must be freshly allocated — its points
// fan out to other actors and outlive the call — but everything else
// (input assembly, network scratch) is pooled, so the per-call
// allocation count must stay a small constant regardless of history
// length, not scale with the work done inside.
func TestSVRFForecastTrackBoundedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; the alloc bound holds only in normal builds")
	}
	m, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fc := SVRFForecaster{Model: m}
	history := make([]ais.PositionReport, 0, 48)
	start := geo.Point{Lat: 37, Lon: 24}
	for i := 0; i < 48; i++ {
		p := geo.DeadReckon(start, 14, 45, float64(i)*30)
		history = append(history, ais.PositionReport{
			MMSI: 1001, Lat: p.Lat, Lon: p.Lon, SOG: 14, COG: 45,
			Timestamp: t0.Add(time.Duration(i) * 30 * time.Second),
		})
	}
	if _, ok := fc.ForecastTrack(history); !ok { // compile + warm pools
		t.Fatal("warm-up forecast failed")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, ok := fc.ForecastTrack(history); !ok {
			t.Fatal("forecast failed")
		}
	})
	// Expected steady state: the returned points slice and the forecast
	// points slice. Anything near the old per-call count (hundreds: the
	// reference network cache alone was 249) is a regression.
	if allocs > 8 {
		t.Fatalf("ForecastTrack allocates %v/op, want a small constant (<= 8)", allocs)
	}
}

package events

import (
	"sort"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/metrics"
	"seatwin/internal/svrf"
)

// TrackForecaster turns a vessel's received AIS history into a
// timestamped forecast trajectory. It abstracts over the S-VRF model
// and the linear kinematic baseline for the Table 2 experiments.
type TrackForecaster interface {
	Name() string
	// ForecastTrack returns the present position plus the predicted
	// points; ok is false when the history is unusable.
	ForecastTrack(history []ais.PositionReport) (Forecast, bool)
}

// KinematicForecaster dead-reckons from the last report.
type KinematicForecaster struct {
	Horizons int
	Step     time.Duration
}

// NewKinematicForecaster returns the 6x5-minute baseline.
func NewKinematicForecaster() KinematicForecaster {
	return KinematicForecaster{Horizons: 6, Step: 5 * time.Minute}
}

// Name implements TrackForecaster.
func (k KinematicForecaster) Name() string { return "Linear Kinematic" }

// ForecastTrack implements TrackForecaster.
func (k KinematicForecaster) ForecastTrack(history []ais.PositionReport) (Forecast, bool) {
	if len(history) == 0 {
		return Forecast{}, false
	}
	last := history[len(history)-1]
	pos := geo.Point{Lat: last.Lat, Lon: last.Lon}
	sog := last.SOG
	if sog < 0 {
		sog = 0
	}
	f := Forecast{MMSI: last.MMSI, Points: make([]ForecastPoint, 0, k.Horizons+1)}
	f.Points = append(f.Points, ForecastPoint{Pos: pos, At: last.Timestamp})
	for h := 1; h <= k.Horizons; h++ {
		dt := time.Duration(h) * k.Step
		f.Points = append(f.Points, ForecastPoint{
			Pos: geo.DeadReckon(pos, sog, last.COG, dt.Seconds()),
			At:  last.Timestamp.Add(dt),
		})
	}
	return f, true
}

// SVRFForecaster adapts a trained S-VRF model.
type SVRFForecaster struct {
	Model *svrf.Model
}

// Name implements TrackForecaster.
func (s SVRFForecaster) Name() string { return s.Model.Name() }

// ForecastTrack implements TrackForecaster.
func (s SVRFForecaster) ForecastTrack(history []ais.PositionReport) (Forecast, bool) {
	pts, anchor, ok := s.Model.ForecastReports(history)
	if !ok {
		return Forecast{}, false
	}
	cfg := s.Model.Config()
	f := Forecast{MMSI: anchor.MMSI, Points: make([]ForecastPoint, 0, len(pts)+1)}
	f.Points = append(f.Points, ForecastPoint{
		Pos: geo.Point{Lat: anchor.Lat, Lon: anchor.Lon}, At: anchor.Timestamp,
	})
	for h, p := range pts {
		f.Points = append(f.Points, ForecastPoint{
			Pos: p, At: anchor.Timestamp.Add(time.Duration(h+1) * cfg.HorizonStep),
		})
	}
	return f, true
}

// ForecastTracks forecasts every history with fc, preserving order and
// skipping unusable histories. Forecasters with a bulk path — the
// S-VRF adapter batches all inputs through the compiled network — are
// detected and used; anything else falls back to per-track calls.
func ForecastTracks(fc TrackForecaster, histories [][]ais.PositionReport) []Forecast {
	type batcher interface {
		ForecastTracks(histories [][]ais.PositionReport) []Forecast
	}
	if b, ok := fc.(batcher); ok {
		return b.ForecastTracks(histories)
	}
	out := make([]Forecast, 0, len(histories))
	for _, h := range histories {
		if f, ok := fc.ForecastTrack(h); ok {
			out = append(out, f)
		}
	}
	return out
}

// ForecastTracks is the bulk form of ForecastTrack: one batched pass
// of the compiled network over every usable history.
func (s SVRFForecaster) ForecastTracks(histories [][]ais.PositionReport) []Forecast {
	pts, anchors, ok := s.Model.ForecastReportsBatch(histories, 0)
	cfg := s.Model.Config()
	out := make([]Forecast, 0, len(histories))
	for i := range histories {
		if !ok[i] {
			continue
		}
		anchor := anchors[i]
		f := Forecast{MMSI: anchor.MMSI, Points: make([]ForecastPoint, 0, len(pts[i])+1)}
		f.Points = append(f.Points, ForecastPoint{
			Pos: geo.Point{Lat: anchor.Lat, Lon: anchor.Lon}, At: anchor.Timestamp,
		})
		for h, p := range pts[i] {
			f.Points = append(f.Points, ForecastPoint{
				Pos: p, At: anchor.Timestamp.Add(time.Duration(h+1) * cfg.HorizonStep),
			})
		}
		out = append(out, f)
	}
	return out
}

// CollisionEvaluation is one row of the Table 2 experiment grid.
type CollisionEvaluation struct {
	Dataset     string
	Forecaster  string
	Threshold   time.Duration
	TruthEvents int
	metrics.Confusion
	Detected []Event
}

// EvaluateCollision runs the collision forecaster over a proximity
// scenario and scores it against the ground truth: the paper's Table 2
// procedure. truth selects the evaluated subset (e.g. events within 2
// or 5 minutes); the vessel population is restricted to the vessels
// participating in those events plus `extras` uninvolved vessels as
// false-positive candidates (0 keeps everyone, mirroring the full
// dataset row).
func EvaluateCollision(
	ds *fleetsim.ProximityDataset,
	fc TrackForecaster,
	truth []fleetsim.ProximityEvent,
	restrictToTruthVessels bool,
	threshold time.Duration,
	datasetName string,
) CollisionEvaluation {
	cfg := CollisionConfig{TemporalThreshold: threshold, SpatialThresholdMeters: 1852}

	// Vessel population.
	var population []ais.MMSI
	if restrictToTruthVessels {
		set := map[ais.MMSI]bool{}
		for _, e := range truth {
			set[e.A] = true
			set[e.B] = true
		}
		for id := range set {
			population = append(population, id)
		}
	} else {
		for id := range ds.History {
			population = append(population, id)
		}
	}
	sort.Slice(population, func(i, j int) bool { return population[i] < population[j] })

	// Forecast every vessel in the population (batched through the
	// compiled network when the forecaster supports it).
	histories := make([][]ais.PositionReport, len(population))
	for i, id := range population {
		histories[i] = ds.History[id]
	}
	forecasts := ForecastTracks(fc, histories)

	// All-pairs detection (the pipeline shards this by hexgrid cell;
	// the evaluation scores the algorithm itself).
	detectedPairs := map[string]Event{}
	for i := 0; i < len(forecasts); i++ {
		for j := i + 1; j < len(forecasts); j++ {
			if e, ok := CheckPair(forecasts[i], forecasts[j], cfg); ok {
				e.DetectedAt = ds.EvalTime
				key := e.PairKey()
				if prev, dup := detectedPairs[key]; !dup || e.Meters < prev.Meters {
					detectedPairs[key] = e
				}
			}
		}
	}

	truthPairs := map[string]bool{}
	for _, e := range truth {
		truthPairs[(Event{A: e.A, B: e.B}).PairKey()] = true
	}

	ev := CollisionEvaluation{
		Dataset:     datasetName,
		Forecaster:  fc.Name(),
		Threshold:   threshold,
		TruthEvents: len(truthPairs),
	}
	for key, e := range detectedPairs {
		if truthPairs[key] {
			ev.TP++
		} else {
			ev.FP++
		}
		ev.Detected = append(ev.Detected, e)
	}
	ev.FN = len(truthPairs) - ev.TP
	sort.Slice(ev.Detected, func(i, j int) bool { return ev.Detected[i].At.Before(ev.Detected[j].At) })
	return ev
}

package pipeline

import (
	"testing"
	"time"

	"seatwin/internal/broker"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// TestOutputTopics verifies the §7 output-streams extension: writer
// actors produce vessel states and events onto dedicated broker topics
// that external consumers can subscribe to.
func TestOutputTopics(t *testing.T) {
	out := broker.New()
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.OutputBroker = out
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	// External consumers subscribe before traffic flows.
	states, err := out.Subscribe("seatwin-states", "external")
	if err != nil {
		t.Fatal(err)
	}
	evs, err := out.Subscribe("seatwin-events", "external")
	if err != nil {
		t.Fatal(err)
	}

	// A proximity pair produces both states and events.
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	feedTrack(p, 950000001, base, 0, 8, 3, 30*time.Second, t0)
	feedTrack(p, 950000002, geo.Destination(base, 90, 200), 0, 8, 3, 30*time.Second, t0.Add(3*time.Second))
	p.Drain(5 * time.Second)

	recs := states.Poll(100, 2*time.Second)
	if len(recs) < 6 {
		t.Fatalf("states topic received %d records, want >= 6", len(recs))
	}
	so, ok := recs[0].Value.(StateOutput)
	if !ok {
		t.Fatalf("state record is %T", recs[0].Value)
	}
	if !so.Report.MMSI.Valid() || len(so.Forecast) == 0 {
		t.Fatalf("state output incomplete: %+v", so)
	}
	// Keyed by MMSI: every record for one vessel lands on one partition.
	partitionsSeen := map[string]map[int]bool{}
	for _, r := range recs {
		if partitionsSeen[r.Key] == nil {
			partitionsSeen[r.Key] = map[int]bool{}
		}
		partitionsSeen[r.Key][r.Partition] = true
	}
	for key, parts := range partitionsSeen {
		if len(parts) != 1 {
			t.Fatalf("vessel %s spread over %d partitions", key, len(parts))
		}
	}

	erecs := evs.Poll(100, 2*time.Second)
	if len(erecs) == 0 {
		t.Fatal("events topic received nothing")
	}
	ev, ok := erecs[0].Value.(events.Event)
	if !ok {
		t.Fatalf("event record is %T", erecs[0].Value)
	}
	if ev.Kind == "" || ev.A == 0 {
		t.Fatalf("event incomplete: %+v", ev)
	}
}

package chaos

import (
	"errors"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/events"
	"seatwin/internal/kvstore"
)

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("error=0.1,latency=5ms,panic=0.001,truncate=0.02,keep=64,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Policy{ErrorRate: 0.1, PanicRate: 0.001, Latency: 5 * time.Millisecond,
		TruncateRate: 0.02, TruncateKeep: 64, Seed: 7}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if !p.Enabled() {
		t.Fatal("parsed policy must report Enabled")
	}
}

func TestParseSpecOffAndEmpty(t *testing.T) {
	for _, spec := range []string{"", "off", "  "} {
		p, err := ParseSpec(spec)
		if err != nil || p.Enabled() {
			t.Fatalf("spec %q: policy=%+v err=%v", spec, p, err)
		}
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	for _, spec := range []string{
		"error=1.5",        // rate outside [0,1]
		"error=-0.1",       // negative rate
		"latency=-5ms",     // negative latency
		"latency=nope",     // unparseable duration
		"bogus=1",          // unknown key
		"error",            // not key=value
		"error=0.1,,",      // empty entry
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q must be rejected", spec)
		}
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.fault("x"); err != nil {
		t.Fatal(err)
	}
	if in.Stats() != (Stats{}) || in.Policy().Enabled() {
		t.Fatal("nil injector must be inert")
	}
}

func TestInjectorErrorRateAndStats(t *testing.T) {
	in := New(Policy{ErrorRate: 1})
	err := in.fault("op")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := in.Stats().Errors; got != 1 {
		t.Fatalf("error count = %d", got)
	}
	// Rate 0 with another fault enabled never errors.
	in = New(Policy{ErrorRate: 0, Latency: time.Nanosecond})
	for i := 0; i < 100; i++ {
		if err := in.fault("op"); err != nil {
			t.Fatal("zero error rate must never inject errors")
		}
	}
}

func TestInjectorPanics(t *testing.T) {
	in := New(Policy{PanicRate: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("panic rate 1 must panic")
		}
		if got := in.Stats().Panics; got != 1 {
			t.Fatalf("panic count = %d", got)
		}
	}()
	_ = in.fault("op")
}

func TestInjectorDeterministicSequence(t *testing.T) {
	p := Policy{ErrorRate: 0.5, Seed: 42}
	run := func() []bool {
		in := New(p)
		out := make([]bool, 50)
		for i := range out {
			out[i] = in.fault("op") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at %d despite equal seeds", i)
		}
	}
}

func TestKVInjectsOnEveryOp(t *testing.T) {
	st := kvstore.New()
	defer st.Close()
	kv := WrapKV(st, New(Policy{ErrorRate: 1}))

	if _, err := kv.HSetMulti("k", map[string]string{"a": "1"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("HSetMulti err = %v", err)
	}
	if _, err := kv.HGetAll("k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("HGetAll err = %v", err)
	}
	if _, err := kv.ZAdd("z", 1, "m"); !errors.Is(err, ErrInjected) {
		t.Fatalf("ZAdd err = %v", err)
	}
	if n := kv.Publish("ch", "x"); n != 0 {
		t.Fatalf("faulted Publish delivered to %d", n)
	}
	if n := kv.Del("k"); n != 0 {
		t.Fatalf("faulted Del removed %d", n)
	}
	// With chaos off the wrapper is transparent.
	kv = WrapKV(st, nil)
	if _, err := kv.HSetMulti("k", map[string]string{"a": "1"}); err != nil {
		t.Fatal(err)
	}
	fields, err := kv.HGetAll("k")
	if err != nil || fields["a"] != "1" {
		t.Fatalf("passthrough read: %v %v", fields, err)
	}
	if kv.Inner() != st {
		t.Fatal("Inner must expose the wrapped store")
	}
}

func TestProducerFaultsAndTruncates(t *testing.T) {
	b := broker.New()
	defer b.Close()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}

	pr := WrapProducer(b, New(Policy{ErrorRate: 1}))
	if _, _, err := pr.Produce("t", "k", "v"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Produce err = %v", err)
	}
	ends, _ := b.EndOffsets("t")
	if ends[0] != 0 {
		t.Fatalf("faulted produce appended a record (end=%d)", ends[0])
	}

	// Truncation keeps the topic's tail; every produce fires it here.
	pr = WrapProducer(b, New(Policy{TruncateRate: 1, TruncateKeep: 2}))
	for i := 0; i < 10; i++ {
		if _, _, err := pr.Produce("t", "k", i); err != nil {
			t.Fatal(err)
		}
	}
	if got := pr.in.Stats().Truncations; got != 10 {
		t.Fatalf("truncation count = %d", got)
	}
}

func TestConsumerFaultStallsWithoutLoss(t *testing.T) {
	b := broker.New()
	defer b.Close()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	inner, err := b.Subscribe("t", "g")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := b.Produce("t", "k", i); err != nil {
			t.Fatal(err)
		}
	}

	c := WrapConsumer(inner, New(Policy{ErrorRate: 1}))
	recs := c.Poll(10, 0)
	if recs == nil || len(recs) != 0 {
		t.Fatalf("faulted poll = %v, want empty non-nil batch", recs)
	}
	c.Commit() // faulted: skipped

	// Chaos off again: all five records are still there — the stall
	// lost nothing.
	c = WrapConsumer(inner, nil)
	var got int
	deadline := time.Now().Add(2 * time.Second)
	for got < 5 && time.Now().Before(deadline) {
		got += len(c.Poll(10, 50*time.Millisecond))
	}
	if got != 5 {
		t.Fatalf("recovered %d records, want 5", got)
	}
	c.Commit()
	c.Close()
}

func TestForecasterDegradesAndPanics(t *testing.T) {
	base := events.NewKinematicForecaster()
	history := []ais.PositionReport{{
		MMSI: 1, Lat: 37, Lon: 24, SOG: 10, COG: 90,
		Timestamp: time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC),
	}}

	fc := WrapForecaster(base, New(Policy{ErrorRate: 1}))
	if _, ok := fc.ForecastTrack(history); ok {
		t.Fatal("faulted forecast must refuse (ok=false)")
	}
	if fc.Name() == base.Name() {
		t.Fatal("chaos forecaster must label itself")
	}

	fc = WrapForecaster(base, nil)
	if _, ok := fc.ForecastTrack(history); !ok {
		t.Fatal("passthrough forecast must succeed")
	}

	fc = WrapForecaster(base, New(Policy{PanicRate: 1}))
	defer func() {
		if recover() == nil {
			t.Fatal("panic rate 1 must panic through the forecaster")
		}
	}()
	fc.ForecastTrack(history)
}

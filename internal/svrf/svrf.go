// Package svrf implements the paper's Short-term Vessel Route
// Forecasting model (§4.2, Figure 3): a BiLSTM over the last 20
// spatiotemporal displacements of a vessel followed by a fully
// connected layer emitting six (Δlat, Δlon) transitions at 5-minute
// intervals up to a 30-minute horizon, with L1 in-layer regularisation —
// plus the linear kinematic baseline the evaluation compares against
// (Table 1).
//
// A single trained Model is safe for concurrent forecasting and is
// intended to be mounted once per process and shared by every vessel
// actor, as the paper's integration does.
package svrf

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/metrics"
	"seatwin/internal/nn"
	"seatwin/internal/traj"
)

// Predictor forecasts a vessel's future positions from a preprocessed
// trajectory window.
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Forecast returns one position per horizon (6 positions spanning
	// 5..30 minutes for the default configuration).
	Forecast(w traj.Window) []geo.Point
}

// Kinematic is the linear baseline of §6.1: dead reckoning from the
// last reported position, speed over ground and course over ground.
type Kinematic struct {
	Horizons    int
	HorizonStep time.Duration
}

// NewKinematic returns the baseline with the paper's geometry.
func NewKinematic() Kinematic {
	return Kinematic{Horizons: 6, HorizonStep: 5 * time.Minute}
}

// Name implements Predictor.
func (k Kinematic) Name() string { return "Linear Kinematic Model" }

// Forecast implements Predictor.
func (k Kinematic) Forecast(w traj.Window) []geo.Point {
	return k.ForecastInto(nil, w)
}

// ForecastInto is Forecast into a caller-provided buffer, reused when
// it has the capacity for Horizons positions.
func (k Kinematic) ForecastInto(dst []geo.Point, w traj.Window) []geo.Point {
	if cap(dst) >= k.Horizons {
		dst = dst[:k.Horizons]
	} else {
		dst = make([]geo.Point, k.Horizons)
	}
	sog, cog := w.LastSOG, w.LastCOG
	if sog < 0 {
		sog = 0
	}
	for h := 1; h <= k.Horizons; h++ {
		dt := time.Duration(h) * k.HorizonStep
		dst[h-1] = geo.DeadReckon(w.LastPos, sog, cog, dt.Seconds())
	}
	return dst
}

// Config shapes the S-VRF network. Defaults follow the paper's reduced
// architecture: fixed 20-step input, BiLSTM, 6-transition output.
type Config struct {
	InputSteps  int
	Hidden      int
	Horizons    int
	HorizonStep time.Duration
	Downsample  time.Duration
	// Bidirectional selects BiLSTM (the paper's final architecture)
	// versus plain LSTM (its earlier iteration, kept for the ablation).
	Bidirectional bool
	L1            float64
	Seed          int64
}

// DefaultConfig returns the Figure 3 architecture.
func DefaultConfig() Config {
	return Config{
		InputSteps:    20,
		Hidden:        32,
		Horizons:      6,
		HorizonStep:   5 * time.Minute,
		Downsample:    30 * time.Second,
		Bidirectional: true,
		L1:            1e-5,
		Seed:          1,
	}
}

// Model is the trained S-VRF network.
type Model struct {
	cfg Config
	net *nn.SeqRegressor

	// weightsMu serialises everything that mutates or reads the raw
	// network weights: Train, SwapWeightsFrom, Clone, ValidationMSE,
	// Save and the slow compile path. The forecast hot path never takes
	// it — serving reads go through the compiled snapshot below.
	weightsMu sync.Mutex
	// gen counts weight generations. It is bumped (under weightsMu)
	// every time the weights change; a compiled snapshot is current only
	// while its recorded generation matches.
	gen atomic.Uint64
	// compiled caches the fused inference snapshot of the current
	// weights, tagged with the generation it was compiled from.
	// Forecasting goes through it instead of the reference Predict, so
	// the vessel-actor hot path runs the zero-allocation kernel.
	compiled atomic.Pointer[compiledSnap]
}

// compiledSnap pairs an inference snapshot with the weight generation
// it was compiled from, so a snapshot built from weights that have
// since moved can never be mistaken for current.
type compiledSnap struct {
	gen uint64
	c   *nn.Compiled
}

// compiledNet returns an inference snapshot of the current weight
// generation, compiling one on first use or after the weights moved.
//
// The fast path is two atomic loads and a comparison — no locks, no
// allocation. The slow path takes weightsMu so a compile can never
// overlap a weight mutation: the earlier lock-free design (compile,
// then CAS over nil) could read half-updated weights while Train was
// writing them and publish that torn snapshot *after* Train's
// invalidation, pinning stale weights until the next Train. Tagging
// snapshots with the generation they came from makes that impossible:
// a snapshot compiled from generation g is ignored once the live
// generation has moved past g.
func (m *Model) compiledNet() *nn.Compiled {
	if s := m.compiled.Load(); s != nil && s.gen == m.gen.Load() {
		return s.c
	}
	return m.compileSlow()
}

func (m *Model) compileSlow() *nn.Compiled {
	m.weightsMu.Lock()
	defer m.weightsMu.Unlock()
	// Re-check under the lock: another forecaster may have compiled
	// while this one waited.
	gen := m.gen.Load()
	if s := m.compiled.Load(); s != nil && s.gen == gen {
		return s.c
	}
	c := m.net.Compile()
	m.compiled.Store(&compiledSnap{gen: gen, c: c})
	return c
}

// publishCompiledLocked compiles the current weights and publishes the
// snapshot for the current generation. Callers must hold weightsMu and
// have already bumped gen for the new weights.
func (m *Model) publishCompiledLocked() {
	m.compiled.Store(&compiledSnap{gen: m.gen.Load(), c: m.net.Compile()})
}

// New builds an untrained model.
func New(cfg Config) (*Model, error) {
	net, err := nn.NewSeqRegressor(nn.Config{
		InputDim:      3,
		Hidden:        cfg.Hidden,
		OutputDim:     2 * cfg.Horizons,
		Bidirectional: cfg.Bidirectional,
		L1:            cfg.L1,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// Name implements Predictor.
func (m *Model) Name() string {
	if m.cfg.Bidirectional {
		return "S-VRF"
	}
	return "S-VRF (LSTM)"
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Forecast implements Predictor.
func (m *Model) Forecast(w traj.Window) []geo.Point {
	return m.ForecastInto(nil, w)
}

// ForecastInto is Forecast into a caller-provided buffer: the compiled
// network runs in pooled scratch and the positions are written into
// dst (reused when it has capacity for Horizons points). Steady-state
// calls with a warm dst do not allocate.
func (m *Model) ForecastInto(dst []geo.Point, w traj.Window) []geo.Point {
	c := m.compiledNet()
	s := c.GetScratch()
	out := c.PredictInto(nil, w.Input, s)
	dst = traj.PredictedPositionsInto(dst, w.LastPos, out)
	c.PutScratch(s)
	return dst
}

// ForecastReports runs the live on-stream path: it converts the most
// recent reports into the model input and forecasts from the anchor
// (the last report that entered the input). It also returns the
// anchor so callers can timestamp the forecast points correctly. ok is
// false when the history is too short.
func (m *Model) ForecastReports(reports []ais.PositionReport) (pts []geo.Point, anchor ais.PositionReport, ok bool) {
	return m.ForecastReportsInto(nil, reports)
}

// ForecastReportsInto is ForecastReports into a caller-provided
// position buffer. The model input is assembled in a pooled
// traj.InputBuffer and inference runs in pooled scratch, so with a
// warm dst the per-report cost of the vessel-actor hot path is
// allocation-free.
func (m *Model) ForecastReportsInto(dst []geo.Point, reports []ais.PositionReport) (pts []geo.Point, anchor ais.PositionReport, ok bool) {
	b := traj.GetInputBuffer()
	input, anchor, ok := b.InputFromReports(reports, m.cfg.InputSteps, m.cfg.Downsample)
	if !ok {
		traj.PutInputBuffer(b)
		return nil, ais.PositionReport{}, false
	}
	c := m.compiledNet()
	s := c.GetScratch()
	out := c.PredictInto(nil, input, s)
	pts = traj.PredictedPositionsInto(dst, geo.Point{Lat: anchor.Lat, Lon: anchor.Lon}, out)
	c.PutScratch(s)
	traj.PutInputBuffer(b)
	return pts, anchor, true
}

// ForecastReportsBatch runs ForecastReports over many vessels' report
// histories at once, pushing every usable input through the compiled
// network's batch path (the bulk shape of the Figure 6 replay and the
// VTFF rasterisation). workers follows nn.(*Compiled).PredictBatch
// semantics: <= 0 picks a sensible worker count, 1 stays sequential.
// The returned slices are indexed like histories; ok[i] is false when
// history i was too short to forecast, in which case pts[i] is nil.
func (m *Model) ForecastReportsBatch(histories [][]ais.PositionReport, workers int) (pts [][]geo.Point, anchors []ais.PositionReport, ok []bool) {
	pts = make([][]geo.Point, len(histories))
	anchors = make([]ais.PositionReport, len(histories))
	ok = make([]bool, len(histories))
	seqs := make([][][]float64, 0, len(histories))
	idx := make([]int, 0, len(histories))
	for i, h := range histories {
		// Inputs must all be alive for the batch call, so they are built
		// with the allocating path rather than a shared pooled buffer.
		input, anchor, good := traj.InputFromReports(h, m.cfg.InputSteps, m.cfg.Downsample)
		if !good {
			continue
		}
		anchors[i] = anchor
		ok[i] = true
		seqs = append(seqs, input)
		idx = append(idx, i)
	}
	if len(seqs) == 0 {
		return pts, anchors, ok
	}
	outs := m.compiledNet().PredictBatch(nil, seqs, workers)
	for j, i := range idx {
		pts[i] = traj.PredictedPositionsInto(nil, geo.Point{Lat: anchors[i].Lat, Lon: anchors[i].Lon}, outs[j])
	}
	return pts, anchors, ok
}

// TrainOptions controls Train.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Workers   int
	Seed      int64
	// Reference forces the interpreted reference trainer instead of the
	// compiled fused-gate BPTT path. The two agree to 1e-8 per gradient
	// element (see internal/nn's parity tests); the switch exists for
	// A/B benchmarks and as an escape hatch, not because the outputs
	// differ meaningfully.
	Reference bool
	// Progress receives per-epoch training loss; return false to stop.
	Progress func(epoch int, loss float64) bool
}

// DefaultTrainOptions trains quickly at simulation scale.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 12, BatchSize: 64, LR: 2e-3, Workers: 0, Seed: 1}
}

// Train fits the network on preprocessed windows and returns the final
// mean training loss. Training runs through the compiled fast path by
// default (see TrainOptions.Reference) and records throughput, clip
// events and per-epoch loss into the process-wide metrics.Training
// recorder, so a serving process that retrains exposes the run on its
// /metrics endpoint.
func (m *Model) Train(windows []traj.Window, opt TrainOptions) float64 {
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Seq: w.Input, Target: w.Target}
	}
	var batchHint uint64
	epochStart := time.Now()
	fitOpt := nn.FitOptions{
		Epochs:    opt.Epochs,
		BatchSize: opt.BatchSize,
		LR:        opt.LR,
		Workers:   opt.Workers,
		Seed:      opt.Seed,
		OnBatch: func(n int, clipped bool) {
			batchHint++
			metrics.Training.Batch(batchHint, n, clipped)
		},
		Progress: func(epoch int, loss float64) bool {
			metrics.Training.Epoch(loss, time.Since(epochStart))
			epochStart = time.Now()
			if opt.Progress != nil {
				return opt.Progress(epoch, loss)
			}
			return true
		},
	}
	// weightsMu is held for the whole fit so no compile can observe
	// half-updated weights. Forecasts do not block: the previous
	// generation's snapshot stays published — and valid — for the whole
	// run (it shares no storage with the live network); the generation
	// bump below is what retires it.
	m.weightsMu.Lock()
	var loss float64
	if opt.Reference {
		loss = m.net.Fit(samples, fitOpt)
	} else {
		loss = m.net.CompileTrain().Fit(samples, fitOpt)
	}
	m.gen.Add(1)
	m.weightsMu.Unlock()
	metrics.Training.Run()
	return loss
}

// Generation returns the current weight generation: 0 for freshly
// constructed or loaded weights, incremented by every Train and
// SwapWeightsFrom. Observability and tests use it to tell whether a
// hot-swap landed.
func (m *Model) Generation() uint64 { return m.gen.Load() }

// Clone returns a new Model with the same configuration and a copy of
// the current weights — the starting point for a warm-started candidate
// retrain. The clone shares no storage with the receiver.
func (m *Model) Clone() (*Model, error) {
	c, err := New(m.cfg)
	if err != nil {
		return nil, err
	}
	m.weightsMu.Lock()
	defer m.weightsMu.Unlock()
	if err := c.net.CopyWeightsFrom(m.net); err != nil {
		return nil, err
	}
	return c, nil
}

// SwapWeightsFrom atomically replaces the receiver's weights with the
// candidate's — the model-lifecycle hot-swap. The new compiled snapshot
// is built eagerly under the lock, so the first forecast after a swap
// serves the new weights without paying a cold compile; forecasts in
// flight during the swap keep the previous snapshot and never block.
// The two models must share the same network geometry. Callers must not
// swap two models into each other concurrently (lock-order inversion).
func (m *Model) SwapWeightsFrom(candidate *Model) error {
	if candidate == m {
		return fmt.Errorf("svrf: cannot swap a model's weights with itself")
	}
	candidate.weightsMu.Lock()
	defer candidate.weightsMu.Unlock()
	m.weightsMu.Lock()
	defer m.weightsMu.Unlock()
	if err := m.net.CopyWeightsFrom(candidate.net); err != nil {
		return err
	}
	m.gen.Add(1)
	m.publishCompiledLocked()
	return nil
}

// ValidationMSE returns the network loss on held-out windows.
func (m *Model) ValidationMSE(windows []traj.Window) float64 {
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Seq: w.Input, Target: w.Target}
	}
	m.weightsMu.Lock()
	defer m.weightsMu.Unlock()
	return m.net.MSE(samples)
}

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	m.weightsMu.Lock()
	defer m.weightsMu.Unlock()
	return m.net.Save(w)
}

// SaveFile writes the model to a file atomically.
func (m *Model) SaveFile(path string) error {
	m.weightsMu.Lock()
	defer m.weightsMu.Unlock()
	return m.net.SaveFile(path)
}

// Load reads a model saved by Save. The svrf Config geometry is
// recovered from the embedded network configuration.
func Load(r io.Reader, cfg Config) (*Model, error) {
	net, err := nn.Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// LoadFile reads a model saved by SaveFile.
func LoadFile(path string, cfg Config) (*Model, error) {
	net, err := nn.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, net: net}, nil
}

// EvaluateADE scores a predictor on test windows, returning per-horizon
// average displacement error in meters — the Table 1 metric.
func EvaluateADE(p Predictor, windows []traj.Window) *metrics.DisplacementError {
	if len(windows) == 0 {
		return metrics.NewDisplacementError(0)
	}
	horizons := len(windows[0].Truth)
	de := metrics.NewDisplacementError(horizons)
	// Predictors with a buffer-reusing variant (the S-VRF model and the
	// kinematic baseline both have one) are scored through it, so bulk
	// evaluation over tens of thousands of windows reuses one position
	// buffer instead of allocating per window.
	type intoForecaster interface {
		ForecastInto(dst []geo.Point, w traj.Window) []geo.Point
	}
	var (
		buf  []geo.Point
		into intoForecaster
	)
	if f, ok := p.(intoForecaster); ok {
		into = f
	}
	for _, w := range windows {
		var pred []geo.Point
		if into != nil {
			buf = into.ForecastInto(buf, w)
			pred = buf
		} else {
			pred = p.Forecast(w)
		}
		for h := 0; h < horizons && h < len(pred); h++ {
			de.Add(h, geo.Haversine(pred[h], w.Truth[h]))
		}
	}
	return de
}

package pipeline

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seatwin/internal/broker"
	"seatwin/internal/geo"
	"seatwin/internal/lvrf"
)

// API is the middleware HTTP layer of Figure 2: it reads the state the
// writer actors persisted into the kvstore and serves it to the UI.
type API struct {
	p   *Pipeline
	srv *http.Server
	mux *http.ServeMux

	mu sync.Mutex
	ln net.Listener
}

// NewAPI builds the handler around a pipeline.
func NewAPI(p *Pipeline) *API {
	a := &API{p: p}
	mux := http.NewServeMux()
	a.mux = mux
	mux.HandleFunc("/api/health", a.handleHealth)
	mux.HandleFunc("/api/stats", a.handleStats)
	mux.HandleFunc("/api/vessels", a.handleVessels)
	mux.HandleFunc("/api/vessels/", a.handleVessel)
	mux.HandleFunc("/api/events", a.handleEvents)
	mux.HandleFunc("/api/regions", a.handleRegions)
	mux.HandleFunc("/api/series", a.handleSeries)
	mux.HandleFunc("/api/congestion", a.handleCongestion)
	mux.HandleFunc("/api/route", a.handleRoute)
	mux.HandleFunc("/api/stream", a.handleStream)
	mux.HandleFunc("/metrics", a.handleMetrics)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return a
}

// Handler exposes the mux (tests drive it via httptest).
func (a *API) Handler() http.Handler { return a.srv.Handler }

// ListenAndServe binds addr and serves until Close.
func (a *API) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	return a.srv.Serve(ln)
}

// Addr returns the bound address, or nil before ListenAndServe.
func (a *API) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Close shuts the server down.
func (a *API) Close() error { return a.srv.Close() }

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/
// on the API mux. Off by default: profiling endpoints expose internals
// (and a CPU-profile request costs real cycles), so deployments opt in
// explicitly (the seatwin binary's -pprof flag). Call before
// ListenAndServe.
func (a *API) EnablePprof() {
	a.mux.HandleFunc("/debug/pprof/", pprof.Index)
	a.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already on the wire, so no status can be changed;
		// a failed encode (almost always a client hang-up mid-body) must
		// still be visible to operators rather than vanish.
		log.Printf("api: encode response: %v", err)
	}
}

// parseLimit resolves an optional positive integer query parameter,
// failing the request with 400 on malformed input. ok=false means the
// response has been written.
func parseLimit(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v <= 0 {
		http.Error(w, fmt.Sprintf("%s must be a positive integer, got %q", name, q), http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// handleStream serves the live push feed over SSE (see internal/feed);
// 404 when the pipeline was built without a feed hub.
func (a *API) handleStream(w http.ResponseWriter, r *http.Request) {
	hub := a.p.cfg.Feed
	if hub == nil {
		http.Error(w, "live feed not configured", http.StatusNotFound)
		return
	}
	hub.SSEHandler().ServeHTTP(w, r)
}

func (a *API) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// detectionDoc renders one detector family's telemetry for /api/stats.
func detectionDoc(d DetectionStats) map[string]any {
	return map[string]any{
		"update_mean":   d.UpdateLatency.Mean.String(),
		"update_p99":    d.UpdateLatency.P99.String(),
		"updates":       d.UpdateLatency.Count,
		"candidates":    d.Candidates,
		"pairs_checked": d.Checked,
		"evictions":     d.Evicted,
		"tracked":       d.Tracked,
	}
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	s := a.p.Stats()
	doc := map[string]any{
		"messages":     s.Messages,
		"forecasts":    s.Forecasts,
		"live_actors":  s.LiveActors,
		"events":       s.Events,
		"dead_letters": s.DeadLetter,
		"latency_mean": s.Latency.Mean.String(),
		"latency_p95":  s.Latency.P95.String(),
		"latency_p99":  s.Latency.P99.String(),
		"infer_mean":   s.InferLatency.Mean.String(),
		"infer_p99":    s.InferLatency.P99.String(),

		"retry_attempts":      s.RetryAttempts,
		"retry_retried":       s.RetryRetried,
		"retry_exhausted":     s.RetryExhausted,
		"checkpoint_saves":    s.CheckpointSaves,
		"checkpoint_restores": s.CheckpointRestores,
		"checkpoint_failures": s.CheckpointFailures,

		"events_detection": map[string]any{
			"proximity": detectionDoc(s.ProximityDetection),
			"collision": detectionDoc(s.CollisionDetection),
		},
	}
	if v := a.p.cfg.Views; v != nil {
		vs := v.Stats()
		doc["views"] = map[string]any{
			"epoch":          vs.Epoch,
			"epoch_age":      vs.EpochAge.String(),
			"refreshes":      vs.Refreshes,
			"states_applied": vs.StatesApplied,
			"events_applied": vs.EventsApplied,
			"refresh_mean":   vs.RefreshMean.String(),
			"refresh_p99":    vs.RefreshP99.String(),
			"snapshot_bytes": vs.SnapshotBytes,
			"vessels":        vs.Vessels,
			"cells":          vs.Cells,
			"events_window":  vs.EventsWindow,
		}
	}
	if hub := a.p.cfg.Feed; hub != nil {
		if rs := hub.RelayStats(); rs.Relays > 0 {
			doc["feed_relays"] = map[string]any{
				"relays":           rs.Relays,
				"subscribers":      rs.Subscribers,
				"relayed":          rs.Relayed,
				"fanned":           rs.Fanned,
				"conflation_drops": rs.ConflationDrops,
				"local_dropped":    rs.LocalDropped,
				"local_conflated":  rs.LocalConflated,
				"disconnected":     rs.Disconnected,
			}
		}
	}
	if cs := s.Cluster; cs != nil {
		doc["cluster"] = map[string]any{
			"worker_id":        cs.WorkerID,
			"epoch":            cs.Epoch,
			"partitions":       cs.Partitions,
			"owned_partitions": cs.OwnedPartitions,
			"forwards":         cs.Forwards,
			"forward_drops":    cs.ForwardDrops,
			"received":         cs.Received,
			"fenced":           cs.Fenced,
			"rebalances":       cs.Rebalances,
			"pending_forwards": cs.PendingForwards,
		}
	}
	if ts := s.Train; ts.Runs > 0 || ts.Lanes > 0 {
		doc["train"] = map[string]any{
			"runs":            ts.Runs,
			"epochs":          ts.Epochs,
			"batches":         ts.Batches,
			"samples":         ts.Samples,
			"clip_events":     ts.ClipEvents,
			"lanes":           ts.Lanes,
			"train_seconds":   ts.TrainSeconds,
			"last_loss":       ts.LastLoss,
			"samples_per_sec": ts.SamplesPerSec,
		}
	}
	if ls := s.Lifecycle; ls.Cycles > 0 {
		doc["lifecycle"] = map[string]any{
			"cycles":             ls.Cycles,
			"promotions":         ls.Promotions,
			"rejections":         ls.Rejections,
			"skips":              ls.Skips,
			"replay_records":     ls.ReplayRecords,
			"lane_rebuilds":      ls.LaneRebuilds,
			"retrain_seconds":    ls.RetrainSeconds,
			"eval_seconds":       ls.EvalSeconds,
			"generation":         ls.Generation,
			"last_live_ade":      ls.LastLiveADE,
			"last_candidate_ade": ls.LastCandidateADE,
			"last_train_windows": ls.LastTrainWindows,
			"last_holdout":       ls.LastHoldout,
		}
	}
	writeJSON(w, doc)
}

// vesselJSON is one vessel state document.
type vesselJSON struct {
	MMSI     string         `json:"mmsi"`
	Name     string         `json:"name,omitempty"`
	Lat      float64        `json:"lat"`
	Lon      float64        `json:"lon"`
	SOG      float64        `json:"sog"`
	COG      float64        `json:"cog"`
	Status   string         `json:"status"`
	At       string         `json:"ts"`
	Forecast []forecastJSON `json:"forecast,omitempty"`
}

type forecastJSON struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	At  int64   `json:"t"`
}

func (a *API) vesselDoc(mmsi string) (vesselJSON, bool) {
	h, err := a.p.store.HGetAll("vessel:" + mmsi)
	if err != nil || len(h) == 0 {
		return vesselJSON{}, false
	}
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	doc := vesselJSON{
		MMSI:   mmsi,
		Name:   h["name"],
		Lat:    parse(h["lat"]),
		Lon:    parse(h["lon"]),
		SOG:    parse(h["sog"]),
		COG:    parse(h["cog"]),
		Status: h["status"],
		At:     h["ts"],
	}
	if raw := h["forecast"]; raw != "" {
		for _, part := range strings.Split(raw, ";") {
			f := strings.Split(part, ",")
			if len(f) != 3 {
				continue
			}
			t, _ := strconv.ParseInt(f[2], 10, 64)
			doc.Forecast = append(doc.Forecast, forecastJSON{
				Lat: parse(f[0]), Lon: parse(f[1]), At: t,
			})
		}
	}
	return doc, true
}

// parseBBox resolves an optional bounding-box query parameter of the
// form "minLat,minLon,maxLat,maxLon". nil with ok=true means no box
// was requested; ok=false means a 400 has been written.
func parseBBox(w http.ResponseWriter, r *http.Request) (*geo.BBox, bool) {
	q := r.URL.Query().Get("bbox")
	if q == "" {
		return nil, true
	}
	bad := func(why string) (*geo.BBox, bool) {
		http.Error(w, fmt.Sprintf("bbox must be minLat,minLon,maxLat,maxLon (%s), got %q", why, q), http.StatusBadRequest)
		return nil, false
	}
	parts := strings.Split(q, ",")
	if len(parts) != 4 {
		return bad("four comma-separated numbers")
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return bad("non-numeric component")
		}
		vals[i] = v
	}
	box := &geo.BBox{MinLat: vals[0], MinLon: vals[1], MaxLat: vals[2], MaxLon: vals[3]}
	if box.MinLat > box.MaxLat || box.MinLon > box.MaxLon {
		return bad("min greater than max")
	}
	return box, true
}

func (a *API) handleVessels(w http.ResponseWriter, r *http.Request) {
	limit, ok := parseLimit(w, r, "limit", 100)
	if !ok {
		return
	}
	box, ok := parseBBox(w, r)
	if !ok {
		return
	}
	if v := a.p.cfg.Views; v != nil {
		// Materialized-view path: one atomic snapshot load, pre-encoded
		// JSON straight onto the wire — no store scan, no locks, no
		// per-request allocation.
		w.Header().Set("Content-Type", "application/json")
		snap := v.Vessels()
		if _, err := snap.WriteJSON(w, limit, box); err != nil {
			log.Printf("api: write vessels view: %v", err)
		}
		return
	}
	// Legacy kvstore path: walk the active index newest-first, bounded.
	// Without a box the scan reads exactly `limit` members; with one it
	// over-scans by a capped factor (a box can reject most candidates)
	// rather than the whole index — a 170k-vessel store must never be
	// materialised for one request.
	scanCap := limit
	if box != nil {
		scanCap = limit * 16
		if scanCap > 16384 {
			scanCap = 16384
		}
	}
	members, err := a.p.store.ZRevRangeByScore("vessels:active", 0, 1e18, scanCap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]vesselJSON, 0, limit)
	for _, m := range members { // already newest first
		if len(out) >= limit {
			break
		}
		doc, ok := a.vesselDoc(m.Member)
		if !ok {
			continue
		}
		if box != nil && !box.Contains(geo.Point{Lat: doc.Lat, Lon: doc.Lon}) {
			continue
		}
		out = append(out, doc)
	}
	writeJSON(w, out)
}

// handleRegions serves the per-hex-cell traffic rollup. The view is
// the only producer of this aggregate — 404 when views are disabled.
func (a *API) handleRegions(w http.ResponseWriter, _ *http.Request) {
	v := a.p.cfg.Views
	if v == nil {
		http.Error(w, "materialized views not configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := v.Regions().WriteJSON(w); err != nil {
		log.Printf("api: write regions view: %v", err)
	}
}

func (a *API) handleVessel(w http.ResponseWriter, r *http.Request) {
	mmsi := strings.TrimPrefix(r.URL.Path, "/api/vessels/")
	doc, ok := a.vesselDoc(mmsi)
	if !ok {
		http.Error(w, "unknown vessel", http.StatusNotFound)
		return
	}
	writeJSON(w, doc)
}

func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit, ok := parseLimit(w, r, "limit", 100)
	if !ok {
		return
	}
	if v := a.p.cfg.Views; v != nil {
		w.Header().Set("Content-Type", "application/json")
		if _, err := v.Events().WriteJSON(w, limit); err != nil {
			log.Printf("api: write events view: %v", err)
		}
		return
	}
	evs := a.p.log.Recent(limit)
	type eventJSON struct {
		Kind   string  `json:"kind"`
		A      string  `json:"a"`
		B      string  `json:"b,omitempty"`
		At     string  `json:"at"`
		Lat    float64 `json:"lat"`
		Lon    float64 `json:"lon"`
		Meters float64 `json:"meters,omitempty"`
	}
	out := make([]eventJSON, 0, len(evs))
	for _, e := range evs {
		ej := eventJSON{
			Kind: string(e.Kind), A: e.A.String(),
			At:  e.At.UTC().Format(time.RFC3339),
			Lat: e.Pos.Lat, Lon: e.Pos.Lon, Meters: e.Meters,
		}
		if e.B != 0 {
			ej.B = e.B.String()
		}
		out = append(out, ej)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	writeJSON(w, out)
}

// handleRoute serves the L-VRF long-term route forecast and Patterns
// of Life for an origin/destination port pair (§4.1; Figure 4a/4b):
// GET /api/route?from=Piraeus&to=Heraklion&type=70&length=190&draught=10.5
func (a *API) handleRoute(w http.ResponseWriter, r *http.Request) {
	// Client errors (malformed/missing parameters) are diagnosed before
	// deployment state, so a 404 always means "no model here".
	q := r.URL.Query()
	from, to := q.Get("from"), q.Get("to")
	if from == "" || to == "" {
		http.Error(w, "from and to are required", http.StatusBadRequest)
		return
	}
	// Absent parameters take defaults; malformed ones are a client
	// error, not a silent fallback.
	parse := func(key string, def float64) (float64, error) {
		s := q.Get(key)
		if s == "" {
			return def, nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("%s must be numeric, got %q", key, s)
		}
		return v, nil
	}
	var features lvrf.Features
	shipType, errT := parse("type", 70)
	length, errL := parse("length", 190)
	draught, errD := parse("draught", 10)
	for _, err := range []error{errT, errL, errD} {
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	features = lvrf.Features{ShipType: uint8(shipType), Length: length, Draught: draught}
	model := a.p.RouteModel()
	if model == nil {
		http.Error(w, "route model not configured", http.StatusNotFound)
		return
	}
	path, err := model.ForecastRoute(from, to, features)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	type pointJSON struct {
		Lat float64 `json:"lat"`
		Lon float64 `json:"lon"`
	}
	doc := map[string]any{"from": from, "to": to}
	pts := make([]pointJSON, 0, len(path))
	for _, p := range path {
		pts = append(pts, pointJSON{Lat: p.Lat, Lon: p.Lon})
	}
	doc["route"] = pts
	if pol, err := model.PatternsOfLife(from, to); err == nil {
		doc["patterns_of_life"] = map[string]any{
			"trips":           pol.Trips,
			"distinct_mmsis":  pol.DistinctMMSIs,
			"mean_duration_s": int(pol.MeanDuration.Seconds()),
			"std_duration_s":  int(pol.StdDuration.Seconds()),
			"mean_length_m":   pol.MeanLengthM,
			"mean_speed_kn":   pol.MeanSpeedKn,
			"type_histogram":  pol.TypeHistogram,
		}
	}
	writeJSON(w, doc)
}

func (a *API) handleCongestion(w http.ResponseWriter, _ *http.Request) {
	mon := a.p.Congestion()
	if mon == nil {
		http.Error(w, "port monitoring not configured", http.StatusNotFound)
		return
	}
	if v := a.p.cfg.Views; v != nil {
		// The rollup was evaluated on the last refresh; serving it is one
		// atomic load and one write (the per-request monitor Snapshot —
		// a global lock — is what this path removes).
		w.Header().Set("Content-Type", "application/json")
		if err := v.Congestion().WriteJSON(w); err != nil {
			log.Printf("api: write congestion view: %v", err)
		}
		return
	}
	type portJSON struct {
		Port      string  `json:"port"`
		Lat       float64 `json:"lat"`
		Lon       float64 `json:"lon"`
		Capacity  int     `json:"capacity"`
		Present   int     `json:"present"`
		Arriving  int     `json:"arriving"`
		Peak      int     `json:"peak_predicted"`
		Congested bool    `json:"congested"`
	}
	snap := mon.Snapshot(time.Time{}) // zero = newest observed (sim time)
	out := make([]portJSON, 0, len(snap))
	for _, s := range snap {
		out = append(out, portJSON{
			Port: s.Port.Name, Lat: s.Port.Pos.Lat, Lon: s.Port.Pos.Lon,
			Capacity: s.Port.Capacity, Present: s.Present,
			Arriving: s.Arriving, Peak: s.PeakPredicted,
			Congested: s.Congested(),
		})
	}
	writeJSON(w, out)
}

// handleMetrics exposes the pipeline counters in the Prometheus text
// exposition format, so standard observability tooling can scrape the
// digital twin without an adapter.
func (a *API) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s := a.p.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("seatwin_messages_total", "AIS position reports ingested", float64(s.Messages))
	counter("seatwin_forecasts_total", "route forecasts produced", float64(s.Forecasts))
	counter("seatwin_events_total", "maritime events detected or forecast", float64(s.Events))
	counter("seatwin_dead_letters_total", "undeliverable actor messages", float64(s.DeadLetter))
	counter("seatwin_bad_sentences_total", "rejected NMEA sentences", float64(a.p.BadSentences()))
	counter("seatwin_retry_attempts_total", "store/consume operation attempts under the retry policy", float64(s.RetryAttempts))
	counter("seatwin_retry_retried_total", "operations that succeeded after at least one retry", float64(s.RetryRetried))
	counter("seatwin_retry_exhausted_total", "operations dropped to degraded mode after exhausting retries", float64(s.RetryExhausted))
	counter("seatwin_checkpoint_saves_total", "vessel history checkpoints written", float64(s.CheckpointSaves))
	counter("seatwin_checkpoint_restores_total", "vessel history windows rehydrated on spawn", float64(s.CheckpointRestores))
	counter("seatwin_checkpoint_failures_total", "checkpoint saves or loads lost after retries", float64(s.CheckpointFailures))
	gauge("seatwin_live_actors", "currently running actors", float64(s.LiveActors))
	fmt.Fprintf(&b, "# HELP seatwin_processing_seconds vessel-actor message processing time\n")
	fmt.Fprintf(&b, "# TYPE seatwin_processing_seconds summary\n")
	for _, q := range []struct {
		label string
		v     time.Duration
	}{{"0.5", s.Latency.P50}, {"0.95", s.Latency.P95}, {"0.99", s.Latency.P99}} {
		fmt.Fprintf(&b, "seatwin_processing_seconds{quantile=%q} %g\n", q.label, q.v.Seconds())
	}
	fmt.Fprintf(&b, "seatwin_processing_seconds_count %d\n", s.Latency.Count)
	fmt.Fprintf(&b, "# HELP seatwin_svrf_infer_seconds model inference time within vessel-actor processing\n")
	fmt.Fprintf(&b, "# TYPE seatwin_svrf_infer_seconds summary\n")
	for _, q := range []struct {
		label string
		v     time.Duration
	}{{"0.5", s.InferLatency.P50}, {"0.95", s.InferLatency.P95}, {"0.99", s.InferLatency.P99}} {
		fmt.Fprintf(&b, "seatwin_svrf_infer_seconds{quantile=%q} %g\n", q.label, q.v.Seconds())
	}
	fmt.Fprintf(&b, "seatwin_svrf_infer_seconds_count %d\n", s.InferLatency.Count)
	// Event-detection layer (DESIGN.md §16): per-family detector update
	// summaries plus the candidate-pair funnel and occupancy. Exported
	// unconditionally (all zero before the first report) so dashboards
	// never hit a missing series.
	for _, fam := range []struct {
		name string
		d    DetectionStats
	}{{"proximity", s.ProximityDetection}, {"collision", s.CollisionDetection}} {
		base := "seatwin_events_" + fam.name
		fmt.Fprintf(&b, "# HELP %s_update_seconds %s detector update time per report\n", base, fam.name)
		fmt.Fprintf(&b, "# TYPE %s_update_seconds summary\n", base)
		for _, q := range []struct {
			label string
			v     time.Duration
		}{{"0.5", fam.d.UpdateLatency.P50}, {"0.95", fam.d.UpdateLatency.P95}, {"0.99", fam.d.UpdateLatency.P99}} {
			fmt.Fprintf(&b, "%s_update_seconds{quantile=%q} %g\n", base, q.label, q.v.Seconds())
		}
		fmt.Fprintf(&b, "%s_update_seconds_count %d\n", base, fam.d.UpdateLatency.Count)
		counter(base+"_candidates_total", fam.name+" pair candidates surviving the spatial probe", float64(fam.d.Candidates))
		counter(base+"_pairs_checked_total", fam.name+" candidate pairs fully distance-checked", float64(fam.d.Checked))
		counter(base+"_evictions_total", "stale "+fam.name+" detector entries evicted", float64(fam.d.Evicted))
		gauge(base+"_tracked", "entries tracked across live "+fam.name+" cells", float64(fam.d.Tracked))
	}
	if hub := a.p.cfg.Feed; hub != nil {
		fs := hub.Snapshot()
		gauge("seatwin_feed_subscribers", "live feed subscribers connected", float64(fs.Subscribers))
		counter("seatwin_feed_subscribers_total", "live feed subscribers ever connected", float64(fs.TotalSubs))
		counter("seatwin_feed_frames_published_total", "frames entering the feed hub", float64(fs.Published))
		counter("seatwin_feed_frames_fanned_total", "frame deliveries enqueued to subscriber rings", float64(fs.Fanned))
		counter("seatwin_feed_frames_dropped_total", "frames evicted by drop-oldest overflow", float64(fs.Dropped))
		counter("seatwin_feed_frames_conflated_total", "frames conflated in place by key", float64(fs.Conflated))
		counter("seatwin_feed_disconnects_total", "slow consumers force-disconnected", float64(fs.Disconnected))
		gauge("seatwin_feed_fanout_p99_seconds", "p99 hub fan-out latency per publish", fs.FanoutP99.Seconds())
		if rs := hub.RelayStats(); rs.Relays > 0 {
			gauge("seatwin_feed_relays", "relay tiers attached to the hub", float64(rs.Relays))
			gauge("seatwin_feed_relay_subscribers", "local subscribers behind relay tiers", float64(rs.Subscribers))
			counter("seatwin_feed_relay_frames_total", "frames pumped through relay tiers", float64(rs.Relayed))
			counter("seatwin_feed_relay_fanned_total", "frame deliveries enqueued to relay-local rings", float64(rs.Fanned))
		}
	}
	if v := a.p.cfg.Views; v != nil {
		vs := v.Stats()
		gauge("seatwin_views_epoch", "current materialized-view epoch", float64(vs.Epoch))
		gauge("seatwin_views_epoch_age_seconds", "age of the serving snapshots", vs.EpochAge.Seconds())
		counter("seatwin_views_refreshes_total", "snapshot rebuild-and-swap cycles", float64(vs.Refreshes))
		counter("seatwin_views_states_applied_total", "vessel state deltas staged into the views", float64(vs.StatesApplied))
		counter("seatwin_views_events_applied_total", "events staged into the views", float64(vs.EventsApplied))
		gauge("seatwin_views_refresh_mean_seconds", "mean snapshot rebuild latency", vs.RefreshMean.Seconds())
		gauge("seatwin_views_refresh_p99_seconds", "p99 snapshot rebuild latency", vs.RefreshP99.Seconds())
		gauge("seatwin_views_snapshot_bytes", "pre-encoded bytes across current snapshots", float64(vs.SnapshotBytes))
		gauge("seatwin_views_vessels", "vessels in the current world-view snapshot", float64(vs.Vessels))
		gauge("seatwin_views_cells", "hex cells in the current region snapshot", float64(vs.Cells))
		gauge("seatwin_views_events_window", "events in the current recent-events window", float64(vs.EventsWindow))
		if hub := a.p.cfg.Feed; hub != nil {
			counter("seatwin_views_relay_conflation_drops_total",
				"upstream frames conflated away or evicted in relay tiers before local fan-out",
				float64(hub.RelayStats().ConflationDrops))
		}
	}
	if in := a.p.cfg.Chaos; in != nil {
		cs := in.Stats()
		counter("seatwin_chaos_errors_total", "chaos-injected operation errors", float64(cs.Errors))
		counter("seatwin_chaos_panics_total", "chaos-injected panics", float64(cs.Panics))
		counter("seatwin_chaos_delays_total", "chaos-injected latency delays", float64(cs.Delays))
		counter("seatwin_chaos_truncations_total", "chaos-injected broker truncations", float64(cs.Truncations))
	}
	if cs := s.Cluster; cs != nil {
		gauge("seatwin_cluster_epoch", "placement epoch in effect on this worker", float64(cs.Epoch))
		gauge("seatwin_cluster_partitions", "cluster partition count", float64(cs.Partitions))
		gauge("seatwin_cluster_owned_partitions", "partitions this worker owns", float64(cs.OwnedPartitions))
		gauge("seatwin_cluster_pending_forwards", "cross-partition forwards queued or in flight", float64(cs.PendingForwards))
		counter("seatwin_cluster_forwards_total", "records forwarded to foreign partitions", float64(cs.Forwards))
		counter("seatwin_cluster_forward_drops_total", "forwards lost after retry exhaustion", float64(cs.ForwardDrops))
		counter("seatwin_cluster_received_total", "records consumed from owned partition topics", float64(cs.Received))
		counter("seatwin_cluster_fenced_total", "records abandoned on ownership loss", float64(cs.Fenced))
		counter("seatwin_cluster_rebalances_total", "assignments applied by this worker", float64(cs.Rebalances))
	}
	// Training counters (process-wide recorder; all zero in a process
	// that never trains). Exported unconditionally so dashboards can
	// alert on "no retrain in N days" without a missing-series case.
	ts := s.Train
	counter("seatwin_train_runs_total", "completed S-VRF training runs", float64(ts.Runs))
	counter("seatwin_train_epochs_total", "training epochs finished", float64(ts.Epochs))
	counter("seatwin_train_batches_total", "optimiser steps taken", float64(ts.Batches))
	counter("seatwin_train_samples_total", "training samples consumed (each epoch visit counts)", float64(ts.Samples))
	counter("seatwin_train_clip_events_total", "batches whose gradient hit the clip bound", float64(ts.ClipEvents))
	counter("seatwin_train_lanes_total", "L-VRF lane graphs built", float64(ts.Lanes))
	counter("seatwin_train_seconds_total", "wall time spent inside training epochs", ts.TrainSeconds)
	gauge("seatwin_train_last_loss", "most recent per-epoch mean training loss", ts.LastLoss)
	gauge("seatwin_train_samples_per_second", "lifetime mean training throughput", ts.SamplesPerSec)
	// Model-lifecycle counters (same unconditional-export rationale):
	// the background trainer's retrain/shadow-eval/hot-swap loop.
	ls := s.Lifecycle
	counter("seatwin_lifecycle_cycles_total", "completed retrain cycles (including skips)", float64(ls.Cycles))
	counter("seatwin_lifecycle_promotions_total", "candidates that won the shadow eval and were hot-swapped", float64(ls.Promotions))
	counter("seatwin_lifecycle_rejections_total", "candidates rejected by the promotion gate", float64(ls.Rejections))
	counter("seatwin_lifecycle_skips_total", "cycles skipped for lack of replayed history", float64(ls.Skips))
	counter("seatwin_lifecycle_replay_records_total", "records replayed from broker-retained history", float64(ls.ReplayRecords))
	counter("seatwin_lifecycle_lane_rebuilds_total", "L-VRF lane-graph rebuilds published", float64(ls.LaneRebuilds))
	counter("seatwin_lifecycle_retrain_seconds_total", "wall time spent training candidates", ls.RetrainSeconds)
	counter("seatwin_lifecycle_eval_seconds_total", "wall time spent shadow-evaluating candidates", ls.EvalSeconds)
	gauge("seatwin_lifecycle_generation", "live model weight generation", float64(ls.Generation))
	gauge("seatwin_lifecycle_last_live_ade_meters", "live model mean ADE on the most recent holdout", ls.LastLiveADE)
	gauge("seatwin_lifecycle_last_candidate_ade_meters", "candidate mean ADE on the most recent holdout", ls.LastCandidateADE)
	// Consumer-group lag, one gauge sample per topic+group pair, across
	// every broker the pipeline touches (cluster forward topics and the
	// dedicated output streams).
	emittedLag := false
	lag := func(bk *broker.Broker) {
		if bk == nil {
			return
		}
		for _, gl := range bk.GroupLags() {
			if !emittedLag {
				fmt.Fprintf(&b, "# HELP seatwin_broker_lag records committed offsets trail the log end by, per topic and group\n")
				fmt.Fprintf(&b, "# TYPE seatwin_broker_lag gauge\n")
				emittedLag = true
			}
			fmt.Fprintf(&b, "seatwin_broker_lag{topic=%q,group=%q} %d\n", gl.Topic, gl.Group, gl.Lag)
		}
	}
	if cl := a.p.cl; cl != nil {
		lag(cl.cfg.Broker)
	}
	if ob := a.p.cfg.OutputBroker; ob != nil && (a.p.cl == nil || ob != a.p.cl.cfg.Broker) {
		lag(ob)
	}
	w.Write([]byte(b.String()))
}

func (a *API) handleSeries(w http.ResponseWriter, _ *http.Request) {
	type sampleJSON struct {
		Actors int64 `json:"actors"`
		AvgUS  int64 `json:"avg_processing_us"`
	}
	series := a.p.Series()
	out := make([]sampleJSON, 0, len(series))
	for _, s := range series {
		out = append(out, sampleJSON{Actors: s.Actors, AvgUS: s.AvgProcess.Microseconds()})
	}
	writeJSON(w, out)
}

package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestShardedCounterMergesStripes(t *testing.T) {
	c := NewShardedCounter(8)
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(uint64(w*per+i), 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestShardedCounterNegativeAndZeroShards(t *testing.T) {
	c := NewShardedCounter(0) // defaulted
	c.Inc(1, 5)
	c.Inc(2, -2)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
}

func TestShardedAccumulatorDrain(t *testing.T) {
	a := NewShardedAccumulator(4)
	for i := 0; i < 100; i++ {
		a.Add(uint64(i), int64(i))
	}
	count, sum := a.Drain()
	if count != 100 || sum != 4950 {
		t.Fatalf("Drain = (%d, %d), want (100, 4950)", count, sum)
	}
	// A drained accumulator is empty.
	count, sum = a.Drain()
	if count != 0 || sum != 0 {
		t.Fatalf("second Drain = (%d, %d), want (0, 0)", count, sum)
	}
}

func TestShardedAccumulatorConcurrent(t *testing.T) {
	a := NewShardedAccumulator(8)
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	var drained struct {
		sync.Mutex
		count, sum int64
	}
	stop := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			c, s := a.Drain()
			drained.Lock()
			drained.count += c
			drained.sum += s
			drained.Unlock()
			select {
			case <-stop:
				c, s := a.Drain()
				drained.Lock()
				drained.count += c
				drained.sum += s
				drained.Unlock()
				return
			default:
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Add(uint64(w), 2)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	drainWG.Wait()
	if drained.count != workers*per || drained.sum != int64(workers*per*2) {
		t.Fatalf("drained (%d, %d), want (%d, %d)",
			drained.count, drained.sum, workers*per, workers*per*2)
	}
}

func TestShardedLatencyRecorderSnapshot(t *testing.T) {
	l := NewShardedLatencyRecorder(4, 1024)
	for i := 1; i <= 100; i++ {
		l.Observe(uint64(i), time.Duration(i)*time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("Max = %v, want 100ms", s.Max)
	}
	wantMean := 50500 * time.Microsecond // mean of 1..100 ms
	if s.Mean != wantMean {
		t.Fatalf("Mean = %v, want %v", s.Mean, wantMean)
	}
	if s.P50 < 40*time.Millisecond || s.P50 > 60*time.Millisecond {
		t.Fatalf("P50 = %v, out of range", s.P50)
	}
	if s.P99 < 90*time.Millisecond {
		t.Fatalf("P99 = %v, too low", s.P99)
	}
}

func TestShardedLatencyRecorderConcurrent(t *testing.T) {
	l := NewShardedLatencyRecorder(8, 1<<12)
	var wg sync.WaitGroup
	const workers, per = 16, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Observe(uint64(w), time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	s := l.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	if s.Mean != time.Millisecond {
		t.Fatalf("Mean = %v, want 1ms", s.Mean)
	}
}

package broker

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Disk persistence: when a broker is opened with OpenDir, every record
// appended to a partition is also written to that partition's segment
// file as a length-prefixed gob blob, and consumer-group offsets are
// checkpointed to groups.json on every Commit. OpenDir replays the
// segments, so an embedded deployment survives restarts with
// at-least-once semantics (records consumed but not committed are
// redelivered).
//
// Values stored through a durable broker must be gob-encodable;
// interface-typed values (like ais.Message) additionally need their
// concrete types registered once via RegisterType.
//
// Truncate only trims the in-memory window of a durable topic; segment
// compaction is intentionally out of scope (the file keeps the full
// history until removed).

// RegisterType makes a concrete value type storable through durable
// topics (a thin wrapper over gob.Register).
func RegisterType(v any) { gob.Register(v) }

// diskRecord is the on-disk form of one record.
type diskRecord struct {
	Offset    int64
	Key       string
	Value     any
	Timestamp time.Time
}

// segmentWriter appends length-prefixed gob blobs to one partition file.
type segmentWriter struct {
	mu sync.Mutex
	f  *os.File
}

func (s *segmentWriter) append(r Record) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(diskRecord{
		Offset: r.Offset, Key: r.Key, Value: r.Value, Timestamp: r.Timestamp,
	}); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := s.f.Write(buf.Bytes())
	return err
}

func (s *segmentWriter) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// segmentPath names a partition's file: <dir>/<topic>@<parts>-p<N>.log
func segmentPath(dir, topic string, parts, partition int) string {
	return filepath.Join(dir, fmt.Sprintf("%s@%d-p%d.log", topic, parts, partition))
}

// OpenDir opens (or creates) a durable broker rooted at dir: existing
// topic segments are replayed into memory and committed group offsets
// restored.
func OpenDir(dir string) (*Broker, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := New()
	b.dir = dir

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Discover topics from segment file names.
	type topicMeta struct{ parts int }
	topics := map[string]topicMeta{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".log") {
			continue
		}
		base := strings.TrimSuffix(name, ".log")
		at := strings.LastIndex(base, "@")
		dash := strings.LastIndex(base, "-p")
		if at < 0 || dash < at {
			continue
		}
		parts, err1 := strconv.Atoi(base[at+1 : dash])
		if err1 != nil || parts <= 0 {
			continue
		}
		topics[base[:at]] = topicMeta{parts: parts}
	}
	for name, meta := range topics {
		if err := b.CreateTopic(name, meta.parts); err != nil {
			return nil, err
		}
		t, _ := b.topic(name)
		for pi := 0; pi < meta.parts; pi++ {
			if err := replaySegment(segmentPath(dir, name, meta.parts, pi), t.partitions[pi], name, pi); err != nil {
				return nil, fmt.Errorf("broker: replay %s p%d: %w", name, pi, err)
			}
		}
	}
	// Restore committed offsets.
	if raw, err := os.ReadFile(filepath.Join(dir, "groups.json")); err == nil {
		var saved map[string]map[string][]int64 // topic -> group -> offsets
		if err := json.Unmarshal(raw, &saved); err != nil {
			return nil, fmt.Errorf("broker: groups.json: %w", err)
		}
		for topicName, groups := range saved {
			t, err := b.topic(topicName)
			if err != nil {
				continue // topic files removed; drop its offsets
			}
			for groupName, offsets := range groups {
				g := t.ensureGroup(groupName)
				g.mu.Lock()
				for pi, off := range offsets {
					if pi < len(g.committed) {
						g.committed[pi] = off
					}
				}
				g.mu.Unlock()
			}
		}
	}
	return b, nil
}

func replaySegment(path string, p *partition, topicName string, pi int) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			// A torn final record (crash mid-write) ends the replay.
			if err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		blob := make([]byte, n)
		if _, err := io.ReadFull(f, blob); err != nil {
			return nil // torn record: ignore the tail
		}
		var dr diskRecord
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&dr); err != nil {
			return fmt.Errorf("decode record: %w", err)
		}
		p.mu.Lock()
		// Replay must preserve absolute offsets.
		if len(p.records) == 0 {
			p.base = dr.Offset
		}
		p.records = append(p.records, Record{
			Topic: topicName, Partition: pi,
			Offset: dr.Offset, Key: dr.Key, Value: dr.Value, Timestamp: dr.Timestamp,
		})
		p.mu.Unlock()
	}
}

// attachSegments opens the partition writers of a durable topic;
// called under b.mu by CreateTopic.
func (b *Broker) attachSegments(t *topic) error {
	for pi := range t.partitions {
		f, err := os.OpenFile(segmentPath(b.dir, t.name, len(t.partitions), pi),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		t.partitions[pi].disk = &segmentWriter{f: f}
	}
	return nil
}

// saveGroups checkpoints all committed offsets; called after Commit on
// durable brokers.
func (b *Broker) saveGroups() error {
	out := map[string]map[string][]int64{}
	b.mu.RLock()
	for name, t := range b.topics {
		t.groupMu.Lock()
		for gname, g := range t.groups {
			g.mu.Lock()
			offsets := append([]int64(nil), g.committed...)
			g.mu.Unlock()
			if out[name] == nil {
				out[name] = map[string][]int64{}
			}
			out[name][gname] = offsets
		}
		t.groupMu.Unlock()
	}
	dir := b.dir
	b.mu.RUnlock()

	raw, err := json.Marshal(out)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "groups.json.tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "groups.json"))
}

// Close flushes and closes the durable broker's segment files (no-op
// for in-memory brokers).
func (b *Broker) Close() error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.dir == "" {
		return nil
	}
	var firstErr error
	for _, t := range b.topics {
		for _, p := range t.partitions {
			if p.disk != nil {
				if err := p.disk.close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

package views

import (
	"io"
	"strconv"
	"time"
)

// CongestionSnapshot is one immutable port-congestion rollup: the
// monitor's statuses evaluated once per refresh instead of once per
// request (the monitor takes a global lock per Snapshot call — exactly
// what the read path must not pay per hit).
type CongestionSnapshot struct {
	Epoch   uint64
	BuiltAt time.Time
	Ports   int
	body    []byte
}

func emptyCongestionSnapshot() *CongestionSnapshot {
	return &CongestionSnapshot{body: []byte("[]\n")}
}

// WriteJSON writes the whole pre-encoded rollup in one Write.
func (s *CongestionSnapshot) WriteJSON(w io.Writer) error {
	_, err := w.Write(s.body)
	return err
}

// buildCongestionSnapshot evaluates the wired source (nil keeps the
// view empty) and encodes the legacy portJSON documents.
func (v *Views) buildCongestionSnapshot(epoch uint64, builtAt time.Time) *CongestionSnapshot {
	src := v.congestionSource
	if src == nil {
		snap := emptyCongestionSnapshot()
		snap.Epoch, snap.BuiltAt = epoch, builtAt
		return snap
	}
	statuses := src()
	body := make([]byte, 0, 128*len(statuses)+3)
	body = append(body, '[')
	for i, st := range statuses {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, `{"port":`...)
		body = appendJSONString(body, st.Port.Name)
		body = append(body, `,"lat":`...)
		body = strconv.AppendFloat(body, st.Port.Pos.Lat, 'f', 5, 64)
		body = append(body, `,"lon":`...)
		body = strconv.AppendFloat(body, st.Port.Pos.Lon, 'f', 5, 64)
		body = append(body, `,"capacity":`...)
		body = strconv.AppendInt(body, int64(st.Port.Capacity), 10)
		body = append(body, `,"present":`...)
		body = strconv.AppendInt(body, int64(st.Present), 10)
		body = append(body, `,"arriving":`...)
		body = strconv.AppendInt(body, int64(st.Arriving), 10)
		body = append(body, `,"peak_predicted":`...)
		body = strconv.AppendInt(body, int64(st.PeakPredicted), 10)
		body = append(body, `,"congested":`...)
		body = strconv.AppendBool(body, st.Congested())
		body = append(body, '}')
	}
	body = append(body, ']', '\n')
	return &CongestionSnapshot{Epoch: epoch, BuiltAt: builtAt, Ports: len(statuses), body: body}
}

// Command seatwin runs the full maritime digital-twin pipeline on a
// simulated AIS feed: a fleet simulator produces position reports into
// the embedded broker, the actor pipeline consumes them, forecasts
// routes, detects and forecasts events, and persists state into the
// kvstore, which is served over an HTTP API (and optionally a
// Redis-protocol socket).
//
// Usage:
//
//	seatwin [-vessels 2000] [-region aegean|europe|global] [-model s-vrf.gob]
//	        [-addr :8080] [-resp :6379] [-feed-tcp :9230] [-duration 0] [-seed 1]
//	        [-pprof] [-chaos error=0.1,latency=5ms] [-checkpoint-every 16]
//
// Cluster modes (-cluster):
//
//	(default)     one process owns every partition; no cluster layer at all
//	multi         N worker pipelines in one process behind an in-memory
//	              coordinator, sharing the store and broker — the full
//	              data plane: -workers, -partitions
//	coordinator   serve only the placement control plane over HTTP on
//	              -cluster-addr: -partitions
//	worker        one worker process joined to a remote coordinator:
//	              -worker-id, -coordinator-url. Control plane only — the
//	              embedded broker and store are process-local, so each
//	              worker simulates and serves its owned slice of the
//	              fleet (see DESIGN.md "Cluster placement").
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/chaos"
	"seatwin/internal/cluster"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/kvstore"
	"seatwin/internal/pipeline"
	"seatwin/internal/retry"
	"seatwin/internal/svrf"
	"seatwin/internal/trainer"
	"seatwin/internal/views"
)

// opts carries the parsed flag set to the run modes.
type opts struct {
	vessels int
	box     geo.BBox
	region  string
	fc      events.TrackForecaster
	// model is the live S-VRF model behind fc when one exists (loaded
	// from -model, or created untrained for the lifecycle loop); nil
	// when the kinematic forecaster serves.
	model        *svrf.Model
	retrainEvery time.Duration
	shadowHold   float64
	injector     *chaos.Injector
	addr        string
	respAddr    string
	duration    time.Duration
	seed        int64
	dataDir     string
	ports       bool
	feedTCP     string
	feedRes     int
	views       bool
	pprofOn     bool
	ckptEvery   int
	partitions  int
	workers     int
	workerID    string
	coordURL    string
	clusterAddr string
}

func main() {
	var (
		vessels     = flag.Int("vessels", 2000, "simulated fleet size")
		region      = flag.String("region", "aegean", "aegean | europe | global")
		modelPath   = flag.String("model", "", "trained S-VRF model file (empty: linear kinematic)")
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP API listen address")
		respAddr    = flag.String("resp", "", "optional Redis-protocol listen address (e.g. 127.0.0.1:6379)")
		duration    = flag.Duration("duration", 0, "run time (0 = until interrupted)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		dataDir     = flag.String("data", "", "durable broker directory (empty = in-memory)")
		ports       = flag.Bool("monitor-ports", false, "enable port-congestion monitoring for catalog ports in the region")
		feedTCP     = flag.String("feed-tcp", "", "optional live-feed TCP listen address (length-prefixed JSON, e.g. 127.0.0.1:9230)")
		feedRes     = flag.Int("feed-region-res", 7, "hexgrid resolution of live-feed region/<cell> topics")
		viewsOn     = flag.Bool("views", true, "serve reads from materialized views (false = direct kvstore scans)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the API address")
		chaosSpec   = flag.String("chaos", "", "fault-injection spec, e.g. error=0.1,latency=5ms,panic=0.001,truncate=0.01,seed=7 (empty = off)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "reports between vessel history checkpoints (0 = 16; negative = disable checkpointing)")
		retrainEvery = flag.Duration("retrain-every", 0, "background model-retrain interval (0 = lifecycle loop off; single-process mode only)")
		shadowHold   = flag.Float64("shadow-holdout", 0.25, "newest fraction of replayed windows held out for the shadow eval")

		mode        = flag.String("cluster", "", "cluster mode: empty (single process) | multi | coordinator | worker")
		partitions  = flag.Int("partitions", 8, "cluster partition count (cluster modes)")
		workers     = flag.Int("workers", 2, "worker count for -cluster multi")
		workerID    = flag.String("worker-id", "", "this worker's ID for -cluster worker")
		coordURL    = flag.String("coordinator-url", "", "coordinator base URL for -cluster worker (e.g. http://127.0.0.1:7946)")
		clusterAddr = flag.String("cluster-addr", "127.0.0.1:7946", "control-plane listen address for -cluster coordinator")
	)
	flag.Parse()

	var injector *chaos.Injector
	if *chaosSpec != "" {
		policy, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		if policy.Enabled() {
			injector = chaos.New(policy)
			log.Printf("chaos enabled: %+v", policy)
		}
	}

	var box geo.BBox
	switch *region {
	case "aegean":
		box = geo.AegeanSea
	case "europe":
		box = geo.EuropeanCoverage
	case "global":
		box = geo.BBox{}
	default:
		log.Fatalf("unknown region %q", *region)
	}

	if *shadowHold <= 0 || *shadowHold >= 1 {
		log.Fatalf("-shadow-holdout %v outside (0,1)", *shadowHold)
	}
	var fc events.TrackForecaster = events.NewKinematicForecaster()
	var model *svrf.Model
	switch {
	case *modelPath != "":
		m, err := svrf.LoadFile(*modelPath, svrf.DefaultConfig())
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		model = m
		fc = events.SVRFForecaster{Model: m}
		log.Printf("loaded S-VRF model from %s", *modelPath)
	case *retrainEvery > 0:
		// The lifecycle loop needs a live S-VRF model to retrain and
		// swap; without -model it starts untrained and the first
		// promoted candidate takes over.
		m, err := svrf.New(svrf.DefaultConfig())
		if err != nil {
			log.Fatalf("init model: %v", err)
		}
		model = m
		fc = events.SVRFForecaster{Model: m}
		log.Printf("no -model given; starting with untrained S-VRF weights (first promoted retrain takes over)")
	default:
		log.Printf("no -model given; using the linear kinematic forecaster")
	}

	o := opts{
		vessels: *vessels, box: box, region: *region, fc: fc, injector: injector,
		model: model, retrainEvery: *retrainEvery, shadowHold: *shadowHold,
		addr: *addr, respAddr: *respAddr, duration: *duration, seed: *seed,
		dataDir: *dataDir, ports: *ports, feedTCP: *feedTCP, feedRes: *feedRes,
		views:   *viewsOn,
		pprofOn: *pprofOn, ckptEvery: *ckptEvery,
		partitions: *partitions, workers: *workers,
		workerID: *workerID, coordURL: *coordURL, clusterAddr: *clusterAddr,
	}
	switch *mode {
	case "":
		runSingle(o)
	case "multi":
		runMulti(o)
	case "coordinator":
		runCoordinator(o)
	case "worker":
		runWorker(o)
	default:
		log.Fatalf("unknown -cluster mode %q (want multi, coordinator or worker)", *mode)
	}
}

// baseConfig assembles the pipeline config shared by every mode.
func baseConfig(o opts, store *kvstore.Store, hub *feed.Hub) pipeline.Config {
	cfg := pipeline.DefaultConfig(o.fc)
	cfg.Store = store
	cfg.Feed = hub
	cfg.Chaos = o.injector
	cfg.CheckpointInterval = o.ckptEvery
	if o.ports {
		for _, pt := range fleetsim.PortsWithin(regionOrGlobal(o.box)) {
			cfg.Ports = append(cfg.Ports, congestion.Port{
				Name: pt.Name, Pos: pt.Pos, Radius: 6000, Capacity: 10,
			})
		}
		log.Printf("monitoring %d ports (GET /api/congestion)", len(cfg.Ports))
	}
	return cfg
}

// newViews builds the read-side serving layer (nil when -views=false:
// the API falls back to bounded kvstore scans). The region resolution
// matches the live feed so /api/regions cells line up with feed
// region/<cell> topics.
func newViews(o opts) *views.Views {
	if !o.views {
		return nil
	}
	log.Printf("materialized views enabled (read path: pre-encoded snapshots)")
	return views.New(views.Config{RegionResolution: o.feedRes})
}

// openBroker returns the feed broker: durable when -data is set (with
// the record types the topics carry registered for gob), else
// in-memory.
func openBroker(o opts) (*broker.Broker, func()) {
	if o.dataDir == "" {
		return broker.New(), func() {}
	}
	broker.RegisterType(ais.PositionReport{})
	broker.RegisterType(ais.StaticVoyage{})
	pipeline.RegisterClusterTypes()
	br, err := broker.OpenDir(o.dataDir)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("durable broker at %s", o.dataDir)
	return br, func() { br.Close() }
}

// serveAPI starts the HTTP API (plus optional RESP and feed-TCP
// endpoints) for a pipeline and returns a closer.
func serveAPI(o opts, p *pipeline.Pipeline, store *kvstore.Store, hub *feed.Hub) func() {
	api := pipeline.NewAPI(p)
	if o.pprofOn {
		api.EnablePprof()
		log.Printf("pprof endpoints on http://%s/debug/pprof/", o.addr)
	}
	go func() {
		if err := api.ListenAndServe(o.addr); err != nil {
			log.Printf("api: %v", err)
		}
	}()
	closers := []func(){func() { api.Close() }}
	if o.respAddr != "" {
		respSrv := kvstore.NewServer(store)
		go func() {
			if err := respSrv.ListenAndServe(o.respAddr); err != nil {
				log.Printf("resp: %v", err)
			}
		}()
		closers = append(closers, respSrv.Close)
		log.Printf("redis-protocol endpoint on %s", o.respAddr)
	}
	if o.feedTCP != "" && hub != nil {
		feedSrv := feed.NewServer(hub)
		go func() {
			if err := feedSrv.ListenAndServe(o.feedTCP); err != nil {
				log.Printf("feed: %v", err)
			}
		}()
		closers = append(closers, func() { feedSrv.Close() })
		log.Printf("live-feed TCP endpoint on %s", o.feedTCP)
	}
	log.Printf("http api on http://%s/api/stats (live feed: /api/stream)", o.addr)
	return func() {
		for _, c := range closers {
			c()
		}
	}
}

// startConsumers subscribes n pipeline consumers to the feed topic.
func startConsumers(o opts, br *broker.Broker, p *pipeline.Pipeline, topic string, n int) {
	for i := 0; i < n; i++ {
		c, err := br.Subscribe(topic, "pipeline")
		if err != nil {
			log.Fatal(err)
		}
		var rc pipeline.RecordConsumer = c
		if o.injector != nil {
			rc = chaos.WrapConsumer(c, o.injector)
		}
		go p.ConsumeLoop(rc, time.Hour)
	}
}

// simLoop drives the fleet simulator into the broker until the
// duration elapses (or forever), printing a stats line every 5s. keep
// filters which reports are produced (nil = all).
func simLoop(o opts, br *broker.Broker, topic string, keep func(ais.MMSI) bool, stats func() string) {
	world := fleetsim.NewWorld(fleetsim.Config{
		Vessels:     o.vessels,
		Seed:        o.seed,
		Region:      o.box,
		KeepSailing: true,
	})
	log.Printf("simulating %d vessels (%s)", o.vessels, o.region)

	// Produce through the chaos wrapper (when enabled) and a bounded
	// retry: a transient produce fault costs a few capped sleeps and,
	// on exhaustion, drops that one report — never the whole process.
	produce := br.Produce
	if o.injector != nil {
		produce = chaos.WrapProducer(br, o.injector).Produce
	}
	producePolicy := retry.DefaultPolicy()
	var produceDropped int64

	stop := time.Now().Add(o.duration)
	statsEvery := time.Now().Add(5 * time.Second)
	for {
		r, ok := world.Next()
		if !ok {
			log.Printf("simulation drained")
			return
		}
		if keep == nil || keep(r.Pos.MMSI) {
			if res := producePolicy.Do(func() (err error) {
				// A panic out of the produce path (an injected chaos fault,
				// or a genuinely broken broker) is one failed attempt, not a
				// process crash — same contract as the consume loop.
				defer func() {
					if rec := recover(); rec != nil {
						err = fmt.Errorf("produce panicked: %v", rec)
					}
				}()
				_, _, err = produce(topic, r.Pos.MMSI.String(), r.Pos)
				return err
			}); res.Err != nil {
				produceDropped++
				if produceDropped == 1 || produceDropped%1000 == 0 {
					log.Printf("produce: dropped %d reports (last: %v)", produceDropped, res.Err)
				}
			}
		}
		if time.Now().After(statsEvery) {
			fmt.Println(stats())
			statsEvery = time.Now().Add(5 * time.Second)
		}
		if o.duration > 0 && time.Now().After(stop) {
			log.Printf("duration reached")
			return
		}
	}
}

func statsLine(p *pipeline.Pipeline) string {
	s := p.Stats()
	return fmt.Sprintf("actors=%d messages=%d forecasts=%d events=%d lat_mean=%v lat_p99=%v",
		s.LiveActors, s.Messages, s.Forecasts, s.Events,
		s.Latency.Mean.Round(time.Microsecond), s.Latency.P99.Round(time.Microsecond))
}

// runSingle is the unchanged default: one process, every partition
// local, no cluster layer (and no ownership checks on the hot path).
func runSingle(o opts) {
	store := kvstore.New()
	defer store.Close()
	hub := feed.NewHub(feed.Options{RegionResolution: o.feedRes})
	defer hub.Close()
	cfg := baseConfig(o, store, hub)
	if v := newViews(o); v != nil {
		cfg.Views = v
		defer v.Close()
	}
	p, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown(5 * time.Second)
	defer serveAPI(o, p, store, hub)()

	br, closeBroker := openBroker(o)
	defer closeBroker()
	const topic = "ais"
	if err := br.CreateTopic(topic, 8); err != nil {
		log.Fatal(err)
	}
	startConsumers(o, br, p, topic, 4)
	var tr *trainer.Trainer
	if o.retrainEvery > 0 {
		tr = startTrainer(o, br, p, topic)
	}
	simLoop(o, br, topic, nil, func() string { return statsLine(p) })

	if tr != nil {
		// Stop before Drain (runSingle exits via os.Exit, so no defer):
		// an in-flight retrain finishes, then the loop and consumer shut
		// down cleanly.
		tr.Stop()
		ls := p.Stats().Lifecycle
		log.Printf("lifecycle: cycles=%d promotions=%d rejections=%d skips=%d generation=%d",
			ls.Cycles, ls.Promotions, ls.Rejections, ls.Skips, ls.Generation)
	}
	p.Drain(10 * time.Second)
	s := p.Stats()
	fmt.Printf("final: actors=%d messages=%d forecasts=%d events=%d\n",
		s.LiveActors, s.Messages, s.Forecasts, s.Events)
	os.Exit(0)
}

// startTrainer wires the background model-lifecycle loop into a
// single-process run: replay from the AIS topic on a dedicated
// consumer group, shadow-eval candidates against the live model, and
// hot-swap on a win. The L-VRF rebuild publishes through the
// pipeline's atomic route-model pointer, so /api/route serves lanes as
// soon as the first rebuild lands.
func startTrainer(o opts, br *broker.Broker, p *pipeline.Pipeline, topic string) *trainer.Trainer {
	if o.model == nil {
		log.Fatal("-retrain-every needs a live S-VRF model")
	}
	portMap := make(map[string]geo.Point)
	for _, pt := range fleetsim.PortsWithin(regionOrGlobal(o.box)) {
		portMap[pt.Name] = pt.Pos
	}
	tr, err := trainer.New(trainer.Config{
		Broker:       br,
		Topic:        topic,
		Live:         o.model,
		Interval:     o.retrainEvery,
		HoldoutFrac:  o.shadowHold,
		Ports:        portMap,
		PublishRoute: p.SetRouteModel,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr.Start()
	log.Printf("lifecycle trainer: retrain every %v (shadow holdout %.0f%%, %d catalog ports)",
		o.retrainEvery, o.shadowHold*100, len(portMap))
	return tr
}

// runMulti runs the whole cluster in one process: an in-memory
// coordinator, N worker pipelines sharing one store and broker, and
// the simulator feeding a shared topic whose consumer group splits the
// load across workers — every cross-partition path (forwarding,
// rebalance, handoff) is exercised for real.
func runMulti(o opts) {
	if o.workers < 1 {
		log.Fatalf("-cluster multi needs at least one worker, got %d", o.workers)
	}
	store := kvstore.New()
	defer store.Close()
	hub := feed.NewHub(feed.Options{RegionResolution: o.feedRes})
	defer hub.Close()
	br, closeBroker := openBroker(o)
	defer closeBroker()

	// In-process workers share one Go scheduler with the (CPU-heavy)
	// actor work, so a heartbeat can be starved for whole seconds on a
	// loaded small box — and a missed lease here can never mean a dead
	// worker, because workers only die with the whole process. A
	// generous lease keeps liveness expiry out of the picture; real
	// multi-process deployments (-cluster worker) keep the tight
	// default.
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Partitions:       o.partitions,
		HeartbeatTimeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// One shared views instance: every worker's writer actors publish
	// into it, so the single API surface (workers[0]) serves the whole
	// fleet regardless of partition ownership.
	v := newViews(o)
	if v != nil {
		defer v.Close()
	}
	workers := make([]*pipeline.Pipeline, 0, o.workers)
	for i := 0; i < o.workers; i++ {
		cfg := baseConfig(o, store, nil)
		cfg.Views = v
		if i == 0 {
			cfg.Feed = hub // one feed/API surface; state is shared anyway
		}
		cfg.Cluster = &pipeline.ClusterConfig{
			WorkerID:          fmt.Sprintf("w%d", i),
			Membership:        coord,
			Partitions:        o.partitions,
			Broker:            br,
			HeartbeatInterval: 200 * time.Millisecond,
		}
		p, err := pipeline.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer p.Shutdown(5 * time.Second)
		workers = append(workers, p)
	}
	log.Printf("in-process cluster: %d workers, %d partitions", o.workers, o.partitions)
	defer serveAPI(o, workers[0], store, hub)()

	const topic = "ais"
	if err := br.CreateTopic(topic, 8); err != nil {
		log.Fatal(err)
	}
	// One shared consumer group: the broker splits the feed across
	// workers, and each worker forwards what it doesn't own.
	for _, p := range workers {
		startConsumers(o, br, p, topic, 2)
	}
	simLoop(o, br, topic, nil, func() string {
		var messages, forecasts, forwards, received int64
		for _, p := range workers {
			s := p.Stats()
			messages += s.Messages
			forecasts += s.Forecasts
			if s.Cluster != nil {
				forwards += s.Cluster.Forwards
				received += s.Cluster.Received
			}
		}
		return fmt.Sprintf("workers=%d epoch=%d messages=%d forecasts=%d forwards=%d received=%d",
			len(workers), coord.Assignment().Epoch, messages, forecasts, forwards, received)
	})

	for _, p := range workers {
		p.Drain(10 * time.Second)
	}
	var messages, forecasts, forwards int64
	for _, p := range workers {
		s := p.Stats()
		messages += s.Messages
		forecasts += s.Forecasts
		if s.Cluster != nil {
			forwards += s.Cluster.Forwards
		}
	}
	fmt.Printf("final: workers=%d messages=%d forecasts=%d forwards=%d rebalances=%d\n",
		len(workers), messages, forecasts, forwards, coord.Rebalances())
	os.Exit(0)
}

// runCoordinator serves only the placement control plane: workers in
// other processes join, heartbeat and learn assignments over HTTP.
func runCoordinator(o opts) {
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{Partitions: o.partitions})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	srv := &http.Server{Addr: o.clusterAddr, Handler: coord.Handler()}
	go func() {
		log.Printf("coordinator control plane on http://%s/cluster/assignment (%d partitions)",
			o.clusterAddr, o.partitions)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	if o.duration > 0 {
		time.Sleep(o.duration)
		log.Printf("duration reached")
		return
	}
	select {}
}

// runWorker joins one worker pipeline to a remote coordinator. The
// control plane (membership, epochs, assignment) is fully remote; the
// embedded broker and store remain process-local, so the worker
// simulates and serves exactly the slice of the fleet it owns (reports
// for foreign partitions are filtered at the source — swapping the
// embedded broker for a networked one would carry them to their owner
// instead, over the same forward topics).
func runWorker(o opts) {
	if o.workerID == "" {
		log.Fatal("-cluster worker needs -worker-id")
	}
	if o.coordURL == "" {
		log.Fatal("-cluster worker needs -coordinator-url")
	}
	store := kvstore.New()
	defer store.Close()
	hub := feed.NewHub(feed.Options{RegionResolution: o.feedRes})
	defer hub.Close()
	br, closeBroker := openBroker(o)
	defer closeBroker()

	cfg := baseConfig(o, store, hub)
	if v := newViews(o); v != nil {
		cfg.Views = v
		defer v.Close()
	}
	cfg.Cluster = &pipeline.ClusterConfig{
		WorkerID:   o.workerID,
		Membership: cluster.NewRemoteCoordinator(o.coordURL),
		Partitions: o.partitions,
		Broker:     br,
	}
	p, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown(5 * time.Second)
	log.Printf("worker %s joined %s (%d partitions)", o.workerID, o.coordURL, o.partitions)
	defer serveAPI(o, p, store, hub)()

	const topic = "ais"
	if err := br.CreateTopic(topic, 8); err != nil {
		log.Fatal(err)
	}
	startConsumers(o, br, p, topic, 4)
	simLoop(o, br, topic, func(m ais.MMSI) bool { return p.OwnsKey(uint64(m)) },
		func() string {
			line := statsLine(p)
			if cs := p.Stats().Cluster; cs != nil {
				line += fmt.Sprintf(" epoch=%d owned=%d/%d", cs.Epoch, cs.OwnedPartitions, cs.Partitions)
			}
			return line
		})

	p.Drain(10 * time.Second)
	fmt.Printf("final: %s\n", statsLine(p))
	os.Exit(0)
}

// regionOrGlobal maps the zero box (global) to the full latitude band
// so the port filter still works.
func regionOrGlobal(box geo.BBox) geo.BBox {
	if box == (geo.BBox{}) {
		return geo.BBox{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	}
	return box
}

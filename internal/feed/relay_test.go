package feed

import (
	"encoding/json"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// relayRecvOne waits for one frame with a timeout.
func relayRecvOne(t *testing.T, sub *RelaySub) Delivery {
	t.Helper()
	type res struct {
		d  Delivery
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		d, ok := sub.Recv()
		ch <- res{d, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatalf("relay sub closed while waiting for a frame: %v", sub.Err())
		}
		return r.d
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within 5s")
		return Delivery{}
	}
}

// waitRelay polls the relay's stats until cond holds (the pump is
// asynchronous; fixed sleeps would be flaky).
func waitRelay(t *testing.T, r *Relay, what string, cond func(RelayStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(r.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s; stats: %+v", what, r.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// publishSync publishes n states for one vessel, waiting for the pump
// to pop each frame before publishing the next, so the conflating
// upstream ring never collapses frames and the per-frame local-policy
// accounting is exact.
func publishSync(t *testing.T, h *Hub, r *Relay, mmsi ais.MMSI, n int) {
	t.Helper()
	base := r.Stats().Relayed
	for i := 0; i < n; i++ {
		s := testState(mmsi, geo.Point{Lat: 37.5, Lon: 24.5})
		s.TS = tRef.Add(time.Duration(i) * time.Second)
		s.SOG = float64(i)
		h.PublishState(s)
		want := base + int64(i+1)
		waitRelay(t, r, "frame pop", func(st RelayStats) bool { return st.Relayed >= want })
	}
}

func TestRelayRoundTrip(t *testing.T) {
	h := NewHub(Options{})
	defer h.Close()
	topic := TopicVesselPrefix + ais.MMSI(237000001).String()
	r, err := h.NewRelay([]string{topic}, RelayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	a, err := r.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	h.PublishState(testState(237000001, geo.Point{Lat: 37.5, Lon: 24.5}))

	for _, sub := range []*RelaySub{a, b} {
		d := relayRecvOne(t, sub)
		var doc map[string]any
		if err := json.Unmarshal(d.Data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc["mmsi"] != "237000001" || d.Type != "state" {
			t.Fatalf("frame: %v / %q", doc, d.Type)
		}
	}

	// The hub performed exactly ONE ring push for this frame no matter
	// how many local subscribers the relay carries — that is the tier's
	// whole point.
	if got := h.Snapshot().Fanned; got != 1 {
		t.Fatalf("hub fanned %d pushes, want 1 (relay tier must absorb local fan-out)", got)
	}
	waitRelay(t, r, "fan-out accounting", func(st RelayStats) bool {
		return st.Relayed == 1 && st.Fanned == 2
	})
	if st := r.Stats(); st.Subscribers != 2 || st.TotalSubs != 2 {
		t.Fatalf("relay stats: %+v", st)
	}
	if agg := h.RelayStats(); agg.Relays != 1 || agg.Fanned != 2 {
		t.Fatalf("tier stats: %+v", agg)
	}
}

// TestRelaySlowSubscriberPolicies exercises each overflow policy on a
// deliberately tiny local ring while the relay keeps pumping.
func TestRelaySlowSubscriberPolicies(t *testing.T) {
	mmsi := ais.MMSI(237000001)
	topic := TopicVesselPrefix + mmsi.String()

	t.Run("drop-oldest", func(t *testing.T) {
		h := NewHub(Options{})
		defer h.Close()
		r, err := h.NewRelay([]string{topic}, RelayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := r.Subscribe(SubOptions{Buffer: 2, Policy: PolicyDropOldest})
		if err != nil {
			t.Fatal(err)
		}
		publishSync(t, h, r, mmsi, 6)
		// The ring holds the newest 2 frames: 4 older ones were evicted,
		// and the first frame received must be frame 4 (sog=4).
		waitRelay(t, r, "local drops", func(st RelayStats) bool { return st.LocalDropped == 4 })
		d := relayRecvOne(t, sub)
		var doc struct {
			SOG float64 `json:"sog"`
		}
		if err := json.Unmarshal(d.Data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.SOG != 4 {
			t.Fatalf("oldest surviving frame sog=%v, want 4", doc.SOG)
		}
	})

	t.Run("conflate", func(t *testing.T) {
		h := NewHub(Options{})
		defer h.Close()
		r, err := h.NewRelay([]string{topic}, RelayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := r.Subscribe(SubOptions{Buffer: 2, Policy: PolicyConflate})
		if err != nil {
			t.Fatal(err)
		}
		publishSync(t, h, r, mmsi, 6)
		// All six frames share the vessel conflation key: the local ring
		// holds exactly one frame — the newest.
		waitRelay(t, r, "local conflation", func(st RelayStats) bool { return st.LocalConflated == 5 })
		d := relayRecvOne(t, sub)
		var doc struct {
			SOG float64 `json:"sog"`
		}
		if err := json.Unmarshal(d.Data, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.SOG != 5 {
			t.Fatalf("conflated frame sog=%v, want 5 (newest)", doc.SOG)
		}
	})

	t.Run("disconnect", func(t *testing.T) {
		h := NewHub(Options{})
		defer h.Close()
		r, err := h.NewRelay([]string{topic}, RelayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sub, err := r.Subscribe(SubOptions{Buffer: 2, Policy: PolicyDisconnect})
		if err != nil {
			t.Fatal(err)
		}
		publishSync(t, h, r, mmsi, 6)
		// The third frame overflowed the ring: the subscriber must be
		// force-closed with ErrSlowConsumer.
		deadline := time.Now().Add(5 * time.Second)
		for sub.Err() == nil {
			if time.Now().After(deadline) {
				t.Fatal("slow subscriber was not disconnected")
			}
			time.Sleep(time.Millisecond)
		}
		if sub.Err() != ErrSlowConsumer {
			t.Fatalf("err = %v, want ErrSlowConsumer", sub.Err())
		}
		waitRelay(t, r, "eviction accounting", func(st RelayStats) bool {
			return st.Disconnected == 1 && st.Subscribers == 0
		})
	})
}

// TestRelayDoesNotBlockPublisher is the regression the tier exists
// for: with local subscribers that never consume and a tiny upstream
// ring, publishing through the hub must stay fast — the conflating
// upstream ring absorbs the backlog instead of back-pressuring the
// publisher.
func TestRelayDoesNotBlockPublisher(t *testing.T) {
	h := NewHub(Options{})
	defer h.Close()
	topic := TopicVesselPrefix + ais.MMSI(237000001).String()
	r, err := h.NewRelay([]string{topic}, RelayOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// 32 local subscribers, none of which ever calls Recv.
	for i := 0; i < 32; i++ {
		if _, err := r.Subscribe(SubOptions{Buffer: 4, Policy: PolicyDropOldest}); err != nil {
			t.Fatal(err)
		}
	}

	const n = 5000
	var maxPublish time.Duration
	start := time.Now()
	for i := 0; i < n; i++ {
		s := testState(237000001, geo.Point{Lat: 37.5, Lon: 24.5})
		s.TS = tRef.Add(time.Duration(i) * time.Second)
		t0 := time.Now()
		h.PublishState(s)
		if d := time.Since(t0); d > maxPublish {
			maxPublish = d
		}
	}
	total := time.Since(start)
	if total > 10*time.Second {
		t.Fatalf("publishing %d frames through a backlogged relay took %v", n, total)
	}
	if maxPublish > time.Second {
		t.Fatalf("slowest single publish took %v — the relay is back-pressuring the hub", maxPublish)
	}
	// Every frame is accounted for: eventually popped by the pump or
	// conflated away in the upstream ring — never stuck in the
	// publisher's path.
	waitRelay(t, r, "backlog to drain", func(st RelayStats) bool {
		return st.Relayed+st.ConflationDrops >= n
	})
}

// TestRelayHubCloseCascades: shutting the hub down must close the
// relay's upstream, drain the pump, and close every local subscriber
// with ErrHubClosed.
func TestRelayHubCloseCascades(t *testing.T) {
	h := NewHub(Options{})
	topic := TopicVesselPrefix + ais.MMSI(237000001).String()
	r, err := h.NewRelay([]string{topic}, RelayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := r.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, ok := sub.Recv(); ok {
		t.Fatal("Recv succeeded after hub close")
	}
	if sub.Err() != ErrHubClosed {
		t.Fatalf("err = %v, want ErrHubClosed", sub.Err())
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.RelayStats().Relays != 0 {
		if time.Now().After(deadline) {
			t.Fatal("relay did not deregister after hub close")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := r.Subscribe(SubOptions{}); err != ErrRelayClosed {
		t.Fatalf("Subscribe on dead relay: %v, want ErrRelayClosed", err)
	}
	r.Close() // idempotent; must not hang
}

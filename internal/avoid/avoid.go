// Package avoid implements the automated rerouting for vessel
// collision avoidance the paper lists as future work (§7): given a
// forecast collision between own ship and a target, it searches the
// smallest course alteration (with a COLREGs-flavoured preference for
// turning to starboard) that lifts the predicted closest point of
// approach above a safe separation, validating each candidate against
// the same trajectory-intersection test the collision forecaster uses.
package avoid

import (
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// OwnShip is the manoeuvring vessel's current state.
type OwnShip struct {
	MMSI ais.MMSI
	Pos  geo.Point
	SOG  float64 // knots
	COG  float64 // degrees
	At   time.Time
}

// Config tunes the search.
type Config struct {
	// SafeDistanceMeters is the CPA the manoeuvre must achieve.
	SafeDistanceMeters float64
	// MaxAlterationDeg bounds the course change considered.
	MaxAlterationDeg float64
	// StepDeg is the granularity of candidate alterations.
	StepDeg float64
	// Horizons and HorizonStep shape the projected own-ship track
	// (defaults mirror the S-VRF geometry: 6 x 5 minutes).
	Horizons    int
	HorizonStep time.Duration
	// TemporalThreshold matches the collision forecaster's setting.
	TemporalThreshold time.Duration
}

// DefaultConfig uses a 1 NM safe distance and up to 60 degrees of
// alteration in 10-degree steps.
func DefaultConfig() Config {
	return Config{
		SafeDistanceMeters: 1852,
		MaxAlterationDeg:   60,
		StepDeg:            10,
		Horizons:           6,
		HorizonStep:        5 * time.Minute,
		TemporalThreshold:  2 * time.Minute,
	}
}

// Maneuver is a proposed course alteration.
type Maneuver struct {
	// AlterationDeg is the signed course change (positive = starboard).
	AlterationDeg float64
	// NewCOG is the resulting course.
	NewCOG float64
	// PredictedCPAMeters is the closest approach the altered track
	// achieves against the target's forecast.
	PredictedCPAMeters float64
}

// project builds the own-ship forecast for a candidate course.
func project(own OwnShip, cog float64, cfg Config) events.Forecast {
	f := events.Forecast{MMSI: own.MMSI}
	f.Points = append(f.Points, events.ForecastPoint{Pos: own.Pos, At: own.At})
	for h := 1; h <= cfg.Horizons; h++ {
		dt := time.Duration(h) * cfg.HorizonStep
		f.Points = append(f.Points, events.ForecastPoint{
			Pos: geo.DeadReckon(own.Pos, own.SOG, cog, dt.Seconds()),
			At:  own.At.Add(dt),
		})
	}
	return f
}

// cpaAgainst returns the minimal temporally-compatible separation of a
// candidate own-ship track against every target forecast.
func cpaAgainst(candidate events.Forecast, targets []events.Forecast, cfg Config) float64 {
	check := events.CollisionConfig{
		TemporalThreshold: cfg.TemporalThreshold,
		// Wide spatial threshold so CheckPair reports the true CPA
		// rather than saturating at the alarm radius.
		SpatialThresholdMeters: 50 * 1852,
	}
	minSep := check.SpatialThresholdMeters
	for _, tgt := range targets {
		if tgt.MMSI == candidate.MMSI {
			continue
		}
		if e, ok := events.CheckPair(candidate, tgt, check); ok && e.Meters < minSep {
			minSep = e.Meters
		}
	}
	return minSep
}

// Suggest searches for the smallest course alteration that clears all
// target forecasts. needed is false when the current course is already
// safe; found is false when no alteration within the bounds clears the
// safe distance (the caller should then consider speed changes or a
// round turn).
func Suggest(own OwnShip, targets []events.Forecast, cfg Config) (m Maneuver, needed, found bool) {
	if cfg.SafeDistanceMeters <= 0 {
		cfg = DefaultConfig()
	}
	current := cpaAgainst(project(own, own.COG, cfg), targets, cfg)
	if current >= cfg.SafeDistanceMeters {
		return Maneuver{NewCOG: own.COG, PredictedCPAMeters: current}, false, true
	}
	// Candidate alterations ordered by magnitude, starboard first at
	// each magnitude (COLREGs rule 14/15 preference).
	for mag := cfg.StepDeg; mag <= cfg.MaxAlterationDeg; mag += cfg.StepDeg {
		for _, sign := range []float64{1, -1} {
			alt := sign * mag
			cog := norm360(own.COG + alt)
			cpa := cpaAgainst(project(own, cog, cfg), targets, cfg)
			if cpa >= cfg.SafeDistanceMeters {
				return Maneuver{
					AlterationDeg:      alt,
					NewCOG:             cog,
					PredictedCPAMeters: cpa,
				}, true, true
			}
		}
	}
	return Maneuver{}, true, false
}

func norm360(deg float64) float64 {
	for deg < 0 {
		deg += 360
	}
	for deg >= 360 {
		deg -= 360
	}
	return deg
}

package nn

import (
	"math"
	"math/rand"
)

// lstmCell holds the parameters of one LSTM direction. The four gate
// weight matrices each map the concatenation [x_t ; h_{t-1}] (size
// in+hidden) to hidden units.
type lstmCell struct {
	In, Hidden int
	// Gate order: input (i), forget (f), candidate (g), output (o).
	Wi, Wf, Wg, Wo *matrix // hidden x (in+hidden)
	Bi, Bf, Bg, Bo *matrix // hidden x 1
}

func newLSTMCell(in, hidden int, rng *rand.Rand) *lstmCell {
	scale := 1.0 / math.Sqrt(float64(in+hidden))
	c := &lstmCell{
		In: in, Hidden: hidden,
		Wi: newMatrix(hidden, in+hidden, scale, rng),
		Wf: newMatrix(hidden, in+hidden, scale, rng),
		Wg: newMatrix(hidden, in+hidden, scale, rng),
		Wo: newMatrix(hidden, in+hidden, scale, rng),
		Bi: newMatrix(hidden, 1, 0, rng),
		Bf: newMatrix(hidden, 1, 0, rng),
		Bg: newMatrix(hidden, 1, 0, rng),
		Bo: newMatrix(hidden, 1, 0, rng),
	}
	// Forget-gate bias starts at 1: standard trick so early training
	// does not erase the cell state.
	for i := range c.Bf.W {
		c.Bf.W[i] = 1
	}
	return c
}

func (c *lstmCell) matrices() []*matrix {
	return []*matrix{c.Wi, c.Wf, c.Wg, c.Wo, c.Bi, c.Bf, c.Bg, c.Bo}
}

// lstmStep caches one timestep's activations for backpropagation.
type lstmStep struct {
	x          []float64 // input at t
	hPrev      []float64
	cPrev      []float64
	i, f, g, o []float64 // gate activations
	c, h       []float64
}

// cellScratch is the reusable per-direction training arena: the
// per-step activation caches of forward and the four BPTT state
// buffers of backward. One scratch serves one goroutine; each model
// (and each training replica) owns its own, so gradSample runs
// allocation-free once the arena has grown to the longest sequence.
type cellScratch struct {
	steps  []lstmStep
	h0, c0 []float64 // zero initial state; never written
	dh, dc []float64
	sp1    []float64 // dhPrev / dh swap partner
	sp2    []float64 // dcPrev / dc swap partner
}

// ensure grows the arena to hold n steps of hidden-sized buffers.
func (sc *cellScratch) ensure(n, hidden int) {
	if sc.h0 == nil {
		sc.h0 = make([]float64, hidden)
		sc.c0 = make([]float64, hidden)
		sc.dh = make([]float64, hidden)
		sc.dc = make([]float64, hidden)
		sc.sp1 = make([]float64, hidden)
		sc.sp2 = make([]float64, hidden)
	}
	for len(sc.steps) < n {
		sc.steps = append(sc.steps, lstmStep{
			i: make([]float64, hidden),
			f: make([]float64, hidden),
			g: make([]float64, hidden),
			o: make([]float64, hidden),
			c: make([]float64, hidden),
			h: make([]float64, hidden),
		})
	}
}

// forward runs the cell over the sequence (reversed when reverse is
// set) into the scratch arena and returns the per-step cache. The
// caller reads the final hidden state from the last step. Buffers are
// reused across calls; the returned steps are valid until the next
// forward on the same scratch.
func (c *lstmCell) forward(seq [][]float64, reverse bool, sc *cellScratch) []lstmStep {
	n := len(seq)
	sc.ensure(n, c.Hidden)
	steps := sc.steps[:n]
	h := sc.h0
	cc := sc.c0
	for t := 0; t < n; t++ {
		x := seq[t]
		if reverse {
			x = seq[n-1-t]
		}
		st := &steps[t]
		st.x = x
		st.hPrev = h
		st.cPrev = cc
		for u := 0; u < c.Hidden; u++ {
			zi := c.Bi.W[u]
			zf := c.Bf.W[u]
			zg := c.Bg.W[u]
			zo := c.Bo.W[u]
			row := u * (c.In + c.Hidden)
			for k := 0; k < c.In; k++ {
				zi += c.Wi.W[row+k] * x[k]
				zf += c.Wf.W[row+k] * x[k]
				zg += c.Wg.W[row+k] * x[k]
				zo += c.Wo.W[row+k] * x[k]
			}
			for k := 0; k < c.Hidden; k++ {
				hv := h[k]
				zi += c.Wi.W[row+c.In+k] * hv
				zf += c.Wf.W[row+c.In+k] * hv
				zg += c.Wg.W[row+c.In+k] * hv
				zo += c.Wo.W[row+c.In+k] * hv
			}
			st.i[u] = sigmoid(zi)
			st.f[u] = sigmoid(zf)
			st.g[u] = math.Tanh(zg)
			st.o[u] = sigmoid(zo)
			st.c[u] = st.f[u]*cc[u] + st.i[u]*st.g[u]
			st.h[u] = st.o[u] * math.Tanh(st.c[u])
		}
		h = st.h
		cc = st.c
	}
	return steps
}

// backward propagates dLast (gradient w.r.t. the final hidden state)
// through time, accumulating parameter gradients. It returns nothing:
// input gradients are not needed because the LSTM is the first layer.
// The BPTT state lives in the scratch arena (zeroed per step exactly
// as the allocating form did, so the arithmetic is unchanged).
func (c *lstmCell) backward(steps []lstmStep, dLast []float64, sc *cellScratch) {
	dh := sc.dh[:c.Hidden]
	dc := sc.dc[:c.Hidden]
	copy(dh, dLast)
	for i := range dc {
		dc[i] = 0
	}
	sp1 := sc.sp1[:c.Hidden]
	sp2 := sc.sp2[:c.Hidden]
	for t := len(steps) - 1; t >= 0; t-- {
		st := &steps[t]
		dhPrev := sp1
		dcPrev := sp2
		for i := range dhPrev {
			dhPrev[i] = 0
			dcPrev[i] = 0
		}
		for u := 0; u < c.Hidden; u++ {
			tanhC := math.Tanh(st.c[u])
			do := dh[u] * tanhC
			dcU := dc[u] + dh[u]*st.o[u]*(1-tanhC*tanhC)
			di := dcU * st.g[u]
			dg := dcU * st.i[u]
			df := dcU * st.cPrev[u]
			dcPrev[u] = dcU * st.f[u]

			// Pre-activation gradients.
			zi := di * st.i[u] * (1 - st.i[u])
			zf := df * st.f[u] * (1 - st.f[u])
			zg := dg * (1 - st.g[u]*st.g[u])
			zo := do * st.o[u] * (1 - st.o[u])

			c.Bi.g[u] += zi
			c.Bf.g[u] += zf
			c.Bg.g[u] += zg
			c.Bo.g[u] += zo

			row := u * (c.In + c.Hidden)
			for k := 0; k < c.In; k++ {
				xv := st.x[k]
				c.Wi.g[row+k] += zi * xv
				c.Wf.g[row+k] += zf * xv
				c.Wg.g[row+k] += zg * xv
				c.Wo.g[row+k] += zo * xv
			}
			for k := 0; k < c.Hidden; k++ {
				hv := st.hPrev[k]
				idx := row + c.In + k
				c.Wi.g[idx] += zi * hv
				c.Wf.g[idx] += zf * hv
				c.Wg.g[idx] += zg * hv
				c.Wo.g[idx] += zo * hv
				dhPrev[k] += zi*c.Wi.W[idx] + zf*c.Wf.W[idx] + zg*c.Wg.W[idx] + zo*c.Wo.W[idx]
			}
		}
		sp1, dh = dh, dhPrev
		sp2, dc = dc, dcPrev
	}
}

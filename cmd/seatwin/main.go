// Command seatwin runs the full maritime digital-twin pipeline on a
// simulated AIS feed: a fleet simulator produces position reports into
// the embedded broker, the actor pipeline consumes them, forecasts
// routes, detects and forecasts events, and persists state into the
// kvstore, which is served over an HTTP API (and optionally a
// Redis-protocol socket).
//
// Usage:
//
//	seatwin [-vessels 2000] [-region aegean|europe|global] [-model s-vrf.gob]
//	        [-addr :8080] [-resp :6379] [-feed-tcp :9230] [-duration 0] [-seed 1]
//	        [-pprof] [-chaos error=0.1,latency=5ms] [-checkpoint-every 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/chaos"
	"seatwin/internal/congestion"
	"seatwin/internal/events"
	"seatwin/internal/feed"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/kvstore"
	"seatwin/internal/pipeline"
	"seatwin/internal/retry"
	"seatwin/internal/svrf"
)

func main() {
	var (
		vessels   = flag.Int("vessels", 2000, "simulated fleet size")
		region    = flag.String("region", "aegean", "aegean | europe | global")
		modelPath = flag.String("model", "", "trained S-VRF model file (empty: linear kinematic)")
		addr      = flag.String("addr", "127.0.0.1:8080", "HTTP API listen address")
		respAddr  = flag.String("resp", "", "optional Redis-protocol listen address (e.g. 127.0.0.1:6379)")
		duration  = flag.Duration("duration", 0, "run time (0 = until interrupted)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		dataDir   = flag.String("data", "", "durable broker directory (empty = in-memory)")
		ports     = flag.Bool("monitor-ports", false, "enable port-congestion monitoring for catalog ports in the region")
		feedTCP   = flag.String("feed-tcp", "", "optional live-feed TCP listen address (length-prefixed JSON, e.g. 127.0.0.1:9230)")
		feedRes   = flag.Int("feed-region-res", 7, "hexgrid resolution of live-feed region/<cell> topics")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the API address")
		chaosSpec = flag.String("chaos", "", "fault-injection spec, e.g. error=0.1,latency=5ms,panic=0.001,truncate=0.01,seed=7 (empty = off)")
		ckptEvery = flag.Int("checkpoint-every", 0, "reports between vessel history checkpoints (0 = 16; negative = disable checkpointing)")
	)
	flag.Parse()

	var injector *chaos.Injector
	if *chaosSpec != "" {
		policy, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		if policy.Enabled() {
			injector = chaos.New(policy)
			log.Printf("chaos enabled: %+v", policy)
		}
	}

	var box geo.BBox
	switch *region {
	case "aegean":
		box = geo.AegeanSea
	case "europe":
		box = geo.EuropeanCoverage
	case "global":
		box = geo.BBox{}
	default:
		log.Fatalf("unknown region %q", *region)
	}

	var fc events.TrackForecaster = events.NewKinematicForecaster()
	if *modelPath != "" {
		m, err := svrf.LoadFile(*modelPath, svrf.DefaultConfig())
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		fc = events.SVRFForecaster{Model: m}
		log.Printf("loaded S-VRF model from %s", *modelPath)
	} else {
		log.Printf("no -model given; using the linear kinematic forecaster")
	}

	store := kvstore.New()
	defer store.Close()
	cfg := pipeline.DefaultConfig(fc)
	cfg.Store = store
	// The live feed is always on: SSE subscribers attach via the HTTP
	// API (/api/stream), TCP subscribers via -feed-tcp.
	hub := feed.NewHub(feed.Options{RegionResolution: *feedRes})
	defer hub.Close()
	cfg.Feed = hub
	cfg.Chaos = injector
	cfg.CheckpointInterval = *ckptEvery
	if *ports {
		for _, pt := range fleetsim.PortsWithin(regionOrGlobal(box)) {
			cfg.Ports = append(cfg.Ports, congestion.Port{
				Name: pt.Name, Pos: pt.Pos, Radius: 6000, Capacity: 10,
			})
		}
		log.Printf("monitoring %d ports (GET /api/congestion)", len(cfg.Ports))
	}
	p, err := pipeline.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown(5 * time.Second)

	// Middleware: HTTP API (+ optional RESP endpoint on the store).
	api := pipeline.NewAPI(p)
	if *pprofOn {
		api.EnablePprof()
		log.Printf("pprof endpoints on http://%s/debug/pprof/", *addr)
	}
	go func() {
		if err := api.ListenAndServe(*addr); err != nil {
			log.Printf("api: %v", err)
		}
	}()
	defer api.Close()
	if *respAddr != "" {
		respSrv := kvstore.NewServer(store)
		go func() {
			if err := respSrv.ListenAndServe(*respAddr); err != nil {
				log.Printf("resp: %v", err)
			}
		}()
		defer respSrv.Close()
		log.Printf("redis-protocol endpoint on %s", *respAddr)
	}
	if *feedTCP != "" {
		feedSrv := feed.NewServer(hub)
		go func() {
			if err := feedSrv.ListenAndServe(*feedTCP); err != nil {
				log.Printf("feed: %v", err)
			}
		}()
		defer feedSrv.Close()
		log.Printf("live-feed TCP endpoint on %s", *feedTCP)
	}
	log.Printf("http api on http://%s/api/stats (live feed: /api/stream)", *addr)

	// Ingestion: simulator -> broker -> pipeline consumers.
	var br *broker.Broker
	if *dataDir != "" {
		broker.RegisterType(ais.PositionReport{})
		broker.RegisterType(ais.StaticVoyage{})
		var err error
		br, err = broker.OpenDir(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		defer br.Close()
		log.Printf("durable broker at %s", *dataDir)
	} else {
		br = broker.New()
	}
	const topic = "ais"
	if err := br.CreateTopic(topic, 8); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c, err := br.Subscribe(topic, "pipeline")
		if err != nil {
			log.Fatal(err)
		}
		var rc pipeline.RecordConsumer = c
		if injector != nil {
			rc = chaos.WrapConsumer(c, injector)
		}
		go p.ConsumeLoop(rc, time.Hour)
	}

	world := fleetsim.NewWorld(fleetsim.Config{
		Vessels:     *vessels,
		Seed:        *seed,
		Region:      box,
		KeepSailing: true,
	})
	log.Printf("simulating %d vessels (%s)", *vessels, *region)

	// Produce through the chaos wrapper (when enabled) and a bounded
	// retry: a transient produce fault costs a few capped sleeps and,
	// on exhaustion, drops that one report — never the whole process.
	produce := br.Produce
	if injector != nil {
		produce = chaos.WrapProducer(br, injector).Produce
	}
	producePolicy := retry.DefaultPolicy()
	var produceDropped int64

	stop := time.Now().Add(*duration)
	statsEvery := time.Now().Add(5 * time.Second)
	// The producer paces the simulation against the wall clock at an
	// accelerated rate so a small fleet still generates live traffic.
	for {
		r, ok := world.Next()
		if !ok {
			log.Printf("simulation drained")
			break
		}
		if res := producePolicy.Do(func() (err error) {
			// A panic out of the produce path (an injected chaos fault,
			// or a genuinely broken broker) is one failed attempt, not a
			// process crash — same contract as the consume loop.
			defer func() {
				if rec := recover(); rec != nil {
					err = fmt.Errorf("produce panicked: %v", rec)
				}
			}()
			_, _, err = produce(topic, r.Pos.MMSI.String(), r.Pos)
			return err
		}); res.Err != nil {
			produceDropped++
			if produceDropped == 1 || produceDropped%1000 == 0 {
				log.Printf("produce: dropped %d reports (last: %v)", produceDropped, res.Err)
			}
		}
		if time.Now().After(statsEvery) {
			s := p.Stats()
			fmt.Printf("actors=%d messages=%d forecasts=%d events=%d lat_mean=%v lat_p99=%v\n",
				s.LiveActors, s.Messages, s.Forecasts, s.Events,
				s.Latency.Mean.Round(time.Microsecond), s.Latency.P99.Round(time.Microsecond))
			statsEvery = time.Now().Add(5 * time.Second)
		}
		if *duration > 0 && time.Now().After(stop) {
			log.Printf("duration reached")
			break
		}
	}
	p.Drain(10 * time.Second)
	s := p.Stats()
	fmt.Printf("final: actors=%d messages=%d forecasts=%d events=%d\n",
		s.LiveActors, s.Messages, s.Forecasts, s.Events)
	os.Exit(0)
}

// regionOrGlobal maps the zero box (global) to the full latitude band
// so the port filter still works.
func regionOrGlobal(box geo.BBox) geo.BBox {
	if box == (geo.BBox{}) {
		return geo.BBox{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180}
	}
	return box
}

// Package kvstore implements the in-memory key-value store the writer
// actor persists actor states into, playing the role Redis plays in the
// paper's middleware: strings, hashes and sorted sets with TTLs,
// publish/subscribe channels, snapshot persistence, and a line-protocol
// TCP server (a RESP subset) so external middleware like the UI API can
// read the state the same way it would from Redis.
package kvstore

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// valueKind discriminates what a key holds; Redis-style type errors are
// returned when a command addresses a key of the wrong kind.
type valueKind uint8

const (
	kindString valueKind = iota
	kindHash
	kindZSet
)

type entry struct {
	kind     valueKind
	str      string
	hash     map[string]string
	zset     *zset
	expireAt time.Time // zero means no expiry
}

func (e *entry) expired(now time.Time) bool {
	return !e.expireAt.IsZero() && now.After(e.expireAt)
}

// ErrWrongType is returned when a key holds a value of another kind.
var ErrWrongType = fmt.Errorf("kvstore: operation against a key holding the wrong kind of value")

// Store is a thread-safe in-memory database.
type Store struct {
	mu   sync.RWMutex
	data map[string]*entry

	subMu  sync.RWMutex
	subs   map[string]map[int]chan Message
	nextID int

	stopSweep chan struct{}
	sweepOnce sync.Once
}

// Message is one pub/sub delivery.
type Message struct {
	Channel string
	Payload string
}

// New creates an empty store with a background expiry sweeper.
func New() *Store {
	s := &Store{
		data:      make(map[string]*entry),
		subs:      make(map[string]map[int]chan Message),
		stopSweep: make(chan struct{}),
	}
	go s.sweeper()
	return s
}

// Close stops the background sweeper.
func (s *Store) Close() {
	s.sweepOnce.Do(func() { close(s.stopSweep) })
}

func (s *Store) sweeper() {
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case now := <-ticker.C:
			s.mu.Lock()
			for k, e := range s.data {
				if e.expired(now) {
					delete(s.data, k)
				}
			}
			s.mu.Unlock()
		}
	}
}

// live returns the entry for key if present and unexpired; callers hold
// at least a read lock. Expired entries are treated as absent (lazy
// deletion happens on the next write or sweep).
func (s *Store) live(key string) (*entry, bool) {
	e, ok := s.data[key]
	if !ok || e.expired(time.Now()) {
		return nil, false
	}
	return e, true
}

// Set stores a string value, clearing any previous TTL.
func (s *Store) Set(key, value string) {
	s.mu.Lock()
	s.data[key] = &entry{kind: kindString, str: value}
	s.mu.Unlock()
}

// SetEx stores a string value with a TTL.
func (s *Store) SetEx(key, value string, ttl time.Duration) {
	s.mu.Lock()
	s.data[key] = &entry{kind: kindString, str: value, expireAt: time.Now().Add(ttl)}
	s.mu.Unlock()
}

// Get returns the string stored at key.
func (s *Store) Get(key string) (string, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return "", false, nil
	}
	if e.kind != kindString {
		return "", false, ErrWrongType
	}
	return e.str, true, nil
}

// Del removes keys, returning how many existed.
func (s *Store) Del(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.live(k); ok {
			n++
		}
		delete(s.data, k)
	}
	return n
}

// Exists reports whether the key is present and unexpired.
func (s *Store) Exists(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.live(key)
	return ok
}

// Expire sets a TTL on an existing key.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live(key)
	if !ok {
		return false
	}
	e.expireAt = time.Now().Add(ttl)
	return true
}

// TTL returns the remaining time to live, ok=false when the key is
// missing, and a negative duration when the key has no expiry.
func (s *Store) TTL(key string) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return 0, false
	}
	if e.expireAt.IsZero() {
		return -1, true
	}
	return time.Until(e.expireAt), true
}

// Keys returns all live keys (test/introspection helper; O(n)).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	now := time.Now()
	for k, e := range s.data {
		if !e.expired(now) {
			out = append(out, k)
		}
	}
	return out
}

// KeysWithPrefix returns all live keys beginning with prefix (O(n)
// scan). An empty prefix returns every live key. The cluster rebalance
// path uses it to enumerate "ckpt:<mmsi>" keys when a worker acquires
// a partition.
func (s *Store) KeysWithPrefix(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, 64)
	now := time.Now()
	for k, e := range s.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix && !e.expired(now) {
			out = append(out, k)
		}
	}
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	now := time.Now()
	for _, e := range s.data {
		if !e.expired(now) {
			n++
		}
	}
	return n
}

// HSet sets field to value in the hash at key, creating the hash as
// needed. It returns true when the field is new.
func (s *Store) HSet(key, field, value string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live(key)
	if !ok {
		e = &entry{kind: kindHash, hash: make(map[string]string)}
		s.data[key] = e
	} else if e.kind != kindHash {
		return false, ErrWrongType
	}
	_, existed := e.hash[field]
	e.hash[field] = value
	return !existed, nil
}

// HSetMulti sets every field/value pair in the hash at key under one
// lock acquisition, creating the hash as needed — the batched write
// path of the writer actors, which would otherwise pay one store-wide
// mutex round-trip per field. It returns how many fields were new.
func (s *Store) HSetMulti(key string, fields map[string]string) (int, error) {
	if len(fields) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live(key)
	if !ok {
		e = &entry{kind: kindHash, hash: make(map[string]string, len(fields))}
		s.data[key] = e
	} else if e.kind != kindHash {
		return 0, ErrWrongType
	}
	added := 0
	for f, v := range fields {
		if _, existed := e.hash[f]; !existed {
			added++
		}
		e.hash[f] = v
	}
	return added, nil
}

// Field is one name/value pair of a batched hash write. A []Field is
// the allocation-free alternative to the map[string]string HSetMulti
// takes: writers build the slice in reused scratch (the values may all
// be substrings of one backing string) and no per-write map is needed.
type Field struct {
	Name  string
	Value string
}

// HSetFields sets every field under one lock acquisition, like
// HSetMulti but from a []Field. Later duplicates of a name win. It
// returns how many fields were new.
func (s *Store) HSetFields(key string, fields []Field) (int, error) {
	if len(fields) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live(key)
	if !ok {
		e = &entry{kind: kindHash, hash: make(map[string]string, len(fields))}
		s.data[key] = e
	} else if e.kind != kindHash {
		return 0, ErrWrongType
	}
	added := 0
	for _, f := range fields {
		if _, existed := e.hash[f.Name]; !existed {
			added++
		}
		e.hash[f.Name] = f.Value
	}
	return added, nil
}

// HGet returns the value of field in the hash at key.
func (s *Store) HGet(key, field string) (string, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return "", false, nil
	}
	if e.kind != kindHash {
		return "", false, ErrWrongType
	}
	v, ok := e.hash[field]
	return v, ok, nil
}

// HGetAll returns a copy of the whole hash at key.
func (s *Store) HGetAll(key string) (map[string]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return map[string]string{}, nil
	}
	if e.kind != kindHash {
		return nil, ErrWrongType
	}
	out := make(map[string]string, len(e.hash))
	for f, v := range e.hash {
		out[f] = v
	}
	return out, nil
}

// HDel removes fields from the hash at key, returning how many existed.
func (s *Store) HDel(key string, fields ...string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live(key)
	if !ok {
		return 0, nil
	}
	if e.kind != kindHash {
		return 0, ErrWrongType
	}
	n := 0
	for _, f := range fields {
		if _, ok := e.hash[f]; ok {
			delete(e.hash, f)
			n++
		}
	}
	if len(e.hash) == 0 {
		delete(s.data, key)
	}
	return n, nil
}

// HLen returns the number of fields in the hash at key.
func (s *Store) HLen(key string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return 0, nil
	}
	if e.kind != kindHash {
		return 0, ErrWrongType
	}
	return len(e.hash), nil
}

// ZAdd inserts or updates a member with the given score in the sorted
// set at key, returning true when the member is new.
func (s *Store) ZAdd(key string, score float64, member string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live(key)
	if !ok {
		e = &entry{kind: kindZSet, zset: newZSet()}
		s.data[key] = e
	} else if e.kind != kindZSet {
		return false, ErrWrongType
	}
	return e.zset.add(score, member), nil
}

// ZScore returns the score of a member in the sorted set at key.
func (s *Store) ZScore(key, member string) (float64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return 0, false, nil
	}
	if e.kind != kindZSet {
		return 0, false, ErrWrongType
	}
	sc, ok := e.zset.score(member)
	return sc, ok, nil
}

// ZRem removes members from the sorted set at key.
func (s *Store) ZRem(key string, members ...string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.live(key)
	if !ok {
		return 0, nil
	}
	if e.kind != kindZSet {
		return 0, ErrWrongType
	}
	n := 0
	for _, m := range members {
		if e.zset.remove(m) {
			n++
		}
	}
	if e.zset.len() == 0 {
		delete(s.data, key)
	}
	return n, nil
}

// ZCard returns the cardinality of the sorted set at key.
func (s *Store) ZCard(key string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return 0, nil
	}
	if e.kind != kindZSet {
		return 0, ErrWrongType
	}
	return e.zset.len(), nil
}

// ZMember is one member/score pair returned by range queries.
type ZMember struct {
	Member string
	Score  float64
}

// ZRangeByScore returns members with min <= score <= max in score order.
func (s *Store) ZRangeByScore(key string, min, max float64) ([]ZMember, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return nil, nil
	}
	if e.kind != kindZSet {
		return nil, ErrWrongType
	}
	return e.zset.rangeByScore(min, max), nil
}

// ZRevRangeByScore returns up to limit members with min <= score <= max
// in descending score order (limit <= 0 = unbounded). It is the bounded
// read the API's newest-first queries want: a limit-k query over a
// 170K-member active-vessel index copies k members, not the whole set.
func (s *Store) ZRevRangeByScore(key string, min, max float64, limit int) ([]ZMember, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.live(key)
	if !ok {
		return nil, nil
	}
	if e.kind != kindZSet {
		return nil, ErrWrongType
	}
	return e.zset.revRangeByScore(min, max, limit), nil
}

// Publish delivers payload to every subscriber of channel, returning
// the number of receivers. Slow subscribers drop messages rather than
// block the publisher (the writer actor must never stall on a reader).
func (s *Store) Publish(channel, payload string) int {
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	n := 0
	for _, ch := range s.subs[channel] {
		select {
		case ch <- Message{Channel: channel, Payload: payload}:
			n++
		default:
		}
	}
	return n
}

// Subscribe returns a channel of messages published to the named
// channel and a cancel function.
func (s *Store) Subscribe(channel string, buffer int) (<-chan Message, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Message, buffer)
	s.subMu.Lock()
	id := s.nextID
	s.nextID++
	if s.subs[channel] == nil {
		s.subs[channel] = make(map[int]chan Message)
	}
	s.subs[channel][id] = ch
	s.subMu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			s.subMu.Lock()
			if m := s.subs[channel]; m != nil {
				delete(m, id)
				if len(m) == 0 {
					delete(s.subs, channel)
				}
			}
			// Safe: publishers hold subMu.RLock while sending, so once
			// the entry is gone no send can race this close.
			close(ch)
			s.subMu.Unlock()
		})
	}
}

// snapshotEntry is the gob-encodable form of one key.
type snapshotEntry struct {
	Key      string
	Kind     uint8
	Str      string
	Hash     map[string]string
	ZMembers []ZMember
	ExpireAt time.Time
}

// Save writes an RDB-like snapshot of the live dataset.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	now := time.Now()
	snap := make([]snapshotEntry, 0, len(s.data))
	for k, e := range s.data {
		if e.expired(now) {
			continue
		}
		se := snapshotEntry{Key: k, Kind: uint8(e.kind), Str: e.str, ExpireAt: e.expireAt}
		if e.hash != nil {
			se.Hash = make(map[string]string, len(e.hash))
			for f, v := range e.hash {
				se.Hash[f] = v
			}
		}
		if e.zset != nil {
			se.ZMembers = e.zset.rangeByScore(negInf, posInf)
		}
		snap = append(snap, se)
	}
	s.mu.RUnlock()
	return gob.NewEncoder(w).Encode(snap)
}

// Load replaces the dataset with a snapshot written by Save.
func (s *Store) Load(r io.Reader) error {
	var snap []snapshotEntry
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return err
	}
	data := make(map[string]*entry, len(snap))
	for _, se := range snap {
		e := &entry{kind: valueKind(se.Kind), str: se.Str, expireAt: se.ExpireAt}
		if se.Hash != nil {
			e.hash = se.Hash
		}
		if se.Kind == uint8(kindZSet) {
			e.zset = newZSet()
			for _, m := range se.ZMembers {
				e.zset.add(m.Score, m.Member)
			}
		}
		data[se.Key] = e
	}
	s.mu.Lock()
	s.data = data
	s.mu.Unlock()
	return nil
}

// SaveFile snapshots to a file path atomically (write temp + rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads a snapshot file written by SaveFile.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

package actor

import "sync"

// EventStream is a simple synchronous publish/subscribe bus carrying
// system events (dead letters, failures) and any user-published values.
// Handlers run on the publisher's goroutine and must be fast and
// non-blocking.
type EventStream struct {
	mu     sync.RWMutex
	nextID int
	subs   map[int]func(any)
}

// NewEventStream creates an empty stream.
func NewEventStream() *EventStream {
	return &EventStream{subs: make(map[int]func(any))}
}

// Subscribe registers a handler for every published event and returns
// an unsubscribe function.
func (e *EventStream) Subscribe(fn func(any)) (unsubscribe func()) {
	e.mu.Lock()
	id := e.nextID
	e.nextID++
	e.subs[id] = fn
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		delete(e.subs, id)
		e.mu.Unlock()
	}
}

// SubscribeType registers a handler invoked only for events of type T.
func SubscribeType[T any](e *EventStream, fn func(T)) (unsubscribe func()) {
	return e.Subscribe(func(ev any) {
		if v, ok := ev.(T); ok {
			fn(v)
		}
	})
}

// Publish delivers the event to every subscriber present when the call
// started. The handler list is snapshotted before any handler runs:
// invoking handlers under the read lock would deadlock with Go's
// writer-preferring RWMutex as soon as a handler calls Subscribe or
// unsubscribe (the write-lock request blocks, and with a writer
// waiting, a re-entrant RLock blocks too). The snapshot costs one small
// allocation and gives handlers the usual pub/sub freedom: a handler
// may (un)subscribe, and one (un)subscribing concurrently with Publish
// may or may not see the in-flight event.
func (e *EventStream) Publish(event any) {
	e.mu.RLock()
	handlers := make([]func(any), 0, len(e.subs))
	for _, fn := range e.subs {
		handlers = append(handlers, fn)
	}
	e.mu.RUnlock()
	for _, fn := range handlers {
		fn(event)
	}
}

// Len returns the number of active subscriptions.
func (e *EventStream) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.subs)
}

package lvrf

import (
	"testing"
	"time"

	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
)

// TestEndToEndFromSimulator mines trips out of a multi-day simulated
// recording and verifies the full EnvClus* path: extraction → lane
// graphs → route forecasts that stay close to the actual lane → usable
// Patterns of Life.
func TestEndToEndFromSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation, skipped in short mode")
	}
	ds := fleetsim.Record(geo.AegeanSea, 120, 48*time.Hour, 5)
	ports := map[string]geo.Point{}
	for _, p := range fleetsim.PortsWithin(geo.AegeanSea) {
		ports[p.Name] = p.Pos
	}
	var trips []Trip
	for _, tr := range ds.Tracks {
		in := TrackInput{
			MMSI: uint32(tr.Vessel.MMSI),
			Features: Features{
				ShipType: uint8(tr.Vessel.Profile.Type),
				Length:   float64(tr.Vessel.Profile.Length),
				Draught:  tr.Vessel.Profile.Draught,
			},
		}
		for _, r := range tr.Reports {
			in.Positions = append(in.Positions, geo.Point{Lat: r.Lat, Lon: r.Lon})
			in.Times = append(in.Times, r.Timestamp)
		}
		trips = append(trips, ExtractTrips(in, ports, 6000)...)
	}
	if len(trips) < 50 {
		t.Fatalf("only %d trips mined from 48 h of traffic", len(trips))
	}
	// Every trip is well-formed.
	for _, trip := range trips {
		if trip.Origin == trip.Dest {
			t.Fatalf("degenerate trip %s -> %s", trip.Origin, trip.Dest)
		}
		if trip.Duration() <= 0 || trip.Length() <= 0 {
			t.Fatalf("empty trip metrics: %+v", trip)
		}
		// The extracted trip spans from leaving the origin's 6 km port
		// radius to entering the destination's, so its floor is the
		// great circle minus both approach zones.
		gc := geo.Haversine(ports[trip.Origin], ports[trip.Dest])
		if trip.Length() < gc-2*6000-2000 {
			t.Fatalf("trip %s->%s shorter (%.0f m) than plausible floor (gc %.0f m)",
				trip.Origin, trip.Dest, trip.Length(), gc)
		}
	}

	model := Train(trips, ports, DefaultConfig())
	pairs := model.Pairs()
	if len(pairs) == 0 {
		t.Fatal("no lanes learned")
	}

	// For each learned pair, the forecast path must start and end at the
	// ports and track the historical trips reasonably.
	checked := 0
	for _, pr := range pairs {
		if checked >= 10 {
			break
		}
		path, err := model.ForecastRoute(pr[0], pr[1], Features{ShipType: 70, Length: 190, Draught: 10})
		if err != nil {
			t.Fatalf("%v: %v", pr, err)
		}
		if d := geo.Haversine(path[0], ports[pr[0]]); d > 10000 {
			t.Fatalf("%v: path starts %.0f m from origin", pr, d)
		}
		if d := geo.Haversine(path[len(path)-1], ports[pr[1]]); d > 10000 {
			t.Fatalf("%v: path ends %.0f m from destination", pr, d)
		}
		// Against one historical trip of the same pair.
		for _, trip := range trips {
			if trip.Origin == pr[0] && trip.Dest == pr[1] {
				if ct := MeanCrossTrack(path, trip.Points); ct > 20000 {
					t.Fatalf("%v: forecast %.0f m from a historical trip", pr, ct)
				}
				break
			}
		}
		pol, err := model.PatternsOfLife(pr[0], pr[1])
		if err != nil || pol.Trips < 3 || pol.MeanSpeedKn <= 0 {
			t.Fatalf("%v: POL %+v err %v", pr, pol, err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

package nn

import "sync"

// This file implements the inference-only compiled path. The training
// forward pass (lstm.go) allocates a full backprop cache — eight slices
// per timestep per direction — and runs four separate gate GEMVs per
// step against four separate weight matrices. Neither is needed at
// serving time: the pipeline mounts one trained model and calls it from
// every vessel actor on the hot path, so inference cost per report is
// what bounds world-fleet-scale throughput.
//
// Compile() snapshots the trained weights into a fused layout: the four
// gate rows of each hidden unit sit adjacent in one 4H x (In+Hidden)
// row-major block, so a single pass over [x_t ; h_{t-1}] feeds all four
// gate accumulators from one contiguous weight stream. PredictInto
// walks the sequence with ping-pong state buffers — no per-step cache —
// and keeps every intermediate in a sync.Pool-backed Scratch arena, so
// the steady state allocates nothing.
//
// The accumulation order is exactly the reference Predict's (bias, then
// input terms in index order, then hidden terms). Two deliberate,
// bounded numeric departures buy the rest of the speed: the gate
// activations use the table-driven expFast (fastmath.go, ~2 ulp), and
// on GOAMD64=v3 / arm64 builds the multiply-accumulates fuse
// (kernel_fma.go). Both stay orders of magnitude inside the 1e-12
// parity contract that TestCompiledParity enforces against the
// untouched reference Predict.

// fusedCell is the inference-only snapshot of one LSTM direction.
type fusedCell struct {
	in, hidden int
	width      int // in + hidden, the fused row length
	// w holds 4*hidden rows of length width; rows 4u..4u+3 are the
	// (input, forget, candidate, output) gate rows of unit u, so one
	// unit's step streams one contiguous 4*width block. (An
	// element-interleaved variant was measured ~12% slower: the
	// walking-slice bookkeeping cost more than the register pressure
	// it saved.)
	w []float64
	// b holds the matching fused biases: b[4u..4u+3].
	b []float64
	// vec selects the AVX2/FMA hidden-state GEMV (kernel_avx2_amd64.s)
	// when the CPU supports it and hidden is a multiple of the vector
	// width; otherwise run uses the portable scalar loop.
	vec bool
}

func fuse(c *lstmCell) *fusedCell {
	width := c.In + c.Hidden
	f := &fusedCell{
		in: c.In, hidden: c.Hidden, width: width,
		w:   make([]float64, 4*c.Hidden*width),
		b:   make([]float64, 4*c.Hidden),
		vec: hasAVX2FMA && c.Hidden >= 4 && c.Hidden%4 == 0,
	}
	for u := 0; u < c.Hidden; u++ {
		base := u * 4 * width
		copy(f.w[base:base+width], c.Wi.W[u*width:(u+1)*width])
		copy(f.w[base+width:base+2*width], c.Wf.W[u*width:(u+1)*width])
		copy(f.w[base+2*width:base+3*width], c.Wg.W[u*width:(u+1)*width])
		copy(f.w[base+3*width:base+4*width], c.Wo.W[u*width:(u+1)*width])
		f.b[4*u] = c.Bi.W[u]
		f.b[4*u+1] = c.Bf.W[u]
		f.b[4*u+2] = c.Bg.W[u]
		f.b[4*u+3] = c.Bo.W[u]
	}
	return f
}

// run walks the sequence (reversed when reverse is set) with ping-pong
// state buffers and returns the slice holding the final hidden state —
// one of h/hN, so callers must copy before reusing the scratch. z is
// the 4*hidden pre-activation buffer.
//
// Each step is two passes. The GEMV pass streams the fused weight block
// into z with nothing else in flight, so it runs at the FP-port limit.
// The activation pass then walks z in a tight loop: adjacent units are
// independent, so the out-of-order window overlaps their exp chains and
// divisions instead of serialising them behind a 300-µop GEMV body (the
// single-pass form measured ~11ns per activation; split, ~5ns).
func (f *fusedCell) run(seq [][]float64, reverse bool, h, c, hN, cN, z []float64) []float64 {
	in, hidden := f.in, f.hidden
	h = h[:hidden]
	c = c[:hidden]
	hN = hN[:hidden]
	cN = cN[:hidden]
	z = z[:4*hidden]
	for i := range h {
		h[i] = 0
		c[i] = 0
	}
	n := len(seq)
	for t := 0; t < n; t++ {
		x := seq[t]
		if reverse {
			x = seq[n-1-t]
		}
		x = x[:in]
		if f.vec {
			f.stepVec(x, h, z)
		} else {
			f.stepScalar(x, h, z)
		}
		// Gate pass: all four activations of a unit are evaluated by one
		// act4 call over freshly stored z values, so units pipeline. The
		// output gate is parked back into z's consumed slot; tanh(c)
		// gets its own pass below so it reads finished cN values instead
		// of waiting on this iteration's serial i/f/g chain (measured
		// ~3x faster than fusing the passes).
		for u := 0; u < hidden; u++ {
			ig, fg, gg, og := act4(z[4*u], z[4*u+1], z[4*u+2], z[4*u+3])
			cN[u] = fg*c[u] + ig*gg
			z[4*u] = og
		}
		for u := 0; u < hidden; u++ {
			hN[u] = z[4*u] * tanhFast(cN[u])
		}
		h, hN = hN, h
		c, cN = cN, c
	}
	return h
}

// stepVec is the vector GEMV pass of one step: it seeds z with bias +
// input contributions in Go (the input dim is tiny — 3 in the S-VRF
// shape), then lets the AVX2/FMA kernel stream the hidden-state block,
// which is where ~90% of the multiply-accumulates live. Only called
// when f.vec is set. Shared by the inference run loop and the compiled
// training forward.
func (f *fusedCell) stepVec(x, h, z []float64) {
	in, hidden := f.in, f.hidden
	for u := 0; u < hidden; u++ {
		base := u * 4 * f.width
		ri := f.w[base : base+f.width]
		rf := ri[f.width : 2*f.width]
		rg := ri[2*f.width : 3*f.width]
		ro := ri[3*f.width : 4*f.width]
		zi := f.b[4*u]
		zf := f.b[4*u+1]
		zg := f.b[4*u+2]
		zo := f.b[4*u+3]
		rix, rfx, rgx, rox := ri[:in], rf[:in], rg[:in], ro[:in]
		for k := 0; k < in; k++ {
			xv := x[k]
			zi = madd(rix[k], xv, zi)
			zf = madd(rfx[k], xv, zf)
			zg = madd(rgx[k], xv, zg)
			zo = madd(rox[k], xv, zo)
		}
		z[4*u] = zi
		z[4*u+1] = zf
		z[4*u+2] = zg
		z[4*u+3] = zo
	}
	gemvHiddenAVX2(&f.w[0], &h[0], &z[0], hidden, f.width, in)
}

// stepScalar is the portable GEMV pass of one step: for each unit it
// streams the fused 4xwidth weight block over [x ; h] and stores the
// four gate pre-activations into z. It is the only GEMV on platforms
// without the vector kernel, and the fallback for hidden sizes the
// kernel does not cover.
func (f *fusedCell) stepScalar(x, h, z []float64) {
	in, hidden := f.in, f.hidden
	for u := 0; u < hidden; u++ {
		base := u * 4 * f.width
		// Re-sliced to exact lengths so the inner loops run without
		// bounds checks; one contiguous weight stream per unit.
		ri := f.w[base : base+f.width]
		rf := ri[f.width : 2*f.width]
		rg := ri[2*f.width : 3*f.width]
		ro := ri[3*f.width : 4*f.width]
		zi := f.b[4*u]
		zf := f.b[4*u+1]
		zg := f.b[4*u+2]
		zo := f.b[4*u+3]
		// Re-sliced to length in so the prove pass drops every
		// bounds check in the input loop.
		rix, rfx, rgx, rox := ri[:in], rf[:in], rg[:in], ro[:in]
		for k := 0; k < in; k++ {
			xv := x[k]
			zi = madd(rix[k], xv, zi)
			zf = madd(rfx[k], xv, zf)
			zg = madd(rgx[k], xv, zg)
			zo = madd(rox[k], xv, zo)
		}
		wi := ri[in : in+hidden]
		wf := rf[in : in+hidden]
		wg := rg[in : in+hidden]
		wo := ro[in : in+hidden]
		// Unrolled by two to halve the loop overhead; the nested
		// madds keep the reference accumulation order (low index
		// first), so the generic build stays order-exact.
		k := 0
		for ; k+1 < hidden; k += 2 {
			hv0, hv1 := h[k], h[k+1]
			zi = madd(wi[k+1], hv1, madd(wi[k], hv0, zi))
			zf = madd(wf[k+1], hv1, madd(wf[k], hv0, zf))
			zg = madd(wg[k+1], hv1, madd(wg[k], hv0, zg))
			zo = madd(wo[k+1], hv1, madd(wo[k], hv0, zo))
		}
		if k < hidden {
			hv := h[k]
			zi = madd(wi[k], hv, zi)
			zf = madd(wf[k], hv, zf)
			zg = madd(wg[k], hv, zg)
			zo = madd(wo[k], hv, zo)
		}
		z[4*u] = zi
		z[4*u+1] = zf
		z[4*u+2] = zg
		z[4*u+3] = zo
	}
}

// Scratch is the reusable per-call state arena of a Compiled model: the
// ping-pong LSTM state buffers, the encoder output, and an output
// vector for callers that do not bring their own. One Scratch serves
// one PredictInto call at a time; use one per goroutine, or let
// PredictInto draw from the model's internal pool by passing nil.
type Scratch struct {
	h, c, hN, cN []float64
	z            []float64 // 4*Hidden pre-activations, one step at a time
	enc          []float64
	out          []float64
}

// Out returns the scratch's own output buffer (length OutputDim). It is
// the buffer PredictInto fills when dst is nil; its contents are valid
// until the scratch is reused or returned to the pool.
func (s *Scratch) Out() []float64 { return s.out }

// Compiled is an immutable, inference-only snapshot of a trained
// SeqRegressor. It shares no storage with the source model, so training
// the source further never races a Compiled in use; recompile to pick
// up new weights. All methods are safe for concurrent use.
type Compiled struct {
	cfg    Config
	fw     *fusedCell
	bw     *fusedCell // nil when unidirectional
	encDim int
	outW   []float64 // OutputDim x encDim, row-major
	outB   []float64 // OutputDim
	pool   sync.Pool // *Scratch
}

// Compile snapshots the model's current weights into the fused
// inference layout. The returned Compiled produces outputs
// bit-identical to the reference Predict at the time of the call.
func (m *SeqRegressor) Compile() *Compiled {
	c := &Compiled{
		cfg:    m.cfg,
		fw:     fuse(m.fw),
		encDim: m.cfg.Hidden,
		outW:   append([]float64(nil), m.out.W...),
		outB:   append([]float64(nil), m.ob.W...),
	}
	if m.bw != nil {
		c.bw = fuse(m.bw)
		c.encDim = 2 * m.cfg.Hidden
	}
	c.pool.New = func() any {
		return &Scratch{
			h:   make([]float64, c.cfg.Hidden),
			c:   make([]float64, c.cfg.Hidden),
			hN:  make([]float64, c.cfg.Hidden),
			cN:  make([]float64, c.cfg.Hidden),
			z:   make([]float64, 4*c.cfg.Hidden),
			enc: make([]float64, c.encDim),
			out: make([]float64, c.cfg.OutputDim),
		}
	}
	return c
}

// Config returns the compiled model's configuration.
func (c *Compiled) Config() Config { return c.cfg }

// GetScratch draws a scratch arena from the model's pool. Callers that
// predict in a loop should hold one scratch for the whole loop instead
// of paying the pool round-trip per call.
func (c *Compiled) GetScratch() *Scratch { return c.pool.Get().(*Scratch) }

// PutScratch returns a scratch to the pool.
func (c *Compiled) PutScratch(s *Scratch) { c.pool.Put(s) }

// PredictInto runs the fused forward pass over seq and writes the
// OutputDim outputs into dst, which it returns. A nil dst selects the
// scratch's own output buffer; a nil scratch draws one from the
// internal pool for the duration of the call. With a non-nil dst and
// scratch the call does not allocate.
func (c *Compiled) PredictInto(dst []float64, seq [][]float64, s *Scratch) []float64 {
	if s == nil {
		s = c.GetScratch()
		defer c.PutScratch(s)
		if dst == nil {
			// The scratch goes back to the pool at return, so its out
			// buffer cannot carry the result.
			dst = make([]float64, c.cfg.OutputDim)
		}
	}
	if dst == nil {
		dst = s.out
	}
	dst = dst[:c.cfg.OutputDim]
	if len(seq) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	enc := s.enc[:c.encDim]
	hFinal := c.fw.run(seq, false, s.h, s.c, s.hN, s.cN, s.z)
	copy(enc[:c.cfg.Hidden], hFinal)
	if c.bw != nil {
		hFinal = c.bw.run(seq, true, s.h, s.c, s.hN, s.cN, s.z)
		copy(enc[c.cfg.Hidden:], hFinal)
	}
	for o := 0; o < c.cfg.OutputDim; o++ {
		row := c.outW[o*c.encDim : (o+1)*c.encDim]
		z := c.outB[o]
		for k, e := range enc {
			z = madd(row[k], e, z)
		}
		dst[o] = z
	}
	return dst
}

// Predict is the allocating convenience wrapper over PredictInto: it
// returns a fresh output vector and manages scratch internally.
func (c *Compiled) Predict(seq [][]float64) []float64 {
	return c.PredictInto(make([]float64, c.cfg.OutputDim), seq, nil)
}

// PredictBatch runs the compiled forward pass over many sequences —
// the bulk shape of the Figure 6 replay and the VTFF rasterisation.
// dst is reused row-by-row when it has capacity (rows of length
// OutputDim are written in place; short or missing rows are allocated).
// workers > 1 spreads the batch over that many goroutines, each with
// its own pooled scratch; workers <= 0 selects one worker per
// sequence up to the number of pool-backed scratches worth holding
// (len(seqs) capped at 8). The result has one row per input sequence.
func (c *Compiled) PredictBatch(dst [][]float64, seqs [][][]float64, workers int) [][]float64 {
	if cap(dst) >= len(seqs) {
		dst = dst[:len(seqs)]
	} else {
		old := dst
		dst = make([][]float64, len(seqs))
		copy(dst, old)
	}
	for i := range dst {
		if len(dst[i]) != c.cfg.OutputDim {
			dst[i] = make([]float64, c.cfg.OutputDim)
		}
	}
	if workers <= 0 {
		workers = len(seqs)
		if workers > 8 {
			workers = 8
		}
	}
	if workers > len(seqs) {
		workers = len(seqs)
	}
	if workers <= 1 {
		s := c.GetScratch()
		for i, seq := range seqs {
			c.PredictInto(dst[i], seq, s)
		}
		c.PutScratch(s)
		return dst
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.GetScratch()
			for i := w; i < len(seqs); i += workers {
				c.PredictInto(dst[i], seqs[i], s)
			}
			c.PutScratch(s)
		}(w)
	}
	wg.Wait()
	return dst
}

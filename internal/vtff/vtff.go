// Package vtff implements Vessel Traffic Flow Forecasting (§5.1): the
// number of vessels per spatiotemporal grid cell at future time
// windows. Two strategies are provided, mirroring the comparison the
// paper adopts from [17]:
//
//   - Indirect: per-vessel route forecasts (S-VRF or the kinematic
//     baseline) are rasterised onto the hexgrid per 5-minute window and
//     counted — the strategy the paper integrates, found to be both
//     more accurate and cheaper when a VRF already runs in the system.
//   - Direct: the flow itself is forecast per cell from its own history
//     by sequence extrapolation (persistence / moving average), with no
//     knowledge of individual vessels.
package vtff

import (
	"sort"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// Config fixes the raster geometry.
type Config struct {
	// Resolution is the hexgrid resolution of the flow cells.
	Resolution int
	// WindowStep is the temporal bin size (the paper uses the S-VRF's
	// 5-minute sampling).
	WindowStep time.Duration
}

// DefaultConfig uses ~4.5 km cells and 5-minute windows.
func DefaultConfig() Config {
	return Config{Resolution: 7, WindowStep: 5 * time.Minute}
}

// WindowIndex converts a timestamp to its window index.
func (c Config) WindowIndex(t time.Time) int64 {
	return t.UnixNano() / int64(c.WindowStep)
}

// WindowStart converts a window index back to its start time.
func (c Config) WindowStart(w int64) time.Time {
	return time.Unix(0, w*int64(c.WindowStep)).UTC()
}

// Flow is the vessel count per cell for one time window.
type Flow map[hexgrid.Cell]int

// ActiveCells returns the cells with non-zero traffic, sorted for
// deterministic iteration.
func (f Flow) ActiveCells() []hexgrid.Cell {
	cells := make([]hexgrid.Cell, 0, len(f))
	for c, n := range f {
		if n > 0 {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	return cells
}

// Total returns the summed vessel count.
func (f Flow) Total() int {
	n := 0
	for _, v := range f {
		n += v
	}
	return n
}

// Accumulator bins observations (or forecast points) into per-window
// flows, deduplicating each vessel once per (cell, window) — a vessel
// reporting five times in the same cell and window is one unit of
// traffic.
type Accumulator struct {
	cfg     Config
	windows map[int64]Flow
	seen    map[accKey]struct{}
}

type accKey struct {
	mmsi   ais.MMSI
	cell   hexgrid.Cell
	window int64
}

// NewAccumulator creates an empty accumulator.
func NewAccumulator(cfg Config) *Accumulator {
	if cfg.Resolution == 0 {
		cfg = DefaultConfig()
	}
	return &Accumulator{
		cfg:     cfg,
		windows: make(map[int64]Flow),
		seen:    make(map[accKey]struct{}),
	}
}

// Add records one vessel position at one time.
func (a *Accumulator) Add(mmsi ais.MMSI, pos geo.Point, at time.Time) {
	cell := hexgrid.LatLonToCell(pos, a.cfg.Resolution)
	if cell == hexgrid.InvalidCell {
		return
	}
	w := a.cfg.WindowIndex(at)
	key := accKey{mmsi: mmsi, cell: cell, window: w}
	if _, dup := a.seen[key]; dup {
		return
	}
	a.seen[key] = struct{}{}
	flow := a.windows[w]
	if flow == nil {
		flow = make(Flow)
		a.windows[w] = flow
	}
	flow[cell]++
}

// Window returns the flow of one window (nil when empty).
func (a *Accumulator) Window(w int64) Flow { return a.windows[w] }

// Windows returns the populated window indices in order.
func (a *Accumulator) Windows() []int64 {
	out := make([]int64, 0, len(a.windows))
	for w := range a.windows {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Indirect rasterises per-vessel trajectory forecasts into future
// flows: each forecast point (and the present position) contributes to
// its (cell, window) bin.
func Indirect(forecasts []events.Forecast, cfg Config) map[int64]Flow {
	acc := NewAccumulator(cfg)
	for _, f := range forecasts {
		for _, p := range f.Points {
			acc.Add(f.MMSI, p.Pos, p.At)
		}
	}
	out := make(map[int64]Flow, len(acc.windows))
	for w, flow := range acc.windows {
		out[w] = flow
	}
	return out
}

// DirectModel selects the sequence extrapolation of the direct
// strategy.
type DirectModel int

// Direct strategy variants.
const (
	// DirectPersistence repeats the last observed window.
	DirectPersistence DirectModel = iota
	// DirectMovingAverage averages the last three observed windows.
	DirectMovingAverage
)

// Direct forecasts future windows from historical flows alone. history
// maps window index to observed flow; forecasts are produced for
// windows last+1 .. last+horizons.
func Direct(history map[int64]Flow, last int64, horizons int, model DirectModel) map[int64]Flow {
	out := make(map[int64]Flow, horizons)
	var base Flow
	switch model {
	case DirectMovingAverage:
		sum := make(map[hexgrid.Cell]float64)
		n := 0
		for k := int64(0); k < 3; k++ {
			if f, ok := history[last-k]; ok {
				n++
				for c, v := range f {
					sum[c] += float64(v)
				}
			}
		}
		base = make(Flow, len(sum))
		if n > 0 {
			for c, v := range sum {
				base[c] = int(v/float64(n) + 0.5)
			}
		}
	default:
		base = make(Flow, len(history[last]))
		for c, v := range history[last] {
			base[c] = v
		}
	}
	for h := 1; h <= horizons; h++ {
		f := make(Flow, len(base))
		for c, v := range base {
			f[c] = v
		}
		out[last+int64(h)] = f
	}
	return out
}

// MAE returns the mean absolute error between predicted and actual
// flows over the union of their active cells. Cells absent from one
// side count as zero traffic there.
func MAE(pred, actual Flow) float64 {
	cells := make(map[hexgrid.Cell]struct{}, len(pred)+len(actual))
	for c := range pred {
		cells[c] = struct{}{}
	}
	for c := range actual {
		cells[c] = struct{}{}
	}
	if len(cells) == 0 {
		return 0
	}
	sum := 0.0
	for c := range cells {
		d := pred[c] - actual[c]
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(len(cells))
}

// Comparison is the outcome of an indirect-vs-direct evaluation.
type Comparison struct {
	IndirectMAE float64
	DirectMAE   float64
	Windows     int
}

// AdvantageFactor returns DirectMAE / IndirectMAE — the paper reports
// the indirect strategy "often exceeding 1.5 times the accuracy" of the
// direct one.
func (c Comparison) AdvantageFactor() float64 {
	if c.IndirectMAE == 0 {
		return 0
	}
	return c.DirectMAE / c.IndirectMAE
}

// Compare scores indirect forecasts (from the given per-vessel
// forecasts) and the direct strategy against the actual future flows.
// actual must contain the future windows; history the past ones.
func Compare(
	forecasts []events.Forecast,
	history map[int64]Flow,
	actual map[int64]Flow,
	last int64,
	horizons int,
	cfg Config,
) Comparison {
	ind := Indirect(forecasts, cfg)
	dir := Direct(history, last, horizons, DirectMovingAverage)
	var cmp Comparison
	for h := 1; h <= horizons; h++ {
		w := last + int64(h)
		act, ok := actual[w]
		if !ok {
			continue
		}
		cmp.IndirectMAE += MAE(ind[w], act)
		cmp.DirectMAE += MAE(dir[w], act)
		cmp.Windows++
	}
	if cmp.Windows > 0 {
		cmp.IndirectMAE /= float64(cmp.Windows)
		cmp.DirectMAE /= float64(cmp.Windows)
	}
	return cmp
}

// HeatLevel classifies a cell count for the UI's three-level colouring
// (Figure 4d: dark green / light green / red).
func HeatLevel(count int) string {
	switch {
	case count <= 0:
		return "none"
	case count <= 2:
		return "low"
	case count <= 5:
		return "medium"
	default:
		return "high"
	}
}

// Package retry implements the small shared retry/timeout/backoff
// policy of the pipeline's durability layer: jittered exponential
// backoff with bounded attempts. Writer actors wrap their store writes
// in it and the broker consume loop wraps its poll/ingest round, so a
// transient middleware fault (or an injected chaos fault) costs a few
// capped sleeps instead of a lost write or a wedged ingest goroutine.
// What happens on exhaustion is the caller's decision — the pipeline
// drops to degraded mode (counting the loss) rather than blocking.
package retry

import (
	"math/rand"
	"time"
)

// Policy shapes one retry loop. The zero value is not useful; start
// from DefaultPolicy and override fields.
type Policy struct {
	// MaxAttempts bounds the total tries of one operation (the first
	// attempt counts). Values below 1 behave as 1: no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it (times Multiplier) up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (values below 1
	// behave as 2, the conventional exponential base).
	Multiplier float64
	// Jitter randomises each delay by ±Jitter fraction of itself
	// (0.5 = delays land in [0.5d, 1.5d]), de-synchronising retry
	// storms across writers. Values outside [0, 1] are clamped.
	Jitter float64
}

// DefaultPolicy returns the pipeline's deployment shape: five attempts
// spanning roughly half a second worst-case, which rides out transient
// store contention without stalling ingestion noticeably.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 5,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// normalized returns the policy with defaults applied to out-of-range
// fields, so callers can leave Config zero values in place.
func (p Policy) normalized() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// IsZero reports whether the policy is entirely unset (Config sugar:
// a zero retry.Policy selects DefaultPolicy).
func (p Policy) IsZero() bool { return p == Policy{} }

// Delay returns the jittered backoff before attempt+1, where attempt
// counts completed tries (1 = the first attempt just failed). The
// result is deterministic in distribution, not value: jitter draws
// from the shared math/rand source, which is safe for concurrent use.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.normalized()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		// Uniform in [d*(1-j), d*(1+j)].
		d *= 1 - p.Jitter + 2*p.Jitter*rand.Float64()
	}
	return time.Duration(d)
}

// Result reports how one Do run went.
type Result struct {
	// Attempts is how many times op ran (1 = first try succeeded).
	Attempts int
	// Err is nil on success, or the last error when attempts ran out.
	Err error
}

// Retried reports whether success needed more than one attempt.
func (r Result) Retried() bool { return r.Err == nil && r.Attempts > 1 }

// Do runs op until it succeeds or MaxAttempts is exhausted, sleeping
// the jittered backoff between attempts. It never sleeps after the
// final failure — exhaustion returns immediately so degraded-mode
// handling is prompt.
func (p Policy) Do(op func() error) Result {
	p = p.normalized()
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return Result{Attempts: attempt}
		}
		if attempt >= p.MaxAttempts {
			return Result{Attempts: attempt, Err: err}
		}
		time.Sleep(p.Delay(attempt))
	}
}

package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// This file is the dense-cell event-detection harness behind
// `seatwin-eval -exp eventbench` and the checked-in BENCH_PR10.json: it
// measures the per-report cost of the map-scan detectors against the
// spatial micro-grid fast paths (internal/events, DESIGN.md §16) across
// a cell-occupancy sweep, then replays a dense-strait fleetsim world
// end-to-end through per-cell detectors exactly like the pipeline's
// spatial actors. The parity tests in internal/events prove the two
// paths emit identical event sets; this harness quantifies the cost
// difference those tests make safe to take.

// EventBenchConfig sizes the benchmark.
type EventBenchConfig struct {
	// Occupancies is the vessels-per-cell sweep (the scan collision
	// path is quadratic in it and is time-boxed below).
	Occupancies []int `json:"occupancies"`
	// Updates bounds the timed updates per measurement; Budget bounds
	// the wall time instead when the path is slow (whichever trips
	// first, with at least one update always timed).
	Updates  int           `json:"updates"`
	Budget   time.Duration `json:"budget_ns"`
	Warmup   int           `json:"warmup"`
	Vessels  int           `json:"dense_vessels"`
	Minutes  int           `json:"dense_minutes"`
	ScanSkip int           `json:"scan_skip_occupancy"` // scan collision skipped at/above
	Seed     int64         `json:"seed"`
}

// DefaultEventBenchConfig mirrors the pipeline deployment shape:
// 7-point forecasts (present position plus six 5-minute horizons) and
// the default detector thresholds.
func DefaultEventBenchConfig() EventBenchConfig {
	return EventBenchConfig{
		Occupancies: []int{10, 100, 1000, 5000},
		Updates:     2000,
		Budget:      5 * time.Second,
		Warmup:      50,
		Vessels:     150,
		Minutes:     6,
		ScanSkip:    5000,
		Seed:        42,
	}
}

// EventBenchRun is one (family, path, occupancy) measurement.
type EventBenchRun struct {
	Family    string `json:"family"` // "proximity" | "collision"
	Path      string `json:"path"`   // "scan" | "grid"
	Occupancy int    `json:"occupancy"`
	Updates   int    `json:"updates_timed"`
	NsPerOp   int64  `json:"ns_per_update"`
	Skipped   string `json:"skipped,omitempty"`
}

// EventBenchDense is the dense-strait end-to-end section: the whole
// report stream through per-cell grid detectors (as the cell and
// collision actors run them), with the scan path measured over a
// time-boxed prefix of the same stream for the per-report comparison.
type EventBenchDense struct {
	Vessels              int     `json:"vessels"`
	Minutes              int     `json:"minutes"`
	Reports              int     `json:"reports"`
	Events               int     `json:"events"`
	MaxProximityCell     int     `json:"max_proximity_cell_occupancy"`
	MaxCollisionCell     int     `json:"max_collision_cell_occupancy"`
	GridNsPerReport      int64   `json:"grid_ns_per_report"`
	ScanNsPerReport      int64   `json:"scan_ns_per_report"`
	ScanReportsMeasured  int     `json:"scan_reports_measured"`
	SpeedupPerReportCost float64 `json:"speedup_per_report"`
}

// EventBenchResult is the full benchmark artifact (BENCH_PR10.json).
type EventBenchResult struct {
	GeneratedUnix int64            `json:"generated_unix"`
	Config        EventBenchConfig `json:"config"`
	Sweep         []EventBenchRun  `json:"sweep"`
	// Headline speedups at the densest occupancy both paths measured.
	SpeedupProximity float64         `json:"speedup_proximity_at_1000"`
	SpeedupCollision float64         `json:"speedup_collision_at_1000"`
	SpeedupCombined  float64         `json:"speedup_combined_at_1000"`
	Dense            EventBenchDense `json:"dense_strait"`
	Note             string          `json:"note,omitempty"`
}

// benchGoldenAngle spreads entities over a disc without lattice
// artefacts (same constant as the internal/events benchmarks).
const benchGoldenAngle = 137.50776405003785

func benchPoint(center geo.Point, i, n int, radius float64) geo.Point {
	ang := math.Mod(float64(i)*benchGoldenAngle, 360)
	r := radius * math.Sqrt(float64(i+1)/float64(n))
	return geo.Destination(center, ang, r)
}

// eventBenchForecast builds the paper-shape forecast for entity i: the
// present position plus six 5-minute dead-reckoned horizons.
func eventBenchForecast(pos geo.Point, i int, at time.Time) events.Forecast {
	cog := math.Mod(float64(i)*benchGoldenAngle*2, 360)
	pts := make([]events.ForecastPoint, 7)
	pts[0] = events.ForecastPoint{Pos: pos, At: at}
	for h := 1; h < 7; h++ {
		pts[h] = events.ForecastPoint{
			Pos: geo.DeadReckon(pos, 12, cog, float64(h)*300),
			At:  at.Add(time.Duration(h) * 5 * time.Minute),
		}
	}
	return events.Forecast{MMSI: ais.MMSI(800000000 + i), Points: pts}
}

// timeUpdates runs step until maxUpdates or budget trips (at least
// once) and returns the count and mean ns per update.
func timeUpdates(maxUpdates int, budget time.Duration, step func(i int)) (int, int64) {
	start := time.Now()
	n := 0
	for n < maxUpdates {
		step(n)
		n++
		if time.Since(start) > budget {
			break
		}
	}
	return n, time.Since(start).Nanoseconds() / int64(n)
}

// RunEventBench measures both detector families on both paths across
// the occupancy sweep, runs the dense-strait end-to-end section and
// returns the artifact.
func RunEventBench(cfg EventBenchConfig) EventBenchResult {
	res := EventBenchResult{
		GeneratedUnix: time.Now().Unix(),
		Config:        cfg,
	}
	t0 := time.Date(2021, 11, 2, 8, 0, 0, 0, time.UTC)
	center := geo.Point{Lat: 1.2, Lon: 103.8}
	// ns/op per (family, path) at the headline occupancy.
	headline := map[string]int64{}
	for _, occ := range cfg.Occupancies {
		// Proximity entities over a ~2.2 km fan-in disc (a res-9 cell
		// plus its threshold margin); forecasts over a ~10 km disc (a
		// res-7 cell plus margin).
		pts := make([]geo.Point, occ)
		fcs := make([]events.Forecast, occ)
		for i := range pts {
			pts[i] = benchPoint(center, i, occ, 2200)
			fcs[i] = eventBenchForecast(benchPoint(center, i, occ, 10000), i, t0)
		}
		warm := cfg.Warmup
		if warm > occ {
			warm = occ
		}

		// Warmups advance the clock 1 ms per update; measurements continue
		// past them so detector time never regresses.
		measure := func(family, path string, start time.Time, run func(i int, at time.Time)) {
			at := start
			n, ns := timeUpdates(cfg.Updates, cfg.Budget, func(i int) {
				at = at.Add(time.Millisecond)
				run(i%occ, at)
			})
			res.Sweep = append(res.Sweep, EventBenchRun{
				Family: family, Path: path, Occupancy: occ,
				Updates: n, NsPerOp: ns,
			})
			if occ == 1000 {
				headline[family+"/"+path] = ns
			}
		}

		p := events.NewProximityDetector(events.DefaultProximityConfig())
		for i := 0; i < occ; i++ {
			p.Seed(ais.MMSI(800000000+i), pts[i], t0)
		}
		for i := 0; i < warm; i++ {
			p.Update(ais.MMSI(800000000+i), pts[i], t0.Add(time.Duration(i)*time.Millisecond))
		}
		measure("proximity", "scan", t0.Add(time.Duration(warm)*time.Millisecond), func(i int, at time.Time) {
			p.Update(ais.MMSI(800000000+i), pts[i], at)
		})

		g := events.NewGridProximityDetector(events.DefaultProximityConfig())
		for i := 0; i < occ; i++ {
			g.Seed(ais.MMSI(800000000+i), pts[i], t0)
		}
		for i := 0; i < warm; i++ {
			g.Update(ais.MMSI(800000000+i), pts[i], t0.Add(time.Duration(i)*time.Millisecond))
		}
		measure("proximity", "grid", t0.Add(time.Duration(warm)*time.Millisecond), func(i int, at time.Time) {
			g.Update(ais.MMSI(800000000+i), pts[i], at)
		})

		if occ < cfg.ScanSkip {
			d := events.NewDetector(events.DefaultCollisionConfig(), 10*time.Minute)
			for i := 0; i < occ; i++ {
				d.Seed(fcs[i], t0)
			}
			d.Update(fcs[0], t0.Add(time.Millisecond))
			measure("collision", "scan", t0.Add(time.Millisecond), func(i int, at time.Time) {
				d.Update(fcs[i], at)
			})
		} else {
			res.Sweep = append(res.Sweep, EventBenchRun{
				Family: "collision", Path: "scan", Occupancy: occ,
				Skipped: "quadratic map-scan oracle is impractical at this occupancy",
			})
		}

		gd := events.NewGridDetector(events.DefaultCollisionConfig(), 10*time.Minute)
		for i := 0; i < occ; i++ {
			gd.Seed(fcs[i], t0)
		}
		for i := 0; i < warm; i++ {
			gd.Update(fcs[i], t0.Add(time.Duration(i)*time.Millisecond))
		}
		measure("collision", "grid", t0.Add(time.Duration(warm)*time.Millisecond), func(i int, at time.Time) {
			gd.Update(fcs[i], at)
		})
	}
	if s, g := headline["proximity/scan"], headline["proximity/grid"]; g > 0 {
		res.SpeedupProximity = float64(s) / float64(g)
	}
	if s, g := headline["collision/scan"], headline["collision/grid"]; g > 0 {
		res.SpeedupCollision = float64(s) / float64(g)
	}
	scanSum := headline["proximity/scan"] + headline["collision/scan"]
	gridSum := headline["proximity/grid"] + headline["collision/grid"]
	if gridSum > 0 {
		res.SpeedupCombined = float64(scanSum) / float64(gridSum)
	}
	res.Dense = runDenseStrait(cfg)
	if res.Dense.GridNsPerReport > 0 {
		res.Dense.SpeedupPerReportCost =
			float64(res.Dense.ScanNsPerReport) / float64(res.Dense.GridNsPerReport)
	}
	return res
}

// runDenseStrait replays the dense-strait world through per-cell
// detectors sharded exactly like the pipeline's spatial actors
// (proximity at res 9, collision at res 7, one detector per cell).
func runDenseStrait(cfg EventBenchConfig) EventBenchDense {
	out := EventBenchDense{Vessels: cfg.Vessels, Minutes: cfg.Minutes}

	type detectors struct {
		prox map[hexgrid.Cell]*events.GridProximityDetector
		coll map[hexgrid.Cell]*events.GridDetector
	}
	run := func(budget time.Duration, each func(r fleetsim.Report, pos geo.Point, f events.Forecast) int) (reports, evs int, elapsed time.Duration) {
		w := fleetsim.DenseStraitWorld(cfg.Vessels, cfg.Seed)
		var end time.Time
		start := time.Now()
		for {
			r, ok := w.Next()
			if !ok {
				break
			}
			if end.IsZero() {
				end = r.At.Add(time.Duration(cfg.Minutes) * time.Minute)
			}
			if r.At.After(end) {
				break
			}
			pos := geo.Point{Lat: r.Pos.Lat, Lon: r.Pos.Lon}
			f := eventBenchForecast(pos, int(r.Pos.MMSI), r.At)
			f.MMSI = r.Pos.MMSI
			evs += each(r, pos, f)
			reports++
			if budget > 0 && time.Since(start) > budget {
				break
			}
		}
		return reports, evs, time.Since(start)
	}

	d := detectors{
		prox: map[hexgrid.Cell]*events.GridProximityDetector{},
		coll: map[hexgrid.Cell]*events.GridDetector{},
	}
	var detectNs int64
	reports, evs, _ := run(0, func(r fleetsim.Report, pos geo.Point, f events.Forecast) int {
		pc := hexgrid.LatLonToCell(pos, 9)
		p := d.prox[pc]
		if p == nil {
			p = events.NewGridProximityDetector(events.DefaultProximityConfig())
			d.prox[pc] = p
		}
		cc := hexgrid.LatLonToCell(pos, 7)
		c := d.coll[cc]
		if c == nil {
			c = events.NewGridDetector(events.DefaultCollisionConfig(), 10*time.Minute)
			d.coll[cc] = c
		}
		start := time.Now()
		n := len(p.Update(r.Pos.MMSI, pos, r.At)) + len(c.Update(f, r.At))
		detectNs += time.Since(start).Nanoseconds()
		if s := p.Size(); s > out.MaxProximityCell {
			out.MaxProximityCell = s
		}
		if s := c.Size(); s > out.MaxCollisionCell {
			out.MaxCollisionCell = s
		}
		return n
	})
	out.Reports = reports
	out.Events = evs
	if reports > 0 {
		out.GridNsPerReport = detectNs / int64(reports)
	}

	// The scan path replays the same deterministic stream but is
	// time-boxed: its cost per report is what is being demonstrated as
	// impractical, so only a prefix is measured.
	sp := map[hexgrid.Cell]*events.ProximityDetector{}
	sc := map[hexgrid.Cell]*events.Detector{}
	detectNs = 0
	reports, _, _ = run(cfg.Budget, func(r fleetsim.Report, pos geo.Point, f events.Forecast) int {
		pc := hexgrid.LatLonToCell(pos, 9)
		p := sp[pc]
		if p == nil {
			p = events.NewProximityDetector(events.DefaultProximityConfig())
			sp[pc] = p
		}
		cc := hexgrid.LatLonToCell(pos, 7)
		c := sc[cc]
		if c == nil {
			c = events.NewDetector(events.DefaultCollisionConfig(), 10*time.Minute)
			sc[cc] = c
		}
		start := time.Now()
		n := len(p.Update(r.Pos.MMSI, pos, r.At)) + len(c.Update(f, r.At))
		detectNs += time.Since(start).Nanoseconds()
		return n
	})
	out.ScanReportsMeasured = reports
	if reports > 0 {
		out.ScanNsPerReport = detectNs / int64(reports)
	}
	return out
}

// Format renders the benchmark as a table.
func (r EventBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense-cell event detection (per-update cost, %d-pt forecasts)\n", 7)
	fmt.Fprintf(&b, "%-10s %-6s %10s %10s %14s\n", "family", "path", "occupancy", "updates", "ns/update")
	for _, run := range r.Sweep {
		if run.Skipped != "" {
			fmt.Fprintf(&b, "%-10s %-6s %10d %10s %14s\n", run.Family, run.Path, run.Occupancy, "-", "skipped")
			continue
		}
		fmt.Fprintf(&b, "%-10s %-6s %10d %10d %14d\n", run.Family, run.Path, run.Occupancy, run.Updates, run.NsPerOp)
	}
	fmt.Fprintf(&b, "speedup at occupancy 1000: proximity %.1fx, collision %.1fx, combined %.1fx\n",
		r.SpeedupProximity, r.SpeedupCollision, r.SpeedupCombined)
	d := r.Dense
	fmt.Fprintf(&b, "dense strait (%d vessels, %d min): %d reports, %d events, max cell occupancy %d prox / %d coll\n",
		d.Vessels, d.Minutes, d.Reports, d.Events, d.MaxProximityCell, d.MaxCollisionCell)
	fmt.Fprintf(&b, "  grid %d ns/report vs scan %d ns/report (over %d reports): %.1fx\n",
		d.GridNsPerReport, d.ScanNsPerReport, d.ScanReportsMeasured, d.SpeedupPerReportCost)
	if r.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Note)
	}
	return b.String()
}

// WriteFile marshals the artifact to path as indented JSON.
func (r EventBenchResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package actor

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// System owns a tree of actors: a registry of named actors, the event
// stream, dead-letter accounting and global defaults. One System per
// process is the expected deployment, mirroring one Akka ActorSystem per
// node in the paper's architecture.
type System struct {
	name       string
	throughput int

	nextID uint64

	registry sync.Map // name -> *PID, named actors only
	nameMu   sync.Mutex

	events *EventStream
	stats  Stats

	shutdown int32
}

// Stats aggregates system-level counters. All fields are read with
// atomic loads via Snapshot.
type Stats struct {
	ActorsSpawned     uint64
	ActorsStopped     uint64
	MessagesProcessed uint64
	DeadLetters       uint64
	Failures          uint64
	Restarts          uint64
}

// NewSystem creates an actor system with the default per-run throughput
// of 300 messages.
func NewSystem(name string) *System {
	return &System{name: name, throughput: 300, events: NewEventStream()}
}

// Name returns the system name.
func (s *System) Name() string { return s.name }

// Events returns the system event stream (dead letters, failures and
// user-published events).
func (s *System) Events() *EventStream { return s.events }

// StatsSnapshot returns a consistent-enough copy of the counters.
func (s *System) StatsSnapshot() Stats {
	return Stats{
		ActorsSpawned:     atomic.LoadUint64(&s.stats.ActorsSpawned),
		ActorsStopped:     atomic.LoadUint64(&s.stats.ActorsStopped),
		MessagesProcessed: atomic.LoadUint64(&s.stats.MessagesProcessed),
		DeadLetters:       atomic.LoadUint64(&s.stats.DeadLetters),
		Failures:          atomic.LoadUint64(&s.stats.Failures),
		Restarts:          atomic.LoadUint64(&s.stats.Restarts),
	}
}

// LiveActors returns the number of currently running actors.
func (s *System) LiveActors() int64 {
	snap := s.StatsSnapshot()
	return int64(snap.ActorsSpawned) - int64(snap.ActorsStopped)
}

// Spawn starts a top-level actor with an auto-generated name.
func (s *System) Spawn(props *Props) *PID {
	return s.spawn(props, "", nil)
}

// SpawnNamed starts a top-level actor registered under the given unique
// name; it fails if the name is taken.
func (s *System) SpawnNamed(props *Props, name string) (*PID, error) {
	return s.spawnNamed(props, name, nil)
}

// Lookup returns the PID registered under name, or nil.
func (s *System) Lookup(name string) *PID {
	if v, ok := s.registry.Load(name); ok {
		pid := v.(*PID)
		if pid.Alive() {
			return pid
		}
	}
	return nil
}

// GetOrSpawn returns the live actor registered under name, spawning it
// from props when absent. The boolean reports whether a spawn happened.
// This is the primitive the pipeline uses to materialise vessel actors
// per MMSI and cell actors per hexgrid cell on first contact.
func (s *System) GetOrSpawn(name string, props *Props) (*PID, bool) {
	if pid := s.Lookup(name); pid != nil {
		return pid, false
	}
	s.nameMu.Lock()
	defer s.nameMu.Unlock()
	if pid := s.Lookup(name); pid != nil {
		return pid, false
	}
	pid := s.newProcess(props, name, nil)
	s.registry.Store(name, pid)
	pid.process.sendSystem(sysStarted{})
	return pid, true
}

func (s *System) spawnNamed(props *Props, name string, parent *PID) (*PID, error) {
	if name == "" {
		return nil, fmt.Errorf("actor: empty name")
	}
	s.nameMu.Lock()
	defer s.nameMu.Unlock()
	if existing := s.Lookup(name); existing != nil {
		return nil, fmt.Errorf("actor: name %q already registered", name)
	}
	pid := s.newProcess(props, name, parent)
	s.registry.Store(name, pid)
	pid.process.sendSystem(sysStarted{})
	return pid, nil
}

func (s *System) spawn(props *Props, name string, parent *PID) *PID {
	pid := s.newProcess(props, name, parent)
	pid.process.sendSystem(sysStarted{})
	return pid
}

func (s *System) newProcess(props *Props, name string, parent *PID) *PID {
	id := atomic.AddUint64(&s.nextID, 1)
	if name == "" {
		name = "$" + strconv.FormatUint(id, 10)
	}
	proc := &process{
		system: s,
		props:  props,
		mb:     newMailbox(),
		actor:  props.producer(),
		parent: parent,
		done:   make(chan struct{}),
	}
	pid := &PID{id: id, name: name, process: proc}
	proc.pid = pid
	atomic.AddUint64(&s.stats.ActorsSpawned, 1)
	return pid
}

func (s *System) unregister(pid *PID) {
	if v, ok := s.registry.Load(pid.name); ok && v.(*PID) == pid {
		s.registry.Delete(pid.name)
	}
}

// Send delivers a fire-and-forget message with no sender.
func (s *System) Send(target *PID, msg any) {
	s.sendWithSender(target, msg, nil)
}

func (s *System) sendWithSender(target *PID, msg any, sender *PID) {
	if target == nil || target.process == nil {
		s.deadLetter(target, msg, sender)
		return
	}
	target.process.sendUser(envelope{message: msg, sender: sender})
}

// Poison gracefully stops the target after every message already in
// its mailbox has been processed (Akka's PoisonPill semantics).
func (s *System) Poison(target *PID) {
	if target == nil || target.process == nil {
		return
	}
	target.process.sendUser(envelope{message: poisonPill{}})
}

// PoisonWait gracefully stops the target and blocks until it has fully
// stopped or the timeout expires.
func (s *System) PoisonWait(target *PID, timeout time.Duration) error {
	if target == nil || target.process == nil {
		return nil
	}
	s.Poison(target)
	select {
	case <-target.process.done:
		return nil
	case <-time.After(timeout):
		return ErrTimeout
	}
}

// Stop asynchronously stops the target and its children.
func (s *System) Stop(target *PID) {
	if target == nil || target.process == nil {
		return
	}
	target.process.sendSystem(sysStop{})
}

// StopWait stops the target and blocks until it has fully stopped or
// the timeout expires.
func (s *System) StopWait(target *PID, timeout time.Duration) error {
	if target == nil || target.process == nil {
		return nil
	}
	s.Stop(target)
	select {
	case <-target.process.done:
		return nil
	case <-time.After(timeout):
		return ErrTimeout
	}
}

// futureActor captures the first user message into a channel.
type futureActor struct{ ch chan any }

func (f *futureActor) Receive(c *Context) {
	switch c.Message().(type) {
	case Started, Stopping, Stopped, Restarting:
		return
	}
	select {
	case f.ch <- c.Message():
	default:
	}
	c.Stop()
}

// Ask sends msg to target and waits for a reply (sent via
// Context.Respond or a direct Send to the internal future) for at most
// timeout.
func (s *System) Ask(target *PID, msg any, timeout time.Duration) (any, error) {
	if target == nil || !target.Alive() {
		return nil, ErrDeadLetter
	}
	ch := make(chan any, 1)
	fpid := s.spawn(PropsFromProducer(func() Actor { return &futureActor{ch: ch} }), "", nil)
	target.process.sendUser(envelope{message: msg, sender: fpid})
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply := <-ch:
		return reply, nil
	case <-timer.C:
		s.Stop(fpid)
		return nil, ErrTimeout
	}
}

// SendAfter schedules msg for delivery to target after delay.
func (s *System) SendAfter(delay time.Duration, target *PID, msg any) *time.Timer {
	return time.AfterFunc(delay, func() {
		if atomic.LoadInt32(&s.shutdown) == 1 {
			return
		}
		s.Send(target, msg)
	})
}

func (s *System) deadLetter(target *PID, msg any, sender *PID) {
	atomic.AddUint64(&s.stats.DeadLetters, 1)
	s.events.Publish(DeadLetter{Target: target, Message: msg, Sender: sender, At: time.Now()})
}

// Shutdown stops all named actors and disables timers. Anonymous
// top-level actors not reachable from a named actor are left to drain.
func (s *System) Shutdown(timeout time.Duration) {
	atomic.StoreInt32(&s.shutdown, 1)
	var pids []*PID
	s.registry.Range(func(_, v any) bool {
		pids = append(pids, v.(*PID))
		return true
	})
	deadline := time.Now().Add(timeout)
	for _, pid := range pids {
		s.Stop(pid)
	}
	for _, pid := range pids {
		remain := time.Until(deadline)
		if remain <= 0 {
			return
		}
		select {
		case <-pid.process.done:
		case <-time.After(remain):
			return
		}
	}
}

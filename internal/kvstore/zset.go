package kvstore

import (
	"math"
	"sort"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// zset is a sorted set: members ordered by (score, member) with O(log n)
// lookup via a sorted slice plus a score index map. The pipeline stores
// modest per-key cardinalities (events per region, forecasts per cell),
// so a slice beats a skip list on constants and memory.
type zset struct {
	scores  map[string]float64
	ordered []ZMember // sorted by score, then member
}

func newZSet() *zset {
	return &zset{scores: make(map[string]float64)}
}

func (z *zset) len() int { return len(z.ordered) }

// search returns the insertion index for (score, member).
func (z *zset) search(score float64, member string) int {
	return sort.Search(len(z.ordered), func(i int) bool {
		m := z.ordered[i]
		if m.Score != score {
			return m.Score >= score
		}
		return m.Member >= member
	})
}

func (z *zset) add(score float64, member string) bool {
	if old, ok := z.scores[member]; ok {
		if old == score {
			return false
		}
		idx := z.search(old, member)
		z.ordered = append(z.ordered[:idx], z.ordered[idx+1:]...)
		z.scores[member] = score
		idx = z.search(score, member)
		z.ordered = append(z.ordered, ZMember{})
		copy(z.ordered[idx+1:], z.ordered[idx:])
		z.ordered[idx] = ZMember{Member: member, Score: score}
		return false
	}
	z.scores[member] = score
	idx := z.search(score, member)
	z.ordered = append(z.ordered, ZMember{})
	copy(z.ordered[idx+1:], z.ordered[idx:])
	z.ordered[idx] = ZMember{Member: member, Score: score}
	return true
}

func (z *zset) remove(member string) bool {
	score, ok := z.scores[member]
	if !ok {
		return false
	}
	delete(z.scores, member)
	idx := z.search(score, member)
	z.ordered = append(z.ordered[:idx], z.ordered[idx+1:]...)
	return true
}

func (z *zset) score(member string) (float64, bool) {
	s, ok := z.scores[member]
	return s, ok
}

func (z *zset) rangeByScore(min, max float64) []ZMember {
	lo := sort.Search(len(z.ordered), func(i int) bool { return z.ordered[i].Score >= min })
	hi := sort.Search(len(z.ordered), func(i int) bool { return z.ordered[i].Score > max })
	if lo >= hi {
		return nil
	}
	out := make([]ZMember, hi-lo)
	copy(out, z.ordered[lo:hi])
	return out
}

// revRangeByScore returns up to limit members with min <= score <= max
// in descending score order. limit <= 0 means no limit. Unlike
// rangeByScore it never materialises more than limit members, so a
// bounded read of a huge set stays O(limit) in memory.
func (z *zset) revRangeByScore(min, max float64, limit int) []ZMember {
	lo := sort.Search(len(z.ordered), func(i int) bool { return z.ordered[i].Score >= min })
	hi := sort.Search(len(z.ordered), func(i int) bool { return z.ordered[i].Score > max })
	if lo >= hi {
		return nil
	}
	n := hi - lo
	if limit > 0 && n > limit {
		n = limit
	}
	out := make([]ZMember, 0, n)
	for i := hi - 1; i >= lo && len(out) < n; i-- {
		out = append(out, z.ordered[i])
	}
	return out
}

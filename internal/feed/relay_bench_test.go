package feed

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// BenchmarkRelayFanout100k sustains ≥100,000 concurrent feed
// subscribers behind a relay tier: 128 relays (each one upstream hub
// subscription) carrying ~800 local subscribers apiece. The hub's
// publisher fans each frame out to at most a handful of relay rings —
// its cost is a function of the relay count, not the subscriber count
// — and the relay pumps absorb the 100k-way local fan-out. One local
// subscriber per relay is actively drained (the live-client sample);
// the rest model idle dashboards whose drop-oldest rings absorb
// overload without touching the publisher.
func BenchmarkRelayFanout100k(b *testing.B) {
	benchmarkRelayFanout(b, 128, 100_000)
}

// BenchmarkRelayFanout10k is the small-scale comparison point.
func BenchmarkRelayFanout10k(b *testing.B) {
	benchmarkRelayFanout(b, 32, 10_000)
}

func benchmarkRelayFanout(b *testing.B, nRelays, nSubs int) {
	hub := NewHub(Options{RegionResolution: 7})
	defer hub.Close()

	const nVessels = 64
	base := geo.Point{Lat: 37.5, Lon: 24.5}
	positions := make([]geo.Point, nVessels)
	cells := make([]string, nVessels)
	for i := range positions {
		positions[i] = geo.Point{Lat: base.Lat + float64(i%8)*0.1, Lon: base.Lon + float64(i/8%8)*0.1}
		cells[i] = hexgrid.LatLonToCell(positions[i], 7).String()
	}

	// Relay tier: same topic mix as the flat fan-out benchmark.
	relays := make([]*Relay, nRelays)
	for i := range relays {
		var topics []string
		switch i % 5 {
		case 0, 1:
			topics = []string{TopicVesselPrefix + ais.MMSI(237000000+i%nVessels).String()}
		case 2, 3:
			topics = []string{TopicRegionPrefix + cells[i%nVessels]}
		default:
			topics = []string{TopicProximity, TopicCollision, TopicGap}
		}
		r, err := hub.NewRelay(topics, RelayOptions{Buffer: 256})
		if err != nil {
			b.Fatal(err)
		}
		relays[i] = r
		defer r.Close()
	}

	// Local tier: nSubs subscribers spread evenly; tiny rings, the mix
	// of policies real clients would pick.
	subsPerRelay := (nSubs + nRelays - 1) / nRelays
	policies := []Policy{PolicyDropOldest, PolicyConflate, PolicyDropOldest}
	var drained atomic.Int64
	var wg sync.WaitGroup
	total := 0
	for _, r := range relays {
		for j := 0; j < subsPerRelay; j++ {
			sub, err := r.Subscribe(SubOptions{Buffer: 4, Policy: policies[j%len(policies)]})
			if err != nil {
				b.Fatal(err)
			}
			total++
			if j == 0 { // one live consumer per relay
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, ok := sub.Recv(); !ok {
							return
						}
						drained.Add(1)
					}
				}()
			}
		}
	}
	if got := hub.RelayStats().Subscribers; got < int64(nSubs) {
		b.Fatalf("relay tier carries %d subscribers, want >= %d", got, nSubs)
	}

	ts := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	var maxPublish time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % nVessels
		start := time.Now()
		hub.PublishState(State{
			MMSI: ais.MMSI(237000000 + v),
			Lat:  positions[v].Lat, Lon: positions[v].Lon,
			SOG: 12, COG: 90, TS: ts,
		})
		if i%50 == 0 {
			hub.PublishEvent(events.Event{
				Kind: events.KindProximity,
				A:    ais.MMSI(237000000 + v), B: ais.MMSI(237000000 + (v+1)%nVessels),
				At: ts, Pos: positions[v], Meters: 300,
			})
		}
		if d := time.Since(start); d > maxPublish {
			maxPublish = d
		}
	}
	b.StopTimer()

	// The publisher's fan-out degree is the relay count, not the
	// subscriber count: a publish must stay bounded even with 100k
	// subscribers attached downstream.
	if maxPublish > 2*time.Second {
		b.Fatalf("a publish took %v — the relay tier back-pressured the hub", maxPublish)
	}
	// Let the pumps drain the upstream rings (outside the timed region)
	// so the local-tier numbers reflect actual deliveries: every frame
	// the hub enqueued is eventually popped or conflated away.
	s := hub.Snapshot()
	tier := hub.RelayStats()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		tier = hub.RelayStats()
		if tier.Relayed+tier.ConflationDrops >= s.Fanned+s.Conflated {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s.Published > 0 {
		b.ReportMetric(float64(s.Fanned+s.Conflated)/float64(s.Published), "hub-deliveries/frame")
	}
	if tier.Relayed > 0 {
		b.ReportMetric(float64(tier.Fanned+tier.LocalConflated)/float64(tier.Relayed), "local-deliveries/frame")
	}
	b.ReportMetric(float64(tier.Subscribers), "subscribers")
	b.ReportMetric(s.FanoutP99.Seconds()*1e6, "fanout-p99-µs")
	b.ReportMetric(float64(maxPublish.Microseconds()), "max-publish-µs")

	hub.Close()
	wg.Wait()
	if testing.Verbose() {
		fmt.Printf("relay fanout: %d relays, %d subs, hub published %d / fanned %d; tier relayed %d, fanned %d, conflation drops %d, drained %d\n",
			nRelays, total, s.Published, s.Fanned, tier.Relayed, tier.Fanned, tier.ConflationDrops, drained.Load())
	}
}

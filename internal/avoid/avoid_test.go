package avoid

import (
	"math"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

var t0 = time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)

func lineForecast(mmsi ais.MMSI, start geo.Point, cog, sog float64) events.Forecast {
	f := events.Forecast{MMSI: mmsi}
	for h := 0; h <= 6; h++ {
		dt := time.Duration(h) * 5 * time.Minute
		f.Points = append(f.Points, events.ForecastPoint{
			Pos: geo.DeadReckon(start, sog, cog, dt.Seconds()),
			At:  t0.Add(dt),
		})
	}
	return f
}

func TestNoManeuverWhenAlreadySafe(t *testing.T) {
	own := OwnShip{MMSI: 1, Pos: geo.Point{Lat: 37.5, Lon: 24.5}, SOG: 12, COG: 0, At: t0}
	// Target 20 NM east heading away.
	tgt := lineForecast(2, geo.Destination(own.Pos, 90, 20*1852), 90, 12)
	m, needed, found := Suggest(own, []events.Forecast{tgt}, DefaultConfig())
	if needed {
		t.Fatalf("maneuver demanded while safe: %+v", m)
	}
	if !found || m.NewCOG != own.COG {
		t.Fatalf("safe case must keep course: %+v", m)
	}
	if m.PredictedCPAMeters < DefaultConfig().SafeDistanceMeters {
		t.Fatalf("reported CPA %f below safe distance", m.PredictedCPAMeters)
	}
}

func TestHeadOnSuggestsStarboard(t *testing.T) {
	// Classic rule 14 geometry: reciprocal courses, meeting in ~15 min.
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	own := OwnShip{MMSI: 1, Pos: geo.DeadReckon(meet, 12, 270, 900), SOG: 12, COG: 90, At: t0}
	tgt := lineForecast(2, geo.DeadReckon(meet, 12, 90, 900), 270, 12)

	m, needed, found := Suggest(own, []events.Forecast{tgt}, DefaultConfig())
	if !needed {
		t.Fatal("head-on collision course must need a maneuver")
	}
	if !found {
		t.Fatal("no maneuver found for a simple head-on")
	}
	if m.AlterationDeg <= 0 {
		t.Fatalf("head-on must prefer starboard, got %+v", m)
	}
	if m.PredictedCPAMeters < 1852 {
		t.Fatalf("maneuver does not clear: CPA %f", m.PredictedCPAMeters)
	}
	// The suggested course is the own course plus the alteration.
	if math.Abs(m.NewCOG-norm360(own.COG+m.AlterationDeg)) > 1e-9 {
		t.Fatalf("inconsistent maneuver %+v", m)
	}
}

func TestManeuverIsMinimal(t *testing.T) {
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	own := OwnShip{MMSI: 1, Pos: geo.DeadReckon(meet, 12, 270, 900), SOG: 12, COG: 90, At: t0}
	tgt := lineForecast(2, geo.DeadReckon(meet, 12, 90, 900), 270, 12)
	cfg := DefaultConfig()
	m, _, found := Suggest(own, []events.Forecast{tgt}, cfg)
	if !found {
		t.Fatal("no maneuver")
	}
	// Every smaller alteration (in either direction) must fail to clear.
	for mag := cfg.StepDeg; mag < math.Abs(m.AlterationDeg); mag += cfg.StepDeg {
		for _, sign := range []float64{1, -1} {
			cog := norm360(own.COG + sign*mag)
			cpa := cpaAgainst(project(own, cog, cfg), []events.Forecast{tgt}, cfg)
			if cpa >= cfg.SafeDistanceMeters {
				t.Fatalf("smaller alteration %f would clear (CPA %f) but %f was chosen",
					sign*mag, cpa, m.AlterationDeg)
			}
		}
	}
}

func TestMultipleTargets(t *testing.T) {
	// A starboard turn that clears target 1 runs into target 2; the
	// search must find an alteration clearing both.
	own := OwnShip{MMSI: 1, Pos: geo.Point{Lat: 37.5, Lon: 24.0}, SOG: 12, COG: 90, At: t0}
	// Target dead ahead, head-on.
	t1 := lineForecast(2, geo.DeadReckon(own.Pos, 12, 90, 1800), 270, 12)
	// Target converging from the south (blocking a starboard escape).
	southPos := geo.Destination(geo.DeadReckon(own.Pos, 12, 90, 900), 170, 6000)
	t2 := lineForecast(3, southPos, 350, 12)

	m, needed, found := Suggest(own, []events.Forecast{t1, t2}, DefaultConfig())
	if !needed || !found {
		t.Fatalf("needed=%v found=%v", needed, found)
	}
	cpa := cpaAgainst(project(own, m.NewCOG, DefaultConfig()),
		[]events.Forecast{t1, t2}, DefaultConfig())
	if cpa < 1852 {
		t.Fatalf("chosen maneuver does not clear both targets: CPA %f", cpa)
	}
}

func TestNoSolutionWithinBounds(t *testing.T) {
	// Surround own ship with converging targets from every direction:
	// no 60-degree alteration can clear them all.
	own := OwnShip{MMSI: 1, Pos: geo.Point{Lat: 37.5, Lon: 24.5}, SOG: 10, COG: 0, At: t0}
	var targets []events.Forecast
	for b := 0.0; b < 360; b += 30 {
		start := geo.Destination(own.Pos, b, 6000)
		targets = append(targets, lineForecast(ais.MMSI(100+int(b)), start, norm360(b+180), 10))
	}
	_, needed, found := Suggest(own, targets, DefaultConfig())
	if !needed {
		t.Fatal("encirclement must need a maneuver")
	}
	if found {
		t.Fatal("encirclement must not be solvable by course change alone")
	}
}

func TestNorm360(t *testing.T) {
	cases := map[float64]float64{-10: 350, 0: 0, 360: 0, 370: 10, 725: 5}
	for in, want := range cases {
		if got := norm360(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("norm360(%f) = %f, want %f", in, got, want)
		}
	}
}

func BenchmarkSuggest(b *testing.B) {
	meet := geo.Point{Lat: 37.5, Lon: 24.5}
	own := OwnShip{MMSI: 1, Pos: geo.DeadReckon(meet, 12, 270, 900), SOG: 12, COG: 90, At: t0}
	tgt := lineForecast(2, geo.DeadReckon(meet, 12, 90, 900), 270, 12)
	targets := []events.Forecast{tgt}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Suggest(own, targets, cfg)
	}
}

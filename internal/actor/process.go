package actor

import (
	"sync"
	"sync/atomic"
	"time"
)

// process is the runtime representation of one actor: its mailbox, the
// current behaviour instance and its supervision bookkeeping.
type process struct {
	system *System
	pid    *PID
	props  *Props
	mb     *mailbox

	actor Actor // current instance; replaced on restart

	dead int32 // 1 once Stopped has been delivered

	childMu  sync.Mutex
	children map[*PID]struct{}
	parent   *PID

	restartMu    sync.Mutex
	restartTimes []time.Time

	stopping int32
	done     chan struct{} // closed when the actor is fully stopped

	// ctx is reused for every delivery to this process. Deliveries are
	// serial (user invokes, lifecycle invokes and doStop all run on the
	// goroutine holding the mailbox schedule token), and a Context is
	// documented as valid only for the duration of its Receive call, so
	// one struct per process replaces one heap allocation per message.
	ctx Context
}

func (p *process) sendUser(e envelope) {
	if atomic.LoadInt32(&p.dead) == 1 {
		p.system.deadLetter(p.pid, e.message, e.sender)
		return
	}
	p.mb.pushUser(e)
	p.schedule()
}

// sendUserBatch enqueues msgs in order with one mailbox lock and one
// schedule transition. A target found dead routes the whole batch to
// dead letters, matching sendUser.
func (p *process) sendUserBatch(msgs []any, sender *PID) {
	if atomic.LoadInt32(&p.dead) == 1 {
		for _, msg := range msgs {
			p.system.deadLetter(p.pid, msg, sender)
		}
		return
	}
	p.mb.pushUserBatch(msgs, sender)
	p.schedule()
}

func (p *process) sendSystem(msg any) {
	if atomic.LoadInt32(&p.dead) == 1 {
		return
	}
	p.mb.pushSystem(msg)
	p.schedule()
}

func (p *process) schedule() {
	if p.mb.trySchedule() {
		go p.run()
	}
}

// run drains the mailbox until it is empty, yielding the goroutine
// between batches so one hot actor cannot starve the scheduler.
func (p *process) run() {
	for {
		p.processBatch()
		p.mb.setIdle()
		if p.mb.empty() || atomic.LoadInt32(&p.dead) == 1 {
			return
		}
		// Work arrived between the drain and setIdle; try to take the
		// mailbox back. Losing the race means another goroutine has it.
		if !p.mb.trySchedule() {
			return
		}
	}
}

func (p *process) processBatch() {
	throughput := p.props.throughput
	if throughput <= 0 {
		throughput = p.system.throughput
	}
	for i := 0; i < throughput; i++ {
		if msg, ok := p.mb.popSystem(); ok {
			p.handleSystem(msg)
			continue
		}
		if atomic.LoadInt32(&p.dead) == 1 || p.mb.isSuspended() {
			return
		}
		e, ok := p.mb.popUser()
		if !ok {
			return
		}
		p.invoke(e)
	}
}

func (p *process) handleSystem(msg any) {
	switch msg.(type) {
	case sysStarted:
		p.invokeLifecycle(Started{})
	case sysStop:
		p.doStop()
	case sysResumed:
		p.mb.resume()
	}
}

// invoke delivers one user envelope to the behaviour, converting panics
// into supervision decisions.
func (p *process) invoke(e envelope) {
	if _, ok := e.message.(poisonPill); ok {
		p.doStop()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			p.handleFailure(r, e)
		}
	}()
	p.ctx = Context{system: p.system, process: p, self: p.pid, sender: e.sender, message: e.message}
	p.actor.Receive(&p.ctx)
	atomic.AddUint64(&p.system.stats.MessagesProcessed, 1)
}

// invokeLifecycle delivers a lifecycle message, swallowing panics (a
// panic during Stopped must not prevent the stop from completing).
func (p *process) invokeLifecycle(msg any) {
	defer func() {
		if r := recover(); r != nil {
			p.system.events.Publish(FailureEvent{PID: p.pid, Reason: r, Lifecycle: true})
		}
	}()
	p.ctx = Context{system: p.system, process: p, self: p.pid, message: msg}
	p.actor.Receive(&p.ctx)
}

// FailureEvent is published on the event stream when an actor panics.
type FailureEvent struct {
	PID       *PID
	Reason    any
	Message   any  // the message being processed, nil for lifecycle
	Lifecycle bool // true when the panic happened in a lifecycle handler
}

func (p *process) handleFailure(reason any, e envelope) {
	atomic.AddUint64(&p.system.stats.Failures, 1)
	p.system.events.Publish(FailureEvent{PID: p.pid, Reason: reason, Message: e.message})

	switch p.props.strategy.Directive {
	case DirectiveResume:
		return // drop the failing message, keep state
	case DirectiveStop:
		p.doStop()
		return
	case DirectiveRestart:
		if p.restartBudgetExceeded() {
			p.doStop()
			return
		}
		p.invokeLifecycle(Restarting{Reason: reason})
		p.actor = p.props.producer()
		atomic.AddUint64(&p.system.stats.Restarts, 1)
		p.invokeLifecycle(Started{})
	}
}

func (p *process) restartBudgetExceeded() bool {
	s := p.props.strategy
	if s.MaxRestarts <= 0 {
		return false
	}
	p.restartMu.Lock()
	defer p.restartMu.Unlock()
	now := time.Now()
	if s.WindowSeconds > 0 {
		cutoff := now.Add(-time.Duration(s.WindowSeconds) * time.Second)
		keep := p.restartTimes[:0]
		for _, t := range p.restartTimes {
			if t.After(cutoff) {
				keep = append(keep, t)
			}
		}
		p.restartTimes = keep
	}
	p.restartTimes = append(p.restartTimes, now)
	return len(p.restartTimes) > s.MaxRestarts
}

// doStop runs the stop sequence inline on the processing goroutine:
// Stopping -> stop children -> Stopped -> unregister + dead-letter the
// remaining queue.
func (p *process) doStop() {
	if !atomic.CompareAndSwapInt32(&p.stopping, 0, 1) {
		return
	}
	p.invokeLifecycle(Stopping{})

	p.childMu.Lock()
	kids := make([]*PID, 0, len(p.children))
	for kid := range p.children {
		kids = append(kids, kid)
	}
	p.children = nil
	p.childMu.Unlock()
	for _, kid := range kids {
		p.system.Stop(kid)
	}

	p.invokeLifecycle(Stopped{})
	atomic.StoreInt32(&p.dead, 1)
	p.system.unregister(p.pid)
	atomic.AddUint64(&p.system.stats.ActorsStopped, 1)

	// Flush whatever is still queued to dead letters.
	for {
		e, ok := p.mb.popUser()
		if !ok {
			break
		}
		p.system.deadLetter(p.pid, e.message, e.sender)
	}
	close(p.done)
}

func (p *process) addChild(kid *PID) {
	p.childMu.Lock()
	if p.children == nil {
		p.children = make(map[*PID]struct{})
	}
	p.children[kid] = struct{}{}
	p.childMu.Unlock()
}

package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDisplacementError(t *testing.T) {
	d := NewDisplacementError(3)
	d.Add(0, 100)
	d.Add(0, 200)
	d.Add(1, 300)
	d.Add(2, 500)
	if got := d.ADE(0); got != 150 {
		t.Fatalf("ADE(0) = %f", got)
	}
	if got := d.ADE(1); got != 300 {
		t.Fatalf("ADE(1) = %f", got)
	}
	if got := d.MeanADE(); math.Abs(got-(150+300+500)/3.0) > 1e-9 {
		t.Fatalf("MeanADE = %f", got)
	}
	if d.Count(0) != 2 || d.Count(2) != 1 {
		t.Fatal("counts wrong")
	}
	if d.Horizons() != 3 {
		t.Fatal("horizons wrong")
	}
}

func TestDisplacementErrorEmptyHorizon(t *testing.T) {
	d := NewDisplacementError(2)
	d.Add(0, 10)
	if d.ADE(1) != 0 {
		t.Fatal("empty horizon must be 0")
	}
	if d.MeanADE() != 10 {
		t.Fatal("mean must skip empty horizons")
	}
}

func TestConfusionMetrics(t *testing.T) {
	// The paper's Table 2, All Events / Linear Kinematic / 2 min row.
	c := Confusion{TP: 203, FP: 3, FN: 34}
	if p := c.Precision(); math.Abs(p-0.985) > 0.01 {
		t.Fatalf("precision %f", p)
	}
	if r := c.Recall(); math.Abs(r-0.857) > 0.01 {
		t.Fatalf("recall %f", r)
	}
	if f := c.F1(); math.Abs(f-0.916) > 0.01 {
		t.Fatalf("f1 %f", f)
	}
	if a := c.Accuracy(); math.Abs(a-float64(203)/240) > 0.01 {
		t.Fatalf("accuracy %f", a)
	}
}

func TestConfusionZeroSafe(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("zero matrix must yield zero metrics, not NaN")
	}
}

func TestConfusionPropertyBounds(t *testing.T) {
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		for _, v := range []float64{c.Precision(), c.Recall(), c.F1(), c.Accuracy()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageWindow(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Add(3) != 3 {
		t.Fatal("first mean")
	}
	if m.Add(6) != 4.5 {
		t.Fatal("second mean")
	}
	if m.Add(9) != 6 {
		t.Fatal("third mean")
	}
	// Window slides: (6+9+12)/3 = 9.
	if got := m.Add(12); got != 9 {
		t.Fatalf("slid mean = %f", got)
	}
	if m.Filled() != 3 {
		t.Fatalf("filled = %d", m.Filled())
	}
}

func TestMovingAverageMatchesNaive(t *testing.T) {
	f := func(values []float64) bool {
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		const window = 5
		m := NewMovingAverage(window)
		for i, v := range values {
			got := m.Add(v)
			lo := i - window + 1
			if lo < 0 {
				lo = 0
			}
			want := 0.0
			for _, x := range values[lo : i+1] {
				want += x
			}
			want /= float64(i + 1 - lo)
			scale := math.Max(1, math.Abs(want))
			if math.Abs(got-want)/scale > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	l := NewLatencyRecorder(1024)
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max %v", s.Max)
	}
	if s.Mean < 50*time.Millisecond || s.Mean > 51*time.Millisecond {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 51*time.Millisecond {
		t.Fatalf("p50 %v", s.P50)
	}
	if s.P95 < 94*time.Millisecond || s.P95 > 96*time.Millisecond {
		t.Fatalf("p95 %v", s.P95)
	}
	if s.P99 < 98*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Fatalf("p99 %v", s.P99)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	l := NewLatencyRecorder(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := l.Snapshot(); s.Count != 8000 {
		t.Fatalf("count %d", s.Count)
	}
}

func TestLatencyRecorderOverCapacity(t *testing.T) {
	l := NewLatencyRecorder(16)
	for i := 0; i < 1000; i++ {
		l.Observe(time.Duration(i) * time.Microsecond)
	}
	s := l.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50 <= 0 {
		t.Fatal("quantiles must remain usable past capacity")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value %d", c.Value())
	}
}

func BenchmarkMovingAverageAdd(b *testing.B) {
	m := NewMovingAverage(100)
	for i := 0; i < b.N; i++ {
		m.Add(float64(i))
	}
}

func BenchmarkLatencyObserve(b *testing.B) {
	l := NewLatencyRecorder(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Observe(time.Microsecond)
	}
}

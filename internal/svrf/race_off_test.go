//go:build !race

package svrf

const raceEnabled = false

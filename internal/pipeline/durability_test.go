package pipeline

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/chaos"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/kvstore"
	"seatwin/internal/retry"
	"seatwin/internal/svrf"
)

func init() {
	// The durable broker persists record values with gob.
	broker.RegisterType(ais.PositionReport{})
}

// svrfConfig builds a pipeline whose forecaster is a real (untrained)
// S-VRF model: it refuses to forecast until a vessel's downsampled
// history reaches traj.MinLiveReports, so a forecast on the very first
// post-restart report proves the history window was restored from the
// checkpoint rather than re-warmed from live traffic.
func svrfConfig(t *testing.T, store *kvstore.Store) Config {
	t.Helper()
	m, err := svrf.New(svrf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(events.SVRFForecaster{Model: m})
	cfg.Store = store
	cfg.CheckpointInterval = 4
	return cfg
}

// produceTrack produces n straight-track reports for one vessel onto
// the broker, 30 s apart (the S-VRF downsample interval, so every
// report survives downsampling), and returns the last timestamp.
func produceTrack(t *testing.T, br *broker.Broker, topic string, mmsi ais.MMSI, start geo.Point, n int, from time.Time) time.Time {
	t.Helper()
	var at time.Time
	for i := 0; i < n; i++ {
		at = from.Add(time.Duration(i) * 30 * time.Second)
		pos := geo.DeadReckon(start, 12, 90, at.Sub(from).Seconds())
		if _, _, err := br.Produce(topic, strconv.FormatUint(uint64(mmsi), 10), ais.PositionReport{
			MMSI: mmsi, Lat: pos.Lat, Lon: pos.Lon, SOG: 12, COG: 90,
			Status: ais.StatusUnderWayEngine, Timestamp: at,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return at
}

// warmRun is phase one of the restart tests: a pipeline consumes n
// reports from a durable broker, checkpoints, and shuts down cleanly.
// It returns the last report timestamp.
func warmRun(t *testing.T, dir string, store *kvstore.Store, topic string, mmsi ais.MMSI, start geo.Point, n int) time.Time {
	t.Helper()
	br, err := broker.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.CreateTopic(topic, 2); err != nil {
		t.Fatal(err)
	}
	p, err := New(svrfConfig(t, store))
	if err != nil {
		t.Fatal(err)
	}
	c, err := br.Subscribe(topic, "pipeline")
	if err != nil {
		t.Fatal(err)
	}
	last := produceTrack(t, br, topic, mmsi, start, n, t0)
	if got := p.ConsumeLoop(c, 400*time.Millisecond); got != n {
		t.Fatalf("warm run consumed %d records, want %d", got, n)
	}
	p.Drain(10 * time.Second)
	warm := p.Stats()
	if warm.Forecasts == 0 {
		t.Fatal("warm run never forecast — the model never crossed MinLiveReports, so recovery cannot be proven")
	}
	if warm.CheckpointSaves == 0 {
		t.Fatal("warm run wrote no checkpoint")
	}
	c.Close()
	p.Shutdown(5 * time.Second) // Stopping handler persists the final window
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
	return last
}

// TestRestartRecoveryForecastsImmediately is the headline durability
// scenario: feed a vessel past the S-VRF warmup threshold, shut the
// pipeline down, reopen a new pipeline against the same store and
// broker directory, and require the very first post-restart report to
// yield a forecast — no re-warming from MinLiveReports.
func TestRestartRecoveryForecastsImmediately(t *testing.T) {
	dir := t.TempDir()
	store := kvstore.New()
	defer store.Close()
	const topic = "ais"
	const mmsi = ais.MMSI(912000001)
	start := geo.Point{Lat: 37.5, Lon: 24.5}

	last := warmRun(t, dir, store, topic, mmsi, start, 8)

	// Restart: a brand-new pipeline and broker over the surviving state.
	br, err := broker.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	p, err := New(svrfConfig(t, store))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)
	c, err := br.Subscribe(topic, "pipeline")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One report past the restart point.
	at := last.Add(30 * time.Second)
	pos := geo.DeadReckon(start, 12, 90, at.Sub(t0).Seconds())
	if _, _, err := br.Produce(topic, strconv.FormatUint(uint64(mmsi), 10), ais.PositionReport{
		MMSI: mmsi, Lat: pos.Lat, Lon: pos.Lon, SOG: 12, COG: 90,
		Status: ais.StatusUnderWayEngine, Timestamp: at,
	}); err != nil {
		t.Fatal(err)
	}
	// Committed group offsets must hold back the already-consumed 8.
	if got := p.ConsumeLoop(c, 400*time.Millisecond); got != 1 {
		t.Fatalf("post-restart loop ingested %d records, want 1 (committed offsets should skip the consumed prefix)", got)
	}
	p.Drain(10 * time.Second)

	st := p.Stats()
	if st.CheckpointRestores < 1 {
		t.Fatal("vessel window was not rehydrated from the checkpoint")
	}
	if st.Forecasts < 1 {
		t.Fatal("first post-restart report produced no forecast: the pipeline re-warmed from scratch")
	}
	h, _ := store.HGetAll("vessel:" + mmsi.String())
	if h["forecast"] == "" {
		t.Fatalf("post-restart state has no forecast: %v", h)
	}
	if h["ts"] != at.UTC().Format(time.RFC3339) {
		t.Fatalf("state ts = %q, want %q", h["ts"], at.UTC().Format(time.RFC3339))
	}
}

// TestCheckpointDedupsReplayedRecords replays the whole topic through a
// fresh consumer group after a restart: every replayed report falls
// inside the rehydrated history window and must be dropped by the
// out-of-order guard, so only the one genuinely new report forecasts.
func TestCheckpointDedupsReplayedRecords(t *testing.T) {
	dir := t.TempDir()
	store := kvstore.New()
	defer store.Close()
	const topic = "ais"
	const mmsi = ais.MMSI(912000002)
	start := geo.Point{Lat: 37.5, Lon: 24.5}

	last := warmRun(t, dir, store, topic, mmsi, start, 8)

	br, err := broker.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	p, err := New(svrfConfig(t, store))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)
	// A fresh group has no committed offsets: the full topic replays.
	c, err := br.Subscribe(topic, "replay")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	at := last.Add(30 * time.Second)
	pos := geo.DeadReckon(start, 12, 90, at.Sub(t0).Seconds())
	if _, _, err := br.Produce(topic, strconv.FormatUint(uint64(mmsi), 10), ais.PositionReport{
		MMSI: mmsi, Lat: pos.Lat, Lon: pos.Lon, SOG: 12, COG: 90,
		Status: ais.StatusUnderWayEngine, Timestamp: at,
	}); err != nil {
		t.Fatal(err)
	}
	if got := p.ConsumeLoop(c, 400*time.Millisecond); got != 9 {
		t.Fatalf("replay loop ingested %d records, want 9 (8 stale + 1 new)", got)
	}
	p.Drain(10 * time.Second)

	st := p.Stats()
	if st.CheckpointRestores < 1 {
		t.Fatal("vessel window was not rehydrated from the checkpoint")
	}
	// The 8 replayed reports are nanosecond-identical to the restored
	// tail and must be deduplicated; only the new one may forecast.
	if st.Forecasts != 1 {
		t.Fatalf("forecasts = %d, want exactly 1: replay must be deduplicated against the checkpoint", st.Forecasts)
	}
	h, _ := store.HGetAll("vessel:" + mmsi.String())
	if h["ts"] != at.UTC().Format(time.RFC3339) {
		t.Fatalf("state ts = %q, want the new report's %q", h["ts"], at.UTC().Format(time.RFC3339))
	}
}

// TestChaosPipelineSurvivesStoreFaults runs a full pipeline with a 20%
// store error rate: writes retry, exhausted writes drop to degraded
// mode, and ingest never wedges — every vessel still ends with state in
// the raw store and the retry counters are visible over the API.
func TestChaosPipelineSurvivesStoreFaults(t *testing.T) {
	in := chaos.New(chaos.Policy{ErrorRate: 0.2, Seed: 11})
	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.Chaos = in
	cfg.CheckpointInterval = 4
	cfg.Retry = retry.Policy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 2}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	vessels := []ais.MMSI{913000001, 913000002, 913000003, 913000004}
	for i, m := range vessels {
		startPos := geo.Point{Lat: 37.0 + float64(i), Lon: 24.0 + float64(i)}
		feedTrack(p, m, startPos, 90, 12, 40, 30*time.Second, t0)
	}
	p.Drain(15 * time.Second)

	st := p.Stats()
	if st.RetryAttempts == 0 {
		t.Fatal("a 20% store error rate produced no retry attempts")
	}
	if st.RetryRetried == 0 {
		t.Fatal("no write ever succeeded after a retry")
	}
	if in.Stats().Errors == 0 {
		t.Fatal("the injector reports no injected errors")
	}
	// Degraded, not wedged: the raw store still holds every vessel.
	for _, m := range vessels {
		h, _ := p.Store().HGetAll("vessel:" + m.String())
		if h["lat"] == "" {
			t.Fatalf("vessel %v lost its state under chaos", m)
		}
	}
	// The retry counters are observable where operators look.
	api := NewAPI(p)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/stats", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "retry_attempts") {
		t.Fatalf("/api/stats missing retry counters: %d %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "seatwin_chaos_errors_total") {
		t.Fatalf("/metrics missing chaos gauges: %d", rec.Code)
	}
}

// TestChaosConsumeLoopDeliversEverything drives ConsumeLoop through a
// chaos-wrapped consumer that stalls polls and panics at random: faults
// must degrade to backoff-and-retry, never to record loss, so every
// produced record is ingested exactly once.
func TestChaosConsumeLoopDeliversEverything(t *testing.T) {
	br := broker.New()
	if err := br.CreateTopic("ais", 4); err != nil {
		t.Fatal(err)
	}
	const total = 200
	vessels := []ais.MMSI{914000001, 914000002, 914000003, 914000004}
	// Stream the production from a goroutine, a few records at a time,
	// so the consume loop runs many poll/commit rounds (each one a fault
	// roll) instead of draining the whole topic in a single batch.
	go func() {
		for i := 0; i < total; i++ {
			m := vessels[i%len(vessels)]
			at := t0.Add(time.Duration(i/len(vessels)) * 30 * time.Second)
			pos := geo.DeadReckon(geo.Point{Lat: 36.0, Lon: 23.0}, 10, 45, at.Sub(t0).Seconds())
			if _, _, err := br.Produce("ais", m.String(), ais.PositionReport{
				MMSI: m, Lat: pos.Lat, Lon: pos.Lon, SOG: 10, COG: 45,
				Status: ais.StatusUnderWayEngine, Timestamp: at,
			}); err != nil {
				t.Error(err)
				return
			}
			if i%5 == 4 {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	cfg := DefaultConfig(events.NewKinematicForecaster())
	cfg.Retry = retry.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Multiplier: 2}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	in := chaos.New(chaos.Policy{ErrorRate: 0.3, PanicRate: 0.05, Seed: 5})
	c, err := br.Subscribe("ais", "g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := p.ConsumeLoop(chaos.WrapConsumer(c, in), 250*time.Millisecond)
	if got != total {
		t.Fatalf("consume loop delivered %d of %d records under chaos", got, total)
	}
	p.Drain(10 * time.Second)
	if st := p.Stats(); st.Messages != total {
		t.Fatalf("pipeline ingested %d of %d records", st.Messages, total)
	}
	cs := in.Stats()
	if cs.Errors == 0 && cs.Panics == 0 {
		t.Fatal("chaos injected nothing — the test proved nothing")
	}
}

package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// The HTTP control plane serves the coordinator's Membership surface to
// workers in other processes: POST /cluster/join, /cluster/heartbeat
// and /cluster/leave (all with ?worker=<id>), and GET
// /cluster/assignment for introspection. The data plane (per-partition
// record forwarding) rides the broker and is not part of this surface.

// assignmentJSON is the wire form of an Assignment.
type assignmentJSON struct {
	Epoch      uint64            `json:"epoch"`
	Partitions map[string]string `json:"partitions"`
}

func encodeAssignment(a Assignment) assignmentJSON {
	out := assignmentJSON{Epoch: a.Epoch, Partitions: make(map[string]string, len(a.Workers))}
	for p, w := range a.Workers {
		out.Partitions[strconv.Itoa(int(p))] = w
	}
	return out
}

func decodeAssignment(j assignmentJSON) (Assignment, error) {
	a := Assignment{Epoch: j.Epoch, Workers: make(map[PartitionID]string, len(j.Partitions))}
	for p, w := range j.Partitions {
		id, err := strconv.Atoi(p)
		if err != nil {
			return Assignment{}, fmt.Errorf("cluster: bad partition id %q", p)
		}
		a.Workers[PartitionID(id)] = w
	}
	return a, nil
}

// Handler returns the coordinator's HTTP control plane, mountable on
// any mux under /cluster/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	membership := func(fn func(string) (Assignment, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			worker := r.URL.Query().Get("worker")
			if worker == "" {
				http.Error(w, "worker is required", http.StatusBadRequest)
				return
			}
			a, err := fn(worker)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(encodeAssignment(a))
		}
	}
	mux.HandleFunc("/cluster/join", membership(c.Join))
	mux.HandleFunc("/cluster/heartbeat", membership(c.Heartbeat))
	mux.HandleFunc("/cluster/leave", membership(func(worker string) (Assignment, error) {
		if err := c.Leave(worker); err != nil {
			return Assignment{}, err
		}
		return c.Assignment(), nil
	}))
	mux.HandleFunc("/cluster/assignment", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(encodeAssignment(c.Assignment()))
	})
	mux.HandleFunc("/cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Workers())
	})
	return mux
}

// RemoteCoordinator is the worker-side client of a coordinator's HTTP
// control plane; it implements Membership over POSTs, so a worker
// process is wired exactly like an in-process one.
type RemoteCoordinator struct {
	base string
	hc   *http.Client
}

// NewRemoteCoordinator points a client at a coordinator's base URL
// (e.g. "http://coord:7946").
func NewRemoteCoordinator(baseURL string) *RemoteCoordinator {
	return &RemoteCoordinator{
		base: baseURL,
		hc:   &http.Client{Timeout: 5 * time.Second},
	}
}

func (r *RemoteCoordinator) call(path, worker string) (Assignment, error) {
	resp, err := r.hc.Post(r.base+path+"?worker="+worker, "application/json", nil)
	if err != nil {
		return Assignment{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Assignment{}, fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, body)
	}
	var j assignmentJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return Assignment{}, fmt.Errorf("cluster: %s: decode: %w", path, err)
	}
	return decodeAssignment(j)
}

// Join implements Membership.
func (r *RemoteCoordinator) Join(workerID string) (Assignment, error) {
	return r.call("/cluster/join", workerID)
}

// Heartbeat implements Membership.
func (r *RemoteCoordinator) Heartbeat(workerID string) (Assignment, error) {
	return r.call("/cluster/heartbeat", workerID)
}

// Leave implements Membership.
func (r *RemoteCoordinator) Leave(workerID string) error {
	_, err := r.call("/cluster/leave", workerID)
	return err
}

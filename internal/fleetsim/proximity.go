package fleetsim

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// ProximityConfig shapes the synthetic vessel-proximity scenario that
// stands in for the Zenodo dataset of §6.2 (itself synthetic): groups
// of vessels converge on meeting points in the Aegean at staggered
// times, producing ground-truth proximity events with known
// times-to-encounter.
type ProximityConfig struct {
	Seed int64
	// Groups4 and Groups3 are counts of 4-vessel and 3-vessel
	// convergence groups (contributing 6 and 3 pairwise events each);
	// the defaults reproduce the paper's 237 events from 187 vessels.
	Groups4, Groups3 int
	// CrossingPairs adds vessel pairs whose tracks cross spatially but
	// miss each other in time — the false-positive bait.
	CrossingPairs int
	// HistoryDuration is how much AIS history precedes the evaluation
	// time.
	HistoryDuration time.Duration
	// ProximityMeters is the ground-truth closeness threshold.
	ProximityMeters float64
}

// DefaultProximityConfig approximates the §6.2 dataset: 213 vessels,
// 237 ground-truth events with ~26% under 2 minutes to encounter and
// ~64% under 5 minutes.
func DefaultProximityConfig() ProximityConfig {
	return ProximityConfig{
		Seed:            1,
		Groups4:         25,
		Groups3:         29,
		CrossingPairs:   13,
		HistoryDuration: 20 * time.Minute,
		ProximityMeters: 1852, // 1 NM, the canonical close-quarters distance
	}
}

// ProximityEvent is one ground-truth close encounter between a vessel
// pair.
type ProximityEvent struct {
	A, B      ais.MMSI
	CPATime   time.Time     // time of closest approach
	CPAMeters float64       // distance at closest approach
	TimeToCPA time.Duration // from the dataset's evaluation time
}

// TrackPoint is one ground-truth position sample.
type TrackPoint struct {
	At  time.Time
	Pos geo.Point
	SOG float64
	COG float64
}

// ProximityDataset bundles the generated scenario.
type ProximityDataset struct {
	Vessels  []Vessel
	EvalTime time.Time
	// History holds the received AIS reports up to EvalTime, per MMSI,
	// in time order — the input the forecasting models see.
	History map[ais.MMSI][]ais.PositionReport
	// Truth holds every ground-truth proximity event after EvalTime.
	Truth []ProximityEvent
	// FullTracks holds dense ground-truth motion (5 s resolution) over
	// the whole scenario for scoring and debugging.
	FullTracks map[ais.MMSI][]TrackPoint
}

// Messages returns the total count of history AIS messages.
func (d *ProximityDataset) Messages() int {
	n := 0
	for _, h := range d.History {
		n += len(h)
	}
	return n
}

// EventsWithin returns the ground-truth events with time-to-CPA at most
// window — the paper's "Sub dataset A" (2 min) and "Sub dataset B"
// (5 min) selections.
func (d *ProximityDataset) EventsWithin(window time.Duration) []ProximityEvent {
	var out []ProximityEvent
	for _, e := range d.Truth {
		if e.TimeToCPA <= window {
			out = append(out, e)
		}
	}
	return out
}

// GenerateProximity builds the scenario.
func GenerateProximity(cfg ProximityConfig) *ProximityDataset {
	if cfg.ProximityMeters <= 0 {
		cfg.ProximityMeters = 1852
	}
	if cfg.HistoryDuration <= 0 {
		cfg.HistoryDuration = 20 * time.Minute
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	evalTime := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	region := geo.AegeanSea.Expand(-0.5) // keep meeting points off the box edge

	// Each encounter vessel sails the same motion model as the world
	// fleet (bounded turn rate + OU course meander), routed through a
	// waypoint at the meeting point timed so groups converge there —
	// keeping the scenario inside the distribution the S-VRF model is
	// trained on, as a real dataset would be.
	type encVessel struct {
		vessel  Vessel
		motion  motionState
		startAt time.Time
	}
	var encounters []*encVessel
	idx := 0
	start := evalTime.Add(-cfg.HistoryDuration)
	end := evalTime.Add(35 * time.Minute)

	newEnc := func(passPos geo.Point, passTime time.Time, approach, speed float64) *encVessel {
		v := NewVessel(idx, rng)
		idx++
		// Tame extreme profiles so the timing math holds.
		v.Profile.CruiseKn = speed
		v.Profile.MaxTurnRate = 20 + rng.Float64()*20
		// Start back along the approach bearing so that sailing at
		// `speed` reaches the pass point at passTime.
		lead := passTime.Sub(start).Seconds()
		dist := speed * geo.KnotsToMetersPerSecond * lead
		startPos := geo.Destination(passPos, approach+180, dist)
		exitPos := geo.Destination(passPos, approach, 25000)
		e := &encVessel{vessel: v, startAt: start}
		e.motion = motionState{
			pos:     startPos,
			sog:     speed,
			cog:     approach,
			targets: []geo.Point{passPos, exitPos},
			rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(idx)*0x9E3779B9)),
		}
		encounters = append(encounters, e)
		return e
	}

	// sampleTTE draws a time-to-encounter matching the paper's subset
	// proportions: ~26% under 2 min, further ~38% in 2-5 min, rest long.
	sampleTTE := func() time.Duration {
		r := rng.Float64()
		var mins float64
		switch {
		case r < 0.257:
			mins = 0.5 + rng.Float64()*1.4
		case r < 0.641:
			mins = 2.1 + rng.Float64()*2.8
		default:
			mins = 5.2 + rng.Float64()*19
		}
		return time.Duration(mins * float64(time.Minute))
	}

	makeGroup := func(size int) {
		meeting := region.Sample(rng.Float64(), rng.Float64())
		tte := sampleTTE()
		passTime := evalTime.Add(tte)
		baseCourse := rng.Float64() * 360
		for k := 0; k < size; k++ {
			// Spread approach directions around the compass and offset
			// each vessel's pass point within a fraction of the
			// proximity radius so every pair closes below threshold.
			course := math.Mod(baseCourse+float64(k)*(360/float64(size))+rng.Float64()*20-10, 360)
			offset := rng.Float64() * cfg.ProximityMeters * 0.25
			pos := geo.Destination(meeting, rng.Float64()*360, offset)
			dt := time.Duration((rng.Float64()*16 - 8) * float64(time.Second))
			speed := 8 + rng.Float64()*10
			newEnc(pos, passTime.Add(dt), course, speed)
		}
	}

	for i := 0; i < cfg.Groups4; i++ {
		makeGroup(4)
	}
	for i := 0; i < cfg.Groups3; i++ {
		makeGroup(3)
	}
	// Crossing pairs: same crossing point, minutes apart — spatial
	// intersection without temporal intersection.
	for i := 0; i < cfg.CrossingPairs; i++ {
		meeting := region.Sample(rng.Float64(), rng.Float64())
		tte := sampleTTE()
		lag := time.Duration((6 + rng.Float64()*14) * float64(time.Minute))
		c1 := rng.Float64() * 360
		c2 := math.Mod(c1+60+rng.Float64()*60, 360)
		newEnc(meeting, evalTime.Add(tte), c1, 9+rng.Float64()*8)
		newEnc(meeting, evalTime.Add(tte).Add(lag), c2, 9+rng.Float64()*8)
	}

	// Integrate dense ground-truth tracks on the shared 5 s grid.
	const step = 5 * time.Second
	full := make(map[ais.MMSI][]TrackPoint, len(encounters))
	vessels := make([]Vessel, 0, len(encounters))
	for _, e := range encounters {
		var track []TrackPoint
		for t := start; !t.After(end); t = t.Add(step) {
			track = append(track, TrackPoint{
				At:  t,
				Pos: e.motion.pos,
				SOG: e.motion.sog,
				COG: e.motion.cog,
			})
			e.motion.advance(step.Seconds(), e.vessel.Profile)
		}
		full[e.vessel.MMSI] = track
		vessels = append(vessels, e.vessel)
	}

	// Derive the received AIS history: sample each track at irregular
	// intervals with dropouts.
	history := make(map[ais.MMSI][]ais.PositionReport, len(encounters))
	for _, e := range encounters {
		pts := full[e.vessel.MMSI]
		var reports []ais.PositionReport
		t := start.Add(time.Duration(rng.Float64() * 20 * float64(time.Second)))
		for t.Before(evalTime) {
			tp, ok := sampleTrack(pts, t)
			if ok && rng.Float64() > 0.1 {
				// Same measurement noise as the live channel: this is
				// what the kinematic baseline's last COG/SOG suffer from.
				pos := geo.Destination(tp.Pos, rng.Float64()*360,
					math.Abs(rng.NormFloat64())*DefaultChannel.PosNoiseMeters)
				sog := math.Max(0, tp.SOG+rng.NormFloat64()*DefaultChannel.SOGNoiseKnots)
				cog := math.Mod(tp.COG+rng.NormFloat64()*DefaultChannel.COGNoiseDeg+360, 360)
				reports = append(reports, ais.PositionReport{
					MMSI: e.vessel.MMSI, Class: e.vessel.Profile.Class,
					Status: ais.StatusUnderWayEngine,
					Lat:    pos.Lat, Lon: pos.Lon,
					SOG: sog, COG: cog, Heading: int(cog),
					Timestamp: t,
				})
			}
			t = t.Add(time.Duration((30 + rng.Float64()*25) * float64(time.Second)))
		}
		history[e.vessel.MMSI] = reports
	}

	d := &ProximityDataset{
		Vessels:    vessels,
		EvalTime:   evalTime,
		History:    history,
		FullTracks: full,
	}
	d.Truth = groundTruthEvents(full, evalTime, cfg.ProximityMeters)
	return d
}

// resampleGrid interpolates a raw track onto the fixed grid
// [start, end] with the given step.
func resampleGrid(raw []TrackPoint, start, end time.Time, step time.Duration) []TrackPoint {
	var out []TrackPoint
	for t := start; !t.After(end); t = t.Add(step) {
		if tp, ok := sampleTrack(raw, t); ok {
			out = append(out, tp)
		}
	}
	return out
}

// sampleTrack linearly interpolates the dense track at time t.
func sampleTrack(pts []TrackPoint, t time.Time) (TrackPoint, bool) {
	if len(pts) == 0 || t.Before(pts[0].At) || t.After(pts[len(pts)-1].At) {
		return TrackPoint{}, false
	}
	i := sort.Search(len(pts), func(i int) bool { return !pts[i].At.Before(t) })
	if i == 0 {
		return pts[0], true
	}
	a, b := pts[i-1], pts[i]
	span := b.At.Sub(a.At).Seconds()
	if span <= 0 {
		return a, true
	}
	f := t.Sub(a.At).Seconds() / span
	return TrackPoint{
		At:  t,
		Pos: geo.Interpolate(a.Pos, b.Pos, f),
		SOG: a.SOG + (b.SOG-a.SOG)*f,
		COG: a.COG, // courses change slowly at this resolution
	}, true
}

// groundTruthEvents scans all vessel pairs for closest approaches under
// the threshold after the evaluation time.
func groundTruthEvents(full map[ais.MMSI][]TrackPoint, evalTime time.Time, thresholdMeters float64) []ProximityEvent {
	ids := make([]ais.MMSI, 0, len(full))
	for id := range full {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var events []ProximityEvent
	for i := 0; i < len(ids); i++ {
		ti := full[ids[i]]
		for j := i + 1; j < len(ids); j++ {
			tj := full[ids[j]]
			// Tracks share the same timeline (same start, step); align
			// by index from the first common time.
			n := len(ti)
			if len(tj) < n {
				n = len(tj)
			}
			best := math.MaxFloat64
			var bestAt time.Time
			for k := 0; k < n; k++ {
				if ti[k].At.Before(evalTime) {
					continue
				}
				// Cheap prefilter: skip pairs >2 degrees apart.
				if math.Abs(ti[k].Pos.Lat-tj[k].Pos.Lat) > 0.2 ||
					math.Abs(ti[k].Pos.Lon-tj[k].Pos.Lon) > 0.25 {
					continue
				}
				d := geo.FastDistance(ti[k].Pos, tj[k].Pos)
				if d < best {
					best = d
					bestAt = ti[k].At
				}
			}
			if best < thresholdMeters {
				events = append(events, ProximityEvent{
					A: ids[i], B: ids[j],
					CPATime:   bestAt,
					CPAMeters: best,
					TimeToCPA: bestAt.Sub(evalTime),
				})
			}
		}
	}
	return events
}

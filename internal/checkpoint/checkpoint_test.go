package checkpoint

import (
	"strings"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/kvstore"
)

var ckt0 = time.Date(2023, 9, 18, 9, 0, 0, 123456789, time.UTC)

func window(mmsi ais.MMSI, n int) Snapshot {
	s := Snapshot{MMSI: mmsi}
	for i := 0; i < n; i++ {
		s.Reports = append(s.Reports, ais.PositionReport{
			MMSI:      mmsi,
			Class:     ais.ClassA,
			Status:    ais.StatusUnderWayEngine,
			Lat:       37.5 + float64(i)*0.001234567890123,
			Lon:       24.5 + float64(i)*0.000987654321098,
			SOG:       12.3,
			COG:       90.5,
			Heading:   91,
			Timestamp: ckt0.Add(time.Duration(i) * 30 * time.Second),
		})
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := window(239000001, 20)
	out, err := Decode(in.MMSI, Encode(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) != len(in.Reports) {
		t.Fatalf("reports %d, want %d", len(out.Reports), len(in.Reports))
	}
	for i := range in.Reports {
		a, b := in.Reports[i], out.Reports[i]
		// Floats must round-trip exactly so the rehydrated window feeds
		// the model bit-identical inputs.
		if a.Lat != b.Lat || a.Lon != b.Lon || a.SOG != b.SOG || a.COG != b.COG {
			t.Fatalf("report %d floats: %+v vs %+v", i, a, b)
		}
		if !a.Timestamp.Equal(b.Timestamp) {
			t.Fatalf("report %d timestamp: %v vs %v (nanoseconds must survive)", i, a.Timestamp, b.Timestamp)
		}
		if a.Status != b.Status || a.Class != b.Class || a.Heading != b.Heading {
			t.Fatalf("report %d enums: %+v vs %+v", i, a, b)
		}
	}
	if !out.LastSeen().Equal(in.LastSeen()) {
		t.Fatalf("last seen %v, want %v", out.LastSeen(), in.LastSeen())
	}
}

func TestEncodeEmptySnapshot(t *testing.T) {
	out, err := Decode(5, Encode(Snapshot{MMSI: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) != 0 || !out.LastSeen().IsZero() {
		t.Fatalf("empty snapshot decoded as %+v", out)
	}
}

func TestDecodeRefusesUnknownVersion(t *testing.T) {
	fields := Encode(window(1, 3))
	fields["v"] = "99"
	if _, err := Decode(1, fields); err == nil {
		t.Fatal("future version must be refused, not misread")
	}
}

func TestDecodeRefusesCorruptFields(t *testing.T) {
	for name, mutate := range map[string]func(map[string]string){
		"bad version":     func(f map[string]string) { f["v"] = "x" },
		"bad count":       func(f map[string]string) { f["n"] = "-1" },
		"count mismatch":  func(f map[string]string) { f["n"] = "7" },
		"truncated hist":  func(f map[string]string) { f["hist"] = f["hist"][:len(f["hist"])/2] },
		"bad float":       func(f map[string]string) { f["hist"] = strings.Replace(f["hist"], "37.5", "noap", 1) },
		"unordered":       func(f map[string]string) { parts := strings.Split(f["hist"], ";"); parts[1] = parts[0]; f["hist"] = strings.Join(parts, ";") },
		"missing version": func(f map[string]string) { delete(f, "v") },
	} {
		fields := Encode(window(1, 3))
		mutate(fields)
		if _, err := Decode(1, fields); err == nil {
			t.Errorf("%s: corrupt checkpoint must fail decode", name)
		}
	}
}

func TestSaveLoadDeleteAgainstStore(t *testing.T) {
	st := kvstore.New()
	defer st.Close()

	if _, ok, err := Load(st, 123); err != nil || ok {
		t.Fatalf("load before save: ok=%v err=%v", ok, err)
	}
	in := window(123, 10)
	if err := Save(st, in); err != nil {
		t.Fatal(err)
	}
	out, ok, err := Load(st, 123)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if len(out.Reports) != 10 || !out.LastSeen().Equal(in.LastSeen()) {
		t.Fatalf("loaded %+v", out)
	}
	// A newer window overwrites in place (same key, batched write).
	if err := Save(st, window(123, 12)); err != nil {
		t.Fatal(err)
	}
	out, _, _ = Load(st, 123)
	if len(out.Reports) != 12 {
		t.Fatalf("overwrite kept %d reports", len(out.Reports))
	}
	Delete(st, 123)
	if _, ok, _ := Load(st, 123); ok {
		t.Fatal("checkpoint survived Delete")
	}
}

func TestLoadSurfacesCorruption(t *testing.T) {
	st := kvstore.New()
	defer st.Close()
	if _, err := st.HSetMulti(Key(9), map[string]string{"v": "1", "n": "2", "hist": "garbage"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := Load(st, 9); err == nil || ok {
		t.Fatalf("corrupt checkpoint: ok=%v err=%v (want error so callers cold-start)", ok, err)
	}
}

// TestEncoderFieldsMatchesEncode pins the fast path to the reference
// encoding: a snapshot written through Encoder.Fields must decode to
// the same window Encode produces, and the rendered values must be
// byte-identical field for field. It also exercises buffer reuse — a
// second, different snapshot through the same Encoder must not be
// corrupted by the first.
func TestEncoderFieldsMatchesEncode(t *testing.T) {
	var enc Encoder
	for _, n := range []int{48, 3, 0} {
		in := window(ais.MMSI(239000001+n), n)
		ref := Encode(in)
		fields := enc.Fields(in)
		if len(fields) != len(ref) {
			t.Fatalf("n=%d: %d fields, want %d", n, len(fields), len(ref))
		}
		got := make(map[string]string, len(fields))
		for _, f := range fields {
			got[f.Name] = f.Value
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("n=%d field %q = %q, want %q", n, k, got[k], v)
			}
		}
		out, err := Decode(in.MMSI, got)
		if err != nil {
			t.Fatalf("n=%d decode: %v", n, err)
		}
		if len(out.Reports) != n || !out.LastSeen().Equal(in.LastSeen()) {
			t.Fatalf("n=%d round trip: %d reports, last %v", n, len(out.Reports), out.LastSeen())
		}
	}
}

// TestAppendKeyMatchesKey pins the alloc-free key renderer to Key.
func TestAppendKeyMatchesKey(t *testing.T) {
	for _, m := range []ais.MMSI{0, 1, 239000001, 999999999, 1073741824} {
		if got, want := string(AppendKey(nil, m)), Key(m); got != want {
			t.Fatalf("AppendKey(%d) = %q, want %q", m, got, want)
		}
	}
}

//go:build !amd64

package nn

// Non-amd64 builds never select the vector kernel; the portable scalar
// loop in compiled.go is the only GEMV path.
const hasAVX2FMA = false

func gemvHiddenAVX2(w, h, z *float64, hidden, width, in int) {
	panic("nn: vector kernel called on a platform without it")
}

package ais

import (
	"testing"
	"time"
)

// TestParseSentenceAllocs gates the NMEA parser: a valid single-
// fragment sentence must parse with zero allocations (every Sentence
// field is a substring of the input line).
func TestParseSentenceAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs uninstrumented runs")
	}
	lines, err := Marshal(PositionReport{
		MMSI: 239000001, Lat: 37.5, Lon: 24.5, SOG: 12.3, COG: 89.9,
		Status:    StatusUnderWayEngine,
		Timestamp: time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC),
	}, "A", 0)
	if err != nil || len(lines) != 1 {
		t.Fatalf("marshal: %v (%d lines)", err, len(lines))
	}
	line := lines[0]
	avg := testing.AllocsPerRun(200, func() {
		if _, err := ParseSentence(line); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("ParseSentence: %.2f allocs/line", avg)
	if avg > 0 {
		t.Errorf("ParseSentence allocates %.2f/line, want 0", avg)
	}
}

// TestAssemblerPushAllocs bounds the single-fragment decode path: the
// armored payload is unpacked into a pooled buffer, so the only
// allocations left are the decoded message value itself.
func TestAssemblerPushAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs uninstrumented runs")
	}
	at := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	lines, err := Marshal(PositionReport{
		MMSI: 239000001, Lat: 37.5, Lon: 24.5, SOG: 12.3, COG: 89.9,
		Status: StatusUnderWayEngine, Timestamp: at,
	}, "A", 0)
	if err != nil || len(lines) != 1 {
		t.Fatalf("marshal: %v (%d lines)", err, len(lines))
	}
	s, err := ParseSentence(lines[0])
	if err != nil {
		t.Fatal(err)
	}
	asm := NewAssembler()
	avg := testing.AllocsPerRun(200, func() {
		m, err := asm.Push(s, at)
		if err != nil || m == nil {
			t.Fatalf("push: %v %v", m, err)
		}
	})
	t.Logf("Assembler.Push (single fragment): %.2f allocs/sentence", avg)
	if avg > 2 {
		t.Errorf("single-fragment Push allocates %.2f, budget 2", avg)
	}
}

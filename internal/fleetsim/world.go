package fleetsim

import (
	"container/heap"
	"math"
	"math/rand"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// Report is one received AIS transmission: the decoded message plus the
// simulated receive time.
type Report struct {
	Vessel *Vessel
	Pos    ais.PositionReport
	At     time.Time
}

// ChannelConfig models the AIS receive path: irregular effective
// sampling comes from transponder cadence (ITU-R M.1371) multiplied by
// coverage dropouts and timing jitter, the phenomena §4.2 of the paper
// designs the 30-second downsampling around.
type ChannelConfig struct {
	// DropProbability is the chance a transmission is never received
	// (out of terrestrial range, satellite latency, packet collisions).
	DropProbability float64
	// JitterFraction scales each reporting interval by
	// U(1-j, 1+3j), skewing toward late arrivals like real feeds.
	JitterFraction float64
	// BurstOutageMean, when > 0, occasionally silences a vessel for an
	// exponentially distributed outage (mean duration), producing the
	// heavy tail of inter-report intervals.
	BurstOutageMean time.Duration
	// BurstOutageRate is the per-report probability an outage starts.
	BurstOutageRate float64
	// Measurement noise of the reported fields. Real AIS positions are
	// GPS-grade (~15 m), while COG/SOG are single-epoch estimates whose
	// error is what makes pure dead reckoning drift (Table 1's linear
	// kinematic baseline relies on exactly these two fields).
	PosNoiseMeters float64
	SOGNoiseKnots  float64
	COGNoiseDeg    float64
}

// DefaultChannel mimics the blended terrestrial+satellite feed: mostly
// dense reporting with a heavy tail of long gaps.
var DefaultChannel = ChannelConfig{
	DropProbability: 0.25,
	JitterFraction:  0.15,
	BurstOutageMean: 9 * time.Minute,
	BurstOutageRate: 0.012,
	PosNoiseMeters:  15,
	SOGNoiseKnots:   0.3,
	COGNoiseDeg:     2.5,
}

// reportingInterval returns the ITU-R M.1371 nominal reporting interval
// for the current dynamic state.
func reportingInterval(class ais.Class, sog, turnRate float64, moored bool) time.Duration {
	if class == ais.ClassB {
		if sog <= 2 {
			return 3 * time.Minute
		}
		return 30 * time.Second
	}
	switch {
	case moored || sog <= 0.2:
		return 3 * time.Minute
	case sog <= 14:
		if turnRate > 5 {
			return 3300 * time.Millisecond
		}
		return 10 * time.Second
	case sog <= 23:
		if turnRate > 5 {
			return 2 * time.Second
		}
		return 6 * time.Second
	default:
		return 2 * time.Second
	}
}

// simVessel is one vessel's full simulation state.
type simVessel struct {
	vessel     Vessel
	motion     motionState
	lastMoved  time.Time
	nextTx     time.Time
	mooredOnce bool
	rng        *rand.Rand
	home       geo.BBox // region to pick the next route inside; zero = global
	regional   bool
}

// World simulates a fleet and yields received AIS reports in global
// time order.
type World struct {
	rng     *rand.Rand
	channel ChannelConfig
	clock   time.Time
	queue   txQueue
	ports   []Port
	// KeepSailing makes vessels pick a new route after arriving, so
	// long-running scalability experiments never run out of traffic.
	KeepSailing bool
}

// Config configures NewWorld.
type Config struct {
	Vessels int
	Seed    int64
	// Region restricts ports and routes to a bounding box; the zero box
	// means the whole catalog.
	Region geo.BBox
	// PortsOverride replaces the catalog entirely (synthetic scenario
	// worlds like DenseStraitWorld use it); Region filtering is skipped.
	PortsOverride []Port
	// Channel defaults to DefaultChannel when zero.
	Channel     *ChannelConfig
	Start       time.Time
	KeepSailing bool
}

// NewWorld creates a fleet of vessels mid-voyage on lanes between
// catalog ports.
func NewWorld(cfg Config) *World {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ch := DefaultChannel
	if cfg.Channel != nil {
		ch = *cfg.Channel
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(2021, 11, 2, 0, 0, 0, 0, time.UTC)
	}
	regional := cfg.Region != (geo.BBox{})
	ports := Ports
	if len(cfg.PortsOverride) >= 2 {
		ports = cfg.PortsOverride
	} else if regional {
		ports = PortsWithin(cfg.Region)
		if len(ports) < 2 {
			ports = Ports
			regional = false
		}
	}
	w := &World{rng: rng, channel: ch, clock: start, ports: ports, KeepSailing: cfg.KeepSailing}
	for i := 0; i < cfg.Vessels; i++ {
		v := NewVessel(i, rng)
		sv := &simVessel{
			vessel:   v,
			rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(i)*0x9E3779B9)),
			home:     cfg.Region,
			regional: regional,
		}
		w.assignRoute(sv, true)
		sv.lastMoved = start
		sv.nextTx = start.Add(time.Duration(sv.rng.Float64() * float64(10*time.Second)))
		heap.Push(&w.queue, sv)
	}
	return w
}

func (w *World) assignRoute(sv *simVessel, midVoyage bool) {
	origin := w.ports[sv.rng.Intn(len(w.ports))]
	dest := w.ports[sv.rng.Intn(len(w.ports))]
	for tries := 0; dest.Name == origin.Name && tries < 10; tries++ {
		dest = w.ports[sv.rng.Intn(len(w.ports))]
	}
	route := BuildRoute(origin, dest, sv.vessel.Profile.LaneJitterMeters, sv.rng)
	frac := 0.0
	if midVoyage {
		frac = sv.rng.Float64() * 0.8
	}
	sv.motion = newMotionState(route, frac)
	sv.motion.rng = sv.rng
	sv.motion.sog = sv.vessel.Profile.CruiseKn * (0.8 + sv.rng.Float64()*0.2)
}

// Next returns the next received AIS report, advancing simulated time.
// It never returns false while vessels are sailing (and with
// KeepSailing, never at all); the caller bounds iteration by count or
// by the report timestamps.
func (w *World) Next() (Report, bool) {
	for {
		if w.queue.Len() == 0 {
			return Report{}, false
		}
		sv := heap.Pop(&w.queue).(*simVessel)
		txTime := sv.nextTx
		w.clock = txTime

		dt := txTime.Sub(sv.lastMoved).Seconds()
		sailing := sv.motion.advance(dt, sv.vessel.Profile)
		sv.lastMoved = txTime

		if !sailing {
			if w.KeepSailing {
				// Dwell in port 1-4 hours, then sail a new route.
				if !sv.mooredOnce {
					sv.mooredOnce = true
					dwell := time.Duration(1+sv.rng.Float64()*3) * time.Hour
					sv.nextTx = txTime.Add(dwell)
					heap.Push(&w.queue, sv)
					continue
				}
				sv.mooredOnce = false
				w.assignRoute(sv, false)
			} else if sv.mooredOnce {
				// Finished vessels drop out of the simulation.
				continue
			} else {
				sv.mooredOnce = true
			}
		}

		// Schedule the next transmission from the ITU cadence.
		interval := reportingInterval(sv.vessel.Profile.Class, sv.motion.sog,
			sv.motion.turnRate(sv.vessel.Profile), sv.motion.moored)
		j := w.channel.JitterFraction
		scale := 1 + (sv.rng.Float64()*(4*j) - j)
		sv.nextTx = txTime.Add(time.Duration(float64(interval) * scale))
		// Occasional burst outage (satellite gap, terrain shadowing).
		if w.channel.BurstOutageRate > 0 && sv.rng.Float64() < w.channel.BurstOutageRate {
			outage := time.Duration(sv.rng.ExpFloat64() * float64(w.channel.BurstOutageMean))
			sv.nextTx = sv.nextTx.Add(outage)
		}
		heap.Push(&w.queue, sv)

		// Receive-path dropout: the ship moved and rescheduled, but the
		// shore never heard this transmission.
		if sv.rng.Float64() < w.channel.DropProbability {
			continue
		}

		status := ais.StatusUnderWayEngine
		if sv.motion.moored {
			status = ais.StatusMoored
		}
		// Apply receiver-side measurement noise.
		pos := sv.motion.pos
		if w.channel.PosNoiseMeters > 0 {
			pos = geo.Destination(pos, sv.rng.Float64()*360, math.Abs(sv.rng.NormFloat64())*w.channel.PosNoiseMeters)
		}
		sog := math.Max(0, sv.motion.sog+sv.rng.NormFloat64()*w.channel.SOGNoiseKnots)
		cog := math.Mod(sv.motion.cog+sv.rng.NormFloat64()*w.channel.COGNoiseDeg+360, 360)
		heading := int(math.Round(cog))
		if heading >= 360 {
			heading -= 360
		}
		return Report{
			Vessel: &sv.vessel,
			At:     txTime,
			Pos: ais.PositionReport{
				MMSI:      sv.vessel.MMSI,
				Class:     sv.vessel.Profile.Class,
				Status:    status,
				Lat:       pos.Lat,
				Lon:       pos.Lon,
				SOG:       sog,
				COG:       cog,
				Heading:   heading,
				ROT:       0,
				Timestamp: txTime,
			},
		}, true
	}
}

// Run drains reports until the simulated clock passes the duration or
// the fleet stops transmitting, invoking emit for each report.
func (w *World) Run(d time.Duration, emit func(Report)) int {
	end := w.clock.Add(d)
	n := 0
	for {
		r, ok := w.Next()
		if !ok || r.At.After(end) {
			return n
		}
		emit(r)
		n++
	}
}

// txQueue is a min-heap of vessels keyed by next transmission time.
type txQueue []*simVessel

func (q txQueue) Len() int           { return len(q) }
func (q txQueue) Less(i, j int) bool { return q[i].nextTx.Before(q[j].nextTx) }
func (q txQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *txQueue) Push(x any)        { *q = append(*q, x.(*simVessel)) }
func (q *txQueue) Pop() any {
	old := *q
	n := len(old)
	v := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return v
}

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestFastActivationAccuracy pins the fast activations to the stdlib
// implementations the reference path uses. The bound here (5e-15
// relative for exp, 1e-14 absolute for the squashing functions) is what
// keeps the end-to-end 1e-12 parity contract comfortable.
func TestFastActivationAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var maxExp, maxSig, maxTanh float64
	for i := 0; i < 500000; i++ {
		// Gate pre-activations live well inside +-40 for any sane model;
		// sweep wider than that to cover pathological weights too.
		x := (rng.Float64()*2 - 1) * 50
		if e := math.Abs(expFast(x)-math.Exp(x)) / math.Exp(x); e > maxExp {
			maxExp = e
		}
		if e := math.Abs(sigmoidFast(x) - 1/(1+math.Exp(-x))); e > maxSig {
			maxSig = e
		}
		if e := math.Abs(tanhFast(x) - math.Tanh(x)); e > maxTanh {
			maxTanh = e
		}
	}
	t.Logf("max err: exp %.3g (rel), sigmoid %.3g (abs), tanh %.3g (abs)", maxExp, maxSig, maxTanh)
	if maxExp > 5e-15 {
		t.Errorf("expFast relative error %g exceeds 5e-15", maxExp)
	}
	if maxSig > 1e-14 {
		t.Errorf("sigmoidFast absolute error %g exceeds 1e-14", maxSig)
	}
	if maxTanh > 1e-14 {
		t.Errorf("tanhFast absolute error %g exceeds 1e-14", maxTanh)
	}
}

// TestFastActivationEdges covers the saturation clamps, zero, denormal
// inputs, and NaN propagation — the places a bit-trick exp goes wrong.
func TestFastActivationEdges(t *testing.T) {
	for _, x := range []float64{0, 5e-324, -5e-324, 1e-300, -1e-300, 19.06, 19.08, -19.08, 690, -690, 701, -701, 1e6, -1e6} {
		if g, w := sigmoidFast(x), 1/(1+math.Exp(-x)); math.Abs(g-w) > 1e-14 {
			t.Errorf("sigmoidFast(%g) = %g, want %g", x, g, w)
		}
		if g, w := tanhFast(x), math.Tanh(x); math.Abs(g-w) > 1e-14 {
			t.Errorf("tanhFast(%g) = %g, want %g", x, g, w)
		}
	}
	if !math.IsNaN(sigmoidFast(math.NaN())) {
		t.Error("sigmoidFast(NaN) must be NaN")
	}
	if !math.IsNaN(tanhFast(math.NaN())) {
		t.Error("tanhFast(NaN) must be NaN")
	}
}

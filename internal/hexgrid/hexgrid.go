// Package hexgrid implements a hierarchical hexagonal spatial index in
// the spirit of Uber H3, which the paper uses to key its cell and
// collision actors and to rasterise traffic-flow forecasts.
//
// The index tiles the sinusoidal (equal-area) projection of the sphere
// with pointy-top hexagons addressed by axial coordinates (q, r). The
// sinusoidal projection keeps cell areas near-uniform across latitudes,
// which is the property the system actually relies on: proximity
// thresholds and traffic-flow counts must mean roughly the same thing in
// the Aegean and in the North Sea. Exact H3 icosahedral geometry is not
// reproduced (see DESIGN.md); the operations the pipeline needs —
// point-to-cell, cell centroid, k-ring neighbourhoods, boundaries and a
// parent/child hierarchy — are all provided with the same semantics.
//
// A Cell packs (resolution, q, r) into a uint64 so it can be used
// directly as a map key and as an actor-registry name.
//
// Known distortions, both documented consequences of the projection:
// the sinusoidal plane shears meridians away from the central one, so a
// fixed geographic radius can span more hexagon steps at high latitude
// and longitude (use DiskCovering, which compensates, when coverage of a
// geographic radius must be guaranteed), and cells touching the
// antimeridian seam are not adjacent to their geographic neighbours on
// the other side. The paper's evaluation regions (European coverage,
// Aegean) sit well away from both extremes.
package hexgrid

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"seatwin/internal/geo"
)

// MaxResolution is the finest supported resolution.
const MaxResolution = 15

// resolution 0 hexagons have a circumradius of 8 degrees (~890 km);
// every subsequent resolution halves the radius (aperture 4).
const res0Radius = 8.0

const (
	coordBits = 29
	coordBias = 1 << (coordBits - 1) // center the signed axial range
	coordMask = 1<<coordBits - 1
)

// Cell identifies one hexagon of the grid. The zero Cell is invalid.
type Cell uint64

// InvalidCell is returned for out-of-domain inputs.
const InvalidCell Cell = 0

func makeCell(res, q, r int) Cell {
	if q < -coordBias || q >= coordBias || r < -coordBias || r >= coordBias {
		return InvalidCell
	}
	return Cell(uint64(res+1)<<(2*coordBits) |
		uint64(q+coordBias)<<coordBits |
		uint64(r+coordBias))
}

// Resolution returns the cell's resolution in [0, MaxResolution], or -1
// for the invalid cell.
func (c Cell) Resolution() int {
	return int(uint64(c)>>(2*coordBits)) - 1
}

// Valid reports whether the cell is a well-formed grid address.
func (c Cell) Valid() bool {
	r := c.Resolution()
	return r >= 0 && r <= MaxResolution
}

func (c Cell) axial() (q, r int) {
	q = int(uint64(c)>>coordBits&coordMask) - coordBias
	r = int(uint64(c)&coordMask) - coordBias
	return q, r
}

// String renders the cell as res:q:r for logging and actor names.
func (c Cell) String() string {
	if !c.Valid() {
		return "hex:invalid"
	}
	q, r := c.axial()
	return fmt.Sprintf("hex:%d:%d:%d", c.Resolution(), q, r)
}

// ParseCell parses the "hex:<res>:<q>:<r>" form produced by
// Cell.String back into a Cell (the feed layer accepts cell tokens as
// region subscription keys).
func ParseCell(s string) (Cell, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 || parts[0] != "hex" {
		return InvalidCell, fmt.Errorf("hexgrid: malformed cell %q", s)
	}
	var nums [3]int
	for i, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil {
			return InvalidCell, fmt.Errorf("hexgrid: malformed cell %q", s)
		}
		nums[i] = v
	}
	res, q, r := nums[0], nums[1], nums[2]
	if res < 0 || res > MaxResolution {
		return InvalidCell, fmt.Errorf("hexgrid: resolution %d out of range", res)
	}
	c := makeCell(res, q, r)
	if !c.Valid() {
		return InvalidCell, fmt.Errorf("hexgrid: coordinates of %q out of range", s)
	}
	return c, nil
}

// Radius returns the circumradius of hexagons at the given resolution,
// expressed in projected degrees.
func Radius(res int) float64 {
	return res0Radius / float64(uint(1)<<uint(res))
}

// EdgeLengthMeters returns the approximate edge length of cells at the
// given resolution, in meters. For a regular hexagon the edge length
// equals the circumradius.
func EdgeLengthMeters(res int) float64 {
	perLat, _ := geo.MetersPerDegree(0)
	return Radius(res) * perLat
}

// ResolutionForEdge returns the coarsest resolution whose cell edge is at
// most the requested length in meters, clamped to the supported range.
func ResolutionForEdge(maxEdgeMeters float64) int {
	for res := 0; res <= MaxResolution; res++ {
		if EdgeLengthMeters(res) <= maxEdgeMeters {
			return res
		}
	}
	return MaxResolution
}

// project maps a geographic point onto the sinusoidal plane (x easting,
// y northing, both in degrees).
func project(p geo.Point) (x, y float64) {
	lat := p.Lat
	if lat > 89.9 {
		lat = 89.9
	} else if lat < -89.9 {
		lat = -89.9
	}
	return geo.NormalizeLon(p.Lon) * math.Cos(lat*math.Pi/180), lat
}

// unproject maps a plane point back to geographic coordinates.
func unproject(x, y float64) geo.Point {
	lat := y
	if lat > 89.9 {
		lat = 89.9
	} else if lat < -89.9 {
		lat = -89.9
	}
	c := math.Cos(lat * math.Pi / 180)
	lon := x / c
	return geo.Point{Lat: lat, Lon: geo.NormalizeLon(lon)}
}

// Pointy-top axial basis: given circumradius R,
//
//	x = R * sqrt(3) * (q + r/2)
//	y = R * 3/2 * r
func axialToPlane(res, q, r int) (x, y float64) {
	rad := Radius(res)
	x = rad * math.Sqrt(3) * (float64(q) + float64(r)/2)
	y = rad * 1.5 * float64(r)
	return x, y
}

func planeToAxial(res int, x, y float64) (q, r int) {
	rad := Radius(res)
	qf := (math.Sqrt(3)/3*x - y/3) / rad
	rf := (2.0 / 3 * y) / rad
	return hexRound(qf, rf)
}

// hexRound rounds fractional axial coordinates to the containing hexagon
// using cube-coordinate rounding.
func hexRound(qf, rf float64) (int, int) {
	sf := -qf - rf
	q := math.Round(qf)
	r := math.Round(rf)
	s := math.Round(sf)
	dq := math.Abs(q - qf)
	dr := math.Abs(r - rf)
	ds := math.Abs(s - sf)
	switch {
	case dq > dr && dq > ds:
		q = -r - s
	case dr > ds:
		r = -q - s
	}
	return int(q), int(r)
}

// LatLonToCell returns the cell containing p at the given resolution.
func LatLonToCell(p geo.Point, res int) Cell {
	if res < 0 || res > MaxResolution || !p.Valid() {
		return InvalidCell
	}
	x, y := project(p)
	q, r := planeToAxial(res, x, y)
	return makeCell(res, q, r)
}

// Center returns the centroid of the cell in geographic coordinates.
func (c Cell) Center() geo.Point {
	if !c.Valid() {
		return geo.Point{}
	}
	q, r := c.axial()
	x, y := axialToPlane(c.Resolution(), q, r)
	return unproject(x, y)
}

// Boundary returns the six corners of the cell in geographic
// coordinates, counter-clockwise.
func (c Cell) Boundary() []geo.Point {
	if !c.Valid() {
		return nil
	}
	res := c.Resolution()
	q, r := c.axial()
	cx, cy := axialToPlane(res, q, r)
	rad := Radius(res)
	pts := make([]geo.Point, 0, 6)
	for i := 0; i < 6; i++ {
		// pointy-top corners at 30 + 60*i degrees
		ang := (math.Pi / 180) * (60*float64(i) + 30)
		pts = append(pts, unproject(cx+rad*math.Cos(ang), cy+rad*math.Sin(ang)))
	}
	return pts
}

// axialDirections are the six neighbour offsets in axial coordinates.
var axialDirections = [6][2]int{
	{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1},
}

// Neighbors returns the six cells adjacent to c.
func (c Cell) Neighbors() []Cell {
	if !c.Valid() {
		return nil
	}
	res := c.Resolution()
	q, r := c.axial()
	out := make([]Cell, 0, 6)
	for _, d := range axialDirections {
		if n := makeCell(res, q+d[0], r+d[1]); n != InvalidCell {
			out = append(out, n)
		}
	}
	return out
}

// GridDisk returns all cells within k hexagon steps of c, including c
// itself: 1 + 3k(k+1) cells (H3's kRing).
func (c Cell) GridDisk(k int) []Cell {
	if !c.Valid() || k < 0 {
		return nil
	}
	return c.AppendGridDisk(make([]Cell, 0, 1+3*k*(k+1)), k)
}

// AppendGridDisk appends the k-disk of c to dst and returns the
// extended slice — the allocation-free variant hot paths use with a
// reused scratch slice.
func (c Cell) AppendGridDisk(dst []Cell, k int) []Cell {
	if !c.Valid() || k < 0 {
		return dst
	}
	res := c.Resolution()
	cq, cr := c.axial()
	for dq := -k; dq <= k; dq++ {
		lo := max(-k, -dq-k)
		hi := min(k, -dq+k)
		for dr := lo; dr <= hi; dr++ {
			if cell := makeCell(res, cq+dq, cr+dr); cell != InvalidCell {
				dst = append(dst, cell)
			}
		}
	}
	return dst
}

// GridRing returns the cells exactly k steps from c (6k cells for k>0).
func (c Cell) GridRing(k int) []Cell {
	if !c.Valid() || k < 0 {
		return nil
	}
	if k == 0 {
		return []Cell{c}
	}
	res := c.Resolution()
	q, r := c.axial()
	// Walk to the ring start then traverse its six sides.
	q += axialDirections[4][0] * k
	r += axialDirections[4][1] * k
	out := make([]Cell, 0, 6*k)
	for side := 0; side < 6; side++ {
		for step := 0; step < k; step++ {
			if cell := makeCell(res, q, r); cell != InvalidCell {
				out = append(out, cell)
			}
			q += axialDirections[side][0]
			r += axialDirections[side][1]
		}
	}
	return out
}

// GridDistance returns the hex-step distance between two cells of the
// same resolution, or -1 when the cells are incomparable.
func GridDistance(a, b Cell) int {
	if !a.Valid() || !b.Valid() || a.Resolution() != b.Resolution() {
		return -1
	}
	aq, ar := a.axial()
	bq, br := b.axial()
	dq := aq - bq
	dr := ar - br
	ds := -dq - dr
	return (abs(dq) + abs(dr) + abs(ds)) / 2
}

// Parent returns the cell at the next-coarser resolution whose centroid
// region contains this cell's centroid. Like H3's aperture-7 hierarchy,
// containment is approximate at cell borders.
func (c Cell) Parent() Cell {
	res := c.Resolution()
	if res <= 0 {
		return InvalidCell
	}
	return LatLonToCell(c.Center(), res-1)
}

// ParentAt returns the ancestor of c at the given coarser resolution.
func (c Cell) ParentAt(res int) Cell {
	cur := c
	for cur.Valid() && cur.Resolution() > res {
		cur = cur.Parent()
	}
	if !cur.Valid() || cur.Resolution() != res {
		return InvalidCell
	}
	return cur
}

// Children returns the cells at the next-finer resolution whose
// centroids fall inside this cell (approximately 4 for the aperture-4
// hierarchy).
func (c Cell) Children() []Cell {
	res := c.Resolution()
	if !c.Valid() || res >= MaxResolution {
		return nil
	}
	// Candidate fine cells within two steps of the projected center.
	center := LatLonToCell(c.Center(), res+1)
	var out []Cell
	for _, cand := range center.GridDisk(2) {
		if cand.Parent() == c {
			out = append(out, cand)
		}
	}
	return out
}

// Cover returns the set of cells at the given resolution whose centers
// fall inside the bounding box, useful for rasterising a region.
func Cover(b geo.BBox, res int) []Cell {
	if res < 0 || res > MaxResolution {
		return nil
	}
	step := Radius(res) // sample at sub-cell spacing to not miss rows
	seen := make(map[Cell]struct{})
	var out []Cell
	for lat := b.MinLat; lat <= b.MaxLat+step; lat += step {
		for lon := b.MinLon; lon <= b.MaxLon+step; lon += step {
			p := geo.Point{Lat: math.Min(lat, b.MaxLat), Lon: math.Min(lon, b.MaxLon)}
			c := LatLonToCell(p, res)
			if c == InvalidCell {
				continue
			}
			if _, ok := seen[c]; !ok {
				if b.Contains(c.Center()) {
					seen[c] = struct{}{}
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// DiskCovering returns the set of cells at the given resolution that is
// guaranteed to contain every point within radiusMeters of p, taking the
// projection's local shear into account. The proximity and collision
// actors use it to decide which cell actors a position or forecast must
// be shared with so that no geographically close pair is split across
// unexamined cells.
func DiskCovering(p geo.Point, res int, radiusMeters float64) []Cell {
	return AppendDiskCovering(nil, p, res, radiusMeters)
}

// AppendDiskCovering is DiskCovering appending into dst — the
// allocation-free variant for per-report fan-out with reused scratch.
func AppendDiskCovering(dst []Cell, p geo.Point, res int, radiusMeters float64) []Cell {
	c := LatLonToCell(p, res)
	if c == InvalidCell {
		return dst
	}
	perLat, _ := geo.MetersPerDegree(0)
	planeDeg := radiusMeters / perLat
	// Local shear of the sinusoidal projection: a north-south geographic
	// displacement dy drags x by lon*sin(lat)*(pi/180)*dy.
	shear := math.Abs(geo.NormalizeLon(p.Lon)*math.Sin(p.Lat*math.Pi/180)) * math.Pi / 180
	maxPlane := planeDeg * (1 + shear)
	// Grid distance k spans at least 1.5*R*k in the plane (hexagon
	// apothem stacking), so this k covers maxPlane.
	k := int(math.Ceil(maxPlane / (1.5 * Radius(res)))) // ≥ 0
	return c.AppendGridDisk(dst, k)
}

// TraceLine returns the distinct cells visited along the segment from a
// to b (inclusive of both endpoints' cells), in travel order. It
// samples the segment at half-edge spacing, which cannot skip a cell of
// the given resolution. Segments crossing the antimeridian seam return
// only the cells on each side (documented projection limitation).
func TraceLine(a, b geo.Point, res int) []Cell {
	return AppendTraceLine(nil, a, b, res)
}

// AppendTraceLine is TraceLine appending into dst — the allocation-free
// variant for tracing many forecast segments through one reused scratch
// slice. The "distinct, in travel order" contract applies to the cells
// appended by this call, not across the whole of dst.
func AppendTraceLine(dst []Cell, a, b geo.Point, res int) []Cell {
	ca := LatLonToCell(a, res)
	cb := LatLonToCell(b, res)
	if ca == InvalidCell || cb == InvalidCell {
		return dst
	}
	if ca == cb {
		return append(dst, ca)
	}
	dist := geo.Haversine(a, b)
	// Half-edge sampling cannot skip a cell in the projected plane; the
	// geographic step shrinks by the local shear factor (see the
	// package distortion notes).
	mid := geo.Midpoint(a, b)
	shear := math.Abs(geo.NormalizeLon(mid.Lon)*math.Sin(mid.Lat*math.Pi/180)) * math.Pi / 180
	step := EdgeLengthMeters(res) / (2 * (1 + shear))
	n := int(dist/step) + 1
	dst = append(dst, ca)
	last := ca
	for i := 1; i <= n; i++ {
		p := geo.Interpolate(a, b, float64(i)/float64(n))
		c := LatLonToCell(p, res)
		if c != InvalidCell && c != last {
			dst = append(dst, c)
			last = c
		}
	}
	if last != cb {
		dst = append(dst, cb)
	}
	return dst
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

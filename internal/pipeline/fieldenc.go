package pipeline

import "seatwin/internal/kvstore"

// fieldEncoder builds a []kvstore.Field document with one allocation
// for all encoded values: numeric fields are appended into a shared
// byte buffer with strconv.Append*/AppendFormat, and finish converts
// the buffer to a string once, slicing each field's value out of it.
// Constant-string values (status names, cached static names) are added
// with direct and never copied at all.
//
// The encoder is owned by one writer actor (single-threaded), so the
// buffer and field slices are reused across states with no locking.
type fieldEncoder struct {
	buf    []byte
	fields []kvstore.Field
	// ends[i] is the end offset of field i's value in buf, or -1 for a
	// direct (pre-existing string) value.
	ends []int
}

// reset prepares the encoder for the next document.
func (e *fieldEncoder) reset() {
	e.buf = e.buf[:0]
	e.fields = e.fields[:0]
	e.ends = e.ends[:0]
}

// commit seals the bytes appended to e.buf since the previous commit
// as the value of name.
func (e *fieldEncoder) commit(name string) {
	e.fields = append(e.fields, kvstore.Field{Name: name})
	e.ends = append(e.ends, len(e.buf))
}

// direct adds a field whose value is an existing string, bypassing the
// buffer.
func (e *fieldEncoder) direct(name, value string) {
	e.fields = append(e.fields, kvstore.Field{Name: name, Value: value})
	e.ends = append(e.ends, -1)
}

// finish materialises the buffer as one string and resolves every
// committed field's value as a substring of it. The returned slice is
// valid until the next reset.
func (e *fieldEncoder) finish() []kvstore.Field {
	s := string(e.buf)
	start := 0
	for i := range e.fields {
		if end := e.ends[i]; end >= 0 {
			e.fields[i].Value = s[start:end]
			start = end
		}
	}
	return e.fields
}

package events

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// The grid detectors are fast paths, not approximations: on identical
// input streams they must emit the identical event set as the map-scan
// oracles — same pairs, same timestamps, distances and positions within
// 1e-9 (in practice bitwise), same cooldown suppression. These tests
// drive both side by side and compare per update.

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		return a.Meters < b.Meters
	})
}

func compareEventSets(t *testing.T, label string, scan, grid []Event) {
	t.Helper()
	if len(scan) != len(grid) {
		t.Fatalf("%s: oracle emitted %d events, grid %d\noracle: %v\ngrid:   %v",
			label, len(scan), len(grid), scan, grid)
	}
	sortEvents(scan)
	sortEvents(grid)
	for i := range scan {
		a, b := scan[i], grid[i]
		if a.Kind != b.Kind || a.A != b.A || a.B != b.B ||
			!a.At.Equal(b.At) || !a.DetectedAt.Equal(b.DetectedAt) {
			t.Fatalf("%s: event %d differs\noracle: %+v\ngrid:   %+v", label, i, a, b)
		}
		if math.Abs(a.Meters-b.Meters) > 1e-9 ||
			math.Abs(a.Pos.Lat-b.Pos.Lat) > 1e-9 || math.Abs(a.Pos.Lon-b.Pos.Lon) > 1e-9 {
			t.Fatalf("%s: event %d numeric mismatch\noracle: %+v\ngrid:   %+v", label, i, a, b)
		}
	}
}

// runProximityParity replays a fleetsim world through per-cell oracle
// and grid detectors (sharded by res-9 hexgrid cell exactly like the
// pipeline's cell actors) and returns the number of events both sides
// agreed on.
func runProximityParity(t *testing.T, w *fleetsim.World, d time.Duration) int {
	t.Helper()
	cfg := DefaultProximityConfig()
	oracles := map[hexgrid.Cell]*ProximityDetector{}
	grids := map[hexgrid.Cell]*GridProximityDetector{}
	events := 0
	w.Run(d, func(r fleetsim.Report) {
		pos := geo.Point{Lat: r.Pos.Lat, Lon: r.Pos.Lon}
		cell := hexgrid.LatLonToCell(pos, 9)
		o := oracles[cell]
		if o == nil {
			o = NewProximityDetector(cfg)
			oracles[cell] = o
		}
		g := grids[cell]
		if g == nil {
			g = NewGridProximityDetector(cfg)
			grids[cell] = g
		}
		sc := append([]Event(nil), o.Update(r.Pos.MMSI, pos, r.At)...)
		gr := append([]Event(nil), g.Update(r.Pos.MMSI, pos, r.At)...)
		compareEventSets(t, "proximity", sc, gr)
		events += len(sc)
	})
	for cell, o := range oracles {
		if g := grids[cell]; o.Size() != g.Size() {
			t.Fatalf("cell %v: oracle tracks %d vessels, grid %d", cell, o.Size(), g.Size())
		}
	}
	return events
}

func TestGridProximityParityDenseStrait(t *testing.T) {
	w := fleetsim.DenseStraitWorld(150, 7)
	events := runProximityParity(t, w, 6*time.Minute)
	if events == 0 {
		t.Fatal("dense strait produced no proximity events; parity run is vacuous")
	}
}

func TestGridProximityParitySparseAegean(t *testing.T) {
	w := fleetsim.NewWorld(fleetsim.Config{
		Vessels: 50, Seed: 11, Region: geo.AegeanSea, KeepSailing: true,
	})
	runProximityParity(t, w, 10*time.Minute)
}

// collisionFleet is a deterministic set of crossing straight-line
// tracks; forecasts are the 3-point kinematic shape (now, +2 min,
// +4 min) so oracle pair checks stay affordable under -race.
type collisionFleet struct {
	mmsi []ais.MMSI
	pos  []geo.Point
	cog  []float64
	sog  []float64
}

func newCollisionFleet(n int, radiusMeters float64, seed int64) *collisionFleet {
	rng := rand.New(rand.NewSource(seed))
	center := geo.Point{Lat: 1.2, Lon: 103.8}
	f := &collisionFleet{
		mmsi: make([]ais.MMSI, n),
		pos:  make([]geo.Point, n),
		cog:  make([]float64, n),
		sog:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		f.mmsi[i] = ais.MMSI(200000000 + i)
		f.pos[i] = geo.Destination(center, rng.Float64()*360, rng.Float64()*radiusMeters)
		f.cog[i] = rng.Float64() * 360
		f.sog[i] = 8 + rng.Float64()*10
	}
	return f
}

func (f *collisionFleet) forecast(i int, now time.Time) Forecast {
	return Forecast{MMSI: f.mmsi[i], Points: []ForecastPoint{
		{Pos: f.pos[i], At: now},
		{Pos: geo.DeadReckon(f.pos[i], f.sog[i], f.cog[i], 120), At: now.Add(2 * time.Minute)},
		{Pos: geo.DeadReckon(f.pos[i], f.sog[i], f.cog[i], 240), At: now.Add(4 * time.Minute)},
	}}
}

func (f *collisionFleet) advance(i int, dtSeconds float64) {
	f.pos[i] = geo.DeadReckon(f.pos[i], f.sog[i], f.cog[i], dtSeconds)
}

func runCollisionParity(t *testing.T, cfg CollisionConfig, fleet *collisionFleet, steps int) int {
	t.Helper()
	oracle := NewDetector(cfg, 10*time.Minute)
	grid := NewGridDetector(cfg, 10*time.Minute)
	events := 0
	for step := 0; step < steps; step++ {
		now := t0.Add(time.Duration(step) * 30 * time.Second)
		for i := range fleet.mmsi {
			fleet.advance(i, 30)
			f := fleet.forecast(i, now)
			sc := append([]Event(nil), oracle.Update(f, now)...)
			gr := append([]Event(nil), grid.Update(f, now)...)
			compareEventSets(t, "collision", sc, gr)
			events += len(sc)
		}
	}
	if oracle.Size() != grid.Size() {
		t.Fatalf("oracle tracks %d forecasts, grid %d", oracle.Size(), grid.Size())
	}
	return events
}

func TestGridCollisionParityDense(t *testing.T) {
	fleet := newCollisionFleet(16, 3000, 42)
	events := runCollisionParity(t, DefaultCollisionConfig(), fleet, 6)
	if events == 0 {
		t.Fatal("dense fleet produced no collision events; parity run is vacuous")
	}
}

func TestGridCollisionParitySparse(t *testing.T) {
	// Vessels ~80 km apart: the circle prune must reject everything and
	// the oracle must agree that nothing pairs.
	fleet := newCollisionFleet(20, 400000, 9)
	events := runCollisionParity(t, DefaultCollisionConfig(), fleet, 4)
	if events != 0 {
		t.Fatalf("sparse fleet unexpectedly produced %d events", events)
	}
}

// A temporal threshold that is not a whole number of checkSteps
// disables the precomputed-track sweep; the fallback must still match
// the oracle exactly.
func TestGridCollisionParityFallback(t *testing.T) {
	cfg := CollisionConfig{TemporalThreshold: 100 * time.Second, SpatialThresholdMeters: 1852}
	fleet := newCollisionFleet(10, 3000, 17)
	grid := NewGridDetector(cfg, 0)
	if grid.fastPath {
		t.Fatal("100s threshold should not take the tick-aligned fast path")
	}
	events := runCollisionParity(t, cfg, fleet, 4)
	if events == 0 {
		t.Fatal("fallback scenario produced no events; parity run is vacuous")
	}
}

// Satellite regression: the oracle's cooldown map grows without bound
// (one entry per pair ever seen). The grid detector's time-bucketed
// expiry must keep both the cooldown map and the tracked-vessel arena
// bounded by the *active* population under pair churn.
func TestGridProximityCooldownBoundedUnderChurn(t *testing.T) {
	cfg := ProximityConfig{ThresholdMeters: 500, TimeWindow: time.Minute, Cooldown: 30 * time.Second}
	g := NewGridProximityDetector(cfg)
	base := geo.Point{Lat: 1.2, Lon: 103.5}
	emitted := 0
	const pairs = 5000
	for i := 0; i < pairs; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		// A fresh pair each second, 0.05° (~5.6 km) from its neighbours
		// so pairs never cross-trigger; positions recycle every 400 s,
		// long after both the cooldown and the staleness horizon.
		pos := geo.Point{Lat: base.Lat, Lon: base.Lon + float64(i%400)*0.05}
		a := ais.MMSI(300000000 + 2*i)
		b := ais.MMSI(300000000 + 2*i + 1)
		g.Update(a, pos, at)
		emitted += len(g.Update(b, pos, at))
	}
	if emitted != pairs {
		t.Fatalf("churn emitted %d events, want one per pair (%d)", emitted, pairs)
	}
	// Live cooldown entries: only pairs within one Cooldown plus one
	// expiry bucket (~38 s) of the end. The oracle would hold all 5000.
	if cs := g.CooldownSize(); cs > 200 {
		t.Fatalf("cooldown map not bounded under churn: %d live entries", cs)
	}
	// Tracked vessels: only those within the 2×TimeWindow staleness
	// horizon (~240 of 10000 seen).
	if sz := g.Size(); sz > 400 {
		t.Fatalf("vessel arena not bounded under churn: %d live slots", sz)
	}
}

// Satellite regression: a full cell's update cost must not scale with
// the number of expired entries. After a mass expiry, the eviction ring
// must be fully drained (one amortized pass) and subsequent updates
// must inspect zero dead candidates.
func TestGridCollisionExpiryCostIndependentOfDeadEntries(t *testing.T) {
	d := NewGridDetector(DefaultCollisionConfig(), 10*time.Minute)
	mk := func(mmsi int, pos geo.Point, now time.Time) Forecast {
		return Forecast{MMSI: ais.MMSI(mmsi), Points: []ForecastPoint{
			{Pos: pos, At: now},
			{Pos: geo.DeadReckon(pos, 12, 45, 120), At: now.Add(2 * time.Minute)},
			{Pos: geo.DeadReckon(pos, 12, 45, 240), At: now.Add(4 * time.Minute)},
		}}
	}
	// 3000 forecasts on a ~77 km grid: far enough apart that no probe
	// ever finds a candidate, so they are pure dead weight once stale.
	const dead = 3000
	for i := 0; i < dead; i++ {
		pos := geo.Point{Lat: 10 + float64(i/100)*0.7, Lon: -170 + float64(i%100)*0.7}
		d.Update(mk(600000000+i, pos, t0), t0)
	}
	if d.Stats().Candidates != 0 {
		t.Fatalf("spread-out prepopulation should probe no candidates, got %d", d.Stats().Candidates)
	}
	preEvicted := d.Stats().Evicted
	now := t0.Add(11 * time.Minute)
	d.Update(mk(700000000, geo.Point{Lat: 50, Lon: 10}, now), now)
	if got := d.Stats().Evicted - preEvicted; got != dead {
		t.Fatalf("amortized drain evicted %d entries, want %d", got, dead)
	}
	if d.ring.n != 1 { // only the fresh vessel's own record remains
		t.Fatalf("eviction ring holds %d records after drain, want 1", d.ring.n)
	}
	if d.Size() != 1 {
		t.Fatalf("detector tracks %d forecasts after expiry, want 1", d.Size())
	}
	// Post-expiry updates (again spread out) must do zero dead work.
	preCand := d.Stats().Candidates
	for i := 0; i < 50; i++ {
		pos := geo.Point{Lat: 50 + float64(i+1)*0.7, Lon: 10}
		now = now.Add(time.Second)
		d.Update(mk(700000001+i, pos, now), now)
	}
	if got := d.Stats().Candidates - preCand; got != 0 {
		t.Fatalf("updates after mass expiry inspected %d candidates, want 0", got)
	}
}

package actor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventStreamPublishSubscribe(t *testing.T) {
	es := NewEventStream()
	var got atomic.Int64
	unsub := es.Subscribe(func(any) { got.Add(1) })
	es.Publish("a")
	es.Publish("b")
	unsub()
	es.Publish("c")
	if got.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2", got.Load())
	}
	if es.Len() != 0 {
		t.Fatalf("len %d after unsubscribe", es.Len())
	}
}

// TestEventStreamReentrantSubscribe: a handler may call Subscribe (or
// its own unsubscribe) during Publish. Before the handler snapshot fix
// this deadlocked: Publish held the read lock while the handler's
// Subscribe requested the write lock, and Go's writer-preferring
// RWMutex admits no new readers with a writer waiting.
func TestEventStreamReentrantSubscribe(t *testing.T) {
	es := NewEventStream()
	var nested atomic.Int64
	var unsubOnce sync.Once
	var unsub func()
	unsub = es.Subscribe(func(ev any) {
		// Re-entrant subscribe AND unsubscribe from inside a handler.
		es.Subscribe(func(any) { nested.Add(1) })
		unsubOnce.Do(func() { unsub() })
	})

	done := make(chan struct{})
	go func() {
		es.Publish("first")
		es.Publish("second")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish deadlocked on a re-entrant Subscribe")
	}
	// First publish: outer handler ran, added one nested handler, then
	// removed itself. Second publish: only the nested handler runs.
	if nested.Load() != 1 {
		t.Fatalf("nested handler ran %d times, want 1", nested.Load())
	}
	if es.Len() != 1 {
		t.Fatalf("len %d, want 1", es.Len())
	}
}

// TestEventStreamConcurrentPublishSubscribe hammers Publish against
// Subscribe/unsubscribe churn; meaningful under -race.
func TestEventStreamConcurrentPublishSubscribe(t *testing.T) {
	es := NewEventStream()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					unsub := es.Subscribe(func(any) {})
					unsub()
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				es.Publish(j)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

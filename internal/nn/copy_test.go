package nn

import (
	"testing"
)

func TestCopyWeightsFrom(t *testing.T) {
	cfg := Config{InputDim: 3, Hidden: 8, OutputDim: 4, Bidirectional: true, Seed: 1}
	src, err := NewSeqRegressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 2 // different init; seeds may differ across a copy
	dst, err := NewSeqRegressor(cfg2)
	if err != nil {
		t.Fatal(err)
	}

	seq := [][]float64{{0.1, 0.2, 0.3}, {0.2, -0.1, 0.4}, {-0.3, 0.2, 0.1}}
	if same(src.Predict(seq), dst.Predict(seq)) {
		t.Fatal("differently seeded networks must differ before the copy")
	}
	if err := dst.CopyWeightsFrom(src); err != nil {
		t.Fatal(err)
	}
	if !same(src.Predict(seq), dst.Predict(seq)) {
		t.Fatal("networks must agree exactly after CopyWeightsFrom")
	}

	// Copies must be deep: training the destination must not move the
	// source.
	before := src.Predict(seq)
	dst.Fit([]Sample{{Seq: seq, Target: []float64{1, -1, 0.5, -0.5}}}, FitOptions{Epochs: 2, BatchSize: 1, LR: 0.01})
	if !same(before, src.Predict(seq)) {
		t.Fatal("training the copy moved the source: weights are shared")
	}

	bad, err := NewSeqRegressor(Config{InputDim: 3, Hidden: 4, OutputDim: 4, Bidirectional: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.CopyWeightsFrom(bad); err == nil {
		t.Fatal("copy across shapes must fail")
	}
}

func same(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

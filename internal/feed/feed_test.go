package feed

import (
	"encoding/json"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

var tRef = time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)

func testState(mmsi ais.MMSI, p geo.Point) State {
	return State{
		MMSI: mmsi, Lat: p.Lat, Lon: p.Lon, SOG: 12, COG: 90,
		Status: "under way using engine", TS: tRef,
	}
}

func testEvent(kind events.Kind, a, b ais.MMSI, p geo.Point) events.Event {
	return events.Event{Kind: kind, A: a, B: b, At: tRef, Pos: p, Meters: 250}
}

// recvOne waits for one frame with a timeout (tests must never hang on
// a missing frame).
func recvOne(t *testing.T, sub *Subscription) Delivery {
	t.Helper()
	type res struct {
		d  Delivery
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		d, ok := sub.Recv()
		ch <- res{d, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatalf("subscription closed while waiting for a frame: %v", sub.Err())
		}
		return r.d
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within 5s")
		return Delivery{}
	}
}

func TestVesselTopicRouting(t *testing.T) {
	h := NewHub(Options{})
	sub, err := h.Subscribe([]string{TopicVesselPrefix + ais.MMSI(237000001).String()}, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	h.PublishState(testState(237000001, geo.Point{Lat: 37.5, Lon: 24.5}))
	h.PublishState(testState(999000009, geo.Point{Lat: 37.5, Lon: 24.5})) // other vessel

	d := recvOne(t, sub)
	if d.Type != "state" {
		t.Fatalf("type %q", d.Type)
	}
	var doc map[string]any
	if err := json.Unmarshal(d.Data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["mmsi"] != "237000001" || doc["type"] != "state" {
		t.Fatalf("frame: %v", doc)
	}
	// The other vessel's frame must not arrive.
	if got := h.Snapshot().Fanned; got != 1 {
		t.Fatalf("fanned %d frames, want 1", got)
	}
}

func TestRegionAndEventRouting(t *testing.T) {
	h := NewHub(Options{RegionResolution: 7})
	pos := geo.Point{Lat: 37.5, Lon: 24.5}
	far := geo.Point{Lat: 52.0, Lon: 4.0}

	regionSub, err := h.SubscribeRequest(Request{Regions: []string{"37.5,24.5"}})
	if err != nil {
		t.Fatal(err)
	}
	defer regionSub.Close()
	evSub, err := h.SubscribeRequest(Request{Events: []string{"collision", "gap"}})
	if err != nil {
		t.Fatal(err)
	}
	defer evSub.Close()

	h.PublishState(testState(111000001, far)) // outside the region
	h.PublishState(testState(111000002, pos)) // inside
	h.PublishEvent(testEvent(events.KindProximity, 1, 2, pos))        // class not subscribed
	h.PublishEvent(testEvent(events.KindCollisionForecast, 3, 4, pos)) // subscribed

	d := recvOne(t, regionSub)
	var st struct {
		MMSI string `json:"mmsi"`
		Cell string `json:"cell"`
	}
	if err := json.Unmarshal(d.Data, &st); err != nil {
		t.Fatal(err)
	}
	if st.MMSI != "111000002" {
		t.Fatalf("region subscriber saw %q", st.MMSI)
	}
	if want := hexgrid.LatLonToCell(pos, 7).String(); st.Cell != want {
		t.Fatalf("cell %q, want %q", st.Cell, want)
	}

	e := recvOne(t, evSub)
	var ev struct {
		Type  string `json:"type"`
		Class string `json:"class"`
		Kind  string `json:"kind"`
		A     string `json:"a"`
		B     string `json:"b"`
	}
	if err := json.Unmarshal(e.Data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != "event" || ev.Class != "collision" || ev.Kind != "collision-forecast" {
		t.Fatalf("event frame: %+v", ev)
	}
	if ev.A != "000000003" || ev.B != "000000004" {
		t.Fatalf("pair: %+v", ev)
	}
}

// TestMultiTopicDedup: a subscriber on both the vessel and its region
// receives a matching frame exactly once.
func TestMultiTopicDedup(t *testing.T) {
	h := NewHub(Options{RegionResolution: 7})
	pos := geo.Point{Lat: 37.5, Lon: 24.5}
	sub, err := h.SubscribeRequest(Request{
		Vessels: []string{"237000001"},
		Regions: []string{"37.5,24.5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if len(sub.Topics()) != 2 {
		t.Fatalf("topics: %v", sub.Topics())
	}
	h.PublishState(testState(237000001, pos))
	recvOne(t, sub)
	if got := h.Snapshot().Fanned; got != 1 {
		t.Fatalf("fanned %d, want 1 (deduped)", got)
	}
}

func TestDropOldestPolicy(t *testing.T) {
	h := NewHub(Options{})
	sub, err := h.Subscribe([]string{TopicProximity}, SubOptions{Buffer: 4, Policy: PolicyDropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 10; i++ {
		h.PublishEvent(testEvent(events.KindProximity, ais.MMSI(100+i), ais.MMSI(200+i), geo.Point{Lat: 37, Lon: 24}))
	}
	// The 4 newest survive; the first delivered is the 7th published.
	d := recvOne(t, sub)
	var ev struct {
		A string `json:"a"`
	}
	json.Unmarshal(d.Data, &ev)
	if ev.A != ais.MMSI(106).String() {
		t.Fatalf("first surviving frame from %q, want %q", ev.A, ais.MMSI(106).String())
	}
	if s := h.Snapshot(); s.Dropped != 6 {
		t.Fatalf("dropped %d, want 6", s.Dropped)
	}
}

func TestConflatePolicyKeepsNewestPerVessel(t *testing.T) {
	h := NewHub(Options{})
	mmsiA, mmsiB := ais.MMSI(237000001), ais.MMSI(237000002)
	sub, err := h.Subscribe(
		[]string{TopicVesselPrefix + mmsiA.String(), TopicVesselPrefix + mmsiB.String()},
		SubOptions{Buffer: 8, Policy: PolicyConflate})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// 50 updates per vessel while the consumer sleeps: conflation keeps
	// one buffered frame per vessel, the newest.
	for i := 0; i < 50; i++ {
		h.PublishState(testState(mmsiA, geo.Point{Lat: 37.0 + float64(i)/1000, Lon: 24.5}))
		h.PublishState(testState(mmsiB, geo.Point{Lat: 38.0 + float64(i)/1000, Lon: 24.5}))
	}
	got := map[string]float64{}
	for i := 0; i < 2; i++ {
		d := recvOne(t, sub)
		var st struct {
			MMSI string  `json:"mmsi"`
			Lat  float64 `json:"lat"`
		}
		if err := json.Unmarshal(d.Data, &st); err != nil {
			t.Fatal(err)
		}
		got[st.MMSI] = st.Lat
	}
	if math.Abs(got[mmsiA.String()]-37.049) > 1e-9 || math.Abs(got[mmsiB.String()]-38.049) > 1e-9 {
		t.Fatalf("conflated frames: %v", got)
	}
	s := h.Snapshot()
	if s.Conflated != 98 {
		t.Fatalf("conflated %d, want 98", s.Conflated)
	}
	if s.Dropped != 0 {
		t.Fatalf("dropped %d, want 0", s.Dropped)
	}
}

func TestDisconnectPolicyEvictsSlowConsumer(t *testing.T) {
	h := NewHub(Options{})
	sub, err := h.Subscribe([]string{TopicGap}, SubOptions{Buffer: 2, Policy: PolicyDisconnect})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.PublishEvent(testEvent(events.KindSwitchOff, ais.MMSI(100+i), 0, geo.Point{Lat: 37, Lon: 24}))
	}
	// The consumer never read: the third publish overflowed and closed it.
	if _, ok := sub.Recv(); ok {
		t.Fatal("Recv succeeded on a disconnected subscription")
	}
	if sub.Err() != ErrSlowConsumer {
		t.Fatalf("err = %v", sub.Err())
	}
	s := h.Snapshot()
	if s.Disconnected != 1 || s.Subscribers != 0 {
		t.Fatalf("stats after disconnect: %+v", s)
	}
	// Publishing after the eviction is harmless.
	h.PublishEvent(testEvent(events.KindSwitchOff, 999, 0, geo.Point{Lat: 37, Lon: 24}))
}

// TestSlowConsumerNeverBlocksPublish is the satellite requirement: a
// subscriber that stops reading must be absorbed per policy without
// blocking Hub.Publish. Run under -race in CI.
func TestSlowConsumerNeverBlocksPublish(t *testing.T) {
	h := NewHub(Options{})
	pos := geo.Point{Lat: 37.5, Lon: 24.5}
	topics := []string{TopicRegionPrefix + hexgrid.LatLonToCell(pos, h.RegionResolution()).String()}

	// One subscriber per policy, none of which ever calls Recv.
	for _, pol := range []Policy{PolicyDropOldest, PolicyConflate, PolicyDisconnect} {
		if _, err := h.Subscribe(topics, SubOptions{Buffer: 16, Policy: pol}); err != nil {
			t.Fatal(err)
		}
	}
	// And one healthy reader, to prove delivery continues around the
	// stalled ones.
	healthy, err := h.Subscribe(topics, SubOptions{Buffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5000
	var healthyGot atomic.Int64
	healthyDone := make(chan struct{})
	go func() {
		defer close(healthyDone)
		for healthyGot.Load() < frames {
			if _, ok := healthy.Recv(); !ok {
				return
			}
			healthyGot.Add(1)
		}
	}()

	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			// 8 rotating vessels: few enough keys that the conflating
			// subscriber's 16-slot ring covers them all and conflation
			// (not eviction) absorbs the overload.
			h.PublishState(testState(ais.MMSI(237000000+i%8), pos))
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publisher blocked by slow consumers")
	}
	elapsed := time.Since(start)

	// The publisher is done but the healthy reader may still be
	// draining its ring; closing now would discard what's buffered.
	select {
	case <-healthyDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("healthy subscriber got %d/%d frames", healthyGot.Load(), frames)
	}
	healthy.Close()
	s := h.Snapshot()
	if s.Disconnected != 1 {
		t.Fatalf("disconnects %d, want 1", s.Disconnected)
	}
	if s.Dropped == 0 || s.Conflated == 0 {
		t.Fatalf("overflow policies never engaged: %+v", s)
	}
	t.Logf("published %d frames in %v with 3 stalled subscribers (%+v)", frames, elapsed, s)
}

func TestResolveValidation(t *testing.T) {
	h := NewHub(Options{})
	cases := []Request{
		{},                                    // no topics
		{Vessels: []string{"not-a-number"}},   // bad MMSI
		{Vessels: []string{"0"}},              // invalid MMSI
		{Regions: []string{"hex:99:0:0"}},     // bad resolution
		{Regions: []string{"somewhere"}},      // neither cell nor lat,lon
		{Events: []string{"tsunami"}},         // unknown class
		{Events: []string{"gap"}, Policy: "x"}, // unknown policy
		{Events: []string{"gap"}, Buffer: -1}, // bad buffer
	}
	for i, req := range cases {
		if _, _, err := h.Resolve(req); err == nil {
			t.Errorf("case %d (%+v): expected error", i, req)
		}
	}

	// A coarser cell token is re-keyed onto the hub grid.
	pos := geo.Point{Lat: 37.5, Lon: 24.5}
	coarse := hexgrid.LatLonToCell(pos, 4).String()
	topics, opt, err := h.Resolve(Request{
		Regions: []string{coarse},
		Events:  []string{"all"},
		Policy:  "conflate",
		Buffer:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Policy != PolicyConflate || opt.Buffer != 64 {
		t.Fatalf("options: %+v", opt)
	}
	if len(topics) != 4 {
		t.Fatalf("topics: %v", topics)
	}
	for _, tp := range topics {
		if strings.HasPrefix(tp, TopicRegionPrefix) && !strings.HasPrefix(tp, TopicRegionPrefix+"hex:"+"7") {
			t.Fatalf("region topic %q not at hub resolution", tp)
		}
	}
}

// TestAttachStream wires a hub to an actor EventStream the way the
// pipeline's writer actors feed it embedded.
func TestAttachStream(t *testing.T) {
	h := NewHub(Options{})
	es := actor.NewEventStream()
	detach := h.AttachStream(es)
	sub, err := h.SubscribeRequest(Request{Vessels: []string{"237000001"}, Events: []string{"proximity"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	es.Publish(testState(237000001, geo.Point{Lat: 37.5, Lon: 24.5}))
	es.Publish(testEvent(events.KindProximity, 5, 6, geo.Point{Lat: 37.5, Lon: 24.5}))
	es.Publish("unrelated system event") // ignored by type filter

	if d := recvOne(t, sub); d.Type != "state" {
		t.Fatalf("first frame %q", d.Type)
	}
	if d := recvOne(t, sub); d.Type != "event" {
		t.Fatalf("second frame %q", d.Type)
	}
	detach()
	es.Publish(testState(237000001, geo.Point{Lat: 37.5, Lon: 24.5}))
	if got := h.Snapshot().Published; got != 2 {
		t.Fatalf("published %d frames, want 2 (post-detach publish leaked)", got)
	}
}

// TestConsumeLoop drains hub inputs from a broker topic — the durable
// wiring against seatwin-states/seatwin-events.
func TestConsumeLoop(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("seatwin-states", 2); err != nil {
		t.Fatal(err)
	}
	c, err := b.Subscribe("seatwin-states", "feed")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHub(Options{})
	sub, err := h.SubscribeRequest(Request{Vessels: []string{"237000001"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	go func() {
		b.Produce("seatwin-states", "237000001", testState(237000001, geo.Point{Lat: 37.5, Lon: 24.5}))
		b.Produce("seatwin-states", "x", "not a frame") // skipped
	}()
	done := make(chan int, 1)
	go func() { done <- h.ConsumeLoop(c, nil, 200*time.Millisecond) }()

	d := recvOne(t, sub)
	if d.Type != "state" {
		t.Fatalf("frame %q", d.Type)
	}
	n := <-done
	if n != 1 {
		t.Fatalf("consume loop published %d frames, want 1", n)
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub(Options{})
	sub, err := h.SubscribeRequest(Request{Events: []string{"all"}})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, ok := sub.Recv(); ok {
		t.Fatal("Recv after hub close")
	}
	if sub.Err() != ErrHubClosed {
		t.Fatalf("err %v", sub.Err())
	}
	if _, err := h.SubscribeRequest(Request{Events: []string{"all"}}); err != ErrHubClosed {
		t.Fatalf("subscribe after close: %v", err)
	}
	h.PublishEvent(testEvent(events.KindProximity, 1, 2, geo.Point{Lat: 37, Lon: 24})) // no panic
}

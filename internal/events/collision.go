package events

import (
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// ForecastPoint is one timestamped position of a forecast trajectory.
type ForecastPoint struct {
	Pos geo.Point
	At  time.Time
}

// Forecast is a vessel's predicted track: the present position followed
// by the S-VRF's six 5-minute predictions (7 points total in the
// paper's integration, Figure 5).
type Forecast struct {
	MMSI   ais.MMSI
	Points []ForecastPoint
}

// CollisionConfig parameterises the §5.2 algorithm.
type CollisionConfig struct {
	// TemporalThreshold is the paper's "system defined time interval
	// threshold that accounts for close proximity vessel passes": two
	// forecast points may collide only if their times differ by less.
	TemporalThreshold time.Duration
	// SpatialThresholdMeters is the separation below which intersecting
	// forecasts count as a potential collision.
	SpatialThresholdMeters float64
}

// DefaultCollisionConfig matches the Table 2 experiments' 2-minute
// variant with a 1 NM close-quarters radius.
func DefaultCollisionConfig() CollisionConfig {
	return CollisionConfig{
		TemporalThreshold:      2 * time.Minute,
		SpatialThresholdMeters: 1852,
	}
}

// checkStep is the time resolution the forecast trajectories are
// interpolated to when assessing intersection. Vessels move ~100-200 m
// per step at typical speeds, well inside the spatial threshold.
const checkStep = 15 * time.Second

// checkStepNanos is checkStep as integer nanoseconds, the unit of the
// epoch-aligned tick grid below.
const checkStepNanos = int64(checkStep)

// prefilterMarginMeters is the slack the raw-point prefilter adds to
// the spatial threshold: how far the vessels can close between raw
// forecast points (one 5-minute interval at speed). The grid detector's
// circle prune derives its own slack from this same constant.
const prefilterMarginMeters = 20000.0

// The pair check samples both trajectories on a Unix-epoch-aligned
// checkStep grid rather than on a grid anchored at one forecast's start
// time. Alignment makes the sample times a global property of the clock
// instead of a property of the pair: every forecast can be interpolated
// once, at insert, and the precomputed positions serve every pair check
// it ever participates in (see collision_grid.go). tickTime must be the
// single conversion both paths use so their time.Time values are
// identical.

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// tickRange returns the inclusive range of epoch-aligned ticks covered
// by the forecast's time span. first > last when the span is too short
// to contain a tick.
func tickRange(f Forecast) (first, last int64) {
	startNs := f.Points[0].At.UnixNano()
	endNs := f.Points[len(f.Points)-1].At.UnixNano()
	first = -floorDiv(-startNs, checkStepNanos) // ceil
	last = floorDiv(endNs, checkStepNanos)
	return first, last
}

// tickTime converts a tick index back to its instant.
func tickTime(k int64) time.Time {
	return time.Unix(0, k*checkStepNanos).UTC()
}

// interpAt returns the forecast position at time t, linearly
// interpolated between forecast points. ok is false outside the
// forecast's time span.
func interpAt(f Forecast, t time.Time) (geo.Point, bool) {
	pts := f.Points
	if len(pts) == 0 || t.Before(pts[0].At) || t.After(pts[len(pts)-1].At) {
		return geo.Point{}, false
	}
	for i := 1; i < len(pts); i++ {
		if t.After(pts[i].At) {
			continue
		}
		span := pts[i].At.Sub(pts[i-1].At).Seconds()
		if span <= 0 {
			return pts[i].Pos, true
		}
		fr := t.Sub(pts[i-1].At).Seconds() / span
		return geo.Interpolate(pts[i-1].Pos, pts[i].Pos, fr), true
	}
	return pts[len(pts)-1].Pos, true
}

// CheckPair applies the two-stage §5.2 test to a pair of forecast
// trajectories: temporal intersection (the vessels occupy nearby
// positions at times differing by at most the temporal threshold)
// followed by spatial intersection of the interpolated forecast tracks.
// It returns the most severe (closest) predicted encounter.
func CheckPair(a, b Forecast, cfg CollisionConfig) (Event, bool) {
	if len(a.Points) == 0 || len(b.Points) == 0 {
		return Event{}, false
	}
	best := Event{Kind: KindCollisionForecast, A: a.MMSI, B: b.MMSI, Meters: cfg.SpatialThresholdMeters}
	found := false

	// Cheap prefilter: if the closest pair of raw forecast points is
	// further than the vessels can close within one 5-minute interval
	// plus the threshold, no interpolated pass can succeed.
	minRaw := 1e18
	for _, pa := range a.Points {
		for _, pb := range b.Points {
			if d := geo.FastDistance(pa.Pos, pb.Pos); d < minRaw {
				minRaw = d
			}
		}
	}
	if minRaw > cfg.SpatialThresholdMeters+prefilterMarginMeters {
		return Event{}, false
	}

	firstA, lastA := tickRange(a)
	for k := firstA; k <= lastA; k++ {
		t := tickTime(k)
		pa, ok := interpAt(a, t)
		if !ok {
			continue
		}
		// Slide vessel B's clock within the temporal threshold.
		for dt := -cfg.TemporalThreshold; dt <= cfg.TemporalThreshold; dt += checkStep {
			pb, ok := interpAt(b, t.Add(dt))
			if !ok {
				continue
			}
			d := geo.FastDistance(pa, pb)
			if d >= best.Meters {
				continue
			}
			best.Meters = d
			best.Pos = geo.Midpoint(pa, pb)
			best.At = t.Add(dt / 2)
			found = true
		}
	}
	return best, found
}

// Detector accumulates forecasts and detects pairwise collision
// candidates among them. The pipeline shards detection across collision
// actors by hexgrid cell; Detector is the per-shard state.
type Detector struct {
	cfg CollisionConfig
	// forecasts by MMSI; refreshed wholesale on every new forecast.
	forecasts map[ais.MMSI]Forecast
	// expire removes stale forecasts (vessel gone quiet).
	expire time.Duration
	stamps map[ais.MMSI]time.Time
}

// NewDetector creates a detector whose forecasts expire after the given
// duration (0 means 10 minutes).
func NewDetector(cfg CollisionConfig, expire time.Duration) *Detector {
	if expire <= 0 {
		expire = 10 * time.Minute
	}
	return &Detector{
		cfg:       cfg,
		forecasts: make(map[ais.MMSI]Forecast),
		expire:    expire,
		stamps:    make(map[ais.MMSI]time.Time),
	}
}

// Update inserts or refreshes a vessel's forecast and returns the
// collision events it triggers against the other live forecasts.
func (d *Detector) Update(f Forecast, now time.Time) []Event {
	// Evict stale entries.
	for id, ts := range d.stamps {
		if now.Sub(ts) > d.expire {
			delete(d.stamps, id)
			delete(d.forecasts, id)
		}
	}
	var out []Event
	for id, other := range d.forecasts {
		if id == f.MMSI {
			continue
		}
		if e, ok := CheckPair(f, other, d.cfg); ok {
			e.DetectedAt = now
			out = append(out, e)
		}
	}
	d.forecasts[f.MMSI] = f
	d.stamps[f.MMSI] = now
	return out
}

// Seed inserts or refreshes a forecast without running detection — the
// bulk-preload path benchmarks use.
func (d *Detector) Seed(f Forecast, now time.Time) {
	d.forecasts[f.MMSI] = f
	d.stamps[f.MMSI] = now
}

// Size returns the number of live forecasts held.
func (d *Detector) Size() int { return len(d.forecasts) }

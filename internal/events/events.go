// Package events implements the maritime situational-awareness
// functions of §5: real-time close-proximity detection, AIS switch-off
// detection, and collision forecasting over S-VRF (or baseline)
// trajectory forecasts — together with the evaluation harness that
// reproduces Table 2.
package events

import (
	"fmt"
	"sync"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

// Kind labels an event record.
type Kind string

// Event kinds.
const (
	KindProximity         Kind = "proximity"
	KindSwitchOff         Kind = "ais-switch-off"
	KindCollisionForecast Kind = "collision-forecast"
)

// Event is one detected or forecast maritime event.
type Event struct {
	Kind Kind
	// A is always set; B is set for pairwise events.
	A, B ais.MMSI
	// At is when the event occurred or is forecast to occur.
	At time.Time
	// DetectedAt is when the system emitted the event.
	DetectedAt time.Time
	// Pos is the event location (midpoint for pairwise events).
	Pos geo.Point
	// Meters is the relevant distance (separation for proximity and
	// collision events).
	Meters float64
}

// PairKey returns an order-independent identifier for pairwise events.
func (e Event) PairKey() string {
	a, b := e.A, e.B
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("%d/%d", a, b)
}

// Log is a bounded, concurrency-safe event log, the in-memory
// counterpart of the event list the UI presents (Figure 4f).
type Log struct {
	mu     sync.Mutex
	events []Event
	max    int
	total  int64
}

// NewLog creates a log retaining up to max events (older evicted).
func NewLog(max int) *Log {
	if max <= 0 {
		max = 1 << 14
	}
	return &Log{max: max}
}

// Append adds an event.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	l.events = append(l.events, e)
	if len(l.events) > l.max {
		drop := len(l.events) - l.max
		l.events = append(l.events[:0:0], l.events[drop:]...)
	}
}

// Total returns the count of events ever appended.
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n most recent events, newest last.
func (l *Log) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.events) {
		n = len(l.events)
	}
	out := make([]Event, n)
	copy(out, l.events[len(l.events)-n:])
	return out
}

// ByKind returns the retained events of one kind, oldest first.
func (l *Log) ByKind(k Kind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

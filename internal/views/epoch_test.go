package views

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/ais"
)

// TestEpochSwapNoTornSnapshot hammers the registry with concurrent
// writers, refreshes and readers (run under -race in CI): every
// snapshot a reader observes must be internally consistent — valid
// JSON, items agreeing with the pre-built body, newest-first ordering —
// and epochs must never go backwards for any single reader.
func TestEpochSwapNoTornSnapshot(t *testing.T) {
	v := manual(t, Config{DefaultLimit: 8})
	base := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	var tick atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: 4 goroutines updating an overlapping fleet.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := ais.MMSI(237000001 + (w*13+i)%32)
				ts := base.Add(time.Duration(tick.Add(1)) * time.Millisecond)
				v.ApplyState(state(m, 37.0+float64(i%10)*0.1, 24.0+float64(w)*0.1, 10, ts))
			}
		}(w)
	}
	// Refresher: continuous swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				v.Refresh()
			}
		}
	}()

	// Readers: verify consistency on every observed snapshot.
	var reads atomic.Int64
	readErr := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			var buf bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := v.Vessels()
				if snap.Epoch < lastEpoch {
					readErr <- fmt.Errorf("epoch went backwards: %d after %d", snap.Epoch, lastEpoch)
					return
				}
				lastEpoch = snap.Epoch
				buf.Reset()
				n, err := snap.WriteJSON(&buf, 0, nil)
				if err != nil {
					readErr <- err
					return
				}
				var docs []vesselDoc
				if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
					readErr <- fmt.Errorf("torn snapshot (invalid JSON): %v", err)
					return
				}
				if len(docs) != n || n != len(snap.Items) {
					readErr <- fmt.Errorf("body/item mismatch: wrote %d, decoded %d, items %d", n, len(docs), len(snap.Items))
					return
				}
				for i := 1; i < len(snap.Items); i++ {
					if snap.Items[i].TS > snap.Items[i-1].TS {
						readErr <- fmt.Errorf("snapshot not newest-first at %d", i)
						return
					}
				}
				reads.Add(1)
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
}

// TestStalenessBound: once Refresh returns epoch e, no reader may
// observe an older epoch on any view — the snapshot swap must complete
// before Refresh returns.
func TestStalenessBound(t *testing.T) {
	v := manual(t, Config{})
	base := time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	// Concurrent refreshers make the bound non-trivial: the epochs they
	// return interleave, and each return still promises visibility.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v.ApplyState(state(ais.MMSI(237000001+r), 37.5, 24.5, 10,
					base.Add(time.Duration(i)*time.Second)))
				e := v.Refresh()
				for _, got := range []uint64{
					v.Vessels().Epoch, v.Regions().Epoch, v.Events().Epoch, v.Congestion().Epoch,
				} {
					if got < e {
						errs <- fmt.Errorf("observed epoch %d after Refresh returned %d", got, e)
						return
					}
				}
			}
		}(r)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

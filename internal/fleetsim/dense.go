package fleetsim

import (
	"time"

	"seatwin/internal/geo"
)

// DenseStraitPorts is a synthetic four-port harbour cluster straddling
// a Singapore-strait-like channel: two anchorages on each side of a
// ~10 km crossing, close enough that every route funnels the whole
// fleet through the same handful of hexgrid cells. It is the ROADMAP #4
// worst-case shape — thousands of vessels concentrated in a few cells —
// used by the dense-cell event benchmarks and parity tests.
var DenseStraitPorts = []Port{
	{"Strait West A", "XX", geo.Point{Lat: 1.170, Lon: 103.720}},
	{"Strait West B", "XX", geo.Point{Lat: 1.155, Lon: 103.790}},
	{"Strait East A", "XX", geo.Point{Lat: 1.245, Lon: 103.850}},
	{"Strait East B", "XX", geo.Point{Lat: 1.230, Lon: 103.930}},
}

// DenseStraitWorld creates a fleet of the given size shuttling between
// the DenseStraitPorts with KeepSailing, so traffic density in the
// strait cells stays at fleet scale indefinitely. The channel is noise-
// free deterministic cadence-wise apart from the seeded per-vessel
// RNGs, keeping parity runs reproducible.
func DenseStraitWorld(vessels int, seed int64) *World {
	ch := DefaultChannel
	// Keep every transmission: dense-cell experiments measure detector
	// cost per delivered report, and dropouts only thin the traffic.
	ch.DropProbability = 0
	ch.BurstOutageRate = 0
	return NewWorld(Config{
		Vessels:       vessels,
		Seed:          seed,
		PortsOverride: DenseStraitPorts,
		Channel:       &ch,
		Start:         time.Date(2021, 11, 2, 0, 0, 0, 0, time.UTC),
		KeepSailing:   true,
	})
}

package experiments

import (
	"strings"
	"testing"
)

// TestRunTrainBenchSmoke runs a miniature benchmark end to end: both
// paths at one worker, checking the artifact is coherent and the two
// trainers agree on the loss they report.
func TestRunTrainBenchSmoke(t *testing.T) {
	cfg := TrainBenchConfig{
		Samples:       8,
		Steps:         10,
		Hidden:        8,
		OutputDim:     4,
		Bidirectional: true,
		Batches:       2,
		Workers:       []int{1},
		Seed:          3,
	}
	r := RunTrainBench(cfg)
	if len(r.Runs) != 2 {
		t.Fatalf("expected reference+compiled runs, got %d", len(r.Runs))
	}
	for _, run := range r.Runs {
		if run.NsPerSample <= 0 || run.SamplesPerSec <= 0 {
			t.Fatalf("%s/%dw: non-positive throughput: %+v", run.Path, run.Workers, run)
		}
		if run.Loss <= 0 {
			t.Fatalf("%s/%dw: loss %g not positive", run.Path, run.Workers, run.Loss)
		}
	}
	if r.SpeedupCompiled <= 0 {
		t.Fatalf("speedup %g not positive", r.SpeedupCompiled)
	}
	// The paths agree to 1e-8 per gradient element (internal/nn parity
	// tests); the mean batch loss must agree far tighter than any real
	// training signal.
	if r.MaxLossDelta > 1e-9 {
		t.Fatalf("reference/compiled loss delta %g too large", r.MaxLossDelta)
	}
	out := r.Format()
	for _, want := range []string{"reference", "compiled", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

package svrf

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/traj"
)

var t0 = time.Date(2021, 11, 2, 8, 0, 0, 0, time.UTC)

func straightTrack(start geo.Point, cog, sog float64, every, total time.Duration) []ais.PositionReport {
	var out []ais.PositionReport
	for dt := time.Duration(0); dt <= total; dt += every {
		p := geo.DeadReckon(start, sog, cog, dt.Seconds())
		out = append(out, ais.PositionReport{
			MMSI: 1001, Lat: p.Lat, Lon: p.Lon, SOG: sog, COG: cog,
			Timestamp: t0.Add(dt),
		})
	}
	return out
}

func TestKinematicForecastGeometry(t *testing.T) {
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 90, 12, 30*time.Second, 2*time.Hour)
	w := traj.BuildWindows(track, traj.DefaultConfig())[0]
	k := NewKinematic()
	pts := k.Forecast(w)
	if len(pts) != 6 {
		t.Fatalf("forecast length %d", len(pts))
	}
	// On noiseless straight motion the kinematic model is near-exact.
	for h, p := range pts {
		if d := geo.Haversine(p, w.Truth[h]); d > 30 {
			t.Fatalf("horizon %d: kinematic off by %.0f m on straight track", h, d)
		}
	}
}

func TestKinematicHandlesUnavailableSOG(t *testing.T) {
	w := traj.Window{LastPos: geo.Point{Lat: 37, Lon: 24}, LastSOG: -1, LastCOG: 90}
	pts := NewKinematic().Forecast(w)
	for _, p := range pts {
		if d := geo.Haversine(p, w.LastPos); d > 0.001 {
			t.Fatalf("unavailable SOG must forecast in place, moved %.1f m", d)
		}
	}
}

func TestModelForecastShape(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, 2*time.Hour)
	w := traj.BuildWindows(track, traj.DefaultConfig())[0]
	pts := m.Forecast(w)
	if len(pts) != 6 {
		t.Fatalf("forecast length %d", len(pts))
	}
	for _, p := range pts {
		if !p.Valid() {
			t.Fatalf("invalid forecast point %v", p)
		}
	}
}

func TestForecastReportsLivePath(t *testing.T) {
	m, _ := New(DefaultConfig())
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, time.Hour)
	pts, anchor, ok := m.ForecastReports(track)
	if !ok || len(pts) != 6 {
		t.Fatalf("live forecast: ok=%v len=%d", ok, len(pts))
	}
	if anchor.MMSI != track[0].MMSI {
		t.Fatalf("anchor MMSI %v", anchor.MMSI)
	}
	if anchor.Timestamp.After(track[len(track)-1].Timestamp) {
		t.Fatal("anchor cannot postdate the newest report")
	}
	if _, _, ok := m.ForecastReports(track[:5]); ok {
		t.Fatal("short history must not forecast")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	m, _ := New(cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, 2*time.Hour)
	w := traj.BuildWindows(track, traj.DefaultConfig())[0]
	p1, p2 := m.Forecast(w), loaded.Forecast(w)
	for h := range p1 {
		if p1[h] != p2[h] {
			t.Fatal("loaded model forecasts differently")
		}
	}
}

func TestEvaluateADEPerfectPredictor(t *testing.T) {
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 90, 12, 30*time.Second, 2*time.Hour)
	windows := traj.BuildWindows(track, traj.DefaultConfig())
	perfect := predictorFunc(func(w traj.Window) []geo.Point { return w.Truth })
	de := EvaluateADE(perfect, windows)
	for h := 0; h < de.Horizons(); h++ {
		if de.ADE(h) != 0 {
			t.Fatalf("perfect predictor ADE(%d) = %f", h, de.ADE(h))
		}
	}
	if empty := EvaluateADE(perfect, nil); empty.Horizons() != 0 {
		t.Fatal("empty evaluation must be empty")
	}
}

type predictorFunc func(traj.Window) []geo.Point

func (f predictorFunc) Name() string                       { return "func" }
func (f predictorFunc) Forecast(w traj.Window) []geo.Point { return f(w) }

func TestConcurrentForecastSharedModel(t *testing.T) {
	// One model instance serving many goroutines — the paper's
	// "mounted only once in memory" deployment. Run with -race.
	m, _ := New(DefaultConfig())
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, 2*time.Hour)
	w := traj.BuildWindows(track, traj.DefaultConfig())[0]
	want := m.Forecast(w)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := m.Forecast(w)
				for h := range got {
					if got[h] != want[h] {
						panic("concurrent forecast diverged")
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestTable1Shape is the miniature of the paper's Table 1: trained on a
// simulated regional dataset, S-VRF must beat the linear kinematic
// baseline in mean ADE, with sensible absolute magnitudes.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training test, skipped in short mode")
	}
	ds := fleetsim.Record(geo.AegeanSea, 80, 6*time.Hour, 42)
	cfg := traj.DefaultConfig()
	var windows []traj.Window
	for _, tr := range ds.Tracks {
		windows = append(windows, traj.BuildWindows(tr.Reports, cfg)...)
	}
	if len(windows) < 1000 {
		t.Fatalf("only %d windows", len(windows))
	}
	train, _, test := traj.Split(windows, 0.5, 0.25, 7)

	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultTrainOptions()
	opt.Epochs = 10
	m.Train(train, opt)

	deK := EvaluateADE(NewKinematic(), test)
	deM := EvaluateADE(m, test)

	if deM.MeanADE() >= deK.MeanADE() {
		t.Fatalf("S-VRF mean ADE %.1f not better than kinematic %.1f",
			deM.MeanADE(), deK.MeanADE())
	}
	// The margin should be in the paper's regime (several percent, not
	// a rounding artifact, not an implausible blowout).
	rel := (deM.MeanADE() - deK.MeanADE()) / deK.MeanADE() * 100
	if rel > -2 || rel < -60 {
		t.Fatalf("relative mean ADE difference %.1f%% outside plausible range", rel)
	}
	// Error grows with horizon for both models.
	for h := 1; h < 6; h++ {
		if deM.ADE(h) < deM.ADE(h-1) {
			t.Fatalf("S-VRF ADE not monotone in horizon: %f < %f", deM.ADE(h), deM.ADE(h-1))
		}
		if deK.ADE(h) < deK.ADE(h-1) {
			t.Fatalf("kinematic ADE not monotone in horizon")
		}
	}
	// Kinematic at 5 minutes should be within the broad regime of the
	// paper's 97.7 m (same noise physics, different data).
	if deK.ADE(0) < 10 || deK.ADE(0) > 500 {
		t.Fatalf("kinematic 5-min ADE %.1f m outside plausible regime", deK.ADE(0))
	}
}

// TestBiLSTMBeatsLSTMAblation reproduces §4.2's architecture decision
// at small scale: with an equal parameter budget per direction, the
// bidirectional variant should fit the data at least as well.
func TestBiLSTMBeatsLSTMAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test, skipped in short mode")
	}
	ds := fleetsim.Record(geo.AegeanSea, 40, 4*time.Hour, 21)
	var windows []traj.Window
	for _, tr := range ds.Tracks {
		windows = append(windows, traj.BuildWindows(tr.Reports, traj.DefaultConfig())...)
	}
	train, _, test := traj.Split(windows, 0.6, 0.0, 3)

	cfgBi := DefaultConfig()
	cfgUni := DefaultConfig()
	cfgUni.Bidirectional = false
	opt := DefaultTrainOptions()
	opt.Epochs = 8

	bi, _ := New(cfgBi)
	uni, _ := New(cfgUni)
	bi.Train(train, opt)
	uni.Train(train, opt)

	adeBi := EvaluateADE(bi, test).MeanADE()
	adeUni := EvaluateADE(uni, test).MeanADE()
	// Allow the unidirectional model a small edge (noise), but a large
	// regression would mean the BiLSTM head is broken.
	if adeBi > adeUni*1.15 {
		t.Fatalf("BiLSTM ADE %.1f much worse than LSTM %.1f", adeBi, adeUni)
	}
	if bi.Name() == uni.Name() {
		t.Fatal("ablation variants must be distinguishable by name")
	}
}

func BenchmarkModelForecast(b *testing.B) {
	m, _ := New(DefaultConfig())
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, 2*time.Hour)
	w := traj.BuildWindows(track, traj.DefaultConfig())[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forecast(w)
	}
}

func BenchmarkKinematicForecast(b *testing.B) {
	k := NewKinematic()
	track := straightTrack(geo.Point{Lat: 37, Lon: 24}, 45, 14, 30*time.Second, 2*time.Hour)
	w := traj.BuildWindows(track, traj.DefaultConfig())[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Forecast(w)
	}
}

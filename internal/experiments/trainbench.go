package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"seatwin/internal/nn"
)

// This file is the training-throughput harness behind
// `seatwin-train -bench` and the checked-in BENCH_PR8.json: it times
// the reference interpreted trainer against the compiled fused-gate
// BPTT path (internal/nn TrainCompiled) on the S-VRF network shape,
// at one and several workers, from identical seeded weights and data.

// TrainBenchConfig sizes the benchmark. The defaults mirror the S-VRF
// production shape (20-step windows, hidden 32, six 2-coordinate
// horizons, bidirectional).
type TrainBenchConfig struct {
	Samples       int  `json:"samples"`
	Steps         int  `json:"steps"`
	Hidden        int  `json:"hidden"`
	OutputDim     int  `json:"output_dim"`
	Bidirectional bool `json:"bidirectional"`
	// Batches is the number of timed TrainBatch steps per run (after
	// two untimed warm-up steps that populate scratch arenas).
	Batches int   `json:"batches"`
	Workers []int `json:"workers"`
	Seed    int64 `json:"seed"`
}

// DefaultTrainBenchConfig matches the S-VRF training geometry.
func DefaultTrainBenchConfig() TrainBenchConfig {
	return TrainBenchConfig{
		Samples:       64,
		Steps:         20,
		Hidden:        32,
		OutputDim:     12,
		Bidirectional: true,
		Batches:       30,
		Workers:       []int{1, 2},
		Seed:          1,
	}
}

// TrainBenchRun is one (path, workers) measurement.
type TrainBenchRun struct {
	Path          string  `json:"path"` // "reference" | "compiled"
	Workers       int     `json:"workers"`
	NsPerSample   int64   `json:"ns_per_sample"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// Loss is the mean batch loss over the timed steps — the reference
	// and compiled rows must agree closely (the parity tests pin the
	// gradient agreement to 1e-8; here it is a coarse cross-check).
	Loss float64 `json:"loss"`
}

// TrainBenchResult is the full benchmark artifact.
type TrainBenchResult struct {
	GeneratedUnix int64            `json:"generated_unix"`
	Config        TrainBenchConfig `json:"config"`
	Runs          []TrainBenchRun  `json:"runs"`
	// SpeedupCompiled is single-worker reference ns/sample over
	// single-worker compiled ns/sample.
	SpeedupCompiled float64 `json:"speedup_compiled_1w"`
	// MaxLossDelta is the largest |reference-compiled| loss gap across
	// matching worker counts.
	MaxLossDelta float64 `json:"max_loss_delta"`
	Note         string  `json:"note,omitempty"`
}

// trainBenchSamples builds a deterministic synthetic dataset with the
// benchmark geometry: smooth per-feature sinusoids with phase noise,
// targets correlated with the sequence tail so training has signal.
func trainBenchSamples(cfg TrainBenchConfig) []nn.Sample {
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]nn.Sample, cfg.Samples)
	const inputDim = 3
	for s := range samples {
		seq := make([][]float64, cfg.Steps)
		phase := rng.Float64() * 2 * math.Pi
		for t := range seq {
			row := make([]float64, inputDim)
			for d := range row {
				row[d] = math.Sin(phase+float64(t)*0.3+float64(d)) + 0.05*rng.NormFloat64()
			}
			seq[t] = row
		}
		tgt := make([]float64, cfg.OutputDim)
		tail := seq[len(seq)-1]
		for o := range tgt {
			tgt[o] = 0.5*tail[o%inputDim] + 0.01*float64(o)
		}
		samples[s] = nn.Sample{Seq: seq, Target: tgt}
	}
	return samples
}

// RunTrainBench measures both trainers at every configured worker
// count and returns the artifact.
func RunTrainBench(cfg TrainBenchConfig) TrainBenchResult {
	samples := trainBenchSamples(cfg)
	newNet := func() *nn.SeqRegressor {
		net, err := nn.NewSeqRegressor(nn.Config{
			InputDim:      3,
			Hidden:        cfg.Hidden,
			OutputDim:     cfg.OutputDim,
			Bidirectional: cfg.Bidirectional,
			Seed:          cfg.Seed,
		})
		if err != nil {
			panic(err) // static geometry, cannot fail
		}
		return net
	}
	res := TrainBenchResult{
		GeneratedUnix: time.Now().Unix(),
		Config:        cfg,
	}
	lossByWorkers := map[int][2]float64{} // workers -> [reference, compiled]
	var refNs, compNs int64
	for _, workers := range cfg.Workers {
		for pathIdx, path := range []string{"reference", "compiled"} {
			net := newNet()
			step := func(lr float64) float64 { return net.TrainBatch(samples, lr, workers) }
			if path == "compiled" {
				tc := net.CompileTrain()
				step = func(lr float64) float64 { return tc.TrainBatch(samples, lr, workers) }
			}
			step(1e-3)
			step(1e-3)
			var lossSum float64
			start := time.Now()
			for i := 0; i < cfg.Batches; i++ {
				lossSum += step(1e-3)
			}
			elapsed := time.Since(start)
			nsPerSample := elapsed.Nanoseconds() / int64(cfg.Batches*len(samples))
			run := TrainBenchRun{
				Path:          path,
				Workers:       workers,
				NsPerSample:   nsPerSample,
				SamplesPerSec: float64(cfg.Batches*len(samples)) / elapsed.Seconds(),
				Loss:          lossSum / float64(cfg.Batches),
			}
			res.Runs = append(res.Runs, run)
			pair := lossByWorkers[workers]
			pair[pathIdx] = run.Loss
			lossByWorkers[workers] = pair
			if workers == 1 {
				if path == "reference" {
					refNs = nsPerSample
				} else {
					compNs = nsPerSample
				}
			}
		}
	}
	if compNs > 0 {
		res.SpeedupCompiled = float64(refNs) / float64(compNs)
	}
	for _, pair := range lossByWorkers {
		if d := math.Abs(pair[0] - pair[1]); d > res.MaxLossDelta {
			res.MaxLossDelta = d
		}
	}
	return res
}

// Format renders the benchmark as a table.
func (r TrainBenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Training throughput (%d samples x %d steps, hidden %d, out %d, bidir %v)\n",
		r.Config.Samples, r.Config.Steps, r.Config.Hidden, r.Config.OutputDim, r.Config.Bidirectional)
	fmt.Fprintf(&b, "%-10s %8s %14s %16s %12s\n", "path", "workers", "ns/sample", "samples/sec", "loss")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-10s %8d %14d %16.0f %12.6f\n",
			run.Path, run.Workers, run.NsPerSample, run.SamplesPerSec, run.Loss)
	}
	fmt.Fprintf(&b, "compiled speedup (1 worker): %.2fx   max loss delta: %.2e\n",
		r.SpeedupCompiled, r.MaxLossDelta)
	if r.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Note)
	}
	return b.String()
}

// WriteFile marshals the artifact to path as indented JSON.
func (r TrainBenchResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

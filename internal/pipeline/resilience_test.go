package pipeline

import (
	"sync/atomic"
	"testing"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/geo"
)

// faultyForecaster panics on every n-th call — a stand-in for a model
// bug or corrupted input that must not take the vessel actor (or the
// pipeline) down.
type faultyForecaster struct {
	inner events.TrackForecaster
	n     int64
	count int64
}

func (f *faultyForecaster) Name() string { return "faulty" }

func (f *faultyForecaster) ForecastTrack(history []ais.PositionReport) (events.Forecast, bool) {
	if atomic.AddInt64(&f.count, 1)%f.n == 0 {
		panic("model exploded")
	}
	return f.inner.ForecastTrack(history)
}

func TestVesselActorSurvivesForecasterPanic(t *testing.T) {
	cfg := DefaultConfig(&faultyForecaster{inner: events.NewKinematicForecaster(), n: 5})
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(2 * time.Second)

	var failures int64
	unsub := actor.SubscribeType(p.System().Events(), func(actor.FailureEvent) {
		atomic.AddInt64(&failures, 1)
	})
	defer unsub()

	// 30 reports for one vessel: every 5th forecast panics, yet state
	// keeps flowing for the rest.
	feedTrack(p, 909000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 30, 30*time.Second, t0)
	p.Drain(5 * time.Second)

	if atomic.LoadInt64(&failures) == 0 {
		t.Fatal("failures never surfaced on the event stream")
	}
	h, _ := p.Store().HGetAll("vessel:909000001")
	if h["lat"] == "" {
		t.Fatal("vessel state lost after panics")
	}
	// The actor was restarted, not stopped: it still accepts traffic.
	late := t0.Add(time.Hour)
	pos := geo.DeadReckon(geo.Point{Lat: 37.5, Lon: 24.5}, 12, 90, late.Sub(t0).Seconds())
	p.Ingest(ais.PositionReport{
		MMSI: 909000001, Lat: pos.Lat, Lon: pos.Lon, SOG: 12, COG: 90,
		Timestamp: late,
	}, late)
	p.Drain(3 * time.Second)
	h2, _ := p.Store().HGetAll("vessel:909000001")
	if h2["ts"] == h["ts"] {
		t.Fatal("vessel actor stopped processing after restart")
	}
	if got := p.System().StatsSnapshot().Restarts; got == 0 {
		t.Fatal("no restarts recorded")
	}
}

func TestPipelineRequiresForecaster(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil forecaster must be rejected")
	}
}

func TestDrainReturnsOnQuietSystem(t *testing.T) {
	p := newTestPipeline(t)
	feedTrack(p, 910000001, geo.Point{Lat: 37.5, Lon: 24.5}, 90, 12, 2, 30*time.Second, t0)
	start := time.Now()
	p.Drain(10 * time.Second)
	if time.Since(start) > 5*time.Second {
		t.Fatal("drain did not detect quiescence")
	}
}

// TestDrainIdlePipelineReturnsImmediately: a pipeline that never
// ingested anything is already drained — Drain must return at once
// instead of burning the whole timeout waiting for a processed counter
// that will never move off zero.
func TestDrainIdlePipelineReturnsImmediately(t *testing.T) {
	p := newTestPipeline(t)
	start := time.Now()
	p.Drain(10 * time.Second)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain of an idle pipeline took %v", elapsed)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	p, err := New(DefaultConfig(events.NewKinematicForecaster()))
	if err != nil {
		t.Fatal(err)
	}
	p.Shutdown(time.Second)
	p.Shutdown(time.Second) // second call is a no-op
	// Ingest after shutdown is silently dropped.
	p.Ingest(ais.PositionReport{MMSI: 1, Lat: 1, Lon: 1, Timestamp: t0}, t0)
	if p.Stats().Messages != 0 {
		t.Fatal("ingest after shutdown was accepted")
	}
}

package fleetsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
)

func TestPortCatalogSanity(t *testing.T) {
	if len(Ports) < 60 {
		t.Fatalf("catalog has %d ports", len(Ports))
	}
	seen := map[string]bool{}
	for _, p := range Ports {
		if !p.Pos.Valid() {
			t.Errorf("port %s has invalid position %v", p.Name, p.Pos)
		}
		if seen[p.Name] {
			t.Errorf("duplicate port %s", p.Name)
		}
		seen[p.Name] = true
	}
	if len(PortsWithin(geo.EuropeanCoverage)) < 30 {
		t.Error("European coverage must contain most of the catalog")
	}
	if len(PortsWithin(geo.AegeanSea)) < 5 {
		t.Error("Aegean must contain several ports")
	}
	if _, ok := FindPort("Piraeus"); !ok {
		t.Error("Piraeus missing")
	}
	if _, ok := FindPort("Atlantis"); ok {
		t.Error("found a port that should not exist")
	}
}

func TestBuildRouteSharedLane(t *testing.T) {
	origin, _ := FindPort("Piraeus")
	dest, _ := FindPort("Limassol")
	r1 := BuildRoute(origin, dest, 0, rand.New(rand.NewSource(1)))
	r2 := BuildRoute(origin, dest, 0, rand.New(rand.NewSource(99)))
	if len(r1.Waypoints) != len(r2.Waypoints) {
		t.Fatalf("lane waypoint counts differ: %d vs %d", len(r1.Waypoints), len(r2.Waypoints))
	}
	// With zero per-vessel jitter the lane is identical for every vessel.
	for i := range r1.Waypoints {
		if d := geo.Haversine(r1.Waypoints[i], r2.Waypoints[i]); d > 1 {
			t.Fatalf("lane not deterministic: waypoint %d differs by %.0f m", i, d)
		}
	}
	// With jitter, individual routes spread around the lane.
	r3 := BuildRoute(origin, dest, 1500, rand.New(rand.NewSource(7)))
	different := false
	for i := range r1.Waypoints {
		if geo.Haversine(r1.Waypoints[i], r3.Waypoints[i]) > 100 {
			different = true
		}
	}
	if !different {
		t.Fatal("per-vessel jitter had no effect")
	}
}

func TestRouteLengthAtLeastGreatCircle(t *testing.T) {
	origin, _ := FindPort("Rotterdam")
	dest, _ := FindPort("Lisbon")
	r := BuildRoute(origin, dest, 0, rand.New(rand.NewSource(2)))
	gc := geo.Haversine(origin.Pos, dest.Pos)
	if r.Length() < gc {
		t.Fatalf("route length %.0f below great circle %.0f", r.Length(), gc)
	}
	if r.Length() > gc*1.3 {
		t.Fatalf("route length %.0f unreasonably above great circle %.0f", r.Length(), gc)
	}
}

func TestMotionFollowsRoute(t *testing.T) {
	origin, _ := FindPort("Piraeus")
	dest, _ := FindPort("Heraklion")
	rng := rand.New(rand.NewSource(3))
	route := BuildRoute(origin, dest, 0, rng)
	p := Profile{Type: ais.TypeCargo, CruiseKn: 14, MaxTurnRate: 30}
	m := newMotionState(route, 0)
	m.sog = 14

	// Integrate until arrival; the vessel must reach the destination.
	arrived := false
	for i := 0; i < 100000; i++ {
		if !m.advance(30, p) {
			arrived = true
			break
		}
	}
	if !arrived {
		t.Fatal("vessel never arrived")
	}
	if d := geo.Haversine(m.pos, dest.Pos); d > 2000 {
		t.Fatalf("arrived %.0f m from destination", d)
	}
	if !m.moored || m.sog != 0 {
		t.Fatal("vessel must be moored with zero speed at arrival")
	}
}

func TestMotionTurnRateBounded(t *testing.T) {
	origin, _ := FindPort("Piraeus")
	dest, _ := FindPort("Istanbul")
	route := BuildRoute(origin, dest, 0, rand.New(rand.NewSource(4)))
	p := Profile{Type: ais.TypeTanker, CruiseKn: 12, MaxTurnRate: 12}
	m := newMotionState(route, 0)
	m.sog = 12
	prevCOG := m.cog
	for i := 0; i < 2000; i++ {
		if !m.advance(10, p) {
			break
		}
		diff := math.Abs(math.Mod(m.cog-prevCOG+540, 360) - 180)
		// 12 deg/min over 10 s = 2 degrees max.
		if diff > 2.01 {
			t.Fatalf("turned %.2f degrees in 10 s with 12 deg/min limit", diff)
		}
		prevCOG = m.cog
	}
}

func TestMidVoyageStart(t *testing.T) {
	origin, _ := FindPort("Rotterdam")
	dest, _ := FindPort("New York")
	route := BuildRoute(origin, dest, 0, rand.New(rand.NewSource(5)))
	m := newMotionState(route, 0.5)
	dOrigin := geo.Haversine(m.pos, origin.Pos)
	dDest := geo.Haversine(m.pos, dest.Pos)
	total := geo.Haversine(origin.Pos, dest.Pos)
	if dOrigin < total*0.2 || dDest < total*0.2 {
		t.Fatalf("mid-voyage start not in the middle: %.0f from origin, %.0f from dest", dOrigin, dDest)
	}
}

func TestReportingIntervalITUCadence(t *testing.T) {
	cases := []struct {
		class  ais.Class
		sog    float64
		turn   float64
		moored bool
		want   time.Duration
	}{
		{ais.ClassA, 0, 0, true, 3 * time.Minute},
		{ais.ClassA, 10, 0, false, 10 * time.Second},
		{ais.ClassA, 10, 10, false, 3300 * time.Millisecond},
		{ais.ClassA, 18, 0, false, 6 * time.Second},
		{ais.ClassA, 18, 10, false, 2 * time.Second},
		{ais.ClassA, 25, 0, false, 2 * time.Second},
		{ais.ClassB, 1, 0, false, 3 * time.Minute},
		{ais.ClassB, 8, 0, false, 30 * time.Second},
	}
	for _, c := range cases {
		got := reportingInterval(c.class, c.sog, c.turn, c.moored)
		if got != c.want {
			t.Errorf("interval(class=%v sog=%.0f turn=%.0f moored=%v) = %v, want %v",
				c.class, c.sog, c.turn, c.moored, got, c.want)
		}
	}
}

func TestWorldProducesOrderedReports(t *testing.T) {
	w := NewWorld(Config{Vessels: 50, Seed: 6, Region: geo.AegeanSea, KeepSailing: true})
	var prev time.Time
	count := 0
	seen := map[ais.MMSI]bool{}
	for count < 2000 {
		r, ok := w.Next()
		if !ok {
			t.Fatal("world ran dry with KeepSailing")
		}
		if r.At.Before(prev) {
			t.Fatalf("reports out of order: %v after %v", r.At, prev)
		}
		prev = r.At
		if !geo.AegeanSea.Expand(2).Contains(geo.Point{Lat: r.Pos.Lat, Lon: r.Pos.Lon}) {
			t.Fatalf("regional vessel escaped: %v", r.Pos)
		}
		if !r.Pos.MMSI.Valid() {
			t.Fatalf("invalid MMSI %d", r.Pos.MMSI)
		}
		seen[r.Pos.MMSI] = true
		count++
	}
	if len(seen) < 40 {
		t.Fatalf("only %d/50 vessels reported", len(seen))
	}
}

func TestWorldDeterministic(t *testing.T) {
	collect := func() []Report {
		w := NewWorld(Config{Vessels: 10, Seed: 42, Region: geo.AegeanSea, KeepSailing: true})
		var out []Report
		for i := 0; i < 200; i++ {
			r, ok := w.Next()
			if !ok {
				break
			}
			out = append(out, r)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pos.MMSI != b[i].Pos.MMSI || !a[i].At.Equal(b[i].At) ||
			a[i].Pos.Lat != b[i].Pos.Lat || a[i].Pos.Lon != b[i].Pos.Lon {
			t.Fatalf("report %d differs between identical seeds", i)
		}
	}
}

func TestRecordIntervalStatsIrregular(t *testing.T) {
	ds := Record(geo.AegeanSea, 60, 2*time.Hour, 7)
	if len(ds.Tracks) < 40 {
		t.Fatalf("recorded %d tracks", len(ds.Tracks))
	}
	mean, std := ds.IntervalStats()
	// Raw stream: dense class A cadence plus heavy-tailed outages. The
	// paper's 78.6 s mean applies after 30 s downsampling (tested in the
	// traj package); here the raw stream must simply be irregular.
	if mean <= 0 {
		t.Fatalf("mean interval %.1f", mean)
	}
	if std < mean*0.5 {
		t.Fatalf("interval spread too regular: mean %.1f s std %.1f s", mean, std)
	}
	if ds.Messages() < 1000 {
		t.Fatalf("only %d messages in 2 h from 60 vessels", ds.Messages())
	}
}

func TestVesselStaticMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := NewVessel(3, rng)
	sv := v.Static("PIRAEUS")
	if sv.MMSI != v.MMSI {
		t.Fatal("MMSI mismatch")
	}
	if sv.Length() != v.Profile.Length || sv.Beam() != v.Profile.Beam {
		t.Fatalf("dims: %d x %d, want %d x %d", sv.Length(), sv.Beam(), v.Profile.Length, v.Profile.Beam)
	}
	if sv.Destination != "PIRAEUS" {
		t.Fatalf("destination %q", sv.Destination)
	}
	// The static message must survive the AIS codec.
	lines, err := ais.Marshal(sv, "A", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatal("type 5 must fragment")
	}
}

func TestFleetMixHasClassAB(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	classA, classB := 0, 0
	for i := 0; i < 500; i++ {
		v := NewVessel(i, rng)
		if v.Profile.Class == ais.ClassA {
			classA++
		} else {
			classB++
		}
		if v.Profile.CruiseKn < 3 {
			t.Fatalf("cruise speed %f too low", v.Profile.CruiseKn)
		}
	}
	if classA == 0 || classB == 0 {
		t.Fatalf("fleet mix lacks a class: A=%d B=%d", classA, classB)
	}
	if classB > classA {
		t.Fatalf("class B (%d) should be the minority vs class A (%d)", classB, classA)
	}
}

func TestProximityScenarioShape(t *testing.T) {
	d := GenerateProximity(DefaultProximityConfig())

	wantVessels := 25*4 + 29*3 + 13*2
	if len(d.Vessels) != wantVessels {
		t.Fatalf("vessels = %d, want %d", len(d.Vessels), wantVessels)
	}
	// Every grouped vessel pair must actually close below the threshold:
	// 25 groups of 4 (6 pairs each) + 29 groups of 3 (3 pairs) = 237.
	if len(d.Truth) < 200 || len(d.Truth) > 280 {
		t.Fatalf("ground-truth events = %d, want ~237", len(d.Truth))
	}
	subA := d.EventsWithin(2 * time.Minute)
	subB := d.EventsWithin(5 * time.Minute)
	if len(subA) == 0 || len(subB) <= len(subA) || len(subB) >= len(d.Truth) {
		t.Fatalf("subset sizes inconsistent: A=%d B=%d all=%d", len(subA), len(subB), len(d.Truth))
	}
	// Roughly the paper's proportions: A ~26%, B ~64%.
	fa := float64(len(subA)) / float64(len(d.Truth))
	fb := float64(len(subB)) / float64(len(d.Truth))
	if fa < 0.1 || fa > 0.45 {
		t.Errorf("sub A fraction %.2f far from 0.26", fa)
	}
	if fb < 0.45 || fb > 0.85 {
		t.Errorf("sub B fraction %.2f far from 0.64", fb)
	}
	// History message volume in the neighbourhood of the paper's 4658.
	if m := d.Messages(); m < 2000 || m > 9000 {
		t.Errorf("history messages = %d", m)
	}
	// All events happen after the evaluation time.
	for _, e := range d.Truth {
		if e.TimeToCPA < 0 {
			t.Fatalf("event before eval time: %+v", e)
		}
		if e.CPAMeters >= 1852 {
			t.Fatalf("event with CPA %.0f m", e.CPAMeters)
		}
	}
}

func TestProximityHistoriesUsable(t *testing.T) {
	d := GenerateProximity(DefaultProximityConfig())
	short := 0
	for id, h := range d.History {
		for i := 1; i < len(h); i++ {
			if !h[i].Timestamp.After(h[i-1].Timestamp) {
				t.Fatalf("history for %v not strictly ordered", id)
			}
			if h[i].Timestamp.After(d.EvalTime) {
				t.Fatalf("history for %v leaks past eval time", id)
			}
		}
		if len(h) < 15 {
			short++
		}
	}
	if short > len(d.History)/10 {
		t.Fatalf("%d/%d vessels have short histories", short, len(d.History))
	}
}

func TestProximityDeterministic(t *testing.T) {
	a := GenerateProximity(DefaultProximityConfig())
	b := GenerateProximity(DefaultProximityConfig())
	if len(a.Truth) != len(b.Truth) || a.Messages() != b.Messages() {
		t.Fatal("same seed produced different scenarios")
	}
}

func TestCrossingPairsAreNotEvents(t *testing.T) {
	// A scenario of only crossing pairs (minutes apart in time) must
	// produce almost no ground-truth events.
	cfg := ProximityConfig{Seed: 11, CrossingPairs: 30, HistoryDuration: 10 * time.Minute, ProximityMeters: 500}
	d := GenerateProximity(cfg)
	if len(d.Truth) > 3 {
		t.Fatalf("crossing pairs produced %d proximity events", len(d.Truth))
	}
}

func BenchmarkWorldNext(b *testing.B) {
	w := NewWorld(Config{Vessels: 1000, Seed: 1, KeepSailing: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := w.Next(); !ok {
			b.Fatal("world dried up")
		}
	}
}

func BenchmarkGenerateProximity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultProximityConfig()
		cfg.Seed = int64(i)
		GenerateProximity(cfg)
	}
}

package vtff

import (
	"testing"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/events"
	"seatwin/internal/fleetsim"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

var t0 = time.Date(2023, 9, 18, 9, 0, 0, 0, time.UTC)

func TestAccumulatorDeduplicatesPerWindow(t *testing.T) {
	cfg := DefaultConfig()
	acc := NewAccumulator(cfg)
	p := geo.Point{Lat: 37.5, Lon: 24.5}
	// Five reports from the same vessel in the same cell and window.
	for i := 0; i < 5; i++ {
		acc.Add(7, p, t0.Add(time.Duration(i)*30*time.Second))
	}
	w := cfg.WindowIndex(t0)
	flow := acc.Window(w)
	if flow.Total() != 1 {
		t.Fatalf("deduplication failed: total %d", flow.Total())
	}
	// A second vessel in the same cell adds one.
	acc.Add(8, p, t0)
	if flow.Total() != 2 {
		t.Fatalf("two vessels must count 2, got %d", flow.Total())
	}
	// The same vessel in the NEXT window counts again.
	acc.Add(7, p, t0.Add(cfg.WindowStep))
	if got := acc.Window(w + 1).Total(); got != 1 {
		t.Fatalf("next window total %d", got)
	}
}

func TestWindowIndexRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	w := cfg.WindowIndex(t0)
	start := cfg.WindowStart(w)
	if t0.Sub(start) < 0 || t0.Sub(start) >= cfg.WindowStep {
		t.Fatalf("window start %v does not bracket %v", start, t0)
	}
	if cfg.WindowIndex(start) != w {
		t.Fatal("window index not stable at window start")
	}
}

func TestIndirectBinsForecastPoints(t *testing.T) {
	cfg := DefaultConfig()
	start := geo.Point{Lat: 37.5, Lon: 24.5}
	f := events.Forecast{MMSI: 9}
	for h := 0; h <= 6; h++ {
		dt := time.Duration(h) * 5 * time.Minute
		f.Points = append(f.Points, events.ForecastPoint{
			Pos: geo.DeadReckon(start, 14, 90, dt.Seconds()),
			At:  t0.Add(dt),
		})
	}
	flows := Indirect([]events.Forecast{f}, cfg)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	total := 0
	for _, flow := range flows {
		total += flow.Total()
	}
	// One vessel over 7 windows contributes at most 7 units (less if
	// two points share a cell+window).
	if total < 5 || total > 7 {
		t.Fatalf("total contributions %d", total)
	}
	// The windows covered span the forecast horizon.
	if len(flows) != 7 {
		t.Fatalf("expected 7 windows (one per point), got %d", len(flows))
	}
}

func TestDirectPersistence(t *testing.T) {
	cellA := hexgrid.LatLonToCell(geo.Point{Lat: 37.5, Lon: 24.5}, 7)
	cellB := hexgrid.LatLonToCell(geo.Point{Lat: 38.5, Lon: 23.5}, 7)
	history := map[int64]Flow{
		9: {cellA: 3, cellB: 1},
	}
	out := Direct(history, 9, 3, DirectPersistence)
	if len(out) != 3 {
		t.Fatalf("horizons %d", len(out))
	}
	for h := int64(10); h <= 12; h++ {
		if out[h][cellA] != 3 || out[h][cellB] != 1 {
			t.Fatalf("window %d: %v", h, out[h])
		}
	}
}

func TestDirectMovingAverage(t *testing.T) {
	cell := hexgrid.LatLonToCell(geo.Point{Lat: 37.5, Lon: 24.5}, 7)
	history := map[int64]Flow{
		7: {cell: 2},
		8: {cell: 4},
		9: {cell: 6},
	}
	out := Direct(history, 9, 1, DirectMovingAverage)
	if got := out[10][cell]; got != 4 {
		t.Fatalf("moving average = %d, want 4", got)
	}
}

func TestMAE(t *testing.T) {
	cellA := hexgrid.LatLonToCell(geo.Point{Lat: 37.5, Lon: 24.5}, 7)
	cellB := hexgrid.LatLonToCell(geo.Point{Lat: 38.5, Lon: 23.5}, 7)
	pred := Flow{cellA: 3}
	actual := Flow{cellA: 5, cellB: 2}
	// Errors: |3-5| = 2, |0-2| = 2 over 2 cells = 2.
	if got := MAE(pred, actual); got != 2 {
		t.Fatalf("MAE = %f", got)
	}
	if MAE(nil, nil) != 0 {
		t.Fatal("empty MAE must be 0")
	}
	if MAE(actual, actual) != 0 {
		t.Fatal("identical flows must have MAE 0")
	}
}

func TestHeatLevels(t *testing.T) {
	cases := map[int]string{0: "none", 1: "low", 2: "low", 3: "medium", 5: "medium", 6: "high", 50: "high"}
	for count, want := range cases {
		if got := HeatLevel(count); got != want {
			t.Errorf("HeatLevel(%d) = %q, want %q", count, got, want)
		}
	}
}

func TestFlowActiveCellsSortedAndPositive(t *testing.T) {
	cellA := hexgrid.LatLonToCell(geo.Point{Lat: 37.5, Lon: 24.5}, 7)
	cellB := hexgrid.LatLonToCell(geo.Point{Lat: 38.5, Lon: 23.5}, 7)
	f := Flow{cellA: 1, cellB: 0}
	active := f.ActiveCells()
	if len(active) != 1 || active[0] != cellA {
		t.Fatalf("active = %v", active)
	}
}

// TestIndirectBeatsDirect reproduces the [17] comparison the paper
// cites: on moving traffic, the indirect strategy (rasterised route
// forecasts — even the kinematic baseline) must clearly beat direct
// sequence extrapolation, because the direct strategy cannot move
// traffic between cells.
func TestIndirectBeatsDirect(t *testing.T) {
	cfg := DefaultConfig()
	ds := fleetsim.Record(geo.AegeanSea, 120, 3*time.Hour, 31)

	// Split each track at a cut time: history before, actual after.
	cut := ds.Start.Add(ds.Duration - 35*time.Minute)
	lastWindow := cfg.WindowIndex(cut)

	histAcc := NewAccumulator(cfg)
	actAcc := NewAccumulator(cfg)
	kin := events.NewKinematicForecaster()
	var forecasts []events.Forecast
	for _, tr := range ds.Tracks {
		var hist []ais.PositionReport
		for _, r := range tr.Reports {
			p := geo.Point{Lat: r.Lat, Lon: r.Lon}
			if r.Timestamp.Before(cut) {
				histAcc.Add(r.MMSI, p, r.Timestamp)
				hist = append(hist, r)
			} else {
				actAcc.Add(r.MMSI, p, r.Timestamp)
			}
		}
		if f, ok := kin.ForecastTrack(hist); ok {
			forecasts = append(forecasts, f)
		}
	}
	history := make(map[int64]Flow)
	actual := make(map[int64]Flow)
	for _, w := range histAcc.Windows() {
		history[w] = histAcc.Window(w)
	}
	for _, w := range actAcc.Windows() {
		actual[w] = actAcc.Window(w)
	}

	cmp := Compare(forecasts, history, actual, lastWindow, 6, cfg)
	if cmp.Windows != 6 {
		t.Fatalf("compared %d windows", cmp.Windows)
	}
	if cmp.IndirectMAE <= 0 || cmp.DirectMAE <= 0 {
		t.Fatalf("degenerate MAEs: %+v", cmp)
	}
	if cmp.AdvantageFactor() < 1.2 {
		t.Fatalf("indirect advantage %.2fx below expectation (ind %.3f dir %.3f)",
			cmp.AdvantageFactor(), cmp.IndirectMAE, cmp.DirectMAE)
	}
}

func BenchmarkIndirect(b *testing.B) {
	cfg := DefaultConfig()
	var forecasts []events.Forecast
	start := geo.Point{Lat: 37.5, Lon: 24.5}
	for v := 0; v < 500; v++ {
		f := events.Forecast{MMSI: ais.MMSI(v + 1)}
		p := geo.Destination(start, float64(v%360), float64(v)*50)
		for h := 0; h <= 6; h++ {
			dt := time.Duration(h) * 5 * time.Minute
			f.Points = append(f.Points, events.ForecastPoint{
				Pos: geo.DeadReckon(p, 12, float64(v%360), dt.Seconds()),
				At:  t0.Add(dt),
			})
		}
		forecasts = append(forecasts, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Indirect(forecasts, cfg)
	}
}

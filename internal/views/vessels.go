package views

import (
	"io"
	"sort"
	"strconv"
	"time"

	"seatwin/internal/ais"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
)

// VesselItem is one vessel in the world snapshot: the pre-encoded JSON
// document plus the fields filters need, so limit/bbox queries never
// decode anything.
type VesselItem struct {
	MMSI     ais.MMSI
	Lat, Lon float64
	TS       int64 // unix nanos of the last report
	Enc      []byte
}

// VesselSnapshot is one immutable world vessel list, newest first.
type VesselSnapshot struct {
	Epoch   uint64
	BuiltAt time.Time
	Items   []VesselItem

	// body is the pre-concatenated JSON array of the first bodyN items
	// — the single-Write fast path for the default query.
	body  []byte
	bodyN int
	bytes int64 // total encoded bytes across items (instrumentation)
}

func emptyVesselSnapshot() *VesselSnapshot {
	return &VesselSnapshot{body: []byte("[]\n")}
}

// Len returns the vessel count.
func (s *VesselSnapshot) Len() int { return len(s.Items) }

var (
	jsonOpen  = []byte("[")
	jsonComma = []byte(",")
	jsonClose = []byte("]\n")
)

// WriteJSON streams up to limit vessels (newest first), optionally
// filtered by a bounding box, as one JSON array. It allocates nothing:
// the fast path (no box, limit covers the pre-built body) is a single
// Write; the general path writes pre-encoded per-vessel documents. It
// returns the number of vessels written.
func (s *VesselSnapshot) WriteJSON(w io.Writer, limit int, box *geo.BBox) (int, error) {
	if limit <= 0 || limit > len(s.Items) {
		limit = len(s.Items)
	}
	if box == nil && limit == s.bodyN {
		_, err := w.Write(s.body)
		return s.bodyN, err
	}
	if _, err := w.Write(jsonOpen); err != nil {
		return 0, err
	}
	n := 0
	for i := range s.Items {
		if n == limit {
			break
		}
		it := &s.Items[i]
		if box != nil && !box.Contains(geo.Point{Lat: it.Lat, Lon: it.Lon}) {
			continue
		}
		if n > 0 {
			if _, err := w.Write(jsonComma); err != nil {
				return n, err
			}
		}
		if _, err := w.Write(it.Enc); err != nil {
			return n, err
		}
		n++
	}
	_, err := w.Write(jsonClose)
	return n, err
}

// regionAggregate accumulates one cell's summary during a refresh pass.
type regionAggregate struct {
	count    int
	underway int
	sumSOG   float64
	maxSOG   float64
}

// RegionSnapshot is one immutable per-cell summary view: for every
// hex cell with at least one vessel, its population, underway count and
// SOG aggregates — the cell-grid pre-materialization.
type RegionSnapshot struct {
	Epoch   uint64
	BuiltAt time.Time
	Cells   int
	body    []byte
}

func emptyRegionSnapshot() *RegionSnapshot {
	return &RegionSnapshot{body: []byte("[]\n")}
}

// WriteJSON writes the whole pre-encoded summary array in one Write.
func (s *RegionSnapshot) WriteJSON(w io.Writer) error {
	_, err := w.Write(s.body)
	return err
}

// buildVesselAndRegionSnapshots walks the staging shards once, building
// both the world list and the per-cell aggregates. Dirty entries are
// re-encoded into fresh immutable buffers; clean ones keep their bytes
// (shared with older snapshots).
func (v *Views) buildVesselAndRegionSnapshots(epoch uint64, builtAt time.Time) (*VesselSnapshot, *RegionSnapshot) {
	items := v.itemScratch[:0]
	for c := range v.regionAgg {
		delete(v.regionAgg, c)
	}
	var newest int64
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		for mmsi, e := range sh.entries {
			if e.enc == nil {
				e.enc = appendVesselJSON(nil, &e.state)
			}
			ts := e.state.TS.UnixNano()
			if ts > newest {
				newest = ts
			}
			items = append(items, VesselItem{
				MMSI: mmsi,
				Lat:  e.state.Lat, Lon: e.state.Lon,
				TS: ts, Enc: e.enc,
			})
			agg := v.regionAgg[e.cell]
			if agg == nil {
				agg = &regionAggregate{}
				v.regionAgg[e.cell] = agg
			}
			agg.count++
			if e.state.SOG > 0.5 {
				agg.underway++
			}
			agg.sumSOG += e.state.SOG
			if e.state.SOG > agg.maxSOG {
				agg.maxSOG = e.state.SOG
			}
		}
		sh.mu.Unlock()
	}
	v.itemScratch = items

	// Expiry is relative to the newest report (sim-time friendly); a
	// dropped vessel leaves staging too, so it cannot resurrect without
	// a fresh report.
	if exp := v.cfg.ExpireAfter; exp > 0 && newest > 0 {
		cutoff := newest - int64(exp)
		live := items[:0]
		for _, it := range items {
			if it.TS >= cutoff {
				live = append(live, it)
			} else {
				sh := v.shardFor(it.MMSI)
				sh.mu.Lock()
				if e, ok := sh.entries[it.MMSI]; ok && e.state.TS.UnixNano() <= it.TS {
					delete(sh.entries, it.MMSI)
				}
				sh.mu.Unlock()
			}
		}
		items = live
	}

	sort.Slice(items, func(i, j int) bool {
		if items[i].TS != items[j].TS {
			return items[i].TS > items[j].TS
		}
		return items[i].MMSI < items[j].MMSI
	})

	snap := &VesselSnapshot{Epoch: epoch, BuiltAt: builtAt}
	snap.Items = make([]VesselItem, len(items))
	copy(snap.Items, items)
	for i := range snap.Items {
		snap.bytes += int64(len(snap.Items[i].Enc))
	}
	snap.bodyN = len(snap.Items)
	if snap.bodyN > v.cfg.DefaultLimit {
		snap.bodyN = v.cfg.DefaultLimit
	}
	body := make([]byte, 0, 2+snap.bytes/int64(max(len(snap.Items), 1))*int64(snap.bodyN)+int64(snap.bodyN))
	body = append(body, '[')
	for i := 0; i < snap.bodyN; i++ {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, snap.Items[i].Enc...)
	}
	body = append(body, ']', '\n')
	snap.body = body

	return snap, v.buildRegionSnapshot(epoch, builtAt)
}

// buildRegionSnapshot encodes the aggregate map, busiest cells first.
func (v *Views) buildRegionSnapshot(epoch uint64, builtAt time.Time) *RegionSnapshot {
	type cellAgg struct {
		cell hexgrid.Cell
		agg  *regionAggregate
	}
	cells := make([]cellAgg, 0, len(v.regionAgg))
	for c, a := range v.regionAgg {
		cells = append(cells, cellAgg{c, a})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].agg.count != cells[j].agg.count {
			return cells[i].agg.count > cells[j].agg.count
		}
		return cells[i].cell < cells[j].cell
	})
	body := make([]byte, 0, 64*len(cells)+3)
	body = append(body, '[')
	for i, ca := range cells {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, `{"cell":"`...)
		body = append(body, ca.cell.String()...)
		body = append(body, `","count":`...)
		body = strconv.AppendInt(body, int64(ca.agg.count), 10)
		body = append(body, `,"underway":`...)
		body = strconv.AppendInt(body, int64(ca.agg.underway), 10)
		body = append(body, `,"mean_sog":`...)
		body = strconv.AppendFloat(body, ca.agg.sumSOG/float64(ca.agg.count), 'f', 1, 64)
		body = append(body, `,"max_sog":`...)
		body = strconv.AppendFloat(body, ca.agg.maxSOG, 'f', 1, 64)
		body = append(body, '}')
	}
	body = append(body, ']', '\n')
	return &RegionSnapshot{Epoch: epoch, BuiltAt: builtAt, Cells: len(cells), body: body}
}

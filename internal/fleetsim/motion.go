package fleetsim

import (
	"hash/fnv"
	"math"
	"math/rand"

	"seatwin/internal/geo"
)

// Route is the waypoint plan a simulated vessel follows from an origin
// port to a destination port.
type Route struct {
	Origin, Destination Port
	Waypoints           []geo.Point // includes neither origin nor destination
}

// laneSeed derives a deterministic seed for an origin/destination pair,
// so every vessel on the same OD pair shares the same lane geometry —
// the "common pathways" structure EnvClus* extracts.
func laneSeed(origin, dest string) int64 {
	h := fnv.New64a()
	h.Write([]byte(origin))
	h.Write([]byte{0})
	h.Write([]byte(dest))
	return int64(h.Sum64())
}

// BuildRoute constructs the lane between two ports: a great-circle
// baseline bent by deterministic cross-track offsets (the lane shape),
// plus per-vessel lateral jitter drawn from rng.
func BuildRoute(origin, dest Port, jitterMeters float64, rng *rand.Rand) Route {
	laneRng := rand.New(rand.NewSource(laneSeed(origin.Name, dest.Name)))
	dist := geo.Haversine(origin.Pos, dest.Pos)
	// One waypoint per ~60 km so a 30-minute forecast window regularly
	// spans course changes, between 3 and 24.
	n := int(dist / 60000)
	if n < 3 {
		n = 3
	}
	if n > 24 {
		n = 24
	}
	// Lane amplitude: up to 4% of leg length, capped at 60 km.
	amp := math.Min(dist*0.04, 60000)
	// Two superposed bends give routes an S shape often seen in sea
	// lanes skirting coastlines.
	phase := laneRng.Float64() * math.Pi
	a1 := (laneRng.Float64()*2 - 1) * amp
	a2 := (laneRng.Float64()*2 - 1) * amp / 2

	wps := make([]geo.Point, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n+1)
		base := geo.Interpolate(origin.Pos, dest.Pos, f)
		bearing := geo.InitialBearing(origin.Pos, dest.Pos)
		offset := a1*math.Sin(math.Pi*f+phase) + a2*math.Sin(2*math.Pi*f)
		offset += (rng.NormFloat64()) * jitterMeters
		wp := geo.Destination(base, bearing+90, offset)
		wps = append(wps, wp)
	}
	return Route{Origin: origin, Destination: dest, Waypoints: wps}
}

// Points returns the full polyline including the endpoints.
func (r Route) Points() []geo.Point {
	pts := make([]geo.Point, 0, len(r.Waypoints)+2)
	pts = append(pts, r.Origin.Pos)
	pts = append(pts, r.Waypoints...)
	pts = append(pts, r.Destination.Pos)
	return pts
}

// Length returns the route length in meters along the polyline.
func (r Route) Length() float64 {
	pts := r.Points()
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += geo.Haversine(pts[i-1], pts[i])
	}
	return total
}

// Course-meander parameters: real vessel tracks are not piecewise
// straight — helm corrections, current and weather produce a slowly
// varying course offset. The offset follows an Ornstein-Uhlenbeck
// process with stationary standard deviation meanderStdDeg and
// correlation time meanderTauSeconds, which yields sustained gentle
// turn rates on the order of 1-2 degrees per minute — the curvature a
// learned forecaster can extrapolate and dead reckoning cannot.
const (
	meanderStdDeg     = 10.0
	meanderTauSeconds = 500.0
)

// motionState integrates a vessel along its route with bounded turn
// rate, gentle speed dynamics and OU course meander.
type motionState struct {
	pos     geo.Point
	sog     float64 // knots
	cog     float64 // degrees
	bias    float64 // meander course offset, degrees
	targets []geo.Point
	nextWP  int
	moored  bool
	rng     *rand.Rand // nil disables meander (deterministic tests)
}

func newMotionState(route Route, startFraction float64) motionState {
	pts := route.Points()
	// Start partway along the route so fleets do not all depart ports
	// simultaneously.
	idx := 1
	pos := pts[0]
	if startFraction > 0 {
		total := route.Length() * startFraction
		for idx < len(pts) {
			leg := geo.Haversine(pos, pts[idx])
			if total <= leg {
				pos = geo.Interpolate(pos, pts[idx], total/math.Max(leg, 1))
				break
			}
			total -= leg
			pos = pts[idx]
			idx++
		}
		if idx >= len(pts) {
			idx = len(pts) - 1
			pos = pts[idx]
		}
	}
	cog := 0.0
	if idx < len(pts) {
		cog = geo.InitialBearing(pos, pts[idx])
	}
	return motionState{pos: pos, cog: cog, targets: pts, nextWP: idx}
}

// arrivalThresholdMeters is how close a vessel must get to a waypoint
// before steering for the next one.
const arrivalThresholdMeters = 400

// advance integrates the state forward dt seconds toward the vessel's
// waypoints. It returns false once the final waypoint is reached.
func (m *motionState) advance(dtSeconds float64, p Profile) bool {
	if m.nextWP >= len(m.targets) {
		m.moored = true
		m.sog = 0
		return false
	}
	// Sub-step so long gaps between AIS transmissions still follow the
	// curved path instead of cutting corners.
	remaining := dtSeconds
	for remaining > 0 {
		step := math.Min(remaining, 10)
		remaining -= step
		if !m.step(step, p) {
			return false
		}
	}
	return true
}

func (m *motionState) step(dt float64, p Profile) bool {
	target := m.targets[m.nextWP]
	distToWP := geo.Haversine(m.pos, target)
	if distToWP < arrivalThresholdMeters {
		m.nextWP++
		if m.nextWP >= len(m.targets) {
			m.moored = true
			m.sog = 0
			return false
		}
		target = m.targets[m.nextWP]
	}

	// Evolve the meander offset (exact OU discretisation).
	if m.rng != nil {
		decay := math.Exp(-dt / meanderTauSeconds)
		diffusion := meanderStdDeg * math.Sqrt(1-decay*decay)
		m.bias = m.bias*decay + diffusion*m.rng.NormFloat64()
	}

	// Steer toward the waypoint, bounded by the profile turn rate.
	desired := geo.InitialBearing(m.pos, target) + m.bias
	diff := math.Mod(desired-m.cog+540, 360) - 180
	maxTurn := p.MaxTurnRate / 60 * dt
	if math.Abs(diff) > maxTurn {
		if diff > 0 {
			diff = maxTurn
		} else {
			diff = -maxTurn
		}
	}
	m.cog = math.Mod(m.cog+diff+360, 360)

	// Speed: relax toward cruise, slow down on the final approach.
	targetSpeed := p.CruiseKn
	if m.nextWP == len(m.targets)-1 && distToWP < 8000 {
		targetSpeed = math.Max(4, p.CruiseKn*distToWP/8000)
	}
	m.sog += (targetSpeed - m.sog) * math.Min(1, dt/120)

	dist := m.sog * geo.KnotsToMetersPerSecond * dt
	m.pos = geo.Destination(m.pos, m.cog, dist)
	return true
}

// turnRate estimates the instantaneous turn demand in degrees/minute,
// which drives the ITU reporting cadence.
func (m *motionState) turnRate(p Profile) float64 {
	if m.nextWP >= len(m.targets) {
		return 0
	}
	desired := geo.InitialBearing(m.pos, m.targets[m.nextWP])
	diff := math.Abs(math.Mod(desired-m.cog+540, 360) - 180)
	if diff < 2 {
		return 0
	}
	return math.Min(diff, p.MaxTurnRate)
}

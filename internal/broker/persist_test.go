package broker

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// payload is the durable test value type.
type payload struct {
	Seq  int
	Note string
}

func init() { RegisterType(payload{}) }

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b1, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.CreateTopic("ais", 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := b1.Produce("ais", fmt.Sprintf("k%d", i%7), payload{Seq: i, Note: "hello"}); err != nil {
			t.Fatal(err)
		}
	}
	// Consume and commit half.
	c, _ := b1.Subscribe("ais", "g")
	got := 0
	for got < 50 {
		recs := c.Poll(50-got, time.Second)
		if recs == nil {
			t.Fatal("poll stalled")
		}
		got += len(recs)
	}
	c.Commit()
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the log and offsets survive.
	b2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Partitions("ais") != 4 {
		t.Fatalf("partitions = %d", b2.Partitions("ais"))
	}
	ends, _ := b2.EndOffsets("ais")
	total := int64(0)
	for _, e := range ends {
		total += e
	}
	if total != 100 {
		t.Fatalf("replayed %d records, want 100", total)
	}
	// The group resumes from its committed offsets: exactly 50 remain.
	c2, _ := b2.Subscribe("ais", "g")
	remaining := 0
	for {
		recs := c2.Poll(200, 200*time.Millisecond)
		if recs == nil {
			break
		}
		for _, r := range recs {
			p, ok := r.Value.(payload)
			if !ok || p.Note != "hello" {
				t.Fatalf("value corrupted: %#v", r.Value)
			}
			remaining++
		}
	}
	if remaining != 50 {
		t.Fatalf("resumed with %d records, want 50", remaining)
	}
}

func TestDurableTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	b1, _ := OpenDir(dir)
	b1.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		b1.Produce("t", "k", payload{Seq: i})
	}
	b1.Close()

	// Simulate a crash mid-write: append garbage half-record.
	path := segmentPath(dir, "t", 1, 0)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 1, 200, 1, 2, 3}) // header says 456 bytes, only 3 present
	f.Close()

	b2, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer b2.Close()
	ends, _ := b2.EndOffsets("t")
	if ends[0] != 10 {
		t.Fatalf("replayed %d records, want 10 (tail dropped)", ends[0])
	}
}

func TestDurableOffsetsSurviveWithoutReplayedGroupFile(t *testing.T) {
	dir := t.TempDir()
	b1, _ := OpenDir(dir)
	b1.CreateTopic("t", 2)
	for i := 0; i < 20; i++ {
		b1.Produce("t", fmt.Sprintf("k%d", i), payload{Seq: i})
	}
	b1.Close()
	// Remove the offsets checkpoint: a fresh group starts from zero.
	os.Remove(filepath.Join(dir, "groups.json"))
	b2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	c, _ := b2.Subscribe("t", "g")
	got := 0
	for {
		recs := c.Poll(100, 200*time.Millisecond)
		if recs == nil {
			break
		}
		got += len(recs)
	}
	if got != 20 {
		t.Fatalf("fresh group read %d, want 20", got)
	}
}

func TestInMemoryBrokerUnaffected(t *testing.T) {
	b := New()
	b.CreateTopic("t", 1)
	if _, _, err := b.Produce("t", "k", 42); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableTruncateKeepsFiles(t *testing.T) {
	dir := t.TempDir()
	b1, _ := OpenDir(dir)
	b1.CreateTopic("t", 1)
	for i := 0; i < 30; i++ {
		b1.Produce("t", "k", payload{Seq: i})
	}
	b1.Truncate("t", 5) // in-memory retention only
	ends, _ := b1.EndOffsets("t")
	if ends[0] != 30 {
		t.Fatalf("end offset %d", ends[0])
	}
	b1.Close()
	// Reopen: the full history is still on disk.
	b2, _ := OpenDir(dir)
	defer b2.Close()
	ends2, _ := b2.EndOffsets("t")
	if ends2[0] != 30 {
		t.Fatalf("disk lost records: %d", ends2[0])
	}
}

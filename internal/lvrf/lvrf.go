// Package lvrf implements the paper's Long-term Vessel Route
// Forecasting component (§4.1): an EnvClus*-style model that mines
// common pathways from historical AIS trips between port pairs,
// represents them as a weighted transition graph of clustered
// waypoints, predicts the route a vessel will follow to its destination
// port, selects branches at route junctions with classifiers over
// vessel-specific features, and aggregates "Patterns of Life"
// statistics for the traffic between the ports.
package lvrf

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"seatwin/internal/geo"
	"seatwin/internal/metrics"
)

// Features are the vessel-specific attributes the junction classifiers
// condition on (§4.1 lists type, length, draught, DWT among them).
type Features struct {
	ShipType uint8
	Length   float64 // meters
	Draught  float64 // meters
}

// Trip is one historical voyage between two ports.
type Trip struct {
	MMSI     uint32
	Features Features
	Origin   string
	Dest     string
	Points   []geo.Point
	Times    []time.Time
}

// Duration returns the trip's elapsed time.
func (t Trip) Duration() time.Duration {
	if len(t.Times) < 2 {
		return 0
	}
	return t.Times[len(t.Times)-1].Sub(t.Times[0])
}

// Length returns the sailed distance in meters.
func (t Trip) Length() float64 {
	total := 0.0
	for i := 1; i < len(t.Points); i++ {
		total += geo.Haversine(t.Points[i-1], t.Points[i])
	}
	return total
}

// Config controls model construction.
type Config struct {
	// Levels is the number of equidistant slices each trip is resampled
	// to; graph nodes live on these slices.
	Levels int
	// ClusterRadiusMeters merges resampled points on the same slice
	// into one node when they fall within this radius of the node
	// centroid.
	ClusterRadiusMeters float64
	// MinTrips is the minimum number of historical trips an OD pair
	// needs before a dedicated lane model is built.
	MinTrips int
	// Workers bounds how many OD-pair lane graphs are built
	// concurrently by Train. Zero or one builds sequentially; the
	// result is identical for any value (lane construction is
	// per-pair-deterministic and the merge is ordered).
	Workers int
	// OnLane, when non-nil, is invoked once per built lane (from the
	// merging goroutine, in deterministic pair order) — the training
	// observability hook.
	OnLane func(origin, dest string, trips int)
}

// DefaultConfig mirrors the granularity EnvClus* operates at.
func DefaultConfig() Config {
	return Config{Levels: 40, ClusterRadiusMeters: 8000, MinTrips: 3}
}

type odKey struct{ origin, dest string }

// node is one clustered waypoint on a slice.
type node struct {
	centroid geo.Point
	count    int
}

// edge is a weighted transition between nodes of consecutive slices,
// carrying the mean features of the vessels that used it — the
// junction classifier's evidence.
type edge struct {
	to      int
	weight  int
	featSum Features
}

func (e *edge) meanFeatures() Features {
	w := float64(e.weight)
	if w == 0 {
		return Features{}
	}
	return Features{
		ShipType: uint8(float64(e.featSum.ShipType) / w),
		Length:   e.featSum.Length / w,
		Draught:  e.featSum.Draught / w,
	}
}

// laneGraph is the weighted transition graph of one OD pair.
type laneGraph struct {
	levels [][]node
	// edges[level][nodeIdx] lists transitions into level+1.
	edges [][][]edge
	trips int
	pol   PatternsOfLife
}

// PatternsOfLife aggregates the historical mobility statistics the UI
// presents alongside a route forecast (Figure 4b).
type PatternsOfLife struct {
	Trips         int
	MeanDuration  time.Duration
	StdDuration   time.Duration
	MeanLengthM   float64
	MeanSpeedKn   float64
	DistinctMMSIs int
	TypeHistogram map[uint8]int
}

// Model holds the per-OD-pair lane graphs.
type Model struct {
	cfg   Config
	lanes map[odKey]*laneGraph
	ports map[string]geo.Point
}

// Train builds the model from historical trips. Ports maps port names
// to coordinates and is used for fallback forecasting of unseen pairs.
// Lane graphs of distinct OD pairs share nothing, so cfg.Workers of
// them are built concurrently; pairs are processed in sorted order and
// merged into the model on the calling goroutine, so the result (and
// the OnLane callback order) is identical for every worker count.
func Train(trips []Trip, ports map[string]geo.Point, cfg Config) *Model {
	if cfg.Levels <= 1 {
		workers, onLane := cfg.Workers, cfg.OnLane
		cfg = DefaultConfig()
		cfg.Workers, cfg.OnLane = workers, onLane
	}
	m := &Model{cfg: cfg, lanes: make(map[odKey]*laneGraph), ports: ports}
	grouped := make(map[odKey][]Trip)
	for _, t := range trips {
		if len(t.Points) < 2 || t.Origin == t.Dest {
			continue
		}
		k := odKey{t.Origin, t.Dest}
		grouped[k] = append(grouped[k], t)
	}
	keys := make([]odKey, 0, len(grouped))
	for k, group := range grouped {
		if len(group) >= cfg.MinTrips {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].dest < keys[j].dest
	})

	workers := cfg.Workers
	if workers > len(keys) {
		workers = len(keys)
	}
	lanes := make([]*laneGraph, len(keys))
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					lanes[i] = buildLane(grouped[keys[i]], cfg)
				}
			}()
		}
		for i := range keys {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i, k := range keys {
			lanes[i] = buildLane(grouped[k], cfg)
		}
	}
	for i, k := range keys {
		m.lanes[k] = lanes[i]
		metrics.Training.Lane(uint64(i))
		if cfg.OnLane != nil {
			cfg.OnLane(k.origin, k.dest, lanes[i].trips)
		}
	}
	return m
}

// Lanes returns the number of OD-pair lane graphs the model holds —
// the size gauge the lifecycle trainer reports after a rebuild.
func (m *Model) Lanes() int { return len(m.lanes) }

// TotalTrips returns the number of historical trips folded into the
// model's lane graphs.
func (m *Model) TotalTrips() int {
	total := 0
	for _, lg := range m.lanes {
		total += lg.trips
	}
	return total
}

// Pairs returns the OD pairs the model has dedicated lanes for.
func (m *Model) Pairs() [][2]string {
	out := make([][2]string, 0, len(m.lanes))
	for k := range m.lanes {
		out = append(out, [2]string{k.origin, k.dest})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// resample places a trip's polyline onto `levels` equidistant slices.
func resample(points []geo.Point, levels int) []geo.Point {
	// Cumulative arc length.
	cum := make([]float64, len(points))
	for i := 1; i < len(points); i++ {
		cum[i] = cum[i-1] + geo.Haversine(points[i-1], points[i])
	}
	total := cum[len(cum)-1]
	out := make([]geo.Point, levels)
	if total == 0 {
		for i := range out {
			out[i] = points[0]
		}
		return out
	}
	j := 0
	for i := 0; i < levels; i++ {
		target := total * float64(i) / float64(levels-1)
		for j < len(cum)-2 && cum[j+1] < target {
			j++
		}
		span := cum[j+1] - cum[j]
		f := 0.0
		if span > 0 {
			f = (target - cum[j]) / span
		}
		out[i] = geo.Interpolate(points[j], points[j+1], f)
	}
	return out
}

// buildLane clusters the group's resampled trips level by level and
// connects consecutive levels with weighted, feature-annotated edges.
func buildLane(group []Trip, cfg Config) *laneGraph {
	lg := &laneGraph{trips: len(group)}
	resampled := make([][]geo.Point, len(group))
	for i, t := range group {
		resampled[i] = resample(t.Points, cfg.Levels)
	}
	// Cluster each level greedily: a point joins the nearest existing
	// node within the radius, else founds a new node.
	assignment := make([][]int, len(group)) // trip -> level -> node idx
	for i := range assignment {
		assignment[i] = make([]int, cfg.Levels)
	}
	lg.levels = make([][]node, cfg.Levels)
	for lvl := 0; lvl < cfg.Levels; lvl++ {
		for ti := range group {
			p := resampled[ti][lvl]
			bestIdx, bestDist := -1, cfg.ClusterRadiusMeters
			for ni, n := range lg.levels[lvl] {
				if d := geo.FastDistance(p, n.centroid); d < bestDist {
					bestIdx, bestDist = ni, d
				}
			}
			if bestIdx < 0 {
				lg.levels[lvl] = append(lg.levels[lvl], node{centroid: p, count: 1})
				assignment[ti][lvl] = len(lg.levels[lvl]) - 1
			} else {
				// Update the running centroid.
				n := &lg.levels[lvl][bestIdx]
				w := float64(n.count)
				n.centroid = geo.Point{
					Lat: (n.centroid.Lat*w + p.Lat) / (w + 1),
					Lon: geo.NormalizeLon((n.centroid.Lon*w + p.Lon) / (w + 1)),
				}
				n.count++
				assignment[ti][lvl] = bestIdx
			}
		}
	}
	// Edges with feature accumulation.
	lg.edges = make([][][]edge, cfg.Levels-1)
	for lvl := 0; lvl < cfg.Levels-1; lvl++ {
		lg.edges[lvl] = make([][]edge, len(lg.levels[lvl]))
	}
	for ti, t := range group {
		for lvl := 0; lvl < cfg.Levels-1; lvl++ {
			from := assignment[ti][lvl]
			to := assignment[ti][lvl+1]
			found := false
			for ei := range lg.edges[lvl][from] {
				e := &lg.edges[lvl][from][ei]
				if e.to == to {
					e.weight++
					e.featSum.ShipType += t.Features.ShipType
					e.featSum.Length += t.Features.Length
					e.featSum.Draught += t.Features.Draught
					found = true
					break
				}
			}
			if !found {
				lg.edges[lvl][from] = append(lg.edges[lvl][from], edge{
					to: to, weight: 1, featSum: t.Features,
				})
			}
		}
	}
	lg.pol = computePOL(group)
	return lg
}

func computePOL(group []Trip) PatternsOfLife {
	pol := PatternsOfLife{Trips: len(group), TypeHistogram: make(map[uint8]int)}
	mmsis := map[uint32]bool{}
	var durSum, durSq float64
	var lenSum, speedSum float64
	for _, t := range group {
		d := t.Duration().Seconds()
		durSum += d
		durSq += d * d
		l := t.Length()
		lenSum += l
		if d > 0 {
			speedSum += l / d / geo.KnotsToMetersPerSecond
		}
		mmsis[t.MMSI] = true
		pol.TypeHistogram[t.Features.ShipType]++
	}
	n := float64(len(group))
	if n > 0 {
		mean := durSum / n
		pol.MeanDuration = time.Duration(mean * float64(time.Second))
		variance := durSq/n - mean*mean
		if variance > 0 {
			pol.StdDuration = time.Duration(math.Sqrt(variance) * float64(time.Second))
		}
		pol.MeanLengthM = lenSum / n
		pol.MeanSpeedKn = speedSum / n
	}
	pol.DistinctMMSIs = len(mmsis)
	return pol
}

// featureDistance scores how well a vessel matches an edge's clientele.
func featureDistance(a, b Features) float64 {
	dType := 0.0
	if a.ShipType/10 != b.ShipType/10 { // same coarse category?
		dType = 1.0
	}
	dLen := math.Abs(a.Length-b.Length) / 150
	dDr := math.Abs(a.Draught-b.Draught) / 8
	return dType + dLen + dDr
}

// ErrUnknownPair is wrapped by ForecastRoute for pairs without a lane
// and without port coordinates to fall back on.
var ErrUnknownPair = fmt.Errorf("lvrf: unknown origin/destination pair")

// ForecastRoute predicts the path from origin to destination for a
// vessel with the given features. For pairs with a trained lane it
// walks the transition graph, resolving junctions by combining edge
// weight with feature affinity; for unseen pairs it falls back to the
// great-circle track when both ports are known (EnvClus*'s
// generalisation is approximated by this fallback; see DESIGN.md).
func (m *Model) ForecastRoute(origin, dest string, f Features) ([]geo.Point, error) {
	lg, ok := m.lanes[odKey{origin, dest}]
	if !ok {
		po, okO := m.ports[origin]
		pd, okD := m.ports[dest]
		if !okO || !okD {
			return nil, fmt.Errorf("%w: %s -> %s", ErrUnknownPair, origin, dest)
		}
		out := make([]geo.Point, m.cfg.Levels)
		for i := range out {
			out[i] = geo.Interpolate(po, pd, float64(i)/float64(m.cfg.Levels-1))
		}
		return out, nil
	}
	// Start from the most used level-0 node.
	cur := 0
	for ni, n := range lg.levels[0] {
		if n.count > lg.levels[0][cur].count {
			cur = ni
		}
	}
	path := make([]geo.Point, 0, m.cfg.Levels)
	path = append(path, lg.levels[0][cur].centroid)
	for lvl := 0; lvl < len(lg.edges); lvl++ {
		es := lg.edges[lvl][cur]
		if len(es) == 0 {
			break
		}
		best, bestScore := 0, math.Inf(-1)
		for ei, e := range es {
			// Junction classifier: popularity prior + feature affinity.
			score := float64(e.weight)/float64(lg.trips) - featureDistance(f, e.meanFeatures())
			if score > bestScore {
				best, bestScore = ei, score
			}
		}
		cur = es[best].to
		path = append(path, lg.levels[lvl+1][cur].centroid)
	}
	return path, nil
}

// PatternsOfLife returns the aggregated traffic statistics of the pair.
func (m *Model) PatternsOfLife(origin, dest string) (PatternsOfLife, error) {
	lg, ok := m.lanes[odKey{origin, dest}]
	if !ok {
		return PatternsOfLife{}, fmt.Errorf("%w: %s -> %s", ErrUnknownPair, origin, dest)
	}
	return lg.pol, nil
}

// Junctions returns, per level, how many alternative branches the lane
// has — introspection used by tests and the route-planner example.
func (m *Model) Junctions(origin, dest string) ([]int, error) {
	lg, ok := m.lanes[odKey{origin, dest}]
	if !ok {
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnknownPair, origin, dest)
	}
	out := make([]int, len(lg.edges))
	for lvl := range lg.edges {
		maxBranches := 0
		for _, es := range lg.edges[lvl] {
			if len(es) > maxBranches {
				maxBranches = len(es)
			}
		}
		out[lvl] = maxBranches
	}
	return out, nil
}

// MeanCrossTrack scores a forecast path against an actual trip: the
// mean distance from each actual point to the nearest forecast segment
// endpoint (a pragmatic path-distance proxy).
func MeanCrossTrack(forecast []geo.Point, actual []geo.Point) float64 {
	if len(forecast) == 0 || len(actual) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, p := range actual {
		best := math.Inf(1)
		for _, q := range forecast {
			if d := geo.FastDistance(p, q); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(actual))
}

package actor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const askTimeout = 5 * time.Second

// echoActor responds to any user message with the same message.
func echoProps() *Props {
	return PropsOf(func(c *Context) {
		switch c.Message().(type) {
		case Started, Stopping, Stopped, Restarting:
		default:
			c.Respond(c.Message())
		}
	})
}

func TestAskEcho(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	pid := sys.Spawn(echoProps())
	reply, err := sys.Ask(pid, "hello", askTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if reply != "hello" {
		t.Fatalf("reply = %v", reply)
	}
}

func TestMessagesProcessedInOrder(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	const n = 10000
	var got []int
	done := make(chan struct{})
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if v, ok := c.Message().(int); ok {
			got = append(got, v)
			if v == n-1 {
				close(done)
			}
		}
	}))
	for i := 0; i < n; i++ {
		sys.Send(pid, i)
	}
	select {
	case <-done:
	case <-time.After(askTimeout):
		t.Fatal("timed out")
	}
	if len(got) != n {
		t.Fatalf("processed %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: got %d", i, v)
		}
	}
}

func TestSingleSenderOrderingManyActors(t *testing.T) {
	// Messages from one producer to each of many actors keep per-actor
	// FIFO order even under concurrent cross-traffic.
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	const actors = 50
	const msgs = 500
	var wg sync.WaitGroup
	wg.Add(actors)
	pids := make([]*PID, actors)
	errs := make(chan error, actors)
	for a := 0; a < actors; a++ {
		next := 0
		pids[a] = sys.Spawn(PropsOf(func(c *Context) {
			if v, ok := c.Message().(int); ok {
				if v != next {
					errs <- fmt.Errorf("got %d want %d", v, next)
				}
				next++
				if next == msgs {
					wg.Done()
				}
			}
		}))
	}
	var sendWG sync.WaitGroup
	for a := 0; a < actors; a++ {
		sendWG.Add(1)
		go func(pid *PID) {
			defer sendWG.Done()
			for i := 0; i < msgs; i++ {
				sys.Send(pid, i)
			}
		}(pids[a])
	}
	sendWG.Wait()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(askTimeout):
		t.Fatal("timed out")
	}
}

func TestNoConcurrentReceive(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	var inFlight, maxSeen int32
	done := make(chan struct{})
	const n = 2000
	var count int32
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if _, ok := c.Message().(int); !ok {
			return
		}
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			m := atomic.LoadInt32(&maxSeen)
			if cur <= m || atomic.CompareAndSwapInt32(&maxSeen, m, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
		if atomic.AddInt32(&count, 1) == n {
			close(done)
		}
	}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				sys.Send(pid, i)
			}
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(askTimeout):
		t.Fatal("timed out")
	}
	if atomic.LoadInt32(&maxSeen) != 1 {
		t.Fatalf("Receive ran concurrently: max in-flight %d", maxSeen)
	}
}

func TestLifecycleSequence(t *testing.T) {
	sys := NewSystem("t")
	var mu sync.Mutex
	var events []string
	record := func(s string) {
		mu.Lock()
		events = append(events, s)
		mu.Unlock()
	}
	pid := sys.Spawn(PropsOf(func(c *Context) {
		switch c.Message().(type) {
		case Started:
			record("started")
		case Stopping:
			record("stopping")
		case Stopped:
			record("stopped")
		case string:
			record("msg")
		}
	}))
	sys.Send(pid, "x")
	if err := sys.PoisonWait(pid, askTimeout); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"started", "msg", "stopping", "stopped"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestStopOvertakesQueuedMessages(t *testing.T) {
	// Stop travels the system lane: messages still queued behind it are
	// dead-lettered, unlike Poison which drains them first.
	sys := NewSystem("t")
	var processed, poisonProcessed int32
	block := make(chan struct{})
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if c.Message() == "work" {
			<-block
			atomic.AddInt32(&processed, 1)
		}
	}))
	// First message parks the actor; the rest queue up.
	sys.Send(pid, "work")
	for i := 0; i < 100; i++ {
		sys.Send(pid, "work")
	}
	sys.Stop(pid)
	close(block)
	deadline := time.Now().Add(askTimeout)
	for pid.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("never stopped")
		}
		time.Sleep(time.Millisecond)
	}
	if n := atomic.LoadInt32(&processed); n > 5 {
		t.Fatalf("immediate stop processed %d queued messages", n)
	}

	// Poison drains everything first.
	pid2 := sys.Spawn(PropsOf(func(c *Context) {
		if c.Message() == "work" {
			atomic.AddInt32(&poisonProcessed, 1)
		}
	}))
	for i := 0; i < 100; i++ {
		sys.Send(pid2, "work")
	}
	if err := sys.PoisonWait(pid2, askTimeout); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&poisonProcessed); n != 100 {
		t.Fatalf("poison processed %d/100 queued messages", n)
	}
}

func TestSendToStoppedGoesToDeadLetters(t *testing.T) {
	sys := NewSystem("t")
	var dead int32
	unsub := SubscribeType(sys.Events(), func(DeadLetter) { atomic.AddInt32(&dead, 1) })
	defer unsub()
	pid := sys.Spawn(echoProps())
	if err := sys.StopWait(pid, askTimeout); err != nil {
		t.Fatal(err)
	}
	if pid.Alive() {
		t.Fatal("pid must report not alive after stop")
	}
	sys.Send(pid, "ghost")
	deadline := time.Now().Add(askTimeout)
	for atomic.LoadInt32(&dead) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead letter never published")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRestartOnPanic(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	var instances int32
	props := PropsFromProducer(func() Actor {
		atomic.AddInt32(&instances, 1)
		count := 0
		return ReceiveFunc(func(c *Context) {
			switch c.Message().(type) {
			case string:
				count++
				if c.Message() == "boom" {
					panic("kaboom")
				}
				c.Respond(count)
			}
		})
	})
	pid := sys.Spawn(props)
	if r, err := sys.Ask(pid, "a", askTimeout); err != nil || r != 1 {
		t.Fatalf("r=%v err=%v", r, err)
	}
	sys.Send(pid, "boom")
	// After the restart, state is reset: the counter starts over.
	r, err := sys.Ask(pid, "b", askTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("state not reset after restart: count=%v", r)
	}
	if atomic.LoadInt32(&instances) != 2 {
		t.Fatalf("expected 2 instances, got %d", instances)
	}
}

func TestResumeDirectiveKeepsState(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	props := PropsFromProducer(func() Actor {
		count := 0
		return ReceiveFunc(func(c *Context) {
			switch c.Message().(type) {
			case string:
				if c.Message() == "boom" {
					panic("kaboom")
				}
				count++
				c.Respond(count)
			}
		})
	}).WithStrategy(SupervisorStrategy{Directive: DirectiveResume})
	pid := sys.Spawn(props)
	if r, _ := sys.Ask(pid, "a", askTimeout); r != 1 {
		t.Fatalf("r=%v", r)
	}
	sys.Send(pid, "boom")
	if r, err := sys.Ask(pid, "b", askTimeout); err != nil || r != 2 {
		t.Fatalf("state lost on resume: r=%v err=%v", r, err)
	}
}

func TestStopDirective(t *testing.T) {
	sys := NewSystem("t")
	props := PropsOf(func(c *Context) {
		if c.Message() == "boom" {
			panic("kaboom")
		}
	}).WithStrategy(SupervisorStrategy{Directive: DirectiveStop})
	pid := sys.Spawn(props)
	sys.Send(pid, "boom")
	deadline := time.Now().Add(askTimeout)
	for pid.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("actor not stopped after panic with stop directive")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRestartBudgetStopsActor(t *testing.T) {
	sys := NewSystem("t")
	props := PropsOf(func(c *Context) {
		if c.Message() == "boom" {
			panic("kaboom")
		}
	}).WithStrategy(SupervisorStrategy{Directive: DirectiveRestart, MaxRestarts: 3, WindowSeconds: 60})
	pid := sys.Spawn(props)
	for i := 0; i < 10; i++ {
		sys.Send(pid, "boom")
	}
	deadline := time.Now().Add(askTimeout)
	for pid.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("actor not stopped after exceeding restart budget")
		}
		time.Sleep(time.Millisecond)
	}
	if got := sys.StatsSnapshot().Restarts; got > 3 {
		t.Fatalf("restarted %d times, budget was 3", got)
	}
}

func TestChildrenStoppedWithParent(t *testing.T) {
	sys := NewSystem("t")
	childReady := make(chan *PID, 1)
	parent := sys.Spawn(PropsOf(func(c *Context) {
		if c.Message() == "spawn" {
			kid := c.Spawn(echoProps())
			childReady <- kid
		}
	}))
	sys.Send(parent, "spawn")
	var kid *PID
	select {
	case kid = <-childReady:
	case <-time.After(askTimeout):
		t.Fatal("child never spawned")
	}
	if _, err := sys.Ask(kid, "ping", askTimeout); err != nil {
		t.Fatal(err)
	}
	if err := sys.StopWait(parent, askTimeout); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(askTimeout)
	for kid.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("child still alive after parent stopped")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNamedSpawnAndLookup(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	pid, err := sys.SpawnNamed(echoProps(), "vessel-123")
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Lookup("vessel-123"); got != pid {
		t.Fatalf("lookup = %v want %v", got, pid)
	}
	if _, err := sys.SpawnNamed(echoProps(), "vessel-123"); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if sys.Lookup("no-such") != nil {
		t.Fatal("unknown lookup must be nil")
	}
}

func TestLookupAfterStopIsNil(t *testing.T) {
	sys := NewSystem("t")
	pid, _ := sys.SpawnNamed(echoProps(), "temp")
	if err := sys.StopWait(pid, askTimeout); err != nil {
		t.Fatal(err)
	}
	if sys.Lookup("temp") != nil {
		t.Fatal("stopped actor must be unregistered")
	}
	// Name is reusable after stop.
	if _, err := sys.SpawnNamed(echoProps(), "temp"); err != nil {
		t.Fatalf("name not reusable: %v", err)
	}
}

func TestGetOrSpawnConcurrent(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	var spawned int32
	props := PropsFromProducer(func() Actor {
		atomic.AddInt32(&spawned, 1)
		return echoProps().producer()
	})
	const goroutines = 32
	pids := make([]*PID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pid, _ := sys.GetOrSpawn("cell-42", props)
			pids[i] = pid
		}(g)
	}
	wg.Wait()
	if n := atomic.LoadInt32(&spawned); n != 1 {
		t.Fatalf("spawned %d instances, want 1", n)
	}
	for _, pid := range pids {
		if pid != pids[0] {
			t.Fatal("GetOrSpawn returned different PIDs")
		}
	}
}

func TestAskTimeout(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	pid := sys.Spawn(PropsOf(func(c *Context) {})) // never responds
	_, err := sys.Ask(pid, "anyone?", 30*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestAskDeadTarget(t *testing.T) {
	sys := NewSystem("t")
	pid := sys.Spawn(echoProps())
	if err := sys.StopWait(pid, askTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Ask(pid, "x", askTimeout); err != ErrDeadLetter {
		t.Fatalf("err = %v, want ErrDeadLetter", err)
	}
}

func TestForwardPreservesSender(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	final := sys.Spawn(echoProps())
	relay := sys.Spawn(PropsOf(func(c *Context) {
		switch c.Message().(type) {
		case Started, Stopping, Stopped:
		default:
			c.Forward(final)
		}
	}))
	reply, err := sys.Ask(relay, "through", askTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if reply != "through" {
		t.Fatalf("reply = %v", reply)
	}
}

func TestSendAfter(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	got := make(chan any, 1)
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if s, ok := c.Message().(string); ok {
			got <- s
		}
	}))
	start := time.Now()
	sys.SendAfter(50*time.Millisecond, pid, "tick")
	select {
	case <-got:
		if d := time.Since(start); d < 40*time.Millisecond {
			t.Fatalf("delivered too early: %v", d)
		}
	case <-time.After(askTimeout):
		t.Fatal("timer message never arrived")
	}
}

func TestSendAfterCancel(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	got := make(chan any, 1)
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if _, ok := c.Message().(string); ok {
			got <- c.Message()
		}
	}))
	timer := sys.SendAfter(50*time.Millisecond, pid, "tick")
	timer.Stop()
	select {
	case <-got:
		t.Fatal("cancelled timer still delivered")
	case <-time.After(150 * time.Millisecond):
	}
}

func TestEventStreamPubSub(t *testing.T) {
	es := NewEventStream()
	var got []any
	unsub := es.Subscribe(func(e any) { got = append(got, e) })
	es.Publish(1)
	es.Publish("two")
	unsub()
	es.Publish(3)
	if len(got) != 2 || got[0] != 1 || got[1] != "two" {
		t.Fatalf("got = %v", got)
	}
	if es.Len() != 0 {
		t.Fatalf("subscriptions remain: %d", es.Len())
	}
}

func TestEventStreamTypedSubscription(t *testing.T) {
	es := NewEventStream()
	var ints []int
	unsub := SubscribeType(es, func(v int) { ints = append(ints, v) })
	defer unsub()
	es.Publish(1)
	es.Publish("skip")
	es.Publish(2)
	if len(ints) != 2 || ints[0] != 1 || ints[1] != 2 {
		t.Fatalf("ints = %v", ints)
	}
}

func TestFailureEventPublished(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	failures := make(chan FailureEvent, 1)
	unsub := SubscribeType(sys.Events(), func(f FailureEvent) {
		select {
		case failures <- f:
		default:
		}
	})
	defer unsub()
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if c.Message() == "boom" {
			panic("kaboom")
		}
	}))
	sys.Send(pid, "boom")
	select {
	case f := <-failures:
		if f.Reason != "kaboom" || f.Message != "boom" {
			t.Fatalf("failure event = %+v", f)
		}
	case <-time.After(askTimeout):
		t.Fatal("failure event never published")
	}
}

func TestStatsCounters(t *testing.T) {
	sys := NewSystem("t")
	pid := sys.Spawn(echoProps())
	if _, err := sys.Ask(pid, "x", askTimeout); err != nil {
		t.Fatal(err)
	}
	if err := sys.StopWait(pid, askTimeout); err != nil {
		t.Fatal(err)
	}
	s := sys.StatsSnapshot()
	if s.ActorsSpawned < 2 { // echo + future
		t.Fatalf("spawned = %d", s.ActorsSpawned)
	}
	if s.MessagesProcessed == 0 {
		t.Fatal("no messages counted")
	}
	if s.ActorsStopped == 0 {
		t.Fatal("no stops counted")
	}
}

func TestLiveActorsTracksSpawnStop(t *testing.T) {
	sys := NewSystem("t")
	base := sys.LiveActors()
	pids := make([]*PID, 10)
	for i := range pids {
		pids[i] = sys.Spawn(echoProps())
	}
	if got := sys.LiveActors(); got != base+10 {
		t.Fatalf("live = %d want %d", got, base+10)
	}
	for _, pid := range pids {
		if err := sys.StopWait(pid, askTimeout); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.LiveActors(); got != base {
		t.Fatalf("live = %d want %d", got, base)
	}
}

func TestManyActorsThroughput(t *testing.T) {
	// Smoke-scale version of the paper's scalability claim: tens of
	// thousands of actors all receiving traffic without deadlock.
	if testing.Short() {
		t.Skip("short mode")
	}
	sys := NewSystem("t")
	defer sys.Shutdown(2 * time.Second)
	const actors = 20000
	const msgsPer = 5
	var processed int64
	done := make(chan struct{})
	props := PropsOf(func(c *Context) {
		if _, ok := c.Message().(int); ok {
			if atomic.AddInt64(&processed, 1) == actors*msgsPer {
				close(done)
			}
		}
	})
	pids := make([]*PID, actors)
	for i := range pids {
		pids[i] = sys.Spawn(props)
	}
	for m := 0; m < msgsPer; m++ {
		for _, pid := range pids {
			sys.Send(pid, m)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("processed only %d/%d", atomic.LoadInt64(&processed), actors*msgsPer)
	}
}

func TestMailboxLenBackpressureSignal(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	release := make(chan struct{})
	lens := make(chan int64, 1)
	pid := sys.Spawn(PropsOf(func(c *Context) {
		switch c.Message() {
		case "block":
			<-release
		case "measure":
			select {
			case lens <- c.MailboxLen():
			default:
			}
		}
	}))
	sys.Send(pid, "block")
	for i := 0; i < 10; i++ {
		sys.Send(pid, "measure")
	}
	close(release)
	select {
	case l := <-lens:
		if l < 0 {
			t.Fatalf("mailbox len = %d", l)
		}
	case <-time.After(askTimeout):
		t.Fatal("no measurement")
	}
}

func TestPIDString(t *testing.T) {
	var nilPID *PID
	if nilPID.String() != "pid://<nil>" {
		t.Fatalf("nil pid string = %q", nilPID.String())
	}
	if nilPID.Name() != "<nil>" {
		t.Fatalf("nil pid name = %q", nilPID.Name())
	}
	sys := NewSystem("t")
	pid, _ := sys.SpawnNamed(echoProps(), "writer")
	if pid.Name() != "writer" {
		t.Fatalf("name = %q", pid.Name())
	}
}

func TestRespondWithoutSenderIsDeadLetter(t *testing.T) {
	sys := NewSystem("t")
	defer sys.Shutdown(time.Second)
	var dead int32
	unsub := SubscribeType(sys.Events(), func(DeadLetter) { atomic.AddInt32(&dead, 1) })
	defer unsub()
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if c.Message() == "go" {
			c.Respond("to nobody")
		}
	}))
	sys.Send(pid, "go")
	deadline := time.Now().Add(askTimeout)
	for atomic.LoadInt32(&dead) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("respond without sender must dead-letter")
		}
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkSendReceive(b *testing.B) {
	sys := NewSystem("b")
	defer sys.Shutdown(time.Second)
	var count int64
	done := make(chan struct{})
	target := int64(b.N)
	pid := sys.Spawn(PropsOf(func(c *Context) {
		if _, ok := c.Message().(int); ok {
			if atomic.AddInt64(&count, 1) == target {
				close(done)
			}
		}
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Send(pid, i)
	}
	<-done
}

func BenchmarkAsk(b *testing.B) {
	sys := NewSystem("b")
	defer sys.Shutdown(time.Second)
	pid := sys.Spawn(echoProps())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(pid, i, askTimeout); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpawn(b *testing.B) {
	sys := NewSystem("b")
	props := echoProps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Spawn(props)
	}
}

func BenchmarkFanOut(b *testing.B) {
	// One producer feeding 1000 actors round-robin, the ingestion shape
	// of the pipeline.
	sys := NewSystem("b")
	defer sys.Shutdown(time.Second)
	const actors = 1000
	var count int64
	done := make(chan struct{})
	target := int64(b.N)
	props := PropsOf(func(c *Context) {
		if _, ok := c.Message().(int); ok {
			if atomic.AddInt64(&count, 1) == target {
				close(done)
			}
		}
	})
	pids := make([]*PID, actors)
	for i := range pids {
		pids[i] = sys.Spawn(props)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Send(pids[i%actors], i)
	}
	<-done
}

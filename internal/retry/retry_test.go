package retry

import (
	"errors"
	"testing"
	"time"
)

func TestDoFirstTrySuccess(t *testing.T) {
	calls := 0
	res := DefaultPolicy().Do(func() error { calls++; return nil })
	if res.Err != nil || res.Attempts != 1 || calls != 1 {
		t.Fatalf("res=%+v calls=%d", res, calls)
	}
	if res.Retried() {
		t.Fatal("first-try success must not count as retried")
	}
}

func TestDoRecoversAfterTransientFaults(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	calls := 0
	res := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if res.Err != nil || res.Attempts != 3 {
		t.Fatalf("res=%+v", res)
	}
	if !res.Retried() {
		t.Fatal("recovery after retries must report Retried")
	}
}

func TestDoExhaustionReturnsLastError(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	boom := errors.New("boom")
	calls := 0
	start := time.Now()
	res := p.Do(func() error { calls++; return boom })
	if !errors.Is(res.Err, boom) || res.Attempts != 3 || calls != 3 {
		t.Fatalf("res=%+v calls=%d", res, calls)
	}
	// Exhaustion must not sleep a final backoff.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("exhaustion took %v", elapsed)
	}
}

func TestDoBoundsAttemptsBelowOne(t *testing.T) {
	calls := 0
	res := Policy{MaxAttempts: -7}.Do(func() error { calls++; return errors.New("x") })
	if calls != 1 || res.Attempts != 1 || res.Err == nil {
		t.Fatalf("res=%+v calls=%d", res, calls)
	}
}

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2, Jitter: 0}
	want := []time.Duration{
		time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
		8 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDelayJitterStaysInBand(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	for i := 0; i < 1000; i++ {
		d := p.Delay(1)
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("jittered delay %v outside [5ms, 15ms]", d)
		}
	}
}

func TestZeroPolicySelectsDefaults(t *testing.T) {
	var p Policy
	if !p.IsZero() {
		t.Fatal("zero policy must report IsZero")
	}
	if DefaultPolicy().IsZero() {
		t.Fatal("default policy must not report IsZero")
	}
	// A zero policy still terminates: normalized MaxAttempts is 1.
	res := p.Do(func() error { return errors.New("x") })
	if res.Attempts != 1 {
		t.Fatalf("zero policy attempts = %d", res.Attempts)
	}
}

package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// testClient is a minimal RESP client for exercising the server.
type testClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialServer(t *testing.T) (*Server, *testClient) {
	t.Helper()
	store := New()
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, &testClient{conn: conn, r: bufio.NewReader(conn)}
}

func (c *testClient) cmd(t *testing.T, args ...string) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&sb, "$%d\r\n%s\r\n", len(a), a)
	}
	if _, err := c.conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
}

// reply reads one RESP reply and renders it as a debug string.
func (c *testClient) reply(t *testing.T) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	line = strings.TrimRight(line, "\r\n")
	switch line[0] {
	case '+', '-', ':':
		return line
	case '$':
		var n int
		fmt.Sscanf(line[1:], "%d", &n)
		if n < 0 {
			return "(nil)"
		}
		buf := make([]byte, n+2)
		if _, err := readFull(c.r, buf); err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	case '*':
		var n int
		fmt.Sscanf(line[1:], "%d", &n)
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			parts = append(parts, c.reply(t))
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	t.Fatalf("unparseable reply %q", line)
	return ""
}

func TestServerPingEcho(t *testing.T) {
	_, c := dialServer(t)
	c.cmd(t, "PING")
	if got := c.reply(t); got != "+PONG" {
		t.Fatalf("ping = %q", got)
	}
	c.cmd(t, "ECHO", "hello world")
	if got := c.reply(t); got != "hello world" {
		t.Fatalf("echo = %q", got)
	}
}

func TestServerSetGetDel(t *testing.T) {
	_, c := dialServer(t)
	c.cmd(t, "SET", "k", "v with spaces")
	if got := c.reply(t); got != "+OK" {
		t.Fatalf("set = %q", got)
	}
	c.cmd(t, "GET", "k")
	if got := c.reply(t); got != "v with spaces" {
		t.Fatalf("get = %q", got)
	}
	c.cmd(t, "DEL", "k")
	if got := c.reply(t); got != ":1" {
		t.Fatalf("del = %q", got)
	}
	c.cmd(t, "GET", "k")
	if got := c.reply(t); got != "(nil)" {
		t.Fatalf("get deleted = %q", got)
	}
}

func TestServerSetEx(t *testing.T) {
	_, c := dialServer(t)
	c.cmd(t, "SET", "k", "v", "EX", "100")
	if got := c.reply(t); got != "+OK" {
		t.Fatalf("setex = %q", got)
	}
	c.cmd(t, "TTL", "k")
	got := c.reply(t)
	if !strings.HasPrefix(got, ":") || got == ":-1" || got == ":-2" {
		t.Fatalf("ttl = %q", got)
	}
	c.cmd(t, "TTL", "missing")
	if got := c.reply(t); got != ":-2" {
		t.Fatalf("ttl missing = %q", got)
	}
}

func TestServerHashCommands(t *testing.T) {
	_, c := dialServer(t)
	c.cmd(t, "HSET", "vessel:1", "lat", "37.9")
	if got := c.reply(t); got != ":1" {
		t.Fatalf("hset = %q", got)
	}
	c.cmd(t, "HSET", "vessel:1", "lon", "23.6")
	c.reply(t)
	c.cmd(t, "HGET", "vessel:1", "lat")
	if got := c.reply(t); got != "37.9" {
		t.Fatalf("hget = %q", got)
	}
	c.cmd(t, "HLEN", "vessel:1")
	if got := c.reply(t); got != ":2" {
		t.Fatalf("hlen = %q", got)
	}
	c.cmd(t, "HGETALL", "vessel:1")
	got := c.reply(t)
	if !strings.Contains(got, "lat") || !strings.Contains(got, "23.6") {
		t.Fatalf("hgetall = %q", got)
	}
}

func TestServerZSetCommands(t *testing.T) {
	_, c := dialServer(t)
	c.cmd(t, "ZADD", "ev", "10", "a")
	if got := c.reply(t); got != ":1" {
		t.Fatalf("zadd = %q", got)
	}
	c.cmd(t, "ZADD", "ev", "5", "b")
	c.reply(t)
	c.cmd(t, "ZADD", "ev", "20", "c")
	c.reply(t)
	c.cmd(t, "ZRANGEBYSCORE", "ev", "4", "15")
	if got := c.reply(t); got != "[b a]" {
		t.Fatalf("zrangebyscore = %q", got)
	}
	c.cmd(t, "ZRANGEBYSCORE", "ev", "-inf", "+inf")
	if got := c.reply(t); got != "[b a c]" {
		t.Fatalf("full range = %q", got)
	}
	c.cmd(t, "ZCARD", "ev")
	if got := c.reply(t); got != ":3" {
		t.Fatalf("zcard = %q", got)
	}
	c.cmd(t, "ZSCORE", "ev", "c")
	if got := c.reply(t); got != "20" {
		t.Fatalf("zscore = %q", got)
	}
}

func TestServerErrors(t *testing.T) {
	_, c := dialServer(t)
	c.cmd(t, "NOSUCH", "x")
	if got := c.reply(t); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("unknown command = %q", got)
	}
	c.cmd(t, "GET")
	if got := c.reply(t); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("bad arity = %q", got)
	}
	c.cmd(t, "SET", "k", "v")
	c.reply(t)
	c.cmd(t, "HGETALL", "k")
	if got := c.reply(t); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("wrong type = %q", got)
	}
}

func TestServerInlineCommands(t *testing.T) {
	_, c := dialServer(t)
	if _, err := c.conn.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	if got := c.reply(t); got != "+PONG" {
		t.Fatalf("inline ping = %q", got)
	}
}

func TestServerPubSub(t *testing.T) {
	srv, sub := dialServer(t)
	sub.cmd(t, "SUBSCRIBE", "alerts")
	if got := sub.reply(t); !strings.Contains(got, "subscribe") {
		t.Fatalf("subscribe ack = %q", got)
	}
	// Publish from a second connection.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pub := &testClient{conn: conn, r: bufio.NewReader(conn)}
	deadline := time.Now().Add(2 * time.Second)
	for {
		pub.cmd(t, "PUBLISH", "alerts", "collision")
		if got := pub.reply(t); got == ":1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sub.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if got := sub.reply(t); !strings.Contains(got, "collision") {
		t.Fatalf("message = %q", got)
	}
}

func TestServerDBSizeAndKeys(t *testing.T) {
	_, c := dialServer(t)
	c.cmd(t, "SET", "a", "1")
	c.reply(t)
	c.cmd(t, "SET", "b", "2")
	c.reply(t)
	c.cmd(t, "DBSIZE")
	if got := c.reply(t); got != ":2" {
		t.Fatalf("dbsize = %q", got)
	}
	c.cmd(t, "KEYS")
	got := c.reply(t)
	if !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Fatalf("keys = %q", got)
	}
}

func TestServerManySequentialCommands(t *testing.T) {
	_, c := dialServer(t)
	for i := 0; i < 500; i++ {
		c.cmd(t, "SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		if got := c.reply(t); got != "+OK" {
			t.Fatalf("set %d = %q", i, got)
		}
	}
	c.cmd(t, "DBSIZE")
	if got := c.reply(t); got != ":500" {
		t.Fatalf("dbsize = %q", got)
	}
}

package actor

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// System owns a tree of actors: a registry of named actors, the event
// stream, dead-letter accounting and global defaults. One System per
// process is the expected deployment, mirroring one Akka ActorSystem per
// node in the paper's architecture.
//
// The named-actor registry is striped over a fixed array of shards
// (FNV-1a hash of the name selects the shard) so that spawn storms —
// one actor per new MMSI and per first-contact hexgrid cell — contend
// only within a shard instead of serialising system-wide on one mutex.
type System struct {
	name       string
	throughput int

	nextID uint64

	shards    []registryShard
	shardMask uint64

	events *EventStream
	stats  Stats

	// unregisterHook, when set, is invoked with every PID removed from
	// the named registry (stop, passivation or eager dead-entry removal).
	// Route caches keyed off registry names use it for invalidation. The
	// hook runs on the unregistering goroutine and must not block.
	unregisterHook atomic.Value // of func(*PID)

	shutdown int32
}

// registryShard is one stripe of the named-actor registry. Lookups stay
// lock-free through the shard's sync.Map; only spawns into the stripe
// take the shard mutex. The trailing pad keeps neighbouring shards off
// the same cache line under write-heavy spawn storms.
type registryShard struct {
	mu   sync.Mutex
	m    sync.Map // name -> *PID
	size atomic.Int64
	_    [64]byte
}

// lookup returns the live PID registered under name in this shard.
// Entries whose actor has died are deleted eagerly so long-running
// systems with passivating cell actors don't accumulate tombstones
// between the death and the actor's own unregister. onUnregister (may
// be nil) fires when this lookup is the one that removes the entry, so
// external route caches observe every registry removal exactly once.
func (sh *registryShard) lookup(name string, onUnregister func(*PID)) *PID {
	v, ok := sh.m.Load(name)
	if !ok {
		return nil
	}
	pid := v.(*PID)
	if pid.Alive() {
		return pid
	}
	if sh.m.CompareAndDelete(name, pid) {
		sh.size.Add(-1)
		if onUnregister != nil {
			onUnregister(pid)
		}
	}
	return nil
}

// defaultRegistryShards spreads spawn contention well past the core
// counts of current hardware while keeping the per-system footprint
// trivial (a few KiB).
const defaultRegistryShards = 64

// shardOf maps a name to its registry stripe (inlined FNV-1a).
func (s *System) shardOf(name string) *registryShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &s.shards[h&s.shardMask]
}

// Stats aggregates system-level counters. All fields are read with
// atomic loads via Snapshot.
type Stats struct {
	ActorsSpawned     uint64
	ActorsStopped     uint64
	MessagesProcessed uint64
	DeadLetters       uint64
	Failures          uint64
	Restarts          uint64
}

// NewSystem creates an actor system with the default per-run throughput
// of 300 messages and the default registry shard count.
func NewSystem(name string) *System {
	return NewSystemSharded(name, defaultRegistryShards)
}

// NewSystemSharded creates an actor system whose named-actor registry
// is striped over the given number of shards, rounded up to a power of
// two (minimum 1). A single shard reproduces the pre-sharding global
// registry lock and serves as the benchmark baseline.
func NewSystemSharded(name string, shards int) *System {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &System{
		name:       name,
		throughput: 300,
		events:     NewEventStream(),
		shards:     make([]registryShard, n),
		shardMask:  uint64(n - 1),
	}
}

// Name returns the system name.
func (s *System) Name() string { return s.name }

// Events returns the system event stream (dead letters, failures and
// user-published events).
func (s *System) Events() *EventStream { return s.events }

// StatsSnapshot returns a consistent-enough copy of the counters.
func (s *System) StatsSnapshot() Stats {
	return Stats{
		ActorsSpawned:     atomic.LoadUint64(&s.stats.ActorsSpawned),
		ActorsStopped:     atomic.LoadUint64(&s.stats.ActorsStopped),
		MessagesProcessed: atomic.LoadUint64(&s.stats.MessagesProcessed),
		DeadLetters:       atomic.LoadUint64(&s.stats.DeadLetters),
		Failures:          atomic.LoadUint64(&s.stats.Failures),
		Restarts:          atomic.LoadUint64(&s.stats.Restarts),
	}
}

// LiveActors returns the number of currently running actors.
func (s *System) LiveActors() int64 {
	snap := s.StatsSnapshot()
	return int64(snap.ActorsSpawned) - int64(snap.ActorsStopped)
}

// Spawn starts a top-level actor with an auto-generated name.
func (s *System) Spawn(props *Props) *PID {
	return s.spawn(props, "", nil)
}

// SpawnNamed starts a top-level actor registered under the given unique
// name; it fails if the name is taken.
func (s *System) SpawnNamed(props *Props, name string) (*PID, error) {
	return s.spawnNamed(props, name, nil)
}

// Lookup returns the PID registered under name, or nil. Dead entries
// found along the way are removed eagerly (see registryShard.lookup).
func (s *System) Lookup(name string) *PID {
	return s.shardOf(name).lookup(name, s.hook())
}

// OnUnregister installs fn as the registry-removal hook: it is called
// with every PID leaving the named registry — explicit stop, poison,
// passivation or eager dead-entry cleanup — exactly once per removal.
// The pipeline points it at its route caches so a cached PID can never
// outlive its registration unnoticed. fn runs on whichever goroutine
// performs the removal and must be fast and non-blocking.
func (s *System) OnUnregister(fn func(pid *PID)) {
	s.unregisterHook.Store(fn)
}

// hook returns the installed unregister hook, or nil.
func (s *System) hook() func(*PID) {
	if v := s.unregisterHook.Load(); v != nil {
		return v.(func(*PID))
	}
	return nil
}

// RegistrySize returns the number of named actors currently registered
// across all shards.
func (s *System) RegistrySize() int64 {
	var total int64
	for i := range s.shards {
		total += s.shards[i].size.Load()
	}
	return total
}

// RegistryShardSizes returns the per-shard registry occupancy in shard
// order — the skew diagnostic for the sharded runtime.
func (s *System) RegistryShardSizes() []int64 {
	out := make([]int64, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].size.Load()
	}
	return out
}

// QueuedMessages sums the user-mailbox depth of every registered named
// actor — the backlog still awaiting processing. Anonymous actors
// (Ask futures) are not counted; quiescence checks pair this with the
// MessagesProcessed counter.
func (s *System) QueuedMessages() int64 {
	var total int64
	for i := range s.shards {
		s.shards[i].m.Range(func(_, v any) bool {
			total += v.(*PID).process.mb.Len()
			return true
		})
	}
	return total
}

// GetOrSpawn returns the live actor registered under name, spawning it
// from props when absent. The boolean reports whether a spawn happened.
// This is the primitive the pipeline uses to materialise vessel actors
// per MMSI and cell actors per hexgrid cell on first contact.
func (s *System) GetOrSpawn(name string, props *Props) (*PID, bool) {
	sh := s.shardOf(name)
	if pid := sh.lookup(name, s.hook()); pid != nil {
		return pid, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if pid := sh.lookup(name, s.hook()); pid != nil {
		return pid, false
	}
	pid := s.newProcess(props, name, nil)
	sh.m.Store(name, pid)
	sh.size.Add(1)
	pid.process.sendSystem(sysStarted{})
	return pid, true
}

func (s *System) spawnNamed(props *Props, name string, parent *PID) (*PID, error) {
	if name == "" {
		return nil, fmt.Errorf("actor: empty name")
	}
	sh := s.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if existing := sh.lookup(name, s.hook()); existing != nil {
		return nil, fmt.Errorf("actor: name %q already registered", name)
	}
	pid := s.newProcess(props, name, parent)
	sh.m.Store(name, pid)
	sh.size.Add(1)
	pid.process.sendSystem(sysStarted{})
	return pid, nil
}

func (s *System) spawn(props *Props, name string, parent *PID) *PID {
	pid := s.newProcess(props, name, parent)
	pid.process.sendSystem(sysStarted{})
	return pid
}

func (s *System) newProcess(props *Props, name string, parent *PID) *PID {
	id := atomic.AddUint64(&s.nextID, 1)
	if name == "" {
		name = "$" + strconv.FormatUint(id, 10)
	}
	proc := &process{
		system: s,
		props:  props,
		mb:     newMailbox(),
		actor:  props.producer(),
		parent: parent,
		done:   make(chan struct{}),
	}
	pid := &PID{id: id, name: name, process: proc}
	proc.pid = pid
	atomic.AddUint64(&s.stats.ActorsSpawned, 1)
	return pid
}

func (s *System) unregister(pid *PID) {
	sh := s.shardOf(pid.name)
	// CompareAndDelete keeps the shard size exact when an eager Lookup
	// deletion or a name-reusing respawn races this unregister; the
	// unregister hook fires only on the side that won the removal.
	if sh.m.CompareAndDelete(pid.name, pid) {
		sh.size.Add(-1)
		if fn := s.hook(); fn != nil {
			fn(pid)
		}
	}
}

// Send delivers a fire-and-forget message with no sender.
func (s *System) Send(target *PID, msg any) {
	s.sendWithSender(target, msg, nil)
}

func (s *System) sendWithSender(target *PID, msg any, sender *PID) {
	if target == nil || target.process == nil {
		s.deadLetter(target, msg, sender)
		return
	}
	target.process.sendUser(envelope{message: msg, sender: sender})
}

// SendBatch delivers msgs to target in order, paying the mailbox lock
// and the scheduler handoff once for the whole batch instead of once
// per message. Ingestion uses it to deliver a poll round's reports
// grouped by vessel. A nil or stopped target dead-letters every
// message, matching Send.
func (s *System) SendBatch(target *PID, msgs []any) {
	if len(msgs) == 0 {
		return
	}
	if target == nil || target.process == nil {
		for _, msg := range msgs {
			s.deadLetter(target, msg, nil)
		}
		return
	}
	target.process.sendUserBatch(msgs, nil)
}

// Poison gracefully stops the target after every message already in
// its mailbox has been processed (Akka's PoisonPill semantics).
func (s *System) Poison(target *PID) {
	if target == nil || target.process == nil {
		return
	}
	target.process.sendUser(envelope{message: poisonPill{}})
}

// PoisonWait gracefully stops the target and blocks until it has fully
// stopped or the timeout expires.
func (s *System) PoisonWait(target *PID, timeout time.Duration) error {
	if target == nil || target.process == nil {
		return nil
	}
	s.Poison(target)
	select {
	case <-target.process.done:
		return nil
	case <-time.After(timeout):
		return ErrTimeout
	}
}

// Stop asynchronously stops the target and its children.
func (s *System) Stop(target *PID) {
	if target == nil || target.process == nil {
		return
	}
	target.process.sendSystem(sysStop{})
}

// StopWait stops the target and blocks until it has fully stopped or
// the timeout expires.
func (s *System) StopWait(target *PID, timeout time.Duration) error {
	if target == nil || target.process == nil {
		return nil
	}
	s.Stop(target)
	select {
	case <-target.process.done:
		return nil
	case <-time.After(timeout):
		return ErrTimeout
	}
}

// futureActor captures the first user message into a channel.
type futureActor struct{ ch chan any }

func (f *futureActor) Receive(c *Context) {
	switch c.Message().(type) {
	case Started, Stopping, Stopped, Restarting:
		return
	}
	select {
	case f.ch <- c.Message():
	default:
	}
	c.Stop()
}

// Ask sends msg to target and waits for a reply (sent via
// Context.Respond or a direct Send to the internal future) for at most
// timeout.
func (s *System) Ask(target *PID, msg any, timeout time.Duration) (any, error) {
	if target == nil || !target.Alive() {
		return nil, ErrDeadLetter
	}
	ch := make(chan any, 1)
	fpid := s.spawn(PropsFromProducer(func() Actor { return &futureActor{ch: ch} }), "", nil)
	// The future must be stopped on every exit path — replying futures
	// stop themselves, but a target that dies without replying used to
	// leak the future until an external timeout.
	defer s.Stop(fpid)
	target.process.sendUser(envelope{message: msg, sender: fpid})
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case reply := <-ch:
		return reply, nil
	case <-target.process.done:
		// The target stopped; a reply may still be in flight through the
		// future's mailbox, so grant a short grace before reporting the
		// message dead-lettered.
		grace := time.NewTimer(10 * time.Millisecond)
		defer grace.Stop()
		select {
		case reply := <-ch:
			return reply, nil
		case <-grace.C:
			return nil, ErrDeadLetter
		case <-timer.C:
			return nil, ErrTimeout
		}
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// SendAfter schedules msg for delivery to target after delay.
func (s *System) SendAfter(delay time.Duration, target *PID, msg any) *time.Timer {
	return time.AfterFunc(delay, func() {
		if atomic.LoadInt32(&s.shutdown) == 1 {
			return
		}
		s.Send(target, msg)
	})
}

func (s *System) deadLetter(target *PID, msg any, sender *PID) {
	atomic.AddUint64(&s.stats.DeadLetters, 1)
	s.events.Publish(DeadLetter{Target: target, Message: msg, Sender: sender, At: time.Now()})
}

// Shutdown stops all named actors and disables timers. Anonymous
// top-level actors not reachable from a named actor are left to drain.
func (s *System) Shutdown(timeout time.Duration) {
	atomic.StoreInt32(&s.shutdown, 1)
	var pids []*PID
	for i := range s.shards {
		s.shards[i].m.Range(func(_, v any) bool {
			pids = append(pids, v.(*PID))
			return true
		})
	}
	deadline := time.Now().Add(timeout)
	for _, pid := range pids {
		s.Stop(pid)
	}
	for _, pid := range pids {
		remain := time.Until(deadline)
		if remain <= 0 {
			return
		}
		select {
		case <-pid.process.done:
		case <-time.After(remain):
			return
		}
	}
}

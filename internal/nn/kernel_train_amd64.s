// AVX2/FMA training kernels for the compiled BPTT path.
// See kernel_train_amd64.go for the contracts.

#include "textflag.h"

// func dotRows4AVX2(w, x, y *float64, groups, cols, stride int)
//
// Same register plan and two-bank accumulator scheme as
// gemvHiddenAVX2 (kernel_avx2_amd64.s), minus the input-column offset:
// rows start at w itself and advance by stride.
//   DI  base of the current group's first row
//   SI  x base
//   R8  y cursor
//   R9  groups remaining
//   R12 row stride in bytes (stride*8)
//   R13 cols (k-loop trip count, in elements)
//   AX/BX/CX/DX  the four row cursors inside the k loop
//   R14 x cursor, R15 k counter
TEXT ·dotRows4AVX2(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), R8
	MOVQ groups+24(FP), R9
	MOVQ cols+32(FP), R13
	MOVQ stride+40(FP), R12
	SHLQ $3, R12              // stride in bytes

group_loop:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	VXORPD Y8, Y8, Y8
	MOVQ DI, AX               // row 4g
	LEAQ (DI)(R12*1), BX      // row 4g+1
	LEAQ (DI)(R12*2), CX      // row 4g+2
	LEAQ (BX)(R12*2), DX      // row 4g+3
	MOVQ SI, R14
	MOVQ R13, R15
	CMPQ R15, $8
	JLT  tail4

	// Two chunks per iteration with a second accumulator bank, exactly
	// as in the inference GEMV: doubles the FMA dependency distance.
k_loop8:
	VMOVUPD (R14), Y4
	VMOVUPD 32(R14), Y9
	VFMADD231PD (AX), Y4, Y0
	VFMADD231PD 32(AX), Y9, Y5
	VFMADD231PD (BX), Y4, Y1
	VFMADD231PD 32(BX), Y9, Y6
	VFMADD231PD (CX), Y4, Y2
	VFMADD231PD 32(CX), Y9, Y7
	VFMADD231PD (DX), Y4, Y3
	VFMADD231PD 32(DX), Y9, Y8
	ADDQ $64, R14
	ADDQ $64, AX
	ADDQ $64, BX
	ADDQ $64, CX
	ADDQ $64, DX
	SUBQ $8, R15
	CMPQ R15, $8
	JGE  k_loop8

	TESTQ R15, R15
	JZ   combine

	// cols is a multiple of 4, so at most one 4-wide chunk remains.
tail4:
	VMOVUPD (R14), Y4
	VFMADD231PD (AX), Y4, Y0
	VFMADD231PD (BX), Y4, Y1
	VFMADD231PD (CX), Y4, Y2
	VFMADD231PD (DX), Y4, Y3

combine:
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3

	// Reduce each YMM accumulator to a scalar and add into y.
	VEXTRACTF128 $1, Y0, X4
	VADDPD X4, X0, X0
	VHADDPD X0, X0, X0
	VADDSD (R8), X0, X0
	VMOVSD X0, (R8)
	VEXTRACTF128 $1, Y1, X4
	VADDPD X4, X1, X1
	VHADDPD X1, X1, X1
	VADDSD 8(R8), X1, X1
	VMOVSD X1, 8(R8)
	VEXTRACTF128 $1, Y2, X4
	VADDPD X4, X2, X2
	VHADDPD X2, X2, X2
	VADDSD 16(R8), X2, X2
	VMOVSD X2, 16(R8)
	VEXTRACTF128 $1, Y3, X4
	VADDPD X4, X3, X3
	VHADDPD X3, X3, X3
	VADDSD 24(R8), X3, X3
	VMOVSD X3, 24(R8)

	ADDQ $32, R8              // y advances four rows per group
	LEAQ (DI)(R12*4), DI      // next group's first row
	DECQ R9
	JNZ  group_loop

	VZEROUPPER
	RET

// func deferredRank1AVX2(gw, x, a *float64, rows, cols, steps, gwStride, xStride, aStride int)
//
// A register-tiled GEMM accumulate: gw (rows x cols, row-major with
// stride) += a^T (rows x steps, column 'r' strided) times x (steps x
// cols, row-major with stride). The tile is 4 gw rows x 8 gw columns
// held in Y0..Y7 across the whole t loop; per step that costs two x
// loads, four a broadcasts, and eight independent FMA chains — enough
// to keep both FMA ports busy while gw itself never leaves registers.
//
//   DI   gw base of the current 4-row group
//   R9   row groups remaining
//   R12  gw row stride in bytes
//   R10  x row stride in bytes
//   R11  a row stride in bytes
//   SI   columns remaining in this row group
//   R8   current column byte offset
//   AX/BX/CX/DX  the four gw row pointers of the tile
//   R14  x cursor, R15 a cursor, R13 t counter
//   0(SP) current row group's byte offset into a's rows (r*8)
TEXT ·deferredRank1AVX2(SB), NOSPLIT, $8-72
	MOVQ gw+0(FP), DI
	MOVQ rows+24(FP), R9
	SHRQ $2, R9               // 4-row groups
	MOVQ gwStride+48(FP), R12
	SHLQ $3, R12
	MOVQ xStride+56(FP), R10
	SHLQ $3, R10
	MOVQ aStride+64(FP), R11
	SHLQ $3, R11
	MOVQ $0, 0(SP)

dr_rowq_loop:
	MOVQ cols+32(FP), SI
	XORQ R8, R8

dr_col_loop:
	CMPQ SI, $8
	JLT  dr_tile4

	// 8-column tile: load the 4x8 gw block into Y0..Y7.
	LEAQ (DI)(R8*1), AX
	LEAQ (AX)(R12*1), BX
	LEAQ (AX)(R12*2), CX
	LEAQ (BX)(R12*2), DX
	VMOVUPD (AX), Y0
	VMOVUPD 32(AX), Y1
	VMOVUPD (BX), Y2
	VMOVUPD 32(BX), Y3
	VMOVUPD (CX), Y4
	VMOVUPD 32(CX), Y5
	VMOVUPD (DX), Y6
	VMOVUPD 32(DX), Y7
	MOVQ x+8(FP), R14
	ADDQ R8, R14
	MOVQ a+16(FP), R15
	ADDQ 0(SP), R15
	MOVQ steps+40(FP), R13

dr_t8_loop:
	VMOVUPD (R14), Y8
	VMOVUPD 32(R14), Y9
	VBROADCASTSD (R15), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VBROADCASTSD 8(R15), Y10
	VFMADD231PD Y8, Y10, Y2
	VFMADD231PD Y9, Y10, Y3
	VBROADCASTSD 16(R15), Y10
	VFMADD231PD Y8, Y10, Y4
	VFMADD231PD Y9, Y10, Y5
	VBROADCASTSD 24(R15), Y10
	VFMADD231PD Y8, Y10, Y6
	VFMADD231PD Y9, Y10, Y7
	ADDQ R10, R14
	ADDQ R11, R15
	DECQ R13
	JNZ  dr_t8_loop

	VMOVUPD Y0, (AX)
	VMOVUPD Y1, 32(AX)
	VMOVUPD Y2, (BX)
	VMOVUPD Y3, 32(BX)
	VMOVUPD Y4, (CX)
	VMOVUPD Y5, 32(CX)
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	ADDQ $64, R8
	SUBQ $8, SI
	JNZ  dr_col_loop
	JMP  dr_rowq_next

	// cols is a multiple of 4, so the tail is one 4-column tile.
dr_tile4:
	LEAQ (DI)(R8*1), AX
	LEAQ (AX)(R12*1), BX
	LEAQ (AX)(R12*2), CX
	LEAQ (BX)(R12*2), DX
	VMOVUPD (AX), Y0
	VMOVUPD (BX), Y2
	VMOVUPD (CX), Y4
	VMOVUPD (DX), Y6
	MOVQ x+8(FP), R14
	ADDQ R8, R14
	MOVQ a+16(FP), R15
	ADDQ 0(SP), R15
	MOVQ steps+40(FP), R13

dr_t4_loop:
	VMOVUPD (R14), Y8
	VBROADCASTSD (R15), Y10
	VFMADD231PD Y8, Y10, Y0
	VBROADCASTSD 8(R15), Y10
	VFMADD231PD Y8, Y10, Y2
	VBROADCASTSD 16(R15), Y10
	VFMADD231PD Y8, Y10, Y4
	VBROADCASTSD 24(R15), Y10
	VFMADD231PD Y8, Y10, Y6
	ADDQ R10, R14
	ADDQ R11, R15
	DECQ R13
	JNZ  dr_t4_loop

	VMOVUPD Y0, (AX)
	VMOVUPD Y2, (BX)
	VMOVUPD Y4, (CX)
	VMOVUPD Y6, (DX)

dr_rowq_next:
	LEAQ (DI)(R12*4), DI
	ADDQ $32, 0(SP)           // next group starts four a-rows later
	DECQ R9
	JNZ  dr_rowq_loop

	VZEROUPPER
	RET

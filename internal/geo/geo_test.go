package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// piraeus and heraklion are ~ 300 km apart; reference distance computed
// with an independent Vincenty implementation (sphere-adjusted).
var (
	piraeus   = Point{Lat: 37.9420, Lon: 23.6460}
	heraklion = Point{Lat: 35.3387, Lon: 25.1442}
	rotterdam = Point{Lat: 51.9053, Lon: 4.4666}
	newYork   = Point{Lat: 40.6643, Lon: -74.0465}
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64 // relative tolerance
	}{
		{"zero", piraeus, piraeus, 0, 0},
		{"piraeus-heraklion", piraeus, heraklion, 317.6e3, 0.01},
		{"rotterdam-newyork", rotterdam, newYork, 5877e3, 0.01},
		{"equator-degree", Point{0, 0}, Point{0, 1}, 111195, 0.001},
		{"meridian-degree", Point{0, 0}, Point{1, 0}, 111195, 0.001},
	}
	for _, c := range cases {
		got := Haversine(c.a, c.b)
		if c.want == 0 {
			if got != 0 {
				t.Errorf("%s: got %f want 0", c.name, got)
			}
			continue
		}
		if rel := math.Abs(got-c.want) / c.want; rel > c.tol {
			t.Errorf("%s: got %.1f want %.1f (rel err %.4f)", c.name, got, c.want, rel)
		}
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clamp(lat1, -89, 89), Lon: NormalizeLon(lon1)}
		b := Point{Lat: clamp(lat2, -89, 89), Lon: NormalizeLon(lon2)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFastDistanceAgreesOnShortBaselines(t *testing.T) {
	// Within ~20 km the equirectangular approximation must stay within
	// 1% of haversine at moderate latitudes.
	base := Point{Lat: 37.9, Lon: 23.6}
	for _, bearing := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		for _, dist := range []float64{100, 1000, 5000, 20000} {
			p := Destination(base, bearing, dist)
			h := Haversine(base, p)
			f := FastDistance(base, p)
			if rel := math.Abs(h-f) / h; rel > 0.01 {
				t.Errorf("bearing %.0f dist %.0f: haversine %.1f fast %.1f rel %.4f",
					bearing, dist, h, f, rel)
			}
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(lat, lon, bearing, distKm float64) bool {
		p := Point{Lat: clamp(lat, -80, 80), Lon: NormalizeLon(lon)}
		b := math.Mod(math.Abs(bearing), 360)
		d := math.Mod(math.Abs(distKm), 500) * 1000
		q := Destination(p, b, d)
		back := Haversine(p, q)
		return math.Abs(back-d) < 1.0 // within a meter over <=500km
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	origin := Point{Lat: 0, Lon: 0}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, 90},
		{Point{-1, 0}, 180},
		{Point{0, -1}, 270},
	}
	for _, c := range cases {
		got := InitialBearing(origin, c.to)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("bearing to %v: got %f want %f", c.to, got, c.want)
		}
	}
}

func TestDestinationBearingConsistency(t *testing.T) {
	f := func(lat, lon, bearing float64) bool {
		p := Point{Lat: clamp(lat, -70, 70), Lon: NormalizeLon(lon)}
		b := math.Mod(math.Abs(bearing), 360)
		q := Destination(p, b, 10000)
		got := InitialBearing(p, q)
		return CourseDiff(got, b) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeLon(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {190, -170}, {-190, 170},
		{360, 0}, {540, -180}, {720, 0}, {-360, 0},
	}
	for _, c := range cases {
		if got := NormalizeLon(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalizeLon(%f) = %f, want %f", c.in, got, c.want)
		}
	}
}

func TestNormalizeLonRange(t *testing.T) {
	f := func(lon float64) bool {
		if math.IsNaN(lon) || math.IsInf(lon, 0) {
			return true
		}
		n := NormalizeLon(lon)
		return n >= -180 && n < 180
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a, b := piraeus, heraklion
	if d := Haversine(Interpolate(a, b, 0), a); d > 0.001 {
		t.Errorf("f=0 should return start, off by %f m", d)
	}
	if d := Haversine(Interpolate(a, b, 1), b); d > 1.0 {
		t.Errorf("f=1 should return end, off by %f m", d)
	}
	mid := Interpolate(a, b, 0.5)
	da, db := Haversine(a, mid), Haversine(mid, b)
	if math.Abs(da-db) > 1.0 {
		t.Errorf("midpoint not equidistant: %f vs %f", da, db)
	}
}

func TestInterpolateMonotone(t *testing.T) {
	a, b := rotterdam, newYork
	prev := -1.0
	for f := 0.0; f <= 1.0; f += 0.05 {
		d := Haversine(a, Interpolate(a, b, f))
		if d < prev {
			t.Fatalf("distance from start not monotone at f=%f", f)
		}
		prev = d
	}
}

func TestCrossTrackSign(t *testing.T) {
	a := Point{0, 0}
	b := Point{0, 10} // path due east along the equator
	left := Point{1, 5}
	right := Point{-1, 5}
	if xt := CrossTrack(left, a, b); xt >= 0 {
		t.Errorf("point north of eastward path should be negative (left), got %f", xt)
	}
	if xt := CrossTrack(right, a, b); xt <= 0 {
		t.Errorf("point south of eastward path should be positive (right), got %f", xt)
	}
	on := Point{0, 5}
	if xt := math.Abs(CrossTrack(on, a, b)); xt > 1 {
		t.Errorf("point on path should have ~0 cross-track, got %f", xt)
	}
}

func TestAlongTrack(t *testing.T) {
	a := Point{0, 0}
	b := Point{0, 10}
	p := Point{0.5, 5}
	at := AlongTrack(p, a, b)
	want := Haversine(a, Point{0, 5})
	if math.Abs(at-want)/want > 0.001 {
		t.Errorf("along-track got %f want ~%f", at, want)
	}
}

func TestDisplacementAntimeridian(t *testing.T) {
	a := Point{Lat: 10, Lon: 179.9}
	b := Point{Lat: 10, Lon: -179.9}
	dLat, dLon := Displacement(a, b)
	if dLat != 0 {
		t.Errorf("dLat = %f, want 0", dLat)
	}
	if math.Abs(dLon-0.2) > 1e-9 {
		t.Errorf("dLon = %f, want 0.2", dLon)
	}
}

func TestDisplacementOffsetRoundTrip(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clamp(lat1, -85, 85), Lon: NormalizeLon(lon1)}
		b := Point{Lat: clamp(lat2, -85, 85), Lon: NormalizeLon(lon2)}
		dLat, dLon := Displacement(a, b)
		c := Offset(a, dLat, dLon)
		return math.Abs(c.Lat-b.Lat) < 1e-9 && math.Abs(NormalizeLon(c.Lon-b.Lon)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeadReckonStationary(t *testing.T) {
	p := piraeus
	q := DeadReckon(p, 0, 123, 1800)
	if d := Haversine(p, q); d > 0.001 {
		t.Errorf("zero speed should not move, moved %f m", d)
	}
}

func TestDeadReckonDistance(t *testing.T) {
	// 10 knots for 30 minutes = 5 NM = 9260 m.
	p := Point{Lat: 40, Lon: -30}
	q := DeadReckon(p, 10, 90, 1800)
	want := 5 * MetersPerNauticalMile
	if got := Haversine(p, q); math.Abs(got-want) > 1 {
		t.Errorf("got %f want %f", got, want)
	}
}

func TestBBoxContains(t *testing.T) {
	if !EuropeanCoverage.Contains(piraeus) {
		t.Error("Piraeus must be inside the European coverage box")
	}
	if EuropeanCoverage.Contains(newYork) {
		t.Error("New York must be outside the European coverage box")
	}
	if !AegeanSea.Contains(Point{Lat: 37.5, Lon: 25.0}) {
		t.Error("central Aegean point must be inside the Aegean box")
	}
}

func TestBBoxSampleInside(t *testing.T) {
	f := func(u, v float64) bool {
		u = math.Mod(math.Abs(u), 1)
		v = math.Mod(math.Abs(v), 1)
		return AegeanSea.Contains(AegeanSea.Sample(u, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxExpand(t *testing.T) {
	b := BBox{MinLat: 10, MinLon: 10, MaxLat: 20, MaxLon: 20}.Expand(1)
	if b.MinLat != 9 || b.MaxLat != 21 || b.MinLon != 9 || b.MaxLon != 21 {
		t.Errorf("unexpected expansion: %+v", b)
	}
	top := BBox{MinLat: 80, MinLon: 0, MaxLat: 89.5, MaxLon: 10}.Expand(1)
	if top.MaxLat != 90 {
		t.Errorf("latitude must clamp at the pole, got %f", top.MaxLat)
	}
}

func TestCourseDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {0, 180, 180}, {10, 350, 20}, {350, 10, 20}, {90, 270, 180},
		{359, 1, 2},
	}
	for _, c := range cases {
		if got := CourseDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CourseDiff(%f,%f) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestMetersPerDegree(t *testing.T) {
	perLat, perLonEq := MetersPerDegree(0)
	if math.Abs(perLat-111195) > 1 {
		t.Errorf("meters per degree latitude: %f", perLat)
	}
	if math.Abs(perLonEq-perLat) > 1 {
		t.Errorf("at the equator lon scale must equal lat scale: %f vs %f", perLonEq, perLat)
	}
	_, perLon60 := MetersPerDegree(60)
	if math.Abs(perLon60-perLat/2) > 1 {
		t.Errorf("at 60N lon scale must be half: %f vs %f", perLon60, perLat/2)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 179.99999}, {-90, -180}, {37.9, 23.6}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	// The longitude domain is half-open: the antimeridian is only -180,
	// so +180 is out of domain like any other over-range value.
	invalid := []Point{{91, 0}, {0, 180}, {0, 181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func BenchmarkHaversine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Haversine(piraeus, heraklion)
	}
}

func BenchmarkFastDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FastDistance(piraeus, heraklion)
	}
}

func BenchmarkDestination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Destination(piraeus, 135, 5000)
	}
}

// The event detectors' grid fast path relies on the batch kernel being
// bitwise identical to per-pair FastDistance calls: the parity tests
// compare distances exactly, so even a reassociated float expression
// would break them.
func TestFastDistancesIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 257)
	for i := range pts {
		pts[i] = Point{
			Lat: -80 + rng.Float64()*160,
			Lon: -180 + rng.Float64()*360,
		}
	}
	from := Point{Lat: 37.9, Lon: 23.6}
	dst := make([]float64, len(pts))
	FastDistancesInto(dst, from, pts)
	for i, p := range pts {
		if want := FastDistance(from, p); dst[i] != want {
			t.Fatalf("pts[%d]=%v: batch %v != scalar %v", i, p, dst[i], want)
		}
	}
	// Zero-length input must not touch dst.
	sentinel := []float64{42}
	FastDistancesInto(sentinel, from, nil)
	if sentinel[0] != 42 {
		t.Fatalf("empty input overwrote dst")
	}
}

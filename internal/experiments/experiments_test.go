package experiments

import (
	"strings"
	"testing"
	"time"

	"seatwin/internal/events"
)

func TestTable1Format(t *testing.T) {
	res := Table1Result{
		Rows: []Table1Row{
			{Horizon: 5 * time.Minute, Kinematic: 97.7, SVRF: 91.7, DiffPct: -6.1},
			{Horizon: 30 * time.Minute, Kinematic: 1216.3, SVRF: 1060.2, DiffPct: -12.8},
		},
		MeanKin: 609.9, MeanSVRF: 538.5, MeanDiff: -11.7, TestSize: 100,
	}
	out := res.Format()
	for _, want := range []string{"Table 1", "97.7", "1060.2", "-11.7%", "Mean ADE"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Format(t *testing.T) {
	res := Table2Result{
		Vessels: 213, Events: 237, Messages: 4658, SubA: 61, SubB: 152,
		Rows: []Table2Row{{
			Dataset: "All Events", Model: "S-VRF", Threshold: 2 * time.Minute,
			Truth: 237, TP: 214, FP: 11, FN: 23,
			Precision: 0.95, Recall: 0.90, F1: 0.92, Accuracy: 0.90,
		}},
	}
	out := res.Format()
	for _, want := range []string{"Table 2", "213 vessels", "All Events", "S-VRF", "214"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestDatasetFormatIncludesPaperReference(t *testing.T) {
	out := DatasetResult{Messages: 100, Vessels: 10, IntervalMean: 80, IntervalStd: 300}.Format()
	if !strings.Contains(out, "78.6 s") || !strings.Contains(out, "418.3 s") {
		t.Errorf("paper reference values missing:\n%s", out)
	}
}

func TestRunFigure6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run, skipped in short mode")
	}
	res, err := RunFigure6(events.NewKinematicForecaster(), 500, 20000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series")
	}
	out := res.Format()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "latency:") {
		t.Errorf("format incomplete:\n%s", out)
	}
	if res.Stats.Messages != 20000 {
		t.Fatalf("processed %d messages", res.Stats.Messages)
	}
}

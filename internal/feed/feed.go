// Package feed is the push side of the Figure 2 middleware: a
// subscription and fan-out subsystem that turns the pipeline's outputs
// (vessel states, S-VRF forecasts, proximity/collision/switch-off
// events) into live streams UI clients subscribe to, instead of polling
// the pull-only /api endpoints.
//
// A Hub maintains topic trees for three subscription kinds —
// per-vessel ("vessel/<mmsi>"), spatial region ("region/<cell>" at a
// configurable hexgrid resolution) and event class ("events/proximity",
// "events/collision", "events/gap") — and fans every published frame
// out to the matching subscribers. Each subscriber owns a bounded ring
// buffer with a pluggable overflow policy (drop-oldest, conflate-by-key
// or disconnect), so one slow client can never stall the publisher: the
// fan-out path is a constant-time, lock-bounded push per subscriber.
//
// The hub is fed two ways, so it works both embedded in the pipeline
// process and against a durable broker: AttachStream subscribes it to
// the actor system's EventStream (the writer actors publish every state
// and event there), and ConsumeLoop drains a broker consumer on the
// seatwin-states / seatwin-events output topics.
package feed

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"seatwin/internal/actor"
	"seatwin/internal/ais"
	"seatwin/internal/broker"
	"seatwin/internal/events"
	"seatwin/internal/geo"
	"seatwin/internal/hexgrid"
	"seatwin/internal/metrics"
)

// Topic prefixes and event-class topics.
const (
	TopicVesselPrefix = "vessel/"
	TopicRegionPrefix = "region/"
	TopicProximity    = "events/proximity"
	TopicCollision    = "events/collision"
	TopicGap          = "events/gap"
)

// State is one vessel state frame entering the hub: the writer actor's
// view of a position report plus the forecast produced from it.
type State struct {
	MMSI     ais.MMSI
	Name     string
	Lat, Lon float64
	SOG, COG float64
	Status   string
	TS       time.Time
	Forecast []events.ForecastPoint
}

// Options configure a Hub.
type Options struct {
	// RegionResolution is the hexgrid resolution of the region/<cell>
	// topics (<=0 selects 7, ~4.5 km cells — the collision grid "K").
	RegionResolution int
	// DefaultBuffer is the ring capacity used when a subscriber does not
	// choose one (<=0 selects 256).
	DefaultBuffer int
}

// Stats is a snapshot of the hub's instrumentation.
type Stats struct {
	Subscribers  int64 // currently connected
	TotalSubs    int64 // ever connected
	Published    int64 // frames entering the hub
	Fanned       int64 // frame deliveries enqueued to subscriber rings
	Dropped      int64 // frames evicted by drop-oldest overflow
	Conflated    int64 // frames replaced in place by conflate-by-key
	Disconnected int64 // subscribers force-closed by the disconnect policy
	FanoutP99    time.Duration
	FanoutMean   time.Duration
}

// Hub is the central fan-out switch. All methods are safe for
// concurrent use; Publish never blocks on subscriber consumption.
type Hub struct {
	regionRes int
	defBuffer int

	mu     sync.RWMutex
	topics map[string]map[*Subscription]struct{}
	closed bool

	// relayMu guards the registry of live relay tiers (see relay.go);
	// relays deregister themselves when their pump exits.
	relayMu sync.Mutex
	relays  map[*Relay]struct{}

	seq      atomic.Uint64 // frame sequence, dedups multi-topic delivery
	subSeq   atomic.Uint64 // subscriber ids (metrics routing hints)
	subCount atomic.Int64
	totSubs  atomic.Int64
	discon   atomic.Int64

	published *metrics.ShardedCounter
	fanned    *metrics.ShardedCounter
	dropped   *metrics.ShardedCounter
	conflated *metrics.ShardedCounter
	latency   *metrics.ShardedLatencyRecorder
}

// NewHub creates an empty hub.
func NewHub(opt Options) *Hub {
	if opt.RegionResolution <= 0 || opt.RegionResolution > hexgrid.MaxResolution {
		opt.RegionResolution = 7
	}
	if opt.DefaultBuffer <= 0 {
		opt.DefaultBuffer = 256
	}
	return &Hub{
		regionRes: opt.RegionResolution,
		defBuffer: opt.DefaultBuffer,
		topics:    make(map[string]map[*Subscription]struct{}),
		published: metrics.NewShardedCounter(0),
		fanned:    metrics.NewShardedCounter(0),
		dropped:   metrics.NewShardedCounter(0),
		conflated: metrics.NewShardedCounter(0),
		latency:   metrics.NewShardedLatencyRecorder(0, 1<<14),
	}
}

// RegionResolution returns the hexgrid resolution of the region topics.
func (h *Hub) RegionResolution() int { return h.regionRes }

// RegionTopic returns the region/<cell> topic covering a position, at
// the hub's resolution.
func (h *Hub) RegionTopic(p geo.Point) string {
	return TopicRegionPrefix + hexgrid.LatLonToCell(p, h.regionRes).String()
}

// frame is one encoded payload on its way through the hub.
type frame struct {
	seq  uint64
	typ  string // "state" | "event"
	key  string // conflation key ("" = never conflate)
	data []byte
}

// stateJSON is the wire document of a state frame. The type tag makes
// the payload self-describing on both transports.
type stateJSON struct {
	Type     string         `json:"type"`
	MMSI     string         `json:"mmsi"`
	Name     string         `json:"name,omitempty"`
	Lat      float64        `json:"lat"`
	Lon      float64        `json:"lon"`
	SOG      float64        `json:"sog"`
	COG      float64        `json:"cog"`
	Status   string         `json:"status,omitempty"`
	Cell     string         `json:"cell"`
	At       string         `json:"ts"`
	Forecast []fcPointJSON  `json:"forecast,omitempty"`
}

type fcPointJSON struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	At  int64   `json:"t"`
}

// eventJSON is the wire document of an event frame.
type eventJSON struct {
	Type   string  `json:"type"`
	Class  string  `json:"class"`
	Kind   string  `json:"kind"`
	A      string  `json:"a"`
	B      string  `json:"b,omitempty"`
	At     string  `json:"at"`
	Lat    float64 `json:"lat"`
	Lon    float64 `json:"lon"`
	Meters float64 `json:"meters,omitempty"`
}

// EventClass maps an event kind to its feed class ("proximity",
// "collision", "gap"; "" for unknown kinds).
func EventClass(k events.Kind) string {
	switch k {
	case events.KindProximity:
		return "proximity"
	case events.KindCollisionForecast:
		return "collision"
	case events.KindSwitchOff:
		return "gap"
	default:
		return ""
	}
}

// PublishState fans one vessel state frame out to the vessel's topic
// and the region topic of its position. The frame is encoded once; all
// subscribers share the bytes.
func (h *Hub) PublishState(s State) {
	cell := hexgrid.LatLonToCell(geo.Point{Lat: s.Lat, Lon: s.Lon}, h.regionRes)
	doc := stateJSON{
		Type: "state", MMSI: s.MMSI.String(), Name: s.Name,
		Lat: s.Lat, Lon: s.Lon, SOG: s.SOG, COG: s.COG,
		Status: s.Status, Cell: cell.String(),
		At: s.TS.UTC().Format(time.RFC3339),
	}
	for _, p := range s.Forecast {
		doc.Forecast = append(doc.Forecast, fcPointJSON{Lat: p.Pos.Lat, Lon: p.Pos.Lon, At: p.At.Unix()})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return // static wire struct; cannot happen
	}
	h.publish(frame{
		seq: h.seq.Add(1), typ: "state", key: "s/" + doc.MMSI, data: data,
	}, TopicVesselPrefix+doc.MMSI, TopicRegionPrefix+cell.String())
}

// PublishEvent fans one maritime event out to its class topic and the
// per-vessel topics of the vessels involved. Events carry no conflation
// key: they are facts, not replaceable snapshots.
func (h *Hub) PublishEvent(e events.Event) {
	class := EventClass(e.Kind)
	if class == "" {
		return
	}
	doc := eventJSON{
		Type: "event", Class: class, Kind: string(e.Kind),
		A: e.A.String(), At: e.At.UTC().Format(time.RFC3339),
		Lat: e.Pos.Lat, Lon: e.Pos.Lon, Meters: e.Meters,
	}
	if e.B != 0 {
		doc.B = e.B.String()
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return
	}
	topics := make([]string, 0, 3)
	topics = append(topics, "events/"+class, TopicVesselPrefix+doc.A)
	if doc.B != "" {
		topics = append(topics, TopicVesselPrefix+doc.B)
	}
	h.publish(frame{seq: h.seq.Add(1), typ: "event", data: data}, topics...)
}

// Publish dispatches a value of either hub input type (State or
// events.Event), reporting whether the value was one; other values are
// ignored. It is the generic entry the EventStream attachment and
// broker consume loop share.
func (h *Hub) Publish(v any) bool {
	switch m := v.(type) {
	case State:
		h.PublishState(m)
	case events.Event:
		h.PublishEvent(m)
	default:
		return false
	}
	return true
}

// publish fans an encoded frame out to every subscriber of the given
// topics. The hub lock is held in read mode only; per-subscriber work
// is one O(1) ring push. Subscribers that overflow under the disconnect
// policy are collected and removed after the fan-out.
func (h *Hub) publish(f frame, topics ...string) {
	start := time.Now()
	h.published.Inc(f.seq, 1)
	var evict []*Subscription
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return
	}
	for _, t := range topics {
		for sub := range h.topics[t] {
			// A frame matching several of the subscriber's topics is
			// delivered once: sequence numbers are globally unique, so a
			// mismatch can never skip a distinct frame.
			if sub.lastSeq.Load() == f.seq {
				continue
			}
			sub.lastSeq.Store(f.seq)
			pushed, conflated, droppedOld := sub.ring.push(f)
			switch {
			case pushed && conflated:
				h.conflated.Inc(sub.id, 1)
			case pushed:
				h.fanned.Inc(sub.id, 1)
				if droppedOld {
					h.dropped.Inc(sub.id, 1)
				}
			default: // overflow under PolicyDisconnect
				evict = append(evict, sub)
			}
		}
	}
	h.mu.RUnlock()
	for _, sub := range evict {
		h.discon.Add(1)
		sub.closeWith(ErrSlowConsumer)
		h.remove(sub)
	}
	h.latency.Observe(f.seq, time.Since(start))
}

// Subscribe registers a subscriber on the given topics. Topics are
// taken verbatim (build them with TopicVesselPrefix/RegionTopic/the
// events/* constants); at least one is required.
func (h *Hub) Subscribe(topics []string, opt SubOptions) (*Subscription, error) {
	if len(topics) == 0 {
		return nil, ErrNoTopics
	}
	if opt.Buffer <= 0 {
		opt.Buffer = h.defBuffer
	}
	sub := &Subscription{
		hub:    h,
		id:     h.subSeq.Add(1),
		topics: append([]string(nil), topics...),
		ring:   newRing(opt.Buffer, opt.Policy),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHubClosed
	}
	for _, t := range sub.topics {
		set, ok := h.topics[t]
		if !ok {
			set = make(map[*Subscription]struct{})
			h.topics[t] = set
		}
		set[sub] = struct{}{}
	}
	h.mu.Unlock()
	h.subCount.Add(1)
	h.totSubs.Add(1)
	return sub, nil
}

// remove detaches a subscriber from every topic tree, pruning emptied
// topics so the map does not accumulate dead vessel/region entries.
func (h *Hub) remove(sub *Subscription) {
	h.mu.Lock()
	removed := false
	for _, t := range sub.topics {
		if set, ok := h.topics[t]; ok {
			if _, had := set[sub]; had {
				removed = true
				delete(set, sub)
				if len(set) == 0 {
					delete(h.topics, t)
				}
			}
		}
	}
	h.mu.Unlock()
	if removed {
		h.subCount.Add(-1)
	}
}

// Close shuts the hub down, closing every subscription.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make(map[*Subscription]struct{})
	for _, set := range h.topics {
		for sub := range set {
			subs[sub] = struct{}{}
		}
	}
	h.topics = make(map[string]map[*Subscription]struct{})
	h.mu.Unlock()
	for sub := range subs {
		sub.closeWith(ErrHubClosed)
		h.subCount.Add(-1)
	}
}

// Snapshot returns the hub's instrumentation counters.
func (h *Hub) Snapshot() Stats {
	lat := h.latency.Snapshot()
	return Stats{
		Subscribers:  h.subCount.Load(),
		TotalSubs:    h.totSubs.Load(),
		Published:    h.published.Value(),
		Fanned:       h.fanned.Value(),
		Dropped:      h.dropped.Value(),
		Conflated:    h.conflated.Value(),
		Disconnected: h.discon.Load(),
		FanoutP99:    lat.P99,
		FanoutMean:   lat.Mean,
	}
}

// AttachStream subscribes the hub to an actor EventStream carrying
// feed.State and events.Event values (the embedded wiring: the
// pipeline's writer actors publish there). It returns a detach func.
func (h *Hub) AttachStream(es *actor.EventStream) (detach func()) {
	unsubState := actor.SubscribeType[State](es, h.PublishState)
	unsubEvent := actor.SubscribeType[events.Event](es, h.PublishEvent)
	return func() {
		unsubState()
		unsubEvent()
	}
}

// ConsumeLoop drains a broker consumer into the hub until the consumer
// closes or the hub shuts down — the durable wiring against the
// seatwin-states / seatwin-events output topics. decode converts one
// record into a hub input (State or events.Event); nil uses the record
// value as-is. Returns the number of frames published.
func (h *Hub) ConsumeLoop(c *broker.Consumer, decode func(broker.Record) (any, bool), pollWait time.Duration) int {
	n := 0
	for {
		h.mu.RLock()
		closed := h.closed
		h.mu.RUnlock()
		if closed {
			return n
		}
		recs := c.Poll(512, pollWait)
		if recs == nil {
			return n
		}
		for _, r := range recs {
			v := any(r.Value)
			ok := true
			if decode != nil {
				v, ok = decode(r)
			}
			if ok && h.Publish(v) {
				n++
			}
		}
		c.Commit()
	}
}

package fleetsim

import (
	"time"

	"seatwin/internal/ais"
)

// WireFeed wraps a World and emits NMEA 0183 AIVDM sentences instead of
// decoded structs — the exact wire format an AIS receiver network
// delivers. Class A vessels additionally transmit their type 5 static
// and voyage message every six minutes (ITU-R M.1371 cadence), which
// fragments into multiple sentences.
type WireFeed struct {
	world *World
	// lastStatic tracks the last static transmission per vessel.
	lastStatic map[ais.MMSI]time.Time
	msgID      int
	// queue holds sentences not yet drained (a static message yields
	// several lines plus the position report's line).
	queue []WireLine
}

// WireLine is one received NMEA sentence with its receive time.
type WireLine struct {
	Line string
	At   time.Time
}

// staticInterval is the ITU cadence for type 5 transmissions.
const staticInterval = 6 * time.Minute

// NewWireFeed wraps a world.
func NewWireFeed(world *World) *WireFeed {
	return &WireFeed{world: world, lastStatic: make(map[ais.MMSI]time.Time)}
}

// Next returns the next received sentence in time order.
func (w *WireFeed) Next() (WireLine, bool) {
	for len(w.queue) == 0 {
		r, ok := w.world.Next()
		if !ok {
			return WireLine{}, false
		}
		// Interleave the periodic static message ahead of the position:
		// class A transmits a (fragmented) type 5, class B its two
		// type 24 parts.
		if last, seen := w.lastStatic[r.Pos.MMSI]; !seen || r.At.Sub(last) >= staticInterval {
			w.lastStatic[r.Pos.MMSI] = r.At
			static := r.Vessel.Static("")
			var lines []string
			var err error
			if r.Vessel.Profile.Class == ais.ClassA {
				w.msgID++
				lines, err = ais.Marshal(static, "A", w.msgID)
			} else {
				lines, err = ais.MarshalClassBStatic(static, "B")
			}
			if err == nil {
				for _, l := range lines {
					w.queue = append(w.queue, WireLine{Line: l, At: r.At})
				}
			}
		}
		if lines, err := ais.Marshal(r.Pos, "A", 0); err == nil {
			for _, l := range lines {
				w.queue = append(w.queue, WireLine{Line: l, At: r.At})
			}
		}
	}
	out := w.queue[0]
	w.queue = w.queue[1:]
	return out, true
}

package ais

import (
	"fmt"
	"math"
	"time"
)

// Bit-field scales from ITU-R M.1371.
const (
	lonScale = 600000.0 // 1/10000 arc-minute
	latScale = 600000.0

	sogUnavailable     = 1023
	cogUnavailable     = 3600
	headingUnavailable = 511
	rotUnavailable     = -128
	lonUnavailable     = 0x6791AC0 // 181 degrees
	latUnavailable     = 0x3412140 // 91 degrees
)

// EncodePosition packs a PositionReport into message bits: type 1 for
// class A, type 18 for class B.
func EncodePosition(p PositionReport) ([]byte, int, error) {
	if !p.MMSI.Valid() {
		return nil, 0, fmt.Errorf("ais: invalid MMSI %d", p.MMSI)
	}
	if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
		return nil, 0, fmt.Errorf("ais: position out of range (%f, %f)", p.Lat, p.Lon)
	}
	w := &bitWriter{}
	if p.Class == ClassA {
		encodeClassA(w, p)
	} else {
		encodeClassB(w, p)
	}
	return w.buf, w.bits(), nil
}

func encodeSOG(sog float64) uint64 {
	if sog < 0 {
		return sogUnavailable
	}
	v := uint64(math.Round(sog * 10))
	if v > 1022 {
		v = 1022
	}
	return v
}

func encodeCOG(cog float64) uint64 {
	if cog < 0 {
		return cogUnavailable
	}
	v := uint64(math.Round(cog*10)) % 3600
	return v
}

func encodeHeading(h int) uint64 {
	if h < 0 || h > 359 {
		return headingUnavailable
	}
	return uint64(h)
}

// encodeROT applies the AIS rate-of-turn transfer curve:
// ROTais = 4.733 * sqrt(ROT deg/min), signed, clamped to ±126.
func encodeROT(rot float64) int64 {
	if math.IsNaN(rot) {
		return rotUnavailable
	}
	v := 4.733 * math.Sqrt(math.Abs(rot))
	if v > 126 {
		v = 126
	}
	r := int64(math.Round(v))
	if rot < 0 {
		r = -r
	}
	return r
}

func decodeROT(v int64) float64 {
	if v == rotUnavailable {
		return math.NaN()
	}
	deg := float64(v) / 4.733
	deg *= deg
	if v < 0 {
		deg = -deg
	}
	return deg
}

func encodeClassA(w *bitWriter, p PositionReport) {
	w.writeUint(1, 6)                                 // message type 1
	w.writeUint(0, 2)                                 // repeat indicator
	w.writeUint(uint64(p.MMSI), 30)                   // MMSI
	w.writeUint(uint64(p.Status), 4)                  // navigational status
	w.writeInt(encodeROT(p.ROT), 8)                   // rate of turn
	w.writeUint(encodeSOG(p.SOG), 10)                 // speed over ground
	w.writeUint(1, 1)                                 // position accuracy: high
	w.writeInt(int64(math.Round(p.Lon*lonScale)), 28) // longitude
	w.writeInt(int64(math.Round(p.Lat*latScale)), 27) // latitude
	w.writeUint(encodeCOG(p.COG), 12)                 // course over ground
	w.writeUint(encodeHeading(p.Heading), 9)
	w.writeUint(uint64(p.Timestamp.Second())%60, 6) // UTC second
	w.writeUint(0, 2)                               // maneuver indicator
	w.writeUint(0, 3)                               // spare
	w.writeUint(0, 1)                               // RAIM
	w.writeUint(0, 19)                              // radio status
}

func encodeClassB(w *bitWriter, p PositionReport) {
	w.writeUint(18, 6)                // message type 18
	w.writeUint(0, 2)                 // repeat indicator
	w.writeUint(uint64(p.MMSI), 30)   // MMSI
	w.writeUint(0, 8)                 // regional reserved
	w.writeUint(encodeSOG(p.SOG), 10) // speed over ground
	w.writeUint(1, 1)                 // position accuracy
	w.writeInt(int64(math.Round(p.Lon*lonScale)), 28)
	w.writeInt(int64(math.Round(p.Lat*latScale)), 27)
	w.writeUint(encodeCOG(p.COG), 12)
	w.writeUint(encodeHeading(p.Heading), 9)
	w.writeUint(uint64(p.Timestamp.Second())%60, 6)
	w.writeUint(0, 2)  // regional reserved
	w.writeUint(1, 1)  // CS unit: carrier sense
	w.writeUint(0, 1)  // display flag
	w.writeUint(0, 1)  // DSC flag
	w.writeUint(1, 1)  // band flag
	w.writeUint(0, 1)  // message 22 flag
	w.writeUint(0, 1)  // assigned mode
	w.writeUint(0, 1)  // RAIM
	w.writeUint(0, 20) // radio status
}

// EncodeStatic packs a StaticVoyage into type 5 message bits.
func EncodeStatic(s StaticVoyage) ([]byte, int, error) {
	if !s.MMSI.Valid() {
		return nil, 0, fmt.Errorf("ais: invalid MMSI %d", s.MMSI)
	}
	w := &bitWriter{}
	w.writeUint(5, 6)               // message type 5
	w.writeUint(0, 2)               // repeat indicator
	w.writeUint(uint64(s.MMSI), 30) // MMSI
	w.writeUint(0, 2)               // AIS version
	w.writeUint(uint64(s.IMO), 30)  // IMO number
	w.writeString(s.Callsign, 7)    // callsign, 42 bits
	w.writeString(s.Name, 20)       // name, 120 bits
	w.writeUint(uint64(s.ShipType), 8)
	w.writeUint(clampDim(s.DimBow, 511), 9)
	w.writeUint(clampDim(s.DimStern, 511), 9)
	w.writeUint(clampDim(s.DimPort, 63), 6)
	w.writeUint(clampDim(s.DimStarb, 63), 6)
	w.writeUint(1, 4)                        // EPFD: GPS
	w.writeUint(0, 4)                        // ETA month
	w.writeUint(0, 5)                        // ETA day
	w.writeUint(24, 5)                       // ETA hour: unavailable
	w.writeUint(60, 6)                       // ETA minute: unavailable
	w.writeUint(encodeDraught(s.Draught), 8) // draught, 0.1m
	w.writeString(s.Destination, 20)         // destination, 120 bits
	w.writeUint(0, 1)                        // DTE
	w.writeUint(0, 1)                        // spare
	return w.buf, w.bits(), nil
}

func clampDim(v, max int) uint64 {
	if v < 0 {
		return 0
	}
	if v > max {
		v = max
	}
	return uint64(v)
}

func encodeDraught(d float64) uint64 {
	if d < 0 {
		return 0
	}
	v := uint64(math.Round(d * 10))
	if v > 255 {
		v = 255
	}
	return v
}

// EncodeStatic24A packs the class B static report part A (vessel name).
func EncodeStatic24A(s StaticVoyage) ([]byte, int, error) {
	if !s.MMSI.Valid() {
		return nil, 0, fmt.Errorf("ais: invalid MMSI %d", s.MMSI)
	}
	w := &bitWriter{}
	w.writeUint(24, 6)              // message type
	w.writeUint(0, 2)               // repeat
	w.writeUint(uint64(s.MMSI), 30) // MMSI
	w.writeUint(0, 2)               // part number A
	w.writeString(s.Name, 20)       // name, 120 bits
	return w.buf, w.bits(), nil
}

// EncodeStatic24B packs the class B static report part B (type,
// callsign, dimensions).
func EncodeStatic24B(s StaticVoyage) ([]byte, int, error) {
	if !s.MMSI.Valid() {
		return nil, 0, fmt.Errorf("ais: invalid MMSI %d", s.MMSI)
	}
	w := &bitWriter{}
	w.writeUint(24, 6)
	w.writeUint(0, 2)
	w.writeUint(uint64(s.MMSI), 30)
	w.writeUint(1, 2) // part number B
	w.writeUint(uint64(s.ShipType), 8)
	w.writeString("", 3)         // vendor ID, 18 bits
	w.writeUint(0, 4)            // unit model
	w.writeUint(0, 20)           // serial number
	w.writeString(s.Callsign, 7) // 42 bits
	w.writeUint(clampDim(s.DimBow, 511), 9)
	w.writeUint(clampDim(s.DimStern, 511), 9)
	w.writeUint(clampDim(s.DimPort, 63), 6)
	w.writeUint(clampDim(s.DimStarb, 63), 6)
	w.writeUint(0, 6) // spare
	return w.buf, w.bits(), nil
}

// decodeStatic24 parses either part of a class B static report into a
// partially filled StaticVoyage (part A carries the name, part B the
// type, callsign and dimensions). Consumers merge the parts by MMSI.
func decodeStatic24(r *bitReader, nbit int) (Message, error) {
	if nbit < 160 {
		return nil, fmt.Errorf("ais: type 24 needs 160+ bits, got %d", nbit)
	}
	var s StaticVoyage
	r.readUint(2) // repeat
	s.MMSI = MMSI(r.readUint(30))
	part := r.readUint(2)
	switch part {
	case 0:
		s.Name = r.readString(20)
	case 1:
		if nbit < 168 {
			return nil, fmt.Errorf("ais: type 24 part B needs 168 bits, got %d", nbit)
		}
		s.ShipType = ShipType(r.readUint(8))
		r.readUint(18 + 4 + 20) // vendor, model, serial
		s.Callsign = r.readString(7)
		s.DimBow = int(r.readUint(9))
		s.DimStern = int(r.readUint(9))
		s.DimPort = int(r.readUint(6))
		s.DimStarb = int(r.readUint(6))
	default:
		return nil, fmt.Errorf("ais: type 24 part %d unsupported", part)
	}
	if r.fail {
		return nil, fmt.Errorf("ais: truncated type 24")
	}
	return s, nil
}

// Decode parses message bits into a typed AIS message. The receivedAt
// time stamps the decoded report (AIS carries only the UTC second).
func Decode(buf []byte, nbit int, receivedAt time.Time) (Message, error) {
	r := &bitReader{buf: buf}
	msgType := r.readUint(6)
	switch msgType {
	case 1, 2, 3:
		return decodeClassA(r, nbit, receivedAt)
	case 18:
		return decodeClassB(r, nbit, receivedAt)
	case 5:
		return decodeStatic(r, nbit)
	case 24:
		return decodeStatic24(r, nbit)
	default:
		return nil, fmt.Errorf("ais: unsupported message type %d", msgType)
	}
}

func decodeClassA(r *bitReader, nbit int, receivedAt time.Time) (Message, error) {
	if nbit < 168 {
		return nil, fmt.Errorf("ais: class A position needs 168 bits, got %d", nbit)
	}
	var p PositionReport
	p.Class = ClassA
	r.readUint(2) // repeat
	p.MMSI = MMSI(r.readUint(30))
	p.Status = NavStatus(r.readUint(4))
	p.ROT = decodeROT(r.readInt(8))
	p.SOG = decodeSOG(r.readUint(10))
	r.readUint(1) // accuracy
	p.Lon = decodeLon(r.readInt(28))
	p.Lat = float64(r.readInt(27)) / latScale
	p.COG = decodeCOG(r.readUint(12))
	p.Heading = decodeHeading(r.readUint(9))
	p.Timestamp = stampSecond(receivedAt, int(r.readUint(6)))
	if r.fail {
		return nil, fmt.Errorf("ais: truncated class A position")
	}
	return p, nil
}

func decodeClassB(r *bitReader, nbit int, receivedAt time.Time) (Message, error) {
	if nbit < 168 {
		return nil, fmt.Errorf("ais: class B position needs 168 bits, got %d", nbit)
	}
	var p PositionReport
	p.Class = ClassB
	p.Status = StatusNotDefined
	p.ROT = math.NaN()
	r.readUint(2) // repeat
	p.MMSI = MMSI(r.readUint(30))
	r.readUint(8) // reserved
	p.SOG = decodeSOG(r.readUint(10))
	r.readUint(1) // accuracy
	p.Lon = decodeLon(r.readInt(28))
	p.Lat = float64(r.readInt(27)) / latScale
	p.COG = decodeCOG(r.readUint(12))
	p.Heading = decodeHeading(r.readUint(9))
	p.Timestamp = stampSecond(receivedAt, int(r.readUint(6)))
	if r.fail {
		return nil, fmt.Errorf("ais: truncated class B position")
	}
	return p, nil
}

func decodeStatic(r *bitReader, nbit int) (Message, error) {
	if nbit < 420 {
		return nil, fmt.Errorf("ais: static voyage needs 420+ bits, got %d", nbit)
	}
	var s StaticVoyage
	r.readUint(2) // repeat
	s.MMSI = MMSI(r.readUint(30))
	r.readUint(2) // version
	s.IMO = uint32(r.readUint(30))
	s.Callsign = r.readString(7)
	s.Name = r.readString(20)
	s.ShipType = ShipType(r.readUint(8))
	s.DimBow = int(r.readUint(9))
	s.DimStern = int(r.readUint(9))
	s.DimPort = int(r.readUint(6))
	s.DimStarb = int(r.readUint(6))
	r.readUint(4)             // EPFD
	r.readUint(4 + 5 + 5 + 6) // ETA
	s.Draught = float64(r.readUint(8)) / 10
	s.Destination = r.readString(20)
	if r.fail {
		return nil, fmt.Errorf("ais: truncated static voyage")
	}
	return s, nil
}

// decodeLon converts the raw 1/10000-arc-minute longitude field to
// degrees in geo.Point's half-open [-180, 180) domain. The AIS wire
// format legally encodes the antimeridian as +180, which is the same
// meridian as -180; it is wrapped here so every decoded in-domain
// position satisfies geo.Point.Valid. The 181-degree "not available"
// sentinel (and any other garbage) passes through unwrapped so it
// still reads as invalid downstream.
func decodeLon(v int64) float64 {
	lon := float64(v) / lonScale
	if lon == 180 {
		return -180
	}
	return lon
}

func decodeSOG(v uint64) float64 {
	if v == sogUnavailable {
		return -1
	}
	return float64(v) / 10
}

func decodeCOG(v uint64) float64 {
	if v >= cogUnavailable {
		return -1
	}
	return float64(v) / 10
}

func decodeHeading(v uint64) int {
	if v == headingUnavailable {
		return -1
	}
	return int(v)
}

// stampSecond replaces the second of receivedAt with the transmitted
// UTC second, stepping back a minute when the transmission straddled a
// minute boundary. Seconds >= 60 are "unavailable" sentinels.
func stampSecond(receivedAt time.Time, sec int) time.Time {
	if sec >= 60 {
		return receivedAt
	}
	t := receivedAt.Truncate(time.Minute).Add(time.Duration(sec) * time.Second)
	if t.After(receivedAt.Add(2 * time.Second)) {
		t = t.Add(-time.Minute)
	}
	return t
}

package nn

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchModel is the S-VRF serving shape: 20 x 3 input, BiLSTM(32), 12
// outputs — the configuration every vessel actor runs per report.
func benchModel(b *testing.B) (*SeqRegressor, [][]float64) {
	b.Helper()
	m, err := NewSeqRegressor(Config{InputDim: 3, Hidden: 32, OutputDim: 12, Bidirectional: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	seq := make([][]float64, 20)
	for i := range seq {
		seq[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.Float64()}
	}
	return m, seq
}

// BenchmarkPredict compares the reference (training) forward pass with
// the compiled fused-gate path on the S-VRF serving shape. Run with
// -benchmem: the headline is both ns/op and allocs/op.
func BenchmarkPredict(b *testing.B) {
	m, seq := benchModel(b)
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Predict(seq)
		}
	})
	c := m.Compile()
	b.Run("compiled", func(b *testing.B) {
		s := c.GetScratch()
		defer c.PutScratch(s)
		dst := make([]float64, c.Config().OutputDim)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.PredictInto(dst, seq, s)
		}
	})
	b.Run("compiled-pooled", func(b *testing.B) {
		// The pool round-trip variant: what a caller pays when it does
		// not hold a scratch across calls.
		dst := make([]float64, c.Config().OutputDim)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.PredictInto(dst, seq, nil)
		}
	})
}

// BenchmarkPredictBatch sweeps the batch size on the compiled bulk
// path (single worker, to read the per-sequence cost; the parallel
// speedup is machine-dependent).
func BenchmarkPredictBatch(b *testing.B) {
	m, seq := benchModel(b)
	c := m.Compile()
	for _, size := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			seqs := make([][][]float64, size)
			for i := range seqs {
				seqs[i] = seq
			}
			var dst [][]float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = c.PredictBatch(dst, seqs, 1)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/seq")
		})
	}
}

package actor

import (
	"sync"
	"sync/atomic"
)

// mailbox is an unbounded multi-producer single-consumer queue with two
// lanes: system messages (lifecycle and control) overtake user messages.
// It is paired with an atomic scheduler state so an idle actor consumes
// no goroutine.
//
// The queue is a mutex-protected pair of slices swapped wholesale by the
// consumer; producers only ever append. This "swap the write buffer"
// scheme keeps the common enqueue path to one lock/append and amortizes
// consumer locking to once per drained batch, which benchmarks faster
// than channels for the bursty fan-in pattern of AIS ingestion.
type mailbox struct {
	mu       sync.Mutex
	userW    []envelope // producers append here
	userR    []envelope // consumer drains here
	userRPos int
	sysW     []any
	sysR     []any
	sysRPos  int

	// scheduler state: 0 idle, 1 running/scheduled
	scheduled int32
	// suspended: while non-zero, user messages are not processed
	// (supervision uses this between a panic and the restart decision).
	suspended int32

	length int64 // total queued user messages, for metrics/backpressure

	// recentPeak is a decaying maximum of recent swap batch sizes, used
	// to release buffer capacity left over from a burst (see popUser).
	recentPeak int
}

// Buffer-shrink tuning: after a burst drains, the swapped-out write
// buffer keeps the burst's capacity forever. Across ~170K mostly-idle
// vessel actors that retained slack is unbounded, so when a buffer's
// capacity exceeds shrinkFactor times the decayed recent batch peak it
// is dropped and the next push reallocates at the current demand.
// Buffers at or under shrinkMinCap are always kept.
const (
	shrinkMinCap = 256
	shrinkFactor = 4
)

func newMailbox() *mailbox {
	return &mailbox{}
}

// pushUser enqueues a user envelope and returns the new queue length.
func (m *mailbox) pushUser(e envelope) int64 {
	m.mu.Lock()
	m.userW = append(m.userW, e)
	m.mu.Unlock()
	return atomic.AddInt64(&m.length, 1)
}

// pushUserBatch enqueues every message as an envelope from one sender
// under a single lock acquisition — the batched delivery path ingestion
// uses to pay mailbox lock and schedule cost once per vessel per poll
// round instead of once per report.
func (m *mailbox) pushUserBatch(msgs []any, sender *PID) int64 {
	m.mu.Lock()
	for _, msg := range msgs {
		m.userW = append(m.userW, envelope{message: msg, sender: sender})
	}
	m.mu.Unlock()
	return atomic.AddInt64(&m.length, int64(len(msgs)))
}

// pushSystem enqueues a control message.
func (m *mailbox) pushSystem(msg any) {
	m.mu.Lock()
	m.sysW = append(m.sysW, msg)
	m.mu.Unlock()
}

// popSystem dequeues the next control message, if any.
func (m *mailbox) popSystem() (any, bool) {
	if m.sysRPos < len(m.sysR) {
		msg := m.sysR[m.sysRPos]
		m.sysR[m.sysRPos] = nil
		m.sysRPos++
		return msg, true
	}
	m.mu.Lock()
	if len(m.sysW) == 0 {
		m.mu.Unlock()
		return nil, false
	}
	m.sysR, m.sysW = m.sysW, m.sysR[:0]
	m.mu.Unlock()
	m.sysRPos = 1
	return m.sysR[0], true
}

// popUser dequeues the next user envelope, if any.
func (m *mailbox) popUser() (envelope, bool) {
	if m.userRPos < len(m.userR) {
		e := m.userR[m.userRPos]
		m.userR[m.userRPos] = envelope{}
		m.userRPos++
		atomic.AddInt64(&m.length, -1)
		return e, true
	}
	m.mu.Lock()
	if len(m.userW) == 0 {
		m.mu.Unlock()
		return envelope{}, false
	}
	m.userR, m.userW = m.userW, m.userR[:0]
	// Track the decayed batch-size peak and release a write buffer whose
	// capacity greatly exceeds it: one burst must not pin its high-water
	// capacity on an actor that has gone back to a trickle.
	if n := len(m.userR); n > m.recentPeak {
		m.recentPeak = n
	} else {
		m.recentPeak -= m.recentPeak / 4
	}
	if c := cap(m.userW); c > shrinkMinCap && c > shrinkFactor*m.recentPeak {
		m.userW = nil
	}
	m.mu.Unlock()
	m.userRPos = 1
	atomic.AddInt64(&m.length, -1)
	return m.userR[0], true
}

// empty reports whether both lanes are drained.
func (m *mailbox) empty() bool {
	if m.userRPos < len(m.userR) || m.sysRPos < len(m.sysR) {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.userW) == 0 && len(m.sysW) == 0
}

// Len returns the number of queued user messages.
func (m *mailbox) Len() int64 { return atomic.LoadInt64(&m.length) }

// trySchedule transitions idle -> scheduled and reports whether the
// caller must start a processing run.
func (m *mailbox) trySchedule() bool {
	return atomic.CompareAndSwapInt32(&m.scheduled, 0, 1)
}

// setIdle marks the mailbox idle; the next push will reschedule.
func (m *mailbox) setIdle() { atomic.StoreInt32(&m.scheduled, 0) }

func (m *mailbox) suspend() { atomic.StoreInt32(&m.suspended, 1) }
func (m *mailbox) resume()  { atomic.StoreInt32(&m.suspended, 0) }
func (m *mailbox) isSuspended() bool {
	return atomic.LoadInt32(&m.suspended) == 1
}
